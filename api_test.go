package commdb

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestPublicTableI(t *testing.T) {
	g, ids := PaperExampleGraph()
	s := NewSearcher(g)
	it, err := s.TopK(Query{Keywords: []string{"a", "b", "c"}, Rmax: 8})
	if err != nil {
		t.Fatal(err)
	}
	wantCosts := []float64{7, 10, 11, 14, 15}
	got, err := it.Collect(10)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("collected %d communities, want 5", len(got))
	}
	for i, r := range got {
		if math.Abs(r.Cost-wantCosts[i]) > 1e-9 {
			t.Errorf("rank %d cost = %v, want %v", i+1, r.Cost, wantCosts[i])
		}
	}
	// Rank 1 core is [v4, v8, v6].
	if !got[0].Core.Equal(Core{ids[4], ids[8], ids[6]}) {
		t.Errorf("rank 1 core = %v", got[0].Core)
	}
}

func TestPublicIntroExample(t *testing.T) {
	g, ids := IntroExampleGraph()
	s := NewSearcher(g)
	it, err := s.All(Query{Keywords: []string{"kate", "smith"}, Rmax: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := it.CollectAll(10)
	if len(got) != 2 {
		t.Fatalf("found %d communities, want 2", len(got))
	}
	_ = ids
}

// TestIndexedMatchesDirect: the indexed searcher returns exactly the
// same communities as the direct one, including re-induced edges.
func TestIndexedMatchesDirect(t *testing.T) {
	db, err := GenerateDBLP(150, 21)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	direct := NewSearcher(g)
	indexed, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !indexed.Indexed() || direct.Indexed() {
		t.Fatal("Indexed flags")
	}

	// Use a planted probe keyword pair guaranteed to exist.
	q := Query{Keywords: []string{"database", "graph"}, Rmax: 8}
	d1, err := direct.All(q)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := indexed.All(q)
	if err != nil {
		t.Fatal(err)
	}
	c1 := d1.CollectAll(0)
	c2 := d2.CollectAll(0)
	if len(c1) != len(c2) {
		t.Fatalf("direct found %d, indexed %d", len(c1), len(c2))
	}
	byKey := map[string]*Community{}
	for _, r := range c1 {
		byKey[r.Core.Key()] = r
	}
	for _, r := range c2 {
		want, ok := byKey[r.Core.Key()]
		if !ok {
			t.Fatalf("indexed core %v missing from direct run", r.Core)
		}
		if math.Abs(r.Cost-want.Cost) > 1e-9 {
			t.Fatalf("core %v: cost %v vs %v", r.Core, r.Cost, want.Cost)
		}
		if len(r.Nodes) != len(want.Nodes) {
			t.Fatalf("core %v: %d nodes vs %d", r.Core, len(r.Nodes), len(want.Nodes))
		}
		for i := range r.Nodes {
			if r.Nodes[i] != want.Nodes[i] {
				t.Fatalf("core %v: node sets differ", r.Core)
			}
		}
		if len(r.Edges) != len(want.Edges) {
			t.Fatalf("core %v: %d edges vs %d (projection edge re-induction broken)",
				r.Core, len(r.Edges), len(want.Edges))
		}
	}
}

// TestIndexedTopKContinuation: interactive enlargement works through
// the public API on a projected query.
func TestIndexedTopKContinuation(t *testing.T) {
	db, err := GenerateIMDB(80, 10, 31)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewIndexedSearcher(g, 13)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"star", "girl"}, Rmax: 13}
	it, err := s.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := it.Collect(5)
	more, _ := it.Collect(5)

	it2, err := s.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := it2.Collect(10)
	if len(fresh) != len(first)+len(more) {
		t.Fatalf("continuation %d+%d vs fresh %d", len(first), len(more), len(fresh))
	}
	for i, r := range append(first, more...) {
		if math.Abs(r.Cost-fresh[i].Cost) > 1e-9 {
			t.Fatalf("rank %d: continued cost %v, fresh %v", i+1, r.Cost, fresh[i].Cost)
		}
	}
}

func TestSearcherErrors(t *testing.T) {
	g, _ := PaperExampleGraph()
	s := NewSearcher(g)
	if _, err := s.All(Query{Rmax: 5}); err == nil {
		t.Fatal("empty keywords should error")
	}
	if _, err := s.TopK(Query{Keywords: []string{"a"}, Rmax: -2}); err == nil {
		t.Fatal("negative Rmax should error")
	}
	ix, err := NewIndexedSearcher(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.All(Query{Keywords: []string{"a"}, Rmax: 9}); err == nil {
		t.Fatal("Rmax beyond index radius should error")
	}
}

func TestKeywordFrequency(t *testing.T) {
	g, _ := PaperExampleGraph()
	s := NewSearcher(g)
	if kwf := s.KeywordFrequency("c"); math.Abs(kwf-4.0/13.0) > 1e-12 {
		t.Fatalf("KWF(c) = %v", kwf)
	}
	if s.KeywordFrequency("zzz") != 0 {
		t.Fatal("unknown keyword KWF should be 0")
	}
	if s.Graph() != g {
		t.Fatal("Graph accessor")
	}
}

func TestGraphIORoundTripPublic(t *testing.T) {
	g, _ := PaperExampleGraph()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
	// Searching the round-tripped graph gives the same answer.
	s := NewSearcher(g2)
	it, err := s.TopK(Query{Keywords: []string{"a", "b", "c"}, Rmax: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := it.Collect(10); len(got) != 5 {
		t.Fatalf("round-tripped graph yields %d communities", len(got))
	}
}

func TestBuildDatabaseThroughPublicAPI(t *testing.T) {
	db := NewDatabase()
	people, err := db.CreateTable(Schema{
		Name: "People",
		Columns: []Column{
			{Name: "Id", Type: Int},
			{Name: "Name", Type: String, FullText: true},
		},
		PrimaryKey: []string{"Id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	knows, err := db.CreateTable(Schema{
		Name: "Knows",
		Columns: []Column{
			{Name: "A", Type: Int},
			{Name: "B", Type: Int},
		},
		PrimaryKey: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddForeignKey(ForeignKey{FromTable: "Knows", FromColumn: "A", ToTable: "People"}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddForeignKey(ForeignKey{FromTable: "Knows", FromColumn: "B", ToTable: "People"}); err != nil {
		t.Fatal(err)
	}
	if err := people.Insert(IntV(1), StrV("ada lovelace")); err != nil {
		t.Fatal(err)
	}
	if err := people.Insert(IntV(2), StrV("alan turing")); err != nil {
		t.Fatal(err)
	}
	if err := knows.Insert(IntV(1), IntV(2)); err != nil {
		t.Fatal(err)
	}
	g, m, err := GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	s := NewSearcher(g)
	it, err := s.All(Query{Keywords: []string{"ada", "turing"}, Rmax: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := it.CollectAll(0)
	if len(got) != 1 {
		t.Fatalf("found %d communities, want 1", len(got))
	}
	// Resolve the community's core back to tuples.
	for _, v := range got[0].Core {
		ref := m.Ref(v)
		if ref.Table != "People" {
			t.Fatalf("core node resolves to %+v", ref)
		}
	}
	if stats := GraphStatsOf(g); stats.Nodes != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestConcurrentQueries: a Searcher is safe for concurrent use — every
// query gets its own engine; the shared graph and indexes are read-only.
func TestConcurrentQueries(t *testing.T) {
	db, err := GenerateDBLP(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]string{
		{"database", "graph"},
		{"web", "parallel"},
		{"space", "routing"},
		{"dynamic", "logic"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*4)
	for round := 0; round < 4; round++ {
		for _, kws := range queries {
			wg.Add(1)
			go func(kws []string) {
				defer wg.Done()
				it, err := s.TopK(Query{Keywords: kws, Rmax: 7})
				if err != nil {
					errs <- err
					return
				}
				if _, cerr := it.Collect(20); cerr != nil {
					errs <- cerr
					return
				}
			}(kws)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
