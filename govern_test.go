package commdb

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// dblpSearcher builds the shared governance-test workload: a DBLP graph
// large enough that a full COMM-all enumeration of the probe keywords
// takes seconds, so a 50ms deadline reliably interrupts it mid-flight.
var dblpOnce sync.Once
var dblpGraph *Graph

func dblpTestGraph(t *testing.T) *Graph {
	t.Helper()
	dblpOnce.Do(func() {
		db, err := GenerateDBLP(5000, 7)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := GraphFromDatabase(db)
		if err != nil {
			t.Fatal(err)
		}
		dblpGraph = g
	})
	if dblpGraph == nil {
		t.Fatal("DBLP test graph failed to build in an earlier test")
	}
	return dblpGraph
}

// governedQuery is the probe whose unrestricted enumeration takes
// seconds on the dblpTestGraph (measured ~3s / ~1800 communities).
func governedQuery(lim Limits) Query {
	return Query{Keywords: []string{"web", "parallel"}, Rmax: 14, Limits: lim}
}

// testDeadline is the acceptance criterion's 50ms query deadline —
// scaled up under the race detector, whose instrumentation slows the
// engine enough that the first community misses the real 50ms.
func testDeadline() time.Duration {
	if raceEnabled {
		return 500 * time.Millisecond
	}
	return 50 * time.Millisecond
}

// TestDeadlineTopK: acceptance criterion — a TopK enumeration with a
// 50ms deadline returns partial results and Err() ==
// context.DeadlineExceeded; no hang, no panic.
func TestDeadlineTopK(t *testing.T) {
	s := NewSearcher(dblpTestGraph(t))
	it, err := s.TopK(governedQuery(Limits{Timeout: testDeadline()}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("deadline took %v to stop the query", e)
	}
	if it.Err() != context.DeadlineExceeded {
		t.Fatalf("Err() = %v, want context.DeadlineExceeded", it.Err())
	}
	if !errors.Is(it.Err(), ErrDeadlineExceeded) {
		t.Fatal("Err() must match the re-exported ErrDeadlineExceeded")
	}
	if n == 0 {
		t.Fatal("the deadline should still admit at least the first result")
	}
	t.Logf("partial ranking prefix: %d communities before the deadline", n)
}

// TestDeadlineAll: the same criterion for the COMM-all enumerator, with
// the deadline carried by the context instead of Query.Limits.
func TestDeadlineAll(t *testing.T) {
	s := NewSearcher(dblpTestGraph(t))
	ctx, cancel := context.WithTimeout(context.Background(), testDeadline())
	defer cancel()
	it, err := s.AllCtx(ctx, governedQuery(Limits{}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	n := 0
	for {
		if _, ok := it.NextCore(); !ok {
			break
		}
		n++
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("context deadline took %v to stop the query", e)
	}
	if !errors.Is(it.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want context.DeadlineExceeded", it.Err())
	}
	if n == 0 {
		t.Fatal("the deadline should still admit at least the first result")
	}
}

// TestCancellationBounded: a context canceled mid-enumeration stops the
// iterator within one further Next call — never a hang, never a panic —
// and surfaces context.Canceled via Err().
func TestCancellationBounded(t *testing.T) {
	g, _ := PaperExampleGraph()
	s := NewSearcher(g)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it, err := s.AllCtx(ctx, Query{Keywords: []string{"a", "b", "c"}, Rmax: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("first community must arrive before cancellation")
	}
	cancel()
	if _, ok := it.Next(); ok {
		t.Fatal("the first Next after cancel must already observe it")
	}
	if !errors.Is(it.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", it.Err())
	}
	// The iterator stays stopped and keeps reporting the same reason.
	for i := 0; i < 3; i++ {
		if _, ok := it.Next(); ok {
			t.Fatal("a canceled iterator must stay stopped")
		}
	}
	if !errors.Is(it.Err(), context.Canceled) {
		t.Fatalf("Err() changed to %v", it.Err())
	}
}

// TestCancellationTopK: the ranked enumerator honors cancellation the
// same way, including with a cancellation cause.
func TestCancellationTopK(t *testing.T) {
	g, _ := PaperExampleGraph()
	s := NewSearcher(g)
	cause := errors.New("load shed")
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	it, err := s.TopKCtx(ctx, Query{Keywords: []string{"a", "b", "c"}, Rmax: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("first community must arrive before cancellation")
	}
	cancel(cause)
	if _, ok := it.Next(); ok {
		t.Fatal("the first Next after cancel must already observe it")
	}
	if !errors.Is(it.Err(), cause) {
		t.Fatalf("Err() = %v, want the cancellation cause", it.Err())
	}
}

// TestCanceledContextAtSetup: an indexed query whose context is already
// canceled fails at projection time with the reason, rather than
// handing back an iterator that silently yields nothing.
func TestCanceledContextAtSetup(t *testing.T) {
	g, _ := PaperExampleGraph()
	s, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.AllCtx(ctx, Query{Keywords: []string{"a", "b", "c"}, Rmax: 8})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("setup on a canceled context = %v, want context.Canceled", err)
	}
}

// TestMaxResults: MaxResults = k grants exactly k communities, then
// reports the exhausted resource via errors.As on ErrBudgetExhausted —
// and the k results are the exact prefix of the ungoverned enumeration.
func TestMaxResults(t *testing.T) {
	g, _ := PaperExampleGraph()
	s := NewSearcher(g)
	q := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}

	free, err := s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	full := free.CollectAll(0)
	if free.Err() != nil || len(full) != 5 {
		t.Fatalf("ungoverned run: %d communities, err %v", len(full), free.Err())
	}

	q.Limits = Limits{MaxResults: 2}
	it, err := s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	got := it.CollectAll(0)
	if len(got) != 2 {
		t.Fatalf("MaxResults=2 granted %d communities", len(got))
	}
	var be ErrBudgetExhausted
	if !errors.As(it.Err(), &be) {
		t.Fatalf("Err() = %v, want ErrBudgetExhausted", it.Err())
	}
	if be.Resource != ResourceResults || be.Limit != 2 {
		t.Fatalf("tripped on %+v, want results/2", be)
	}
	for i, r := range got {
		if r.Core.Key() != full[i].Core.Key() {
			t.Fatalf("governed result %d is not a prefix of the free enumeration", i)
		}
	}
}

// TestMaxNeighborRuns: capping Dijkstra invocations stops the query
// with the neighbor-runs resource, after a valid partial set.
func TestMaxNeighborRuns(t *testing.T) {
	g, _ := PaperExampleGraph()
	s := NewSearcher(g)
	it, err := s.TopK(Query{
		Keywords: []string{"a", "b", "c"}, Rmax: 8,
		Limits: Limits{MaxNeighborRuns: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := it.Collect(10); len(got) != 0 {
		t.Fatalf("one allowed Dijkstra cannot produce %d communities", len(got))
	}
	var be ErrBudgetExhausted
	if !errors.As(it.Err(), &be) || be.Resource != ResourceNeighborRuns {
		t.Fatalf("Err() = %v, want neighbor-runs exhaustion", it.Err())
	}
}

// TestMaxRelaxations: capping shortest-path work units trips on the
// relaxations resource (the CLI's -max-visited).
func TestMaxRelaxations(t *testing.T) {
	s := NewSearcher(dblpTestGraph(t))
	it, err := s.All(governedQuery(Limits{MaxRelaxations: 500}))
	if err != nil {
		t.Fatal(err)
	}
	it.CollectAll(0)
	var be ErrBudgetExhausted
	if !errors.As(it.Err(), &be) || be.Resource != ResourceRelaxations {
		t.Fatalf("Err() = %v, want relaxations exhaustion", it.Err())
	}
	if be.Spent <= be.Limit {
		t.Fatalf("spent %d must exceed limit %d", be.Spent, be.Limit)
	}
}

// TestMaxCanTuples: the top-k can-list growth — the paper's only
// unbounded space term — is cappable.
func TestMaxCanTuples(t *testing.T) {
	s := NewSearcher(dblpTestGraph(t))
	it, err := s.TopK(governedQuery(Limits{MaxCanTuples: 8}))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := it.NextCore(); !ok {
			break
		}
		n++
	}
	var be ErrBudgetExhausted
	if !errors.As(it.Err(), &be) || be.Resource != ResourceCanTuples {
		t.Fatalf("Err() = %v, want can-tuples exhaustion", it.Err())
	}
	if n == 0 {
		t.Fatal("the can-list cap should still admit early results")
	}
}

// TestGovernedIndexedQuery: budgets work identically through the
// projected path, and an ungoverned indexed query is unaffected.
func TestGovernedIndexedQuery(t *testing.T) {
	g, _ := PaperExampleGraph()
	s, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8, Limits: Limits{MaxResults: 3}}
	it, err := s.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := it.Collect(10)
	if len(got) != 3 {
		t.Fatalf("MaxResults=3 granted %d", len(got))
	}
	var be ErrBudgetExhausted
	if !errors.As(it.Err(), &be) || be.Resource != ResourceResults {
		t.Fatalf("Err() = %v, want results exhaustion", it.Err())
	}
}

// TestRmaxValidation: NaN and ±Inf radii are rejected up front — NaN
// compares false against everything, so it would otherwise poison
// every distance comparison downstream.
func TestRmaxValidation(t *testing.T) {
	g, _ := PaperExampleGraph()
	s := NewSearcher(g)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		if _, err := s.All(Query{Keywords: []string{"a"}, Rmax: bad}); err == nil {
			t.Fatalf("All accepted Rmax %v", bad)
		}
		if _, err := s.TopK(Query{Keywords: []string{"a"}, Rmax: bad}); err == nil {
			t.Fatalf("TopK accepted Rmax %v", bad)
		}
	}
	if _, err := NewIndexedSearcher(g, math.NaN()); err == nil {
		t.Fatal("NewIndexedSearcher accepted a NaN radius")
	}
	if _, err := NewIndexedSearcher(g, math.Inf(1)); err == nil {
		t.Fatal("NewIndexedSearcher accepted an infinite radius")
	}
}

// TestPanicRecovery: a panic inside the enumeration machinery is
// converted to an error at the public boundary — it fails the one
// query, not the process — and the iterator reports it via Err().
func TestPanicRecovery(t *testing.T) {
	// Iterators corrupted to panic on use (nil internal enumerator).
	all := &AllIterator{}
	if _, ok := all.Next(); ok {
		t.Fatal("a panicking iterator must not report ok")
	}
	if err := all.Err(); err == nil || !strings.Contains(err.Error(), "internal panic") {
		t.Fatalf("Err() = %v, want a recovered internal panic", err)
	}
	topk := &TopKIterator{}
	if _, ok := topk.NextCore(); ok {
		t.Fatal("a panicking iterator must not report ok")
	}
	if err := topk.Err(); err == nil || !strings.Contains(err.Error(), "internal panic") {
		t.Fatalf("Err() = %v, want a recovered internal panic", err)
	}
	// Once poisoned, the iterator stays stopped without re-panicking.
	if _, ok := all.Next(); ok {
		t.Fatal("poisoned iterator revived")
	}
}

// TestConcurrentGovernedQueries: the doc claim "a Searcher is safe for
// concurrent use" under governance — goroutines sharing one indexed
// Searcher, some governed, some canceled mid-flight; run under -race.
func TestConcurrentGovernedQueries(t *testing.T) {
	g, _ := PaperExampleGraph()
	s, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			lim := Limits{}
			if i%2 == 0 {
				lim.MaxResults = int64(1 + i%4)
			}
			it, err := s.TopKCtx(ctx, Query{Keywords: q.Keywords, Rmax: q.Rmax, Limits: lim})
			if err != nil {
				errs <- err
				return
			}
			for n := 0; ; n++ {
				if n == 2 && i%3 == 0 {
					cancel()
				}
				if _, ok := it.Next(); !ok {
					break
				}
			}
			if err := it.Err(); err != nil {
				var be ErrBudgetExhausted
				if !errors.As(err, &be) && !errors.Is(err, context.Canceled) {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
