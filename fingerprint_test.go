package commdb

import (
	"testing"
)

// TestNormalizedCanonicalizes: keywords are lowercased, tokenized and
// sorted; Rmax, Cost and Limits survive untouched.
func TestNormalizedCanonicalizes(t *testing.T) {
	q := Query{
		Keywords: []string{"Web", "database", " GRAPH "},
		Rmax:     6,
		Cost:     CostMaxDistance,
		Limits:   Limits{MaxResults: 7},
	}
	n := q.Normalized()
	want := []string{"database", "graph", "web"}
	if len(n.Keywords) != len(want) {
		t.Fatalf("normalized keywords = %v, want %v", n.Keywords, want)
	}
	for i := range want {
		if n.Keywords[i] != want[i] {
			t.Fatalf("normalized keywords = %v, want %v", n.Keywords, want)
		}
	}
	if n.Rmax != 6 || n.Cost != CostMaxDistance || n.Limits.MaxResults != 7 {
		t.Fatalf("normalization changed non-keyword fields: %+v", n)
	}
	// The receiver is unchanged (value semantics).
	if q.Keywords[0] != "Web" {
		t.Fatalf("Normalized mutated the original query: %v", q.Keywords)
	}
}

// TestFingerprintInvariance: reordering and re-casing keywords, or
// changing Limits, does not change the fingerprint.
func TestFingerprintInvariance(t *testing.T) {
	base := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}
	same := []Query{
		{Keywords: []string{"c", "a", "b"}, Rmax: 8},
		{Keywords: []string{"B", "A", "C"}, Rmax: 8},
		{Keywords: []string{" a", "b ", "C"}, Rmax: 8},
		{Keywords: []string{"a", "b", "c"}, Rmax: 8, Limits: Limits{MaxResults: 3}},
	}
	fp := base.Fingerprint()
	for _, q := range same {
		if got := q.Fingerprint(); got != fp {
			t.Errorf("Fingerprint(%v) = %q, want %q", q.Keywords, got, fp)
		}
	}
}

// TestFingerprintDiscrimination: queries with different answers get
// different fingerprints, including length-prefix edge cases where
// naive joining would collide.
func TestFingerprintDiscrimination(t *testing.T) {
	distinct := []Query{
		{Keywords: []string{"a", "b", "c"}, Rmax: 8},
		{Keywords: []string{"a", "b"}, Rmax: 8},
		{Keywords: []string{"a", "b", "c"}, Rmax: 7},
		{Keywords: []string{"a", "b", "c"}, Rmax: 8, Cost: CostMaxDistance},
		{Keywords: []string{"ab", "c"}, Rmax: 8},
		{Keywords: []string{"a", "bc"}, Rmax: 8},
		{Keywords: []string{"a", "a", "b"}, Rmax: 8},
	}
	seen := map[string]int{}
	for i, q := range distinct {
		fp := q.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Errorf("queries %d and %d share fingerprint %q", i, j, fp)
		}
		seen[fp] = i
	}
}

// TestNormalizedQuerySameResults: a normalized query enumerates the
// same communities as the original (as unordered core sets) on the
// paper's example graph.
func TestNormalizedQuerySameResults(t *testing.T) {
	g, _ := PaperExampleGraph()
	s := NewSearcher(g)
	orig := Query{Keywords: []string{"C", "a", "B"}, Rmax: 8}

	collect := func(q Query) map[string]float64 {
		it, err := s.All(q)
		if err != nil {
			t.Fatalf("All(%v): %v", q.Keywords, err)
		}
		out := map[string]float64{}
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			// Key by the unordered core set: normalization may permute
			// core positions but never the set.
			set := append(Core(nil), r.Core...)
			for i := 0; i < len(set); i++ {
				for j := i + 1; j < len(set); j++ {
					if set[j] < set[i] {
						set[i], set[j] = set[j], set[i]
					}
				}
			}
			out[set.Key()] = r.Cost
		}
		if err := it.Err(); err != nil {
			t.Fatalf("All(%v) stopped early: %v", q.Keywords, err)
		}
		return out
	}

	got, want := collect(orig.Normalized()), collect(orig)
	if len(got) != len(want) {
		t.Fatalf("normalized query found %d communities, original %d", len(got), len(want))
	}
	for k, cost := range want {
		if got[k] != cost {
			t.Errorf("core %s: normalized cost %v, original %v", k, got[k], cost)
		}
	}
}
