package commdb

import (
	"commdb/internal/trees"
)

// Tree is one ranked connected-tree answer — the result form of the
// keyword-search systems the paper's introduction contrasts communities
// with (BANKS-style rooted trees). A tree carries one shortest path
// from its root to a keyword node per query keyword.
type Tree = trees.Tree

// TreeIterator streams connected trees in non-decreasing cost order.
type TreeIterator struct {
	e *trees.Enumerator
}

// Trees starts a ranked connected-tree enumeration for the query —
// the baseline semantics against which communities are motivated: one
// community typically subsumes several fragmented trees (compare the
// five trees of the paper's Fig. 2 against the communities of Fig. 3).
// Rmax bounds each root→keyword path.
//
// Tree search always runs on the full graph (it is a motivational
// baseline, not the paper's contribution; the inverted indexes are not
// consulted).
func (s *Searcher) Trees(q Query) (*TreeIterator, error) {
	e, err := trees.NewEnumerator(s.g, s.ft, q.Keywords, q.Rmax)
	if err != nil {
		return nil, err
	}
	return &TreeIterator{e: e}, nil
}

// Next returns the next best tree, or ok == false when exhausted.
func (it *TreeIterator) Next() (*Tree, bool) { return it.e.Next() }

// Collect drains up to k trees.
func (it *TreeIterator) Collect(k int) []*Tree { return it.e.Collect(k) }
