package main

// Tests of the -replay mode's determinism contract: replaying the same
// journal against two freshly-built identical servers produces
// byte-identical outcome sequences and equal digests, the canonical
// journal writer is byte-deterministic, and -compare treats a replay
// digest mismatch as a hard failure.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"commdb"
	"commdb/internal/server"
	"commdb/internal/workload"
)

// newReplayTarget boots a deterministic (parallelism 1) indexed server
// over the paper's example graph.
func newReplayTarget(t *testing.T) *httptest.Server {
	t.Helper()
	g, _ := commdb.PaperExampleGraph()
	s, err := commdb.Open(g, commdb.WithIndex(8), commdb.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(s, server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// paperWorkload is a small mixed journal over the paper graph: an
// executed top-k, a bounded stream, a repeat of the first shape (a
// cache hit on replay), and a budget-starved query whose recorded
// limits carry a wall-clock timeout that replay must strip while
// keeping the deterministic relaxation budget — which the indexed
// target trips during query-time projection, a deterministic 400.
func paperWorkload() []workload.Entry {
	abc := commdb.Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}
	a := commdb.Query{Keywords: []string{"a"}, Rmax: 8}
	entries := []workload.Entry{
		{Fingerprint: abc.Fingerprint(), Keywords: []string{"a", "b", "c"}, Rmax: 8,
			Algo: workload.AlgoTopK, K: 3},
		{Fingerprint: abc.Fingerprint(), Keywords: []string{"a", "b", "c"}, Rmax: 8,
			Algo: workload.AlgoAll, Limits: &workload.Limits{MaxResults: 2}},
		{Fingerprint: abc.Fingerprint(), Keywords: []string{"a", "b", "c"}, Rmax: 8,
			Algo: workload.AlgoTopK, K: 3},
		{Fingerprint: a.Fingerprint(), Keywords: []string{"a"}, Rmax: 8,
			Algo: workload.AlgoTopK, K: 5,
			Limits: &workload.Limits{TimeoutMS: 5000, MaxRelaxations: 1}},
	}
	for i := range entries {
		entries[i].Seq = int64(i + 1)
		entries[i].QueryID = "t-" + string(rune('a'+i))
		entries[i].UnixMS = 1_700_000_000_000 + int64(i)*250
	}
	return entries
}

// TestReplayDeterminism is the acceptance test: two replays of the same
// journal against two freshly-built identical servers produce
// byte-identical per-query outcomes — result counts, costs, completion,
// stop reasons — and therefore equal digests.
func TestReplayDeterminism(t *testing.T) {
	entries := paperWorkload()
	var runs [][]replayOutcome
	for i := 0; i < 2; i++ {
		ts := newReplayTarget(t)
		outs, err := replayAgainst(ts.Client(), ts.URL, entries, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != len(entries) {
			t.Fatalf("run %d replayed %d of %d queries", i, len(outs), len(entries))
		}
		runs = append(runs, outs)
	}
	for i := range entries {
		if runs[0][i].line != runs[1][i].line {
			t.Fatalf("query %d outcomes differ:\n  run1: %s\n  run2: %s",
				i, runs[0][i].line, runs[1][i].line)
		}
	}
	if d1, d2 := digestOutcomes(runs[0]), digestOutcomes(runs[1]); d1 != d2 {
		t.Fatalf("digests differ: %s vs %s", d1, d2)
	}

	// The outcomes themselves are sane: the executed top-k returned
	// results, the bounded stream stopped at its cap, the repeat was a
	// cache hit with the identical outcome line, and the starved query
	// stopped on its work budget despite the stripped timeout.
	outs := runs[0]
	if outs[0].results == 0 || !outs[0].topk {
		t.Fatalf("executed topk outcome: %+v", outs[0])
	}
	if outs[1].results != 2 || !strings.Contains(outs[1].line, "stop=") {
		t.Fatalf("bounded stream outcome: %+v", outs[1])
	}
	if !outs[2].cached || outs[2].line != outs[0].line {
		t.Fatalf("repeated query not a cache hit with identical outcome:\n  %+v\n  %+v",
			outs[2], outs[0])
	}
	// The starved query trips its relaxation budget at projection: a
	// rejection, but a deterministic one — it is part of the digest.
	if !outs[3].errored || !strings.Contains(outs[3].line, "status=400") {
		t.Fatalf("budget-starved query outcome: %+v", outs[3])
	}
}

// TestReplaySanitizeLimits: replay strips wall-clock timeouts (machine
// speed dependent) and keeps work budgets (deterministic).
func TestReplaySanitizeLimits(t *testing.T) {
	if got := sanitizeLimits(nil); got != nil {
		t.Fatalf("nil limits → %+v", got)
	}
	if got := sanitizeLimits(&workload.Limits{TimeoutMS: 1000}); got != nil {
		t.Fatalf("timeout-only limits should vanish, got %+v", got)
	}
	got := sanitizeLimits(&workload.Limits{TimeoutMS: 1000, MaxRelaxations: 7, MaxResults: 3})
	if got == nil || got.TimeoutMS != 0 || got.MaxRelaxations != 7 || got.MaxResults != 3 {
		t.Fatalf("sanitized limits = %+v", got)
	}
}

// TestWriteJournalFileDeterministic: the canonical journal writer is
// byte-deterministic (CI regenerates and cmp's against the committed
// file) and round-trips through the journal reader.
func TestWriteJournalFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	entries := paperWorkload()
	p1, p2 := filepath.Join(dir, "a.ndjson"), filepath.Join(dir, "b.ndjson")
	if err := writeJournalFile(p1, entries); err != nil {
		t.Fatal(err)
	}
	if err := writeJournalFile(p2, entries); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two writes of the same workload produced different bytes")
	}
	got, err := workload.ReadJournalFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("round-trip read %d entries, want %d", len(got), len(entries))
	}
	for i, e := range got {
		if e.Seq != int64(i+1) || e.Fingerprint != entries[i].Fingerprint {
			t.Fatalf("entry %d round-tripped wrong: %+v", i, e)
		}
	}
}

// TestRunReplayAgainstLiveServer exercises the full -replay CLI path
// against a live server URL: journal in, report out, with a populated
// digest and endpoint stats.
func TestRunReplayAgainstLiveServer(t *testing.T) {
	ts := newReplayTarget(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "wl.ndjson")
	if err := writeJournalFile(journal, paperWorkload()); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_replay.json")
	if err := runReplay(journal, 0, 1, 1, ts.URL, false, out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep replayBenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	// The starved fourth query is a deterministic 400: counted as an
	// error, excluded from the latency stats, included in the digest.
	if rep.Queries != 4 || rep.TopKQueries != 2 || rep.AllQueries != 1 || rep.Errors != 1 {
		t.Fatalf("report counts: %+v", rep)
	}
	if rep.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", rep.CacheHits)
	}
	if len(rep.OutcomeDigest) != 64 {
		t.Fatalf("digest %q is not a sha256 hex", rep.OutcomeDigest)
	}
	if rep.TopK.Count != 2 || rep.Stream.Count != 1 {
		t.Fatalf("endpoint stats: topk=%+v stream=%+v", rep.TopK, rep.Stream)
	}
	if kind := reportKind(b); kind != "replay" {
		t.Fatalf("report sniffed as %q, want replay", kind)
	}

	// An empty journal is rejected, not silently replayed.
	empty := filepath.Join(dir, "empty.ndjson")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runReplay(empty, 0, 1, 1, ts.URL, false, out); err == nil {
		t.Fatal("empty journal returned nil")
	}
}

func baselineReplayReport() replayBenchReport {
	mk := func(mean, p50, p95, p99 float64) endpointStats {
		return endpointStats{Count: 50, MeanMS: mean, P50MS: p50, P95MS: p95, P99MS: p99, MaxMS: p99 * 2}
	}
	return replayBenchReport{
		Journal: "wl.ndjson", Dataset: "dblp", Authors: 2000,
		Queries: 100, TopKQueries: 60, AllQueries: 40, CacheHits: 20,
		OutcomeDigest: strings.Repeat("ab", 32),
		ResultsTotal:  5000, Throughput: 200,
		TopK: mk(2, 1.5, 6, 12), Stream: mk(8, 6, 20, 40),
	}
}

// TestCompareReplayReports: the replay kind is sniffed from
// outcome_digest, performance is gated like a serve report, and a
// digest mismatch is a hard error no tolerance can excuse.
func TestCompareReplayReports(t *testing.T) {
	rep := baselineReplayReport()
	if bad := regressions(compareReplayReports(rep, rep, 0.15)); len(bad) != 0 {
		t.Fatalf("self-compare regressed: %+v", bad)
	}
	slow := rep
	slow.TopK.P95MS *= 2
	bad := regressions(compareReplayReports(rep, slow, 0.15))
	if len(bad) != 1 || bad[0].Name != "topk.p95_ms" {
		t.Fatalf("2x p95 regressed %+v, want exactly topk.p95_ms", bad)
	}

	dir := t.TempDir()
	write := func(name string, r replayBenchReport) string {
		path := filepath.Join(dir, name)
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", rep)
	if err := runCompare(oldPath, write("same.json", rep), 0.15); err != nil {
		t.Fatalf("replay self-compare errored: %v", err)
	}
	if err := runCompare(oldPath, write("slow.json", slow), 0.15); err == nil {
		t.Fatal("2x p95 regression returned nil")
	}

	// Digest mismatch: hard error even at an absurd tolerance, and the
	// message names the contract.
	drift := rep
	drift.OutcomeDigest = strings.Repeat("cd", 32)
	err := runCompare(oldPath, write("drift.json", drift), 100)
	if err == nil || !strings.Contains(err.Error(), "digests differ") {
		t.Fatalf("digest mismatch err = %v, want a digests-differ error", err)
	}

	// Mixed kinds are rejected.
	serveB, err := json.Marshal(baselineReport())
	if err != nil {
		t.Fatal(err)
	}
	servePath := filepath.Join(dir, "serve.json")
	if err := os.WriteFile(servePath, serveB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCompare(oldPath, servePath, 0.15); err == nil {
		t.Fatal("replay vs serve comparison returned nil")
	}
}

// TestReplayRequestShapes: journal entries render back into the wire
// requests the server originally saw — algo routes the endpoint, k only
// rides top-k, and unknown algos are rejected.
func TestReplayRequestShapes(t *testing.T) {
	path, body, err := replayRequest(workload.Entry{
		Algo: workload.AlgoTopK, K: 7, Keywords: []string{"x"}, Rmax: 4})
	if err != nil || path != "/v1/search/topk" {
		t.Fatalf("topk render: path=%q err=%v", path, err)
	}
	var req map[string]any
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	if req["k"] != float64(7) || req["rmax"] != float64(4) {
		t.Fatalf("topk body: %v", req)
	}
	path, body, err = replayRequest(workload.Entry{
		Algo: workload.AlgoAll, Keywords: []string{"x"}, Rmax: 4,
		Limits: &workload.Limits{TimeoutMS: 100}})
	if err != nil || path != "/v1/search/all" {
		t.Fatalf("all render: path=%q err=%v", path, err)
	}
	if bytes.Contains(body, []byte("limits")) {
		t.Fatalf("timeout-only limits survived sanitizing: %s", body)
	}
	if _, _, err := replayRequest(workload.Entry{Algo: "bogus"}); err == nil {
		t.Fatal("unknown algo returned nil")
	}
}
