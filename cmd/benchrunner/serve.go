package main

// The -serve mode benchmarks the serving stack rather than the bare
// algorithms: it boots an in-process commserve (internal/server over an
// indexed searcher on the synthetic DBLP graph), hammers it with
// concurrent HTTP clients mixing cached top-k lookups and NDJSON
// streams, and reports throughput and latency quantiles. Results are
// also written as JSON (default BENCH_serve.json) so runs can be
// diffed across commits.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"commdb"
	"commdb/internal/bench"
	"commdb/internal/obs"
	"commdb/internal/server"
)

// serveBenchReport is the BENCH_serve.json schema.
type serveBenchReport struct {
	Dataset    string        `json:"dataset"`
	Authors    int           `json:"authors"`
	Nodes      int           `json:"nodes"`
	Edges      int           `json:"edges"`
	Clients    int           `json:"clients"`
	Requests   int           `json:"requests"`
	Unique     bool          `json:"unique,omitempty"`
	NoCache    bool          `json:"nocache,omitempty"`
	DurationMS float64       `json:"duration_ms"`
	Throughput float64       `json:"throughput_rps"`
	Errors     int           `json:"errors"`
	TopK       endpointStats `json:"topk"`
	// TopKCached/TopKUncached split the topk latencies by whether the
	// response came from the result cache. The combined TopK figure on a
	// cache-friendly workload mostly measures the cache; the uncached
	// split is the engine's number.
	TopKCached   endpointStats        `json:"topk_cached"`
	TopKUncached endpointStats        `json:"topk_uncached"`
	Stream       endpointStats        `json:"stream"`
	Server       server.StatsSnapshot `json:"server_stats"`
	// Trace aggregates one traced execution per distinct request shape,
	// run after the timed benchmark so tracing cannot perturb it.
	Trace traceProfile `json:"trace_profile"`
}

// traceProfile is the per-stage view of where query time goes, averaged
// over the workload's distinct request shapes.
type traceProfile struct {
	Queries int                 `json:"queries"`
	Stages  map[string]stageAgg `json:"stages"`
	// Inter-emission delay over every community emitted by the traced
	// queries — the paper's polynomial-delay claim as a measurement.
	MeanEmissionDelayMS float64 `json:"mean_emission_delay_ms"`
	MaxEmissionDelayMS  float64 `json:"max_emission_delay_ms"`
	MeanDijkstraRuns    float64 `json:"mean_dijkstra_runs"`
	MeanDijkstraVisits  float64 `json:"mean_dijkstra_visits"`
	MeanHeapPushes      float64 `json:"mean_heap_pushes"`
}

type stageAgg struct {
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// aggregateTraces folds per-query trace summaries into the profile.
func aggregateTraces(sums []*obs.Summary) traceProfile {
	prof := traceProfile{Stages: map[string]stageAgg{}}
	if len(sums) == 0 {
		return prof
	}
	type acc struct {
		sum, max float64
		n        int
	}
	stages := map[string]*acc{}
	var delaySum, delayMax float64
	var delayN int
	var runs, visits, pushes int64
	for _, s := range sums {
		prof.Queries++
		for _, sp := range s.Spans {
			a := stages[sp.Name]
			if a == nil {
				a = &acc{}
				stages[sp.Name] = a
			}
			a.sum += sp.DurMS
			a.n++
			if sp.DurMS > a.max {
				a.max = sp.DurMS
			}
		}
		if e := s.Emissions; e != nil {
			for _, d := range e.DelaysMS {
				delaySum += d
				delayN++
			}
			if e.MaxDelayMS > delayMax {
				delayMax = e.MaxDelayMS
			}
		}
		runs += s.Counter("dijkstra_runs")
		visits += s.Counter("dijkstra_visits")
		pushes += s.Counter("heap_pushes")
	}
	for name, a := range stages {
		prof.Stages[name] = stageAgg{MeanMS: a.sum / float64(a.n), MaxMS: a.max}
	}
	if delayN > 0 {
		prof.MeanEmissionDelayMS = delaySum / float64(delayN)
	}
	prof.MaxEmissionDelayMS = delayMax
	n := float64(prof.Queries)
	prof.MeanDijkstraRuns = float64(runs) / n
	prof.MeanDijkstraVisits = float64(visits) / n
	prof.MeanHeapPushes = float64(pushes) / n
	return prof
}

type endpointStats struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func summarize(lat []time.Duration) endpointStats {
	if len(lat) == 0 {
		return endpointStats{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	q := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return ms(lat[i])
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return endpointStats{
		Count:  len(lat),
		MeanMS: ms(sum) / float64(len(lat)),
		P50MS:  q(0.50),
		P95MS:  q(0.95),
		P99MS:  q(0.99),
		MaxMS:  ms(lat[len(lat)-1]),
	}
}

// job is one request shape in the benchmark workload: the pre-marshaled
// hot-path body plus the request map, so the trace pass can re-issue the
// same query with "trace": true.
type job struct {
	path string
	body []byte
	req  map[string]any
}

// traceOneQuery re-issues one request shape in EXPLAIN mode and returns
// its trace summary: from the response body on topk, from the NDJSON
// trailer on the streaming endpoint.
func traceOneQuery(client *http.Client, base string, j job) (*obs.Summary, error) {
	req := make(map[string]any, len(j.req)+1)
	for k, v := range j.req {
		req[k] = v
	}
	req["trace"] = true
	body, _ := json.Marshal(req)
	resp, err := client.Post(base+j.path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	if j.path == "/v1/search/topk" {
		var out struct {
			Trace *obs.Summary `json:"trace"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		return out.Trace, nil
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var line struct {
			Type  string       `json:"type"`
			Trace *obs.Summary `json:"trace"`
		}
		if err := dec.Decode(&line); err != nil {
			return nil, err
		}
		if line.Type == server.RecordTrailer {
			return line.Trace, nil
		}
	}
}

// runServe is the -serve entry point. unique perturbs every request's
// rmax in the 1e-9 relative range — same engine work, distinct
// fingerprint — so neither the result cache nor singleflight can
// answer and the benchmark measures the engine. nocache disables the
// server's result cache outright while keeping the request mix
// identical.
func runServe(authors int, seed int64, boost float64, clients, requests int, unique, nocache bool, out string) error {
	fmt.Printf("building DBLP dataset (authors=%d, boost=%gx)...\n", authors, boost)
	start := time.Now()
	d, err := bench.BuildDBLPBoosted(authors, seed, boost)
	if err != nil {
		return err
	}
	fmt.Printf("  done in %v: %d nodes, %d edges\n", time.Since(start).Round(time.Millisecond),
		d.G.NumNodes(), d.G.NumEdges())

	p := d.Config.Defaults
	fmt.Printf("building index (rmax=%g)...\n", p.Rmax)
	s, err := commdb.Open(d.G, commdb.WithIndex(p.Rmax))
	if err != nil {
		return err
	}

	srvCfg := server.Config{}
	if nocache {
		srvCfg.CacheEntries = -1
	}
	app := server.New(s, srvCfg)
	ts := httptest.NewServer(app.Handler())
	defer ts.Close()

	// Workload: a small set of distinct operating points (so the cache
	// sees both misses and hits), each issued with rotated keyword
	// orders to exercise fingerprint canonicalization.
	kws, err := d.Keywords(p)
	if err != nil {
		return err
	}
	if len(kws) < 2 {
		return fmt.Errorf("dataset yielded %d probe keywords, need at least 2", len(kws))
	}
	var jobs []job
	for l := 2; l <= len(kws); l++ {
		for rot := 0; rot < l; rot++ {
			q := append(append([]string{}, kws[rot:l]...), kws[:rot]...)
			topkReq := map[string]any{
				"keywords": q, "rmax": p.Rmax, "cost": "sum", "k": p.K, "compact": true,
			}
			topk, _ := json.Marshal(topkReq)
			jobs = append(jobs, job{"/v1/search/topk", topk, topkReq})
			allReq := map[string]any{
				"keywords": q, "rmax": p.Rmax, "cost": "sum", "compact": true,
				"limits": map[string]any{"max_results": 50},
			}
			all, _ := json.Marshal(allReq)
			jobs = append(jobs, job{"/v1/search/all", all, allReq})
		}
	}

	mode := "cache-friendly"
	if unique {
		mode = "unique queries"
	}
	if nocache {
		mode += ", cache disabled"
	}
	fmt.Printf("serving benchmark: %d clients, %d requests, %d distinct request shapes (%s)\n",
		clients, requests, len(jobs), mode)
	var (
		next          atomic.Int64
		mu            sync.Mutex
		topkLat       []time.Duration
		topkCachedLat []time.Duration
		topkMissLat   []time.Duration
		allLat        []time.Duration
		errorsN       int
	)
	client := ts.Client()
	bstart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				j := jobs[i%len(jobs)]
				body := j.body
				if unique {
					// Shrink rmax by parts-per-billion: the radius bound is
					// effectively unchanged (same work, and still within the
					// index's radius), but the query fingerprint — and with it
					// the cache key and singleflight key — differs for every
					// request.
					req := make(map[string]any, len(j.req))
					for k, v := range j.req {
						req[k] = v
					}
					req["rmax"] = p.Rmax * (1 - float64(i+1)*1e-9)
					body, _ = json.Marshal(req)
				}
				isTopK := j.path == "/v1/search/topk"
				var raw []byte
				t0 := time.Now()
				resp, err := client.Post(ts.URL+j.path, "application/json", bytes.NewReader(body))
				if err == nil {
					raw, err = io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
				lat := time.Since(t0)
				cached := false
				if err == nil && isTopK {
					var probe struct {
						Cached bool `json:"cached"`
					}
					if jerr := json.Unmarshal(raw, &probe); jerr == nil {
						cached = probe.Cached
					}
				}
				mu.Lock()
				switch {
				case err != nil:
					if errorsN == 0 {
						fmt.Printf("  first error: %s: %v\n", j.path, err)
					}
					errorsN++
				case isTopK:
					topkLat = append(topkLat, lat)
					if cached {
						topkCachedLat = append(topkCachedLat, lat)
					} else {
						topkMissLat = append(topkMissLat, lat)
					}
				default:
					allLat = append(allLat, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(bstart)

	// Trace pass: one EXPLAIN execution per distinct request shape,
	// after the clock stops so tracing cannot perturb the timed run.
	var sums []*obs.Summary
	for _, j := range jobs {
		sum, err := traceOneQuery(client, ts.URL, j)
		if err != nil {
			fmt.Printf("  trace pass: %s: %v (skipped)\n", j.path, err)
			continue
		}
		if sum != nil {
			sums = append(sums, sum)
		}
	}

	rep := serveBenchReport{
		Dataset:      d.Name,
		Authors:      authors,
		Nodes:        d.G.NumNodes(),
		Edges:        d.G.NumEdges(),
		Clients:      clients,
		Requests:     requests,
		Unique:       unique,
		NoCache:      nocache,
		DurationMS:   float64(elapsed) / float64(time.Millisecond),
		Throughput:   float64(requests) / elapsed.Seconds(),
		Errors:       errorsN,
		TopK:         summarize(topkLat),
		TopKCached:   summarize(topkCachedLat),
		TopKUncached: summarize(topkMissLat),
		Stream:       summarize(allLat),
		Server:       app.Stats(),
		Trace:        aggregateTraces(sums),
	}
	fmt.Printf("done in %v: %.1f req/s, %d errors\n", elapsed.Round(time.Millisecond), rep.Throughput, errorsN)
	fmt.Printf("  topk:   n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rep.TopK.Count, rep.TopK.MeanMS, rep.TopK.P50MS, rep.TopK.P95MS, rep.TopK.P99MS)
	fmt.Printf("    cached:   n=%d mean=%.2fms p95=%.2fms | uncached: n=%d mean=%.2fms p95=%.2fms\n",
		rep.TopKCached.Count, rep.TopKCached.MeanMS, rep.TopKCached.P95MS,
		rep.TopKUncached.Count, rep.TopKUncached.MeanMS, rep.TopKUncached.P95MS)
	fmt.Printf("  stream: n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rep.Stream.Count, rep.Stream.MeanMS, rep.Stream.P50MS, rep.Stream.P95MS, rep.Stream.P99MS)
	fmt.Printf("  cache: %d hits, %d misses, %d coalesced; admission: %d rejected\n",
		rep.Server.CacheHits, rep.Server.CacheMisses, rep.Server.SingleflightShared, rep.Server.AdmissionRejections)
	fmt.Printf("  trace: %d queries, emission delay mean=%.3fms max=%.3fms, dijkstra visits/query=%.0f\n",
		rep.Trace.Queries, rep.Trace.MeanEmissionDelayMS, rep.Trace.MaxEmissionDelayMS, rep.Trace.MeanDijkstraVisits)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
