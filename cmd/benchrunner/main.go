// Command benchrunner regenerates every figure of the paper's Section
// VII: it builds the synthetic DBLP and IMDB datasets, runs the three
// COMM-all algorithms (PDall/BUall/TDall), the three COMM-k algorithms
// (PDk/BUk/TDk) and the interactive top-k scenario across the full
// parameter sweeps of Tables II and IV, and prints one table per
// figure, plus the index construction/projection statistics quoted in
// the text.
//
// Usage:
//
//	benchrunner                         # everything, default scale
//	benchrunner -experiments fig9a,fig12dblp
//	benchrunner -authors 20000 -users 1200 -avg-ratings 60
//	benchrunner -serve -serve-clients 16 -serve-requests 1000
//
// With -serve it benchmarks the HTTP serving stack (internal/server)
// instead: concurrent clients mixing cached top-k lookups and NDJSON
// streams against an in-process server on the synthetic DBLP graph,
// reporting throughput and p50/p95/p99 latency, written to
// BENCH_serve.json.
//
// With -parallel it sweeps the in-query parallel execution engine
// (WithParallelism) over a set of worker degrees on the synthetic DBLP
// graph, reporting per-degree engine-init and total latency plus
// speedups against the sequential run, written to BENCH_parallel.json.
//
// With -kwcache it benchmarks the keyword neighbor-set artifact store
// (tier 1 of the semantic cache): the same top-k query against a cold
// searcher (engine init pays live per-keyword Dijkstras) and a warm
// one (init served from prefilled artifacts), asserting both produce
// byte-identical results, written to BENCH_kwcache.json.
//
// With -delta it benchmarks the incremental index maintainer
// (internal/delta): small mutation batches applied as bounded deltas,
// timed against a from-scratch rebuild of the final state, written to
// BENCH_delta.json.
//
// With -replay it deterministically re-executes a workload journal
// captured by commserve -workload-log (or the canonical synthetic one
// from -replay-gen) against an in-process single-threaded server or a
// live one (-replay-server), reporting latency plus an outcome digest
// over every query's canonical result sequence, written to
// BENCH_replay.json. Two replays of the same journal on the same
// dataset must produce the same digest; -compare treats a digest
// mismatch as a hard failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"commdb/internal/bench"
)

func main() {
	var (
		experiments = flag.String("experiments", "all", "comma-separated experiment ids, or all")
		authors     = flag.Int("authors", 8000, "DBLP scale: number of authors")
		users       = flag.Int("users", 800, "IMDB scale: number of users")
		movies      = flag.Int("movies", 2500, "IMDB catalog size (0 = the real users:movies ratio)")
		avgRatings  = flag.Float64("avg-ratings", 165, "IMDB: average ratings per user (165 = the real density)")
		dblpBoost   = flag.Float64("dblp-boost", 2.5, "DBLP probe KWF multiplier compensating reduced scale")
		imdbBoost   = flag.Float64("imdb-boost", 0.1, "IMDB probe KWF multiplier (rebases KWF to text-bearing tuples)")
		seed        = flag.Int64("seed", 1, "generator seed")
		maxResults  = flag.Int("max-results", 100000, "COMM-all result cap per operating point (0 = unlimited)")
		ablations   = flag.Bool("ablations", true, "also run the ablation studies from DESIGN.md")
		charts      = flag.Bool("charts", false, "render each series as an ASCII bar chart too")
		list        = flag.Bool("list", false, "list experiment ids and exit")

		serve         = flag.Bool("serve", false, "benchmark the HTTP serving stack instead of the algorithms")
		serveClients  = flag.Int("serve-clients", 8, "-serve: concurrent HTTP clients")
		serveRequests = flag.Int("serve-requests", 400, "-serve: total requests across all clients")
		serveUnique   = flag.Bool("serve-unique", false, "-serve: make every request's query unique so the cache and singleflight never answer")
		serveNoCache  = flag.Bool("serve-nocache", false, "-serve: disable the server's result cache")
		serveOut      = flag.String("serve-out", "BENCH_serve.json", "-serve: JSON report path")

		parallel        = flag.Bool("parallel", false, "benchmark the in-query parallel execution engine instead of the algorithms")
		parallelDegrees = flag.String("parallel-degrees", "1,2,4", "-parallel: comma-separated parallelism degrees to sweep")
		parallelQueries = flag.Int("parallel-queries", 5, "-parallel: averaged repetitions per degree (plus one warm-up)")
		parallelK       = flag.Int("parallel-k", 50, "-parallel: communities materialized per query")
		parallelOut     = flag.String("parallel-out", "BENCH_parallel.json", "-parallel: JSON report path")
		profileRun      = flag.Bool("profile", false, "-parallel: write a per-degree CPU profile (cpu_p<degree>.pprof) into -profile-dir")
		profileDir      = flag.String("profile-dir", ".", "-parallel: directory for -profile captures")

		kwcacheBench   = flag.Bool("kwcache", false, "benchmark keyword-artifact warm vs cold engine init instead of the algorithms")
		kwcacheQueries = flag.Int("kwcache-queries", 5, "-kwcache: averaged repetitions per side (plus one warm-up)")
		kwcacheK       = flag.Int("kwcache-k", 50, "-kwcache: communities materialized per query")
		kwcacheOut     = flag.String("kwcache-out", "BENCH_kwcache.json", "-kwcache: JSON report path")

		deltaBench    = flag.Bool("delta", false, "benchmark the incremental index maintainer instead of the algorithms")
		deltaAuthors  = flag.Int("delta-authors", 2000, "-delta: DBLP scale (kept small: every batch is compared against a full rebuild)")
		deltaRmax     = flag.Float64("delta-rmax", 6, "-delta: index radius")
		deltaBatches  = flag.Int("delta-batches", 20, "-delta: mutation batches to apply")
		deltaBatchOps = flag.Int("delta-batch-ops", 10, "-delta: ops per batch")
		deltaOut      = flag.String("delta-out", "BENCH_delta.json", "-delta: JSON report path")

		replay        = flag.String("replay", "", "replay a captured workload journal and write BENCH_replay.json")
		replayGen     = flag.String("replay-gen", "", "write the canonical synthetic workload journal to this path and exit")
		replayOut     = flag.String("replay-out", "BENCH_replay.json", "-replay: JSON report path")
		replayServer  = flag.String("replay-server", "", "-replay: replay against this live server base URL instead of an in-process one")
		replayAuthors = flag.Int("replay-authors", 2000, "-replay/-replay-gen: DBLP scale for the in-process target (kept small: replay is sequential)")
		replayPace    = flag.Bool("replay-pace", false, "-replay: honor the journal's recorded inter-arrival gaps (capped at 1s) instead of replaying back-to-back")

		compare   = flag.Bool("compare", false, "compare two -serve, -parallel, -delta or -replay reports: benchrunner -compare old.json new.json")
		tolerance = flag.Float64("tolerance", 0.15, "-compare: allowed fractional regression before failing")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchrunner -compare [-tolerance 0.15] old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *replayGen != "" {
		if err := runReplayGen(*replayGen, *replayAuthors, *seed, *dblpBoost); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *replay != "" {
		if err := runReplay(*replay, *replayAuthors, *seed, *dblpBoost, *replayServer, *replayPace, *replayOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *serve {
		if err := runServe(*authors, *seed, *dblpBoost, *serveClients, *serveRequests, *serveUnique, *serveNoCache, *serveOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *parallel {
		if err := runParallel(*authors, *seed, *dblpBoost, *parallelDegrees, *parallelQueries, *parallelK, *profileRun, *profileDir, *parallelOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *kwcacheBench {
		if err := runKwcache(*authors, *seed, *dblpBoost, *kwcacheQueries, *kwcacheK, *kwcacheOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *deltaBench {
		if err := runDelta(*deltaAuthors, *seed, *deltaRmax, *deltaBatches, *deltaBatchOps, *deltaOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s [%s] %s\n", e.ID, e.Dataset, e.Title)
		}
		return
	}
	if err := run(*experiments, *authors, *users, *movies, *avgRatings, *dblpBoost, *imdbBoost, *seed, *maxResults, *ablations, *charts); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run(experiments string, authors, users, movies int, avgRatings, dblpBoost, imdbBoost float64, seed int64, maxResults int, ablations, charts bool) error {
	want := map[string]bool{}
	runAll := experiments == "all"
	if !runAll {
		for _, id := range strings.Split(experiments, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	selected := make([]bench.Experiment, 0)
	needDBLP, needIMDB := false, false
	for _, e := range bench.Experiments() {
		if runAll || want[e.ID] {
			selected = append(selected, e)
			if e.Dataset == "dblp" {
				needDBLP = true
			} else {
				needIMDB = true
			}
			delete(want, e.ID)
		}
	}
	if len(want) > 0 {
		return fmt.Errorf("unknown experiment ids: %v (use -list)", keys(want))
	}
	if len(selected) == 0 {
		return fmt.Errorf("no experiments selected")
	}

	datasets := map[string]*bench.Dataset{}
	if needDBLP {
		fmt.Printf("building DBLP dataset (authors=%d, boost=%gx)...\n", authors, dblpBoost)
		start := time.Now()
		d, err := bench.BuildDBLPBoosted(authors, seed, dblpBoost)
		if err != nil {
			return err
		}
		d.EnableSweepCache()
		datasets["dblp"] = d
		fmt.Printf("  done in %v: %d nodes, %d edges\n", time.Since(start).Round(time.Millisecond),
			d.G.NumNodes(), d.G.NumEdges())
		if err := printIndexReport(d); err != nil {
			return err
		}
	}
	if needIMDB {
		fmt.Printf("building IMDB dataset (users=%d, avg-ratings=%.0f, boost=%gx)...\n", users, avgRatings, imdbBoost)
		start := time.Now()
		d, err := bench.BuildIMDBFull(users, movies, avgRatings, seed, imdbBoost)
		if err != nil {
			return err
		}
		d.EnableSweepCache()
		datasets["imdb"] = d
		fmt.Printf("  done in %v: %d nodes, %d edges\n", time.Since(start).Round(time.Millisecond),
			d.G.NumNodes(), d.G.NumEdges())
		if err := printIndexReport(d); err != nil {
			return err
		}
	}

	for _, e := range selected {
		d := datasets[e.Dataset]
		fmt.Printf("\n=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		s, err := e.Run(d, maxResults)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Print(s.Format())
		if charts {
			fmt.Print(s.Chart(50))
		}
		fmt.Printf("(%v)\n", time.Since(start).Round(time.Millisecond))
	}

	if ablations {
		for _, name := range []string{"dblp", "imdb"} {
			d, ok := datasets[name]
			if !ok {
				continue
			}
			fmt.Printf("\n=== ablation-projection (%s) ===\n", name)
			s, err := d.AblationProjection(d.Config.Defaults)
			if err != nil {
				return err
			}
			fmt.Print(s.Format())
			fmt.Printf("\n=== ablation-slotcache (%s) ===\n", name)
			s, err = d.AblationSlotCache(d.Config.Defaults, maxResults)
			if err != nil {
				return err
			}
			fmt.Print(s.Format())
			fmt.Printf("\n=== motivation (%s) ===\n", name)
			s, err = d.Motivation(d.Config.Defaults, maxResults)
			if err != nil {
				return err
			}
			fmt.Print(s.Format())
			fmt.Printf("\n=== latency (%s) ===\n", name)
			s, err = d.LatencyReport(20, d.Config.Defaults.K, seed)
			if err != nil {
				return err
			}
			fmt.Print(s.Format())
		}
	}
	return nil
}

func printIndexReport(d *bench.Dataset) error {
	rep, err := d.BuildIndexReport()
	if err != nil {
		return err
	}
	fmt.Printf("  %s\n", rep)
	return nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
