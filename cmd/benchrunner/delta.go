package main

// The -delta mode benchmarks the incremental index maintainer
// (internal/delta) against the cost it avoids: it builds a synthetic
// DBLP database, pays the initial from-scratch graph+index build once,
// then applies a seeded mutation stream in small batches, timing each
// bounded delta apply. A from-scratch rebuild of the final state is
// timed as the reference, so the report's speedup says how much cheaper
// absorbing a small batch is than rebuilding — the claim that justifies
// the subsystem. Results are written as JSON (default BENCH_delta.json)
// for -compare.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"commdb/internal/datagen"
	"commdb/internal/delta"
	"commdb/internal/index"
	"commdb/internal/prof"
)

// deltaBenchReport is the BENCH_delta.json schema. DeltaBatches doubles
// as the kind-sniffing key for -compare.
type deltaBenchReport struct {
	Dataset      string  `json:"dataset"`
	Authors      int     `json:"authors"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	Rmax         float64 `json:"rmax"`
	DeltaBatches int     `json:"delta_batches"`
	OpsPerBatch  int     `json:"ops_per_batch"`

	// FullBuildMS is the initial from-scratch build (graph + index);
	// RebuildMS is a from-scratch graph + index build of the post-stream
	// state — the cost a non-incremental pipeline would pay per batch.
	FullBuildMS float64 `json:"full_build_ms"`
	RebuildMS   float64 `json:"rebuild_ms"`

	MeanApplyMS float64 `json:"mean_apply_ms"`
	P50ApplyMS  float64 `json:"p50_apply_ms"`
	MaxApplyMS  float64 `json:"max_apply_ms"`

	// Dirty-set sizes: how bounded the bounded delta actually was.
	MeanDirtyTerms float64 `json:"mean_dirty_terms"`
	MeanTotalTerms float64 `json:"mean_total_terms"`

	// Speedup is RebuildMS / MeanApplyMS — how many times cheaper one
	// small-batch delta is than the rebuild it replaces. Not gated by
	// -compare (both sides move with host speed; the absolute latencies
	// are the stable signal) but reported for the headline.
	Speedup float64 `json:"speedup_vs_rebuild"`

	// StageBreakdown is the mean per-batch milliseconds spent in each
	// pipeline stage (to_graph, dirty_terms, region_mark, fulltext,
	// remap, repair, merge, recompute), averaged over the applied
	// batches — where an apply's wall time actually goes. Informational
	// in -compare: the stage mix is diagnosis, the gated totals are the
	// contract.
	StageBreakdown map[string]float64 `json:"stage_breakdown,omitempty"`
}

// runDelta is the -delta entry point.
func runDelta(authors int, seed int64, rmax float64, batches, opsPerBatch int, out string) error {
	if batches < 1 || opsPerBatch < 1 {
		return fmt.Errorf("-delta-batches and -delta-batch-ops must be >= 1")
	}
	fmt.Printf("building DBLP database (authors=%d)...\n", authors)
	// One copy generates the stream (Mutations applies ops as it emits
	// them), an identical copy is maintained incrementally.
	gen, err := datagen.GenerateDBLP(datagen.DBLPParams{Authors: authors, Seed: seed})
	if err != nil {
		return err
	}
	db, err := datagen.GenerateDBLP(datagen.DBLPParams{Authors: authors, Seed: seed})
	if err != nil {
		return err
	}
	ops, err := datagen.Mutations(gen, datagen.MutationParams{N: batches * opsPerBatch, Seed: seed + 1})
	if err != nil {
		return err
	}

	m, err := delta.NewMaintainer(db, delta.Config{R: rmax})
	if err != nil {
		return err
	}
	rep := deltaBenchReport{
		Dataset:      "dblp",
		Authors:      authors,
		Nodes:        m.Graph().NumNodes(),
		Edges:        m.Graph().NumEdges(),
		Rmax:         rmax,
		DeltaBatches: batches,
		OpsPerBatch:  opsPerBatch,
		FullBuildMS:  m.Stats().FullBuildMS,
	}
	fmt.Printf("  %d nodes, %d edges; initial build %.1fms; %d batches x %d ops\n",
		rep.Nodes, rep.Edges, rep.FullBuildMS, batches, opsPerBatch)

	applyMS := make([]float64, 0, batches)
	var dirtySum, totalSum float64
	stageSum := map[string]float64{}
	for i := 0; i < batches; i++ {
		batch := ops[i*opsPerBatch : (i+1)*opsPerBatch]
		bs, err := m.Apply(batch)
		if err != nil {
			return fmt.Errorf("batch %d: %w", i, err)
		}
		if bs.FullRebuild {
			return fmt.Errorf("batch %d took the full-rebuild path on a data-only stream", i)
		}
		applyMS = append(applyMS, bs.ApplyMS)
		dirtySum += float64(bs.DirtyTerms)
		totalSum += float64(bs.TotalTerms)
		for k, v := range bs.Stages {
			stageSum[k] += v
		}
	}
	if fb := m.Stats().PartialFallbacks; fb != 0 {
		return fmt.Errorf("%d partial fallbacks — the delta path did not hold", fb)
	}

	// The reference: rebuilding the final state from scratch, once. A
	// non-incremental pipeline starts from the database, so the rebuild
	// pays graph materialization as well as the index build — exactly
	// what each timed Apply above also paid before its bounded delta.
	// gen holds the post-stream state (Mutations applies as it emits).
	start := time.Now()
	g2, _, err := gen.ToGraph()
	if err != nil {
		return err
	}
	if _, err := index.Build(g2, index.BuildOptions{R: rmax}); err != nil {
		return err
	}
	rep.RebuildMS = float64(time.Since(start)) / float64(time.Millisecond)

	sorted := append([]float64(nil), applyMS...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range applyMS {
		sum += v
	}
	rep.MeanApplyMS = sum / float64(len(applyMS))
	rep.P50ApplyMS = sorted[len(sorted)/2]
	rep.MaxApplyMS = sorted[len(sorted)-1]
	rep.MeanDirtyTerms = dirtySum / float64(batches)
	rep.MeanTotalTerms = totalSum / float64(batches)
	if rep.MeanApplyMS > 0 {
		rep.Speedup = rep.RebuildMS / rep.MeanApplyMS
	}

	if len(stageSum) > 0 {
		rep.StageBreakdown = make(map[string]float64, len(stageSum))
		for k, v := range stageSum {
			rep.StageBreakdown[k] = v / float64(batches)
		}
	}

	fmt.Printf("  delta apply: mean %.1fms  p50 %.1fms  max %.1fms  (dirty %.0f/%.0f terms)\n",
		rep.MeanApplyMS, rep.P50ApplyMS, rep.MaxApplyMS, rep.MeanDirtyTerms, rep.MeanTotalTerms)
	for _, name := range prof.SortedStageNames(rep.StageBreakdown) {
		fmt.Printf("    stage %-12s %8.3fms/batch\n", name, rep.StageBreakdown[name])
	}
	fmt.Printf("  full rebuild of final state: %.1fms  ->  delta is %.1fx cheaper\n",
		rep.RebuildMS, rep.Speedup)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", out)
	return nil
}
