package main

// The -compare mode is the perf-regression gate: it diffs two -serve
// reports (an old baseline and a fresh run) and exits nonzero when the
// new run regresses beyond the tolerance — throughput lower, or any
// latency quantile higher. CI runs it against the committed baseline so
// a slowdown fails the build instead of landing silently.

import (
	"encoding/json"
	"fmt"
	"os"
)

// minCompareMS is the noise floor: latency metrics below it on the old
// side are skipped, since sub-50µs quantiles are dominated by scheduler
// jitter and would make the gate flaky.
const minCompareMS = 0.05

// metricDelta is one compared metric.
type metricDelta struct {
	Name    string
	Old     float64
	New     float64
	Ratio   float64 // new/old
	Regress bool
}

// compareReports diffs new against old. tolerance is fractional: 0.15
// allows latency up to 1.15x the baseline and throughput down to 0.85x.
// It returns every compared metric, regressions flagged.
func compareReports(old, new serveBenchReport, tolerance float64) []metricDelta {
	var out []metricDelta
	// Throughput: lower is worse.
	if old.Throughput > 0 {
		d := metricDelta{Name: "throughput_rps", Old: old.Throughput, New: new.Throughput,
			Ratio: new.Throughput / old.Throughput}
		d.Regress = new.Throughput < old.Throughput*(1-tolerance)
		out = append(out, d)
	}
	// Latency quantiles: higher is worse.
	lat := func(name string, o, n endpointStats) {
		for _, m := range []struct {
			q        string
			old, new float64
		}{
			{"mean_ms", o.MeanMS, n.MeanMS},
			{"p50_ms", o.P50MS, n.P50MS},
			{"p95_ms", o.P95MS, n.P95MS},
			{"p99_ms", o.P99MS, n.P99MS},
		} {
			if o.Count == 0 || n.Count == 0 || m.old < minCompareMS {
				continue
			}
			d := metricDelta{Name: name + "." + m.q, Old: m.old, New: m.new, Ratio: m.new / m.old}
			d.Regress = m.new > m.old*(1+tolerance)
			out = append(out, d)
		}
	}
	lat("topk", old.TopK, new.TopK)
	lat("stream", old.Stream, new.Stream)
	lat("topk_uncached", old.TopKUncached, new.TopKUncached)
	lat("topk_cached", old.TopKCached, new.TopKCached)
	return out
}

// regressions filters the deltas down to failures.
func regressions(deltas []metricDelta) []metricDelta {
	var out []metricDelta
	for _, d := range deltas {
		if d.Regress {
			out = append(out, d)
		}
	}
	return out
}

// loadReport reads a -serve JSON report.
func loadReport(path string) (serveBenchReport, error) {
	var rep serveBenchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// runCompare is the -compare entry point: benchrunner -compare
// [-tolerance 0.15] old.json new.json. It prints every compared metric
// and returns an error (→ exit 1) when any regresses.
func runCompare(oldPath, newPath string, tolerance float64) error {
	old, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	new, err := loadReport(newPath)
	if err != nil {
		return err
	}
	deltas := compareReports(old, new, tolerance)
	if len(deltas) == 0 {
		return fmt.Errorf("no comparable metrics between %s and %s", oldPath, newPath)
	}
	fmt.Printf("comparing %s -> %s (tolerance %.0f%%)\n", oldPath, newPath, tolerance*100)
	for _, d := range deltas {
		mark := "ok  "
		if d.Regress {
			mark = "FAIL"
		}
		fmt.Printf("  %s %-24s old=%10.3f new=%10.3f (%.2fx)\n", mark, d.Name, d.Old, d.New, d.Ratio)
	}
	if bad := regressions(deltas); len(bad) > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%% tolerance", len(bad), tolerance*100)
	}
	fmt.Println("no regressions")
	return nil
}
