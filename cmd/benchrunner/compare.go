package main

// The -compare mode is the perf-regression gate: it diffs two reports
// (an old baseline and a fresh run) and exits nonzero when the new run
// regresses beyond the tolerance — throughput lower, or any latency
// metric higher. It handles -serve, -parallel, -delta, -replay and
// -kwcache reports, sniffing the kind from the JSON shape ("degrees"
// key → parallel, "delta_batches" key → delta, "outcome_digest" key →
// replay, "kwcache_keywords" key → kwcache); both inputs must be the
// same kind. CI runs it against the committed
// baseline so a slowdown fails the build instead of landing silently.
// For replay reports the outcome digest is compared first and a
// mismatch is a hard error regardless of tolerance: it means engine
// behavior changed, not performance.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// minCompareMS is the noise floor: latency metrics below it on the old
// side are skipped, since sub-50µs quantiles are dominated by scheduler
// jitter and would make the gate flaky.
const minCompareMS = 0.05

// metricDelta is one compared metric.
type metricDelta struct {
	Name    string
	Old     float64
	New     float64
	Ratio   float64 // new/old
	Regress bool
}

// compareReports diffs new against old. tolerance is fractional: 0.15
// allows latency up to 1.15x the baseline and throughput down to 0.85x.
// It returns every compared metric, regressions flagged.
func compareReports(old, new serveBenchReport, tolerance float64) []metricDelta {
	var out []metricDelta
	// Throughput: lower is worse.
	if old.Throughput > 0 {
		d := metricDelta{Name: "throughput_rps", Old: old.Throughput, New: new.Throughput,
			Ratio: new.Throughput / old.Throughput}
		d.Regress = new.Throughput < old.Throughput*(1-tolerance)
		out = append(out, d)
	}
	// Latency quantiles: higher is worse.
	lat := func(name string, o, n endpointStats) {
		for _, m := range []struct {
			q        string
			old, new float64
		}{
			{"mean_ms", o.MeanMS, n.MeanMS},
			{"p50_ms", o.P50MS, n.P50MS},
			{"p95_ms", o.P95MS, n.P95MS},
			{"p99_ms", o.P99MS, n.P99MS},
		} {
			if o.Count == 0 || n.Count == 0 || m.old < minCompareMS {
				continue
			}
			d := metricDelta{Name: name + "." + m.q, Old: m.old, New: m.new, Ratio: m.new / m.old}
			d.Regress = m.new > m.old*(1+tolerance)
			out = append(out, d)
		}
	}
	lat("topk", old.TopK, new.TopK)
	lat("stream", old.Stream, new.Stream)
	lat("topk_uncached", old.TopKUncached, new.TopKUncached)
	lat("topk_cached", old.TopKCached, new.TopKCached)
	return out
}

// regressions filters the deltas down to failures.
func regressions(deltas []metricDelta) []metricDelta {
	var out []metricDelta
	for _, d := range deltas {
		if d.Regress {
			out = append(out, d)
		}
	}
	return out
}

// compareParallelReports diffs a new -parallel report against an old
// one: per-degree engine_init and total latency, higher is worse. Only
// degrees present in both reports are compared. Speedup ratios are NOT
// gated — they depend on host core count, so a single-core CI runner
// comparing against a multi-core baseline would fail spuriously;
// absolute latencies at matching degrees are the stable signal.
func compareParallelReports(old, new parallelBenchReport, tolerance float64) []metricDelta {
	newByDeg := map[int]degreeStats{}
	for _, d := range new.Degrees {
		newByDeg[d.Parallelism] = d
	}
	var out []metricDelta
	for _, o := range old.Degrees {
		n, ok := newByDeg[o.Parallelism]
		if !ok {
			continue
		}
		for _, m := range []struct {
			name     string
			old, new float64
		}{
			{fmt.Sprintf("p%d.first_result_ms", o.Parallelism), o.FirstResultMS, n.FirstResultMS},
			{fmt.Sprintf("p%d.total_ms", o.Parallelism), o.TotalMS, n.TotalMS},
		} {
			if m.old < minCompareMS {
				continue
			}
			d := metricDelta{Name: m.name, Old: m.old, New: m.new, Ratio: m.new / m.old}
			d.Regress = m.new > m.old*(1+tolerance)
			out = append(out, d)
		}
	}
	// The core curve rides along informationally (never gated): its
	// shape is host-topology-bound, so two machines legitimately
	// disagree, but seeing the per-core trend drift is diagnosis gold.
	newByProcs := map[int]corePoint{}
	for _, p := range new.CoreCurve {
		newByProcs[p.Procs] = p
	}
	for _, o := range old.CoreCurve {
		n, ok := newByProcs[o.Procs]
		if !ok || o.TotalMS < minCompareMS {
			continue
		}
		out = append(out, metricDelta{
			Name: fmt.Sprintf("cores%d.total_ms", o.Procs),
			Old:  o.TotalMS, New: n.TotalMS, Ratio: n.TotalMS / o.TotalMS,
		})
	}
	return out
}

// parallelCompareNotes returns the informational warnings for a
// parallel-report diff — today, flagging a report whose host had fewer
// cores than its highest swept worker degree: the sweep still ran (the
// engine's determinism holds at any degree) but the extra workers
// time-share cores, so speedups saturate and absolute latencies
// overlap between degrees.
func parallelCompareNotes(path string, rep parallelBenchReport) []string {
	maxDeg := 0
	for _, d := range rep.Degrees {
		if d.Parallelism > maxDeg {
			maxDeg = d.Parallelism
		}
	}
	if rep.HostCPUs > 0 && maxDeg > rep.HostCPUs {
		return []string{fmt.Sprintf(
			"note: %s swept parallelism up to %d on a %d-CPU host; degrees beyond the core count time-share cores, so their speedups saturate and latencies overlap",
			path, maxDeg, rep.HostCPUs)}
	}
	return nil
}

// compareKwcacheReports diffs a new -kwcache report against an old
// one: both sides' latencies plus the one-time warm-up cost, higher is
// worse. The speedup ratios are not gated (quotients of gated
// latencies), and the store footprint is workload shape — it rides
// along informationally so a sudden artifact-size inflation is at
// least visible in the diff output.
func compareKwcacheReports(old, new kwcacheBenchReport, tolerance float64) []metricDelta {
	var out []metricDelta
	for _, m := range []struct {
		name     string
		old, new float64
		gated    bool
	}{
		{"warm_up_ms", old.WarmMS, new.WarmMS, true},
		{"cold.first_result_ms", old.Cold.FirstResultMS, new.Cold.FirstResultMS, true},
		{"cold.total_ms", old.Cold.TotalMS, new.Cold.TotalMS, true},
		{"warm.first_result_ms", old.Warm.FirstResultMS, new.Warm.FirstResultMS, true},
		{"warm.total_ms", old.Warm.TotalMS, new.Warm.TotalMS, true},
		{"init_speedup", old.InitSpeedup, new.InitSpeedup, false},
		{"total_speedup", old.TotalSpeedup, new.TotalSpeedup, false},
		{"store_kb", float64(old.StoreBytes) / 1024, float64(new.StoreBytes) / 1024, false},
	} {
		if m.old < minCompareMS {
			continue
		}
		d := metricDelta{Name: m.name, Old: m.old, New: m.new, Ratio: m.new / m.old}
		d.Regress = m.gated && m.new > m.old*(1+tolerance)
		out = append(out, d)
	}
	return out
}

// compareDeltaReports diffs a new -delta report against an old one:
// apply latencies and build times, higher is worse. The speedup ratio
// is not gated (it is a quotient of two gated latencies), the dirty-set
// sizes are workload shape, not performance, and the single worst batch
// (max_apply_ms) is reported but not gated — one scheduler hiccup in
// one batch of twenty would flake the build; mean and p50 already
// catch real slowdowns.
func compareDeltaReports(old, new deltaBenchReport, tolerance float64) []metricDelta {
	var out []metricDelta
	for _, m := range []struct {
		name     string
		old, new float64
		gated    bool
	}{
		{"full_build_ms", old.FullBuildMS, new.FullBuildMS, true},
		{"rebuild_ms", old.RebuildMS, new.RebuildMS, true},
		{"mean_apply_ms", old.MeanApplyMS, new.MeanApplyMS, true},
		{"p50_apply_ms", old.P50ApplyMS, new.P50ApplyMS, true},
		{"max_apply_ms", old.MaxApplyMS, new.MaxApplyMS, false},
	} {
		if m.old < minCompareMS {
			continue
		}
		d := metricDelta{Name: m.name, Old: m.old, New: m.new, Ratio: m.new / m.old}
		d.Regress = m.gated && m.new > m.old*(1+tolerance)
		out = append(out, d)
	}
	// The stage breakdown rides along informationally (never gated):
	// the gated totals are the contract, the per-stage means say where
	// a regression actually landed. Sorted so output is deterministic.
	stages := make([]string, 0, len(old.StageBreakdown))
	for k := range old.StageBreakdown {
		if _, ok := new.StageBreakdown[k]; ok {
			stages = append(stages, k)
		}
	}
	sort.Strings(stages)
	for _, k := range stages {
		o, n := old.StageBreakdown[k], new.StageBreakdown[k]
		if o < minCompareMS {
			continue
		}
		out = append(out, metricDelta{
			Name: "stage." + k + "_ms", Old: o, New: n, Ratio: n / o,
		})
	}
	return out
}

// compareReplayReports diffs a new -replay report against an old one.
// The determinism contract is checked by the caller (digest mismatch is
// a hard error, not a tolerance question); here the performance side is
// gated like a -serve report: throughput lower is worse, latency
// quantiles higher are worse. Cache hits and result totals are workload
// shape — equality is already implied by the digest — so they ride
// along only through it.
func compareReplayReports(old, new replayBenchReport, tolerance float64) []metricDelta {
	var out []metricDelta
	if old.Throughput > 0 {
		d := metricDelta{Name: "throughput_rps", Old: old.Throughput, New: new.Throughput,
			Ratio: new.Throughput / old.Throughput}
		d.Regress = new.Throughput < old.Throughput*(1-tolerance)
		out = append(out, d)
	}
	lat := func(name string, o, n endpointStats) {
		for _, m := range []struct {
			q        string
			old, new float64
		}{
			{"mean_ms", o.MeanMS, n.MeanMS},
			{"p50_ms", o.P50MS, n.P50MS},
			{"p95_ms", o.P95MS, n.P95MS},
			{"p99_ms", o.P99MS, n.P99MS},
		} {
			if o.Count == 0 || n.Count == 0 || m.old < minCompareMS {
				continue
			}
			d := metricDelta{Name: name + "." + m.q, Old: m.old, New: m.new, Ratio: m.new / m.old}
			d.Regress = m.new > m.old*(1+tolerance)
			out = append(out, d)
		}
	}
	lat("topk", old.TopK, new.TopK)
	lat("stream", old.Stream, new.Stream)
	return out
}

// loadDeltas reads two report files of the same sniffed kind and
// returns their metric diffs plus any informational notes.
func loadDeltas(oldPath, newPath string, tolerance float64) ([]metricDelta, []string, error) {
	oldB, err := os.ReadFile(oldPath)
	if err != nil {
		return nil, nil, err
	}
	newB, err := os.ReadFile(newPath)
	if err != nil {
		return nil, nil, err
	}
	oldKind, newKind := reportKind(oldB), reportKind(newB)
	if oldKind != newKind {
		return nil, nil, fmt.Errorf("%s (%s) and %s (%s) are different report kinds",
			oldPath, oldKind, newPath, newKind)
	}
	switch oldKind {
	case "parallel":
		var old, new parallelBenchReport
		if err := json.Unmarshal(oldB, &old); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", oldPath, err)
		}
		if err := json.Unmarshal(newB, &new); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", newPath, err)
		}
		notes := append(parallelCompareNotes(oldPath, old), parallelCompareNotes(newPath, new)...)
		return compareParallelReports(old, new, tolerance), notes, nil
	case "replay":
		var old, new replayBenchReport
		if err := json.Unmarshal(oldB, &old); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", oldPath, err)
		}
		if err := json.Unmarshal(newB, &new); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", newPath, err)
		}
		// The determinism contract comes before any tolerance: two
		// replays of the same journal on the same dataset must agree on
		// every query's outcome. Different journals/datasets also land
		// here — that is a comparison mistake, and a hard error is right.
		if old.OutcomeDigest != new.OutcomeDigest {
			return nil, nil, fmt.Errorf(
				"replay outcome digests differ: %s has %s, %s has %s — engine behavior changed (or the reports replay different workloads)",
				oldPath, old.OutcomeDigest, newPath, new.OutcomeDigest)
		}
		notes := []string{fmt.Sprintf("note: outcome digests match (%s…): %d queries, %d results, %d cache hits — replay is behavior-identical",
			old.OutcomeDigest[:16], new.Queries, new.ResultsTotal, new.CacheHits)}
		return compareReplayReports(old, new, tolerance), notes, nil
	case "kwcache":
		var old, new kwcacheBenchReport
		if err := json.Unmarshal(oldB, &old); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", oldPath, err)
		}
		if err := json.Unmarshal(newB, &new); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", newPath, err)
		}
		return compareKwcacheReports(old, new, tolerance), nil, nil
	case "delta":
		var old, new deltaBenchReport
		if err := json.Unmarshal(oldB, &old); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", oldPath, err)
		}
		if err := json.Unmarshal(newB, &new); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", newPath, err)
		}
		return compareDeltaReports(old, new, tolerance), nil, nil
	default:
		var old, new serveBenchReport
		if err := json.Unmarshal(oldB, &old); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", oldPath, err)
		}
		if err := json.Unmarshal(newB, &new); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", newPath, err)
		}
		return compareReports(old, new, tolerance), nil, nil
	}
}

// reportKind sniffs a report's kind from its JSON shape: only
// -parallel reports carry a top-level "degrees" array, only -delta
// reports a "delta_batches" count, only -replay reports an
// "outcome_digest", only -kwcache reports a "kwcache_keywords" array;
// everything else is a -serve report.
func reportKind(b []byte) string {
	var probe struct {
		Degrees         []json.RawMessage `json:"degrees"`
		DeltaBatches    *int              `json:"delta_batches"`
		OutcomeDigest   *string           `json:"outcome_digest"`
		KwcacheKeywords []json.RawMessage `json:"kwcache_keywords"`
	}
	if json.Unmarshal(b, &probe) != nil {
		return "serve"
	}
	switch {
	case probe.Degrees != nil:
		return "parallel"
	case probe.DeltaBatches != nil:
		return "delta"
	case probe.OutcomeDigest != nil:
		return "replay"
	case probe.KwcacheKeywords != nil:
		return "kwcache"
	default:
		return "serve"
	}
}

// runCompare is the -compare entry point: benchrunner -compare
// [-tolerance 0.15] old.json new.json. It prints every compared metric
// and returns an error (→ exit 1) when any regresses.
func runCompare(oldPath, newPath string, tolerance float64) error {
	deltas, notes, err := loadDeltas(oldPath, newPath, tolerance)
	if err != nil {
		return err
	}
	if len(deltas) == 0 {
		return fmt.Errorf("no comparable metrics between %s and %s", oldPath, newPath)
	}
	fmt.Printf("comparing %s -> %s (tolerance %.0f%%)\n", oldPath, newPath, tolerance*100)
	for _, d := range deltas {
		mark := "ok  "
		if d.Regress {
			mark = "FAIL"
		}
		fmt.Printf("  %s %-24s old=%10.3f new=%10.3f (%.2fx)\n", mark, d.Name, d.Old, d.New, d.Ratio)
	}
	for _, n := range notes {
		fmt.Println("  " + n)
	}
	if bad := regressions(deltas); len(bad) > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%% tolerance", len(bad), tolerance*100)
	}
	fmt.Println("no regressions")
	return nil
}
