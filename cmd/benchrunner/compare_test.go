package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineReport() serveBenchReport {
	mk := func(mean, p50, p95, p99 float64) endpointStats {
		return endpointStats{Count: 100, MeanMS: mean, P50MS: p50, P95MS: p95, P99MS: p99, MaxMS: p99 * 2}
	}
	return serveBenchReport{
		Dataset:      "dblp",
		Requests:     400,
		Throughput:   500,
		TopK:         mk(2, 1.5, 6, 12),
		TopKCached:   mk(0.2, 0.15, 0.6, 1.2),
		TopKUncached: mk(4, 3, 10, 20),
		Stream:       mk(8, 6, 20, 40),
	}
}

// TestCompareIdentical: a report compared against itself passes at any
// tolerance.
func TestCompareIdentical(t *testing.T) {
	rep := baselineReport()
	if bad := regressions(compareReports(rep, rep, 0.15)); len(bad) != 0 {
		t.Fatalf("self-compare regressed: %+v", bad)
	}
}

// TestCompareLatencyRegression is the acceptance test: a synthetic 2x
// latency regression must fail the gate.
func TestCompareLatencyRegression(t *testing.T) {
	old := baselineReport()
	slow := old
	slow.TopK = endpointStats{Count: 100, MeanMS: 4, P50MS: 3, P95MS: 12, P99MS: 24, MaxMS: 48}
	bad := regressions(compareReports(old, slow, 0.15))
	if len(bad) == 0 {
		t.Fatal("2x topk latency passed the 15% gate")
	}
	for _, d := range bad {
		if d.Ratio < 1.9 || d.Ratio > 2.1 {
			t.Fatalf("regression %s has ratio %.2f, want ~2.0", d.Name, d.Ratio)
		}
	}
	// The same diff passes once the tolerance admits a 2x slowdown.
	if bad := regressions(compareReports(old, slow, 1.5)); len(bad) != 0 {
		t.Fatalf("2x latency failed a 150%% tolerance: %+v", bad)
	}
}

// TestCompareThroughputRegression: throughput is gated downward.
func TestCompareThroughputRegression(t *testing.T) {
	old := baselineReport()
	slow := old
	slow.Throughput = old.Throughput * 0.5
	bad := regressions(compareReports(old, slow, 0.15))
	if len(bad) != 1 || bad[0].Name != "throughput_rps" {
		t.Fatalf("halved throughput not flagged: %+v", bad)
	}
	// An improvement never fails.
	fast := old
	fast.Throughput = old.Throughput * 2
	fast.TopK.P99MS = old.TopK.P99MS / 2
	if bad := regressions(compareReports(old, fast, 0.15)); len(bad) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", bad)
	}
}

// TestCompareNoiseFloor: sub-50µs baseline quantiles are skipped so
// scheduler jitter cannot flake the gate.
func TestCompareNoiseFloor(t *testing.T) {
	old := baselineReport()
	old.TopKCached = endpointStats{Count: 100, MeanMS: 0.01, P50MS: 0.01, P95MS: 0.02, P99MS: 0.03}
	new := old
	new.TopKCached = endpointStats{Count: 100, MeanMS: 0.04, P50MS: 0.04, P95MS: 0.08, P99MS: 0.12}
	for _, d := range compareReports(old, new, 0.15) {
		if d.Name == "topk_cached.p50_ms" {
			t.Fatalf("sub-floor metric compared: %+v", d)
		}
	}
}

// TestCompareMissingEndpoint: endpoints absent from either side (zero
// count) are skipped rather than divided by zero.
func TestCompareMissingEndpoint(t *testing.T) {
	old := baselineReport()
	old.TopKCached = endpointStats{}
	deltas := compareReports(old, baselineReport(), 0.15)
	for _, d := range deltas {
		if d.Regress {
			t.Fatalf("zero-count endpoint produced a regression: %+v", d)
		}
	}
}

// TestRunCompareExitPath: the CLI wrapper round-trips JSON files and
// returns an error on regression, nil on a clean diff.
func TestRunCompareExitPath(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep serveBenchReport) string {
		path := filepath.Join(dir, name)
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := baselineReport()
	slow := old
	slow.TopK.P95MS *= 2
	oldPath := write("old.json", old)
	if err := runCompare(oldPath, write("same.json", old), 0.15); err != nil {
		t.Fatalf("self-compare errored: %v", err)
	}
	if err := runCompare(oldPath, write("slow.json", slow), 0.15); err == nil {
		t.Fatal("2x p95 regression returned nil")
	}
	if err := runCompare(filepath.Join(dir, "missing.json"), oldPath, 0.15); err == nil {
		t.Fatal("missing file returned nil")
	}
}

// TestCompareToleratesEpochFields: BENCH_serve.json now embeds the
// snapshot-epoch block in server_stats (and may in the future grow
// per-outcome reload counters there). -compare of a new report against
// a pre-epoch baseline — and the reverse — must work: epoch fields are
// operational telemetry, not gated metrics.
func TestCompareToleratesEpochFields(t *testing.T) {
	dir := t.TempDir()

	oldRep := baselineReport()
	oldB, err := json.Marshal(oldRep)
	if err != nil {
		t.Fatal(err)
	}

	// Build the "new" report by splicing an epochs block (with a made-up
	// extra field, standing in for whatever the block grows next) into
	// server_stats at the JSON level.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(oldB, &raw); err != nil {
		t.Fatal(err)
	}
	var stats map[string]json.RawMessage
	if err := json.Unmarshal(raw["server_stats"], &stats); err != nil {
		t.Fatal(err)
	}
	stats["epochs"] = json.RawMessage(`{
		"epoch": 7, "source": "reload", "started_at": "2026-08-08T00:00:00Z",
		"active_leases": 2, "probation": false,
		"reloads": {"success": 6, "rejected_corrupt": 1, "rolled_back": 1},
		"some_future_field": "ignored"
	}`)
	raw["server_stats"], err = json.Marshal(stats)
	if err != nil {
		t.Fatal(err)
	}
	newB, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}

	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, oldB, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, newB, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, dir := range [][2]string{{oldPath, newPath}, {newPath, oldPath}} {
		deltas, _, err := loadDeltas(dir[0], dir[1], 0.15)
		if err != nil {
			t.Fatalf("compare %s -> %s: %v", dir[0], dir[1], err)
		}
		if len(deltas) == 0 {
			t.Fatalf("compare %s -> %s produced no metrics", dir[0], dir[1])
		}
		if bad := regressions(deltas); len(bad) != 0 {
			t.Fatalf("epoch fields perturbed the gate: %+v", bad)
		}
	}
}

func baselineDeltaReport() deltaBenchReport {
	return deltaBenchReport{
		Dataset: "dblp", Authors: 2000, Nodes: 10000, Edges: 40000, Rmax: 6,
		DeltaBatches: 20, OpsPerBatch: 10,
		FullBuildMS: 5000, RebuildMS: 5200,
		MeanApplyMS: 120, P50ApplyMS: 100, MaxApplyMS: 300,
		MeanDirtyTerms: 80, MeanTotalTerms: 400,
		Speedup: 43,
	}
}

// TestCompareDeltaReports: the -delta report kind is sniffed, its
// latencies are gated, and its speedup/dirty-set fields are not.
func TestCompareDeltaReports(t *testing.T) {
	rep := baselineDeltaReport()
	if bad := regressions(compareDeltaReports(rep, rep, 0.15)); len(bad) != 0 {
		t.Fatalf("self-compare regressed: %+v", bad)
	}

	slow := rep
	slow.MeanApplyMS *= 2
	slow.Speedup /= 2 // derived ratio moves too; must not be gated twice
	bad := regressions(compareDeltaReports(rep, slow, 0.15))
	if len(bad) != 1 || bad[0].Name != "mean_apply_ms" {
		t.Fatalf("2x mean apply regressed %+v, want exactly mean_apply_ms", bad)
	}

	// End to end through the CLI path, exercising the kind sniffing.
	dir := t.TempDir()
	write := func(name string, rep deltaBenchReport) string {
		path := filepath.Join(dir, name)
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old.json", rep)
	if err := runCompare(oldPath, write("same.json", rep), 0.15); err != nil {
		t.Fatalf("delta self-compare errored: %v", err)
	}
	if err := runCompare(oldPath, write("slow.json", slow), 0.15); err == nil {
		t.Fatal("2x mean apply regression returned nil")
	}

	// Mixed kinds are rejected, not silently compared as serve reports.
	servePath := filepath.Join(dir, "serve.json")
	b, err := json.Marshal(baselineReport())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(servePath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCompare(oldPath, servePath, 0.15); err == nil {
		t.Fatal("comparing a delta report against a serve report returned nil")
	}
}

// TestCompareStageBreakdownInformational: stage_breakdown rows ride
// the delta diff for diagnosis but never gate — a 10x stage blowup
// whose gated totals hold must not fail the build.
func TestCompareStageBreakdownInformational(t *testing.T) {
	old := baselineDeltaReport()
	old.StageBreakdown = map[string]float64{
		"to_graph": 40, "dirty_terms": 2, "region_mark": 5, "repair": 60, "merge": 10,
	}
	new := old
	new.StageBreakdown = map[string]float64{
		"to_graph": 400, "dirty_terms": 20, "region_mark": 50, "repair": 600, "merge": 100,
	}
	deltas := compareDeltaReports(old, new, 0.15)
	var stageRows int
	for _, d := range deltas {
		if strings.HasPrefix(d.Name, "stage.") {
			stageRows++
			if d.Regress {
				t.Fatalf("informational stage row gated: %+v", d)
			}
		}
	}
	if stageRows != 5 {
		t.Fatalf("stage rows = %d, want 5", stageRows)
	}

	// A baseline without a breakdown (pre-telemetry report) still
	// compares cleanly against one that has it.
	old.StageBreakdown = nil
	if bad := regressions(compareDeltaReports(old, new, 0.15)); len(bad) != 0 {
		t.Fatalf("missing old breakdown perturbed the gate: %+v", bad)
	}
}

// TestCompareCoreCurveInformational: core_curve rows are reported at
// matching proc counts but never gated.
func TestCompareCoreCurveInformational(t *testing.T) {
	old := parallelBenchReport{
		HostCPUs: 4,
		Degrees:  []degreeStats{{Parallelism: 1, FirstResultMS: 10, TotalMS: 100}},
		CoreCurve: []corePoint{
			{Procs: 1, TotalMS: 100}, {Procs: 2, TotalMS: 60}, {Procs: 4, TotalMS: 40},
		},
	}
	new := old
	new.CoreCurve = []corePoint{
		{Procs: 1, TotalMS: 300}, {Procs: 4, TotalMS: 120},
	}
	deltas := compareParallelReports(old, new, 0.15)
	var curveRows int
	for _, d := range deltas {
		if strings.HasPrefix(d.Name, "cores") {
			curveRows++
			if d.Regress {
				t.Fatalf("informational core-curve row gated: %+v", d)
			}
		}
	}
	// procs 2 exists only in old, so exactly procs 1 and 4 compare.
	if curveRows != 2 {
		t.Fatalf("core-curve rows = %d, want 2", curveRows)
	}
}

// TestCompareHostCPUNote (satellite): a parallel report whose highest
// swept degree exceeds its host's core count earns an informational
// warning; a degree sweep within the core budget does not.
func TestCompareHostCPUNote(t *testing.T) {
	rep := parallelBenchReport{
		HostCPUs: 1,
		Degrees: []degreeStats{
			{Parallelism: 1, FirstResultMS: 10, TotalMS: 100},
			{Parallelism: 4, FirstResultMS: 10, TotalMS: 100},
		},
	}
	notes := parallelCompareNotes("new.json", rep)
	if len(notes) != 1 || !strings.Contains(notes[0], "1-CPU host") {
		t.Fatalf("notes = %v, want a 1-CPU warning", notes)
	}
	rep.HostCPUs = 8
	if notes := parallelCompareNotes("new.json", rep); len(notes) != 0 {
		t.Fatalf("8-CPU host warned spuriously: %v", notes)
	}

	// End to end: the note surfaces through loadDeltas.
	dir := t.TempDir()
	rep.HostCPUs = 1
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "par.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, notes, err = loadDeltas(path, path, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 2 { // both sides are the same under-provisioned report
		t.Fatalf("loadDeltas notes = %v, want one per side", notes)
	}
}
