package main

// The -kwcache mode measures tier 1 of the semantic cache: keyword
// neighbor-set artifacts replacing the per-keyword full-graph bounded
// Dijkstras that dominate un-indexed engine init. It runs the same
// l-keyword top-k query against two searchers over one graph — cold
// (no artifacts, every query pays the live Dijkstras) and warm (a
// store prefilled with WarmKeywords, init served from artifacts) —
// and reports both sides' first-result and total latency, the
// one-time warm-up cost, and the store footprint, written as JSON
// (default BENCH_kwcache.json) for -compare.
//
// The run is also a correctness gate: the warm side must produce the
// byte-identical community sequence (cores, centers, costs, members)
// as the cold side — artifacts are a cached prefix of the same
// canonical settle order, not an approximation — and every warm query
// must actually hit the store. Either failing aborts the bench.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"commdb"
	"commdb/internal/bench"
)

// kwcacheBenchReport is the BENCH_kwcache.json schema. The
// kwcache_keywords key doubles as the -compare kind sniff.
type kwcacheBenchReport struct {
	Dataset  string   `json:"dataset"`
	Authors  int      `json:"authors"`
	Nodes    int      `json:"nodes"`
	Edges    int      `json:"edges"`
	Keywords []string `json:"kwcache_keywords"`
	Rmax     float64  `json:"rmax"`
	K        int      `json:"k"`
	// Queries is how many repetitions each side's figures average over
	// (after one discarded warm-up).
	Queries int `json:"queries"`
	// WarmMS is the one-time cost of materializing the artifacts: one
	// bounded reverse Dijkstra per keyword. It amortizes over every
	// later query of those keywords.
	WarmMS float64 `json:"warm_ms"`
	// StoreBytes is the filled store's resident footprint.
	StoreBytes int64 `json:"store_bytes"`
	// ArtifactHits counts full-set probes the warm side served from the
	// store across the whole run (warm-up and identity-check runs
	// included) — it must be keywords × runs with zero misses, or the
	// bench aborts.
	ArtifactHits int64 `json:"artifact_hits"`
	// Cold runs without a store; Warm with every keyword prefilled.
	Cold kwcachePoint `json:"cold"`
	Warm kwcachePoint `json:"warm"`
	// InitSpeedup is cold/warm first-result latency; TotalSpeedup the
	// same for whole-query wall. Informational in -compare (a quotient
	// of two gated latencies).
	InitSpeedup  float64 `json:"init_speedup"`
	TotalSpeedup float64 `json:"total_speedup"`
}

// kwcachePoint is one side's averaged measurement. FirstResultMS is
// the init-cost signal: by the first emission every keyword's
// neighbor set exists, whether it was computed or loaded.
type kwcachePoint struct {
	FirstResultMS float64 `json:"first_result_ms"`
	EnumerateMS   float64 `json:"enumerate_ms"`
	TotalMS       float64 `json:"total_ms"`
}

// runKwcache is the -kwcache entry point.
func runKwcache(authors int, seed int64, boost float64, queries, k int, out string) error {
	fmt.Printf("building DBLP dataset (authors=%d, boost=%gx)...\n", authors, boost)
	d, err := bench.BuildDBLPBoosted(authors, seed, boost)
	if err != nil {
		return err
	}
	p := d.Config.Defaults
	keywords, err := d.Keywords(p)
	if err != nil {
		return err
	}
	fmt.Printf("  %d nodes, %d edges; query: %v rmax=%g k=%d\n",
		d.G.NumNodes(), d.G.NumEdges(), keywords, p.Rmax, k)
	q := commdb.Query{Keywords: keywords, Rmax: p.Rmax}

	cold, err := commdb.Open(d.G)
	if err != nil {
		return err
	}
	warm, err := commdb.Open(d.G, commdb.WithKeywordArtifactStore(p.Rmax))
	if err != nil {
		return err
	}
	warmStart := time.Now()
	warmed := warm.WarmKeywords(keywords)
	warmMS := float64(time.Since(warmStart)) / float64(time.Millisecond)
	ka := warm.KeywordArtifacts()
	if warmed != len(keywords) {
		return fmt.Errorf("warmed %d of %d keywords — the hot set must be fully materialized for the bench to measure anything", warmed, len(keywords))
	}
	fmt.Printf("  warmed %d keywords in %.3fms (%d KB)\n", warmed, warmMS, ka.Bytes/1024)

	coldPoint, coldResults, err := kwcacheSide("cold", cold, q, k, queries)
	if err != nil {
		return err
	}
	warmPoint, warmResults, err := kwcacheSide("warm", warm, q, k, queries)
	if err != nil {
		return err
	}

	// Byte-identity: the warm side's answer must be indistinguishable
	// from live execution, down to member and edge lists.
	if coldResults != warmResults {
		return fmt.Errorf("warm results diverged from cold execution:\ncold: %s\nwarm: %s", coldResults, warmResults)
	}
	// And the store must actually have served: each repetition runs the
	// query twice (once timed, once rendered for the identity check), so
	// (1 warm-up + queries) × 2 runs × len(keywords) full-set probes,
	// zero misses.
	ka = warm.KeywordArtifacts()
	wantHits := int64(queries+1) * 2 * int64(len(keywords))
	if ka.Hits != wantHits || ka.Misses != 0 {
		return fmt.Errorf("artifact store served %d hits / %d misses, want %d / 0 — the warm side fell back to live Dijkstras", ka.Hits, ka.Misses, wantHits)
	}

	rep := kwcacheBenchReport{
		Dataset:      "dblp",
		Authors:      authors,
		Nodes:        d.G.NumNodes(),
		Edges:        d.G.NumEdges(),
		Keywords:     keywords,
		Rmax:         p.Rmax,
		K:            k,
		Queries:      queries,
		WarmMS:       warmMS,
		StoreBytes:   ka.Bytes,
		ArtifactHits: ka.Hits,
		Cold:         coldPoint,
		Warm:         warmPoint,
	}
	if warmPoint.FirstResultMS > 0 {
		rep.InitSpeedup = coldPoint.FirstResultMS / warmPoint.FirstResultMS
	}
	if warmPoint.TotalMS > 0 {
		rep.TotalSpeedup = coldPoint.TotalMS / warmPoint.TotalMS
	}
	fmt.Printf("  init speedup %.2fx, total speedup %.2fx (results byte-identical, %d artifact hits)\n",
		rep.InitSpeedup, rep.TotalSpeedup, ka.Hits)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", out)
	return nil
}

// kwcacheSide times one searcher over queries repetitions (plus one
// discarded warm-up) and returns the averaged point plus the full
// rendered result sequence of the last run for the identity check.
// Every repetition must reproduce the same sequence — the engine is
// deterministic, so intra-side divergence is a bug too.
func kwcacheSide(name string, s *commdb.Searcher, q commdb.Query, k, queries int) (kwcachePoint, string, error) {
	var pt kwcachePoint
	var rendered string
	for r := -1; r < queries; r++ {
		m, _, err := runParallelQuery(s, q, k)
		if err != nil {
			return pt, "", err
		}
		got, err := renderResults(s, q, k)
		if err != nil {
			return pt, "", err
		}
		if rendered == "" {
			rendered = got
		} else if got != rendered {
			return pt, "", fmt.Errorf("%s side diverged between repetitions", name)
		}
		if r < 0 {
			continue
		}
		pt.FirstResultMS += m.firstMS
		pt.EnumerateMS += m.enumMS
		pt.TotalMS += m.totalMS
	}
	pt.FirstResultMS /= float64(queries)
	pt.EnumerateMS /= float64(queries)
	pt.TotalMS /= float64(queries)
	fmt.Printf("  %s: first_result %8.3fms  enumerate %8.3fms  total %8.3fms\n",
		name, pt.FirstResultMS, pt.EnumerateMS, pt.TotalMS)
	return pt, rendered, nil
}

// renderResults runs the query once more and marshals every community
// in full — cost, core, centers, members, edges — so the cold/warm
// comparison is a byte comparison, not a cost-sequence one.
func renderResults(s *commdb.Searcher, q commdb.Query, k int) (string, error) {
	it, err := s.TopK(q)
	if err != nil {
		return "", err
	}
	var buf []byte
	for n := 0; n < k; n++ {
		c, ok := it.Next()
		if !ok {
			break
		}
		b, err := json.Marshal(struct {
			Cost    float64           `json:"cost"`
			Core    []commdb.NodeID   `json:"core"`
			Centers []commdb.NodeID   `json:"centers"`
			Nodes   []commdb.NodeID   `json:"nodes"`
			Edges   []commdb.EdgePair `json:"edges"`
		}{c.Cost, c.Core, c.Cnodes, c.Nodes, c.Edges})
		if err != nil {
			return "", err
		}
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	if err := it.Close(); err != nil {
		return "", err
	}
	return string(buf), nil
}
