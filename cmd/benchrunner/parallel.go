package main

// The -parallel mode measures the in-query parallel execution engine:
// it runs the same l-keyword top-k query over an un-indexed searcher
// (so engine init is dominated by the l full-graph bounded Dijkstras —
// the fan-out target) at a sweep of parallelism degrees, and reports
// per-degree engine-init and total wall-clock alongside the speedup
// against the strictly sequential degree-1 run. Results are written as
// JSON (default BENCH_parallel.json) so runs can be diffed across
// commits with -compare.
//
// The sweep also doubles as an end-to-end determinism check: every
// degree must produce the identical community sequence, and any
// mismatch fails the run.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"commdb"
	"commdb/internal/bench"
	"commdb/internal/obs"
)

// parallelBenchReport is the BENCH_parallel.json schema.
type parallelBenchReport struct {
	Dataset  string   `json:"dataset"`
	Authors  int      `json:"authors"`
	Nodes    int      `json:"nodes"`
	Edges    int      `json:"edges"`
	Keywords []string `json:"keywords"`
	Rmax     float64  `json:"rmax"`
	K        int      `json:"k"`
	// QueriesPerDegree is how many repetitions each degree's figures
	// average over (after one discarded warm-up).
	QueriesPerDegree int `json:"queries_per_degree"`
	// HostCPUs records runtime.NumCPU(): wall-clock speedup is bounded
	// by it, so a single-core host legitimately reports ~1x.
	HostCPUs int           `json:"host_cpus"`
	Degrees  []degreeStats `json:"degrees"`
	// CoreCurve is the per-core scaling curve: the same query at full
	// worker parallelism, granted 1, 2, 4, … cores via GOMAXPROCS up to
	// the host's count (a single point on a one-core host). It
	// separates "more workers" from "more cores" — the degree sweep
	// varies the former at fixed cores, this curve the latter at fixed
	// workers. Informational in -compare: the curve's shape is
	// host-topology-bound.
	CoreCurve []corePoint `json:"core_curve,omitempty"`
}

// corePoint is one GOMAXPROCS setting's measurement in the core curve.
type corePoint struct {
	Procs         int     `json:"procs"`
	FirstResultMS float64 `json:"first_result_ms"`
	TotalMS       float64 `json:"total_ms"`
	// TotalSpeedup is against the curve's single-core point.
	TotalSpeedup float64 `json:"total_speedup"`
}

// procsSweep is the GOMAXPROCS values the core curve visits: powers of
// two up to the host's core count, the count itself always included.
func procsSweep(hostCPUs int) []int {
	var out []int
	for p := 1; p < hostCPUs; p *= 2 {
		out = append(out, p)
	}
	return append(out, hostCPUs)
}

// degreeStats is one parallelism degree's measurement.
type degreeStats struct {
	Parallelism int `json:"parallelism"`
	// EngineInitMS is the raw engine_init span. At degree 1 the
	// per-keyword Dijkstras run lazily during enumeration, so this span
	// alone is not comparable across degrees; FirstResultMS is.
	EngineInitMS float64 `json:"engine_init_ms"`
	// FirstResultMS is query start to the first emitted community — by
	// then every keyword's neighbor set exists in both modes, so it is
	// the apples-to-apples measure of the init fan-out.
	FirstResultMS float64 `json:"first_result_ms"`
	EnumerateMS   float64 `json:"enumerate_ms"`
	TotalMS       float64 `json:"total_ms"`
	// Speedups are against the degree-1 run of the same sweep:
	// InitSpeedup from FirstResultMS, TotalSpeedup from TotalMS.
	InitSpeedup  float64 `json:"init_speedup"`
	TotalSpeedup float64 `json:"total_speedup"`
}

// parseDegrees parses the -parallel-degrees CSV.
func parseDegrees(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -parallel-degrees entry %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-parallel-degrees is empty")
	}
	return out, nil
}

// runParallel is the -parallel entry point.
func runParallel(authors int, seed int64, boost float64, degreesCSV string, queries, k int, profile bool, profileDir, out string) error {
	degrees, err := parseDegrees(degreesCSV)
	if err != nil {
		return err
	}
	fmt.Printf("building DBLP dataset (authors=%d, boost=%gx)...\n", authors, boost)
	d, err := bench.BuildDBLPBoosted(authors, seed, boost)
	if err != nil {
		return err
	}
	p := d.Config.Defaults
	keywords, err := d.Keywords(p)
	if err != nil {
		return err
	}
	fmt.Printf("  %d nodes, %d edges; query: %v rmax=%g k=%d\n",
		d.G.NumNodes(), d.G.NumEdges(), keywords, p.Rmax, k)

	rep := parallelBenchReport{
		Dataset:          "dblp",
		Authors:          authors,
		Nodes:            d.G.NumNodes(),
		Edges:            d.G.NumEdges(),
		Keywords:         keywords,
		Rmax:             p.Rmax,
		K:                k,
		QueriesPerDegree: queries,
		HostCPUs:         runtime.NumCPU(),
	}
	q := commdb.Query{Keywords: keywords, Rmax: p.Rmax}

	// canonical is degree-1's cost sequence; every other degree must
	// reproduce it exactly (the engine's determinism contract).
	var canonical []float64
	var baseInit, baseTotal float64
	for _, deg := range degrees {
		s, err := commdb.Open(d.G, commdb.WithParallelism(deg))
		if err != nil {
			return err
		}
		var initSum, firstSum, enumSum, totalSum float64
		stopProfile, err := startDegreeProfile(profile, profileDir, deg)
		if err != nil {
			return err
		}
		// One discarded warm-up run per degree hides one-time costs
		// (page cache, branch predictors, pool fill) from the average.
		for r := -1; r < queries; r++ {
			m, costs, err := runParallelQuery(s, q, k)
			if err != nil {
				stopProfile()
				return err
			}
			if r < 0 {
				continue
			}
			initSum += m.initMS
			firstSum += m.firstMS
			enumSum += m.enumMS
			totalSum += m.totalMS
			if canonical == nil {
				canonical = costs
			} else if err := sameCosts(canonical, costs); err != nil {
				stopProfile()
				return fmt.Errorf("parallelism %d diverged from sequential: %w", deg, err)
			}
		}
		stopProfile()
		ds := degreeStats{
			Parallelism:   deg,
			EngineInitMS:  initSum / float64(queries),
			FirstResultMS: firstSum / float64(queries),
			EnumerateMS:   enumSum / float64(queries),
			TotalMS:       totalSum / float64(queries),
		}
		if deg == 1 {
			baseInit, baseTotal = ds.FirstResultMS, ds.TotalMS
		}
		if baseInit > 0 && ds.FirstResultMS > 0 {
			ds.InitSpeedup = baseInit / ds.FirstResultMS
		}
		if baseTotal > 0 && ds.TotalMS > 0 {
			ds.TotalSpeedup = baseTotal / ds.TotalMS
		}
		rep.Degrees = append(rep.Degrees, ds)
		fmt.Printf("  parallelism %2d: first_result %8.3fms  enumerate %8.3fms  total %8.3fms  (init %0.2fx, total %0.2fx)\n",
			deg, ds.FirstResultMS, ds.EnumerateMS, ds.TotalMS, ds.InitSpeedup, ds.TotalSpeedup)
	}

	// The core curve: workers fixed at the sweep's highest degree,
	// cores granted via GOMAXPROCS. Determinism still holds — every
	// point must reproduce the canonical ranking.
	maxDeg := degrees[0]
	for _, deg := range degrees {
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	prevProcs := runtime.GOMAXPROCS(0)
	for _, procs := range procsSweep(runtime.NumCPU()) {
		runtime.GOMAXPROCS(procs)
		s, err := commdb.Open(d.G, commdb.WithParallelism(maxDeg))
		if err != nil {
			runtime.GOMAXPROCS(prevProcs)
			return err
		}
		var firstSum, totalSum float64
		for r := -1; r < queries; r++ {
			m, costs, err := runParallelQuery(s, q, k)
			if err != nil {
				runtime.GOMAXPROCS(prevProcs)
				return err
			}
			if r < 0 {
				continue
			}
			firstSum += m.firstMS
			totalSum += m.totalMS
			if err := sameCosts(canonical, costs); err != nil {
				runtime.GOMAXPROCS(prevProcs)
				return fmt.Errorf("core curve at %d procs diverged: %w", procs, err)
			}
		}
		cp := corePoint{
			Procs:         procs,
			FirstResultMS: firstSum / float64(queries),
			TotalMS:       totalSum / float64(queries),
		}
		if base := rep.CoreCurve; len(base) > 0 && base[0].TotalMS > 0 && cp.TotalMS > 0 {
			cp.TotalSpeedup = base[0].TotalMS / cp.TotalMS
		} else if cp.TotalMS > 0 {
			cp.TotalSpeedup = 1
		}
		rep.CoreCurve = append(rep.CoreCurve, cp)
		fmt.Printf("  cores %2d (workers %d): first_result %8.3fms  total %8.3fms  (%.2fx)\n",
			procs, maxDeg, cp.FirstResultMS, cp.TotalMS, cp.TotalSpeedup)
	}
	runtime.GOMAXPROCS(prevProcs)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", out)
	return nil
}

// startDegreeProfile begins a per-degree CPU capture when -profile is
// on, writing cpu_p<degree>.pprof into the profile directory. The
// returned stop is a no-op when profiling is off.
func startDegreeProfile(profile bool, dir string, deg int) (stop func(), err error) {
	if !profile {
		return func() {}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, fmt.Sprintf("cpu_p%d.pprof", deg))
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("start CPU profile for degree %d: %w", deg, err)
	}
	fmt.Printf("  profiling degree %d -> %s\n", deg, path)
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// queryTimings is one query's measured latencies.
type queryTimings struct {
	initMS, firstMS, enumMS, totalMS float64
}

// runParallelQuery runs one top-k query, timing the first emission and
// the whole run and extracting the engine_init and enumerate spans from
// its trace.
func runParallelQuery(s *commdb.Searcher, q commdb.Query, k int) (queryTimings, []float64, error) {
	var m queryTimings
	tr := obs.NewTrace("parallel-bench")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	start := time.Now()
	it, err := s.TopKCtx(ctx, q)
	if err != nil {
		return m, nil, err
	}
	var costs []float64
	for len(costs) < k {
		c, ok := it.Next()
		if !ok {
			break
		}
		if len(costs) == 0 {
			m.firstMS = float64(time.Since(start)) / float64(time.Millisecond)
		}
		costs = append(costs, c.Cost)
	}
	if err := it.Close(); err != nil {
		return m, nil, err
	}
	m.totalMS = float64(time.Since(start)) / float64(time.Millisecond)
	for _, sp := range tr.Summary().Spans {
		switch sp.Name {
		case "engine_init":
			m.initMS += sp.DurMS
		case "enumerate":
			m.enumMS += sp.DurMS
		}
	}
	return m, costs, nil
}

// sameCosts asserts two runs produced the same ranking.
func sameCosts(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("result %d cost differs: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}
