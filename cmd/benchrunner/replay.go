package main

// The -replay mode is the deterministic half of the workload flight
// recorder: it re-executes a captured journal (commserve -workload-log,
// or the canonical synthetic workload from -replay-gen) query by query
// in arrival order against an in-process server — or a live one via
// -replay-server — and reports latency plus an outcome digest: a
// SHA-256 over every query's canonical result sequence (fingerprint,
// result count, per-community costs, completion, stop reason). The
// digest is the determinism contract: two replays of the same journal
// against the same dataset must produce byte-identical outcomes, so a
// digest change in CI means engine behavior changed, not just timing.
//
// Replay strips recorded wall-clock timeouts (a timeout's trip point
// depends on machine speed) but keeps every work budget — relaxations,
// neighbor runs, can-tuples, heap bytes, results are deterministic
// machine-independent units. The in-process target runs with
// parallelism 1 for the same reason.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"commdb"
	"commdb/internal/bench"
	"commdb/internal/server"
	"commdb/internal/workload"
)

// replayBenchReport is the BENCH_replay.json schema. The
// outcome_digest key doubles as the -compare kind sniff.
type replayBenchReport struct {
	Journal     string `json:"journal"`
	Dataset     string `json:"dataset,omitempty"`
	Authors     int    `json:"authors,omitempty"`
	Queries     int    `json:"queries"`
	TopKQueries int    `json:"topk_queries"`
	AllQueries  int    `json:"all_queries"`
	// CacheHits counts replayed top-k responses the target served from
	// its result cache — repeated fingerprints in the journal become
	// hits on replay exactly as they did in production.
	CacheHits int `json:"cache_hits"`
	Errors    int `json:"errors"`
	// OutcomeDigest is the SHA-256 over every query's canonical outcome
	// line, in arrival order. Identical journal + identical dataset ⇒
	// identical digest, on any machine.
	OutcomeDigest string        `json:"outcome_digest"`
	ResultsTotal  int           `json:"results_total"`
	DurationMS    float64       `json:"duration_ms"`
	Throughput    float64       `json:"throughput_rps"`
	TopK          endpointStats `json:"topk"`
	Stream        endpointStats `json:"stream"`
	// HotKeywords is the replay target's per-keyword init attribution
	// (in-process replays only): which keywords this workload makes
	// expensive. Informational, never gated.
	HotKeywords []workload.KeywordStats `json:"hot_keywords,omitempty"`
}

// replayOutcome is one query's canonical result: the digest input and
// the unit of the determinism test.
type replayOutcome struct {
	line    string
	latency time.Duration
	topk    bool
	cached  bool
	errored bool
	results int
}

// sanitizeLimits drops the recorded wall-clock timeout and keeps the
// deterministic work budgets.
func sanitizeLimits(l *workload.Limits) *workload.Limits {
	if l == nil {
		return nil
	}
	out := *l
	out.TimeoutMS = 0
	if out.IsZero() {
		return nil
	}
	return &out
}

// replayRequest renders one journal entry as the search request to
// re-issue.
func replayRequest(e workload.Entry) (path string, body []byte, err error) {
	req := map[string]any{
		"keywords": e.Keywords,
		"rmax":     e.Rmax,
		"compact":  true,
	}
	if e.Cost != "" {
		req["cost"] = e.Cost
	}
	if l := sanitizeLimits(e.Limits); l != nil {
		req["limits"] = l
	}
	switch e.Algo {
	case workload.AlgoTopK:
		if e.K > 0 {
			req["k"] = e.K
		}
		path = "/v1/search/topk"
	case workload.AlgoAll:
		path = "/v1/search/all"
	default:
		return "", nil, fmt.Errorf("entry seq %d: unknown algo %q", e.Seq, e.Algo)
	}
	body, err = json.Marshal(req)
	return path, body, err
}

// outcomeLine renders one query's canonical outcome: everything a
// correct replay must reproduce, nothing timing-dependent.
func outcomeLine(e workload.Entry, costs []float64, complete bool, reason string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|k=%d|n=%d|complete=%t|stop=%s",
		e.Fingerprint, e.Algo, e.K, len(costs), complete, reason)
	for _, c := range costs {
		sb.WriteByte('|')
		sb.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
	}
	return sb.String()
}

// replayOne re-issues one journal entry and reduces the response to
// its canonical outcome.
func replayOne(client *http.Client, base string, e workload.Entry) (replayOutcome, error) {
	path, body, err := replayRequest(e)
	if err != nil {
		return replayOutcome{}, err
	}
	t0 := time.Now()
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return replayOutcome{}, err
	}
	defer resp.Body.Close()
	out := replayOutcome{topk: e.Algo == workload.AlgoTopK}
	if resp.StatusCode != http.StatusOK {
		// A rejected replay (400 on a malformed recorded query, 429 on
		// saturation) is part of the outcome stream: deterministic for
		// the former, an error either way.
		out.latency = time.Since(t0)
		out.errored = true
		out.line = fmt.Sprintf("%s|%s|status=%d", e.Fingerprint, e.Algo, resp.StatusCode)
		return out, nil
	}
	var costs []float64
	var complete bool
	var reason string
	if out.topk {
		var r server.TopKResponse
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			return replayOutcome{}, fmt.Errorf("seq %d: decoding topk response: %w", e.Seq, err)
		}
		for _, rec := range r.Results {
			costs = append(costs, rec.Cost)
		}
		complete, reason, out.cached = r.Complete, r.Reason, r.Cached
	} else {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			var line struct {
				Type     string  `json:"type"`
				Cost     float64 `json:"cost"`
				Complete bool    `json:"complete"`
				Reason   string  `json:"reason"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				return replayOutcome{}, fmt.Errorf("seq %d: bad stream line: %w", e.Seq, err)
			}
			if line.Type == server.RecordTrailer {
				complete, reason = line.Complete, line.Reason
			} else {
				costs = append(costs, line.Cost)
			}
		}
		if err := sc.Err(); err != nil {
			return replayOutcome{}, fmt.Errorf("seq %d: reading stream: %w", e.Seq, err)
		}
	}
	out.latency = time.Since(t0)
	out.results = len(costs)
	out.line = outcomeLine(e, costs, complete, reason)
	return out, nil
}

// replayAgainst replays every entry in order against base and returns
// the outcome sequence. pace sleeps the recorded inter-arrival gaps
// (capped at one second) instead of replaying back-to-back.
func replayAgainst(client *http.Client, base string, entries []workload.Entry, pace bool) ([]replayOutcome, error) {
	outs := make([]replayOutcome, 0, len(entries))
	var prevMS int64
	for i, e := range entries {
		if pace && i > 0 && e.UnixMS > prevMS {
			gap := time.Duration(e.UnixMS-prevMS) * time.Millisecond
			if gap > time.Second {
				gap = time.Second
			}
			time.Sleep(gap)
		}
		prevMS = e.UnixMS
		out, err := replayOne(client, base, e)
		if err != nil {
			return outs, err
		}
		outs = append(outs, out)
	}
	return outs, nil
}

// digestOutcomes folds the outcome lines, in order, into the replay
// digest.
func digestOutcomes(outs []replayOutcome) string {
	h := sha256.New()
	for _, o := range outs {
		h.Write([]byte(o.line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalWorkload builds the committed synthetic workload from a
// dataset's probe keywords: every keyword-count prefix at every
// rotation (mirroring the -serve benchmark's request shapes), as both a
// top-k query and a bounded stream, plus a second pass over the top-k
// shapes so replay exercises the result cache. Timestamps are fixed
// synthetic values so the journal bytes are machine- and
// time-independent.
func canonicalWorkload(d *bench.Dataset, p bench.Params) ([]workload.Entry, error) {
	kws, err := d.Keywords(p)
	if err != nil {
		return nil, err
	}
	if len(kws) < 2 {
		return nil, fmt.Errorf("dataset yielded %d probe keywords, need at least 2", len(kws))
	}
	const baseMS = 1_700_000_000_000 // fixed synthetic epoch, not a real clock
	var entries []workload.Entry
	add := func(e workload.Entry) {
		e.QueryID = "c-" + strconv.Itoa(len(entries)+1)
		e.UnixMS = baseMS + int64(len(entries))*250
		e.Complete = true
		entries = append(entries, e)
	}
	var topkShapes []workload.Entry
	for l := 2; l <= len(kws); l++ {
		for rot := 0; rot < l; rot++ {
			q := append(append([]string{}, kws[rot:l]...), kws[:rot]...)
			fp := commdb.Query{Keywords: q, Rmax: p.Rmax, Cost: commdb.CostSumDistances}.Fingerprint()
			topk := workload.Entry{
				Fingerprint: fp, Keywords: q, Rmax: p.Rmax, Cost: "sum",
				Algo: workload.AlgoTopK, K: p.K,
			}
			add(topk)
			topkShapes = append(topkShapes, topk)
			add(workload.Entry{
				Fingerprint: fp, Keywords: q, Rmax: p.Rmax, Cost: "sum",
				Algo: workload.AlgoAll, Limits: &workload.Limits{MaxResults: 50},
			})
		}
	}
	// Second pass over the top-k shapes: identical fingerprints, so a
	// replaying server answers them from its result cache — the journal
	// records the hit/miss mix a real workload has.
	for _, e := range topkShapes {
		e.CacheHit = true
		add(e)
	}
	return entries, nil
}

// writeJournalFile writes entries as a journal file with sequential
// sequence numbers. Byte-deterministic: same entries, same bytes.
func writeJournalFile(path string, entries []workload.Entry) error {
	var buf bytes.Buffer
	for i, e := range entries {
		e.Seq = int64(i + 1)
		line, err := workload.EncodeEntry(e)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// runReplayGen is the -replay-gen entry point: write the canonical
// workload journal derived from the synthetic DBLP dataset.
func runReplayGen(path string, authors int, seed int64, boost float64) error {
	fmt.Printf("building DBLP dataset (authors=%d, boost=%gx)...\n", authors, boost)
	d, err := bench.BuildDBLPBoosted(authors, seed, boost)
	if err != nil {
		return err
	}
	entries, err := canonicalWorkload(d, d.Config.Defaults)
	if err != nil {
		return err
	}
	if err := writeJournalFile(path, entries); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d entries\n", path, len(entries))
	return nil
}

// runReplay is the -replay entry point. With serverURL empty it boots
// an in-process indexed server over the synthetic DBLP dataset
// (parallelism 1, so outcomes are machine-independent); otherwise it
// replays against the live server at that base URL.
func runReplay(journalPath string, authors int, seed int64, boost float64, serverURL string, pace bool, out string) error {
	entries, err := workload.ReadJournalFile(journalPath)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("%s: journal is empty", journalPath)
	}

	rep := replayBenchReport{Journal: journalPath, Queries: len(entries)}
	base := serverURL
	client := http.DefaultClient
	var app *server.Server
	if serverURL == "" {
		fmt.Printf("building DBLP dataset (authors=%d, boost=%gx)...\n", authors, boost)
		d, err := bench.BuildDBLPBoosted(authors, seed, boost)
		if err != nil {
			return err
		}
		p := d.Config.Defaults
		fmt.Printf("building index (rmax=%g)...\n", p.Rmax)
		s, err := commdb.Open(d.G, commdb.WithIndex(p.Rmax), commdb.WithParallelism(1))
		if err != nil {
			return err
		}
		app = server.New(s, server.Config{})
		ts := httptest.NewServer(app.Handler())
		defer ts.Close()
		base, client = ts.URL, ts.Client()
		rep.Dataset, rep.Authors = d.Name, authors
	}

	fmt.Printf("replaying %d queries from %s (pace=%v)...\n", len(entries), journalPath, pace)
	start := time.Now()
	outs, err := replayAgainst(client, base, entries, pace)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	var topkLat, allLat []time.Duration
	for _, o := range outs {
		rep.ResultsTotal += o.results
		switch {
		case o.errored:
			rep.Errors++
		case o.topk:
			rep.TopKQueries++
			topkLat = append(topkLat, o.latency)
			if o.cached {
				rep.CacheHits++
			}
		default:
			rep.AllQueries++
			allLat = append(allLat, o.latency)
		}
	}
	rep.OutcomeDigest = digestOutcomes(outs)
	rep.DurationMS = float64(elapsed) / float64(time.Millisecond)
	rep.Throughput = float64(len(outs)) / elapsed.Seconds()
	rep.TopK = summarize(topkLat)
	rep.Stream = summarize(allLat)
	if app != nil {
		if wl := app.Stats().Workload; wl != nil {
			rep.HotKeywords = wl.HotKeywords
		}
	}

	fmt.Printf("done in %v: %.1f req/s, %d errors, digest %s\n",
		elapsed.Round(time.Millisecond), rep.Throughput, rep.Errors, rep.OutcomeDigest[:16])
	fmt.Printf("  topk:   n=%d (cached %d) mean=%.2fms p95=%.2fms\n",
		rep.TopK.Count, rep.CacheHits, rep.TopK.MeanMS, rep.TopK.P95MS)
	fmt.Printf("  stream: n=%d mean=%.2fms p95=%.2fms\n",
		rep.Stream.Count, rep.Stream.MeanMS, rep.Stream.P95MS)
	for i, kw := range rep.HotKeywords {
		if i >= 5 {
			break
		}
		fmt.Printf("  hot keyword %-16s queries=%d init=%.2fms\n", kw.Term, kw.Queries, kw.InitWallMS)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
