// Command indexbuild constructs the paper's inverted indexes
// (invertedN + invertedE, Section VI) for a saved database graph and
// writes them to a file, so the one-time build cost — the 355 seconds
// the paper reports for DBLP — is paid once. cmd/commsearch loads the
// result with -index-file.
//
// Usage:
//
//	indexbuild -graph dblp.graph -rmax 8 -out dblp.index
//
// Incremental mode: with -db (an NDJSON database dump from cmd/datagen
// -db-out) the graph is derived from the database, -out-graph
// publishes it next to the index, and -follow tails a mutation-log
// file, applying each quiet-period batch as a bounded delta and
// atomically republishing both artifacts — a watching commserve
// (-reload-watch) picks each generation up with zero dropped queries:
//
//	indexbuild -db base.ndjson -rmax 8 -out dblp.index -out-graph dblp.graph \
//	           -follow muts.ndjson -debounce 500ms
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"commdb"
	"commdb/internal/delta"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file written by cmd/datagen")
		dbPath    = flag.String("db", "", "NDJSON database dump (datagen -db-out); derives the graph from the database")
		rmax      = flag.Float64("rmax", 8, "largest query radius the index must support")
		out       = flag.String("out", "", "output index file (required)")
		outGraph  = flag.String("out-graph", "", "output graph file (required with -follow, optional with -db)")
		follow    = flag.String("follow", "", "mutation-log file to tail (requires -db); republishes on change")
		debounce  = flag.Duration("debounce", 500*time.Millisecond, "quiet period before a tailed batch is applied and republished")

		kwOut   = flag.String("kwcache-out", "", "also prebuild a keyword neighbor-set artifact store and write it here (requires -graph and -kwcache-terms)")
		kwTerms = flag.String("kwcache-terms", "", "comma-separated keywords to prebuild artifacts for (the hot set from /debug/workloadz?format=json)")
		kwRmax  = flag.Float64("kwcache-rmax", 0, "artifact radius: the largest query Rmax the store can serve (0 = -rmax)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *graphPath, *dbPath, *rmax, *out, *outGraph, *follow, *debounce,
		*kwOut, *kwTerms, *kwRmax); err != nil {
		fmt.Fprintln(os.Stderr, "indexbuild:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, graphPath, dbPath string, rmax float64, out, outGraph, follow string, debounce time.Duration, kwOut, kwTerms string, kwRmax float64) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	switch {
	case graphPath != "" && dbPath != "":
		return fmt.Errorf("-graph and -db are mutually exclusive")
	case kwOut != "" && graphPath == "":
		return fmt.Errorf("-kwcache-out requires -graph (artifacts belong to one fixed graph generation)")
	case dbPath != "":
		return runFromDB(ctx, dbPath, rmax, out, outGraph, follow, debounce)
	case graphPath != "":
		if follow != "" {
			return fmt.Errorf("-follow requires -db (mutations replay against the database, not the graph)")
		}
		if err := runFromGraph(graphPath, rmax, out); err != nil {
			return err
		}
		if kwOut == "" {
			return nil
		}
		if kwRmax <= 0 {
			kwRmax = rmax
		}
		return buildKwcache(graphPath, kwOut, kwTerms, kwRmax)
	default:
		return fmt.Errorf("provide -graph FILE or -db FILE")
	}
}

// buildKwcache prebuilds the keyword neighbor-set artifact store: one
// bounded reverse Dijkstra per requested term, persisted with the same
// atomic-rename discipline as the index. The store is built over a
// plain (unprojected) searcher — artifacts apply to unindexed serving,
// where engine init pays the full-set Dijkstra the store replaces.
func buildKwcache(graphPath, kwOut, kwTerms string, kwRmax float64) error {
	terms := splitTerms(kwTerms)
	if len(terms) == 0 {
		return fmt.Errorf("-kwcache-out requires -kwcache-terms (comma-separated keywords to prebuild)")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := commdb.ReadGraph(f)
	if err != nil {
		return err
	}
	s, err := commdb.Open(g, commdb.WithKeywordArtifactStore(kwRmax))
	if err != nil {
		return err
	}
	start := time.Now()
	n := s.WarmKeywords(terms)
	ka := s.KeywordArtifacts()
	fmt.Printf("kwcache: %d/%d keywords materialized in %v (radius %g, %d KB)\n",
		n, len(terms), time.Since(start).Round(time.Millisecond), kwRmax, ka.Bytes/1024)
	if err := writeAtomic(kwOut, s.WriteKeywordArtifacts); err != nil {
		return err
	}
	fmt.Printf("kwcache written to %s\n", kwOut)
	return nil
}

// splitTerms parses the comma-separated -kwcache-terms list.
func splitTerms(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// runFromGraph is the classic one-shot build.
func runFromGraph(graphPath string, rmax float64, out string) error {
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := commdb.ReadGraph(f)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s\n", commdb.GraphStatsOf(g))

	start := time.Now()
	s, err := commdb.Open(g, commdb.WithIndex(rmax))
	if err != nil {
		return err
	}
	fmt.Printf("index built in %v: %d KB\n", time.Since(start).Round(time.Millisecond), s.IndexBytes()/1024)

	if err := writeAtomic(out, s.WriteIndex); err != nil {
		return err
	}
	fmt.Printf("written to %s\n", out)
	return nil
}

// runFromDB builds from a database dump and optionally follows a
// mutation log, republishing on every applied batch.
func runFromDB(ctx context.Context, dbPath string, rmax float64, out, outGraph, follow string, debounce time.Duration) error {
	if follow != "" && outGraph == "" {
		return fmt.Errorf("-follow requires -out-graph: each republished index belongs to its graph generation")
	}
	f, err := os.Open(dbPath)
	if err != nil {
		return err
	}
	db, err := delta.LoadDatabase(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("database: %d tuples across %d tables\n", db.NumTuples(), len(db.Tables()))

	start := time.Now()
	m, err := delta.NewMaintainer(db, delta.Config{R: rmax, Logf: func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}})
	if err != nil {
		return err
	}
	fmt.Printf("graph + index built in %v\n", time.Since(start).Round(time.Millisecond))

	publish := func() error {
		// Graph before index: a watcher triggering on the index file's
		// mtime must find the matching graph already in place.
		if outGraph != "" {
			if err := writeAtomic(outGraph, m.WriteGraphTo); err != nil {
				return err
			}
		}
		return writeAtomic(out, m.WriteIndexTo)
	}
	if err := publish(); err != nil {
		return err
	}
	fmt.Printf("written to %s\n", out)
	if follow == "" {
		return nil
	}

	fmt.Printf("following %s (debounce %v); SIGINT to stop\n", follow, debounce)
	return m.Follow(ctx, delta.NewTail(follow, 0), delta.FollowOptions{Debounce: debounce},
		func(bs delta.BatchStats) error {
			if err := publish(); err != nil {
				return err
			}
			fmt.Printf("republished %s (%d ops, %d/%d terms recomputed)\n",
				out, bs.Ops, bs.DirtyTerms, bs.TotalTerms)
			return nil
		})
}

// writeAtomic publishes the artifact with the temp-file + fsync +
// rename discipline: a reader (or a watching commserve) at out either
// sees the previous complete file or the new complete file, never a
// torn write — a crash mid-build leaves only a .tmp to sweep up. The
// temp file lives in out's directory so the rename stays within one
// filesystem.
func writeAtomic(out string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(out), filepath.Base(out)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	// CreateTemp opens 0600; publish world-readable (modulo umask) like
	// os.Create used to, so a server under another uid can load it.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		return err
	}
	// Data must be durable before the rename, or a crash could publish
	// the name pointing at unwritten blocks.
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), out); err != nil {
		return err
	}
	tmp = nil
	return nil
}
