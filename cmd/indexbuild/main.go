// Command indexbuild constructs the paper's inverted indexes
// (invertedN + invertedE, Section VI) for a saved database graph and
// writes them to a file, so the one-time build cost — the 355 seconds
// the paper reports for DBLP — is paid once. cmd/commsearch loads the
// result with -index-file.
//
// Usage:
//
//	indexbuild -graph dblp.graph -rmax 8 -out dblp.index
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"commdb"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file written by cmd/datagen (required)")
		rmax      = flag.Float64("rmax", 8, "largest query radius the index must support")
		out       = flag.String("out", "", "output index file (required)")
	)
	flag.Parse()
	if err := run(*graphPath, *rmax, *out); err != nil {
		fmt.Fprintln(os.Stderr, "indexbuild:", err)
		os.Exit(1)
	}
}

func run(graphPath string, rmax float64, out string) error {
	if graphPath == "" || out == "" {
		return fmt.Errorf("-graph and -out are required")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := commdb.ReadGraph(f)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s\n", commdb.GraphStatsOf(g))

	start := time.Now()
	s, err := commdb.Open(g, commdb.WithIndex(rmax))
	if err != nil {
		return err
	}
	fmt.Printf("index built in %v: %d KB\n", time.Since(start).Round(time.Millisecond), s.IndexBytes()/1024)

	w, err := os.Create(out)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := s.WriteIndex(w); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("written to %s\n", out)
	return nil
}
