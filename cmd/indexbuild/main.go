// Command indexbuild constructs the paper's inverted indexes
// (invertedN + invertedE, Section VI) for a saved database graph and
// writes them to a file, so the one-time build cost — the 355 seconds
// the paper reports for DBLP — is paid once. cmd/commsearch loads the
// result with -index-file.
//
// Usage:
//
//	indexbuild -graph dblp.graph -rmax 8 -out dblp.index
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"commdb"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file written by cmd/datagen (required)")
		rmax      = flag.Float64("rmax", 8, "largest query radius the index must support")
		out       = flag.String("out", "", "output index file (required)")
	)
	flag.Parse()
	if err := run(*graphPath, *rmax, *out); err != nil {
		fmt.Fprintln(os.Stderr, "indexbuild:", err)
		os.Exit(1)
	}
}

func run(graphPath string, rmax float64, out string) error {
	if graphPath == "" || out == "" {
		return fmt.Errorf("-graph and -out are required")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := commdb.ReadGraph(f)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s\n", commdb.GraphStatsOf(g))

	start := time.Now()
	s, err := commdb.Open(g, commdb.WithIndex(rmax))
	if err != nil {
		return err
	}
	fmt.Printf("index built in %v: %d KB\n", time.Since(start).Round(time.Millisecond), s.IndexBytes()/1024)

	if err := writeAtomic(out, s.WriteIndex); err != nil {
		return err
	}
	fmt.Printf("written to %s\n", out)
	return nil
}

// writeAtomic publishes the artifact with the temp-file + fsync +
// rename discipline: a reader (or a watching commserve) at out either
// sees the previous complete file or the new complete file, never a
// torn write — a crash mid-build leaves only a .tmp to sweep up. The
// temp file lives in out's directory so the rename stays within one
// filesystem.
func writeAtomic(out string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(out), filepath.Base(out)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	// CreateTemp opens 0600; publish world-readable (modulo umask) like
	// os.Create used to, so a server under another uid can load it.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		return err
	}
	// Data must be durable before the rename, or a crash could publish
	// the name pointing at unwritten blocks.
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), out); err != nil {
		return err
	}
	tmp = nil
	return nil
}
