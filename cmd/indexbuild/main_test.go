package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"commdb"
	"commdb/internal/datagen"
	"commdb/internal/delta"
	"commdb/internal/index"
)

func TestIndexBuildEndToEnd(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.graph")
	indexPath := filepath.Join(dir, "g.index")

	// Save a graph.
	db, err := commdb.GenerateDBLP(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := commdb.GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := commdb.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Build + save the index.
	if err := run(context.Background(), graphPath, "", 7, indexPath, "", "", 0, "", "", 0); err != nil {
		t.Fatal(err)
	}

	// Load everything back and query.
	gf, err := os.Open(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	g2, err := commdb.ReadGraph(gf)
	if err != nil {
		t.Fatal(err)
	}
	xf, err := os.Open(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer xf.Close()
	s, err := commdb.NewSearcherWithIndex(g2, xf)
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.TopK(commdb.Query{Keywords: []string{"database", "graph"}, Rmax: 7})
	if err != nil {
		t.Fatal(err)
	}
	it.Collect(5) // must not error; result count depends on the seed
}

func TestIndexBuildErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, "", "", 8, "x", "", "", 0, "", "", 0); err == nil {
		t.Fatal("missing inputs should error")
	}
	if err := run(ctx, "x", "", 8, "", "", "", 0, "", "", 0); err == nil {
		t.Fatal("missing out should error")
	}
	if err := run(ctx, "/nonexistent", "", 8, filepath.Join(t.TempDir(), "x"), "", "", 0, "", "", 0); err == nil {
		t.Fatal("missing graph file should error")
	}
	if err := run(ctx, "a", "b", 8, "x", "", "", 0, "", "", 0); err == nil {
		t.Fatal("-graph with -db should error")
	}
	if err := run(ctx, "a", "", 8, "x", "", "muts", 0, "", "", 0); err == nil {
		t.Fatal("-follow without -db should error")
	}
	if err := run(ctx, "", "a", 8, "x", "", "muts", 0, "", "", 0); err == nil {
		t.Fatal("-follow without -out-graph should error")
	}
}

// A one-shot -db build must publish the same artifacts as the classic
// -graph path for the same database state.
func TestIndexBuildFromDump(t *testing.T) {
	dir := t.TempDir()
	db, err := datagen.GenerateDBLP(datagen.DBLPParams{Authors: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	dumpPath := filepath.Join(dir, "base.ndjson")
	df, err := os.Create(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := delta.DumpDatabase(df, db); err != nil {
		t.Fatal(err)
	}
	df.Close()

	outIx := filepath.Join(dir, "db.index")
	outG := filepath.Join(dir, "db.graph")
	if err := run(context.Background(), "", dumpPath, 5, outIx, outG, "", 0, "", "", 0); err != nil {
		t.Fatal(err)
	}

	g, _, err := db.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(g, index.BuildOptions{R: 5})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ix.Write(&want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outIx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("-db index differs from a direct build of the same database")
	}
	if fi, err := os.Stat(outG); err != nil || fi.Size() == 0 {
		t.Fatalf("graph artifact missing or empty: %v", err)
	}
}

// Follow mode: appending ops to the tailed log must republish both
// artifacts, and the final pair must match a from-scratch build of the
// mutated database.
func TestIndexBuildFollow(t *testing.T) {
	dir := t.TempDir()
	db, err := datagen.GenerateDBLP(datagen.DBLPParams{Authors: 50, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	dumpPath := filepath.Join(dir, "base.ndjson")
	df, err := os.Create(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := delta.DumpDatabase(df, db); err != nil {
		t.Fatal(err)
	}
	df.Close()
	// Generate the stream on a scratch copy so db above is untouched;
	// mutations apply as they are generated.
	ops, err := datagen.Mutations(db, datagen.MutationParams{N: 25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, "muts.ndjson")
	w, err := delta.OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	outIx := filepath.Join(dir, "live.index")
	outG := filepath.Join(dir, "live.graph")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "", dumpPath, 4, outIx, outG, logPath, 30*time.Millisecond, "", "", 0)
	}()

	// Wait for the initial publish.
	waitForFile(t, outIx)
	before, err := os.ReadFile(outIx)
	if err != nil {
		t.Fatal(err)
	}

	// Feed the stream in two appends and wait for the artifact to
	// change each time.
	half := len(ops) / 2
	for _, chunk := range [][]delta.Op{ops[:half], ops[half:]} {
		if err := w.Append(chunk...); err != nil {
			t.Fatal(err)
		}
		before = waitForChange(t, outIx, before)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("follow loop exited with error: %v", err)
	}

	// The final artifacts match a from-scratch build of the mutated
	// database — db already carries the full stream (Mutations applied
	// the ops while generating them).
	g, _, err := db.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(g, index.BuildOptions{R: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wantIx bytes.Buffer
	if err := ix.Write(&wantIx); err != nil {
		t.Fatal(err)
	}
	gotIx, err := os.ReadFile(outIx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotIx, wantIx.Bytes()) {
		t.Fatal("final followed index differs from a full rebuild of the mutated database")
	}
	var wantG bytes.Buffer
	if err := commdb.WriteGraph(&wantG, g); err != nil {
		t.Fatal(err)
	}
	gotG, err := os.ReadFile(outG)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotG, wantG.Bytes()) {
		t.Fatal("final followed graph differs from a full rebuild of the mutated database")
	}
}

func waitForFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", path)
}

// waitForChange polls path until its contents differ from prev and
// returns the new contents.
func waitForChange(t *testing.T, path string, prev []byte) []byte {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		cur, err := os.ReadFile(path)
		if err == nil && len(cur) > 0 && !bytes.Equal(cur, prev) {
			return cur
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s to change", path)
	return nil
}

func TestIndexBuildAtomicPublish(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "a.index")

	if err := writeAtomic(out, func(w io.Writer) error {
		_, err := w.Write([]byte("first artifact"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// A writer that fails mid-stream must not disturb the published file
	// and must clean up its temp file.
	err := writeAtomic(out, func(w io.Writer) error {
		if _, err := w.Write([]byte("torn ")); err != nil {
			return err
		}
		return errors.New("disk went away")
	})
	if err == nil {
		t.Fatal("failed write should surface its error")
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first artifact" {
		t.Fatalf("published artifact disturbed by failed write: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "a.index" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("temp files left behind: %v", names)
	}
}
