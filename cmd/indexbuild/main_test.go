package main

import (
	"os"
	"path/filepath"
	"testing"

	"commdb"
)

func TestIndexBuildEndToEnd(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.graph")
	indexPath := filepath.Join(dir, "g.index")

	// Save a graph.
	db, err := commdb.GenerateDBLP(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := commdb.GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := commdb.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Build + save the index.
	if err := run(graphPath, 7, indexPath); err != nil {
		t.Fatal(err)
	}

	// Load everything back and query.
	gf, err := os.Open(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	g2, err := commdb.ReadGraph(gf)
	if err != nil {
		t.Fatal(err)
	}
	xf, err := os.Open(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer xf.Close()
	s, err := commdb.NewSearcherWithIndex(g2, xf)
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.TopK(commdb.Query{Keywords: []string{"database", "graph"}, Rmax: 7})
	if err != nil {
		t.Fatal(err)
	}
	it.Collect(5) // must not error; result count depends on the seed
}

func TestIndexBuildErrors(t *testing.T) {
	if err := run("", 8, "x"); err == nil {
		t.Fatal("missing graph should error")
	}
	if err := run("x", 8, ""); err == nil {
		t.Fatal("missing out should error")
	}
	if err := run("/nonexistent", 8, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("missing graph file should error")
	}
}
