package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"commdb"
)

func TestIndexBuildEndToEnd(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.graph")
	indexPath := filepath.Join(dir, "g.index")

	// Save a graph.
	db, err := commdb.GenerateDBLP(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := commdb.GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := commdb.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Build + save the index.
	if err := run(graphPath, 7, indexPath); err != nil {
		t.Fatal(err)
	}

	// Load everything back and query.
	gf, err := os.Open(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	g2, err := commdb.ReadGraph(gf)
	if err != nil {
		t.Fatal(err)
	}
	xf, err := os.Open(indexPath)
	if err != nil {
		t.Fatal(err)
	}
	defer xf.Close()
	s, err := commdb.NewSearcherWithIndex(g2, xf)
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.TopK(commdb.Query{Keywords: []string{"database", "graph"}, Rmax: 7})
	if err != nil {
		t.Fatal(err)
	}
	it.Collect(5) // must not error; result count depends on the seed
}

func TestIndexBuildErrors(t *testing.T) {
	if err := run("", 8, "x"); err == nil {
		t.Fatal("missing graph should error")
	}
	if err := run("x", 8, ""); err == nil {
		t.Fatal("missing out should error")
	}
	if err := run("/nonexistent", 8, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("missing graph file should error")
	}
}

// TestIndexBuildAtomicPublish: the artifact appears via rename, so a
// successful build leaves no temp files behind and a failed write
// leaves the previous artifact byte-identical.
func TestIndexBuildAtomicPublish(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "a.index")

	if err := writeAtomic(out, func(w io.Writer) error {
		_, err := w.Write([]byte("first artifact"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// A writer that fails mid-stream must not disturb the published file
	// and must clean up its temp file.
	err := writeAtomic(out, func(w io.Writer) error {
		if _, err := w.Write([]byte("torn ")); err != nil {
			return err
		}
		return errors.New("disk went away")
	})
	if err == nil {
		t.Fatal("failed write should surface its error")
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first artifact" {
		t.Fatalf("published artifact disturbed by failed write: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "a.index" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("temp files left behind: %v", names)
	}
}
