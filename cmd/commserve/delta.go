package main

// commserve's in-process delta mode: instead of serving artifacts baked
// by cmd/indexbuild, the server loads an NDJSON database dump (-db),
// builds graph + index itself, and — with -mutation-log — tails an op
// stream, applying each quiet-period batch as a bounded incremental
// update. Every applied batch republishes the {graph, index} pair
// in-memory and swaps it in through the same epoch-versioned snapshot
// path a file reload uses, so in-flight queries (streams included)
// finish on the epoch they started on and a corrupt artifact can never
// serve: the index bytes re-enter through the fail-closed v2 reader.

import (
	"bytes"
	"context"
	"log"
	"os"
	"sync"
	"time"

	"commdb"
	"commdb/internal/delta"
	"commdb/internal/fault"
	"commdb/internal/snapshot"
)

// deltaPipeline owns the maintainer and the latest published
// {graph, serialized index} pair. The maintainer produces a fresh
// graph per batch, so a published pair is immutable; the mutex only
// guards the pointer swap.
type deltaPipeline struct {
	m *delta.Maintainer

	mu sync.Mutex
	g  *commdb.Graph
	ix []byte
}

func newDeltaPipeline(dbPath string, rmax float64) (*deltaPipeline, error) {
	f, err := os.Open(dbPath)
	if err != nil {
		return nil, err
	}
	db, err := delta.LoadDatabase(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	m, err := delta.NewMaintainer(db, delta.Config{R: rmax, Logf: log.Printf})
	if err != nil {
		return nil, err
	}
	p := &deltaPipeline{m: m}
	if err := p.publish(); err != nil {
		return nil, err
	}
	return p, nil
}

// publish captures the maintainer's current artifacts as the pair the
// next epoch load will serve.
func (p *deltaPipeline) publish() error {
	var buf bytes.Buffer
	if err := p.m.WriteIndexTo(&buf); err != nil {
		return err
	}
	g := p.m.Graph()
	p.mu.Lock()
	p.g, p.ix = g, buf.Bytes()
	p.mu.Unlock()
	return nil
}

func (p *deltaPipeline) pair() (*commdb.Graph, []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.g, p.ix
}

// searcher builds the boot-time searcher from the published pair.
func (p *deltaPipeline) searcher(parallelism int) (*commdb.Searcher, error) {
	g, ix := p.pair()
	return commdb.Open(g,
		commdb.WithIndexReader(bytes.NewReader(ix)),
		commdb.WithParallelism(parallelism))
}

// loader is the snapshot loader for delta mode: each reload serves the
// latest published pair. The index bytes pass through the injector's
// fault point and the fail-closed v2 reader, exactly like a file-backed
// reload, so the chaos and probation machinery applies unchanged.
func (p *deltaPipeline) loader(parallelism int) snapshot.Loader {
	return func(inj *fault.Injector) (*commdb.Searcher, error) {
		g, ix := p.pair()
		return commdb.Open(g,
			commdb.WithIndexReader(inj.Reader(fault.PointIndexRead, bytes.NewReader(ix))),
			commdb.WithParallelism(parallelism))
	}
}

// follow tails the mutation log until ctx is done, republishing the
// pair and swapping epochs after every applied batch. A rejected reload
// (probation, breach) leaves the previous epoch serving; the maintainer
// still advances and the next batch retries the swap.
func (p *deltaPipeline) follow(ctx context.Context, logPath string, debounce time.Duration, snaps *snapshot.Manager) error {
	return p.m.Follow(ctx, delta.NewTail(logPath, 0), delta.FollowOptions{Debounce: debounce},
		func(bs delta.BatchStats) error {
			if err := p.publish(); err != nil {
				return err
			}
			if _, err := snaps.Reload(ctx); err != nil {
				log.Printf("delta: epoch swap rejected (previous epoch still serving): %v", err)
				return nil
			}
			log.Printf("delta: epoch %d serving (%d ops, %d/%d terms recomputed)",
				snaps.Current(), bs.Ops, bs.DirtyTerms, bs.TotalTerms)
			return nil
		})
}
