package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"commdb"
	"commdb/internal/server"
)

// TestBuildSearcher covers the three searcher flavours and the flag
// validation paths.
func TestBuildSearcher(t *testing.T) {
	s, err := buildSearcher("", "", "paper", false, 8, 0, "")
	if err != nil {
		t.Fatalf("example searcher: %v", err)
	}
	if s.Indexed() {
		t.Fatal("plain searcher claims an index")
	}

	s, err = buildSearcher("", "", "paper", true, 8, 0, "")
	if err != nil {
		t.Fatalf("indexed searcher: %v", err)
	}
	if !s.Indexed() {
		t.Fatal("indexed searcher lost its index")
	}

	if _, err := buildSearcher("", "", "", false, 8, 0, ""); err == nil {
		t.Fatal("no graph source should error")
	}
	if _, err := buildSearcher("x", "", "paper", false, 8, 0, ""); err == nil {
		t.Fatal("-graph with -example should error")
	}
	if _, err := buildSearcher("/does/not/exist", "", "", false, 8, 0, ""); err == nil {
		t.Fatal("missing graph file should error")
	}
}

// TestLoadGraphRoundTrip: a graph written with commdb.WriteGraph loads
// back through the -graph path.
func TestLoadGraphRoundTrip(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	path := filepath.Join(t.TempDir(), "g.graph")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := commdb.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadGraph(path, "")
	if err != nil {
		t.Fatalf("loadGraph: %v", err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round-trip graph %d/%d, want %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

// TestServeSmoke boots the full serving stack the binary assembles —
// indexed searcher, server, handler — and runs one query end to end.
func TestServeSmoke(t *testing.T) {
	s, err := buildSearcher("", "", "paper", true, 8, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	app := server.New(s, server.Config{})
	ts := httptest.NewServer(app.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"keywords": []string{"a", "b", "c"}, "rmax": 8, "k": 5})
	resp, err := http.Post(ts.URL+"/v1/search/topk", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out server.TopKResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 5 || !out.Complete {
		t.Fatalf("paper query served %d results (complete=%v), want all 5", len(out.Results), out.Complete)
	}
}
