// Command commserve serves community queries over HTTP: the
// polynomial-delay enumerators behind a concurrent service with
// admission control, a top-k result cache, and NDJSON streaming.
//
// Usage:
//
//	commserve -graph dblp.graph -index -rmax-max 8 -addr :8080
//	commserve -example paper -addr :8080
//
// Endpoints:
//
//	POST /v1/search/topk   JSON in, JSON out (cached, coalesced)
//	POST /v1/search/all    JSON in, NDJSON stream out (one community
//	                       per line, then a trailer with the stop reason)
//	GET  /healthz          liveness
//	GET  /statsz           serving counters + latency histogram
//	GET  /metricsz         the same plus engine counters, as Prometheus text
//
// Requests may set "trace": true for EXPLAIN mode: the response (topk
// body or stream trailer) carries the query's structured trace. With
// -log every query is logged as one structured line whose query ID
// matches the X-Query-Id response header.
//
// Observability extras: GET /debug/memz reports the exact memory
// footprint of every live epoch (graph CSR, index postings, fulltext,
// dictionary, result cache) plus runtime heap stats — the same numbers
// the commdb_mem_* gauge families export on /metricsz. -pprof mounts
// the standard net/http/pprof handlers under /debug/pprof/, behind the
// same bearer token as /admin/reload (profiles leak symbol names, so
// they are admin surface). -profile-every starts continuous profiling:
// heap and CPU profiles captured on that interval into a bounded
// in-memory ring, listed at GET /debug/profilez and fetched at
// GET /debug/profilez/{id} (both token-authenticated).
//
// The workload flight recorder is always on in memory: every completed
// query (cache hits included) feeds per-keyword engine-init cost
// attribution, readable at GET /debug/workloadz, as the "workload"
// block in /statsz, and as the commdb_keyword_* / commdb_workload_*
// metric families. -workload-log additionally journals each query as
// one CRC-framed NDJSON line (with -workload-log-max-bytes rotation
// and deterministic 1-in-N -workload-sample), which
// benchrunner -replay can re-execute deterministically.
//
// Per-request limits are clamped to the -max-* flags, so one client
// cannot monopolize the query governor's budget. On SIGINT/SIGTERM the
// server stops admitting, cancels in-flight queries through the
// governor, drains streams with correct trailers, then exits.
//
// When serving from files (-graph), the server hot-reloads: SIGHUP, an
// authenticated POST /admin/reload (-admin-token, or the
// COMMSERVE_ADMIN_TOKEN environment variable), or -reload-watch (which
// polls the artifact's mtime) all load a fresh epoch from the same
// paths and swap it in atomically. In-flight queries — including
// NDJSON streams — finish on the epoch they started on; a corrupt or
// truncated artifact is rejected with the current epoch still serving.
//
// Delta mode serves a live database instead of baked artifacts: -db
// loads an NDJSON dump (datagen -db-out) and -mutation-log tails an op
// stream, applying each quiet-period batch as a bounded incremental
// index update and swapping the result in as a fresh epoch — same
// fail-closed loader, probation, and zero-dropped-queries guarantees
// as a file reload. Maintainer counters surface as the "deltas" block
// in /statsz and the commdb_delta_* families in /metricsz:
//
//	commserve -db base.ndjson -mutation-log muts.ndjson -rmax-max 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"commdb"
	"commdb/internal/prof"
	"commdb/internal/server"
	"commdb/internal/snapshot"
	"commdb/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		graphPath   = flag.String("graph", "", "graph file written by cmd/datagen")
		indexPath   = flag.String("index-file", "", "index file written by cmd/indexbuild (implies projected search)")
		example     = flag.String("example", "", "built-in example graph: paper or intro")
		useIndex    = flag.Bool("index", false, "build inverted indexes and serve projected searches")
		rmaxMax     = flag.Float64("rmax-max", 8, "index radius for -index; also the largest Rmax indexed queries may use")
		parallelism = flag.Int("parallelism", 0, "worker goroutines per query (0 = GOMAXPROCS, 1 = sequential)")

		maxConcurrent = flag.Int("max-concurrent", 0, "concurrently executing queries (0 = GOMAXPROCS)")
		maxQueue      = flag.Int("max-queue", 0, "requests allowed to wait for a slot (0 = 2x max-concurrent)")
		queueWait     = flag.Duration("queue-wait", 5*time.Second, "longest a request may wait for a slot")
		retryAfter    = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		cacheEntries  = flag.Int("cache-entries", 256, "top-k result cache entries (-1 disables)")
		cacheBytes    = flag.Int64("cache-bytes", 64<<20, "top-k result cache approximate byte bound")
		cacheMode     = flag.String("cache", "exact", "result cache implementation: exact, semantic (Rmax-monotone downfiltering), layered, or off")
		maxK          = flag.Int("max-k", 1000, "largest per-request k")

		kwcachePath     = flag.String("kwcache", "", "keyword neighbor-set artifact file: loaded at boot when present (falling back to an empty store if it does not match the graph), persisted after every warm-up round (empty disables)")
		kwcacheWarmEach = flag.Duration("kwcache-warm-every", 30*time.Second, "how often the warmer folds /debug/workloadz hot keywords into the artifact store (0 disables warming)")

		maxTimeout = flag.Duration("max-timeout", 30*time.Second, "per-query wall-clock ceiling (0 = unlimited)")
		maxVisited = flag.Int64("max-visited", 0, "per-query shortest-path work ceiling (0 = unlimited)")
		maxResults = flag.Int64("max-results", 100000, "per-query result-count ceiling (0 = unlimited)")

		shutdownGrace = flag.Duration("shutdown-grace", 10*time.Second, "drain budget on SIGINT/SIGTERM")

		adminToken  = flag.String("admin-token", "", "bearer token for POST /admin/reload (default $COMMSERVE_ADMIN_TOKEN; empty disables the endpoint)")
		reloadWatch = flag.Duration("reload-watch", 0, "poll the served artifact's mtime at this interval and reload on change (0 disables)")

		dbPath        = flag.String("db", "", "NDJSON database dump (datagen -db-out); serve its graph + index in-process (delta mode)")
		mutationLog   = flag.String("mutation-log", "", "mutation-log file to tail (requires -db); each batch becomes a fresh epoch")
		deltaDebounce = flag.Duration("delta-debounce", 500*time.Millisecond, "quiet period before a tailed mutation batch is applied")

		logQueries  = flag.Bool("log", false, "log one structured line per query (JSON on stderr)")
		pprofEnable = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (requires the admin token)")

		profileEvery = flag.Duration("profile-every", 0, "continuous profiling: capture heap+CPU profiles at this interval into a bounded ring at /debug/profilez (0 disables)")
		profileCPU   = flag.Duration("profile-cpu", 5*time.Second, "continuous profiling: CPU sample length per round (clamped to half the interval)")
		profileKeep  = flag.Int("profile-keep", 4, "continuous profiling: captures retained per profile kind")

		workloadLog      = flag.String("workload-log", "", "workload flight recorder: append one NDJSON entry per completed query (cache hits included) to this journal file; replay it with benchrunner -replay (empty disables)")
		workloadLogMax   = flag.Int64("workload-log-max-bytes", 64<<20, "workload journal size bound; on overflow the file rotates once to <path>.1")
		workloadSample   = flag.Int("workload-sample", 1, "workload journal sampling: record 1 in every N completed queries (1 = all)")
		workloadKeywords = flag.Int("workload-keywords", 0, "hot-keyword attribution table bound for /debug/workloadz (0 = default 512)")
	)
	flag.Parse()
	if *adminToken == "" {
		*adminToken = os.Getenv("COMMSERVE_ADMIN_TOKEN")
	}
	var logger *slog.Logger
	if *logQueries {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	cfg := server.Config{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		QueueWait:     *queueWait,
		RetryAfter:    *retryAfter,
		CacheEntries:  *cacheEntries,
		CacheBytes:    *cacheBytes,
		CacheMode:     *cacheMode,
		MaxK:          *maxK,
		MaxLimits: commdb.Limits{
			Timeout:        *maxTimeout,
			MaxRelaxations: *maxVisited,
			MaxResults:     *maxResults,
		},
		Logger:           logger,
		Pprof:            *pprofEnable,
		AdminToken:       *adminToken,
		WorkloadKeywords: *workloadKeywords,
	}
	var journal *workload.Journal
	if *workloadLog != "" {
		var err error
		journal, err = workload.OpenJournal(workload.JournalConfig{
			Path:        *workloadLog,
			MaxBytes:    *workloadLogMax,
			SampleEvery: *workloadSample,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "commserve:", err)
			os.Exit(1)
		}
		cfg.WorkloadJournal = journal
	}
	if *profileEvery > 0 {
		cfg.Profiler = prof.NewProfiler(prof.ProfilerConfig{
			Interval:    *profileEvery,
			CPUDuration: *profileCPU,
			Keep:        *profileKeep,
		})
	}
	if _, err := server.NewCache(*cacheMode, 0, 0); err != nil {
		fmt.Fprintln(os.Stderr, "commserve:", err)
		os.Exit(1)
	}
	if err := run(runOptions{
		addr: *addr, graphPath: *graphPath, indexPath: *indexPath, example: *example,
		dbPath: *dbPath, mutationLog: *mutationLog, deltaDebounce: *deltaDebounce,
		useIndex: *useIndex, rmaxMax: *rmaxMax, parallelism: *parallelism,
		cfg: cfg, grace: *shutdownGrace, watchEvery: *reloadWatch,
		journal: journal, kwcachePath: *kwcachePath, kwcacheWarmEach: *kwcacheWarmEach,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "commserve:", err)
		os.Exit(1)
	}
}

// runOptions carries the resolved flags into run.
type runOptions struct {
	addr, graphPath, indexPath, example string
	dbPath, mutationLog                 string
	deltaDebounce                       time.Duration
	useIndex                            bool
	rmaxMax                             float64
	parallelism                         int
	cfg                                 server.Config
	grace, watchEvery                   time.Duration
	journal                             *workload.Journal
	kwcachePath                         string
	kwcacheWarmEach                     time.Duration
}

func run(o runOptions) error {
	cfg := o.cfg
	var (
		s      *commdb.Searcher
		loader snapshot.Loader
		pipe   *deltaPipeline
		err    error
	)
	switch {
	case o.dbPath != "":
		if o.graphPath != "" || o.example != "" || o.indexPath != "" {
			return fmt.Errorf("-db is mutually exclusive with -graph, -example and -index-file")
		}
		pipe, err = newDeltaPipeline(o.dbPath, o.rmaxMax)
		if err != nil {
			return err
		}
		s, err = pipe.searcher(o.parallelism)
		if err != nil {
			return err
		}
		loader = pipe.loader(o.parallelism)
		cfg.Deltas = pipe.m.Stats
		cfg.DeltaMem = pipe.m.Footprint
	case o.mutationLog != "":
		return fmt.Errorf("-mutation-log requires -db")
	default:
		s, err = buildSearcher(o.graphPath, o.indexPath, o.example, o.useIndex, o.rmaxMax, o.parallelism, o.kwcachePath)
		if err != nil {
			return err
		}
		loader = buildLoader(o.graphPath, o.indexPath, o.useIndex, o.rmaxMax, o.parallelism)
	}
	if o.kwcachePath != "" && o.dbPath != "" {
		log.Printf("kwcache: ignored in delta mode (epochs are rebuilt from the mutation log)")
	}
	log.Printf("graph: %d nodes, %d edges (indexed=%v)", s.Graph().NumNodes(), s.Graph().NumEdges(), s.Indexed())

	// Hot reload needs something to reload from — an on-disk artifact or
	// the delta pipeline's in-memory pair; the built-in example graphs
	// have neither, so they serve a single fixed epoch.
	var snaps *snapshot.Manager
	if loader != nil {
		snaps = snapshot.New(s, snapshot.Config{Load: loader, Logf: log.Printf})
		cfg.Snapshots = snaps
	}

	app := server.New(s, cfg)
	httpSrv := &http.Server{Addr: o.addr, Handler: app.Handler()}

	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	if cfg.Profiler != nil {
		log.Printf("continuous profiling on (ring at /debug/profilez)")
		go cfg.Profiler.Run(watchCtx)
	}
	if snaps != nil && o.watchEvery > 0 && o.dbPath == "" {
		// Watch the artifact the reload actually re-reads: the index file
		// when serving one, otherwise the graph file. indexbuild publishes
		// by atomic rename, so a changed mtime is a complete artifact.
		// (Delta mode has no artifact file; its epochs come from the
		// mutation log instead.)
		watchPath := o.indexPath
		if watchPath == "" {
			watchPath = o.graphPath
		}
		log.Printf("watching %s (every %v)", watchPath, o.watchEvery)
		go snaps.Watch(watchCtx, watchPath, o.watchEvery)
	}
	if ka := s.KeywordArtifacts(); ka.Enabled && o.kwcacheWarmEach > 0 {
		// The warmer closes the loop the flight recorder opened: the
		// hot-keyword attribution ranks which keywords pay engine-init,
		// WarmKeywords turns each one's full-set Dijkstra into a stored
		// artifact, and the store is persisted so the next boot starts
		// warm. Warming targets the boot searcher; epochs created by hot
		// reload serve without artifacts (live execution) until restart.
		go func() {
			t := time.NewTicker(o.kwcacheWarmEach)
			defer t.Stop()
			for {
				select {
				case <-watchCtx.Done():
					return
				case <-t.C:
				}
				snap := app.Stats()
				if snap.Workload == nil {
					continue
				}
				terms := make([]string, 0, len(snap.Workload.HotKeywords))
				for _, ks := range snap.Workload.HotKeywords {
					terms = append(terms, ks.Term)
				}
				if n := s.WarmKeywords(terms); n > 0 {
					ka := s.KeywordArtifacts()
					log.Printf("kwcache: warmed %d keywords (%d stored, %d KB)", n, ka.Terms, ka.Bytes/1024)
					if o.kwcachePath != "" {
						if err := writeAtomic(o.kwcachePath, s.WriteKeywordArtifacts); err != nil {
							log.Printf("kwcache: persist failed: %v", err)
						}
					}
				}
			}
		}()
	}
	if pipe != nil && o.mutationLog != "" {
		log.Printf("tailing %s (debounce %v)", o.mutationLog, o.deltaDebounce)
		go func() {
			// The follow loop ending is not fatal to serving: the last
			// good epoch keeps answering queries (fail static).
			if err := pipe.follow(watchCtx, o.mutationLog, o.deltaDebounce, snaps); err != nil {
				log.Printf("delta: follow loop stopped: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", o.addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	hupc := make(chan os.Signal, 1)
	if snaps != nil {
		signal.Notify(hupc, syscall.SIGHUP)
	}
loop:
	for {
		select {
		case err := <-errc:
			return err
		case <-hupc:
			log.Printf("caught SIGHUP; reloading")
			go func() {
				if outcome, err := snaps.Reload(context.Background()); err != nil {
					log.Printf("reload rejected (%s): %v", outcome, err)
				} else {
					log.Printf("reload complete: epoch %d serving", snaps.Current())
				}
			}()
		case sig := <-sigc:
			log.Printf("caught %v; draining (grace %v)", sig, o.grace)
			break loop
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.grace)
	defer cancel()
	// App first: stop admitting and cancel in-flight queries so their
	// streams finish with trailers; then close the listeners.
	if err := app.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// All queries are drained, so the journal has seen its last entry.
	if err := o.journal.Close(); err != nil {
		log.Printf("workload journal close: %v", err)
	}
	// Persist whatever the warmer accumulated, so the next boot starts
	// with the artifacts this run paid for.
	if ka := s.KeywordArtifacts(); o.kwcachePath != "" && ka.Enabled && ka.Terms > 0 {
		if err := writeAtomic(o.kwcachePath, s.WriteKeywordArtifacts); err != nil {
			log.Printf("kwcache: final persist failed: %v", err)
		} else {
			log.Printf("kwcache: %d keyword artifacts persisted to %s", ka.Terms, o.kwcachePath)
		}
	}
	log.Printf("drained cleanly")
	return nil
}

// buildSearcher loads the graph and picks the searcher flavour: saved
// index, freshly built index, or per-query scans. The searcher's
// workspace pool is shared by concurrent requests and by each query's
// parallel workers.
func buildSearcher(graphPath, indexPath, example string, useIndex bool, rmaxMax float64, parallelism int, kwcachePath string) (*commdb.Searcher, error) {
	g, err := loadGraph(graphPath, example)
	if err != nil {
		return nil, err
	}
	opts := []commdb.Option{commdb.WithParallelism(parallelism)}
	switch {
	case indexPath != "":
		f, err := os.Open(indexPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		opts = append(opts, commdb.WithIndexReader(f))
	case useIndex:
		opts = append(opts, commdb.WithIndex(rmaxMax))
	}
	if kwcachePath == "" {
		return commdb.Open(g, opts...)
	}
	// Keyword artifacts fail open: a file that is corrupt or belongs to
	// a different graph generation is logged and replaced by an empty
	// store (queries fall back to live Dijkstra), never served.
	if f, err := os.Open(kwcachePath); err == nil {
		s, lerr := commdb.Open(g, append(append([]commdb.Option{}, opts...), commdb.WithKeywordArtifacts(f))...)
		f.Close()
		if lerr == nil {
			ka := s.KeywordArtifacts()
			log.Printf("kwcache: %d keyword artifacts loaded from %s (radius %g)", ka.Terms, kwcachePath, ka.Radius)
			return s, nil
		}
		if !errors.Is(lerr, commdb.ErrCorruptKeywordArtifacts) && !errors.Is(lerr, commdb.ErrKeywordArtifactsMismatch) {
			return nil, lerr
		}
		log.Printf("kwcache: %s rejected, starting an empty store: %v", kwcachePath, lerr)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return commdb.Open(g, append(opts, commdb.WithKeywordArtifactStore(rmaxMax))...)
}

// buildLoader returns the snapshot loader matching the serving flags,
// or nil when there is no on-disk artifact to reload from. The loader
// mirrors buildSearcher exactly, so a reload produces the same flavour
// of searcher the process booted with.
func buildLoader(graphPath, indexPath string, useIndex bool, rmaxMax float64, parallelism int) snapshot.Loader {
	if graphPath == "" {
		return nil
	}
	opts := []commdb.Option{commdb.WithParallelism(parallelism)}
	if indexPath != "" {
		return snapshot.GraphIndexFileLoader(graphPath, indexPath, opts...)
	}
	r := 0.0
	if useIndex {
		r = rmaxMax
	}
	return snapshot.GraphFileLoader(graphPath, r, opts...)
}

// writeAtomic publishes an artifact with the temp-file + fsync +
// rename discipline (same as indexbuild): a concurrent reader at out
// sees either the previous complete file or the new one, never a torn
// write.
func writeAtomic(out string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(out), filepath.Base(out)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), out); err != nil {
		return err
	}
	tmp = nil
	return nil
}

func loadGraph(graphPath, example string) (*commdb.Graph, error) {
	switch {
	case graphPath != "" && example != "":
		return nil, fmt.Errorf("-graph and -example are mutually exclusive")
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return commdb.ReadGraph(f)
	case example == "paper":
		g, _ := commdb.PaperExampleGraph()
		return g, nil
	case example == "intro":
		g, _ := commdb.IntroExampleGraph()
		return g, nil
	default:
		return nil, fmt.Errorf("provide -graph FILE or -example paper|intro")
	}
}
