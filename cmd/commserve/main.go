// Command commserve serves community queries over HTTP: the
// polynomial-delay enumerators behind a concurrent service with
// admission control, a top-k result cache, and NDJSON streaming.
//
// Usage:
//
//	commserve -graph dblp.graph -index -rmax-max 8 -addr :8080
//	commserve -example paper -addr :8080
//
// Endpoints:
//
//	POST /v1/search/topk   JSON in, JSON out (cached, coalesced)
//	POST /v1/search/all    JSON in, NDJSON stream out (one community
//	                       per line, then a trailer with the stop reason)
//	GET  /healthz          liveness
//	GET  /statsz           serving counters + latency histogram
//	GET  /metricsz         the same plus engine counters, as Prometheus text
//
// Requests may set "trace": true for EXPLAIN mode: the response (topk
// body or stream trailer) carries the query's structured trace. With
// -log every query is logged as one structured line whose query ID
// matches the X-Query-Id response header; -pprof mounts the standard
// net/http/pprof handlers under /debug/pprof/.
//
// Per-request limits are clamped to the -max-* flags, so one client
// cannot monopolize the query governor's budget. On SIGINT/SIGTERM the
// server stops admitting, cancels in-flight queries through the
// governor, drains streams with correct trailers, then exits.
//
// When serving from files (-graph), the server hot-reloads: SIGHUP, an
// authenticated POST /admin/reload (-admin-token, or the
// COMMSERVE_ADMIN_TOKEN environment variable), or -reload-watch (which
// polls the artifact's mtime) all load a fresh epoch from the same
// paths and swap it in atomically. In-flight queries — including
// NDJSON streams — finish on the epoch they started on; a corrupt or
// truncated artifact is rejected with the current epoch still serving.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"commdb"
	"commdb/internal/server"
	"commdb/internal/snapshot"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		graphPath   = flag.String("graph", "", "graph file written by cmd/datagen")
		indexPath   = flag.String("index-file", "", "index file written by cmd/indexbuild (implies projected search)")
		example     = flag.String("example", "", "built-in example graph: paper or intro")
		useIndex    = flag.Bool("index", false, "build inverted indexes and serve projected searches")
		rmaxMax     = flag.Float64("rmax-max", 8, "index radius for -index; also the largest Rmax indexed queries may use")
		parallelism = flag.Int("parallelism", 0, "worker goroutines per query (0 = GOMAXPROCS, 1 = sequential)")

		maxConcurrent = flag.Int("max-concurrent", 0, "concurrently executing queries (0 = GOMAXPROCS)")
		maxQueue      = flag.Int("max-queue", 0, "requests allowed to wait for a slot (0 = 2x max-concurrent)")
		queueWait     = flag.Duration("queue-wait", 5*time.Second, "longest a request may wait for a slot")
		retryAfter    = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		cacheEntries  = flag.Int("cache-entries", 256, "top-k result cache entries (-1 disables)")
		cacheBytes    = flag.Int64("cache-bytes", 64<<20, "top-k result cache approximate byte bound")
		maxK          = flag.Int("max-k", 1000, "largest per-request k")

		maxTimeout = flag.Duration("max-timeout", 30*time.Second, "per-query wall-clock ceiling (0 = unlimited)")
		maxVisited = flag.Int64("max-visited", 0, "per-query shortest-path work ceiling (0 = unlimited)")
		maxResults = flag.Int64("max-results", 100000, "per-query result-count ceiling (0 = unlimited)")

		shutdownGrace = flag.Duration("shutdown-grace", 10*time.Second, "drain budget on SIGINT/SIGTERM")

		adminToken  = flag.String("admin-token", "", "bearer token for POST /admin/reload (default $COMMSERVE_ADMIN_TOKEN; empty disables the endpoint)")
		reloadWatch = flag.Duration("reload-watch", 0, "poll the served artifact's mtime at this interval and reload on change (0 disables)")

		logQueries  = flag.Bool("log", false, "log one structured line per query (JSON on stderr)")
		pprofEnable = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *adminToken == "" {
		*adminToken = os.Getenv("COMMSERVE_ADMIN_TOKEN")
	}
	var logger *slog.Logger
	if *logQueries {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	cfg := server.Config{
		MaxConcurrent: *maxConcurrent,
		MaxQueue:      *maxQueue,
		QueueWait:     *queueWait,
		RetryAfter:    *retryAfter,
		CacheEntries:  *cacheEntries,
		CacheBytes:    *cacheBytes,
		MaxK:          *maxK,
		MaxLimits: commdb.Limits{
			Timeout:        *maxTimeout,
			MaxRelaxations: *maxVisited,
			MaxResults:     *maxResults,
		},
		Logger:     logger,
		Pprof:      *pprofEnable,
		AdminToken: *adminToken,
	}
	if err := run(*addr, *graphPath, *indexPath, *example, *useIndex, *rmaxMax, *parallelism, cfg, *shutdownGrace, *reloadWatch); err != nil {
		fmt.Fprintln(os.Stderr, "commserve:", err)
		os.Exit(1)
	}
}

func run(addr, graphPath, indexPath, example string, useIndex bool, rmaxMax float64, parallelism int, cfg server.Config, grace, watchEvery time.Duration) error {
	s, err := buildSearcher(graphPath, indexPath, example, useIndex, rmaxMax, parallelism)
	if err != nil {
		return err
	}
	log.Printf("graph: %d nodes, %d edges (indexed=%v)", s.Graph().NumNodes(), s.Graph().NumEdges(), s.Indexed())

	// Hot reload needs an on-disk artifact to reload from; the built-in
	// example graphs have none, so they serve a single fixed epoch.
	var snaps *snapshot.Manager
	if loader := buildLoader(graphPath, indexPath, useIndex, rmaxMax, parallelism); loader != nil {
		snaps = snapshot.New(s, snapshot.Config{Load: loader, Logf: log.Printf})
		cfg.Snapshots = snaps
	}

	app := server.New(s, cfg)
	httpSrv := &http.Server{Addr: addr, Handler: app.Handler()}

	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	if snaps != nil && watchEvery > 0 {
		// Watch the artifact the reload actually re-reads: the index file
		// when serving one, otherwise the graph file. indexbuild publishes
		// by atomic rename, so a changed mtime is a complete artifact.
		watchPath := indexPath
		if watchPath == "" {
			watchPath = graphPath
		}
		log.Printf("watching %s (every %v)", watchPath, watchEvery)
		go snaps.Watch(watchCtx, watchPath, watchEvery)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	hupc := make(chan os.Signal, 1)
	if snaps != nil {
		signal.Notify(hupc, syscall.SIGHUP)
	}
loop:
	for {
		select {
		case err := <-errc:
			return err
		case <-hupc:
			log.Printf("caught SIGHUP; reloading")
			go func() {
				if outcome, err := snaps.Reload(context.Background()); err != nil {
					log.Printf("reload rejected (%s): %v", outcome, err)
				} else {
					log.Printf("reload complete: epoch %d serving", snaps.Current())
				}
			}()
		case sig := <-sigc:
			log.Printf("caught %v; draining (grace %v)", sig, grace)
			break loop
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	// App first: stop admitting and cancel in-flight queries so their
	// streams finish with trailers; then close the listeners.
	if err := app.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("drained cleanly")
	return nil
}

// buildSearcher loads the graph and picks the searcher flavour: saved
// index, freshly built index, or per-query scans. The searcher's
// workspace pool is shared by concurrent requests and by each query's
// parallel workers.
func buildSearcher(graphPath, indexPath, example string, useIndex bool, rmaxMax float64, parallelism int) (*commdb.Searcher, error) {
	g, err := loadGraph(graphPath, example)
	if err != nil {
		return nil, err
	}
	opts := []commdb.Option{commdb.WithParallelism(parallelism)}
	switch {
	case indexPath != "":
		f, err := os.Open(indexPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		opts = append(opts, commdb.WithIndexReader(f))
	case useIndex:
		opts = append(opts, commdb.WithIndex(rmaxMax))
	}
	return commdb.Open(g, opts...)
}

// buildLoader returns the snapshot loader matching the serving flags,
// or nil when there is no on-disk artifact to reload from. The loader
// mirrors buildSearcher exactly, so a reload produces the same flavour
// of searcher the process booted with.
func buildLoader(graphPath, indexPath string, useIndex bool, rmaxMax float64, parallelism int) snapshot.Loader {
	if graphPath == "" {
		return nil
	}
	opts := []commdb.Option{commdb.WithParallelism(parallelism)}
	if indexPath != "" {
		return snapshot.GraphIndexFileLoader(graphPath, indexPath, opts...)
	}
	r := 0.0
	if useIndex {
		r = rmaxMax
	}
	return snapshot.GraphFileLoader(graphPath, r, opts...)
}

func loadGraph(graphPath, example string) (*commdb.Graph, error) {
	switch {
	case graphPath != "" && example != "":
		return nil, fmt.Errorf("-graph and -example are mutually exclusive")
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return commdb.ReadGraph(f)
	case example == "paper":
		g, _ := commdb.PaperExampleGraph()
		return g, nil
	case example == "intro":
		g, _ := commdb.IntroExampleGraph()
		return g, nil
	default:
		return nil, fmt.Errorf("provide -graph FILE or -example paper|intro")
	}
}
