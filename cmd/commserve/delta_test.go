package main

// The delta-mode serving test: a live server absorbing a stream of
// delta-driven republishes through the epoch-versioned snapshot path
// while concurrent NDJSON streaming clients hammer it. The invariants,
// under -race:
//
//   - every applied batch becomes a fresh serving epoch (≥10 swaps);
//   - zero dropped queries: every stream issued during the storm ends
//     with a complete trailer;
//   - the maintainer's counters surface in /statsz ("deltas") and
//     /metricsz (commdb_delta_*).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"commdb/internal/datagen"
	"commdb/internal/delta"
	"commdb/internal/obs"
	"commdb/internal/server"
	"commdb/internal/snapshot"
)

// streamAll runs one NDJSON query; any outcome but a complete trailer
// is a dropped query.
func streamAll(client *http.Client, url string) error {
	body := bytes.NewReader([]byte(`{"keywords":["database"],"rmax":3}`))
	resp, err := client.Post(url+"/v1/search/all", "application/json", body)
	if err != nil {
		return fmt.Errorf("request failed: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	sawTrailer := false
	for sc.Scan() {
		var rec struct {
			Type     string `json:"type"`
			Complete bool   `json:"complete"`
			Reason   string `json:"reason"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("bad NDJSON line: %w", err)
		}
		if rec.Type == server.RecordTrailer {
			sawTrailer = true
			if !rec.Complete {
				return fmt.Errorf("incomplete stream: %s", rec.Reason)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream read: %w", err)
	}
	if !sawTrailer {
		return fmt.Errorf("stream ended without a trailer (dropped query)")
	}
	return nil
}

func TestDeltaServeLiveRepublish(t *testing.T) {
	if testing.Short() {
		t.Skip("live republish suite is slow")
	}
	dir := t.TempDir()

	// Base dump + mutation stream, exactly as cmd/datagen emits them.
	db, err := datagen.GenerateDBLP(datagen.DBLPParams{Authors: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	dumpPath := filepath.Join(dir, "base.ndjson")
	df, err := os.Create(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := delta.DumpDatabase(df, db); err != nil {
		t.Fatal(err)
	}
	df.Close()
	ops, err := datagen.Mutations(db, datagen.MutationParams{N: 120, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 12
	per := len(ops) / chunks

	logPath := filepath.Join(dir, "muts.ndjson")
	w, err := delta.OpenLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Assemble the delta-mode serving stack run() builds.
	pipe, err := newDeltaPipeline(dumpPath, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pipe.searcher(1)
	if err != nil {
		t.Fatal(err)
	}
	mgr := snapshot.New(s, snapshot.Config{
		Load: pipe.loader(1),
		// Short probation so epochs commit under test-scale traffic.
		Probation: 2,
		Logf:      t.Logf,
	})
	srv := server.New(s, server.Config{
		MaxConcurrent: 8,
		MaxQueue:      64,
		Snapshots:     mgr,
		Deltas:        pipe.m.Stats,
		Obs:           obs.CollectorConfig{Watchdog: obs.WatchdogConfig{Disabled: true}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var followDone sync.WaitGroup
	followDone.Add(1)
	go func() {
		defer followDone.Done()
		if err := pipe.follow(ctx, logPath, 20*time.Millisecond, mgr); err != nil {
			t.Errorf("follow loop: %v", err)
		}
	}()
	// The follow loop must be stopped before the test returns: its Logf
	// is t.Logf, and the manager must not reload into a closed server.
	defer followDone.Wait()
	defer cancel()

	// Concurrent streaming clients, running through every republish.
	stop := make(chan struct{})
	var clients sync.WaitGroup
	var mu sync.Mutex
	var clientErrs []error
	completed := 0
	for c := 0; c < 3; c++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := streamAll(client, ts.URL)
				mu.Lock()
				if err != nil {
					clientErrs = append(clientErrs, err)
				} else {
					completed++
				}
				mu.Unlock()
			}
		}()
	}

	// Feed the stream chunk by chunk, waiting for each batch's epoch
	// swap before the next append so republishes don't coalesce.
	for i := 0; i < chunks; i++ {
		chunk := ops[i*per : (i+1)*per]
		if i == chunks-1 {
			chunk = ops[i*per:]
		}
		epoch := mgr.Current()
		if err := w.Append(chunk...); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for mgr.Current() == epoch {
			if time.Now().After(deadline) {
				t.Fatalf("chunk %d: no epoch swap after 20s (epoch still %d, stats %+v)",
					i, epoch, pipe.m.Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	close(stop)
	clients.Wait()

	if len(clientErrs) > 0 {
		t.Fatalf("%d dropped/failed queries (of %d completed); first: %v",
			len(clientErrs), completed, clientErrs[0])
	}
	if completed == 0 {
		t.Fatal("no client queries completed")
	}
	st := pipe.m.Stats()
	if st.Republishes < 10 {
		t.Fatalf("only %d delta-driven republishes, want >= 10", st.Republishes)
	}
	if st.PartialFallbacks != 0 {
		t.Fatalf("%d partial fallbacks under live traffic", st.PartialFallbacks)
	}
	if got := mgr.Current(); got < 10 {
		t.Fatalf("serving epoch %d after %d batches, want >= 10 swaps", got, chunks)
	}
	t.Logf("served %d streams across %d epochs (%d batches, %d ops)",
		completed, mgr.Current(), st.Batches, st.Ops)

	// The maintainer's counters are visible on both monitoring surfaces.
	statsResp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var snap struct {
		Deltas *delta.Stats `json:"deltas"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Deltas == nil || snap.Deltas.Batches != st.Batches {
		t.Fatalf("/statsz deltas block = %+v, want %d batches", snap.Deltas, st.Batches)
	}
	metResp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer metResp.Body.Close()
	met, err := io.ReadAll(metResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`commdb_delta_applied_total{kind="insert"}`,
		"commdb_delta_batches_total",
		"commdb_delta_dirty_terms",
		"commdb_delta_full_build_ms",
		"commdb_delta_republishes_total",
	} {
		if !strings.Contains(string(met), want) {
			t.Fatalf("/metricsz missing %s", want)
		}
	}
}
