// Command graphinfo inspects a saved database graph: structure
// statistics, a degree histogram, and the most frequent terms with
// their keyword frequencies — the numbers needed to pick query
// keywords and radii (the paper sets Rmax from exactly these dataset
// characteristics, §VII).
//
// Usage:
//
//	graphinfo -graph dblp.graph
//	graphinfo -graph dblp.graph -terms 20 -kwf 0.0009
//	graphinfo -graph dblp.graph -mem
//
// -mem prints the exact memory footprint of the loaded graph — CSR
// arrays, labels, term postings, dictionary — the same accounting the
// server exposes at /debug/memz.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"commdb"
	"commdb/internal/fulltext"
	"commdb/internal/graph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file written by cmd/datagen (required)")
		terms     = flag.Int("terms", 15, "how many of the most frequent terms to list")
		kwfTarget = flag.Float64("kwf", 0, "also list terms nearest this keyword frequency")
		mem       = flag.Bool("mem", false, "print the graph's exact memory footprint breakdown")
	)
	flag.Parse()
	if err := run(*graphPath, *terms, *kwfTarget, *mem, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(graphPath string, topTerms int, kwfTarget float64, mem bool, out *os.File) error {
	if graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := commdb.ReadGraph(f)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%s\n\n", commdb.GraphStatsOf(g))
	printDegreeHistogram(out, g)
	printTopTerms(out, g, topTerms)
	if kwfTarget > 0 {
		ix := fulltext.Build(g)
		fmt.Fprintf(out, "\nterms nearest KWF %.6g:\n", kwfTarget)
		for _, w := range ix.TermsNearKWF(kwfTarget, 10) {
			fmt.Fprintf(out, "  %-20s %.6f\n", w, ix.KWF(w))
		}
	}
	if mem {
		fmt.Fprintln(out, "\nmemory footprint:")
		g.Footprint().WriteText(out)
	}
	return nil
}

// printDegreeHistogram buckets out-degrees by powers of two.
func printDegreeHistogram(out *os.File, g *commdb.Graph) {
	var buckets [24]int
	for v := 0; v < g.NumNodes(); v++ {
		d := g.OutDegree(commdb.NodeID(v))
		b := 0
		for (1 << b) <= d {
			b++
		}
		if b >= len(buckets) {
			b = len(buckets) - 1
		}
		buckets[b]++
	}
	fmt.Fprintln(out, "out-degree histogram:")
	for b, c := range buckets {
		if c == 0 {
			continue
		}
		lo := 0
		if b > 0 {
			lo = 1 << (b - 1)
		}
		fmt.Fprintf(out, "  [%6d..%6d)  %d nodes\n", lo, 1<<b, c)
	}
}

// printTopTerms lists the most frequent terms with their KWF.
func printTopTerms(out *os.File, g *commdb.Graph, k int) {
	counts := make(map[int32]int)
	for v := 0; v < g.NumNodes(); v++ {
		for _, t := range g.Terms(graph.NodeID(v)) {
			counts[t]++
		}
	}
	type tc struct {
		id int32
		n  int
	}
	all := make([]tc, 0, len(counts))
	for id, n := range counts {
		all = append(all, tc{id, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].id < all[j].id
	})
	if len(all) > k {
		all = all[:k]
	}
	fmt.Fprintf(out, "\ntop %d terms by frequency:\n", len(all))
	for _, t := range all {
		fmt.Fprintf(out, "  %-20s %6d nodes  (KWF %.6f)\n",
			g.Dict().Word(t.id), t.n, float64(t.n)/float64(g.NumNodes()))
	}
}
