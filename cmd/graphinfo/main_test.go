package main

import (
	"os"
	"path/filepath"
	"testing"

	"commdb"
)

func TestGraphInfo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.graph")
	db, err := commdb.GenerateDBLP(100, 9)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := commdb.GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := commdb.WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out, err := os.Create(filepath.Join(dir, "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(path, 10, 0.01, true, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"out-degree histogram", "top", "terms nearest KWF", "memory footprint", "graph"} {
		if !containsStr(string(data), want) {
			t.Fatalf("output missing %q:\n%s", want, data)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestGraphInfoErrors(t *testing.T) {
	if err := run("", 5, 0, false, os.Stdout); err == nil {
		t.Fatal("missing graph should error")
	}
	if err := run("/nonexistent", 5, 0, false, os.Stdout); err == nil {
		t.Fatal("missing file should error")
	}
}
