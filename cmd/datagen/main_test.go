package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"commdb"
	"commdb/internal/delta"
)

func baseOpts(dataset, out string) options {
	return options{
		dataset: dataset, authors: 50, users: 30, avgRatings: 8,
		seed: 1, out: out, mutationSeed: 1,
	}
}

func TestRunDBLP(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dblp.graph")
	if err := run(baseOpts("dblp", out)); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := commdb.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("written graph is empty")
	}
	// The written graph answers queries.
	s := commdb.NewSearcher(g)
	if _, err := s.TopK(commdb.Query{Keywords: []string{"database"}, Rmax: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIMDB(t *testing.T) {
	out := filepath.Join(t.TempDir(), "imdb.graph")
	if err := run(baseOpts("imdb", out)); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("output file missing or empty: %v", err)
	}
}

// -db-out and -mutations produce a replayable dump + stream pair: the
// dump loads into a database whose graph matches -out, and the stream
// replays cleanly on top of it. The same flags with the same seeds
// must produce byte-identical files.
func TestRunMutationStream(t *testing.T) {
	dir := t.TempDir()
	o := baseOpts("dblp", filepath.Join(dir, "base.graph"))
	o.dbOut = filepath.Join(dir, "base.ndjson")
	o.mutations = 40
	o.mutationsOut = filepath.Join(dir, "muts.ndjson")
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	dump, err := os.ReadFile(o.dbOut)
	if err != nil {
		t.Fatal(err)
	}
	db, err := delta.LoadDatabase(bytes.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := db.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	var gbuf bytes.Buffer
	if err := commdb.WriteGraph(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	baseGraph, err := os.ReadFile(o.out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gbuf.Bytes(), baseGraph) {
		t.Fatal("graph of the loaded dump differs from the -out graph")
	}

	// The stream replays onto the loaded base without a single
	// rejection.
	mf, err := os.Open(o.mutationsOut)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	n, err := delta.Replay(mf, db)
	if err != nil {
		t.Fatal(err)
	}
	if n < o.mutations {
		t.Fatalf("stream replayed %d ops, want at least %d", n, o.mutations)
	}

	// Determinism: the same invocation into fresh files produces the
	// same bytes.
	o2 := o
	o2.out = filepath.Join(dir, "base2.graph")
	o2.dbOut = filepath.Join(dir, "base2.ndjson")
	o2.mutationsOut = filepath.Join(dir, "muts2.ndjson")
	if err := run(o2); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{o.dbOut, o2.dbOut}, {o.mutationsOut, o2.mutationsOut}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s and %s differ: the generator is not deterministic", pair[0], pair[1])
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(baseOpts("dblp", "")); err == nil {
		t.Fatal("no outputs should error")
	}
	if err := run(baseOpts("nope", "/tmp/x")); err == nil {
		t.Fatal("unknown dataset should error")
	}
	tiny := baseOpts("dblp", filepath.Join(t.TempDir(), "x"))
	tiny.authors = 1
	if err := run(tiny); err == nil {
		t.Fatal("tiny scale should surface generator error")
	}
	if err := run(baseOpts("dblp", "/nonexistent-dir/x.graph")); err == nil {
		t.Fatal("unwritable path should error")
	}
	noOut := baseOpts("dblp", "")
	noOut.mutations = 5
	if err := run(noOut); err == nil {
		t.Fatal("-mutations without -mutations-out should error")
	}
}
