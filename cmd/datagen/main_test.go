package main

import (
	"os"
	"path/filepath"
	"testing"

	"commdb"
)

func TestRunDBLP(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dblp.graph")
	if err := run("dblp", 50, 0, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := commdb.ReadGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("written graph is empty")
	}
	// The written graph answers queries.
	s := commdb.NewSearcher(g)
	if _, err := s.TopK(commdb.Query{Keywords: []string{"database"}, Rmax: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIMDB(t *testing.T) {
	out := filepath.Join(t.TempDir(), "imdb.graph")
	if err := run("imdb", 0, 30, 8, 2, out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("output file missing or empty: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("dblp", 50, 0, 0, 1, ""); err == nil {
		t.Fatal("missing -out should error")
	}
	if err := run("nope", 50, 0, 0, 1, "/tmp/x"); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if err := run("dblp", 1, 0, 0, 1, filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("tiny scale should surface generator error")
	}
	if err := run("dblp", 50, 0, 0, 1, "/nonexistent-dir/x.graph"); err == nil {
		t.Fatal("unwritable path should error")
	}
}
