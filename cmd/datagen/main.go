// Command datagen generates a synthetic DBLP- or IMDB-shaped dataset,
// materializes it as a database graph, and writes the graph to a file
// in commdb's binary format for later searching with cmd/commsearch.
//
// Usage:
//
//	datagen -dataset dblp -authors 20000 -seed 1 -out dblp.graph
//	datagen -dataset imdb -users 800 -avg-ratings 40 -out imdb.graph
package main

import (
	"flag"
	"fmt"
	"os"

	"commdb"
)

func main() {
	var (
		dataset    = flag.String("dataset", "dblp", "dataset to generate: dblp or imdb")
		authors    = flag.Int("authors", 5000, "DBLP scale: number of authors")
		users      = flag.Int("users", 500, "IMDB scale: number of users")
		avgRatings = flag.Float64("avg-ratings", 40, "IMDB: average ratings per user (0 = the real 165.60)")
		seed       = flag.Int64("seed", 1, "generator seed")
		out        = flag.String("out", "", "output graph file (required)")
	)
	flag.Parse()
	if err := run(*dataset, *authors, *users, *avgRatings, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, authors, users int, avgRatings float64, seed int64, out string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	var (
		db  *commdb.Database
		err error
	)
	switch dataset {
	case "dblp":
		db, err = commdb.GenerateDBLP(authors, seed)
	case "imdb":
		db, err = commdb.GenerateIMDB(users, avgRatings, seed)
	default:
		return fmt.Errorf("unknown dataset %q (want dblp or imdb)", dataset)
	}
	if err != nil {
		return err
	}
	g, _, err := commdb.GraphFromDatabase(db)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := commdb.WriteGraph(f, g); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s dataset: %d tuples across %d tables\n", dataset, db.NumTuples(), len(db.Tables()))
	fmt.Printf("graph: %s\n", commdb.GraphStatsOf(g))
	fmt.Printf("written to %s\n", out)
	return nil
}
