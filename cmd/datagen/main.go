// Command datagen generates a synthetic DBLP- or IMDB-shaped dataset,
// materializes it as a database graph, and writes the graph to a file
// in commdb's binary format for later searching with cmd/commsearch.
//
// It can additionally emit the inputs of the incremental-maintenance
// pipeline: -db-out writes the base database as a replayable NDJSON
// dump (schema, foreign keys, then one insert op per row), and
// -mutations N writes a seeded, deterministic insert/delete op stream
// against that base — the feed for cmd/indexbuild -follow and
// commserve's delta mode. The graph written by -out is the base
// database's graph, before any mutations.
//
// Usage:
//
//	datagen -dataset dblp -authors 20000 -seed 1 -out dblp.graph
//	datagen -dataset imdb -users 800 -avg-ratings 40 -out imdb.graph
//	datagen -dataset dblp -authors 5000 -db-out base.ndjson \
//	        -mutations 10000 -mutations-out muts.ndjson
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"commdb"
	"commdb/internal/datagen"
	"commdb/internal/delta"
)

type options struct {
	dataset      string
	authors      int
	users        int
	avgRatings   float64
	seed         int64
	out          string
	dbOut        string
	mutations    int
	mutationsOut string
	mutationSeed int64
}

func main() {
	var o options
	flag.StringVar(&o.dataset, "dataset", "dblp", "dataset to generate: dblp or imdb")
	flag.IntVar(&o.authors, "authors", 5000, "DBLP scale: number of authors")
	flag.IntVar(&o.users, "users", 500, "IMDB scale: number of users")
	flag.Float64Var(&o.avgRatings, "avg-ratings", 40, "IMDB: average ratings per user (0 = the real 165.60)")
	flag.Int64Var(&o.seed, "seed", 1, "generator seed")
	flag.StringVar(&o.out, "out", "", "output graph file (of the base dataset)")
	flag.StringVar(&o.dbOut, "db-out", "", "output NDJSON database dump of the base dataset")
	flag.IntVar(&o.mutations, "mutations", 0, "emit a deterministic insert/delete op stream of this many ops")
	flag.StringVar(&o.mutationsOut, "mutations-out", "", "output NDJSON mutation stream (required with -mutations)")
	flag.Int64Var(&o.mutationSeed, "mutation-seed", 1, "mutation stream seed")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.out == "" && o.dbOut == "" && o.mutations == 0 {
		return fmt.Errorf("nothing to do: provide -out, -db-out, and/or -mutations")
	}
	if o.mutations > 0 && o.mutationsOut == "" {
		return fmt.Errorf("-mutations requires -mutations-out")
	}
	var (
		db  *commdb.Database
		err error
	)
	switch o.dataset {
	case "dblp":
		db, err = commdb.GenerateDBLP(o.authors, o.seed)
	case "imdb":
		db, err = commdb.GenerateIMDB(o.users, o.avgRatings, o.seed)
	default:
		return fmt.Errorf("unknown dataset %q (want dblp or imdb)", o.dataset)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s dataset: %d tuples across %d tables\n", o.dataset, db.NumTuples(), len(db.Tables()))

	// Base artifacts first: the dump and the graph describe the state
	// *before* the mutation stream (the generator mutates the database
	// as it emits ops).
	if o.dbOut != "" {
		if err := writeFile(o.dbOut, func(w io.Writer) error {
			return delta.DumpDatabase(w, db)
		}); err != nil {
			return err
		}
		fmt.Printf("database dump written to %s\n", o.dbOut)
	}
	if o.out != "" {
		g, _, err := commdb.GraphFromDatabase(db)
		if err != nil {
			return err
		}
		if err := writeFile(o.out, func(w io.Writer) error {
			return commdb.WriteGraph(w, g)
		}); err != nil {
			return err
		}
		fmt.Printf("graph: %s\n", commdb.GraphStatsOf(g))
		fmt.Printf("written to %s\n", o.out)
	}
	if o.mutations > 0 {
		ops, err := datagen.Mutations(db, datagen.MutationParams{N: o.mutations, Seed: o.mutationSeed})
		if err != nil {
			return err
		}
		if err := writeFile(o.mutationsOut, func(w io.Writer) error {
			return delta.WriteOps(w, ops)
		}); err != nil {
			return err
		}
		fmt.Printf("%d mutation ops written to %s (post-stream: %d tuples)\n",
			len(ops), o.mutationsOut, db.NumTuples())
	}
	return nil
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
