package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"commdb"
	"commdb/internal/server"
)

// TestJSONMatchesServerStream cross-checks the satellite contract: the
// CLI's -json output and the server's streaming endpoint produce
// line-identical records for the same query (trailers agree modulo
// elapsed time).
func TestJSONMatchesServerStream(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	s := commdb.NewSearcher(g)

	// CLI side. The CLI does not normalize (it preserves the user's
	// keyword order), so feed it the normalized query the server would
	// run for the same request.
	q := commdb.Query{Keywords: []string{"c", "a", "b"}, Rmax: 8}.Normalized()
	it, err := s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := emitNDJSON(&cli, g, it, 0, true, nil); err != nil {
		t.Fatal(err)
	}

	// Server side, same query pre-normalization.
	srv := server.New(s, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(map[string]any{"keywords": []string{"c", "a", "b"}, "rmax": 8, "compact": true})
	resp, err := http.Post(ts.URL+"/v1/search/all", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	cliLines := strings.Split(strings.TrimSpace(cli.String()), "\n")
	var srvLines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		srvLines = append(srvLines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(cliLines) != len(srvLines) {
		t.Fatalf("CLI emitted %d lines, server %d", len(cliLines), len(srvLines))
	}
	if len(cliLines) != 6 { // the paper's 5 communities + trailer
		t.Fatalf("got %d lines, want 6", len(cliLines))
	}
	for i := 0; i < len(cliLines)-1; i++ {
		if cliLines[i] != srvLines[i] {
			t.Errorf("record %d differs:\nCLI:    %s\nserver: %s", i+1, cliLines[i], srvLines[i])
		}
	}
	var ct, st server.Trailer
	if err := json.Unmarshal([]byte(cliLines[len(cliLines)-1]), &ct); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(srvLines[len(srvLines)-1]), &st); err != nil {
		t.Fatal(err)
	}
	if ct.Count != st.Count || ct.Complete != st.Complete || ct.Reason != st.Reason {
		t.Fatalf("trailers disagree: CLI %+v, server %+v", ct, st)
	}
}

// TestJSONTrailerReportsStop: a governed CLI query that trips its
// budget still emits the partial records and a trailer with the
// reason, like the server does.
func TestJSONTrailerReportsStop(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	s := commdb.NewSearcher(g)
	q := commdb.Query{Keywords: []string{"a", "b", "c"}, Rmax: 8, Limits: commdb.Limits{MaxResults: 2}}
	it, err := s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := emitNDJSON(&out, g, it, 0, true, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 { // 2 granted + trailer
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}
	var trailer server.Trailer
	if err := json.Unmarshal([]byte(lines[2]), &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer.Complete || trailer.Count != 2 || !strings.Contains(trailer.Reason, "results") {
		t.Fatalf("trailer = %+v, want an incomplete results-budget stop after 2", trailer)
	}
}
