package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"commdb"
	"commdb/internal/fault"
	"commdb/internal/obs"
	"commdb/internal/snapshot"
	"commdb/internal/workload"
)

// repl runs the interactive session: the user issues queries and then
// keeps asking for "more" — served by the same polynomial-delay top-k
// iterator with no recomputation, the paper's Exp-3 scenario as a UI.
// Queries run under lim; a query stopped by a limit reports the reason
// instead of silently ending its output.
func repl(g *commdb.Graph, s *commdb.Searcher, rmax float64, lim commdb.Limits, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, "commsearch interactive mode — 'help' lists commands")
	cost := commdb.CostSumDistances
	var it *commdb.TopKIterator
	var shown int
	var lastTr *obs.Trace // trace of the current query, for 'stats'
	var qn int            // query counter, numbers the trace IDs

	// The session-local slow-query log: every finished query is run
	// through the same capture/watchdog/aggregation layer the server
	// uses. A query is finalized when the next one starts, on 'slowlog',
	// or at quit; interactive idle time between 'more' calls is not
	// charged to its latency.
	col := obs.NewCollector(obs.CollectorConfig{})
	col.OnBreach(func(rec *obs.QueryRecord) {
		fmt.Fprintf(out, "warning: emission SLO breach on %s — max gap %.2fms vs median %.2fms\n",
			rec.QueryID, rec.MaxEmissionDelayMS, rec.MedianEmissionDelayMS)
	})
	// The session workload tracker behind `hot`: the same per-keyword
	// engine-init attribution the server serves at /debug/workloadz,
	// sized down to one session (in-memory only, no journal).
	wl := workload.NewTracker(workload.AttributionConfig{}, nil)
	var pending *replQuery
	flush := func() {
		pending.flush(col, wl, it, shown)
		pending = nil
	}

	// The epoch manager behind `reload`: the same fail-closed swap path
	// commserve uses, sized down to one session. A rejected artifact
	// (corrupt, truncated, wrong graph, shrunken radius) leaves the
	// current searcher untouched, and an open iterator keeps answering
	// 'more' from the epoch it started on.
	var reloadPath string
	snaps := snapshot.New(s, snapshot.Config{
		Load: func(inj *fault.Injector) (*commdb.Searcher, error) {
			return snapshot.IndexFileLoader(g, reloadPath)(inj)
		},
		Logf: func(format string, a ...any) { fmt.Fprintf(out, "  "+format+"\n", a...) },
	})

	scanner := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !scanner.Scan() {
			return scanner.Err()
		}
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		switch cmd := fields[0]; cmd {
		case "help":
			fmt.Fprintln(out, "  q <kw> [kw...]   start a ranked community query")
			fmt.Fprintln(out, "  more [n]         next n communities from the same query (no recompute)")
			fmt.Fprintln(out, "  trees [n]        top-n connected trees for the same keywords")
			fmt.Fprintln(out, "  rmax <v>         set the radius (now", rmax, ")")
			fmt.Fprintln(out, "  cost sum|max     set the ranking aggregate")
			fmt.Fprintln(out, "  timeout <dur>    wall-clock budget per query, e.g. 50ms (0 = unlimited)")
			fmt.Fprintln(out, "  kwf <kw>         keyword frequency of a term")
			fmt.Fprintln(out, "  mem              memory footprint of the serving artifacts (graph, index, dictionary)")
			fmt.Fprintln(out, "  stats            trace of the current query: stages, counters, emission delays")
			fmt.Fprintln(out, "  slowlog          session slow-query log: captured traces, classes, SLO breaches")
			fmt.Fprintln(out, "  hot              hottest keywords by attributed engine-init cost this session")
			fmt.Fprintln(out, "  reload <file>    swap in a new index artifact (fail-closed: a bad file is rejected)")
			fmt.Fprintln(out, "  quit             exit")
		case "quit", "exit":
			flush()
			return nil
		case "rmax":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: rmax <v>")
				continue
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || v < 0 {
				fmt.Fprintln(out, "bad radius")
				continue
			}
			rmax = v
			fmt.Fprintln(out, "rmax =", rmax)
		case "cost":
			if len(fields) != 2 || (fields[1] != "sum" && fields[1] != "max") {
				fmt.Fprintln(out, "usage: cost sum|max")
				continue
			}
			if fields[1] == "max" {
				cost = commdb.CostMaxDistance
			} else {
				cost = commdb.CostSumDistances
			}
			fmt.Fprintln(out, "cost =", fields[1])
		case "timeout":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: timeout <dur>")
				continue
			}
			d, err := time.ParseDuration(fields[1])
			if err != nil || d < 0 {
				fmt.Fprintln(out, "bad duration")
				continue
			}
			lim.Timeout = d
			fmt.Fprintln(out, "timeout =", d)
		case "kwf":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: kwf <kw>")
				continue
			}
			fmt.Fprintf(out, "%q occurs on %.4f%% of nodes\n", fields[1], s.KeywordFrequency(fields[1])*100)
		case "q":
			if len(fields) < 2 {
				fmt.Fprintln(out, "usage: q <kw> [kw...]")
				continue
			}
			flush()
			qn++
			tr := obs.NewTrace(fmt.Sprintf("repl-%d", qn))
			ctx := obs.ContextWithTrace(context.Background(), tr)
			begin := time.Now()
			nit, err := s.TopKCtx(ctx, commdb.Query{Keywords: fields[1:], Rmax: rmax, Cost: cost, Limits: lim})
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				// Even a query that failed to start enters the log: errored
				// queries are always retained.
				rec := obs.NewQueryRecord(tr.QueryID(), "repl", fields[1:], rmax, 0, false,
					0, err.Error(), begin, time.Since(begin), tr.Summary())
				col.Observe(rec)
				e := workload.EntryFromRecord(rec)
				e.Algo = workload.AlgoTopK
				wl.Observe(e)
				it, lastTr = nil, nil
				continue
			}
			it, lastTr = nit, tr
			shown = 0
			pending = &replQuery{qid: tr.QueryID(), keywords: fields[1:], rmax: rmax, start: begin, tr: tr}
			replShow(out, g, it, &shown, 5)
			pending.active += time.Since(begin)
		case "reload":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: reload <index-file>")
				continue
			}
			reloadPath = fields[1]
			if outcome, err := snaps.Reload(context.Background()); err != nil {
				fmt.Fprintf(out, "reload rejected (%s): %v — current index keeps serving\n", outcome, err)
				continue
			}
			// New queries run on the new epoch; an open iterator keeps its
			// old searcher and stays valid for 'more'.
			l := snaps.Acquire()
			s = l.Searcher()
			l.Release()
			fmt.Fprintf(out, "reload ok: epoch %d serving (indexed=%v, radius=%v)\n",
				snaps.Current(), s.Indexed(), s.IndexRadius())
		case "mem":
			// The footprint is the reload-aware view: after a successful
			// 'reload', s is the new epoch's searcher, so the report
			// follows the swap.
			var b strings.Builder
			s.Footprint().WriteText(&b)
			fmt.Fprint(out, b.String())
		case "stats":
			if lastTr == nil {
				fmt.Fprintln(out, "no query yet — use q first")
				continue
			}
			printExplain(out, lastTr.Summary())
		case "slowlog":
			flush() // finalize the current query so it appears too
			printSlowlog(out, col)
		case "hot":
			flush() // finalize the current query so its init spend counts
			printHot(out, wl)
		case "more":
			if it == nil {
				fmt.Fprintln(out, "no active query — use q first")
				continue
			}
			n := 5
			if len(fields) == 2 {
				if v, err := strconv.Atoi(fields[1]); err == nil && v > 0 {
					n = v
				}
			}
			begin := time.Now()
			replShow(out, g, it, &shown, n)
			if pending != nil {
				pending.active += time.Since(begin)
			}
		case "trees":
			if len(fields) < 2 {
				fmt.Fprintln(out, "usage: trees <kw> [kw...] (or rerun after q)")
				continue
			}
			tit, err := s.Trees(commdb.Query{Keywords: fields[1:], Rmax: rmax})
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			ts := tit.Collect(5)
			for i, tr := range ts {
				fmt.Fprintf(out, "tree %d cost=%.3f root=%s nodes=%d\n",
					i+1, tr.Cost, g.Label(tr.Root), len(tr.Nodes))
			}
			if len(ts) == 0 {
				fmt.Fprintln(out, "no trees")
			}
		default:
			fmt.Fprintf(out, "unknown command %q — try help\n", cmd)
		}
	}
}

// replQuery tracks the query currently open in the REPL until it is
// finalized into the slow-query log. active accumulates only the time
// spent computing (initial run plus each 'more'), so reading results at
// the prompt does not inflate the recorded latency.
type replQuery struct {
	qid      string
	keywords []string
	rmax     float64
	start    time.Time
	active   time.Duration
	tr       *obs.Trace
}

// flush finalizes the query into the collector and the workload
// tracker: trace summary, stop reason from the iterator, results shown
// so far. Safe on nil.
func (p *replQuery) flush(col *obs.Collector, wl *workload.Tracker, it *commdb.TopKIterator, shown int) {
	if p == nil {
		return
	}
	sum := p.tr.Summary()
	indexed := sum != nil && sum.Labels["projected"] == "true"
	reason := ""
	if it != nil {
		if err := it.Err(); err != nil {
			reason = stopReason(err)
		}
	}
	rec := obs.NewQueryRecord(p.qid, "repl", p.keywords, p.rmax, 0, indexed,
		shown, reason, p.start, p.active, sum)
	col.Observe(rec)
	e := workload.EntryFromRecord(rec)
	e.Algo = workload.AlgoTopK
	wl.Observe(e)
}

// printHot renders the session's per-keyword init attribution: the
// REPL view of the server's GET /debug/workloadz.
func printHot(out io.Writer, wl *workload.Tracker) {
	snap := wl.Snapshot(10)
	fmt.Fprintf(out, "workload: %d queries observed, %d keywords tracked\n",
		snap.Observed, snap.TrackedKeywords)
	if len(snap.HotKeywords) == 0 {
		fmt.Fprintln(out, "  no keyword init spend yet — run a query first")
		return
	}
	for _, kw := range snap.HotKeywords {
		fmt.Fprintf(out, "  %-16s queries=%-3d init: runs=%-3d visits=%-6d relax=%-6d wall=%.3fms\n",
			kw.Term, kw.Queries, kw.InitRuns, kw.InitVisits, kw.InitRelax, kw.InitWallMS)
	}
	for _, c := range snap.Classes {
		fmt.Fprintf(out, "  class %-12s queries=%-3d init=%.3fms keyword=%.3fms shared=%.3fms\n",
			c.Class, c.Queries, c.InitMS, c.KeywordMS, c.SharedInitMS)
	}
}

// printSlowlog renders the session's capture ring and per-class
// aggregates: the REPL view of the server's GET /debug/queries.
func printSlowlog(out io.Writer, col *obs.Collector) {
	observed, retained := col.CaptureStats()
	fmt.Fprintf(out, "slow-query log: %d observed, %d retained, %d SLO breaches\n",
		observed, retained, col.Breaches())
	for _, rec := range col.SlowLog() {
		fmt.Fprintf(out, "  %-10s %9.3fms  results=%-3d class=%-12s kept=[%s]",
			rec.QueryID, rec.TotalMS, rec.Results, rec.Class, strings.Join(rec.Captured, ","))
		if rec.MaxEmissionDelayMS > 0 {
			fmt.Fprintf(out, " max_gap=%.3fms", rec.MaxEmissionDelayMS)
		}
		if rec.StopReason != "" {
			fmt.Fprintf(out, " stopped: %s", rec.StopReason)
		}
		fmt.Fprintln(out)
	}
	for _, c := range col.Classes() {
		fmt.Fprintf(out, "  class %-12s total=%-4d window=%-4d rate=%.2f/s p50=%.3fms p95=%.3fms\n",
			c.Class, c.Total, c.WindowCount, c.RatePerSec, c.P50MS, c.P95MS)
	}
}

func replShow(out io.Writer, g *commdb.Graph, it *commdb.TopKIterator, shown *int, n int) {
	for i := 0; i < n; i++ {
		r, ok := it.Next()
		if !ok {
			// Distinguish "no more communities exist" from "the query
			// was stopped": exhausted vs. deadline vs. budget.
			if err := it.Err(); err != nil {
				fmt.Fprintf(out, "(stopped early: %s — %d shown so far are a valid ranking prefix)\n",
					stopReason(err), *shown)
			} else {
				fmt.Fprintln(out, "(query exhausted)")
			}
			return
		}
		*shown++
		var cores []string
		for _, v := range r.Core {
			cores = append(cores, g.Label(v))
		}
		fmt.Fprintf(out, "#%d cost=%.3f core=[%s] centers=%d nodes=%d\n",
			*shown, r.Cost, strings.Join(cores, "; "), len(r.Cnodes), len(r.Nodes))
	}
	fmt.Fprintln(out, "('more' continues without recomputation)")
}
