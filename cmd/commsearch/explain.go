package main

import (
	"fmt"
	"io"
	"sort"

	"commdb/internal/obs"
)

// printExplain renders a finished query trace for the terminal: the
// per-stage spans, the engine counters, and the per-community
// inter-emission delays — the paper's polynomial-delay claim made
// visible per query.
func printExplain(w io.Writer, sum *obs.Summary) {
	if sum == nil {
		return
	}
	fmt.Fprintf(w, "--- explain: total %.3fms", sum.TotalMS)
	if sum.QueryID != "" {
		fmt.Fprintf(w, " (query %s)", sum.QueryID)
	}
	fmt.Fprintln(w)
	if len(sum.Labels) > 0 {
		keys := make([]string, 0, len(sum.Labels))
		for k := range sum.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s=%s", k, sum.Labels[k])
		}
		fmt.Fprintln(w)
	}
	for _, sp := range sum.Spans {
		fmt.Fprintf(w, "  stage %-12s start=%9.3fms dur=%9.3fms\n", sp.Name, sp.StartMS, sp.DurMS)
	}
	if len(sum.Counters) > 0 {
		names := make([]string, 0, len(sum.Counters))
		for name := range sum.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "  counters:")
		for _, name := range names {
			fmt.Fprintf(w, "    %-24s %d\n", name, sum.Counters[name])
		}
	}
	if e := sum.Emissions; e != nil {
		fmt.Fprintf(w, "  emissions: %d communities, first after %.3fms, delay mean=%.3fms max=%.3fms\n",
			e.Count, e.FirstMS, e.MeanDelayMS, e.MaxDelayMS)
		for i, d := range e.DelaysMS {
			fmt.Fprintf(w, "    community %-4d +%.3fms\n", i+1, d)
		}
		if int64(len(e.DelaysMS)) < e.Count {
			fmt.Fprintf(w, "    (… %d more; aggregates above cover all)\n", e.Count-int64(len(e.DelaysMS)))
		}
	}
}
