// Command commsearch answers l-keyword community queries over a
// database graph, printing each community's cost, core, centers and
// size — the paper's end-user experience.
//
// Usage:
//
//	commsearch -graph dblp.graph -keywords database,graph -rmax 6 -top 10
//	commsearch -graph dblp.graph -keywords web,parallel -rmax 6 -all -max 100
//	commsearch -example paper -keywords a,b,c -rmax 8 -all
//
// With -index the searcher first builds the paper's inverted indexes
// and runs the query on a projected subgraph; results are identical and
// much faster on large graphs.
//
// Queries can be governed: -timeout bounds wall-clock time,
// -max-visited bounds shortest-path work, and -max-results caps the
// answer count. A governed query that hits a limit still prints every
// community found so far, followed by the stop reason.
//
// With -json the results stream as NDJSON — one community record per
// line plus a trailer carrying the stop reason — in exactly the schema
// of cmd/commserve's POST /v1/search/all endpoint, so scripts consume
// CLI and service output interchangeably.
//
// With -explain the query runs in EXPLAIN mode: after the results the
// tool prints the query's trace — per-stage spans (projection, engine
// init, enumeration), engine counters (Dijkstra visits, heap traffic,
// Neighbor runs, candidate-list growth) and the delay before each
// community's emission. Combined with -json, the trace summary rides
// in the NDJSON trailer instead.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"commdb"
	"commdb/internal/obs"
	"commdb/internal/server"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph file written by cmd/datagen")
		indexPath  = flag.String("index-file", "", "index file written by cmd/indexbuild (implies projected search)")
		example    = flag.String("example", "", "built-in example graph: paper or intro")
		keywords   = flag.String("keywords", "", "comma-separated query keywords (required)")
		rmax       = flag.Float64("rmax", 6, "community radius Rmax")
		top        = flag.Int("top", 0, "return the top-k communities by cost")
		all        = flag.Bool("all", false, "enumerate all communities")
		max        = flag.Int("max", 1000, "cap on -all output")
		useIndex   = flag.Bool("index", false, "build inverted indexes and search a projected subgraph")
		verbose    = flag.Bool("v", false, "print every community node, not just a summary")
		jsonOut    = flag.Bool("json", false, "emit NDJSON (one community record per line plus a trailer, the serving endpoint's schema)")
		replMode   = flag.Bool("repl", false, "interactive session: issue queries and ask for 'more'")
		explain    = flag.Bool("explain", false, "print the query's trace after the results: per-stage spans, engine counters, inter-emission delays")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget per query, e.g. 50ms (0 = unlimited)")
		maxVisited = flag.Int64("max-visited", 0, "budget on shortest-path work units per query (0 = unlimited)")
		maxResults = flag.Int64("max-results", 0, "budget on returned communities per query (0 = unlimited)")
		parallel   = flag.Int("parallelism", 0, "worker goroutines per query (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()
	lim := commdb.Limits{Timeout: *timeout, MaxRelaxations: *maxVisited, MaxResults: *maxResults}
	if *replMode {
		if err := runRepl(*graphPath, *example, *indexPath, *useIndex, *rmax, *parallel, lim); err != nil {
			fmt.Fprintln(os.Stderr, "commsearch:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*graphPath, *example, *indexPath, *keywords, *rmax, *top, *all, *max, *useIndex, *verbose, *jsonOut, *explain, *parallel, lim); err != nil {
		fmt.Fprintln(os.Stderr, "commsearch:", err)
		os.Exit(1)
	}
}

func runRepl(graphPath, example, indexPath string, useIndex bool, rmax float64, parallel int, lim commdb.Limits) error {
	g, err := loadGraph(graphPath, example)
	if err != nil {
		return err
	}
	s, err := newSearcher(g, indexPath, useIndex, rmax, parallel)
	if err != nil {
		return err
	}
	return repl(g, s, rmax, lim, os.Stdin, os.Stdout)
}

// stopReason renders an iterator stop reason for the terminal.
func stopReason(err error) string {
	var be commdb.ErrBudgetExhausted
	switch {
	case errors.As(err, &be):
		return fmt.Sprintf("budget exhausted on %s (spent %d, limit %d)", be.Resource, be.Spent, be.Limit)
	case errors.Is(err, commdb.ErrDeadlineExceeded):
		return "deadline exceeded"
	case errors.Is(err, commdb.ErrCanceled):
		return "canceled"
	default:
		return err.Error()
	}
}

// newSearcher picks the searcher flavour: load a saved index, build one
// fresh, or scan per query.
func newSearcher(g *commdb.Graph, indexPath string, useIndex bool, rmax float64, parallel int) (*commdb.Searcher, error) {
	opts := []commdb.Option{commdb.WithParallelism(parallel)}
	if indexPath != "" {
		f, err := os.Open(indexPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		opts = append(opts, commdb.WithIndexReader(f))
	} else if useIndex {
		opts = append(opts, commdb.WithIndex(rmax))
	}
	return commdb.Open(g, opts...)
}

func run(graphPath, example, indexPath, keywords string, rmax float64, top int, all bool, max int, useIndex, verbose, jsonOut, explain bool, parallel int, lim commdb.Limits) error {
	g, err := loadGraph(graphPath, example)
	if err != nil {
		return err
	}
	kws := splitKeywords(keywords)
	if len(kws) == 0 {
		return fmt.Errorf("-keywords is required")
	}
	if top <= 0 && !all {
		top = 10
	}

	s, err := newSearcher(g, indexPath, useIndex, rmax, parallel)
	if err != nil {
		return err
	}
	if !jsonOut {
		for _, kw := range kws {
			fmt.Printf("keyword %q: %.4f%% of nodes\n", kw, s.KeywordFrequency(kw)*100)
		}
	}
	q := commdb.Query{Keywords: kws, Rmax: rmax, Limits: lim}
	ctx := context.Background()
	var tr *obs.Trace
	if explain {
		tr = obs.NewTrace("cli")
		ctx = obs.ContextWithTrace(ctx, tr)
	}

	if all {
		it, err := s.AllCtx(ctx, q)
		if err != nil {
			return err
		}
		if jsonOut {
			return emitNDJSON(os.Stdout, g, it, max, !verbose, tr)
		}
		n := 0
		for n < max {
			r, ok := it.Next()
			if !ok {
				break
			}
			n++
			printCommunity(g, n, r, verbose)
		}
		fmt.Printf("%d communities\n", n)
		if err := it.Err(); err != nil {
			fmt.Printf("stopped early: %s — the %d communities above are a partial set\n", stopReason(err), n)
		}
		if tr != nil {
			printExplain(os.Stdout, tr.Summary())
		}
		return nil
	}

	it, err := s.TopKCtx(ctx, q)
	if err != nil {
		return err
	}
	if jsonOut {
		return emitNDJSON(os.Stdout, g, it, top, !verbose, tr)
	}
	shown := 0
	for rank := 1; rank <= top; rank++ {
		r, ok := it.Next()
		if !ok {
			if err := it.Err(); err != nil {
				fmt.Printf("stopped early after %d communities: %s\n", shown, stopReason(err))
			} else {
				fmt.Printf("only %d communities exist\n", shown)
			}
			break
		}
		shown++
		printCommunity(g, rank, r, verbose)
	}
	if tr != nil {
		printExplain(os.Stdout, tr.Summary())
	}
	return nil
}

// emitNDJSON streams up to max communities as NDJSON records followed
// by a trailer — the exact record schema of the server's streaming
// endpoint (internal/server), so CLI output and service responses are
// script-compatible and cross-checkable. With -v the records carry the
// full node and edge lists; without it they are compact. A non-nil tr
// puts the query's trace summary in the trailer (-explain -json).
func emitNDJSON(w io.Writer, g *commdb.Graph, st server.Stream, max int, compact bool, tr *obs.Trace) error {
	enc := json.NewEncoder(w)
	start := time.Now()
	n := 0
	for max <= 0 || n < max {
		r, ok := st.Next()
		if !ok {
			break
		}
		n++
		if err := enc.Encode(server.NewRecord(n, r, g, compact)); err != nil {
			return err
		}
	}
	trailer := server.NewTrailer(n, st.Err(), time.Since(start))
	if tr != nil {
		trailer.Trace = tr.Summary()
	}
	return enc.Encode(trailer)
}

func loadGraph(graphPath, example string) (*commdb.Graph, error) {
	switch {
	case graphPath != "" && example != "":
		return nil, fmt.Errorf("-graph and -example are mutually exclusive")
	case graphPath != "":
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return commdb.ReadGraph(f)
	case example == "paper":
		g, _ := commdb.PaperExampleGraph()
		return g, nil
	case example == "intro":
		g, _ := commdb.IntroExampleGraph()
		return g, nil
	default:
		return nil, fmt.Errorf("provide -graph FILE or -example paper|intro")
	}
}

func splitKeywords(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func printCommunity(g *commdb.Graph, rank int, r *commdb.Community, verbose bool) {
	var cores []string
	for _, v := range r.Core {
		cores = append(cores, g.Label(v))
	}
	var centers []string
	for _, v := range r.Cnodes {
		centers = append(centers, g.Label(v))
	}
	fmt.Printf("#%d cost=%.3f core=[%s] centers=[%s] nodes=%d edges=%d\n",
		rank, r.Cost, strings.Join(cores, "; "), strings.Join(centers, "; "),
		len(r.Nodes), len(r.Edges))
	if verbose {
		for _, v := range r.Nodes {
			role := "path"
			switch {
			case contains(r.Knodes, v) && contains(r.Cnodes, v):
				role = "keyword+center"
			case contains(r.Knodes, v):
				role = "keyword"
			case contains(r.Cnodes, v):
				role = "center"
			}
			fmt.Printf("    %-14s %s\n", role, g.Label(v))
		}
	}
}

func contains(vs []commdb.NodeID, v commdb.NodeID) bool {
	for _, have := range vs {
		if have == v {
			return true
		}
	}
	return false
}
