package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"commdb"
)

func runReplScript(t *testing.T, script string) string {
	t.Helper()
	g, _ := commdb.PaperExampleGraph()
	s := commdb.NewSearcher(g)
	var out strings.Builder
	if err := repl(g, s, 8, commdb.Limits{}, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestReplStopReason: a query stopped by its budget reports why instead
// of silently ending output like an exhausted one.
func TestReplStopReason(t *testing.T) {
	out := runReplScript(t, "timeout 1ns\nq a b c\nquit\n")
	if !strings.Contains(out, "timeout = 1ns") {
		t.Fatalf("timeout echo missing:\n%s", out)
	}
	if !strings.Contains(out, "stopped early: deadline exceeded") {
		t.Fatalf("stop reason missing:\n%s", out)
	}
	if strings.Contains(out, "(query exhausted)") {
		t.Fatalf("a stopped query must not report exhaustion:\n%s", out)
	}
	// Bad duration is rejected.
	out = runReplScript(t, "timeout wat\nquit\n")
	if !strings.Contains(out, "bad duration") {
		t.Fatalf("bad duration not rejected:\n%s", out)
	}
}

func TestReplQueryAndMore(t *testing.T) {
	out := runReplScript(t, "q a b c\nmore 2\nquit\n")
	if !strings.Contains(out, "#1 cost=7.000") {
		t.Fatalf("missing rank 1:\n%s", out)
	}
	// 5 shown initially, more 2 exhausts at 5 total.
	if !strings.Contains(out, "#5 cost=15.000") {
		t.Fatalf("missing rank 5:\n%s", out)
	}
	if !strings.Contains(out, "(query exhausted)") {
		t.Fatalf("missing exhaustion notice:\n%s", out)
	}
}

func TestReplCostAndRmax(t *testing.T) {
	out := runReplScript(t, "cost max\nq a b c\nquit\n")
	if !strings.Contains(out, "#1 cost=4.000") {
		t.Fatalf("max-cost rank 1 missing:\n%s", out)
	}
	out = runReplScript(t, "rmax 4\nq a b c\nquit\n")
	if !strings.Contains(out, "rmax = 4") {
		t.Fatalf("rmax echo missing:\n%s", out)
	}
}

func TestReplTreesAndKwf(t *testing.T) {
	out := runReplScript(t, "trees a b\nkwf c\nquit\n")
	if !strings.Contains(out, "tree 1") {
		t.Fatalf("trees output missing:\n%s", out)
	}
	if !strings.Contains(out, "30.7692%") {
		t.Fatalf("kwf output missing:\n%s", out)
	}
}

func TestReplErrorsAndHelp(t *testing.T) {
	out := runReplScript(t, "help\nmore\nq\nrmax x\ncost wat\nbogus\nquit\n")
	for _, want := range []string{
		"lists commands", "no active query", "usage: q", "bad radius",
		"usage: cost", "unknown command",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestReplMem: the mem command prints the searcher's exact footprint
// breakdown — the same accounting the server serves at /debug/memz.
func TestReplMem(t *testing.T) {
	out := runReplScript(t, "mem\nquit\n")
	for _, want := range []string{"searcher", "graph", "dict", "KiB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mem output missing %q:\n%s", want, out)
		}
	}
}

func TestSplitKeywords(t *testing.T) {
	got := splitKeywords(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("splitKeywords = %v", got)
	}
	if splitKeywords("") != nil {
		t.Fatal("empty input should yield nil")
	}
}

func TestLoadGraphModes(t *testing.T) {
	if _, err := loadGraph("", ""); err == nil {
		t.Fatal("no source should error")
	}
	if _, err := loadGraph("x", "paper"); err == nil {
		t.Fatal("both sources should error")
	}
	g, err := loadGraph("", "paper")
	if err != nil || g.NumNodes() != 13 {
		t.Fatalf("paper example: %v", err)
	}
	g, err = loadGraph("", "intro")
	if err != nil || g.NumNodes() != 5 {
		t.Fatalf("intro example: %v", err)
	}
	if _, err := loadGraph("/nonexistent/file", ""); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestReplSlowlog: 'slowlog' renders the session's capture ring — the
// healthy query, the budget-stopped one (always retained), and the
// per-class aggregate rows.
func TestReplSlowlog(t *testing.T) {
	out := runReplScript(t, "q a b c\ntimeout 1ns\nq a b\nslowlog\nquit\n")
	if !strings.Contains(out, "slow-query log: 2 observed, 2 retained") {
		t.Fatalf("slowlog header missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "repl-1") || !strings.Contains(out, "repl-2") {
		t.Fatalf("slowlog missing query records:\n%s", out)
	}
	if !strings.Contains(out, "kept=[slow]") {
		t.Fatalf("healthy query not in the slow pool:\n%s", out)
	}
	if !strings.Contains(out, "errored") || !strings.Contains(out, "stopped: deadline exceeded") {
		t.Fatalf("stopped query not retained as errored:\n%s", out)
	}
	if !strings.Contains(out, "class kw3/") || !strings.Contains(out, "class kw2/") {
		t.Fatalf("per-class rows missing:\n%s", out)
	}
	// Help advertises the command.
	if help := runReplScript(t, "help\nquit\n"); !strings.Contains(help, "slowlog") {
		t.Fatalf("help does not mention slowlog:\n%s", help)
	}
}

// TestReplHot: 'hot' renders the session's per-keyword engine-init
// attribution — each queried term with its charged Dijkstra spend plus
// the per-class init split.
func TestReplHot(t *testing.T) {
	out := runReplScript(t, "q a b c\nq a\nhot\nquit\n")
	if !strings.Contains(out, "workload: 2 queries observed, 3 keywords tracked") {
		t.Fatalf("hot header missing or wrong:\n%s", out)
	}
	for _, term := range []string{"a", "b", "c"} {
		if !strings.Contains(out, term+" ") || !strings.Contains(out, "init: runs=") {
			t.Fatalf("hot row for %q missing:\n%s", term, out)
		}
	}
	if !strings.Contains(out, "class kw3/") || !strings.Contains(out, "class kw1/") {
		t.Fatalf("per-class init rows missing:\n%s", out)
	}
	// Help advertises the command; before any query it is a clean no-op.
	if help := runReplScript(t, "help\nquit\n"); !strings.Contains(help, "hot") {
		t.Fatalf("help does not mention hot:\n%s", help)
	}
	if empty := runReplScript(t, "hot\nquit\n"); !strings.Contains(empty, "no keyword init spend yet") {
		t.Fatalf("empty hot output wrong:\n%s", empty)
	}
}

// TestReplSlowlogEmpty: slowlog before any query is a clean no-op.
func TestReplSlowlogEmpty(t *testing.T) {
	out := runReplScript(t, "slowlog\nquit\n")
	if !strings.Contains(out, "slow-query log: 0 observed, 0 retained, 0 SLO breaches") {
		t.Fatalf("empty slowlog header wrong:\n%s", out)
	}
}

// TestReplReload: `reload` swaps a serialized index in through the
// epoch path — a truncated artifact is rejected with the session
// unchanged, a good one starts a new epoch, and queries still answer
// correctly afterwards.
func TestReplReload(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	s, err := commdb.Open(g, commdb.WithIndex(8))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "paper.index")
	if err := os.WriteFile(good, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.index")
	if err := os.WriteFile(bad, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}

	out := runReplScript(t, "reload "+bad+"\nreload "+good+"\nq a b c\nquit\n")
	if !strings.Contains(out, "reload rejected") || !strings.Contains(out, "current index keeps serving") {
		t.Fatalf("truncated artifact not rejected:\n%s", out)
	}
	// The bad attempt must not have consumed an epoch: the good reload
	// lands on epoch 2.
	if !strings.Contains(out, "reload ok: epoch 2 serving (indexed=true, radius=8)") {
		t.Fatalf("good reload missing:\n%s", out)
	}
	if !strings.Contains(out, "#1 cost=7.000") {
		t.Fatalf("query after reload wrong:\n%s", out)
	}
	if help := runReplScript(t, "help\nquit\n"); !strings.Contains(help, "reload <file>") {
		t.Fatalf("help does not mention reload:\n%s", help)
	}
	if usage := runReplScript(t, "reload\nquit\n"); !strings.Contains(usage, "usage: reload <index-file>") {
		t.Fatalf("usage line missing:\n%s", usage)
	}
}
