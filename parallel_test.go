package commdb

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// renderAll drains an iterator into a canonical textual rendering of
// every community (all fields: core, cost, knodes, cnodes, pnodes,
// nodes) plus the iterator's terminal error, so two runs can be
// compared for byte-identical output.
func renderAll(t *testing.T, it *Results) string {
	t.Helper()
	var b strings.Builder
	for {
		c, ok := it.Next()
		if !ok {
			break
		}
		fmt.Fprintf(&b, "%+v\n", *c)
	}
	fmt.Fprintf(&b, "err=%v\n", it.Err())
	if err := it.Close(); err != nil && it.Err() == nil {
		t.Fatalf("Close after exhaustion: %v", err)
	}
	return b.String()
}

// TestParallelDeterminism is the contract the pipeline must keep: a
// searcher opened with WithParallelism(4) emits the byte-identical
// community sequence — same order, same costs, same node sets — and
// the same stop reason as the strictly sequential WithParallelism(1)
// path, for both COMM-all and COMM-k, unlimited and budget-limited.
// CI runs this under -race, which also makes it the data-race gate for
// the precompute fan-out and the materialization pipeline.
func TestParallelDeterminism(t *testing.T) {
	g, _ := PaperExampleGraph()
	seq, err := Open(g, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Open(g, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := par.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d, want 4", got)
	}

	queries := []Query{
		{Keywords: []string{"a", "b", "c"}, Rmax: 8},
		{Keywords: []string{"a", "b"}, Rmax: 8},
		{Keywords: []string{"b", "c"}, Rmax: 6},
	}
	algos := []Algorithm{AlgoAll, AlgoTopK}
	// MaxResults is the deterministic budget: it trips at the same
	// emission count regardless of worker interleaving, so the limited
	// runs must agree on the stop reason too.
	limits := []Limits{{}, {MaxResults: 2}}

	for _, q := range queries {
		for _, algo := range algos {
			for _, lim := range limits {
				q := q
				q.Limits = lim
				name := fmt.Sprintf("%s/%v/max=%d", algo, q.Keywords, lim.MaxResults)
				run := func(s *Searcher) string {
					it, err := s.SearchCtx(context.Background(), algo, q)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					return renderAll(t, it)
				}
				want := run(seq)
				for rep := 0; rep < 3; rep++ {
					if got := run(par); got != want {
						t.Fatalf("%s rep %d: parallel output diverged from sequential\n--- sequential ---\n%s--- parallel ---\n%s",
							name, rep, want, got)
					}
				}
			}
		}
	}
}

// TestParallelDeterminismIndexed repeats the determinism check through
// the index-projection path, where cores are mapped back to original
// node IDs after materialization.
func TestParallelDeterminismIndexed(t *testing.T) {
	g, _ := PaperExampleGraph()
	seq, err := Open(g, WithIndex(8), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Open(g, WithIndex(8), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}
	run := func(s *Searcher, algo Algorithm) string {
		it, err := s.SearchCtx(context.Background(), algo, q)
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, it)
	}
	for _, algo := range []Algorithm{AlgoAll, AlgoTopK} {
		want := run(seq, algo)
		if got := run(par, algo); got != want {
			t.Fatalf("%s: indexed parallel output diverged\n--- sequential ---\n%s--- parallel ---\n%s", algo, want, got)
		}
	}
}

// TestParallelEarlyClose abandons parallel streams mid-enumeration and
// at every other point in their lifecycle: Close must stop the
// pipeline's producer and workers (the race detector and goroutine
// accounting in -race CI catch leaks), be idempotent, and keep
// returning the same terminal error.
func TestParallelEarlyClose(t *testing.T) {
	g, _ := PaperExampleGraph()
	s, err := Open(g, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"a", "b", "c"}, Rmax: 8}

	// Close before the first Next: the pipeline never started.
	it, err := s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close before Next: %v", err)
	}

	// Close mid-stream, then again: both nil, Next stays done.
	it, err = s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("no first community")
	}
	for i := 0; i < 2; i++ {
		if err := it.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("Next returned a community after Close")
	}

	// Close after a budget stop reports the budget error.
	q2 := q
	q2.Limits = Limits{MaxResults: 1}
	it, err = s.All(q2)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if it.Err() == nil {
		t.Fatal("budget-limited run reported no stop reason")
	}
	if err := it.Close(); err == nil {
		t.Fatal("Close after budget stop returned nil, want the stop reason")
	}
}

// TestOpenOptionValidation pins the option surface: WithIndex and
// WithIndexReader are mutually exclusive, and nil graphs are rejected.
func TestOpenOptionValidation(t *testing.T) {
	g, _ := PaperExampleGraph()
	if _, err := Open(g, WithIndex(8), WithIndexReader(strings.NewReader("x"))); err == nil {
		t.Fatal("WithIndex+WithIndexReader: want error, got nil")
	}
	if _, err := Open(nil); err == nil {
		t.Fatal("Open(nil): want error, got nil")
	}
	// Zero and negative parallelism normalize to GOMAXPROCS (>= 1).
	for _, n := range []int{0, -3} {
		s, err := Open(g, WithParallelism(n))
		if err != nil {
			t.Fatal(err)
		}
		if s.Parallelism() < 1 {
			t.Fatalf("WithParallelism(%d): Parallelism() = %d, want >= 1", n, s.Parallelism())
		}
	}
}

// TestOpenCollectorObserved checks WithCollector wiring: each finished
// query — exhausted or abandoned — is observed exactly once.
func TestOpenCollectorObserved(t *testing.T) {
	g, _ := PaperExampleGraph()
	col := NewCollector(CollectorConfig{})
	s, err := Open(g, WithParallelism(2), WithCollector(col))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"a", "b"}, Rmax: 8}

	it, err := s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Collect(0); err != nil {
		t.Fatal(err)
	}
	if observed, _ := col.CaptureStats(); observed != 1 {
		t.Fatalf("after exhaustion: observed = %d, want 1", observed)
	}

	// Abandoned mid-stream: Close triggers the single observation;
	// a redundant Close must not double-count.
	it, err = s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	it.Next()
	it.Close()
	it.Close()
	if observed, _ := col.CaptureStats(); observed != 2 {
		t.Fatalf("after abandon: observed = %d, want 2", observed)
	}
}

// TestDeprecatedConstructorsStillWork pins the compatibility wrappers:
// the pre-Open constructors must keep returning working searchers.
func TestDeprecatedConstructorsStillWork(t *testing.T) {
	g, _ := PaperExampleGraph()
	q := Query{Keywords: []string{"a", "b"}, Rmax: 8}

	s1 := NewSearcher(g)
	s2, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*Searcher{"NewSearcher": s1, "NewIndexedSearcher": s2} {
		it, err := s.All(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := it.Collect(0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) == 0 {
			t.Fatalf("%s: no communities", name)
		}
	}
}
