// Quickstart: run the paper's own running example end to end.
//
// It builds the 13-node graph of Fig. 4, issues the 3-keyword query
// {a, b, c} with Rmax = 8, and prints the five communities of Table I
// in ranking order, then shows the introduction's co-authorship example
// (Fig. 1-3).
package main

import (
	"fmt"
	"strings"

	"commdb"
)

func main() {
	g, _ := commdb.PaperExampleGraph()
	s, err := commdb.Open(g)
	if err != nil {
		panic(err)
	}

	fmt.Println("Table I — top communities for {a, b, c} with Rmax = 8:")
	it, err := s.TopK(commdb.Query{Keywords: []string{"a", "b", "c"}, Rmax: 8})
	if err != nil {
		panic(err)
	}
	rank := 1
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("  rank %d: cost %-4.0f core %-18s centers %s\n",
			rank, r.Cost, labels(g, r.Core), labels(g, r.Cnodes))
		rank++
	}

	fmt.Println()
	fmt.Println("Introduction example — {kate, smith} with Rmax = 6:")
	ig, _ := commdb.IntroExampleGraph()
	is, err := commdb.Open(ig)
	if err != nil {
		panic(err)
	}
	all, err := is.All(commdb.Query{Keywords: []string{"kate", "smith"}, Rmax: 6})
	if err != nil {
		panic(err)
	}
	for {
		r, ok := all.Next()
		if !ok {
			break
		}
		fmt.Printf("  cost %.0f: keyword nodes %s, centers %s, %d nodes\n",
			r.Cost, labels(ig, r.Knodes), labels(ig, r.Cnodes), len(r.Nodes))
	}
	// The motivation quantified: the same query answered with the
	// pre-community semantics (ranked connected trees, Fig. 2) returns
	// more, smaller fragments.
	tit, err := is.Trees(commdb.Query{Keywords: []string{"kate", "smith"}, Rmax: 6})
	if err != nil {
		panic(err)
	}
	ts := tit.Collect(100)
	fmt.Printf("\nThe same query as connected trees (the pre-community semantics):\n")
	for i, tr := range ts {
		fmt.Printf("  tree %d: cost %.0f, rooted at %s, %d nodes\n",
			i+1, tr.Cost, ig.Label(tr.Root), len(tr.Nodes))
	}
	fmt.Printf("\n%d fragmented trees vs 2 communities — a community shows the\n", len(ts))
	fmt.Println("whole multi-center picture that the trees only show in pieces.")
}

func labels(g *commdb.Graph, vs []commdb.NodeID) string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = g.Label(v)
	}
	return "[" + strings.Join(out, " ") + "]"
}
