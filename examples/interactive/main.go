// Interactive top-k example: the paper's Exp-3 scenario as an API walk.
//
// A user asks for the top 20 communities, looks at them, and decides to
// see 20 more — then 20 more again. With the polynomial-delay COMM-k
// enumerator this is free: the same iterator keeps producing the next
// best community with no recomputation. The example also shows what the
// pruning-based alternative costs: a fresh top-(k+20) run from scratch
// at every enlargement.
package main

import (
	"fmt"
	"time"

	"commdb"
)

func main() {
	db, err := commdb.GenerateDBLP(3000, 99)
	if err != nil {
		panic(err)
	}
	g, _, err := commdb.GraphFromDatabase(db)
	if err != nil {
		panic(err)
	}
	const rmax = 8
	s, err := commdb.Open(g, commdb.WithIndex(rmax))
	if err != nil {
		panic(err)
	}
	q := commdb.Query{Keywords: []string{"web", "parallel"}, Rmax: rmax}

	// Interactive session: one iterator, three rounds of "20 more".
	fmt.Println("interactive session (single PDk iterator):")
	it, err := s.TopK(q)
	if err != nil {
		panic(err)
	}
	seen := 0
	for round := 1; round <= 3; round++ {
		start := time.Now()
		batch, err := it.Collect(20)
		if err != nil {
			panic(err)
		}
		seen += len(batch)
		last := 0.0
		if len(batch) > 0 {
			last = batch[len(batch)-1].Cost
		}
		fmt.Printf("  round %d: +%d communities in %8v (total %d, worst cost so far %.2f)\n",
			round, len(batch), time.Since(start).Round(time.Microsecond), seen, last)
		if len(batch) < 20 {
			fmt.Println("  (query exhausted)")
			break
		}
	}

	// The recompute-from-scratch alternative a pruning top-k forces.
	fmt.Println("\nrecompute-from-scratch alternative (what BUk/TDk must do):")
	for _, k := range []int{20, 40, 60} {
		start := time.Now()
		it2, err := s.TopK(q)
		if err != nil {
			panic(err)
		}
		got, _ := it2.Collect(k)
		fmt.Printf("  fresh top-%d: %d communities in %8v\n",
			k, len(got), time.Since(start).Round(time.Microsecond))
	}
	fmt.Println("\nthe interactive iterator pays each round only for the new results;")
	fmt.Println("recomputation pays for everything already seen, every time.")
}
