// DBLP example: community search over a bibliographic database.
//
// It generates a synthetic DBLP-shaped database (Author, Paper, Write,
// Cite), materializes it as a database graph with log2(1+indeg) edge
// weights, builds the inverted indexes, and asks: "how are the papers
// about 'database' and 'graph' and the papers about 'routing' connected
// through co-authorship and citation?" Each community is resolved back
// to its tuples through the node map.
package main

import (
	"fmt"
	"time"

	"commdb"
)

func main() {
	const authors = 2000
	fmt.Printf("generating synthetic DBLP (%d authors)...\n", authors)
	db, err := commdb.GenerateDBLP(authors, 42)
	if err != nil {
		panic(err)
	}
	g, nodeMap, err := commdb.GraphFromDatabase(db)
	if err != nil {
		panic(err)
	}
	fmt.Printf("database: %d tuples -> graph: %s\n\n", db.NumTuples(), commdb.GraphStatsOf(g))

	const rmax = 8
	fmt.Println("building inverted indexes (invertedN + invertedE)...")
	start := time.Now()
	s, err := commdb.Open(g, commdb.WithIndex(rmax))
	if err != nil {
		panic(err)
	}
	fmt.Printf("indexed in %v\n\n", time.Since(start).Round(time.Millisecond))

	q := commdb.Query{Keywords: []string{"database", "graph"}, Rmax: rmax}
	fmt.Printf("query %v, Rmax=%v (projected through the index):\n", q.Keywords, q.Rmax)
	it, err := s.TopK(q)
	if err != nil {
		panic(err)
	}
	for rank := 1; rank <= 5; rank++ {
		r, ok := it.Next()
		if !ok {
			fmt.Printf("only %d communities exist\n", rank-1)
			break
		}
		fmt.Printf("rank %d (cost %.2f): %d nodes, %d centers\n", rank, r.Cost, len(r.Nodes), len(r.Cnodes))
		for _, v := range r.Knodes {
			ref := nodeMap.Ref(v)
			fmt.Printf("    keyword tuple  %s.%s  %q\n", ref.Table, ref.PK, tupleText(db, ref))
		}
		for i, v := range r.Cnodes {
			if i == 3 {
				fmt.Printf("    ... and %d more centers\n", len(r.Cnodes)-3)
				break
			}
			ref := nodeMap.Ref(v)
			fmt.Printf("    center tuple   %s.%s  %q\n", ref.Table, ref.PK, tupleText(db, ref))
		}
	}
}

// tupleText renders a tuple's human-readable attribute.
func tupleText(db *commdb.Database, ref commdb.NodeRef) string {
	t, ok := db.Table(ref.Table)
	if !ok {
		return ""
	}
	row, ok := t.Lookup(ref.PK)
	if !ok {
		return ""
	}
	// Show the first string column (Name or Title), else the key.
	for i, c := range t.Schema().Columns {
		if c.FullText {
			text := row[i].Str()
			if len(text) > 48 {
				text = text[:48] + "..."
			}
			return text
		}
	}
	return ref.PK
}
