// IMDB example: community search over a dense rating graph.
//
// MovieLens-shaped data is much denser than DBLP (every user rates
// dozens of movies), so communities routinely have many centers — the
// situation where the paper's multi-center semantics shine and where
// the polynomial-delay enumerator beats the expanding baselines by an
// order of magnitude. This example finds the communities connecting
// movies about "star" and "night" and reports their center counts.
package main

import (
	"fmt"

	"commdb"
)

func main() {
	fmt.Println("generating synthetic IMDB (400 users, ~30 ratings each)...")
	db, err := commdb.GenerateIMDB(400, 30, 7)
	if err != nil {
		panic(err)
	}
	g, nodeMap, err := commdb.GraphFromDatabase(db)
	if err != nil {
		panic(err)
	}
	fmt.Printf("database: %d tuples -> graph: %s\n\n", db.NumTuples(), commdb.GraphStatsOf(g))

	const rmax = 12
	s, err := commdb.Open(g, commdb.WithIndex(rmax))
	if err != nil {
		panic(err)
	}

	q := commdb.Query{Keywords: []string{"star", "night"}, Rmax: rmax}
	fmt.Printf("query %v, Rmax=%v:\n", q.Keywords, q.Rmax)
	fmt.Printf("  keyword frequencies: star %.3f%%, night %.3f%%\n\n",
		s.KeywordFrequency("star")*100, s.KeywordFrequency("night")*100)

	it, err := s.TopK(q)
	if err != nil {
		panic(err)
	}
	multi := 0
	total := 0
	for rank := 1; rank <= 10; rank++ {
		r, ok := it.Next()
		if !ok {
			break
		}
		total++
		if len(r.Cnodes) > 1 {
			multi++
		}
		fmt.Printf("rank %2d: cost %6.2f, %2d centers, %3d nodes — movies: %s | %s\n",
			rank, r.Cost, len(r.Cnodes), len(r.Nodes),
			movieTitle(db, nodeMap, r.Core[0]), movieTitle(db, nodeMap, r.Core[1]))
	}
	fmt.Printf("\n%d of the top %d communities are multi-center graphs —\n", multi, total)
	fmt.Println("information a single connected tree cannot convey.")
}

func movieTitle(db *commdb.Database, m *commdb.NodeMap, v commdb.NodeID) string {
	ref := m.Ref(v)
	t, ok := db.Table(ref.Table)
	if !ok {
		return ref.PK
	}
	row, ok := t.Lookup(ref.PK)
	if !ok {
		return ref.PK
	}
	ti := t.ColumnIndex("Title")
	if ti < 0 {
		ti = t.ColumnIndex("Occupation")
	}
	if ti < 0 {
		return ref.PK
	}
	text := row[ti].Str()
	if len(text) > 40 {
		text = text[:40] + "..."
	}
	return text
}
