// CSV import example: bring your own relational data.
//
// It builds a small project-staffing database from CSV text (the same
// path real dumps take), materializes the database graph, and compares
// the default sum-cost ranking with the max-distance aggregate — the
// paper's note that its algorithms do not depend on a specific cost
// function, as an API knob.
package main

import (
	"fmt"
	"strings"

	"commdb"
)

const peopleCSV = `id,name
1,ada security
2,alan crypto
3,grace systems
4,linus kernels
5,barbara databases
`

const projectsCSV = `id,title
10,project hydra security kernels
11,project nile databases crypto
`

const staffedCSV = `person,project
1,10
2,10
4,10
2,11
3,11
5,11
`

func main() {
	db := commdb.NewDatabase()
	people, err := db.CreateTable(commdb.Schema{
		Name: "People",
		Columns: []commdb.Column{
			{Name: "Id", Type: commdb.Int},
			{Name: "Name", Type: commdb.String, FullText: true},
		},
		PrimaryKey: []string{"Id"},
	})
	check(err)
	projects, err := db.CreateTable(commdb.Schema{
		Name: "Projects",
		Columns: []commdb.Column{
			{Name: "Id", Type: commdb.Int},
			{Name: "Title", Type: commdb.String, FullText: true},
		},
		PrimaryKey: []string{"Id"},
	})
	check(err)
	staffed, err := db.CreateTable(commdb.Schema{
		Name: "Staffed",
		Columns: []commdb.Column{
			{Name: "Person", Type: commdb.Int},
			{Name: "Project", Type: commdb.Int},
		},
		PrimaryKey: []string{"Person", "Project"},
	})
	check(err)
	check(db.AddForeignKey(commdb.ForeignKey{FromTable: "Staffed", FromColumn: "Person", ToTable: "People"}))
	check(db.AddForeignKey(commdb.ForeignKey{FromTable: "Staffed", FromColumn: "Project", ToTable: "Projects"}))

	for _, load := range []struct {
		table *commdb.Table
		data  string
	}{
		{people, peopleCSV}, {projects, projectsCSV}, {staffed, staffedCSV},
	} {
		n, err := commdb.LoadCSV(load.table, strings.NewReader(load.data), commdb.CSVOptions{Header: true})
		check(err)
		fmt.Printf("loaded %d rows into %s\n", n, load.table.Schema().Name)
	}

	g, nodeMap, err := commdb.GraphFromDatabase(db)
	check(err)
	fmt.Printf("graph: %s\n\n", commdb.GraphStatsOf(g))

	s, err := commdb.Open(g)
	check(err)
	for _, cost := range []struct {
		name string
		fn   commdb.CostFunction
	}{
		{"sum of distances (paper default)", commdb.CostSumDistances},
		{"max distance (alternative aggregate)", commdb.CostMaxDistance},
	} {
		fmt.Printf("query {security, databases}, Rmax 12, cost = %s:\n", cost.name)
		it, err := s.TopK(commdb.Query{Keywords: []string{"security", "databases"}, Rmax: 12, Cost: cost.fn})
		check(err)
		for rank := 1; ; rank++ {
			r, ok := it.Next()
			if !ok {
				break
			}
			var names []string
			for _, v := range r.Core {
				ref := nodeMap.Ref(v)
				names = append(names, fmt.Sprintf("%s.%s", ref.Table, ref.PK))
			}
			fmt.Printf("  rank %d cost %.2f: core [%s], %d centers, %d nodes\n",
				rank, r.Cost, strings.Join(names, " "), len(r.Cnodes), len(r.Nodes))
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
