package commdb

import (
	"fmt"
	"testing"
)

// Golden values for the fixed-seed pipeline below. Update them only
// for deliberate generator changes.
const (
	goldenGraphShape = "6958/17224"
	goldenResults    = 1
)

// TestGoldenPipeline pins the whole pipeline end to end with fixed
// seeds: generator → relational integrity → graph materialization →
// index build → projection → ranked enumeration. Any behavioural
// regression in any layer changes the golden values.
func TestGoldenPipeline(t *testing.T) {
	db, err := GenerateDBLP(1000, 2026)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	g, _, err := GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}

	// The generator is seeded, so the graph is pinned exactly.
	if got := fmt.Sprintf("%d/%d", g.NumNodes(), g.NumEdges()); got != goldenGraphShape {
		t.Fatalf("graph shape = %s (generator behaviour changed; update goldens deliberately)", got)
	}

	s, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Keywords: []string{"database", "graph"}, Rmax: 8}
	it, err := s.All(q)
	if err != nil {
		t.Fatal(err)
	}
	all := it.CollectAll(0)

	// Cross-check against the un-indexed path rather than a stored
	// count, so the golden doubles as an equivalence assertion.
	it2, err := NewSearcher(g).All(q)
	if err != nil {
		t.Fatal(err)
	}
	direct := it2.CollectAll(0)
	if len(all) != len(direct) {
		t.Fatalf("indexed %d vs direct %d", len(all), len(direct))
	}
	if len(all) != goldenResults {
		t.Fatalf("result count = %d, want golden %d", len(all), goldenResults)
	}
	if len(all) == 0 {
		t.Fatal("golden query must have results to pin ranking")
	}

	// Ranking order pinned: first TopK result is the global minimum of
	// the COMM-all costs.
	it3, err := s.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := it3.Next()
	if !ok {
		t.Fatal("no results")
	}
	min := best.Cost
	for _, r := range all {
		if r.Cost < min-1e-9 {
			t.Fatalf("TopK first = %v but COMM-all holds %v", min, r.Cost)
		}
	}
}
