package commdb

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"commdb/internal/core"
	"commdb/internal/fulltext"
	"commdb/internal/govern"
	"commdb/internal/graph"
	"commdb/internal/index"
	"commdb/internal/obs"
)

// CostFunction selects how a community's cost aggregates its
// center→knode distances; see the constants.
type CostFunction = core.CostFunction

// Cost function choices. The paper's ranking uses the summed distances;
// the max-distance variant demonstrates the paper's claim that the
// algorithms do not depend on a specific cost function.
const (
	CostSumDistances = core.CostSumDistances
	CostMaxDistance  = core.CostMaxDistance
)

// Limits caps one query's resource consumption: a wall-clock cutoff
// plus budgets on shortest-path work, Dijkstra invocations, top-k
// candidate-list growth, and result count. The zero value (and a zero
// in any field) means unlimited. See the govern package for what each
// resource bounds.
type Limits = govern.Limits

// Resource names the budgeted quantity in an ErrBudgetExhausted.
type Resource = govern.Resource

// Budgeted resources, reported in ErrBudgetExhausted.Resource.
const (
	ResourceRelaxations  = govern.ResourceRelaxations
	ResourceNeighborRuns = govern.ResourceNeighborRuns
	ResourceCanTuples    = govern.ResourceCanTuples
	ResourceHeapBytes    = govern.ResourceHeapBytes
	ResourceResults      = govern.ResourceResults
)

// ErrBudgetExhausted is the iterator stop reason when a resource limit
// tripped; match it with errors.As and inspect Resource/Spent/Limit.
type ErrBudgetExhausted = govern.ErrBudgetExhausted

// ErrDeadlineExceeded is the iterator stop reason when a query ran out
// of wall-clock time. It is context.DeadlineExceeded, so both
// errors.Is(err, commdb.ErrDeadlineExceeded) and comparisons against
// context.DeadlineExceeded work.
var ErrDeadlineExceeded = context.DeadlineExceeded

// ErrCanceled is the iterator stop reason when the query's context was
// canceled. It is context.Canceled.
var ErrCanceled = context.Canceled

// Query is one l-keyword community query.
type Query struct {
	// Keywords are the l query keywords; each must be a single term.
	Keywords []string
	// Rmax is the radius: every center must reach every core node
	// within this total edge weight.
	Rmax float64
	// Cost selects the ranking aggregate (default: summed distances).
	Cost CostFunction
	// Limits bounds the query's resources; the zero value is
	// unlimited. When a limit trips mid-enumeration the iterator stops
	// early — the results already returned are valid, and Err reports
	// the reason.
	Limits Limits
}

// Normalized returns the canonical form of the query: every keyword
// reduced to its lowercase tokenized term and the keyword list sorted.
// The engine tokenizes keywords the same way before resolving them, and
// reordering keywords only permutes the per-keyword core positions, so
// a normalized query answers with the same community set as the
// original (cores ordered by the sorted keyword list). Limits, Rmax and
// Cost are preserved unchanged.
//
// A keyword that does not tokenize to exactly one term (which the
// engine rejects) is kept verbatim apart from trimming and lowercasing,
// so normalizing never masks an invalid query.
func (q Query) Normalized() Query {
	kws := make([]string, len(q.Keywords))
	for i, kw := range q.Keywords {
		if terms := fulltext.Tokenize(kw); len(terms) == 1 {
			kws[i] = terms[0]
		} else {
			kws[i] = strings.ToLower(strings.TrimSpace(kw))
		}
	}
	sort.Strings(kws)
	q.Keywords = kws
	return q
}

// Fingerprint returns a canonical identity string for the query's
// answer set: two queries with equal fingerprints enumerate the same
// communities (with cores ordered by the normalized keyword list), so
// the fingerprint is a safe result-cache key. Keyword order and case do
// not affect it. Limits are deliberately excluded — they bound a
// query's resources, not its answer.
//
// The encoding is injective: keywords are length-prefixed so no two
// distinct keyword lists collide.
func (q Query) Fingerprint() string {
	n := q.Normalized()
	var b strings.Builder
	b.WriteString("q1|rmax=")
	b.WriteString(strconv.FormatFloat(n.Rmax, 'g', -1, 64))
	b.WriteString("|cost=")
	b.WriteString(strconv.Itoa(int(n.Cost)))
	for _, kw := range n.Keywords {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(kw)))
		b.WriteByte(':')
		b.WriteString(kw)
	}
	return b.String()
}

// Searcher answers community queries over one graph. A plain Searcher
// scans the graph per query; an indexed Searcher (NewIndexedSearcher)
// first projects a small query-specific subgraph using the paper's
// inverted indexes, which is dramatically faster on large graphs, with
// identical results.
//
// A Searcher is safe for concurrent use; each query gets its own
// engine.
type Searcher struct {
	g  *Graph
	ft *fulltext.Index
	ix *index.Index
}

// NewSearcher returns an un-indexed searcher over g.
func NewSearcher(g *Graph) *Searcher {
	return &Searcher{g: g, ft: fulltext.Build(g)}
}

// NewIndexedSearcher builds the paper's invertedN/invertedE indexes for
// radii up to maxRmax and returns a searcher whose queries run on
// projected subgraphs. Building takes one bounded shortest-path pass
// per distinct term; it is a one-time cost amortized over all queries.
func NewIndexedSearcher(g *Graph, maxRmax float64) (*Searcher, error) {
	ix, err := index.Build(g, index.BuildOptions{R: maxRmax})
	if err != nil {
		return nil, err
	}
	return &Searcher{g: g, ft: ix.Fulltext(), ix: ix}, nil
}

// Indexed reports whether the searcher projects queries through the
// inverted indexes.
func (s *Searcher) Indexed() bool { return s.ix != nil }

// Graph returns the searched graph.
func (s *Searcher) Graph() *Graph { return s.g }

// KeywordFrequency reports the KWF of a term: the fraction of graph
// nodes containing it.
func (s *Searcher) KeywordFrequency(term string) float64 { return s.ft.KWF(term) }

// session holds one query's execution state: the (possibly projected)
// engine plus the mapping back to the searcher's graph.
type session struct {
	s      *Searcher
	eng    *core.Engine
	sub    *graph.Subgraph // nil when running directly on s.g
	inNode map[NodeID]bool // scratch for edge re-induction

	// tr is the query's trace (nil when the context carries none); the
	// enumerate span runs from the first Next to exhaustion, closed at
	// most once by finishEnum.
	tr        *obs.Trace
	enumStart time.Time
	enumDone  bool
}

// noteNext marks the start of enumeration on the first advance.
func (sess *session) noteNext() {
	if sess.tr != nil && sess.enumStart.IsZero() {
		sess.enumStart = time.Now()
	}
}

// finishEnum closes the enumerate span, once. It runs when the
// iterator reports exhaustion, and again (as a no-op) from the trace's
// finisher for queries abandoned mid-enumeration.
func (sess *session) finishEnum() {
	if sess.tr == nil || sess.enumDone {
		return
	}
	sess.enumDone = true
	if sess.enumStart.IsZero() {
		return // never advanced: no enumerate span
	}
	sess.tr.RecordSpan("enumerate", sess.enumStart)
}

func (s *Searcher) newSession(ctx context.Context, q Query) (*session, error) {
	if len(q.Keywords) == 0 {
		return nil, core.ErrNoKeywords
	}
	// NaN compares false against everything, so `< 0` alone would let
	// NaN (and +Inf) through and poison every distance comparison.
	if math.IsNaN(q.Rmax) || math.IsInf(q.Rmax, 0) {
		return nil, fmt.Errorf("commdb: non-finite Rmax %v", q.Rmax)
	}
	if q.Rmax < 0 {
		return nil, fmt.Errorf("commdb: negative Rmax %v", q.Rmax)
	}
	bud := govern.New(ctx, q.Limits)
	tr := obs.FromContext(ctx)
	sess := &session{s: s, tr: tr}
	if tr != nil {
		if s.ix != nil {
			tr.SetLabel("projected", "true")
		} else {
			tr.SetLabel("projected", "false")
		}
		// Identity labels make every trace self-describing, so the
		// continuous layer (slow-query capture, per-class aggregates)
		// can classify a trace without re-deriving the query.
		tr.SetLabel("fingerprint", q.Fingerprint())
		tr.SetLabel("keywords", strings.Join(q.Normalized().Keywords, ","))
		tr.SetLabel("rmax", strconv.FormatFloat(q.Rmax, 'g', -1, 64))
		// Snapshot what the query consumed once the trace is finalized;
		// the enumerate span is also closed here for queries abandoned
		// mid-enumeration.
		tr.OnFinish(func(t *obs.Trace) {
			sess.finishEnum()
			for _, r := range govern.AllResources {
				if n := bud.Spent(r); n > 0 {
					t.Add("budget_"+strings.ReplaceAll(string(r), "-", "_"), n)
				}
			}
		})
	}
	target := s.g
	var ft *fulltext.Index = s.ft
	if s.ix != nil {
		if q.Rmax > s.ix.R() {
			return nil, fmt.Errorf("commdb: Rmax %v exceeds the index radius %v given to NewIndexedSearcher", q.Rmax, s.ix.R())
		}
		proj, err := s.ix.ProjectTrace(q.Keywords, q.Rmax, bud, tr)
		if err != nil {
			return nil, err
		}
		sess.sub = proj.Sub
		target = proj.Sub.G
		ft = nil // projected graphs are small; scanning is fine
	}
	endInit := tr.StartSpan("engine_init")
	eng, err := core.NewEngine(target, ft, q.Keywords, q.Rmax)
	if err != nil {
		return nil, err
	}
	eng.SetCostFunction(q.Cost)
	eng.SetBudget(bud)
	eng.SetTrace(tr)
	endInit()
	sess.eng = eng
	return sess, nil
}

// recoverQueryPanic converts a panic escaping an internal query loop
// into an error at the public boundary, so an engine bug fails one
// query instead of the process.
func recoverQueryPanic(p any) error {
	return fmt.Errorf("commdb: internal panic: %v", p)
}

// mapBack translates a community from the projected ID space to the
// searcher's graph and re-induces its edges over the full graph (the
// projection preserves all distances but may omit induced edges that
// lie on no short center→keyword path).
func (sess *session) mapBack(r *Community) *Community {
	if sess.sub == nil {
		return r
	}
	toParent := sess.sub.ToParent
	mapped := &Community{
		Core:   make(Core, len(r.Core)),
		Cost:   r.Cost,
		Knodes: mapIDs(r.Knodes, toParent),
		Cnodes: mapIDs(r.Cnodes, toParent),
		Pnodes: mapIDs(r.Pnodes, toParent),
		Nodes:  mapIDs(r.Nodes, toParent),
	}
	for i, v := range r.Core {
		mapped.Core[i] = toParent[v]
	}
	sort.Slice(mapped.Nodes, func(i, j int) bool { return mapped.Nodes[i] < mapped.Nodes[j] })
	sort.Slice(mapped.Cnodes, func(i, j int) bool { return mapped.Cnodes[i] < mapped.Cnodes[j] })
	sort.Slice(mapped.Pnodes, func(i, j int) bool { return mapped.Pnodes[i] < mapped.Pnodes[j] })
	sort.Slice(mapped.Knodes, func(i, j int) bool { return mapped.Knodes[i] < mapped.Knodes[j] })

	// Re-induce edges over the parent graph.
	if sess.inNode == nil {
		sess.inNode = make(map[NodeID]bool, len(mapped.Nodes)*2)
	} else {
		clear(sess.inNode)
	}
	for _, v := range mapped.Nodes {
		sess.inNode[v] = true
	}
	for _, u := range mapped.Nodes {
		for _, e := range sess.s.g.OutEdges(u) {
			if sess.inNode[e.To] {
				mapped.Edges = append(mapped.Edges, EdgePair{From: u, To: e.To})
			}
		}
	}
	return mapped
}

func mapIDs(in []NodeID, toParent []NodeID) []NodeID {
	out := make([]NodeID, len(in))
	for i, v := range in {
		out[i] = toParent[v]
	}
	return out
}

// AllIterator enumerates every community of a query in polynomial
// delay (Algorithm 1 of the paper), duplication-free and complete.
//
// When the query carries Limits or a cancelable context, Next may
// return false before the query is exhausted; Err then reports why,
// and the communities already returned are a valid partial set.
type AllIterator struct {
	sess *session
	it   *core.AllEnumerator
	err  error // panic recovered at the public boundary
}

// All starts a COMM-all enumeration. The first community returned is a
// minimum-cost one; the rest follow in enumeration (not ranking) order.
func (s *Searcher) All(q Query) (*AllIterator, error) {
	return s.AllCtx(context.Background(), q)
}

// AllCtx is All bound to a context: canceling ctx (or hitting its
// deadline) stops the enumeration within a bounded number of Next
// calls, with the reason readable from Err.
func (s *Searcher) AllCtx(ctx context.Context, q Query) (it *AllIterator, err error) {
	defer func() {
		if p := recover(); p != nil {
			it, err = nil, recoverQueryPanic(p)
		}
	}()
	sess, err := s.newSession(ctx, q)
	if err != nil {
		return nil, err
	}
	sess.tr.SetLabel("algorithm", "comm_all")
	return &AllIterator{sess: sess, it: core.NewAll(sess.eng)}, nil
}

// Err reports why the enumeration stopped: nil after a clean
// exhaustion, or the stop reason — ErrCanceled, ErrDeadlineExceeded,
// an ErrBudgetExhausted (match with errors.As), or a recovered
// internal panic — when it ended early. It is meaningful once Next or
// NextCore has returned ok == false.
func (it *AllIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.it.Err()
}

// Next returns the next community, or ok == false when the query is
// exhausted or stopped early (see Err).
func (it *AllIterator) Next() (r *Community, ok bool) {
	if it.err != nil {
		return nil, false
	}
	defer func() {
		if p := recover(); p != nil {
			it.err = recoverQueryPanic(p)
			r, ok = nil, false
		}
	}()
	it.sess.noteNext()
	r0, ok := it.it.Next()
	if !ok {
		it.sess.finishEnum()
		return nil, false
	}
	return it.sess.mapBack(r0), true
}

// NextCore advances without materializing the community subgraph;
// cheaper when only cores and costs are needed.
func (it *AllIterator) NextCore() (cc CoreCost, ok bool) {
	if it.err != nil {
		return CoreCost{}, false
	}
	defer func() {
		if p := recover(); p != nil {
			it.err = recoverQueryPanic(p)
			cc, ok = CoreCost{}, false
		}
	}()
	it.sess.noteNext()
	cc, ok = it.it.NextCore()
	if !ok {
		it.sess.finishEnum()
	}
	if !ok || it.sess.sub == nil {
		return cc, ok
	}
	mapped := make(Core, len(cc.Core))
	for i, v := range cc.Core {
		mapped[i] = it.sess.sub.ToParent[v]
	}
	return CoreCost{Core: mapped, Cost: cc.Cost}, true
}

// TopKIterator enumerates communities in non-decreasing cost order
// (Algorithm 5 of the paper). It has no fixed k: every Next call
// produces the next best community, so a user can interactively keep
// enlarging k without any recomputation.
//
// When the query carries Limits or a cancelable context, Next may
// return false before the query is exhausted; Err then reports why,
// and the communities already returned are a valid ranking prefix.
type TopKIterator struct {
	sess *session
	it   *core.TopKEnumerator
	err  error // panic recovered at the public boundary
}

// TopK starts a COMM-k enumeration.
func (s *Searcher) TopK(q Query) (*TopKIterator, error) {
	return s.TopKCtx(context.Background(), q)
}

// TopKCtx is TopK bound to a context: canceling ctx (or hitting its
// deadline) stops the enumeration within a bounded number of Next
// calls, with the reason readable from Err.
func (s *Searcher) TopKCtx(ctx context.Context, q Query) (it *TopKIterator, err error) {
	defer func() {
		if p := recover(); p != nil {
			it, err = nil, recoverQueryPanic(p)
		}
	}()
	sess, err := s.newSession(ctx, q)
	if err != nil {
		return nil, err
	}
	sess.tr.SetLabel("algorithm", "comm_k")
	return &TopKIterator{sess: sess, it: core.NewTopK(sess.eng)}, nil
}

// Err reports why the enumeration stopped: nil after a clean
// exhaustion, or the stop reason — ErrCanceled, ErrDeadlineExceeded,
// an ErrBudgetExhausted (match with errors.As), or a recovered
// internal panic — when it ended early. It is meaningful once Next or
// NextCore has returned ok == false.
func (it *TopKIterator) Err() error {
	if it.err != nil {
		return it.err
	}
	return it.it.Err()
}

// Next returns the next best community, or ok == false when exhausted
// or stopped early (see Err).
func (it *TopKIterator) Next() (r *Community, ok bool) {
	if it.err != nil {
		return nil, false
	}
	defer func() {
		if p := recover(); p != nil {
			it.err = recoverQueryPanic(p)
			r, ok = nil, false
		}
	}()
	it.sess.noteNext()
	r0, ok := it.it.Next()
	if !ok {
		it.sess.finishEnum()
		return nil, false
	}
	return it.sess.mapBack(r0), true
}

// NextCore advances without materializing the community subgraph.
func (it *TopKIterator) NextCore() (cc CoreCost, ok bool) {
	if it.err != nil {
		return CoreCost{}, false
	}
	defer func() {
		if p := recover(); p != nil {
			it.err = recoverQueryPanic(p)
			cc, ok = CoreCost{}, false
		}
	}()
	it.sess.noteNext()
	cc, ok = it.it.NextCore()
	if !ok {
		it.sess.finishEnum()
	}
	if !ok || it.sess.sub == nil {
		return cc, ok
	}
	mapped := make(Core, len(cc.Core))
	for i, v := range cc.Core {
		mapped[i] = it.sess.sub.ToParent[v]
	}
	return CoreCost{Core: mapped, Cost: cc.Cost}, true
}

// Collect drains up to k communities from the iterator (a convenience
// wrapper around Next). It may return fewer than k when the query is
// exhausted or stopped early — check Err to distinguish.
func (it *TopKIterator) Collect(k int) []*Community {
	out := make([]*Community, 0, k)
	for len(out) < k {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// CollectAll drains every community from an AllIterator. Use with
// care: the result set can be large — or bound it with Query.Limits
// and check Err for the stop reason.
func (it *AllIterator) CollectAll(limit int) []*Community {
	var out []*Community
	for limit <= 0 || len(out) < limit {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// WriteIndex serializes an indexed searcher's invertedE index so the
// expensive build can be paid once; pair it with WriteGraph. Returns an
// error on an un-indexed searcher.
func (s *Searcher) WriteIndex(w io.Writer) error {
	if s.ix == nil {
		return fmt.Errorf("commdb: searcher has no index to write")
	}
	return s.ix.Write(w)
}

// NewSearcherWithIndex loads an index previously saved with WriteIndex,
// built over exactly this graph.
func NewSearcherWithIndex(g *Graph, r io.Reader) (*Searcher, error) {
	ix, err := index.ReadInto(r, g)
	if err != nil {
		return nil, err
	}
	return &Searcher{g: g, ft: ix.Fulltext(), ix: ix}, nil
}

// IndexBytes reports the logical size of the searcher's inverted
// indexes (0 when un-indexed), the statistic the paper reports against
// the raw dataset size.
func (s *Searcher) IndexBytes() int64 {
	if s.ix == nil {
		return 0
	}
	return s.ix.Bytes()
}
