package commdb

import (
	"fmt"
	"io"
	"sort"

	"commdb/internal/core"
	"commdb/internal/fulltext"
	"commdb/internal/graph"
	"commdb/internal/index"
)

// CostFunction selects how a community's cost aggregates its
// center→knode distances; see the constants.
type CostFunction = core.CostFunction

// Cost function choices. The paper's ranking uses the summed distances;
// the max-distance variant demonstrates the paper's claim that the
// algorithms do not depend on a specific cost function.
const (
	CostSumDistances = core.CostSumDistances
	CostMaxDistance  = core.CostMaxDistance
)

// Query is one l-keyword community query.
type Query struct {
	// Keywords are the l query keywords; each must be a single term.
	Keywords []string
	// Rmax is the radius: every center must reach every core node
	// within this total edge weight.
	Rmax float64
	// Cost selects the ranking aggregate (default: summed distances).
	Cost CostFunction
}

// Searcher answers community queries over one graph. A plain Searcher
// scans the graph per query; an indexed Searcher (NewIndexedSearcher)
// first projects a small query-specific subgraph using the paper's
// inverted indexes, which is dramatically faster on large graphs, with
// identical results.
//
// A Searcher is safe for concurrent use; each query gets its own
// engine.
type Searcher struct {
	g  *Graph
	ft *fulltext.Index
	ix *index.Index
}

// NewSearcher returns an un-indexed searcher over g.
func NewSearcher(g *Graph) *Searcher {
	return &Searcher{g: g, ft: fulltext.Build(g)}
}

// NewIndexedSearcher builds the paper's invertedN/invertedE indexes for
// radii up to maxRmax and returns a searcher whose queries run on
// projected subgraphs. Building takes one bounded shortest-path pass
// per distinct term; it is a one-time cost amortized over all queries.
func NewIndexedSearcher(g *Graph, maxRmax float64) (*Searcher, error) {
	ix, err := index.Build(g, index.BuildOptions{R: maxRmax})
	if err != nil {
		return nil, err
	}
	return &Searcher{g: g, ft: ix.Fulltext(), ix: ix}, nil
}

// Indexed reports whether the searcher projects queries through the
// inverted indexes.
func (s *Searcher) Indexed() bool { return s.ix != nil }

// Graph returns the searched graph.
func (s *Searcher) Graph() *Graph { return s.g }

// KeywordFrequency reports the KWF of a term: the fraction of graph
// nodes containing it.
func (s *Searcher) KeywordFrequency(term string) float64 { return s.ft.KWF(term) }

// session holds one query's execution state: the (possibly projected)
// engine plus the mapping back to the searcher's graph.
type session struct {
	s      *Searcher
	eng    *core.Engine
	sub    *graph.Subgraph // nil when running directly on s.g
	inNode map[NodeID]bool // scratch for edge re-induction
}

func (s *Searcher) newSession(q Query) (*session, error) {
	if len(q.Keywords) == 0 {
		return nil, core.ErrNoKeywords
	}
	if q.Rmax < 0 {
		return nil, fmt.Errorf("commdb: negative Rmax %v", q.Rmax)
	}
	sess := &session{s: s}
	target := s.g
	var ft *fulltext.Index = s.ft
	if s.ix != nil {
		if q.Rmax > s.ix.R() {
			return nil, fmt.Errorf("commdb: Rmax %v exceeds the index radius %v given to NewIndexedSearcher", q.Rmax, s.ix.R())
		}
		proj, err := s.ix.Project(q.Keywords, q.Rmax)
		if err != nil {
			return nil, err
		}
		sess.sub = proj.Sub
		target = proj.Sub.G
		ft = nil // projected graphs are small; scanning is fine
	}
	eng, err := core.NewEngine(target, ft, q.Keywords, q.Rmax)
	if err != nil {
		return nil, err
	}
	eng.SetCostFunction(q.Cost)
	sess.eng = eng
	return sess, nil
}

// mapBack translates a community from the projected ID space to the
// searcher's graph and re-induces its edges over the full graph (the
// projection preserves all distances but may omit induced edges that
// lie on no short center→keyword path).
func (sess *session) mapBack(r *Community) *Community {
	if sess.sub == nil {
		return r
	}
	toParent := sess.sub.ToParent
	mapped := &Community{
		Core:   make(Core, len(r.Core)),
		Cost:   r.Cost,
		Knodes: mapIDs(r.Knodes, toParent),
		Cnodes: mapIDs(r.Cnodes, toParent),
		Pnodes: mapIDs(r.Pnodes, toParent),
		Nodes:  mapIDs(r.Nodes, toParent),
	}
	for i, v := range r.Core {
		mapped.Core[i] = toParent[v]
	}
	sort.Slice(mapped.Nodes, func(i, j int) bool { return mapped.Nodes[i] < mapped.Nodes[j] })
	sort.Slice(mapped.Cnodes, func(i, j int) bool { return mapped.Cnodes[i] < mapped.Cnodes[j] })
	sort.Slice(mapped.Pnodes, func(i, j int) bool { return mapped.Pnodes[i] < mapped.Pnodes[j] })
	sort.Slice(mapped.Knodes, func(i, j int) bool { return mapped.Knodes[i] < mapped.Knodes[j] })

	// Re-induce edges over the parent graph.
	if sess.inNode == nil {
		sess.inNode = make(map[NodeID]bool, len(mapped.Nodes)*2)
	} else {
		clear(sess.inNode)
	}
	for _, v := range mapped.Nodes {
		sess.inNode[v] = true
	}
	for _, u := range mapped.Nodes {
		for _, e := range sess.s.g.OutEdges(u) {
			if sess.inNode[e.To] {
				mapped.Edges = append(mapped.Edges, EdgePair{From: u, To: e.To})
			}
		}
	}
	return mapped
}

func mapIDs(in []NodeID, toParent []NodeID) []NodeID {
	out := make([]NodeID, len(in))
	for i, v := range in {
		out[i] = toParent[v]
	}
	return out
}

// AllIterator enumerates every community of a query in polynomial
// delay (Algorithm 1 of the paper), duplication-free and complete.
type AllIterator struct {
	sess *session
	it   *core.AllEnumerator
}

// All starts a COMM-all enumeration. The first community returned is a
// minimum-cost one; the rest follow in enumeration (not ranking) order.
func (s *Searcher) All(q Query) (*AllIterator, error) {
	sess, err := s.newSession(q)
	if err != nil {
		return nil, err
	}
	return &AllIterator{sess: sess, it: core.NewAll(sess.eng)}, nil
}

// Next returns the next community, or ok == false when the query is
// exhausted.
func (it *AllIterator) Next() (*Community, bool) {
	r, ok := it.it.Next()
	if !ok {
		return nil, false
	}
	return it.sess.mapBack(r), true
}

// NextCore advances without materializing the community subgraph;
// cheaper when only cores and costs are needed.
func (it *AllIterator) NextCore() (CoreCost, bool) {
	cc, ok := it.it.NextCore()
	if !ok || it.sess.sub == nil {
		return cc, ok
	}
	mapped := make(Core, len(cc.Core))
	for i, v := range cc.Core {
		mapped[i] = it.sess.sub.ToParent[v]
	}
	return CoreCost{Core: mapped, Cost: cc.Cost}, true
}

// TopKIterator enumerates communities in non-decreasing cost order
// (Algorithm 5 of the paper). It has no fixed k: every Next call
// produces the next best community, so a user can interactively keep
// enlarging k without any recomputation.
type TopKIterator struct {
	sess *session
	it   *core.TopKEnumerator
}

// TopK starts a COMM-k enumeration.
func (s *Searcher) TopK(q Query) (*TopKIterator, error) {
	sess, err := s.newSession(q)
	if err != nil {
		return nil, err
	}
	return &TopKIterator{sess: sess, it: core.NewTopK(sess.eng)}, nil
}

// Next returns the next best community, or ok == false when exhausted.
func (it *TopKIterator) Next() (*Community, bool) {
	r, ok := it.it.Next()
	if !ok {
		return nil, false
	}
	return it.sess.mapBack(r), true
}

// NextCore advances without materializing the community subgraph.
func (it *TopKIterator) NextCore() (CoreCost, bool) {
	cc, ok := it.it.NextCore()
	if !ok || it.sess.sub == nil {
		return cc, ok
	}
	mapped := make(Core, len(cc.Core))
	for i, v := range cc.Core {
		mapped[i] = it.sess.sub.ToParent[v]
	}
	return CoreCost{Core: mapped, Cost: cc.Cost}, true
}

// Collect drains up to k communities from the iterator (a convenience
// wrapper around Next).
func (it *TopKIterator) Collect(k int) []*Community {
	out := make([]*Community, 0, k)
	for len(out) < k {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// CollectAll drains every community from an AllIterator. Use with care:
// the result set can be large.
func (it *AllIterator) CollectAll(limit int) []*Community {
	var out []*Community
	for limit <= 0 || len(out) < limit {
		r, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// WriteIndex serializes an indexed searcher's invertedE index so the
// expensive build can be paid once; pair it with WriteGraph. Returns an
// error on an un-indexed searcher.
func (s *Searcher) WriteIndex(w io.Writer) error {
	if s.ix == nil {
		return fmt.Errorf("commdb: searcher has no index to write")
	}
	return s.ix.Write(w)
}

// NewSearcherWithIndex loads an index previously saved with WriteIndex,
// built over exactly this graph.
func NewSearcherWithIndex(g *Graph, r io.Reader) (*Searcher, error) {
	ix, err := index.ReadInto(r, g)
	if err != nil {
		return nil, err
	}
	return &Searcher{g: g, ft: ix.Fulltext(), ix: ix}, nil
}

// IndexBytes reports the logical size of the searcher's inverted
// indexes (0 when un-indexed), the statistic the paper reports against
// the raw dataset size.
func (s *Searcher) IndexBytes() int64 {
	if s.ix == nil {
		return 0
	}
	return s.ix.Bytes()
}
