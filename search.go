package commdb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"commdb/internal/core"
	"commdb/internal/fulltext"
	"commdb/internal/govern"
	"commdb/internal/graph"
	"commdb/internal/index"
	"commdb/internal/kwcache"
	"commdb/internal/obs"
	"commdb/internal/prof"
	"commdb/internal/sssp"
)

// CostFunction selects how a community's cost aggregates its
// center→knode distances; see the constants.
type CostFunction = core.CostFunction

// Cost function choices. The paper's ranking uses the summed distances;
// the max-distance variant demonstrates the paper's claim that the
// algorithms do not depend on a specific cost function.
const (
	CostSumDistances = core.CostSumDistances
	CostMaxDistance  = core.CostMaxDistance
)

// Ranker is a pluggable community cost aggregate, installed with
// Open(..., WithRanker(...)): it folds a candidate center's
// per-keyword shortest-path distances into one score, lower being
// better. Implementations must be monotone in every component (the
// enumeration-order guarantees of both algorithms rely on it), must be
// pure functions safe for concurrent calls, and must not retain the
// distance slice. See SumRanker, MaxRanker and BalancedRanker for the
// built-ins.
type Ranker = core.Ranker

// SumRanker returns the paper's default cost: the summed
// center→knode distances. Installing it is equivalent to the default
// behavior with Query.Cost = CostSumDistances.
func SumRanker() Ranker { return core.SumRanker() }

// MaxRanker returns the max-distance (radius) aggregate, equivalent to
// Query.Cost = CostMaxDistance.
func MaxRanker() Ranker { return core.MaxRanker() }

// BalancedRanker blends the paper's summed-distance cost with the
// worst single center→knode distance — alpha·sum + (1−alpha)·max,
// alpha in [0, 1] — following the combined ranking of Kargar, Golab
// and Szlichta ("Effective Keyword Search in Graphs"): the max term
// penalizes communities whose total is low only because one keyword
// sits far out. Monotone at every alpha, so all enumeration
// guarantees hold.
func BalancedRanker(alpha float64) (Ranker, error) { return core.BalancedRanker(alpha) }

// Limits caps one query's resource consumption: a wall-clock cutoff
// plus budgets on shortest-path work, Dijkstra invocations, top-k
// candidate-list growth, and result count. The zero value (and a zero
// in any field) means unlimited. See the govern package for what each
// resource bounds.
type Limits = govern.Limits

// Resource names the budgeted quantity in an ErrBudgetExhausted.
type Resource = govern.Resource

// Budgeted resources, reported in ErrBudgetExhausted.Resource.
const (
	ResourceRelaxations  = govern.ResourceRelaxations
	ResourceNeighborRuns = govern.ResourceNeighborRuns
	ResourceCanTuples    = govern.ResourceCanTuples
	ResourceHeapBytes    = govern.ResourceHeapBytes
	ResourceResults      = govern.ResourceResults
)

// ErrBudgetExhausted is the iterator stop reason when a resource limit
// tripped; match it with errors.As and inspect Resource/Spent/Limit.
type ErrBudgetExhausted = govern.ErrBudgetExhausted

// ErrDeadlineExceeded is the iterator stop reason when a query ran out
// of wall-clock time. It is context.DeadlineExceeded, so both
// errors.Is(err, commdb.ErrDeadlineExceeded) and comparisons against
// context.DeadlineExceeded work.
var ErrDeadlineExceeded = context.DeadlineExceeded

// ErrCanceled is the iterator stop reason when the query's context was
// canceled. It is context.Canceled.
var ErrCanceled = context.Canceled

// ErrInternal is the stop reason when a panic escaped an internal query
// loop and was recovered at the public boundary — an engine bug, not a
// property of the query. Serving layers treat it as a signal that the
// running snapshot may be bad (see internal/snapshot's probation).
var ErrInternal = errors.New("commdb: internal panic")

// ErrCorruptIndex is returned by Open(WithIndexReader) when the
// serialized index fails validation: truncation, checksum mismatch,
// out-of-bounds or non-monotonic postings, trailing garbage. The error
// is permanent for that artifact — reloading the same bytes cannot
// succeed. Match with errors.Is.
var ErrCorruptIndex = index.ErrCorruptIndex

// ErrIndexMismatch is returned by Open(WithIndexReader) when the index
// is structurally valid but was built over a different graph than the
// one being opened. Match with errors.Is.
var ErrIndexMismatch = index.ErrIndexMismatch

// ErrCorruptKeywordArtifacts is returned by Open(WithKeywordArtifacts)
// when the serialized artifact store fails validation: truncation,
// checksum mismatch, bounds or settle-order violations, trailing
// garbage. Permanent for that artifact; match with errors.Is.
var ErrCorruptKeywordArtifacts = kwcache.ErrCorruptStore

// ErrKeywordArtifactsMismatch is returned by Open(WithKeywordArtifacts)
// when the store is structurally valid but was built over a different
// generation of the data than the graph being opened. Match with
// errors.Is.
var ErrKeywordArtifactsMismatch = kwcache.ErrStoreMismatch

// Collector is the always-on observability layer: pass one to
// Open(WithCollector) and every finished query is folded into its
// slow-query capture, per-class aggregates and SLO watchdog. See the
// obs package for configuration.
type Collector = obs.Collector

// CollectorConfig bundles the Collector's knobs; the zero value gets
// defaults throughout.
type CollectorConfig = obs.CollectorConfig

// QueryRecord is one finished query as seen by a Collector.
type QueryRecord = obs.QueryRecord

// NewCollector builds a continuous observability layer for
// Open(WithCollector).
func NewCollector(cfg CollectorConfig) *Collector { return obs.NewCollector(cfg) }

// Query is one l-keyword community query.
type Query struct {
	// Keywords are the l query keywords; each must be a single term.
	Keywords []string
	// Rmax is the radius: every center must reach every core node
	// within this total edge weight.
	Rmax float64
	// Cost selects the ranking aggregate (default: summed distances).
	Cost CostFunction
	// Limits bounds the query's resources; the zero value is
	// unlimited. When a limit trips mid-enumeration the iterator stops
	// early — the results already returned are valid, and Err reports
	// the reason.
	Limits Limits
}

// Normalized returns the canonical form of the query: every keyword
// reduced to its lowercase tokenized term and the keyword list sorted.
// The engine tokenizes keywords the same way before resolving them, and
// reordering keywords only permutes the per-keyword core positions, so
// a normalized query answers with the same community set as the
// original (cores ordered by the sorted keyword list). Limits, Rmax and
// Cost are preserved unchanged.
//
// A keyword that does not tokenize to exactly one term (which the
// engine rejects) is kept verbatim apart from trimming and lowercasing,
// so normalizing never masks an invalid query.
func (q Query) Normalized() Query {
	kws := make([]string, len(q.Keywords))
	for i, kw := range q.Keywords {
		if terms := fulltext.Tokenize(kw); len(terms) == 1 {
			kws[i] = terms[0]
		} else {
			kws[i] = strings.ToLower(strings.TrimSpace(kw))
		}
	}
	sort.Strings(kws)
	q.Keywords = kws
	return q
}

// Fingerprint returns a canonical identity string for the query's
// answer set: two queries with equal fingerprints enumerate the same
// communities (with cores ordered by the normalized keyword list), so
// the fingerprint is a safe result-cache key. Keyword order and case do
// not affect it. Limits are deliberately excluded — they bound a
// query's resources, not its answer.
//
// The encoding is injective: keywords are length-prefixed so no two
// distinct keyword lists collide.
func (q Query) Fingerprint() string {
	n := q.Normalized()
	var b strings.Builder
	b.WriteString("q1|rmax=")
	b.WriteString(strconv.FormatFloat(n.Rmax, 'g', -1, 64))
	b.WriteString("|cost=")
	b.WriteString(strconv.Itoa(int(n.Cost)))
	for _, kw := range n.Keywords {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(kw)))
		b.WriteByte(':')
		b.WriteString(kw)
	}
	return b.String()
}

// Searcher answers community queries over one graph. A plain Searcher
// scans the graph per query; an indexed Searcher (Open with WithIndex
// or WithIndexReader) first projects a small query-specific subgraph
// using the paper's inverted indexes, which is dramatically faster on
// large graphs, with identical results.
//
// A Searcher is safe for concurrent use; each query gets its own
// engine, and all queries share one workspace pool so steady-state
// serving allocates no per-query distance arrays.
type Searcher struct {
	g  *Graph
	ft *fulltext.Index
	ix *index.Index

	// pool recycles shortest-path workspaces across queries and across
	// the worker goroutines of one parallel query.
	pool *sssp.Pool
	// par is the per-query parallelism degree; 1 means strictly
	// sequential execution.
	par int
	// col, when non-nil, observes every finished query.
	col *obs.Collector
	// ranker, when non-nil, overrides Query.Cost on every query.
	ranker core.Ranker
	// kc, when non-nil, serves precomputed keyword neighbor sets to
	// eligible sessions (un-indexed execution, no work-shape limits,
	// Rmax within the store radius).
	kc *kwcache.Store
}

// Option configures Open.
type Option func(*openConfig)

type openConfig struct {
	buildIndex  bool
	indexRmax   float64
	indexReader io.Reader
	parallelism int
	collector   *obs.Collector
	ranker      core.Ranker
	kwReader    io.Reader
	kwRadius    float64
	kwEnable    bool
}

// WithIndex builds the paper's invertedN/invertedE indexes for radii up
// to maxRmax, so queries run on projected subgraphs. Building takes one
// bounded shortest-path pass per distinct term; it is a one-time cost
// amortized over all queries. Mutually exclusive with WithIndexReader.
func WithIndex(maxRmax float64) Option {
	return func(c *openConfig) {
		c.buildIndex = true
		c.indexRmax = maxRmax
	}
}

// WithIndexReader loads an index previously saved with WriteIndex,
// built over exactly the graph being opened. Mutually exclusive with
// WithIndex.
func WithIndexReader(r io.Reader) Option {
	return func(c *openConfig) { c.indexReader = r }
}

// WithParallelism sets how many worker goroutines one query may use:
// the per-keyword Dijkstras of engine init fan out across them, and
// community materialization runs on them while the enumeration
// produces the next cores. Results — order, content, Err — are
// identical at every setting; only wall-clock changes.
//
// n <= 0 selects the default, runtime.GOMAXPROCS(0). n == 1 forces the
// strictly sequential engine.
func WithParallelism(n int) Option {
	return func(c *openConfig) { c.parallelism = n }
}

// WithCollector wires an always-on observability collector: every
// query finished through the searcher (exhausted or closed) is
// observed. Share one collector across searchers to aggregate.
func WithCollector(col *Collector) Option {
	return func(c *openConfig) { c.collector = col }
}

// WithRanker installs a custom community cost aggregate for every
// query on the searcher, overriding Query.Cost. Without this option
// behavior is unchanged: Query.Cost selects between the two built-in
// aggregates exactly as before. The ranker must satisfy the Ranker
// contract (per-component monotone, concurrency-safe, pure).
func WithRanker(r Ranker) Option {
	return func(c *openConfig) { c.ranker = r }
}

// WithKeywordArtifacts loads a keyword neighbor-set artifact store
// previously saved with WriteKeywordArtifacts (or prebuilt by
// cmd/indexbuild -kwcache-out), built over exactly the graph being
// opened. Queries on an un-indexed searcher whose Rmax fits within the
// store's radius then serve hot keywords' engine init from the
// artifacts instead of running full-set Dijkstras, byte-identically.
// Loading is fail-closed: a corrupt or wrong-generation store returns
// ErrCorruptKeywordArtifacts / ErrKeywordArtifactsMismatch from Open.
// Mutually exclusive with WithKeywordArtifactStore.
func WithKeywordArtifacts(r io.Reader) Option {
	return func(c *openConfig) { c.kwReader = r }
}

// WithKeywordArtifactStore attaches an empty artifact store at the
// given radius — the largest query Rmax the artifacts will cover —
// to be filled incrementally with WarmKeywords (e.g. from workload
// hot-keyword attribution). Mutually exclusive with
// WithKeywordArtifacts.
func WithKeywordArtifactStore(radius float64) Option {
	return func(c *openConfig) {
		c.kwEnable = true
		c.kwRadius = radius
	}
}

// Open returns a Searcher over g. With no options it scans the graph
// per query and parallelizes each query over runtime.GOMAXPROCS(0)
// workers; see WithIndex, WithIndexReader, WithParallelism and
// WithCollector.
func Open(g *Graph, opts ...Option) (*Searcher, error) {
	if g == nil {
		return nil, fmt.Errorf("commdb: Open: nil graph")
	}
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.buildIndex && cfg.indexReader != nil {
		return nil, fmt.Errorf("commdb: WithIndex and WithIndexReader are mutually exclusive")
	}
	if cfg.kwReader != nil && cfg.kwEnable {
		return nil, fmt.Errorf("commdb: WithKeywordArtifacts and WithKeywordArtifactStore are mutually exclusive")
	}
	par := cfg.parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	s := &Searcher{g: g, pool: sssp.NewPool(), par: par, col: cfg.collector, ranker: cfg.ranker}
	switch {
	case cfg.buildIndex:
		ix, err := index.Build(g, index.BuildOptions{R: cfg.indexRmax})
		if err != nil {
			return nil, err
		}
		s.ix, s.ft = ix, ix.Fulltext()
	case cfg.indexReader != nil:
		ix, err := index.ReadInto(cfg.indexReader, g)
		if err != nil {
			return nil, err
		}
		s.ix, s.ft = ix, ix.Fulltext()
	default:
		s.ft = fulltext.Build(g)
	}
	switch {
	case cfg.kwReader != nil:
		kc, err := kwcache.ReadInto(cfg.kwReader, s.ft)
		if err != nil {
			return nil, err
		}
		s.kc = kc
	case cfg.kwEnable:
		kc, err := kwcache.New(s.ft, cfg.kwRadius, 0)
		if err != nil {
			return nil, err
		}
		s.kc = kc
	}
	return s, nil
}

// NewSearcher returns an un-indexed searcher over g.
//
// Deprecated: use Open(g).
func NewSearcher(g *Graph) *Searcher {
	s, err := Open(g)
	if err != nil {
		// Open without index options cannot fail; keep the legacy
		// no-error signature honest if that ever changes.
		panic(err)
	}
	return s
}

// NewIndexedSearcher builds the paper's inverted indexes for radii up
// to maxRmax and returns a searcher whose queries run on projected
// subgraphs.
//
// Deprecated: use Open(g, WithIndex(maxRmax)).
func NewIndexedSearcher(g *Graph, maxRmax float64) (*Searcher, error) {
	return Open(g, WithIndex(maxRmax))
}

// NewSearcherWithIndex loads an index previously saved with WriteIndex,
// built over exactly this graph.
//
// Deprecated: use Open(g, WithIndexReader(r)).
func NewSearcherWithIndex(g *Graph, r io.Reader) (*Searcher, error) {
	return Open(g, WithIndexReader(r))
}

// Indexed reports whether the searcher projects queries through the
// inverted indexes.
func (s *Searcher) Indexed() bool { return s.ix != nil }

// Graph returns the searched graph.
func (s *Searcher) Graph() *Graph { return s.g }

// Parallelism reports the searcher's per-query worker count.
func (s *Searcher) Parallelism() int { return s.par }

// IndexRadius reports the largest Rmax the searcher's index supports,
// or 0 when un-indexed. Snapshot reloads use it as a validation gate: a
// replacement index must support at least the radius the serving one
// does, or queries that worked before the swap would start failing.
func (s *Searcher) IndexRadius() float64 {
	if s.ix == nil {
		return 0
	}
	return s.ix.R()
}

// KeywordFrequency reports the KWF of a term: the fraction of graph
// nodes containing it.
func (s *Searcher) KeywordFrequency(term string) float64 { return s.ft.KWF(term) }

// WarmKeywords computes keyword neighbor-set artifacts for every given
// keyword not already cached, reporting how many were added. Keywords
// that do not tokenize to a single term are skipped. A no-op (0) on a
// searcher without an artifact store. Safe to call concurrently with
// serving: queries in flight keep seeing a consistent store.
func (s *Searcher) WarmKeywords(keywords []string) int {
	if s.kc == nil {
		return 0
	}
	return s.kc.Warm(keywords)
}

// WriteKeywordArtifacts serializes the searcher's keyword artifact
// store so the warm-up survives restarts; load it with
// Open(..., WithKeywordArtifacts(r)). Returns an error on a searcher
// without a store.
func (s *Searcher) WriteKeywordArtifacts(w io.Writer) error {
	if s.kc == nil {
		return fmt.Errorf("commdb: searcher has no keyword artifact store to write")
	}
	return s.kc.Write(w)
}

// KeywordArtifactStats describes the searcher's keyword artifact
// store: its coverage and how often engine init was served from it.
type KeywordArtifactStats struct {
	// Enabled reports whether the searcher has a store at all.
	Enabled bool `json:"enabled"`
	// Terms is the number of cached keywords.
	Terms int `json:"terms"`
	// Radius is the store's artifact radius: queries with Rmax beyond
	// it fall back to live execution.
	Radius float64 `json:"radius"`
	// Epoch is the data generation recorded when the store was built.
	Epoch int64 `json:"epoch"`
	// Hits and Misses count full-set probes served from artifacts vs
	// fallen back to live Dijkstras.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Bytes is the store's resident footprint.
	Bytes int64 `json:"bytes"`
}

// KeywordArtifacts reports the artifact store's coverage and hit
// counters; Enabled is false on a searcher without a store.
func (s *Searcher) KeywordArtifacts() KeywordArtifactStats {
	if s.kc == nil {
		return KeywordArtifactStats{}
	}
	return KeywordArtifactStats{
		Enabled: true,
		Terms:   s.kc.Len(),
		Radius:  s.kc.Radius(),
		Epoch:   s.kc.Epoch(),
		Hits:    s.kc.Hits(),
		Misses:  s.kc.Misses(),
		Bytes:   s.kc.Bytes(),
	}
}

// session holds one query's execution state: the (possibly projected)
// engine plus the mapping back to the searcher's graph.
type session struct {
	s      *Searcher
	q      Query
	eng    *core.Engine
	sub    *graph.Subgraph // nil when running directly on s.g
	inNode map[NodeID]bool // scratch for edge re-induction
	start  time.Time

	// tr is the query's trace (nil when the context carries none); the
	// enumerate span runs from the first Next to exhaustion, closed at
	// most once by finishEnum.
	tr        *obs.Trace
	enumStart time.Time
	enumDone  bool
}

// noteNext marks the start of enumeration on the first advance.
func (sess *session) noteNext() {
	if sess.tr != nil && sess.enumStart.IsZero() {
		sess.enumStart = time.Now()
	}
}

// finishEnum closes the enumerate span, once. It runs when the
// iterator reports exhaustion, and again (as a no-op) from the trace's
// finisher for queries abandoned mid-enumeration.
func (sess *session) finishEnum() {
	if sess.tr == nil || sess.enumDone {
		return
	}
	sess.enumDone = true
	if sess.enumStart.IsZero() {
		return // never advanced: no enumerate span
	}
	sess.tr.RecordSpan("enumerate", sess.enumStart)
}

func (s *Searcher) newSession(ctx context.Context, q Query) (*session, error) {
	if len(q.Keywords) == 0 {
		return nil, core.ErrNoKeywords
	}
	// NaN compares false against everything, so `< 0` alone would let
	// NaN (and +Inf) through and poison every distance comparison.
	if math.IsNaN(q.Rmax) || math.IsInf(q.Rmax, 0) {
		return nil, fmt.Errorf("commdb: non-finite Rmax %v", q.Rmax)
	}
	if q.Rmax < 0 {
		return nil, fmt.Errorf("commdb: negative Rmax %v", q.Rmax)
	}
	bud := govern.New(ctx, q.Limits)
	tr := obs.FromContext(ctx)
	sess := &session{s: s, q: q, tr: tr, start: time.Now()}
	if tr != nil {
		if s.ix != nil {
			tr.SetLabel("projected", "true")
		} else {
			tr.SetLabel("projected", "false")
		}
		// Identity labels make every trace self-describing, so the
		// continuous layer (slow-query capture, per-class aggregates)
		// can classify a trace without re-deriving the query.
		tr.SetLabel("fingerprint", q.Fingerprint())
		tr.SetLabel("keywords", strings.Join(q.Normalized().Keywords, ","))
		tr.SetLabel("rmax", strconv.FormatFloat(q.Rmax, 'g', -1, 64))
		tr.SetLabel("parallelism", strconv.Itoa(s.par))
		// Snapshot what the query consumed once the trace is finalized;
		// the enumerate span is also closed here for queries abandoned
		// mid-enumeration.
		tr.OnFinish(func(t *obs.Trace) {
			sess.finishEnum()
			for _, r := range govern.AllResources {
				if n := bud.Spent(r); n > 0 {
					t.Add("budget_"+strings.ReplaceAll(string(r), "-", "_"), n)
				}
			}
		})
	}
	target := s.g
	var ft *fulltext.Index = s.ft
	if s.ix != nil {
		if q.Rmax > s.ix.R() {
			return nil, fmt.Errorf("commdb: Rmax %v exceeds the index radius %v given to WithIndex", q.Rmax, s.ix.R())
		}
		proj, err := s.ix.ProjectTrace(q.Keywords, q.Rmax, bud, tr)
		if err != nil {
			return nil, err
		}
		sess.sub = proj.Sub
		target = proj.Sub.G
		ft = nil // projected graphs are small; scanning is fine
	}
	endInit := tr.StartSpan("engine_init")
	ecfg := core.EngineConfig{Pool: s.pool, Parallelism: s.par}
	// Keyword artifacts stand in for full-set runs only on un-projected
	// execution (projection remaps node ids) and only when the query
	// carries no work-shape limits: an artifact hit performs none of the
	// live run's relaxation work, so budgets bounding that work would
	// trip at different points than cold execution and break the
	// byte-identity contract. FullSet itself rejects radii beyond the
	// store's.
	if s.kc != nil && sess.sub == nil &&
		q.Limits.MaxRelaxations == 0 && q.Limits.MaxHeapBytes == 0 {
		ecfg.Neighbors = s.kc
	}
	eng, err := core.NewEngineCfg(target, ft, q.Keywords, q.Rmax, ecfg)
	if err != nil {
		return nil, err
	}
	eng.SetCostFunction(q.Cost)
	if s.ranker != nil {
		eng.SetRanker(s.ranker)
	}
	eng.SetBudget(bud)
	eng.SetTrace(tr)
	// Fan the per-keyword full-set Dijkstras across the workers now,
	// inside the engine_init span; the enumerators find them cached.
	eng.PrecomputeNeighborSets()
	endInit()
	sess.eng = eng
	return sess, nil
}

// recoverQueryPanic converts a panic escaping an internal query loop
// into an error at the public boundary, so an engine bug fails one
// query instead of the process.
func recoverQueryPanic(p any) error {
	return fmt.Errorf("%w: %v", ErrInternal, p)
}

// mapBack translates a community from the projected ID space to the
// searcher's graph and re-induces its edges over the full graph (the
// projection preserves all distances but may omit induced edges that
// lie on no short center→keyword path).
func (sess *session) mapBack(r *Community) *Community {
	if sess.sub == nil {
		return r
	}
	toParent := sess.sub.ToParent
	mapped := &Community{
		Core:   make(Core, len(r.Core)),
		Cost:   r.Cost,
		Knodes: mapIDs(r.Knodes, toParent),
		Cnodes: mapIDs(r.Cnodes, toParent),
		Pnodes: mapIDs(r.Pnodes, toParent),
		Nodes:  mapIDs(r.Nodes, toParent),
		// The radii are distance-derived and the projection preserves
		// all relevant distances, so they carry over unchanged.
		ReuseRadius: r.ReuseRadius,
		CoreRadius:  r.CoreRadius,
	}
	for i, v := range r.Core {
		mapped.Core[i] = toParent[v]
	}
	sort.Slice(mapped.Nodes, func(i, j int) bool { return mapped.Nodes[i] < mapped.Nodes[j] })
	sort.Slice(mapped.Cnodes, func(i, j int) bool { return mapped.Cnodes[i] < mapped.Cnodes[j] })
	sort.Slice(mapped.Pnodes, func(i, j int) bool { return mapped.Pnodes[i] < mapped.Pnodes[j] })
	sort.Slice(mapped.Knodes, func(i, j int) bool { return mapped.Knodes[i] < mapped.Knodes[j] })

	// Re-induce edges over the parent graph.
	if sess.inNode == nil {
		sess.inNode = make(map[NodeID]bool, len(mapped.Nodes)*2)
	} else {
		clear(sess.inNode)
	}
	for _, v := range mapped.Nodes {
		sess.inNode[v] = true
	}
	for _, u := range mapped.Nodes {
		for _, e := range sess.s.g.OutEdges(u) {
			if sess.inNode[e.To] {
				mapped.Edges = append(mapped.Edges, EdgePair{From: u, To: e.To})
			}
		}
	}
	return mapped
}

// mapBackCore translates one core to the searcher's graph.
func (sess *session) mapBackCore(cc CoreCost) CoreCost {
	if sess.sub == nil {
		return cc
	}
	mapped := make(Core, len(cc.Core))
	for i, v := range cc.Core {
		mapped[i] = sess.sub.ToParent[v]
	}
	return CoreCost{Core: mapped, Cost: cc.Cost}
}

func mapIDs(in []NodeID, toParent []NodeID) []NodeID {
	out := make([]NodeID, len(in))
	for i, v := range in {
		out[i] = toParent[v]
	}
	return out
}

// Algorithm selects which of the paper's enumerations a search runs.
type Algorithm int

const (
	// AlgoAll is COMM-all (Algorithm 1): every community, polynomial
	// delay, duplication-free. The first community returned is a
	// minimum-cost one; the rest follow in enumeration (not ranking)
	// order.
	AlgoAll Algorithm = iota
	// AlgoTopK is COMM-k (Algorithm 5): communities in non-decreasing
	// cost order, with no fixed k — every Next produces the next best
	// community, so k can be enlarged interactively at no extra cost.
	AlgoTopK
)

// String names the algorithm as labeled in traces.
func (a Algorithm) String() string {
	if a == AlgoTopK {
		return "comm_k"
	}
	return "comm_all"
}

// enumerator is the common face of the core enumerators.
type enumerator interface {
	Next() (*Community, bool)
	NextCore() (CoreCost, bool)
	Err() error
}

// Iterator streams one query's communities. Both algorithms return the
// same implementation (*Results); the interface is the contract.
//
// When the query carries Limits or a cancelable context, Next may
// return ok == false before the query is exhausted; Err then reports
// why, and the communities already returned are a valid partial set
// (for AlgoTopK, a valid ranking prefix).
type Iterator interface {
	// Next returns the next community, or ok == false when the query is
	// exhausted or stopped early (see Err).
	Next() (*Community, bool)
	// NextCore advances without materializing the community subgraph;
	// cheaper when only cores and costs are needed.
	NextCore() (CoreCost, bool)
	// Err reports why the enumeration stopped: nil after a clean
	// exhaustion, or the stop reason — ErrCanceled,
	// ErrDeadlineExceeded, an ErrBudgetExhausted (match with
	// errors.As), or a recovered internal panic. It is meaningful once
	// Next or NextCore has returned ok == false.
	Err() error
	// Close releases the query's resources: it stops any in-flight
	// parallel materialization, returns pooled workspaces, and reports
	// the query to the searcher's Collector. Exhausting the iterator
	// closes it implicitly; Close is idempotent and returns Err.
	Close() error
}

// Results is the iterator over one query's communities, returned by
// All/TopK/SearchCtx. See Iterator for the contract.
//
// On a searcher with parallelism >= 2 the first Next starts the
// materialization pipeline: enumeration keeps producing cores in paper
// order on one goroutine while GetCommunity calls fan out across
// workers, and a reorder buffer preserves the exact sequential
// emission order. Callers that abandon a Results mid-stream must call
// Close to stop those workers; iterating to exhaustion closes
// implicitly.
type Results struct {
	sess *session
	algo Algorithm
	enum enumerator
	pipe *core.Pipeline

	err      error // panic recovered at the public boundary
	done     bool  // enumeration finished (naturally or stopped)
	closed   bool  // resources released, collector observed
	produced int
}

// AllIterator enumerates every community of a query.
//
// Deprecated: use the Iterator interface or *Results.
type AllIterator = Results

// TopKIterator enumerates communities in non-decreasing cost order.
//
// Deprecated: use the Iterator interface or *Results.
type TopKIterator = Results

// SearchCtx starts an enumeration of q under algo, bound to ctx:
// canceling ctx (or hitting its deadline) stops the enumeration within
// a bounded number of Next calls, with the reason readable from Err.
func (s *Searcher) SearchCtx(ctx context.Context, algo Algorithm, q Query) (it *Results, err error) {
	defer func() {
		if p := recover(); p != nil {
			it, err = nil, recoverQueryPanic(p)
		}
	}()
	sess, err := s.newSession(ctx, q)
	if err != nil {
		return nil, err
	}
	sess.tr.SetLabel("algorithm", algo.String())
	r := &Results{sess: sess, algo: algo}
	if algo == AlgoTopK {
		r.enum = core.NewTopK(sess.eng)
	} else {
		r.enum = core.NewAll(sess.eng)
	}
	return r, nil
}

// All starts a COMM-all enumeration (see AlgoAll).
func (s *Searcher) All(q Query) (*Results, error) {
	return s.SearchCtx(context.Background(), AlgoAll, q)
}

// AllCtx is All bound to a context.
func (s *Searcher) AllCtx(ctx context.Context, q Query) (*Results, error) {
	return s.SearchCtx(ctx, AlgoAll, q)
}

// TopK starts a COMM-k enumeration (see AlgoTopK).
func (s *Searcher) TopK(q Query) (*Results, error) {
	return s.SearchCtx(context.Background(), AlgoTopK, q)
}

// TopKCtx is TopK bound to a context.
func (s *Searcher) TopKCtx(ctx context.Context, q Query) (*Results, error) {
	return s.SearchCtx(ctx, AlgoTopK, q)
}

// startPipeline begins parallel materialization when the searcher is
// parallel; once started, the wrapped enumerator belongs to the
// pipeline's producer goroutine and must not be touched directly.
func (it *Results) startPipeline() {
	if it.pipe != nil || it.done {
		return
	}
	if par := it.sess.eng.Parallelism(); par >= 2 {
		it.pipe = core.NewPipeline(it.sess.eng, it.enum, par)
	}
}

// Err reports why the enumeration stopped; see Iterator.
func (it *Results) Err() error {
	if it.err != nil {
		return it.err
	}
	if it.pipe != nil {
		return it.pipe.Err()
	}
	return it.enum.Err()
}

// Next returns the next community, or ok == false when the query is
// exhausted or stopped early (see Err).
func (it *Results) Next() (r *Community, ok bool) {
	if it.err != nil || it.done {
		return nil, false
	}
	defer func() {
		if p := recover(); p != nil {
			it.err = recoverQueryPanic(p)
			r, ok = nil, false
		}
	}()
	it.sess.noteNext()
	it.startPipeline()
	var r0 *Community
	if it.pipe != nil {
		_, r0, ok = it.pipe.Next()
	} else {
		r0, ok = it.enum.Next()
	}
	if !ok {
		it.finish()
		return nil, false
	}
	it.produced++
	return it.sess.mapBack(r0), true
}

// NextCore advances without materializing the community subgraph;
// cheaper when only cores and costs are needed. (Once Next has started
// the parallel pipeline, the pipeline still materializes lookahead
// communities; NextCore then returns their cores in order.)
func (it *Results) NextCore() (cc CoreCost, ok bool) {
	if it.err != nil || it.done {
		return CoreCost{}, false
	}
	defer func() {
		if p := recover(); p != nil {
			it.err = recoverQueryPanic(p)
			cc, ok = CoreCost{}, false
		}
	}()
	it.sess.noteNext()
	if it.pipe != nil {
		cc, _, ok = it.pipe.Next()
	} else {
		cc, ok = it.enum.NextCore()
	}
	if !ok {
		it.finish()
		return CoreCost{}, false
	}
	it.produced++
	return it.sess.mapBackCore(cc), true
}

// finish records natural exhaustion and releases resources.
func (it *Results) finish() {
	it.done = true
	it.release()
}

// Close releases the query's resources; see Iterator. It is safe to
// call mid-stream (the remaining communities are discarded) and after
// exhaustion (a no-op beyond returning Err).
func (it *Results) Close() error {
	it.done = true
	it.release()
	return it.Err()
}

// release tears down the pipeline, closes spans, returns workspaces
// and reports to the collector — exactly once.
func (it *Results) release() {
	if it.closed {
		return
	}
	it.closed = true
	if it.pipe != nil {
		it.pipe.Close()
	}
	it.sess.finishEnum()
	it.sess.eng.Close()
	it.observe()
}

// queryCounter numbers collector records for queries run outside any
// serving layer (which mint their own query IDs).
var queryCounter atomic.Int64

// observe reports the finished query to the searcher's collector.
func (it *Results) observe() {
	col := it.sess.s.col
	if col == nil {
		return
	}
	var sum *obs.Summary
	if it.sess.tr != nil {
		sum = it.sess.tr.Summary()
	}
	stop := ""
	if err := it.Err(); err != nil {
		stop = err.Error()
	}
	n := it.sess.q.Normalized()
	rec := obs.NewQueryRecord(
		fmt.Sprintf("search-%d", queryCounter.Add(1)),
		it.algo.String(),
		n.Keywords, n.Rmax, it.produced, it.sess.s.Indexed(),
		it.produced, stop, it.sess.start, time.Since(it.sess.start), sum,
	)
	col.Observe(rec)
}

// Collect drains up to max communities from the iterator (max <= 0
// means all of them), closing it when the enumeration ends. The error
// is the iterator's Err: nil when max was reached or the query was
// cleanly exhausted, the stop reason when governance ended the query
// early — in which case the communities returned alongside it are a
// valid partial set.
func (it *Results) Collect(max int) ([]*Community, error) {
	var out []*Community
	for max <= 0 || len(out) < max {
		r, ok := it.Next()
		if !ok {
			return out, it.Err()
		}
		out = append(out, r)
	}
	return out, nil
}

// CollectAll drains every community, discarding the stop reason.
//
// Deprecated: use Collect, which reports why a drain ended early.
func (it *Results) CollectAll(limit int) []*Community {
	out, _ := it.Collect(limit)
	return out
}

// WriteIndex serializes an indexed searcher's invertedE index so the
// expensive build can be paid once; pair it with WriteGraph. Returns an
// error on an un-indexed searcher.
func (s *Searcher) WriteIndex(w io.Writer) error {
	if s.ix == nil {
		return fmt.Errorf("commdb: searcher has no index to write")
	}
	return s.ix.Write(w)
}

// IndexBytes reports the logical size of the searcher's inverted
// indexes (0 when un-indexed), the statistic the paper reports against
// the raw dataset size.
func (s *Searcher) IndexBytes() int64 {
	if s.ix == nil {
		return 0
	}
	return s.ix.Bytes()
}

// Footprint is the exact memory-accounting tree reported by Footprint
// methods across the system: a named structure with its retained byte
// size, cardinality, and parts whose bytes always sum to the total.
// See internal/prof for the accounting model.
type Footprint = prof.Footprint

// Footprint reports the searcher's exact retained memory: the database
// graph plus either the full inverted-index pair (indexed searchers;
// invertedN appears as a part of the index) or the standalone fulltext
// index (plain searchers). Structures are immutable, so repeated calls
// are cheap.
func (s *Searcher) Footprint() Footprint {
	parts := []Footprint{s.g.Footprint()}
	if s.ix != nil {
		parts = append(parts, s.ix.Footprint())
	} else {
		parts = append(parts, s.ft.Footprint())
	}
	if s.kc != nil {
		parts = append(parts, prof.Footprint{
			Name: "kwcache", Bytes: s.kc.Bytes(), Items: int64(s.kc.Len()),
		})
	}
	f := prof.Group("searcher", parts...)
	f.Items = int64(s.g.NumNodes())
	return f
}
