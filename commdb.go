// Package commdb implements community search over relational databases,
// reproducing "Querying Communities in Relational Databases" (Qin, Yu,
// Chang, Tao — ICDE 2009).
//
// A relational database is materialized as a weighted directed graph
// G_D whose nodes are tuples and whose edges are foreign-key
// references. For an l-keyword query {k_1, …, k_l} with a radius Rmax,
// a community is a multi-center induced subgraph: one keyword node per
// keyword (the core), every center node within distance Rmax of all
// core nodes, and every path node on a short enough center→keyword
// path. The package enumerates all communities, or the top-k by cost,
// in polynomial delay — and the top-k enumerator lets the caller keep
// asking for more results without recomputation.
//
// # Quick start
//
//	g, _ := commdb.PaperExampleGraph()
//	s := commdb.NewSearcher(g)
//	it, _ := s.TopK(commdb.Query{Keywords: []string{"a", "b", "c"}, Rmax: 8})
//	for {
//	    r, ok := it.Next()
//	    if !ok {
//	        break
//	    }
//	    fmt.Println(r.Cost, r.Core)
//	}
//
// For large graphs, build an indexed searcher: queries then run on a
// small projected subgraph (Section VI of the paper) with identical
// results.
package commdb

import (
	"io"

	"commdb/internal/core"
	"commdb/internal/datagen"
	"commdb/internal/graph"
	"commdb/internal/relational"
)

// Re-exported data types. The implementation lives in internal
// packages; these aliases are the supported public names.
type (
	// Graph is the immutable weighted directed database graph G_D.
	Graph = graph.Graph
	// GraphBuilder accumulates nodes and edges into a Graph.
	GraphBuilder = graph.Builder
	// NodeID identifies a node of a Graph.
	NodeID = graph.NodeID
	// EdgePair names a directed edge by its endpoints.
	EdgePair = graph.EdgePair
	// GraphStats summarizes a graph's structure.
	GraphStats = graph.Stats

	// Community is a materialized multi-center community.
	Community = core.Community
	// Core is the identity of a community: one keyword node per query
	// keyword.
	Core = core.Core
	// CoreCost pairs a core with its community cost.
	CoreCost = core.CoreCost

	// Database is the miniature relational substrate.
	Database = relational.Database
	// Schema describes a table.
	Schema = relational.Schema
	// Column describes one attribute.
	Column = relational.Column
	// ForeignKey declares a reference between tables.
	ForeignKey = relational.ForeignKey
	// Value is one typed attribute value.
	Value = relational.Value
	// NodeMap translates between graph nodes and database tuples.
	NodeMap = relational.NodeMap
	// NodeRef identifies the tuple behind a graph node.
	NodeRef = relational.NodeRef
)

// Column type constants for Schema definitions.
const (
	Int    = relational.Int
	String = relational.String
)

// IntV builds an integer Value.
func IntV(v int64) Value { return relational.IntV(v) }

// StrV builds a string Value.
func StrV(v string) Value { return relational.StrV(v) }

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// NewDatabase returns an empty relational database.
func NewDatabase() *Database { return relational.NewDatabase() }

// GraphStatsOf scans a graph and summarizes its structure.
func GraphStatsOf(g *Graph) GraphStats { return graph.ComputeStats(g) }

// WriteGraph serializes a graph in the package's binary format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// ReadGraph deserializes a graph written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// PaperExampleGraph returns the 13-node running example of the paper
// (Fig. 4): keywords "a", "b", "c" with Rmax 8 yield exactly the five
// communities of Table I.
func PaperExampleGraph() (*Graph, []NodeID) { return core.PaperGraph() }

// IntroExampleGraph returns the introduction's co-authorship example
// (Fig. 1): the 2-keyword query {kate, smith} with radius 6 yields the
// two communities of Fig. 3. The map gives node IDs by name ("paper1",
// "paper2", "john", "kate", "jim").
func IntroExampleGraph() (*Graph, map[string]NodeID) { return core.IntroGraph() }

// GenerateDBLP builds a synthetic DBLP-shaped bibliographic database
// (Author, Paper, Write, Cite) calibrated to the statistics of the
// paper's real dataset. authors scales the dataset (the real snapshot
// corresponds to 597000).
func GenerateDBLP(authors int, seed int64) (*Database, error) {
	return datagen.GenerateDBLP(datagen.DBLPParams{Authors: authors, Seed: seed})
}

// GenerateIMDB builds a synthetic IMDB-shaped database (Users, Movies,
// Ratings) calibrated to the paper's real dataset. users scales the
// dataset (the real set has 6040); avgRatings 0 keeps the real density
// of 165.60 ratings per user.
func GenerateIMDB(users int, avgRatings float64, seed int64) (*Database, error) {
	return datagen.GenerateIMDB(datagen.IMDBParams{Users: users, AvgRatingsPerUser: avgRatings, Seed: seed})
}

// GraphFromDatabase materializes a relational database as its database
// graph, with the paper's edge weight w_e((u,v)) = log2(1 + N_in(v)).
// The returned NodeMap translates community nodes back to tuples.
func GraphFromDatabase(db *Database) (*Graph, *NodeMap, error) {
	return db.ToGraph()
}

// CSVOptions controls LoadCSV.
type CSVOptions = relational.CSVOptions

// LoadCSV bulk-inserts CSV rows into a table, converting fields to the
// schema's column types. See relational.LoadCSV.
func LoadCSV(t *relational.Table, r io.Reader, opt CSVOptions) (int, error) {
	return relational.LoadCSV(t, r, opt)
}

// DumpCSV writes a table as CSV with a header row.
func DumpCSV(t *relational.Table, w io.Writer) error {
	return relational.DumpCSV(t, w)
}

// Table is one relation of a Database.
type Table = relational.Table
