//go:build race

package commdb

// raceEnabled reports whether the race detector instruments this test
// binary; timing-sensitive tests scale their deadlines by it.
const raceEnabled = true
