package commdb

// One testing.B benchmark per table and figure of the paper's
// evaluation (Section VII). Each benchmark regenerates its artifact's
// data series through the internal/bench harness on a reduced-scale
// synthetic dataset and reports the headline numbers as custom metrics
// (milliseconds or kilobytes per algorithm, averaged over the sweep).
//
// cmd/benchrunner prints the full row-by-row series for every figure;
// EXPERIMENTS.md records a reference run. The paper-vs-repro comparison
// targets the *shape* (who wins, by what factor), not absolute times:
// the substrate here is a synthetic dataset on a different machine.

import (
	"sync"
	"testing"

	"commdb/internal/bench"
)

var (
	benchOnce sync.Once
	benchDBLP *bench.Dataset
	benchIMDB *bench.Dataset
	benchErr  error
)

// benchDatasets builds the two reduced-scale datasets once per test
// binary: DBLP with 2000 authors (~14K tuples, probe KWF boosted 2.5x)
// and IMDB with 400 users at the real density of 165 ratings each over
// a 1200-movie catalog (~68K tuples; the catalog is held larger than
// the real users:movies ratio so each user rates a few percent of it,
// as real MovieLens users do). Probe KWF is rebased to text-bearing
// tuples (0.1x) with popularity-weighted planting. See EXPERIMENTS.md
// for the calibration rationale.
func benchDatasets(b *testing.B) (*bench.Dataset, *bench.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		benchDBLP, benchErr = bench.BuildDBLPBoosted(2000, 1, 2.5)
		if benchErr != nil {
			return
		}
		benchIMDB, benchErr = bench.BuildIMDBFull(400, 1200, 165, 1, 0.1)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDBLP, benchIMDB
}

// reportSeries runs one registry experiment and reports each column's
// sweep average as a benchmark metric.
func reportSeries(b *testing.B, id string, maxResults int) {
	b.Helper()
	dblp, imdb := benchDatasets(b)
	var exp *bench.Experiment
	for i, e := range bench.Experiments() {
		if e.ID == id {
			exp = &bench.Experiments()[i]
			break
		}
	}
	if exp == nil {
		b.Fatalf("experiment %s not registered", id)
	}
	d := dblp
	if exp.Dataset == "imdb" {
		d = imdb
	}
	b.ResetTimer()
	var last *bench.Series
	for i := 0; i < b.N; i++ {
		s, err := exp.Run(d, maxResults)
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	b.StopTimer()
	for _, col := range last.Columns {
		vals := last.Column(col)
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		b.ReportMetric(sum/float64(len(vals)), col+"_"+metricUnit(last.YLabel))
	}
}

func metricUnit(ylabel string) string {
	if ylabel == "peak KB" {
		return "KB"
	}
	return "ms"
}

// BenchmarkTableI regenerates Table I: the ranked five communities of
// the Fig. 4 example (runner: examples/quickstart, test: TestTableI).
func BenchmarkTableI(b *testing.B) {
	g, _ := PaperExampleGraph()
	s := NewSearcher(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := s.TopK(Query{Keywords: []string{"a", "b", "c"}, Rmax: 8})
		if err != nil {
			b.Fatal(err)
		}
		if got, _ := it.Collect(10); len(got) != 5 {
			b.Fatalf("got %d communities, want 5", len(got))
		}
	}
}

// Fig. 9 — Exp-1, IMDB COMM-all (runner ids fig9a..fig9f).
func BenchmarkFig09aIMDBAllDelayVsKWF(b *testing.B)  { reportSeries(b, "fig9a", 20000) }
func BenchmarkFig09bIMDBAllMemVsKWF(b *testing.B)    { reportSeries(b, "fig9b", 20000) }
func BenchmarkFig09cIMDBAllDelayVsL(b *testing.B)    { reportSeries(b, "fig9c", 20000) }
func BenchmarkFig09dIMDBAllMemVsL(b *testing.B)      { reportSeries(b, "fig9d", 20000) }
func BenchmarkFig09eIMDBAllDelayVsRmax(b *testing.B) { reportSeries(b, "fig9e", 20000) }
func BenchmarkFig09fIMDBAllMemVsRmax(b *testing.B)   { reportSeries(b, "fig9f", 20000) }

// Fig. 10 — Exp-1, IMDB COMM-k (runner ids fig10a..fig10d).
func BenchmarkFig10aIMDBTopKVsKWF(b *testing.B)  { reportSeries(b, "fig10a", 0) }
func BenchmarkFig10bIMDBTopKVsL(b *testing.B)    { reportSeries(b, "fig10b", 0) }
func BenchmarkFig10cIMDBTopKVsRmax(b *testing.B) { reportSeries(b, "fig10c", 0) }
func BenchmarkFig10dIMDBTopKVsK(b *testing.B)    { reportSeries(b, "fig10d", 0) }

// Fig. 11 — Exp-2, DBLP COMM-all plus the COMM-k companion the paper
// summarizes as "similar trends" (runner ids fig11a..fig11f, fig11k).
func BenchmarkFig11aDBLPAllDelayVsKWF(b *testing.B)  { reportSeries(b, "fig11a", 20000) }
func BenchmarkFig11bDBLPAllMemVsKWF(b *testing.B)    { reportSeries(b, "fig11b", 20000) }
func BenchmarkFig11cDBLPAllDelayVsL(b *testing.B)    { reportSeries(b, "fig11c", 20000) }
func BenchmarkFig11dDBLPAllMemVsL(b *testing.B)      { reportSeries(b, "fig11d", 20000) }
func BenchmarkFig11eDBLPAllDelayVsRmax(b *testing.B) { reportSeries(b, "fig11e", 20000) }
func BenchmarkFig11fDBLPAllMemVsRmax(b *testing.B)   { reportSeries(b, "fig11f", 20000) }
func BenchmarkFig11kDBLPTopKVsK(b *testing.B)        { reportSeries(b, "fig11k", 0) }

// Fig. 12 — Exp-3, interactive top-k (runner ids fig12dblp,
// fig12imdb).
func BenchmarkFig12DBLPInteractive(b *testing.B) { reportSeries(b, "fig12dblp", 0) }
func BenchmarkFig12IMDBInteractive(b *testing.B) { reportSeries(b, "fig12imdb", 0) }

// BenchmarkIndexBuildDBLP regenerates the index-construction statistics
// quoted in Section VII's text: build time and index size (runner id:
// printed automatically by cmd/benchrunner for each dataset).
func BenchmarkIndexBuildDBLP(b *testing.B) {
	dblp, _ := benchDatasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewIndexedSearcher(dblp.G, 8)
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}

// BenchmarkProjection measures Algorithm 6 alone: cutting the
// query-specific subgraph out of the full DBLP graph at the default
// operating point.
func BenchmarkProjection(b *testing.B) {
	dblp, _ := benchDatasets(b)
	keywords, err := dblp.Keywords(dblp.Config.Defaults)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var nodes int
	for i := 0; i < b.N; i++ {
		proj, err := dblp.Ix.Project(keywords, dblp.Config.Defaults.Rmax)
		if err != nil {
			b.Fatal(err)
		}
		nodes = proj.Sub.G.NumNodes()
	}
	b.ReportMetric(float64(nodes), "proj_nodes")
}
