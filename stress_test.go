package commdb

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"commdb/internal/obs"
)

// TestSearcherConcurrentStress hammers shared Searchers — indexed and
// un-indexed — from many goroutines with mixed All/TopK/NextCore
// queries. The Searcher documents "safe for concurrent use; each query
// gets its own engine"; this is the test that holds it to that under
// the race detector, and it cross-checks that concurrent results match
// a single-threaded baseline.
func TestSearcherConcurrentStress(t *testing.T) {
	g, _ := PaperExampleGraph()
	plain := NewSearcher(g)
	indexed, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}

	queries := []Query{
		{Keywords: []string{"a", "b", "c"}, Rmax: 8},
		{Keywords: []string{"a", "b"}, Rmax: 8},
		{Keywords: []string{"b", "c"}, Rmax: 6},
		{Keywords: []string{"a"}, Rmax: 4},
	}

	// Single-threaded baseline: count and best cost per query, per
	// searcher (index projection preserves costs, so these agree, but
	// keep the comparison within each searcher to be strict about it).
	type expect struct {
		count    int
		bestCost float64
	}
	baseline := func(s *Searcher, q Query) expect {
		it, err := s.All(q)
		if err != nil {
			t.Fatalf("baseline All(%v): %v", q.Keywords, err)
		}
		var e expect
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			if e.count == 0 {
				e.bestCost = r.Cost
			}
			e.count++
		}
		if err := it.Err(); err != nil {
			t.Fatalf("baseline All(%v) stopped early: %v", q.Keywords, err)
		}
		return e
	}
	searchers := map[string]*Searcher{"plain": plain, "indexed": indexed}
	want := map[string]expect{}
	for name, s := range searchers {
		for qi, q := range queries {
			want[fmt.Sprintf("%s/%d", name, qi)] = baseline(s, q)
		}
	}

	workers, iters := 8, 30
	if raceEnabled {
		iters = 15
	}
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := "plain"
				if (w+i)%2 == 0 {
					name = "indexed"
				}
				s := searchers[name]
				qi := (w * 7) % len(queries)
				q := queries[qi]
				e := want[fmt.Sprintf("%s/%d", name, qi)]
				switch i % 3 {
				case 0: // full COMM-all enumeration
					it, err := s.All(q)
					if err != nil {
						errs <- fmt.Errorf("worker %d: All: %w", w, err)
						return
					}
					n := 0
					for {
						r, ok := it.Next()
						if !ok {
							break
						}
						if n == 0 && r.Cost != e.bestCost {
							errs <- fmt.Errorf("worker %d: %s first cost %v, want %v", w, name, r.Cost, e.bestCost)
							return
						}
						n++
					}
					if err := it.Err(); err != nil {
						errs <- fmt.Errorf("worker %d: All stopped early: %w", w, err)
						return
					}
					if n != e.count {
						errs <- fmt.Errorf("worker %d: %s/%d found %d communities, want %d", w, name, qi, n, e.count)
						return
					}
				case 1: // ranked top-k prefix
					it, err := s.TopK(q)
					if err != nil {
						errs <- fmt.Errorf("worker %d: TopK: %w", w, err)
						return
					}
					got, cerr := it.Collect(3)
					if cerr != nil {
						errs <- fmt.Errorf("worker %d: TopK stopped early: %w", w, cerr)
						return
					}
					if len(got) > 0 && got[0].Cost != e.bestCost {
						errs <- fmt.Errorf("worker %d: %s top-1 cost %v, want %v", w, name, got[0].Cost, e.bestCost)
						return
					}
					for j := 1; j < len(got); j++ {
						if got[j].Cost < got[j-1].Cost {
							errs <- fmt.Errorf("worker %d: top-k out of order: %v then %v", w, got[j-1].Cost, got[j].Cost)
							return
						}
					}
				case 2: // governed cores-only enumeration under a context
					ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
					q2 := q
					q2.Limits = Limits{MaxResults: 2}
					it, err := s.AllCtx(ctx, q2)
					if err != nil {
						cancel()
						errs <- fmt.Errorf("worker %d: AllCtx: %w", w, err)
						return
					}
					n := 0
					for {
						_, ok := it.NextCore()
						if !ok {
							break
						}
						n++
					}
					cancel()
					wantN := e.count
					if wantN > 2 {
						wantN = 2
					}
					if n != wantN {
						errs <- fmt.Errorf("worker %d: governed run granted %d results, want %d", w, n, wantN)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTracedSearchConcurrentStress runs traced queries against shared
// Searchers from many goroutines — the serving stack's steady state,
// where every execution carries a live trace. Each query gets its own
// trace (as in the server), Summary is read mid-enumeration (as the
// REPL's 'stats' does), and the test runs under -race in CI to hold
// the tracing path to the same concurrency contract as the engine.
func TestTracedSearchConcurrentStress(t *testing.T) {
	g, _ := PaperExampleGraph()
	plain := NewSearcher(g)
	indexed, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	searchers := []*Searcher{plain, indexed}
	queries := []Query{
		{Keywords: []string{"a", "b", "c"}, Rmax: 8},
		{Keywords: []string{"a", "b"}, Rmax: 8},
		{Keywords: []string{"b", "c"}, Rmax: 6},
	}

	workers, iters := 8, 20
	if raceEnabled {
		iters = 10
	}
	if testing.Short() {
		iters = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := searchers[(w+i)%len(searchers)]
				q := queries[(w*3+i)%len(queries)]
				tr := obs.NewTrace(fmt.Sprintf("stress-%d-%d", w, i))
				ctx := obs.ContextWithTrace(context.Background(), tr)
				it, err := s.AllCtx(ctx, q)
				if err != nil {
					errs <- fmt.Errorf("worker %d: AllCtx: %w", w, err)
					return
				}
				n := 0
				for {
					if _, ok := it.Next(); !ok {
						break
					}
					n++
					if n == 1 {
						// Mid-enumeration snapshot, like the REPL's 'stats'.
						if tr.Summary().Counter("dijkstra_runs") <= 0 {
							errs <- fmt.Errorf("worker %d: mid-run trace has no dijkstra_runs", w)
							return
						}
					}
				}
				if err := it.Err(); err != nil {
					errs <- fmt.Errorf("worker %d: stopped early: %w", w, err)
					return
				}
				sum := tr.Summary()
				if sum.Counter("emitted") != int64(n) {
					errs <- fmt.Errorf("worker %d: trace emitted=%d, enumerated %d", w, sum.Counter("emitted"), n)
					return
				}
				if sum.Emissions == nil || sum.Emissions.Count != int64(n) {
					errs <- fmt.Errorf("worker %d: emissions %+v, want count %d", w, sum.Emissions, n)
					return
				}
				if _, ok := sum.Span("enumerate"); !ok && n > 0 {
					errs <- fmt.Errorf("worker %d: trace lacks enumerate span", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
