package commdb

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestPublicTrees: the tree baseline through the public API, on the
// introduction example (3 distinct-root trees vs 2 communities).
func TestPublicTrees(t *testing.T) {
	g, ids := IntroExampleGraph()
	s := NewSearcher(g)
	it, err := s.Trees(Query{Keywords: []string{"kate", "smith"}, Rmax: 6})
	if err != nil {
		t.Fatal(err)
	}
	trees := it.Collect(100)
	if len(trees) != 3 {
		t.Fatalf("trees = %d, want 3", len(trees))
	}
	if trees[0].Root != ids["paper2"] {
		t.Fatalf("best tree root = %d, want paper2", trees[0].Root)
	}
	// Ranked order.
	for i := 1; i < len(trees); i++ {
		if trees[i].Cost < trees[i-1].Cost-1e-9 {
			t.Fatal("tree cost order violated")
		}
	}
	if _, err := s.Trees(Query{Rmax: 6}); err == nil {
		t.Fatal("empty keywords should error")
	}
}

// TestPublicMaxCost: the alternative cost function flows through Query.
func TestPublicMaxCost(t *testing.T) {
	g, ids := PaperExampleGraph()
	s := NewSearcher(g)
	it, err := s.TopK(Query{Keywords: []string{"a", "b", "c"}, Rmax: 8, Cost: CostMaxDistance})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := it.Next()
	if !ok {
		t.Fatal("no result")
	}
	if !r.Core.Equal(Core{ids[4], ids[8], ids[6]}) {
		t.Fatalf("rank 1 core = %v", r.Core)
	}
	if math.Abs(r.Cost-4) > 1e-9 {
		t.Fatalf("max-cost = %v, want 4", r.Cost)
	}
	// Indexed searchers honor it too (ordering may differ from sum).
	ix, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	it2, err := ix.TopK(Query{Keywords: []string{"a", "b", "c"}, Rmax: 8, Cost: CostMaxDistance})
	if err != nil {
		t.Fatal(err)
	}
	r2, ok := it2.Next()
	if !ok || math.Abs(r2.Cost-4) > 1e-9 {
		t.Fatalf("indexed max-cost rank 1 = %v", r2)
	}
}

// TestIndexPersistencePublic: save and reload the inverted indexes; the
// reloaded searcher answers identically.
func TestIndexPersistencePublic(t *testing.T) {
	db, err := GenerateDBLP(150, 77)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewIndexedSearcher(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.WriteIndex(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := NewSearcherWithIndex(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Indexed() {
		t.Fatal("loaded searcher should be indexed")
	}
	q := Query{Keywords: []string{"database", "graph"}, Rmax: 7}
	it1, err := s1.All(q)
	if err != nil {
		t.Fatal(err)
	}
	it2, err := s2.All(q)
	if err != nil {
		t.Fatal(err)
	}
	c1 := it1.CollectAll(0)
	c2 := it2.CollectAll(0)
	if len(c1) != len(c2) {
		t.Fatalf("fresh index found %d, loaded %d", len(c1), len(c2))
	}
	if s1.IndexBytes() <= 0 {
		t.Fatal("IndexBytes should be positive")
	}
	if NewSearcher(g).IndexBytes() != 0 {
		t.Fatal("un-indexed searcher should report 0 index bytes")
	}
	if err := NewSearcher(g).WriteIndex(&buf); err == nil {
		t.Fatal("WriteIndex on un-indexed searcher should error")
	}
}

// TestCSVPublic: build a database from CSV data and search it.
func TestCSVPublic(t *testing.T) {
	db := NewDatabase()
	people, err := db.CreateTable(Schema{
		Name: "People",
		Columns: []Column{
			{Name: "Id", Type: Int},
			{Name: "Name", Type: String, FullText: true},
		},
		PrimaryKey: []string{"Id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	knows, err := db.CreateTable(Schema{
		Name: "Knows",
		Columns: []Column{
			{Name: "A", Type: Int},
			{Name: "B", Type: Int},
		},
		PrimaryKey: []string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddForeignKey(ForeignKey{FromTable: "Knows", FromColumn: "A", ToTable: "People"}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddForeignKey(ForeignKey{FromTable: "Knows", FromColumn: "B", ToTable: "People"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCSV(people, strings.NewReader("1,ada lovelace\n2,alan turing\n3,grace hopper\n"), CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCSV(knows, strings.NewReader("1,2\n2,3\n"), CSVOptions{}); err != nil {
		t.Fatal(err)
	}
	g, _, err := GraphFromDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(g)
	it, err := s.All(Query{Keywords: []string{"ada", "grace"}, Rmax: 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := it.CollectAll(0); len(got) != 1 {
		t.Fatalf("CSV-loaded database found %d communities, want 1", len(got))
	}
	var buf bytes.Buffer
	if err := DumpCSV(people, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "grace hopper") {
		t.Fatal("DumpCSV output incomplete")
	}
}
