// Package govern implements query governance: cancellation, deadlines
// and resource budgets threaded through every long-running path of the
// search stack.
//
// The paper's polynomial-delay guarantee bounds the gap *between*
// results, not a query's total cost: COMM-all over a frequent keyword
// set can legally enumerate an exponential number of communities, and
// one Neighbor() pass is a full radius-bounded Dijkstra over the
// projected graph. A server cannot ship an enumeration API with no way
// to cancel, time-bound, or cap a query, so every hot loop in the
// repo periodically consults a Budget and stops early — returning the
// results produced so far plus a typed reason — when the budget trips.
//
// # Cost model
//
// A Budget tracks five resources:
//
//   - relaxations: Dijkstra work units (edge relaxations plus node
//     settlements) across every shortest-path run of the query,
//     including index builds and projections. This is the
//     machine-independent "visited" measure.
//   - neighbor-runs: bounded Dijkstra invocations (the paper's
//     Neighbor() and GetCommunity() passes), the coarse-grained
//     per-result cost the delay analysis counts.
//   - can-tuples: candidate tuples held by the top-k can-list, whose
//     O(l²·k) growth is the paper's only unbounded space term.
//   - heap-bytes: the logical bytes behind those tuples.
//   - results: communities granted to the caller.
//
// # Amortization
//
// Checking a deadline costs a clock read and checking a context costs
// an atomic load; neither belongs in a loop that relaxes an edge in a
// few nanoseconds. Call sites therefore batch: they accumulate work in
// a local counter and call Charge* once per Stride (~1024) operations.
//
// # Concurrency
//
// Every counter is an atomic and the sticky stop reason is a
// lock-free load, so one Budget is safely — and cheaply — shared by
// all the worker goroutines of a parallel query: the fan-out Dijkstras
// of engine init, the materialization pipeline, and a parallel index
// build all charge the same Budget without serializing on a mutex.
// The mutex is only taken on the trip path, to record the first
// failure exactly once.
//
// A nil *Budget is valid everywhere and means "unlimited": every
// method is a no-op on a nil receiver, so ungoverned paths pay one
// branch.
package govern

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Stride is the recommended number of fine-grained operations a hot
// loop performs between Charge* calls. At ~1ns-10ns per operation a
// stride of 1024 bounds the detection latency well under a
// millisecond while keeping governance off the critical path.
const Stride = 1024

// Resource names one budgeted quantity in an ErrBudgetExhausted.
type Resource string

const (
	// ResourceRelaxations counts Dijkstra work units: edge relaxations
	// plus node settlements, summed over every shortest-path run.
	ResourceRelaxations Resource = "relaxations"
	// ResourceNeighborRuns counts bounded Dijkstra invocations.
	ResourceNeighborRuns Resource = "neighbor-runs"
	// ResourceCanTuples counts candidate tuples in the top-k can-list.
	ResourceCanTuples Resource = "can-tuples"
	// ResourceHeapBytes counts the logical bytes of the can-list.
	ResourceHeapBytes Resource = "heap-bytes"
	// ResourceResults counts communities granted to the caller.
	ResourceResults Resource = "results"
)

// AllResources lists every budgeted resource, for callers that snapshot
// consumption across the board (e.g. trace finalization).
var AllResources = []Resource{
	ResourceRelaxations,
	ResourceNeighborRuns,
	ResourceCanTuples,
	ResourceHeapBytes,
	ResourceResults,
}

// ErrBudgetExhausted reports which resource tripped a budget. Spent is
// the amount consumed when the limit was noticed (amortized checking
// may overshoot the limit by up to one Stride).
//
// Match it with errors.As:
//
//	var be govern.ErrBudgetExhausted
//	if errors.As(err, &be) { log.Printf("out of %s", be.Resource) }
type ErrBudgetExhausted struct {
	Resource Resource
	Spent    int64
	Limit    int64
}

func (e ErrBudgetExhausted) Error() string {
	return fmt.Sprintf("budget exhausted: %s (spent %d, limit %d)", e.Resource, e.Spent, e.Limit)
}

// Limits caps one query's resource consumption. The zero value (and a
// zero in any field) means unlimited. Deadline and Timeout compose
// with a context deadline; the earliest wins.
type Limits struct {
	// Deadline is an absolute wall-clock cutoff.
	Deadline time.Time
	// Timeout is a relative cutoff measured from Budget creation. Like
	// context.WithTimeout, a negative Timeout is already expired.
	Timeout time.Duration
	// MaxRelaxations caps total Dijkstra work units (edge relaxations
	// plus node settlements) across the query's shortest-path runs.
	MaxRelaxations int64
	// MaxNeighborRuns caps bounded Dijkstra invocations.
	MaxNeighborRuns int64
	// MaxCanTuples caps the top-k can-list length.
	MaxCanTuples int64
	// MaxHeapBytes caps the top-k can-list's logical bytes.
	MaxHeapBytes int64
	// MaxResults caps how many communities the query may produce.
	MaxResults int64
}

// IsZero reports whether no limit is set.
func (l Limits) IsZero() bool {
	return l.Deadline.IsZero() && l.Timeout == 0 && l.MaxRelaxations == 0 &&
		l.MaxNeighborRuns == 0 && l.MaxCanTuples == 0 && l.MaxHeapBytes == 0 &&
		l.MaxResults == 0
}

// Budget is one query's governance state: a context, a resolved
// deadline, the limits, and the running spend. Once any check fails
// the Budget is tripped: the first failure is recorded and every
// subsequent Charge*/Poll/Err returns it, so all layers of a query
// observe one consistent stop reason.
//
// A Budget is safe for concurrent use: counters are atomics charged
// lock-free from any number of worker goroutines, and the sticky stop
// reason is published through an atomic pointer. Methods on a nil
// *Budget are no-ops returning nil, so a nil Budget is the canonical
// "unlimited".
type Budget struct {
	ctx context.Context

	// deadline/hasDeadline/lim are written once in New and read-only
	// afterwards, so charges need no lock to consult them.
	deadline    time.Time
	hasDeadline bool
	lim         Limits

	relaxations  atomic.Int64
	neighborRuns atomic.Int64
	canTuples    atomic.Int64
	heapBytes    atomic.Int64
	results      atomic.Int64

	// stop is the sticky stop reason; mu serializes only the trip path
	// so the first failure wins exactly once.
	stop atomic.Pointer[error]
	mu   sync.Mutex
}

// New builds a Budget from a context and limits. It returns nil — the
// unlimited budget — when ctx carries no cancellation or deadline and
// lim is zero, so ungoverned queries skip governance entirely.
func New(ctx context.Context, lim Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	_, ctxDeadline := ctx.Deadline()
	if lim.IsZero() && ctx.Done() == nil && !ctxDeadline {
		return nil
	}
	b := &Budget{ctx: ctx, lim: lim}
	b.deadline, b.hasDeadline = effectiveDeadline(ctx, lim, time.Now())
	return b
}

// effectiveDeadline resolves the earliest of the context deadline, the
// absolute limit deadline, and now+Timeout.
func effectiveDeadline(ctx context.Context, lim Limits, now time.Time) (time.Time, bool) {
	var d time.Time
	ok := false
	consider := func(t time.Time) {
		if !ok || t.Before(d) {
			d = t
			ok = true
		}
	}
	if t, has := ctx.Deadline(); has {
		consider(t)
	}
	if !lim.Deadline.IsZero() {
		consider(lim.Deadline)
	}
	if lim.Timeout != 0 {
		consider(now.Add(lim.Timeout))
	}
	return d, ok
}

// Err returns the sticky stop reason, first re-checking cancellation
// and the deadline so a context canceled between charges is noticed on
// the next governance touchpoint.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	return b.check()
}

// Poll is a pure liveness check — cancellation and deadline, no
// counter — for loops that scan rather than expand (e.g. the BestCore
// table scan). Call it once per Stride iterations.
func (b *Budget) Poll() error {
	return b.Err()
}

// ChargeRelaxations adds n Dijkstra work units and checks the budget.
func (b *Budget) ChargeRelaxations(n int64) error {
	if b == nil {
		return nil
	}
	b.relaxations.Add(n)
	return b.check()
}

// ChargeNeighborRun records one bounded Dijkstra invocation.
func (b *Budget) ChargeNeighborRun() error {
	if b == nil {
		return nil
	}
	b.neighborRuns.Add(1)
	return b.check()
}

// ChargeTuple records one can-list tuple of the given logical size.
func (b *Budget) ChargeTuple(bytes int64) error {
	if b == nil {
		return nil
	}
	b.canTuples.Add(1)
	b.heapBytes.Add(bytes)
	return b.check()
}

// ChargeResult grants one result to the caller. Enumerators pre-charge
// at the top of Next, so MaxResults = k yields exactly k results and
// then an ErrBudgetExhausted{Resource: ResourceResults}.
func (b *Budget) ChargeResult() error {
	if b == nil {
		return nil
	}
	b.results.Add(1)
	return b.check()
}

// AtResultsLimit reports whether the results budget is fully granted,
// i.e. the next ChargeResult must trip. The materialization pipeline
// peeks at this to drain in-flight work before taking the final,
// tripping charge: a sticky trip aborts every concurrent Dijkstra, and
// communities already granted must not be voided retroactively.
func (b *Budget) AtResultsLimit() bool {
	if b == nil {
		return false
	}
	return b.lim.MaxResults > 0 && b.results.Load() >= b.lim.MaxResults
}

// Spent reports the current consumption of one resource.
func (b *Budget) Spent(r Resource) int64 {
	if b == nil {
		return 0
	}
	switch r {
	case ResourceRelaxations:
		return b.relaxations.Load()
	case ResourceNeighborRuns:
		return b.neighborRuns.Load()
	case ResourceCanTuples:
		return b.canTuples.Load()
	case ResourceHeapBytes:
		return b.heapBytes.Load()
	case ResourceResults:
		return b.results.Load()
	}
	return 0
}

// check evaluates, in order: the sticky reason, context cancellation,
// the deadline, then each counter against its limit. The first failure
// is recorded and returned forever after.
func (b *Budget) check() error {
	if p := b.stop.Load(); p != nil {
		return *p
	}
	if err := context.Cause(b.ctx); err != nil {
		return b.trip(err)
	}
	if b.hasDeadline && !time.Now().Before(b.deadline) {
		return b.trip(context.DeadlineExceeded)
	}
	type probe struct {
		res   Resource
		spent int64
		limit int64
	}
	for _, p := range []probe{
		{ResourceRelaxations, b.relaxations.Load(), b.lim.MaxRelaxations},
		{ResourceNeighborRuns, b.neighborRuns.Load(), b.lim.MaxNeighborRuns},
		{ResourceCanTuples, b.canTuples.Load(), b.lim.MaxCanTuples},
		{ResourceHeapBytes, b.heapBytes.Load(), b.lim.MaxHeapBytes},
		{ResourceResults, b.results.Load(), b.lim.MaxResults},
	} {
		if p.limit > 0 && p.spent > p.limit {
			return b.trip(ErrBudgetExhausted{Resource: p.res, Spent: p.spent, Limit: p.limit})
		}
	}
	return nil
}

// trip records err as the sticky stop reason unless another goroutine
// beat it; the recorded reason — not necessarily err — is returned, so
// every caller observes the same first failure.
func (b *Budget) trip(err error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p := b.stop.Load(); p != nil {
		return *p
	}
	b.stop.Store(&err)
	return err
}
