package govern

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if b.Err() != nil || b.Poll() != nil {
		t.Fatal("nil budget must never report an error")
	}
	if b.ChargeRelaxations(1<<40) != nil || b.ChargeNeighborRun() != nil ||
		b.ChargeTuple(1<<40) != nil || b.ChargeResult() != nil {
		t.Fatal("nil budget must accept any charge")
	}
	if b.Spent(ResourceResults) != 0 {
		t.Fatal("nil budget spends nothing")
	}
}

func TestNewReturnsNilWhenUngoverned(t *testing.T) {
	if b := New(context.Background(), Limits{}); b != nil {
		t.Fatal("background context + zero limits must yield the nil budget")
	}
	if b := New(nil, Limits{}); b != nil {
		t.Fatal("nil context + zero limits must yield the nil budget")
	}
	if b := New(context.Background(), Limits{MaxResults: 1}); b == nil {
		t.Fatal("a limit must yield a real budget")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if b := New(ctx, Limits{}); b == nil {
		t.Fatal("a cancelable context must yield a real budget")
	}
}

func TestCounterLimits(t *testing.T) {
	cases := []struct {
		name   string
		lim    Limits
		charge func(b *Budget) error
		res    Resource
	}{
		{"relaxations", Limits{MaxRelaxations: 10}, func(b *Budget) error { return b.ChargeRelaxations(4) }, ResourceRelaxations},
		{"neighbor-runs", Limits{MaxNeighborRuns: 2}, func(b *Budget) error { return b.ChargeNeighborRun() }, ResourceNeighborRuns},
		{"can-tuples", Limits{MaxCanTuples: 2}, func(b *Budget) error { return b.ChargeTuple(8) }, ResourceCanTuples},
		{"heap-bytes", Limits{MaxHeapBytes: 100}, func(b *Budget) error { return b.ChargeTuple(48) }, ResourceHeapBytes},
		{"results", Limits{MaxResults: 2}, func(b *Budget) error { return b.ChargeResult() }, ResourceResults},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := New(context.Background(), tc.lim)
			var err error
			for i := 0; i < 100 && err == nil; i++ {
				err = tc.charge(b)
			}
			if err == nil {
				t.Fatal("limit never tripped")
			}
			var be ErrBudgetExhausted
			if !errors.As(err, &be) {
				t.Fatalf("want ErrBudgetExhausted, got %T: %v", err, err)
			}
			if be.Resource != tc.res {
				t.Fatalf("tripped on %q, want %q", be.Resource, tc.res)
			}
			if be.Spent <= be.Limit {
				t.Fatalf("spent %d should exceed limit %d", be.Spent, be.Limit)
			}
			// Sticky: the same reason forever, even via a cheap Poll.
			if got := b.Err(); !errors.Is(got, be) {
				t.Fatalf("Err() = %v, want sticky %v", got, be)
			}
			if got := b.Poll(); !errors.Is(got, be) {
				t.Fatalf("Poll() = %v, want sticky %v", got, be)
			}
		})
	}
}

func TestDeadline(t *testing.T) {
	b := New(context.Background(), Limits{Timeout: time.Millisecond})
	deadline := time.Now().Add(50 * time.Millisecond)
	for b.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("timeout never tripped")
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestAbsoluteDeadline(t *testing.T) {
	b := New(context.Background(), Limits{Deadline: time.Now().Add(-time.Second)})
	if err := b.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestNegativeTimeout: like context.WithTimeout, a negative Timeout is
// already expired — not silently unlimited, which would turn a sign
// typo into an ungoverned query.
func TestNegativeTimeout(t *testing.T) {
	b := New(context.Background(), Limits{Timeout: -time.Millisecond})
	if b == nil {
		t.Fatal("a negative timeout must produce a governed budget")
	}
	if err := b.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{MaxResults: 1000})
	if err := b.ChargeResult(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := b.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Cancellation is sticky even though a later charge would also trip
	// a counter.
	for i := 0; i < 2000; i++ {
		b.ChargeResult()
	}
	if err := b.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation must stay the stop reason, got %v", err)
	}
}

func TestContextCause(t *testing.T) {
	cause := errors.New("shed load")
	ctx, cancel := context.WithCancelCause(context.Background())
	b := New(ctx, Limits{})
	cancel(cause)
	if err := b.Err(); !errors.Is(err, cause) {
		t.Fatalf("want the cancellation cause, got %v", err)
	}
}

func TestEarliestDeadlineWins(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	b := New(ctx, Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if err := b.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("the tighter limit timeout must win, got %v", err)
	}
}

// TestConcurrentCharges exercises one Budget from many goroutines, the
// parallel index-build sharing pattern; run under -race.
func TestConcurrentCharges(t *testing.T) {
	b := New(context.Background(), Limits{MaxRelaxations: 1 << 20})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.ChargeRelaxations(Stride)
				b.Err()
			}
		}()
	}
	wg.Wait()
	var be ErrBudgetExhausted
	if err := b.Err(); !errors.As(err, &be) || be.Resource != ResourceRelaxations {
		t.Fatalf("want relaxations exhaustion, got %v", err)
	}
	if got := b.Spent(ResourceRelaxations); got != 8*1000*Stride {
		t.Fatalf("lost charges: spent %d, want %d", got, 8*1000*Stride)
	}
}
