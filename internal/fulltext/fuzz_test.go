package fulltext

import (
	"testing"
	"unicode"
)

// FuzzTokenize hardens the tokenizer: for any input, tokens are
// non-empty, lowercase, and contain only letters and digits.
func FuzzTokenize(f *testing.F) {
	f.Add("Keyword Search in Relational Databases")
	f.Add("")
	f.Add("C++ & Go_2 数据库")
	f.Add("\x00\xff broken \xf0 utf8")
	f.Fuzz(func(t *testing.T, text string) {
		for _, tok := range Tokenize(text) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator rune %q", tok, r)
				}
				if unicode.IsUpper(r) {
					t.Fatalf("token %q not lowercased", tok)
				}
			}
		}
	})
}
