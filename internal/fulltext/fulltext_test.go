package fulltext

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"commdb/internal/graph"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello", []string{"hello"}},
		{"Keyword Search in Relational Databases", []string{"keyword", "search", "in", "relational", "databases"}},
		{"top-k  queries!!", []string{"top", "k", "queries"}},
		{"C++ & Go_2", []string{"c", "go", "2"}},
		{"  spaces   everywhere  ", []string{"spaces", "everywhere"}},
		{"MixedCASE mixedcase", []string{"mixedcase", "mixedcase"}},
		{"数据库 query", []string{"数据库", "query"}},
		{"a1b2", []string{"a1b2"}},
		{"...", nil},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func buildIndexed(t *testing.T) (*graph.Graph, *Index) {
	t.Helper()
	b := graph.NewBuilder()
	b.AddNode("p1", Tokenize("keyword search in databases")...)
	b.AddNode("p2", Tokenize("community search over graphs")...)
	b.AddNode("p3", Tokenize("graph databases")...)
	b.AddNode("a1", Tokenize("kate green")...)
	b.AddNode("a2") // no terms
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g, Build(g)
}

func TestIndexNodes(t *testing.T) {
	_, ix := buildIndexed(t)
	if got := ix.Nodes("search"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Nodes(search) = %v, want [0 1]", got)
	}
	if got := ix.Nodes("databases"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Nodes(databases) = %v, want [0 2]", got)
	}
	if got := ix.Nodes("kate"); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Nodes(kate) = %v, want [3]", got)
	}
	if got := ix.Nodes("missing"); got != nil {
		t.Fatalf("Nodes(missing) = %v, want nil", got)
	}
	if ix.Count("search") != 2 || ix.Count("nope") != 0 {
		t.Fatal("Count mismatch")
	}
}

func TestIndexKWF(t *testing.T) {
	_, ix := buildIndexed(t)
	if got := ix.KWF("search"); got != 2.0/5.0 {
		t.Fatalf("KWF(search) = %v, want 0.4", got)
	}
	if got := ix.KWF("missing"); got != 0 {
		t.Fatalf("KWF(missing) = %v, want 0", got)
	}
}

func TestTermsNearKWF(t *testing.T) {
	_, ix := buildIndexed(t)
	// Terms with KWF exactly 0.4: "search", "databases". They should
	// come first for target 0.4.
	got := ix.TermsNearKWF(0.4, 2)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	want := map[string]bool{"search": true, "databases": true}
	for _, w := range got {
		if !want[w] {
			t.Fatalf("TermsNearKWF(0.4) = %v, want search+databases first", got)
		}
	}
	// Asking for more terms than exist is fine.
	all := ix.TermsNearKWF(0.2, 1000)
	if len(all) == 0 {
		t.Fatal("expected some terms")
	}
}

func TestIndexByIDAndBytes(t *testing.T) {
	g, ix := buildIndexed(t)
	id, ok := g.Dict().ID("graphs")
	if !ok {
		t.Fatal("graphs not interned")
	}
	if got := ix.NodesByID(id); len(got) != 1 || got[0] != 1 {
		t.Fatalf("NodesByID = %v", got)
	}
	if ix.NodesByID(9999) != nil {
		t.Fatal("out-of-range term ID should return nil")
	}
	if ix.Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
	if ix.Graph() != g {
		t.Fatal("Graph accessor")
	}
}

func TestIndexEmptyGraph(t *testing.T) {
	g, err := graph.NewBuilder().Freeze()
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(g)
	if ix.KWF("x") != 0 {
		t.Fatal("KWF on empty graph should be 0")
	}
	if ix.Nodes("x") != nil {
		t.Fatal("Nodes on empty graph should be nil")
	}
}

// TestTokenizeQuickIdempotent: re-tokenizing the joined tokens of any
// input reproduces the same token sequence (tokens contain no
// separators by construction).
func TestTokenizeQuickIdempotent(t *testing.T) {
	prop := func(text string) bool {
		first := Tokenize(text)
		again := Tokenize(strings.Join(first, " "))
		if len(first) != len(again) {
			return false
		}
		for i := range first {
			if first[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
