// Package fulltext provides the tokenizer and the keyword→nodes
// inverted index (the paper's invertedN / "full text index [1]") over a
// database graph, plus keyword-frequency (KWF) statistics used to pick
// the query keywords of the paper's experiments (Tables III and V).
package fulltext

import (
	"sort"
	"strings"
	"unicode"

	"commdb/internal/graph"
	"commdb/internal/prof"
)

// Tokenize splits text into lowercase terms: maximal runs of letters
// and digits. It is used both when loading tuples into the graph and
// when parsing user queries, so the two sides agree on term boundaries.
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// Index is the invertedN index: for every interned term, the sorted
// list of nodes containing it.
type Index struct {
	g        *graph.Graph
	postings [][]graph.NodeID // indexed by term ID
	nodes    int
}

// Build scans the graph once and constructs its inverted node index.
func Build(g *graph.Graph) *Index {
	ix := &Index{
		g:        g,
		postings: make([][]graph.NodeID, g.Dict().Size()),
		nodes:    g.NumNodes(),
	}
	// First pass: count postings per term to allocate exactly.
	counts := make([]int32, g.Dict().Size())
	for v := 0; v < g.NumNodes(); v++ {
		for _, t := range g.Terms(graph.NodeID(v)) {
			counts[t]++
		}
	}
	for t, c := range counts {
		if c > 0 {
			ix.postings[t] = make([]graph.NodeID, 0, c)
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, t := range g.Terms(graph.NodeID(v)) {
			ix.postings[t] = append(ix.postings[t], graph.NodeID(v))
		}
	}
	return ix
}

// Graph returns the indexed graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Nodes returns the nodes containing term (already lowercase), or nil
// when the term does not occur. The slice aliases index storage.
func (ix *Index) Nodes(term string) []graph.NodeID {
	id, ok := ix.g.Dict().ID(term)
	if !ok {
		return nil
	}
	return ix.postings[id]
}

// NodesByID returns the posting list for an interned term ID.
func (ix *Index) NodesByID(termID int32) []graph.NodeID {
	if int(termID) >= len(ix.postings) {
		return nil
	}
	return ix.postings[termID]
}

// Count reports how many nodes contain the term.
func (ix *Index) Count(term string) int { return len(ix.Nodes(term)) }

// KWF reports the keyword frequency of term: the fraction of graph
// nodes containing it, the selectivity axis of the paper's experiments.
func (ix *Index) KWF(term string) float64 {
	if ix.nodes == 0 {
		return 0
	}
	return float64(len(ix.Nodes(term))) / float64(ix.nodes)
}

// TermsNearKWF returns up to max terms whose KWF is closest to target,
// ordered by closeness. Used by the benchmark harness to assemble
// keyword sets analogous to Tables III and V.
func (ix *Index) TermsNearKWF(target float64, max int) []string {
	type cand struct {
		term string
		diff float64
	}
	var cands []cand
	for id, post := range ix.postings {
		if len(post) == 0 {
			continue
		}
		f := float64(len(post)) / float64(ix.nodes)
		d := f - target
		if d < 0 {
			d = -d
		}
		cands = append(cands, cand{term: ix.g.Dict().Word(int32(id)), diff: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].diff != cands[j].diff {
			return cands[i].diff < cands[j].diff
		}
		return cands[i].term < cands[j].term
	})
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.term
	}
	return out
}

// Bytes reports the exact retained memory of the index; it is the root
// total of Footprint.
func (ix *Index) Bytes() int64 { return ix.Footprint().Bytes }

// Footprint returns the exact accounting entry for invertedN: the
// outer posting-list array (each element is a 24-byte slice header)
// plus every posting's backing array (4 bytes per node ID). Items is
// the total number of postings.
func (ix *Index) Footprint() prof.Footprint {
	f := prof.Footprint{
		Name:  "invertedN",
		Bytes: prof.SliceBytes(cap(ix.postings), 24),
	}
	for _, p := range ix.postings {
		f.Bytes += int64(cap(p)) * 4
		f.Items += int64(len(p))
	}
	return f
}
