package graph

import (
	"math/rand"
	"testing"
)

func TestInducedSubgraph(t *testing.T) {
	g, ids := buildDiamond(t)
	a, c, _, e := ids[0], ids[1], ids[2], ids[3]
	s, err := Induced(g, []NodeID{a, c, e})
	if err != nil {
		t.Fatal(err)
	}
	if s.G.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", s.G.NumNodes())
	}
	// Surviving edges: a->c (1), c->e (3), e->a (5). a->d and d->e drop.
	if s.G.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", s.G.NumEdges())
	}
	la, ok := s.FromParent(a)
	if !ok {
		t.Fatal("a should map into subgraph")
	}
	lc, _ := s.FromParent(c)
	if w, ok := s.G.EdgeWeight(la, lc); !ok || w != 1 {
		t.Fatalf("edge a->c in subgraph = %v,%v", w, ok)
	}
	if s.ToParent[la] != a {
		t.Fatal("ToParent should invert FromParent")
	}
	if _, ok := s.FromParent(ids[2]); ok {
		t.Fatal("d should not map into subgraph")
	}
	// Terms survive with shared dictionary.
	ka, _ := g.Dict().ID("ka")
	if !s.G.HasTerm(la, ka) {
		t.Fatal("term ka should survive projection")
	}
	if s.G.Dict() != g.Dict() {
		t.Fatal("dictionary must be shared")
	}
}

func TestExtractExplicitEdges(t *testing.T) {
	g, ids := buildDiamond(t)
	a, c, d, e := ids[0], ids[1], ids[2], ids[3]
	s, err := Extract(g, []NodeID{a, c, d, e}, []EdgePair{{a, c}, {d, e}})
	if err != nil {
		t.Fatal(err)
	}
	if s.G.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", s.G.NumEdges())
	}
}

func TestExtractZeroEdges(t *testing.T) {
	g, ids := buildDiamond(t)
	s, err := Extract(g, []NodeID{ids[0]}, []EdgePair{})
	if err != nil {
		t.Fatal(err)
	}
	if s.G.NumNodes() != 1 || s.G.NumEdges() != 0 {
		t.Fatalf("got %d nodes %d edges", s.G.NumNodes(), s.G.NumEdges())
	}
}

func TestExtractErrors(t *testing.T) {
	g, ids := buildDiamond(t)
	a, c := ids[0], ids[1]
	if _, err := Extract(g, []NodeID{a}, []EdgePair{{a, c}}); err == nil {
		t.Fatal("edge endpoint outside node list should error")
	}
	if _, err := Extract(g, []NodeID{a, c}, []EdgePair{{c, a}}); err == nil {
		t.Fatal("non-existent parent edge should error")
	}
	if _, err := Induced(g, []NodeID{a, a}); err == nil {
		t.Fatal("duplicate node should error")
	}
	if _, err := Induced(g, []NodeID{99}); err == nil {
		t.Fatal("out-of-range node should error")
	}
}

func TestInducedRandomAgreesWithDirectCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		b := NewBuilder()
		n := rng.Intn(40) + 5
		for i := 0; i < n; i++ {
			b.AddNode("")
		}
		for i := 0; i < n*3; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), float64(rng.Intn(9)+1))
		}
		g, err := b.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		var nodes []NodeID
		in := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				nodes = append(nodes, NodeID(i))
				in[i] = true
			}
		}
		if len(nodes) == 0 {
			continue
		}
		s, err := Induced(g, nodes)
		if err != nil {
			t.Fatal(err)
		}
		// Count edges with both endpoints inside directly.
		want := 0
		for u := 0; u < n; u++ {
			if !in[u] {
				continue
			}
			for _, e := range g.OutEdges(NodeID(u)) {
				if in[e.To] {
					want++
				}
			}
		}
		if s.G.NumEdges() != want {
			t.Fatalf("trial %d: induced has %d edges, want %d", trial, s.G.NumEdges(), want)
		}
	}
}
