package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return g2
}

func assertGraphsEqual(t *testing.T, g, g2 *Graph) {
	t.Helper()
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := NodeID(v)
		if g.Label(id) != g2.Label(id) {
			t.Fatalf("label mismatch at %d", v)
		}
		ts, ts2 := g.Terms(id), g2.Terms(id)
		if len(ts) != len(ts2) {
			t.Fatalf("terms mismatch at %d", v)
		}
		for i := range ts {
			if g.Dict().Word(ts[i]) != g2.Dict().Word(ts2[i]) {
				t.Fatalf("term %d of node %d mismatch", i, v)
			}
		}
		es, es2 := g.OutEdges(id), g2.OutEdges(id)
		if len(es) != len(es2) {
			t.Fatalf("out degree mismatch at %d", v)
		}
		for i := range es {
			if es[i] != es2[i] {
				t.Fatalf("edge %d of node %d: %v vs %v", i, v, es[i], es2[i])
			}
		}
	}
}

func TestIORoundTripSmall(t *testing.T) {
	g, _ := buildDiamond(t)
	assertGraphsEqual(t, g, roundTrip(t, g))
}

func TestIORoundTripEmpty(t *testing.T) {
	g, err := NewBuilder().Freeze()
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, roundTrip(t, g))
}

func TestIORoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		b := NewBuilder()
		n := rng.Intn(100) + 1
		words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
		for i := 0; i < n; i++ {
			var ts []string
			for _, w := range words {
				if rng.Intn(3) == 0 {
					ts = append(ts, w)
				}
			}
			b.AddNode("node", ts...)
		}
		for i := 0; i < n*4; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), rng.Float64()*10)
		}
		g, err := b.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		assertGraphsEqual(t, g, roundTrip(t, g))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a graph at all")); err == nil {
		t.Fatal("Read should reject bad magic")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("Read should reject empty input")
	}
	// Truncated payload after a valid header.
	g, _ := buildDiamondIO(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("Read should reject truncated input")
	}
}

func buildDiamondIO(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	return buildDiamond(t)
}
