package graph

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the binary graph reader: arbitrary input must yield
// a clean error or a valid graph, never a panic or runaway allocation.
func FuzzRead(f *testing.F) {
	// Seed with a valid serialized graph and a few mutations.
	b := NewBuilder()
	u := b.AddNode("u", "kw")
	v := b.AddNode("v")
	b.AddEdge(u, v, 1.5)
	b.SetNodeWeight(v, 2)
	g, err := b.Freeze()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("CDBG"))
	f.Add([]byte{})
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 8 {
		mutated[6] ^= 0xFF
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd length prefixes turning into huge
		// allocations by bounding the input.
		if len(data) > 1<<16 {
			return
		}
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed graph must be internally consistent.
		if g.NumNodes() < 0 || g.NumEdges() < 0 {
			t.Fatal("negative sizes")
		}
		for v := 0; v < g.NumNodes(); v++ {
			for _, e := range g.OutEdges(NodeID(v)) {
				if e.To < 0 || int(e.To) >= g.NumNodes() {
					t.Fatalf("edge to %d outside graph", e.To)
				}
			}
		}
	})
}
