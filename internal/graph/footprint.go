package graph

import "commdb/internal/prof"

// Footprint returns the exact accounting tree for the graph's retained
// memory: both CSR adjacency directions, the term CSR, per-node labels,
// node weights, and the shared term dictionary. Slice parts are exact
// over the backing arrays (capacity × element size + header); the
// dictionary's intern map is the one estimated part (Go map internals
// are not introspectable), flagged in DESIGN. Graphs are immutable, so
// the tree is computed once and cached.
func (g *Graph) Footprint() prof.Footprint {
	g.footOnce.Do(func() {
		labels := prof.Footprint{
			Name:  "labels",
			Bytes: prof.SliceBytes(cap(g.labels), 16),
			Items: int64(len(g.labels)),
		}
		for _, l := range g.labels {
			labels.Bytes += int64(len(l))
		}
		parts := []prof.Footprint{
			{Name: "out_heads", Bytes: prof.SliceBytes(cap(g.outHead), 4), Items: int64(len(g.outHead))},
			{Name: "out_edges", Bytes: prof.SliceBytes(cap(g.outEdge), 16), Items: int64(len(g.outEdge))},
			{Name: "in_heads", Bytes: prof.SliceBytes(cap(g.inHead), 4), Items: int64(len(g.inHead))},
			{Name: "in_edges", Bytes: prof.SliceBytes(cap(g.inEdge), 16), Items: int64(len(g.inEdge))},
			{Name: "term_heads", Bytes: prof.SliceBytes(cap(g.termHead), 4), Items: int64(len(g.termHead))},
			{Name: "term_list", Bytes: prof.SliceBytes(cap(g.termList), 4), Items: int64(len(g.termList))},
			labels,
		}
		if g.nodeWeight != nil {
			parts = append(parts, prof.Footprint{
				Name:  "node_weights",
				Bytes: prof.SliceBytes(cap(g.nodeWeight), 8),
				Items: int64(len(g.nodeWeight)),
			})
		}
		parts = append(parts, g.dict.Footprint())
		g.foot = prof.Group("graph", parts...)
		g.foot.Items = int64(g.NumNodes())
	})
	return g.foot
}

// Footprint returns the dictionary's accounting entry: the word slice
// and string contents exactly, plus an estimate of the intern map
// (48 bytes/entry of bucket overhead + key header; key bytes are shared
// with the word slice's strings and counted once there).
func (d *Dict) Footprint() prof.Footprint {
	f := prof.Footprint{
		Name:  "dict",
		Bytes: prof.SliceBytes(cap(d.words), 16),
		Items: int64(len(d.words)),
	}
	for _, w := range d.words {
		f.Bytes += int64(len(w))
	}
	f.Bytes += int64(len(d.ids)) * 48
	return f
}
