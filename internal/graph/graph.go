// Package graph implements the weighted directed database graph G_D of
// the paper: nodes are tuples of a relational database, edges are
// foreign-key references, and every node carries the terms (keywords)
// extracted from its tuple's text attributes.
//
// Graphs are immutable once frozen from a Builder. Adjacency is stored
// in compressed sparse row (CSR) form in both directions, so forward
// Dijkstra (source expansion) and reverse Dijkstra (the paper's
// virtual-sink trick in Neighbor and GetCommunity) are both cache
// friendly and allocation free.
package graph

import (
	"sync"

	"commdb/internal/prof"
)

// NodeID identifies a node within a Graph. IDs are dense, starting at 0.
type NodeID = int32

// Edge is one adjacency entry: the neighbouring node and the weight of
// the connecting directed edge. In the forward lists To is the head of
// the edge; in the reverse lists To is the tail.
type Edge struct {
	To     NodeID
	Weight float64
}

// EdgePair names a directed edge of a graph by its endpoints.
type EdgePair struct {
	From NodeID
	To   NodeID
}

// Graph is an immutable weighted directed graph with per-node labels
// and term lists. Create graphs with a Builder.
type Graph struct {
	outHead []int32
	outEdge []Edge
	inHead  []int32
	inEdge  []Edge

	labels []string
	// termHead/termList store each node's interned term IDs in CSR form.
	termHead []int32
	termList []int32
	dict     *Dict

	// nodeWeight is nil when every node weighs zero (the paper's
	// default; footnote 1 notes node weights as a supported extension).
	nodeWeight []float64

	// foot caches the exact accounting tree; graphs are immutable so
	// it is computed once and scrapes stay cheap.
	footOnce sync.Once
	foot     prof.Footprint
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.outHead) - 1 }

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outEdge) }

// OutEdges returns the edges leaving v. The returned slice aliases the
// graph's storage and must not be modified.
func (g *Graph) OutEdges(v NodeID) []Edge {
	return g.outEdge[g.outHead[v]:g.outHead[v+1]]
}

// InEdges returns the edges entering v; each entry's To field holds the
// tail (source) of the incoming edge. The returned slice aliases the
// graph's storage and must not be modified.
func (g *Graph) InEdges(v NodeID) []Edge {
	return g.inEdge[g.inHead[v]:g.inHead[v+1]]
}

// OutDegree reports the number of edges leaving v.
func (g *Graph) OutDegree(v NodeID) int { return int(g.outHead[v+1] - g.outHead[v]) }

// InDegree reports the number of edges entering v.
func (g *Graph) InDegree(v NodeID) int { return int(g.inHead[v+1] - g.inHead[v]) }

// Label returns the display label of v (for tuples, typically
// "Table:PrimaryKey" or the tuple's human-readable text).
func (g *Graph) Label(v NodeID) string { return g.labels[v] }

// Terms returns the interned term IDs of v. The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Terms(v NodeID) []int32 {
	return g.termList[g.termHead[v]:g.termHead[v+1]]
}

// HasTerm reports whether node v contains the interned term id.
func (g *Graph) HasTerm(v NodeID, term int32) bool {
	for _, t := range g.Terms(v) {
		if t == term {
			return true
		}
	}
	return false
}

// Dict returns the term dictionary shared by all nodes of the graph.
func (g *Graph) Dict() *Dict { return g.dict }

// NodeWeight returns the weight of node v (zero unless the builder set
// one). Path costs count the node weights of every node on a path
// except the path's source.
func (g *Graph) NodeWeight(v NodeID) float64 {
	if g.nodeWeight == nil {
		return 0
	}
	return g.nodeWeight[v]
}

// NodeWeights exposes the raw node weight slice (nil when all zero);
// shortest-path code uses it to avoid per-node method calls.
func (g *Graph) NodeWeights() []float64 { return g.nodeWeight }

// EdgeWeight returns the weight of the directed edge (u,v) and whether
// such an edge exists. If parallel edges exist, the smallest weight is
// returned.
func (g *Graph) EdgeWeight(u, v NodeID) (float64, bool) {
	best, ok := 0.0, false
	for _, e := range g.OutEdges(u) {
		if e.To == v && (!ok || e.Weight < best) {
			best, ok = e.Weight, true
		}
	}
	return best, ok
}

// Bytes reports the exact retained memory of the graph structure in
// bytes (adjacency, terms, labels, dictionary). It is the root total
// of Footprint.
func (g *Graph) Bytes() int64 { return g.Footprint().Bytes }
