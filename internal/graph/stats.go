package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes the structure of a graph, mirroring the dataset
// characteristics the paper reports in Section VII (node/edge counts
// and average degrees, which explain the different default Rmax values
// for DBLP and IMDB).
type Stats struct {
	Nodes       int
	Edges       int
	AvgOutDeg   float64
	MaxOutDeg   int
	AvgInDeg    float64
	MaxInDeg    int
	TermCount   int     // distinct terms in the dictionary
	AvgTerms    float64 // average terms per node
	MinWeight   float64
	MaxWeight   float64
	MedWeight   float64
	IsolatedCnt int // nodes with no edges in either direction
}

// ComputeStats scans g once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		TermCount: g.Dict().Size(),
	}
	if s.Nodes == 0 {
		return s
	}
	totalTerms := 0
	for v := 0; v < s.Nodes; v++ {
		od := g.OutDegree(NodeID(v))
		id := g.InDegree(NodeID(v))
		if od > s.MaxOutDeg {
			s.MaxOutDeg = od
		}
		if id > s.MaxInDeg {
			s.MaxInDeg = id
		}
		if od == 0 && id == 0 {
			s.IsolatedCnt++
		}
		totalTerms += len(g.Terms(NodeID(v)))
	}
	s.AvgOutDeg = float64(s.Edges) / float64(s.Nodes)
	s.AvgInDeg = s.AvgOutDeg
	s.AvgTerms = float64(totalTerms) / float64(s.Nodes)

	if s.Edges > 0 {
		ws := make([]float64, 0, s.Edges)
		for v := 0; v < s.Nodes; v++ {
			for _, e := range g.OutEdges(NodeID(v)) {
				ws = append(ws, e.Weight)
			}
		}
		sort.Float64s(ws)
		s.MinWeight = ws[0]
		s.MaxWeight = ws[len(ws)-1]
		s.MedWeight = ws[len(ws)/2]
	}
	return s
}

// String renders the stats in a compact single-line form.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d avgdeg=%.2f maxout=%d maxin=%d terms=%d avgterms=%.2f w=[%.2f..%.2f med %.2f] isolated=%d",
		s.Nodes, s.Edges, s.AvgOutDeg, s.MaxOutDeg, s.MaxInDeg,
		s.TermCount, s.AvgTerms, s.MinWeight, s.MaxWeight, s.MedWeight, s.IsolatedCnt)
}
