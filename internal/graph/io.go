package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization of graphs. The format is a simple
// length-prefixed layout:
//
//	magic "CDBG" | version u32 | n u32 | m u32 | dict | labels | terms | edges
//
// Varints are used for all counts and IDs; edge weights are stored as
// IEEE-754 bits. The format is written and read only by this package,
// so no cross-version compatibility machinery is needed beyond the
// version check.

const (
	ioMagic   = "CDBG"
	ioVersion = 2
)

// Write serializes g to w.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(ioMagic); err != nil {
		return err
	}
	writeUvarint(bw, ioVersion)
	n := g.NumNodes()
	writeUvarint(bw, uint64(n))
	writeUvarint(bw, uint64(g.NumEdges()))

	// Node weights: flag byte then raw float bits when present.
	if g.nodeWeight == nil {
		bw.WriteByte(0)
	} else {
		bw.WriteByte(1)
		for _, wt := range g.nodeWeight {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(wt))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	// Dictionary.
	writeUvarint(bw, uint64(g.dict.Size()))
	for _, word := range g.dict.words {
		writeString(bw, word)
	}
	// Labels.
	for _, l := range g.labels {
		writeString(bw, l)
	}
	// Terms per node.
	for v := 0; v < n; v++ {
		ts := g.Terms(NodeID(v))
		writeUvarint(bw, uint64(len(ts)))
		for _, t := range ts {
			writeUvarint(bw, uint64(t))
		}
	}
	// Edges: per node, out-adjacency with delta-coded destinations.
	for v := 0; v < n; v++ {
		es := g.OutEdges(NodeID(v))
		writeUvarint(bw, uint64(len(es)))
		prev := int64(0)
		for _, e := range es {
			// Destinations are sorted ascending, so deltas are >= 0
			// except possibly between parallel edges (delta 0).
			writeUvarint(bw, uint64(int64(e.To)-prev))
			prev = int64(e.To)
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(e.Weight))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != ioVersion {
		return nil, fmt.Errorf("graph: unsupported format version %d", ver)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	m64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n64 > 1<<40 || m64 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)

	hasWeights, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	// Counts come from untrusted input: never pre-allocate by claimed
	// size (a hostile header would OOM the reader); grow with the bytes
	// actually present.
	var nodeWeights []float64
	if hasWeights == 1 {
		nodeWeights = make([]float64, 0, clampCap(n))
		for i := 0; i < n; i++ {
			var buf [8]byte
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			nodeWeights = append(nodeWeights, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		}
	}

	dict := NewDict()
	dn, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < dn; i++ {
		w, err := readString(br)
		if err != nil {
			return nil, err
		}
		dict.Intern(w)
	}

	b := NewBuilderWithDict(dict)
	labels := make([]string, 0, clampCap(n))
	for i := 0; i < n; i++ {
		l, err := readString(br)
		if err != nil {
			return nil, err
		}
		labels = append(labels, l)
	}
	for i := 0; i < n; i++ {
		tn, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		ts := make([]int32, 0, clampCap(int(tn)))
		for j := uint64(0); j < tn; j++ {
			t, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if t >= uint64(dict.Size()) {
				return nil, fmt.Errorf("graph: term id %d outside dictionary", t)
			}
			ts = append(ts, int32(t))
		}
		b.AddNodeTermIDs(labels[i], ts)
	}
	total := 0
	for v := 0; v < n; v++ {
		en, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prev := int64(0)
		for j := uint64(0); j < en; j++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			to := prev + int64(delta)
			prev = to
			var buf [8]byte
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, err
			}
			w := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			b.AddEdge(NodeID(v), NodeID(to), w)
			total++
		}
	}
	if total != m {
		return nil, fmt.Errorf("graph: header says %d edges, body has %d", m, total)
	}
	for i, wt := range nodeWeights {
		if wt != 0 {
			b.SetNodeWeight(NodeID(i), wt)
		}
	}
	return b.Freeze()
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

// maxStringLen bounds any serialized string (labels, dictionary words);
// longer length prefixes indicate corruption.
const maxStringLen = 1 << 24

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("graph: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// clampCap bounds an untrusted count used only as an allocation hint.
func clampCap(n int) int {
	const limit = 1 << 16
	if n < 0 {
		return 0
	}
	if n > limit {
		return limit
	}
	return n
}
