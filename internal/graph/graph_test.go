package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildPaperGraph constructs the 13-node example graph of Fig. 4 in the
// paper (directed edges with explicit weights). It is reused across the
// repository's tests via the same construction in internal/core.
func buildDiamond(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	b := NewBuilder()
	a := b.AddNode("a", "ka")
	c := b.AddNode("c", "kc")
	d := b.AddNode("d")
	e := b.AddNode("e", "ka", "ke")
	b.AddEdge(a, c, 1)
	b.AddEdge(a, d, 2)
	b.AddEdge(c, e, 3)
	b.AddEdge(d, e, 1)
	b.AddEdge(e, a, 5)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g, []NodeID{a, c, d, e}
}

func TestBuilderBasic(t *testing.T) {
	g, ids := buildDiamond(t)
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	a, c, d, e := ids[0], ids[1], ids[2], ids[3]
	if g.OutDegree(a) != 2 || g.InDegree(a) != 1 {
		t.Fatalf("deg(a) = out %d in %d, want 2/1", g.OutDegree(a), g.InDegree(a))
	}
	if g.OutDegree(e) != 1 || g.InDegree(e) != 2 {
		t.Fatalf("deg(e) = out %d in %d, want 1/2", g.OutDegree(e), g.InDegree(e))
	}
	if w, ok := g.EdgeWeight(a, c); !ok || w != 1 {
		t.Fatalf("EdgeWeight(a,c) = %v,%v want 1,true", w, ok)
	}
	if _, ok := g.EdgeWeight(c, a); ok {
		t.Fatal("EdgeWeight(c,a) should not exist")
	}
	// In-edges carry the source node in To.
	var sources []NodeID
	for _, ie := range g.InEdges(e) {
		sources = append(sources, ie.To)
	}
	if len(sources) != 2 || sources[0] != c || sources[1] != d {
		t.Fatalf("InEdges(e) sources = %v, want [c d]", sources)
	}
	_ = ids
}

func TestBuilderTerms(t *testing.T) {
	g, ids := buildDiamond(t)
	a, _, d, e := ids[0], ids[1], ids[2], ids[3]
	ka, ok := g.Dict().ID("ka")
	if !ok {
		t.Fatal("term ka not interned")
	}
	if !g.HasTerm(a, ka) || !g.HasTerm(e, ka) {
		t.Fatal("nodes a and e should contain term ka")
	}
	if g.HasTerm(d, ka) {
		t.Fatal("node d should not contain term ka")
	}
	if len(g.Terms(e)) != 2 {
		t.Fatalf("Terms(e) = %v, want 2 terms", g.Terms(e))
	}
	if _, ok := g.Dict().ID("missing"); ok {
		t.Fatal("ID of unseen term should report false")
	}
}

func TestBuilderDuplicateTermsOnNode(t *testing.T) {
	b := NewBuilder()
	v := b.AddNode("v", "x", "x", "y", "x")
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Terms(v)) != 2 {
		t.Fatalf("Terms = %v, want dedup to 2", g.Terms(v))
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder()
	v := b.AddNode("v")
	b.AddEdge(v, 99, 1)
	if _, err := b.Freeze(); err == nil {
		t.Fatal("Freeze should reject out-of-range edge")
	}

	b2 := NewBuilder()
	u := b2.AddNode("u")
	w := b2.AddNode("w")
	b2.AddEdge(u, w, -1)
	if _, err := b2.Freeze(); err == nil {
		t.Fatal("Freeze should reject negative weight")
	}

	b3 := NewBuilder()
	u3 := b3.AddNode("u")
	w3 := b3.AddNode("w")
	b3.AddEdge(u3, w3, math.NaN())
	if _, err := b3.Freeze(); err == nil {
		t.Fatal("Freeze should reject NaN weight")
	}
}

func TestFreezeLogWeights(t *testing.T) {
	// Paper weight: w(u,v) = log2(1 + indeg(v)).
	b := NewBuilder()
	u := b.AddNode("u")
	v := b.AddNode("v")
	w := b.AddNode("w")
	b.AddEdge(u, v, 0) // weight inputs ignored
	b.AddEdge(w, v, 0)
	b.AddEdge(v, w, 0)
	g, err := b.FreezeLogWeights()
	if err != nil {
		t.Fatal(err)
	}
	// indeg(v)=2 -> log2(3); indeg(w)=1 -> log2(2)=1.
	if wt, _ := g.EdgeWeight(u, v); math.Abs(wt-math.Log2(3)) > 1e-12 {
		t.Fatalf("w(u,v) = %v, want log2(3)", wt)
	}
	if wt, _ := g.EdgeWeight(v, w); wt != 1 {
		t.Fatalf("w(v,w) = %v, want 1", wt)
	}
}

func TestAddBiEdge(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("u")
	v := b.AddNode("v")
	b.AddBiEdge(u, v, 2.5)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w, ok := g.EdgeWeight(u, v); !ok || w != 2.5 {
		t.Fatal("forward direction missing")
	}
	if w, ok := g.EdgeWeight(v, u); !ok || w != 2.5 {
		t.Fatal("reverse direction missing")
	}
}

func TestAdjacencySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder()
	const n = 50
	for i := 0; i < n; i++ {
		b.AddNode("")
	}
	for i := 0; i < 400; i++ {
		b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), rng.Float64())
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		es := g.OutEdges(NodeID(v))
		for i := 1; i < len(es); i++ {
			if es[i].To < es[i-1].To {
				t.Fatalf("out edges of %d not sorted: %v", v, es)
			}
		}
		ies := g.InEdges(NodeID(v))
		for i := 1; i < len(ies); i++ {
			if ies[i].To < ies[i-1].To {
				t.Fatalf("in edges of %d not sorted: %v", v, ies)
			}
		}
	}
}

func TestInOutConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder()
	const n = 80
	for i := 0; i < n; i++ {
		b.AddNode("")
	}
	type key struct{ u, v NodeID }
	count := map[key]int{}
	for i := 0; i < 600; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		b.AddEdge(u, v, 1)
		count[key{u, v}]++
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	// Every forward edge must appear exactly once as a reverse edge.
	got := map[key]int{}
	for v := 0; v < n; v++ {
		for _, e := range g.InEdges(NodeID(v)) {
			got[key{e.To, NodeID(v)}]++
		}
	}
	if len(got) != len(count) {
		t.Fatalf("reverse adjacency has %d distinct edges, want %d", len(got), len(count))
	}
	for k, c := range count {
		if got[k] != c {
			t.Fatalf("edge %v appears %d times reversed, want %d", k, got[k], c)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder().Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph should have no nodes or edges")
	}
	st := ComputeStats(g)
	if st.Nodes != 0 {
		t.Fatal("stats of empty graph")
	}
}

func TestStats(t *testing.T) {
	g, _ := buildDiamond(t)
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxInDeg != 2 || s.MaxOutDeg != 2 {
		t.Fatalf("degree stats = %+v", s)
	}
	if s.MinWeight != 1 || s.MaxWeight != 5 {
		t.Fatalf("weight stats = %+v", s)
	}
	if s.IsolatedCnt != 0 {
		t.Fatalf("isolated = %d, want 0", s.IsolatedCnt)
	}
	if s.String() == "" {
		t.Fatal("String should render")
	}
}

func TestGraphBytesPositive(t *testing.T) {
	g, _ := buildDiamond(t)
	if g.Bytes() <= 0 {
		t.Fatal("Bytes should be positive for a non-empty graph")
	}
}

// TestDictQuickRoundTrip: for any set of strings, interning then
// resolving IDs returns the originals, and IDs are dense and stable.
func TestDictQuickRoundTrip(t *testing.T) {
	prop := func(words []string) bool {
		d := NewDict()
		ids := make(map[string]int32)
		for _, w := range words {
			id := d.Intern(w)
			if prev, seen := ids[w]; seen && prev != id {
				return false // interning must be idempotent
			}
			ids[w] = id
		}
		for w, id := range ids {
			if d.Word(id) != w {
				return false
			}
			if got, ok := d.ID(w); !ok || got != id {
				return false
			}
		}
		return d.Size() == len(ids)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeWeightAccessors(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("u")
	v := b.AddNode("v")
	b.SetNodeWeight(v, 2.5)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeWeight(u) != 0 || g.NodeWeight(v) != 2.5 {
		t.Fatalf("weights = %v, %v", g.NodeWeight(u), g.NodeWeight(v))
	}
	if g.NodeWeights() == nil {
		t.Fatal("NodeWeights should be non-nil when any weight is set")
	}
	// Unweighted graphs report zero without allocating.
	g2, err := NewBuilder().Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeWeights() != nil {
		t.Fatal("NodeWeights should be nil when no weight is set")
	}
}

// TestNodeWeightsSurviveSubgraphAndIO: the footnote-1 extension
// round-trips through projection and serialization.
func TestNodeWeightsSurviveSubgraphAndIO(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("u", "kw")
	v := b.AddNode("v")
	b.AddEdge(u, v, 1)
	b.SetNodeWeight(v, 4)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Induced(g, []NodeID{u, v})
	if err != nil {
		t.Fatal(err)
	}
	lv, _ := sub.FromParent(v)
	if sub.G.NodeWeight(lv) != 4 {
		t.Fatalf("subgraph weight = %v, want 4", sub.G.NodeWeight(lv))
	}
	g2 := roundTrip(t, g)
	if g2.NodeWeight(v) != 4 {
		t.Fatalf("IO round-trip weight = %v, want 4", g2.NodeWeight(v))
	}
}
