package graph

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates nodes and edges and freezes them into an
// immutable Graph. A Builder may share a Dict with other builders (for
// example when projecting a subgraph, so term IDs stay comparable).
type Builder struct {
	labels  []string
	terms   [][]int32
	edges   []builderEdge
	dict    *Dict
	weights map[NodeID]float64
}

type builderEdge struct {
	from, to NodeID
	weight   float64
}

// NewBuilder returns a Builder with a fresh term dictionary.
func NewBuilder() *Builder { return NewBuilderWithDict(NewDict()) }

// NewBuilderWithDict returns a Builder that interns terms into dict.
func NewBuilderWithDict(dict *Dict) *Builder {
	return &Builder{dict: dict}
}

// AddNode appends a node with the given label and terms and returns its
// ID. Duplicate terms on one node are stored once.
func (b *Builder) AddNode(label string, terms ...string) NodeID {
	id := NodeID(len(b.labels))
	b.labels = append(b.labels, label)
	var ids []int32
	for _, t := range terms {
		tid := b.dict.Intern(t)
		dup := false
		for _, have := range ids {
			if have == tid {
				dup = true
				break
			}
		}
		if !dup {
			ids = append(ids, tid)
		}
	}
	b.terms = append(b.terms, ids)
	return id
}

// AddNodeTermIDs appends a node whose terms are already interned IDs
// from the builder's dictionary.
func (b *Builder) AddNodeTermIDs(label string, termIDs []int32) NodeID {
	id := NodeID(len(b.labels))
	b.labels = append(b.labels, label)
	b.terms = append(b.terms, append([]int32(nil), termIDs...))
	return id
}

// NumNodes reports how many nodes have been added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// Grow pre-allocates capacity for the given number of additional nodes
// and directed edges. Callers that know the final counts (a database
// materialization does) avoid every append regrowth — significant when
// a graph is rebuilt per mutation batch.
func (b *Builder) Grow(nodes, edges int) {
	if nodes > 0 {
		b.labels = append(make([]string, 0, len(b.labels)+nodes), b.labels...)
		b.terms = append(make([][]int32, 0, len(b.terms)+nodes), b.terms...)
	}
	if edges > 0 {
		b.edges = append(make([]builderEdge, 0, len(b.edges)+edges), b.edges...)
	}
}

// SetNodeWeight assigns a non-negative weight to a node (the paper's
// footnote-1 extension). Unset nodes weigh zero.
func (b *Builder) SetNodeWeight(v NodeID, weight float64) {
	if b.weights == nil {
		b.weights = make(map[NodeID]float64)
	}
	b.weights[v] = weight
}

// AddEdge appends the directed edge (from, to) with the given weight.
// Node IDs must come from a prior AddNode call.
func (b *Builder) AddEdge(from, to NodeID, weight float64) {
	b.edges = append(b.edges, builderEdge{from: from, to: to, weight: weight})
}

// AddBiEdge appends both directions of an edge with the same weight, as
// used when a database graph is treated as bi-directed.
func (b *Builder) AddBiEdge(u, v NodeID, weight float64) {
	b.AddEdge(u, v, weight)
	b.AddEdge(v, u, weight)
}

// Freeze validates the accumulated nodes and edges and returns the
// immutable Graph. The Builder must not be used afterwards.
func (b *Builder) Freeze() (*Graph, error) {
	return b.freeze(false)
}

// FreezeLogWeights is Freeze with the paper's edge weight function
// applied: every edge (u,v) is re-weighted to log2(1 + N_in(v)), where
// N_in(v) is the in-degree of the head node. The weights passed to
// AddEdge are ignored.
func (b *Builder) FreezeLogWeights() (*Graph, error) {
	return b.freeze(true)
}

func (b *Builder) freeze(logWeights bool) (*Graph, error) {
	n := len(b.labels)
	for _, e := range b.edges {
		if e.from < 0 || int(e.from) >= n || e.to < 0 || int(e.to) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references a node outside [0,%d)", e.from, e.to, n)
		}
		if !logWeights && (e.weight < 0 || math.IsNaN(e.weight)) {
			return nil, fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", e.from, e.to, e.weight)
		}
	}

	g := &Graph{
		outHead: make([]int32, n+1),
		inHead:  make([]int32, n+1),
		labels:  b.labels,
		dict:    b.dict,
	}
	if len(b.weights) > 0 {
		g.nodeWeight = make([]float64, n)
		for v, wt := range b.weights {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: node weight on unknown node %d", v)
			}
			if wt < 0 || math.IsNaN(wt) {
				return nil, fmt.Errorf("graph: invalid node weight %v on node %d", wt, v)
			}
			g.nodeWeight[v] = wt
		}
	}

	// Count degrees.
	for _, e := range b.edges {
		g.outHead[e.from+1]++
		g.inHead[e.to+1]++
	}
	for i := 0; i < n; i++ {
		g.outHead[i+1] += g.outHead[i]
		g.inHead[i+1] += g.inHead[i]
	}

	if logWeights {
		// Re-weight after in-degrees are known.
		for i := range b.edges {
			v := b.edges[i].to
			indeg := float64(g.inHead[v+1] - g.inHead[v])
			b.edges[i].weight = math.Log2(1 + indeg)
		}
	}

	// Fill adjacency using moving cursors.
	g.outEdge = make([]Edge, len(b.edges))
	g.inEdge = make([]Edge, len(b.edges))
	outCur := make([]int32, n)
	inCur := make([]int32, n)
	copy(outCur, g.outHead[:n])
	copy(inCur, g.inHead[:n])
	for _, e := range b.edges {
		g.outEdge[outCur[e.from]] = Edge{To: e.to, Weight: e.weight}
		outCur[e.from]++
		g.inEdge[inCur[e.to]] = Edge{To: e.from, Weight: e.weight}
		inCur[e.to]++
	}

	// Sort each adjacency run by destination for deterministic
	// iteration order and binary-searchable neighbour lookups.
	for i := 0; i < n; i++ {
		sortEdges(g.outEdge[g.outHead[i]:g.outHead[i+1]])
		sortEdges(g.inEdge[g.inHead[i]:g.inHead[i+1]])
	}

	// Pack terms into CSR.
	g.termHead = make([]int32, n+1)
	total := 0
	for i, ts := range b.terms {
		total += len(ts)
		g.termHead[i+1] = int32(total)
	}
	g.termList = make([]int32, 0, total)
	for _, ts := range b.terms {
		g.termList = append(g.termList, ts...)
	}

	b.edges = nil
	b.labels = nil
	b.terms = nil
	return g, nil
}

// sortEdges orders one adjacency run by (To, Weight). Runs are short
// (node degree), so insertion sort covers almost all of them; the
// concrete sort.Interface fallback avoids sort.Slice's reflective
// swapper, which dominated freeze profiles at 2n calls per graph.
// Equal-key elements are identical Edge values, so the order among them
// — and therefore the frozen adjacency bytes — is deterministic under
// any sorting algorithm.
func sortEdges(es []Edge) {
	if len(es) <= 16 {
		for i := 1; i < len(es); i++ {
			for j := i; j > 0 && edgeLess(es[j], es[j-1]); j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
		return
	}
	sort.Sort(byToWeight(es))
}

func edgeLess(a, b Edge) bool {
	if a.To != b.To {
		return a.To < b.To
	}
	return a.Weight < b.Weight
}

type byToWeight []Edge

func (s byToWeight) Len() int           { return len(s) }
func (s byToWeight) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s byToWeight) Less(i, j int) bool { return edgeLess(s[i], s[j]) }
