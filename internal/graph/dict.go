package graph

// Dict interns term strings to dense int32 IDs. A Dict is shared by a
// Graph and the full-text structures built over it, so a keyword is
// resolved to an ID once per query and compared as an integer
// everywhere else.
type Dict struct {
	ids   map[string]int32
	words []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// Intern returns the ID for w, assigning the next free ID on first use.
func (d *Dict) Intern(w string) int32 {
	if id, ok := d.ids[w]; ok {
		return id
	}
	id := int32(len(d.words))
	d.ids[w] = id
	d.words = append(d.words, w)
	return id
}

// ID returns the ID of w and whether w has been interned.
func (d *Dict) ID(w string) (int32, bool) {
	id, ok := d.ids[w]
	return id, ok
}

// Word returns the string for a previously interned ID.
func (d *Dict) Word(id int32) string { return d.words[id] }

// Size reports the number of distinct interned terms.
func (d *Dict) Size() int { return len(d.words) }

// Bytes reports the dictionary's memory footprint (see Footprint for
// the accounting model).
func (d *Dict) Bytes() int64 { return d.Footprint().Bytes }
