package graph

import (
	"testing"

	"commdb/internal/prof"
)

// sumParts asserts the accounting invariant on every composite node of
// a footprint tree: Bytes equals the sum of the parts' Bytes.
func sumParts(t *testing.T, f prof.Footprint) {
	t.Helper()
	if len(f.Parts) == 0 {
		return
	}
	var sum int64
	for _, p := range f.Parts {
		sum += p.Bytes
		sumParts(t, p)
	}
	if f.Bytes != sum {
		t.Fatalf("%s: bytes %d != sum of parts %d", f.Name, f.Bytes, sum)
	}
}

func TestGraphFootprintExact(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode("Author:1", "databases", "graphs")
	v := b.AddNode("Author:2", "graphs")
	b.AddEdge(u, v, 1.5)
	b.AddEdge(v, u, 2.5)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	f := g.Footprint()
	sumParts(t, f)
	if f.Name != "graph" || f.Items != int64(g.NumNodes()) {
		t.Fatalf("root = %+v", f)
	}

	// Slice parts are exact: capacity × element size + 24-byte header.
	oe, ok := f.Find("out_edges")
	if !ok {
		t.Fatal("out_edges part missing")
	}
	if want := prof.SliceBytes(cap(g.outEdge), 16); oe.Bytes != want {
		t.Fatalf("out_edges bytes = %d, want %d", oe.Bytes, want)
	}
	if oe.Items != int64(g.NumEdges()) {
		t.Fatalf("out_edges items = %d, want %d", oe.Items, g.NumEdges())
	}
	th, ok := f.Find("term_heads")
	if !ok || th.Bytes != prof.SliceBytes(cap(g.termHead), 4) {
		t.Fatalf("term_heads = %+v", th)
	}

	// Labels count headers-in-slice plus string contents.
	lb, _ := f.Find("labels")
	wantLabels := prof.SliceBytes(cap(g.labels), 16)
	for _, l := range g.labels {
		wantLabels += int64(len(l))
	}
	if lb.Bytes != wantLabels {
		t.Fatalf("labels bytes = %d, want %d", lb.Bytes, wantLabels)
	}

	if d, ok := f.Find("dict"); !ok || d.Items != int64(g.Dict().Size()) {
		t.Fatalf("dict part = %+v, %v", d, ok)
	}

	// Bytes() is the root total; the cached tree is stable.
	if g.Bytes() != f.Bytes {
		t.Fatalf("Bytes() = %d, footprint = %d", g.Bytes(), f.Bytes)
	}
	if again := g.Footprint(); again.Bytes != f.Bytes || len(again.Parts) != len(f.Parts) {
		t.Fatalf("footprint not stable across calls: %+v vs %+v", again, f)
	}
}

func TestGraphFootprintNodeWeights(t *testing.T) {
	b := NewBuilder()
	n := b.AddNode("x", "t")
	b.SetNodeWeight(n, 2)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	f := g.Footprint()
	sumParts(t, f)
	nw, ok := f.Find("node_weights")
	if !ok {
		t.Fatal("node_weights part missing on a weighted graph")
	}
	if want := prof.SliceBytes(cap(g.nodeWeight), 8); nw.Bytes != want {
		t.Fatalf("node_weights bytes = %d, want %d", nw.Bytes, want)
	}

	g2, _ := NewBuilder().Freeze()
	if _, ok := g2.Footprint().Find("node_weights"); ok {
		t.Fatal("unweighted graph should not report node_weights")
	}
}
