package graph

import "fmt"

// Subgraph is a graph cut out of a parent graph together with the
// mapping between the two ID spaces. The term dictionary is shared with
// the parent, so interned keyword IDs remain valid.
type Subgraph struct {
	// G is the extracted graph with dense local IDs.
	G *Graph
	// ToParent maps a local node ID to its ID in the parent graph.
	ToParent []NodeID
	// fromParent maps a parent ID to the local ID, or -1.
	fromParent []int32
}

// FromParent translates a parent node ID to the local ID, returning
// false if the node is not part of the subgraph.
func (s *Subgraph) FromParent(v NodeID) (NodeID, bool) {
	lv := s.fromParent[v]
	return lv, lv >= 0
}

// Induced extracts the subgraph of g induced by nodes: all listed nodes
// and every edge of g whose endpoints are both listed.
func Induced(g *Graph, nodes []NodeID) (*Subgraph, error) {
	return extract(g, nodes, nil)
}

// Extract builds the subgraph of g containing exactly the given nodes
// and the given edges. Every edge must exist in g (its weight is copied
// from g) and both endpoints must be listed in nodes.
func Extract(g *Graph, nodes []NodeID, edges []EdgePair) (*Subgraph, error) {
	if edges == nil {
		edges = []EdgePair{}
	}
	return extract(g, nodes, edges)
}

// extract does the work for Induced (edges == nil means induced) and
// Extract.
func extract(g *Graph, nodes []NodeID, edges []EdgePair) (*Subgraph, error) {
	s := &Subgraph{
		ToParent:   append([]NodeID(nil), nodes...),
		fromParent: make([]int32, g.NumNodes()),
	}
	for i := range s.fromParent {
		s.fromParent[i] = -1
	}
	b := NewBuilderWithDict(g.Dict())
	for local, parent := range s.ToParent {
		if parent < 0 || int(parent) >= g.NumNodes() {
			return nil, fmt.Errorf("graph: subgraph node %d outside parent", parent)
		}
		if s.fromParent[parent] != -1 {
			return nil, fmt.Errorf("graph: node %d listed twice", parent)
		}
		s.fromParent[parent] = int32(local)
		id := b.AddNodeTermIDs(g.Label(parent), g.Terms(parent))
		if wt := g.NodeWeight(parent); wt != 0 {
			b.SetNodeWeight(id, wt)
		}
	}

	if edges == nil {
		for _, parent := range s.ToParent {
			lu := s.fromParent[parent]
			for _, e := range g.OutEdges(parent) {
				if lv := s.fromParent[e.To]; lv >= 0 {
					b.AddEdge(lu, lv, e.Weight)
				}
			}
		}
	} else {
		for _, ep := range edges {
			lu := s.fromParent[ep.From]
			lv := s.fromParent[ep.To]
			if lu < 0 || lv < 0 {
				return nil, fmt.Errorf("graph: edge (%d,%d) endpoint not in node list", ep.From, ep.To)
			}
			w, ok := g.EdgeWeight(ep.From, ep.To)
			if !ok {
				return nil, fmt.Errorf("graph: edge (%d,%d) does not exist in parent", ep.From, ep.To)
			}
			b.AddEdge(lu, lv, w)
		}
	}

	sub, err := b.Freeze()
	if err != nil {
		return nil, err
	}
	s.G = sub
	return s, nil
}
