package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"commdb/internal/delta"
	"commdb/internal/relational"
)

// Mutation-stream generation: a seeded, deterministic sequence of
// insert/delete ops against a generated dataset, for exercising and
// benchmarking the incremental maintenance path (internal/delta).
//
// The generator applies every op to the database it was given as it
// emits it, for two reasons: the stream stays valid (children are
// inserted after parents and deleted before them, keys never collide),
// and the caller ends up with the post-stream state for free. Replay
// determinism is the point — the same (database, params) pair always
// yields the same ops.

// MutationParams sizes a mutation stream.
type MutationParams struct {
	// N is the number of ops to emit. Cascading deletes may overshoot
	// by the size of the last cascade.
	N int
	// Seed makes the stream reproducible.
	Seed int64
}

// Mutations generates a stream for a DBLP- or IMDB-shaped database
// (as produced by GenerateDBLP / GenerateIMDB), dispatching on the
// tables present.
func Mutations(db *relational.Database, p MutationParams) ([]delta.Op, error) {
	if _, ok := db.Table("Author"); ok {
		return DBLPMutations(db, p)
	}
	if _, ok := db.Table("Users"); ok {
		return IMDBMutations(db, p)
	}
	return nil, fmt.Errorf("datagen: database has neither DBLP nor IMDB shape")
}

// DBLPMutations emits a mixed insert/delete stream over the four DBLP
// tables: new authors and papers (with Write and Cite rows), dropped
// write/cite links, and occasional paper deletions that cascade
// through their referencing rows first so every prefix of the stream
// is referentially valid.
func DBLPMutations(db *relational.Database, p MutationParams) ([]delta.Op, error) {
	if err := db.EnableMutations(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	vocab := fillerVocab(2000)
	zTitle := rand.NewZipf(rng, 1.4, 4, uint64(len(vocab)-1))

	// Live-state mirror, seeded from the current rows.
	st, err := newDBLPState(db)
	if err != nil {
		return nil, err
	}

	g := &opGen{db: db}
	for g.len() < p.N {
		switch r := rng.Float64(); {
		case r < 0.18: // new author
			aid := st.nextAid
			st.nextAid++
			name := strings.Join(zipfWords(rng, zTitle, vocab, 2), " ")
			if g.apply(delta.InsertOp("Author", []relational.Value{
				relational.IntV(aid), relational.StrV(name),
			})) {
				st.authors = append(st.authors, aid)
			}
		case r < 0.58: // new paper with writes and cites
			pid := st.nextPid
			st.nextPid++
			title := strings.Join(zipfWords(rng, zTitle, vocab, 5+rng.Intn(5)), " ")
			if !g.apply(delta.InsertOp("Paper", []relational.Value{
				relational.IntV(pid), relational.StrV(title),
			})) {
				continue
			}
			st.papers = append(st.papers, pid)
			for i, n := 0, 1+rng.Intn(3); i < n && len(st.authors) > 0; i++ {
				aid := st.authors[rng.Intn(len(st.authors))]
				key := [2]int64{aid, pid}
				if st.writes[key] {
					continue
				}
				if g.apply(delta.InsertOp("Write", []relational.Value{
					relational.IntV(aid), relational.IntV(pid),
				})) {
					st.writes[key] = true
				}
			}
			for i, n := 0, rng.Intn(3); i < n && len(st.papers) > 1; i++ {
				tgt := st.papers[rng.Intn(len(st.papers))]
				if tgt == pid {
					continue
				}
				key := [2]int64{pid, tgt}
				if st.cites[key] {
					continue
				}
				if g.apply(delta.InsertOp("Cite", []relational.Value{
					relational.IntV(pid), relational.IntV(tgt),
				})) {
					st.cites[key] = true
				}
			}
		case r < 0.74: // drop a random write link
			if key, ok := randomPair(rng, st.writes); ok {
				if g.apply(delta.DeleteOp("Write", fmt.Sprintf("%d|%d", key[0], key[1]))) {
					delete(st.writes, key)
				}
			}
		case r < 0.88: // drop a random cite link
			if key, ok := randomPair(rng, st.cites); ok {
				if g.apply(delta.DeleteOp("Cite", fmt.Sprintf("%d|%d", key[0], key[1]))) {
					delete(st.cites, key)
				}
			}
		default: // delete a paper, cascading through links
			if len(st.papers) == 0 {
				continue
			}
			i := rng.Intn(len(st.papers))
			pid := st.papers[i]
			for _, key := range matchingPairs(st.writes, func(k [2]int64) bool { return k[1] == pid }) {
				if g.apply(delta.DeleteOp("Write", fmt.Sprintf("%d|%d", key[0], key[1]))) {
					delete(st.writes, key)
				}
			}
			for _, key := range matchingPairs(st.cites, func(k [2]int64) bool { return k[0] == pid || k[1] == pid }) {
				if g.apply(delta.DeleteOp("Cite", fmt.Sprintf("%d|%d", key[0], key[1]))) {
					delete(st.cites, key)
				}
			}
			if g.apply(delta.DeleteOp("Paper", fmt.Sprintf("%d", pid))) {
				st.papers = append(st.papers[:i], st.papers[i+1:]...)
			}
		}
	}
	return g.result()
}

// IMDBMutations emits the analogous stream for the MovieLens-shaped
// schema: new users, movies, and ratings; dropped ratings; and movie
// deletions cascading through their ratings.
func IMDBMutations(db *relational.Database, p MutationParams) ([]delta.Op, error) {
	if err := db.EnableMutations(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	vocab := fillerVocab(2000)
	zTitle := rand.NewZipf(rng, 1.4, 4, uint64(len(vocab)-1))

	st, err := newIMDBState(db)
	if err != nil {
		return nil, err
	}
	ages := []int64{1, 18, 25, 35, 45, 50, 56}
	genres := []string{"drama", "comedy", "action", "thriller", "documentary"}

	g := &opGen{db: db}
	for g.len() < p.N {
		switch r := rng.Float64(); {
		case r < 0.15: // new user
			uid := st.nextUID
			st.nextUID++
			gender := "M"
			if rng.Intn(2) == 0 {
				gender = "F"
			}
			if g.apply(delta.InsertOp("Users", []relational.Value{
				relational.IntV(uid), relational.StrV(gender),
				relational.IntV(ages[rng.Intn(len(ages))]),
				relational.StrV(occupations[rng.Intn(len(occupations))]),
				relational.StrV(fmt.Sprintf("%05d", rng.Intn(100000))),
			})) {
				st.users = append(st.users, uid)
			}
		case r < 0.30: // new movie
			mid := st.nextMID
			st.nextMID++
			title := strings.Join(zipfWords(rng, zTitle, vocab, 3+rng.Intn(4)), " ")
			if g.apply(delta.InsertOp("Movies", []relational.Value{
				relational.IntV(mid), relational.StrV(title),
				relational.StrV(genres[rng.Intn(len(genres))]),
			})) {
				st.movies = append(st.movies, mid)
			}
		case r < 0.72: // new rating
			if len(st.users) == 0 || len(st.movies) == 0 {
				continue
			}
			uid := st.users[rng.Intn(len(st.users))]
			mid := st.movies[rng.Intn(len(st.movies))]
			key := [2]int64{uid, mid}
			if st.ratings[key] {
				continue
			}
			if g.apply(delta.InsertOp("Ratings", []relational.Value{
				relational.IntV(uid), relational.IntV(mid),
				relational.IntV(int64(1 + rng.Intn(5))), relational.IntV(978300000 + int64(rng.Intn(1000000))),
			})) {
				st.ratings[key] = true
			}
		case r < 0.92: // drop a rating
			if key, ok := randomPair(rng, st.ratings); ok {
				if g.apply(delta.DeleteOp("Ratings", fmt.Sprintf("%d|%d", key[0], key[1]))) {
					delete(st.ratings, key)
				}
			}
		default: // delete a movie, cascading through its ratings
			if len(st.movies) == 0 {
				continue
			}
			i := rng.Intn(len(st.movies))
			mid := st.movies[i]
			for _, key := range matchingPairs(st.ratings, func(k [2]int64) bool { return k[1] == mid }) {
				if g.apply(delta.DeleteOp("Ratings", fmt.Sprintf("%d|%d", key[0], key[1]))) {
					delete(st.ratings, key)
				}
			}
			if g.apply(delta.DeleteOp("Movies", fmt.Sprintf("%d", mid))) {
				st.movies = append(st.movies[:i], st.movies[i+1:]...)
			}
		}
	}
	return g.result()
}

// opGen applies each candidate op to the live database and keeps only
// the ones that succeed, so the emitted stream replays cleanly.
type opGen struct {
	db  *relational.Database
	ops []delta.Op
	err error
}

func (g *opGen) len() int { return len(g.ops) }

func (g *opGen) apply(op delta.Op) bool {
	if g.err != nil {
		return false
	}
	if err := delta.Apply(g.db, op); err != nil {
		// A constraint rejection here is a generator bookkeeping bug;
		// surface it rather than emitting an op that will not replay.
		g.err = fmt.Errorf("datagen: generated op failed to apply: %w", err)
		return false
	}
	g.ops = append(g.ops, op)
	return true
}

func (g *opGen) result() ([]delta.Op, error) { return g.ops, g.err }

// matchingPairs returns the keys satisfying pred in sorted order —
// map iteration is nondeterministic, and the emitted op order must not
// be.
func matchingPairs(set map[[2]int64]bool, pred func([2]int64) bool) [][2]int64 {
	var keys [][2]int64
	for k := range set {
		if pred(k) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// randomPair picks a deterministic pseudo-random key from a pair-keyed
// set. Iterating a Go map is nondeterministic, so collect and sort.
func randomPair(rng *rand.Rand, set map[[2]int64]bool) ([2]int64, bool) {
	if len(set) == 0 {
		return [2]int64{}, false
	}
	keys := make([][2]int64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys[rng.Intn(len(keys))], true
}

// dblpState mirrors the live DBLP rows for generation.
type dblpState struct {
	authors, papers  []int64
	writes, cites    map[[2]int64]bool
	nextAid, nextPid int64
}

func newDBLPState(db *relational.Database) (*dblpState, error) {
	st := &dblpState{writes: make(map[[2]int64]bool), cites: make(map[[2]int64]bool)}
	var err error
	st.authors, st.nextAid, err = scanIDs(db, "Author")
	if err != nil {
		return nil, err
	}
	st.papers, st.nextPid, err = scanIDs(db, "Paper")
	if err != nil {
		return nil, err
	}
	if err := scanPairs(db, "Write", st.writes); err != nil {
		return nil, err
	}
	if err := scanPairs(db, "Cite", st.cites); err != nil {
		return nil, err
	}
	return st, nil
}

// imdbState mirrors the live IMDB rows for generation.
type imdbState struct {
	users, movies    []int64
	ratings          map[[2]int64]bool
	nextUID, nextMID int64
}

func newIMDBState(db *relational.Database) (*imdbState, error) {
	st := &imdbState{ratings: make(map[[2]int64]bool)}
	var err error
	st.users, st.nextUID, err = scanIDs(db, "Users")
	if err != nil {
		return nil, err
	}
	st.movies, st.nextMID, err = scanIDs(db, "Movies")
	if err != nil {
		return nil, err
	}
	if err := scanPairs(db, "Ratings", st.ratings); err != nil {
		return nil, err
	}
	return st, nil
}

// scanIDs collects a table's integer primary keys and the next free
// one.
func scanIDs(db *relational.Database, table string) ([]int64, int64, error) {
	t, ok := db.Table(table)
	if !ok {
		return nil, 0, fmt.Errorf("datagen: no table %s", table)
	}
	ids := make([]int64, t.Len())
	next := int64(0)
	for i := 0; i < t.Len(); i++ {
		ids[i] = t.Row(i)[0].Int()
		if ids[i] >= next {
			next = ids[i] + 1
		}
	}
	return ids, next, nil
}

// scanPairs collects a link table's (int, int) primary keys.
func scanPairs(db *relational.Database, table string, into map[[2]int64]bool) error {
	t, ok := db.Table(table)
	if !ok {
		return fmt.Errorf("datagen: no table %s", table)
	}
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		into[[2]int64{row[0].Int(), row[1].Int()}] = true
	}
	return nil
}
