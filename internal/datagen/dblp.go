package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"commdb/internal/relational"
)

// DBLPParams sizes the synthetic bibliographic dataset. The real DBLP
// 2008 snapshot the paper uses has 597K authors, 986K papers, 2426K
// write tuples and 112K citations; the generator keeps those ratios for
// any author count.
type DBLPParams struct {
	// Authors is the scale knob; the other table sizes follow the real
	// dataset's ratios.
	Authors int
	// Seed makes the dataset reproducible.
	Seed int64
	// Probes are the planted keyword sets; nil uses Table III.
	Probes []Probe
}

// Real-dataset ratios from Section VII.
const (
	dblpPapersPerAuthor = 986.0 / 597.0 // table size ratio
	dblpAuthorsPerPaper = 2.46          // avg write fan-in per paper
	dblpCitesPerPaper   = 112.0 / 986.0 // citation ratio
	imdbMoviesPerUser   = 3883.0 / 6040.0
	imdbRatingsPerUser  = 165.60
)

// GenerateDBLP builds the 4-table DBLP database (Author, Paper, Write,
// Cite) with power-law author productivity and paper popularity, paper
// titles drawn from a Zipfian filler vocabulary, and the probe keywords
// planted at their exact keyword frequencies.
func GenerateDBLP(p DBLPParams) (*relational.Database, error) {
	if p.Authors < 4 {
		return nil, fmt.Errorf("datagen: need at least 4 authors, got %d", p.Authors)
	}
	probes := p.Probes
	if probes == nil {
		probes = DBLPProbes()
	}
	rng := rand.New(rand.NewSource(p.Seed))

	nAuthors := p.Authors
	nPapers := int(math.Round(float64(nAuthors) * dblpPapersPerAuthor))
	nCites := int(math.Round(float64(nPapers) * dblpCitesPerPaper))

	db := relational.NewDatabase()
	author, err := db.CreateTable(relational.Schema{
		Name: "Author",
		Columns: []relational.Column{
			{Name: "Aid", Type: relational.Int},
			{Name: "Name", Type: relational.String, FullText: true},
		},
		PrimaryKey: []string{"Aid"},
	})
	if err != nil {
		return nil, err
	}
	paper, err := db.CreateTable(relational.Schema{
		Name: "Paper",
		Columns: []relational.Column{
			{Name: "Pid", Type: relational.Int},
			{Name: "Title", Type: relational.String, FullText: true},
		},
		PrimaryKey: []string{"Pid"},
	})
	if err != nil {
		return nil, err
	}
	write, err := db.CreateTable(relational.Schema{
		Name: "Write",
		Columns: []relational.Column{
			{Name: "Aid", Type: relational.Int},
			{Name: "Pid", Type: relational.Int},
		},
		PrimaryKey: []string{"Aid", "Pid"},
	})
	if err != nil {
		return nil, err
	}
	cite, err := db.CreateTable(relational.Schema{
		Name: "Cite",
		Columns: []relational.Column{
			{Name: "Pid1", Type: relational.Int},
			{Name: "Pid2", Type: relational.Int},
		},
		PrimaryKey: []string{"Pid1", "Pid2"},
	})
	if err != nil {
		return nil, err
	}
	for _, fk := range []relational.ForeignKey{
		{FromTable: "Write", FromColumn: "Aid", ToTable: "Author"},
		{FromTable: "Write", FromColumn: "Pid", ToTable: "Paper"},
		{FromTable: "Cite", FromColumn: "Pid1", ToTable: "Paper"},
		{FromTable: "Cite", FromColumn: "Pid2", ToTable: "Paper"},
	} {
		if err := db.AddForeignKey(fk); err != nil {
			return nil, err
		}
	}

	// Authors: "First Last" names from pseudo-name pools.
	firsts := namePool(64, p.Seed+1)
	lasts := namePool(96, p.Seed+2)
	for a := 0; a < nAuthors; a++ {
		name := firsts[rng.Intn(len(firsts))] + " " + lasts[rng.Intn(len(lasts))]
		if err := author.Insert(relational.IntV(int64(a)), relational.StrV(name)); err != nil {
			return nil, err
		}
	}

	// Paper titles: 5-9 Zipfian filler words, probes planted below.
	vocab := fillerVocab(2000)
	zTitle := rand.NewZipf(rng, 1.4, 4, uint64(len(vocab)-1))
	titles := make([][]string, nPapers)
	for pid := 0; pid < nPapers; pid++ {
		titles[pid] = zipfWords(rng, zTitle, vocab, 5+rng.Intn(5))
	}

	// Plant probe keywords at exact KWF over total tuple count.
	// Writes count is determined by the per-paper author draw below; it
	// concentrates tightly around authorsPerPaper * nPapers, so the
	// expectation is used for the KWF base (the paper's KWF values are
	// themselves rounded to one significant digit).
	estWrites := int(math.Round(float64(nPapers) * dblpAuthorsPerPaper))
	totalTuples := nAuthors + nPapers + estWrites + nCites
	if err := plantProbes(rng, probes, totalTuples, titles); err != nil {
		return nil, err
	}
	for pid := 0; pid < nPapers; pid++ {
		title := strings.Join(titles[pid], " ")
		if err := paper.Insert(relational.IntV(int64(pid)), relational.StrV(title)); err != nil {
			return nil, err
		}
	}

	// Writes: per-paper author counts with mean authorsPerPaper, author
	// choice Zipfian (productive authors author many papers).
	zAuthor := rand.NewZipf(rng, 1.2, 8, uint64(nAuthors-1))
	var picked []int64
	contains := func(a int64) bool {
		for _, have := range picked {
			if have == a {
				return true
			}
		}
		return false
	}
	for pid := 0; pid < nPapers; pid++ {
		k := drawAuthorsPerPaper(rng)
		if k > nAuthors {
			k = nAuthors
		}
		picked = picked[:0]
		for len(picked) < k {
			a := int64(zAuthor.Uint64())
			if contains(a) {
				// Zipf repeats hub authors; fall back to uniform so the
				// loop always terminates.
				a = int64(rng.Intn(nAuthors))
				if contains(a) {
					continue
				}
			}
			picked = append(picked, a)
			if err := write.Insert(relational.IntV(a), relational.IntV(int64(pid))); err != nil {
				return nil, err
			}
		}
	}

	// Cites: unique ordered pairs, popular papers cited more.
	zCited := rand.NewZipf(rng, 1.3, 6, uint64(nPapers-1))
	seen := make(map[[2]int64]bool, nCites)
	for len(seen) < nCites {
		p1 := int64(rng.Intn(nPapers))
		p2 := int64(zCited.Uint64())
		if p1 == p2 {
			continue
		}
		key := [2]int64{p1, p2}
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := cite.Insert(relational.IntV(p1), relational.IntV(p2)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// drawAuthorsPerPaper samples the number of authors of one paper from a
// distribution with mean ≈ 2.46 (the DBLP average the paper reports).
func drawAuthorsPerPaper(rng *rand.Rand) int {
	// P(1)=.27 P(2)=.30 P(3)=.24 P(4)=.12 P(5)=.05 P(6)=.02
	// mean = 2.46
	switch x := rng.Float64(); {
	case x < 0.27:
		return 1
	case x < 0.57:
		return 2
	case x < 0.81:
		return 3
	case x < 0.93:
		return 4
	case x < 0.98:
		return 5
	default:
		return 6
	}
}

// plantProbes appends each probe word to round(KWF * totalTuples)
// distinct uniformly chosen title word lists.
func plantProbes(rng *rand.Rand, probes []Probe, totalTuples int, titles [][]string) error {
	return plantProbesWeighted(rng, probes, totalTuples, titles, nil)
}

// plantProbesWeighted is plantProbes with an optional index sampler;
// when draw is non-nil, target titles are drawn from it (with rejection
// of duplicates) instead of uniformly, letting callers skew probe words
// toward popular entities.
func plantProbesWeighted(rng *rand.Rand, probes []Probe, totalTuples int, titles [][]string, draw func() int) error {
	n := len(titles)
	for _, probe := range probes {
		count := int(math.Round(probe.KWF * float64(totalTuples)))
		if count < 1 {
			count = 1
		}
		if count > n {
			return fmt.Errorf("datagen: probe KWF %v needs %d text tuples, only %d available",
				probe.KWF, count, n)
		}
		for _, word := range probe.Words {
			if draw == nil {
				for _, i := range rng.Perm(n)[:count] {
					titles[i] = append(titles[i], word)
				}
				continue
			}
			chosen := make(map[int]bool, count)
			for len(chosen) < count {
				i := draw()
				if chosen[i] {
					i = rng.Intn(n) // duplicate head pick: fall back to uniform
					if chosen[i] {
						continue
					}
				}
				chosen[i] = true
				titles[i] = append(titles[i], word)
			}
		}
	}
	return nil
}
