package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"commdb/internal/relational"
)

// IMDBParams sizes the synthetic movie-rating dataset. The real set the
// paper uses (MovieLens 1M) has 6040 users, 3883 movies and 1000.21K
// ratings — an average of 165.60 ratings per user and 257.59 per movie,
// a far denser graph than DBLP, which is why the paper's default Rmax
// is 11 there instead of 6.
type IMDBParams struct {
	// Users is the scale knob; movies follow the real ratio.
	Users int
	// Movies overrides the movie count when positive. The real ratio
	// (0.643 movies per user) only preserves the real graph's *shape*
	// at full scale: a real user rates ~4% of the 3883-movie catalog,
	// so reduced-scale datasets keep that sparsity by holding the
	// catalog larger than the ratio would give (see EXPERIMENTS.md).
	Movies int
	// AvgRatingsPerUser defaults to the real 165.60 when zero. Tests
	// and small benchmarks lower it to keep rating counts manageable.
	AvgRatingsPerUser float64
	// Seed makes the dataset reproducible.
	Seed int64
	// Probes are the planted keyword sets; nil uses Table V.
	Probes []Probe
}

// GenerateIMDB builds the 3-table IMDB database (Users, Movies,
// Ratings) with Zipfian movie popularity and the probe keywords planted
// into movie titles at their exact keyword frequencies.
func GenerateIMDB(p IMDBParams) (*relational.Database, error) {
	if p.Users < 4 {
		return nil, fmt.Errorf("datagen: need at least 4 users, got %d", p.Users)
	}
	avg := p.AvgRatingsPerUser
	if avg == 0 {
		avg = imdbRatingsPerUser
	}
	probes := p.Probes
	if probes == nil {
		probes = IMDBProbes()
	}
	rng := rand.New(rand.NewSource(p.Seed))

	nUsers := p.Users
	nMovies := p.Movies
	if nMovies <= 0 {
		nMovies = int(math.Round(float64(nUsers) * imdbMoviesPerUser))
	}
	if nMovies < 2 {
		nMovies = 2
	}

	db := relational.NewDatabase()
	users, err := db.CreateTable(relational.Schema{
		Name: "Users",
		Columns: []relational.Column{
			{Name: "UserID", Type: relational.Int},
			{Name: "Gender", Type: relational.String},
			{Name: "Age", Type: relational.Int},
			{Name: "Occupation", Type: relational.String, FullText: true},
			{Name: "Zipcode", Type: relational.String},
		},
		PrimaryKey: []string{"UserID"},
	})
	if err != nil {
		return nil, err
	}
	movies, err := db.CreateTable(relational.Schema{
		Name: "Movies",
		Columns: []relational.Column{
			{Name: "MovieID", Type: relational.Int},
			{Name: "Title", Type: relational.String, FullText: true},
			{Name: "Genres", Type: relational.String, FullText: true},
		},
		PrimaryKey: []string{"MovieID"},
	})
	if err != nil {
		return nil, err
	}
	ratings, err := db.CreateTable(relational.Schema{
		Name: "Ratings",
		Columns: []relational.Column{
			{Name: "UserID", Type: relational.Int},
			{Name: "MovieID", Type: relational.Int},
			{Name: "Rating", Type: relational.Int},
			{Name: "Timestamp", Type: relational.Int},
		},
		PrimaryKey: []string{"UserID", "MovieID"},
	})
	if err != nil {
		return nil, err
	}
	for _, fk := range []relational.ForeignKey{
		{FromTable: "Ratings", FromColumn: "UserID", ToTable: "Users"},
		{FromTable: "Ratings", FromColumn: "MovieID", ToTable: "Movies"},
	} {
		if err := db.AddForeignKey(fk); err != nil {
			return nil, err
		}
	}

	// Users.
	ages := []int64{1, 18, 25, 35, 45, 50, 56}
	for u := 0; u < nUsers; u++ {
		gender := "M"
		if rng.Intn(2) == 0 {
			gender = "F"
		}
		if err := users.Insert(
			relational.IntV(int64(u)),
			relational.StrV(gender),
			relational.IntV(ages[rng.Intn(len(ages))]),
			relational.StrV(occupations[rng.Intn(len(occupations))]),
			relational.StrV(fmt.Sprintf("%05d", rng.Intn(100000))),
		); err != nil {
			return nil, err
		}
	}

	// Movie titles with planted probes.
	vocab := fillerVocab(1200)
	zTitle := rand.NewZipf(rng, 1.4, 4, uint64(len(vocab)-1))
	titles := make([][]string, nMovies)
	for m := 0; m < nMovies; m++ {
		titles[m] = zipfWords(rng, zTitle, vocab, 2+rng.Intn(4))
	}
	// Per-user rating counts concentrate around avg; the expectation is
	// the KWF base.
	estRatings := int(math.Round(float64(nUsers) * avg))
	totalTuples := nUsers + nMovies + estRatings
	// Probe words land on popularity-weighted movies: in the real
	// dataset the common title words of Table V ("star", "night",
	// "king", …) belong disproportionately to franchise and classic
	// titles — exactly the heavily-rated movies. Movie ids are popularity
	// ranks (the rating sampler below draws low ids most), so the same
	// Zipf shape drives the probe placement.
	zPlant := rand.NewZipf(rng, 1.1, 10, uint64(nMovies-1))
	if err := plantProbesWeighted(rng, probes, totalTuples, titles, func() int {
		return int(zPlant.Uint64())
	}); err != nil {
		return nil, err
	}
	for m := 0; m < nMovies; m++ {
		genreList := genres[rng.Intn(len(genres))]
		if rng.Intn(2) == 0 {
			genreList += " " + genres[rng.Intn(len(genres))]
		}
		if err := movies.Insert(
			relational.IntV(int64(m)),
			relational.StrV(strings.Join(titles[m], " ")),
			relational.StrV(genreList),
		); err != nil {
			return nil, err
		}
	}

	// Ratings: per user around avg, movie choice Zipfian (popular
	// movies gather most ratings, as in MovieLens).
	zMovie := rand.NewZipf(rng, 1.1, 10, uint64(nMovies-1))
	ts := int64(978300000) // MovieLens epoch neighborhood
	for u := 0; u < nUsers; u++ {
		k := ratingCount(rng, avg, nMovies)
		seen := make(map[int64]bool, k)
		for len(seen) < k {
			m := int64(zMovie.Uint64())
			if seen[m] {
				m = int64(rng.Intn(nMovies))
				if seen[m] {
					continue
				}
			}
			seen[m] = true
			ts += int64(rng.Intn(50) + 1)
			if err := ratings.Insert(
				relational.IntV(int64(u)),
				relational.IntV(m),
				relational.IntV(int64(rng.Intn(5)+1)),
				relational.IntV(ts),
			); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// ratingCount draws one user's rating count: roughly geometric spread
// around the mean, clamped to the movie count.
func ratingCount(rng *rand.Rand, avg float64, nMovies int) int {
	// Uniform on [avg/2, 3avg/2] keeps the mean while giving user
	// variety; MovieLens's own distribution is heavier-tailed but the
	// graph density, which is what matters here, depends on the mean.
	k := int(math.Round(avg/2 + rng.Float64()*avg))
	if k < 1 {
		k = 1
	}
	if k > nMovies {
		k = nMovies
	}
	return k
}
