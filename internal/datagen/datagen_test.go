package datagen

import (
	"math"
	"testing"

	"commdb/internal/fulltext"
)

func TestDBLPGeneratorShape(t *testing.T) {
	db, err := GenerateDBLP(DBLPParams{Authors: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	s := DBLPStats(db)
	if s.TableRows["Author"] != 500 {
		t.Fatalf("authors = %d", s.TableRows["Author"])
	}
	// Papers follow the 986/597 ratio.
	wantPapers := int(math.Round(500 * 986.0 / 597.0))
	if s.TableRows["Paper"] != wantPapers {
		t.Fatalf("papers = %d, want %d", s.TableRows["Paper"], wantPapers)
	}
	// Average authors per paper near 2.46 (the draw distribution mean).
	if s.AvgPerRight < 2.2 || s.AvgPerRight > 2.7 {
		t.Fatalf("authors/paper = %v, want ≈2.46", s.AvgPerRight)
	}
	// Average papers per author near 4.06.
	if s.AvgPerLeft < 3.5 || s.AvgPerLeft > 4.6 {
		t.Fatalf("papers/author = %v, want ≈4.06", s.AvgPerLeft)
	}
	if s.TableRows["Cite"] == 0 {
		t.Fatal("no citations generated")
	}
}

func TestDBLPDeterministic(t *testing.T) {
	a, err := GenerateDBLP(DBLPParams{Authors: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDBLP(DBLPParams{Authors: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Table("Paper")
	pb, _ := b.Table("Paper")
	if pa.Len() != pb.Len() {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := 0; i < pa.Len(); i++ {
		if pa.Row(i)[1].Str() != pb.Row(i)[1].Str() {
			t.Fatalf("title %d differs across identical seeds", i)
		}
	}
	c, err := GenerateDBLP(DBLPParams{Authors: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := c.Table("Paper")
	same := true
	for i := 0; i < pa.Len() && i < pc.Len(); i++ {
		if pa.Row(i)[1].Str() != pc.Row(i)[1].Str() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical titles")
	}
}

// TestDBLPProbeKWF: every planted probe keyword occurs on round(KWF *
// tuples) nodes of the materialized graph, within the rounding slack of
// the write-count estimate.
func TestDBLPProbeKWF(t *testing.T) {
	db, err := GenerateDBLP(DBLPParams{Authors: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := db.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix := fulltext.Build(g)
	for _, probe := range DBLPProbes() {
		for _, w := range probe.Words {
			got := ix.KWF(w)
			// The planting base uses the expected write count; actual
			// counts differ by <2%, so allow 10% relative slack.
			if got < probe.KWF*0.9 || got > probe.KWF*1.1 {
				t.Errorf("probe %q: KWF %v, want ≈%v", w, got, probe.KWF)
			}
		}
	}
}

func TestDBLPErrors(t *testing.T) {
	if _, err := GenerateDBLP(DBLPParams{Authors: 2}); err == nil {
		t.Fatal("tiny author count should error")
	}
	// A probe frequency requiring more text tuples than exist errors.
	_, err := GenerateDBLP(DBLPParams{
		Authors: 10,
		Probes:  []Probe{{KWF: 0.9, Words: []string{"flood"}}},
	})
	if err == nil {
		t.Fatal("oversized probe should error")
	}
}

func TestIMDBGeneratorShape(t *testing.T) {
	db, err := GenerateIMDB(IMDBParams{Users: 300, AvgRatingsPerUser: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	s := IMDBStats(db)
	if s.TableRows["Users"] != 300 {
		t.Fatalf("users = %d", s.TableRows["Users"])
	}
	wantMovies := int(math.Round(300 * 3883.0 / 6040.0))
	if s.TableRows["Movies"] != wantMovies {
		t.Fatalf("movies = %d, want %d", s.TableRows["Movies"], wantMovies)
	}
	if s.AvgPerLeft < 15 || s.AvgPerLeft > 25 {
		t.Fatalf("ratings/user = %v, want ≈20", s.AvgPerLeft)
	}
	// Density transfers to movies by the user:movie ratio (~1.56x).
	if s.AvgPerRight < s.AvgPerLeft {
		t.Fatalf("ratings/movie %v should exceed ratings/user %v", s.AvgPerRight, s.AvgPerLeft)
	}
}

func TestIMDBProbeKWF(t *testing.T) {
	db, err := GenerateIMDB(IMDBParams{Users: 1500, AvgRatingsPerUser: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := db.ToGraph()
	if err != nil {
		t.Fatal(err)
	}
	ix := fulltext.Build(g)
	for _, probe := range IMDBProbes() {
		for _, w := range probe.Words {
			got := ix.KWF(w)
			if got < probe.KWF*0.85 || got > probe.KWF*1.15 {
				t.Errorf("probe %q: KWF %v, want ≈%v", w, got, probe.KWF)
			}
		}
	}
}

func TestIMDBErrors(t *testing.T) {
	if _, err := GenerateIMDB(IMDBParams{Users: 1}); err == nil {
		t.Fatal("tiny user count should error")
	}
}

func TestIMDBDeterministic(t *testing.T) {
	a, _ := GenerateIMDB(IMDBParams{Users: 50, AvgRatingsPerUser: 10, Seed: 9})
	b, _ := GenerateIMDB(IMDBParams{Users: 50, AvgRatingsPerUser: 10, Seed: 9})
	ra, _ := a.Table("Ratings")
	rb, _ := b.Table("Ratings")
	if ra.Len() != rb.Len() {
		t.Fatal("rating counts differ across identical seeds")
	}
	for i := 0; i < ra.Len(); i++ {
		for c := 0; c < 4; c++ {
			if ra.Row(i)[c].String() != rb.Row(i)[c].String() {
				t.Fatalf("rating row %d differs across identical seeds", i)
			}
		}
	}
}

func TestProbeTables(t *testing.T) {
	if len(DBLPProbes()) != 5 || len(IMDBProbes()) != 5 {
		t.Fatal("probe tables should have 5 KWF levels")
	}
	if len(ProbeKWFs()) != 5 {
		t.Fatal("5 KWF sweep values")
	}
	if got := WordsAt(DBLPProbes(), 0.0009); len(got) != 6 {
		t.Fatalf("Table III at .0009 has %d words, want 6", len(got))
	}
	if got := WordsAt(IMDBProbes(), 0.0015); len(got) != 4 {
		t.Fatalf("Table V at .0015 has %d words, want 4", len(got))
	}
	if WordsAt(DBLPProbes(), 0.5) != nil {
		t.Fatal("unknown KWF should return nil")
	}
}

// TestVocabDisjointFromProbes: filler words can never collide with
// probe keywords, so planted KWFs are exact.
func TestVocabDisjointFromProbes(t *testing.T) {
	vocab := map[string]bool{}
	for _, w := range fillerVocab(2000) {
		vocab[w] = true
	}
	for _, probes := range [][]Probe{DBLPProbes(), IMDBProbes()} {
		for _, p := range probes {
			for _, w := range p.Words {
				if vocab[w] {
					t.Fatalf("probe word %q collides with filler vocabulary", w)
				}
			}
		}
	}
}

func TestNamePoolDistinct(t *testing.T) {
	pool := namePool(64, 42)
	seen := map[string]bool{}
	for _, n := range pool {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}
