package datagen

// Probe is one keyword planted at an exact keyword frequency.
type Probe struct {
	KWF   float64
	Words []string
}

// DBLPProbes reproduces Table III of the paper: the keyword sets used
// for DBLP queries at each keyword frequency.
func DBLPProbes() []Probe {
	return []Probe{
		{KWF: 0.0003, Words: []string{"scalable", "protocols", "distance", "discovery"}},
		{KWF: 0.0006, Words: []string{"space", "graph", "routing", "scheme"}},
		{KWF: 0.0009, Words: []string{"environment", "database", "support", "development", "optimization", "fuzzy"}},
		{KWF: 0.0012, Words: []string{"dynamic", "application", "modeling", "logic"}},
		{KWF: 0.0015, Words: []string{"web", "parallel", "control", "algorithms"}},
	}
}

// IMDBProbes reproduces Table V of the paper: the keyword sets used for
// IMDB queries at each keyword frequency.
func IMDBProbes() []Probe {
	return []Probe{
		{KWF: 0.0003, Words: []string{"summer", "bride", "game", "dream"}},
		{KWF: 0.0006, Words: []string{"friday", "heaven", "street", "party"}},
		{KWF: 0.0009, Words: []string{"star", "death", "all", "girl", "lost", "blood"}},
		{KWF: 0.0012, Words: []string{"city", "american", "blue", "world"}},
		{KWF: 0.0015, Words: []string{"night", "story", "king", "house"}},
	}
}

// ProbeKWFs lists the KWF sweep values shared by Tables II and IV.
func ProbeKWFs() []float64 {
	return []float64{0.0003, 0.0006, 0.0009, 0.0012, 0.0015}
}

// WordsAt returns the probe words for a KWF value, or nil.
func WordsAt(probes []Probe, kwf float64) []string {
	for _, p := range probes {
		if p.KWF == kwf {
			return p.Words
		}
	}
	return nil
}
