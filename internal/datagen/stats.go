package datagen

import "commdb/internal/relational"

// DatasetStats summarizes a generated dataset for validation against
// the paper's reported characteristics.
type DatasetStats struct {
	Tuples      int
	TableRows   map[string]int
	AvgPerLeft  float64 // papers per author / ratings per user
	AvgPerRight float64 // authors per paper / ratings per movie
}

// DBLPStats computes the bibliographic averages the paper reports (each
// author writes 4.06 papers; each paper has 2.46 authors).
func DBLPStats(db *relational.Database) DatasetStats {
	s := DatasetStats{Tuples: db.NumTuples(), TableRows: map[string]int{}}
	for _, name := range db.Tables() {
		t, _ := db.Table(name)
		s.TableRows[name] = t.Len()
	}
	w := s.TableRows["Write"]
	if a := s.TableRows["Author"]; a > 0 {
		s.AvgPerLeft = float64(w) / float64(a)
	}
	if p := s.TableRows["Paper"]; p > 0 {
		s.AvgPerRight = float64(w) / float64(p)
	}
	return s
}

// IMDBStats computes the rating averages the paper reports (each user
// rates 165.60 movies; each movie is rated by 257.59 users).
func IMDBStats(db *relational.Database) DatasetStats {
	s := DatasetStats{Tuples: db.NumTuples(), TableRows: map[string]int{}}
	for _, name := range db.Tables() {
		t, _ := db.Table(name)
		s.TableRows[name] = t.Len()
	}
	r := s.TableRows["Ratings"]
	if u := s.TableRows["Users"]; u > 0 {
		s.AvgPerLeft = float64(r) / float64(u)
	}
	if m := s.TableRows["Movies"]; m > 0 {
		s.AvgPerRight = float64(r) / float64(m)
	}
	return s
}
