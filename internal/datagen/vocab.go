// Package datagen generates the synthetic DBLP and IMDB relational
// datasets that substitute for the paper's real dumps (DBLP 2008 XML
// and the MovieLens-based IMDB set), which are not available offline.
//
// The generators are calibrated to the dataset characteristics Section
// VII reports — table row ratios, average degrees (4.06 papers per
// author / 2.46 authors per paper for DBLP; 165.60 ratings per user /
// 257.59 per movie for IMDB), and power-law popularity — and plant the
// paper's probe keywords (Tables III and V) at their exact keyword
// frequencies so the KWF experiment axis carries over. Everything is
// deterministic in the seed.
package datagen

import (
	"math/rand"
	"strings"
)

// syllables used to compose pronounceable pseudo-words, guaranteed
// disjoint from the probe keyword lists (probes are real English words;
// composed words always have >= 3 syllables of this fixed set).
var consonants = []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"}
var vowels = []string{"a", "e", "i", "o", "u"}

// fillerVocab deterministically builds n distinct pseudo-words of 3-4
// syllables, e.g. "bakelo", "nimoza".
func fillerVocab(n int) []string {
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	rng := rand.New(rand.NewSource(12345))
	for len(out) < n {
		var b strings.Builder
		syl := 3 + rng.Intn(2)
		for s := 0; s < syl; s++ {
			b.WriteString(consonants[rng.Intn(len(consonants))])
			b.WriteString(vowels[rng.Intn(len(vowels))])
		}
		w := b.String()
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// namePool builds capitalized pseudo-names for authors.
func namePool(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for len(out) < n {
		var b strings.Builder
		syl := 2 + rng.Intn(2)
		for s := 0; s < syl; s++ {
			b.WriteString(consonants[rng.Intn(len(consonants))])
			b.WriteString(vowels[rng.Intn(len(vowels))])
		}
		w := b.String()
		w = strings.ToUpper(w[:1]) + w[1:]
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// zipfWords draws k words from vocab with a Zipf-like popularity skew.
func zipfWords(rng *rand.Rand, z *rand.Zipf, vocab []string, k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = vocab[int(z.Uint64())%len(vocab)]
	}
	return out
}

// occupations mirrors the MovieLens occupation vocabulary.
var occupations = []string{
	"academic", "artist", "clerical", "collegestudent", "customerservice",
	"doctor", "executive", "farmer", "homemaker", "k12student", "lawyer",
	"programmer", "retired", "salesmarketing", "scientist", "selfemployed",
	"technician", "tradesman", "unemployed", "writer", "other",
}

// genres mirrors the MovieLens genre vocabulary.
var genres = []string{
	"action", "adventure", "animation", "childrens", "comedy", "crime",
	"documentary", "drama", "fantasy", "filmnoir", "horror", "musical",
	"mystery", "romance", "scifi", "thriller", "war", "western",
}
