package core

import "commdb/internal/graph"

// AllEnumerator is Algorithm 1 (PDall): it enumerates every community
// of the query in polynomial delay O(l·(n·log n + m)) per result with
// O(l·n + m) working space, complete and duplication-free by core.
//
// The enumerator maintains one candidate subset S_i per keyword (the
// paper's global S_i variables) and walks the virtual subspace tree
// depth-first: after emitting core C, the remaining cores are exactly
//
//	⋃_i {C[1..i-1]} × (S_i − {C[i]}) × V_{i+1} × … × V_l,
//
// each term of which is probed by one BestCore call over recomputed
// neighborSets.
type AllEnumerator struct {
	e       *Engine
	cur     Core
	removed []map[graph.NodeID]struct{} // S_i = V_i − removed[i]
	started bool
	done    bool
	emitted int
	err     error // stop reason when the engine's budget tripped
}

// NewAll returns a COMM-all enumerator for the engine's query. The
// engine must not be shared with another running enumerator.
func NewAll(e *Engine) *AllEnumerator {
	it := &AllEnumerator{
		e:       e,
		removed: make([]map[graph.NodeID]struct{}, e.l),
	}
	for i := range it.removed {
		it.removed[i] = make(map[graph.NodeID]struct{})
	}
	return it
}

// seeds returns S_i as a slice: V_i minus the removed set.
func (it *AllEnumerator) seeds(i int) []graph.NodeID {
	vi := it.e.keywordNodes[i]
	if len(it.removed[i]) == 0 {
		return vi
	}
	out := make([]graph.NodeID, 0, len(vi)-len(it.removed[i]))
	for _, v := range vi {
		if _, gone := it.removed[i][v]; !gone {
			out = append(out, v)
		}
	}
	return out
}

// Err reports why the enumeration stopped: nil after a clean
// exhaustion (every community was produced), or the governance stop
// reason — context.Canceled, context.DeadlineExceeded, or a
// govern.ErrBudgetExhausted — when the query's budget tripped and the
// results produced so far are a partial set. It is meaningful once
// NextCore/Next has returned ok == false.
func (it *AllEnumerator) Err() error { return it.err }

// stop freezes the enumeration with a governance stop reason.
func (it *AllEnumerator) stop(err error) (CoreCost, bool) {
	it.err = err
	it.done = true
	return CoreCost{}, false
}

// NextCore advances the enumeration and returns the next core with its
// cost, or ok == false when the query is exhausted or its budget
// tripped (Err distinguishes the two).
func (it *AllEnumerator) NextCore() (CoreCost, bool) {
	if it.done {
		return CoreCost{}, false
	}
	bud := it.e.budget
	if err := bud.Err(); err != nil {
		return it.stop(err)
	}
	// Pre-charge the result grant: with MaxResults = k exactly k calls
	// succeed and the k+1st reports the exhausted budget.
	if err := bud.ChargeResult(); err != nil {
		return it.stop(err)
	}
	if !it.started {
		it.started = true
		if !it.e.HasAllKeywords() {
			it.done = true
			return CoreCost{}, false
		}
		it.e.clearSlots()
		for i := 0; i < it.e.l; i++ {
			it.e.setSlotFull(i)
		}
		c, cost, ok := it.e.bestCore()
		// A budget tripped during the slot runs or the scan leaves
		// partial slot state; discard whatever bestCore said.
		if err := bud.Err(); err != nil {
			return it.stop(err)
		}
		if !ok {
			it.done = true
			return CoreCost{}, false
		}
		it.cur = c
		it.emitted++
		it.e.tr.Emission()
		return CoreCost{Core: c, Cost: cost}, true
	}

	// Procedure Next (Algorithm 1, lines 10-21). Pin every slot to the
	// current core's node, then probe subspaces from position l down.
	for i := 0; i < it.e.l; i++ {
		it.e.setSlotSingle(i, it.cur[i])
	}
	for i := it.e.l - 1; i >= 0; i-- {
		it.removed[i][it.cur[i]] = struct{}{}
		it.e.setSlot(i, it.seeds(i))
		c, cost, ok := it.e.bestCore()
		// One check covers the pins, the slot recompute and the scan:
		// any of them tripping invalidates this probe's outcome.
		if err := bud.Err(); err != nil {
			return it.stop(err)
		}
		if ok {
			it.cur = c
			it.emitted++
			it.e.tr.Emission()
			return CoreCost{Core: c, Cost: cost}, true
		}
		// Subspace exhausted: any later combination may reuse the whole
		// V_i again (line 19); the cached full-set run is restored for
		// free.
		it.removed[i] = make(map[graph.NodeID]struct{})
		it.e.setSlotFull(i)
	}
	it.done = true
	return CoreCost{}, false
}

// Next advances the enumeration and materializes the community for the
// next core, or returns ok == false when exhausted or the budget
// tripped (see Err).
func (it *AllEnumerator) Next() (*Community, bool) {
	cc, ok := it.NextCore()
	if !ok {
		return nil, false
	}
	r := it.e.GetCommunity(cc.Core)
	// A trip during materialization leaves r missing nodes; drop it
	// rather than hand back a silently-wrong community.
	if err := it.e.budget.Err(); err != nil {
		it.stop(err)
		return nil, false
	}
	return r, true
}

// Emitted reports how many cores have been produced so far.
func (it *AllEnumerator) Emitted() int { return it.emitted }

// Bytes estimates the enumerator's logical working memory beyond the
// engine: the removed sets and current core.
func (it *AllEnumerator) Bytes() int64 {
	b := int64(len(it.cur)) * 4
	for _, m := range it.removed {
		b += int64(len(m))*12 + 48
	}
	return b
}
