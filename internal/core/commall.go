package core

import "commdb/internal/graph"

// AllEnumerator is Algorithm 1 (PDall): it enumerates every community
// of the query in polynomial delay O(l·(n·log n + m)) per result with
// O(l·n + m) working space, complete and duplication-free by core.
//
// The enumerator maintains one candidate subset S_i per keyword (the
// paper's global S_i variables) and walks the virtual subspace tree
// depth-first: after emitting core C, the remaining cores are exactly
//
//	⋃_i {C[1..i-1]} × (S_i − {C[i]}) × V_{i+1} × … × V_l,
//
// each term of which is probed by one BestCore call over recomputed
// neighborSets.
type AllEnumerator struct {
	e       *Engine
	cur     Core
	removed []map[graph.NodeID]struct{} // S_i = V_i − removed[i]
	started bool
	done    bool
	emitted int
}

// NewAll returns a COMM-all enumerator for the engine's query. The
// engine must not be shared with another running enumerator.
func NewAll(e *Engine) *AllEnumerator {
	it := &AllEnumerator{
		e:       e,
		removed: make([]map[graph.NodeID]struct{}, e.l),
	}
	for i := range it.removed {
		it.removed[i] = make(map[graph.NodeID]struct{})
	}
	return it
}

// seeds returns S_i as a slice: V_i minus the removed set.
func (it *AllEnumerator) seeds(i int) []graph.NodeID {
	vi := it.e.keywordNodes[i]
	if len(it.removed[i]) == 0 {
		return vi
	}
	out := make([]graph.NodeID, 0, len(vi)-len(it.removed[i]))
	for _, v := range vi {
		if _, gone := it.removed[i][v]; !gone {
			out = append(out, v)
		}
	}
	return out
}

// NextCore advances the enumeration and returns the next core with its
// cost, or ok == false when the query is exhausted.
func (it *AllEnumerator) NextCore() (CoreCost, bool) {
	if it.done {
		return CoreCost{}, false
	}
	if !it.started {
		it.started = true
		if !it.e.HasAllKeywords() {
			it.done = true
			return CoreCost{}, false
		}
		it.e.clearSlots()
		for i := 0; i < it.e.l; i++ {
			it.e.setSlotFull(i)
		}
		c, cost, ok := it.e.bestCore()
		if !ok {
			it.done = true
			return CoreCost{}, false
		}
		it.cur = c
		it.emitted++
		return CoreCost{Core: c, Cost: cost}, true
	}

	// Procedure Next (Algorithm 1, lines 10-21). Pin every slot to the
	// current core's node, then probe subspaces from position l down.
	for i := 0; i < it.e.l; i++ {
		it.e.setSlotSingle(i, it.cur[i])
	}
	for i := it.e.l - 1; i >= 0; i-- {
		it.removed[i][it.cur[i]] = struct{}{}
		it.e.setSlot(i, it.seeds(i))
		if c, cost, ok := it.e.bestCore(); ok {
			it.cur = c
			it.emitted++
			return CoreCost{Core: c, Cost: cost}, true
		}
		// Subspace exhausted: any later combination may reuse the whole
		// V_i again (line 19); the cached full-set run is restored for
		// free.
		it.removed[i] = make(map[graph.NodeID]struct{})
		it.e.setSlotFull(i)
	}
	it.done = true
	return CoreCost{}, false
}

// Next advances the enumeration and materializes the community for the
// next core, or returns ok == false when exhausted.
func (it *AllEnumerator) Next() (*Community, bool) {
	cc, ok := it.NextCore()
	if !ok {
		return nil, false
	}
	return it.e.GetCommunity(cc.Core), true
}

// Emitted reports how many cores have been produced so far.
func (it *AllEnumerator) Emitted() int { return it.emitted }

// Bytes estimates the enumerator's logical working memory beyond the
// engine: the removed sets and current core.
func (it *AllEnumerator) Bytes() int64 {
	b := int64(len(it.cur)) * 4
	for _, m := range it.removed {
		b += int64(len(m))*12 + 48
	}
	return b
}
