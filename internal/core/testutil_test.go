package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"commdb/internal/graph"
)

// randomKeywordGraph builds a random directed graph with nkw keywords
// scattered over the nodes, for cross-checking the enumerators against
// the naive baseline.
func randomKeywordGraph(t testing.TB, rng *rand.Rand, n, m, nkw int) (*graph.Graph, []string) {
	t.Helper()
	kws := make([]string, nkw)
	for i := range kws {
		kws[i] = fmt.Sprintf("k%d", i)
	}
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		var terms []string
		for _, kw := range kws {
			if rng.Intn(4) == 0 {
				terms = append(terms, kw)
			}
		}
		b.AddNode(fmt.Sprintf("n%d", i), terms...)
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), float64(rng.Intn(5)+1))
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g, kws
}

// coreSet maps Core.Key() -> cost for set comparisons.
func coreSet(t *testing.T, ccs []CoreCost) map[string]float64 {
	t.Helper()
	set := make(map[string]float64, len(ccs))
	for _, cc := range ccs {
		k := cc.Core.Key()
		if _, dup := set[k]; dup {
			t.Fatalf("duplicate core %s in result set", k)
		}
		set[k] = cc.Cost
	}
	return set
}

// drainAll exhausts a COMM-all enumerator, failing the test if it emits
// more than limit results (runaway enumeration guard).
func drainAll(t *testing.T, it *AllEnumerator, limit int) []CoreCost {
	t.Helper()
	var out []CoreCost
	for {
		cc, ok := it.NextCore()
		if !ok {
			return out
		}
		out = append(out, cc)
		if len(out) > limit {
			t.Fatalf("enumerator exceeded %d results — likely not terminating", limit)
		}
	}
}

// drainTopK pulls up to k results from a COMM-k enumerator.
func drainTopK(t *testing.T, it *TopKEnumerator, k int) []CoreCost {
	t.Helper()
	var out []CoreCost
	for len(out) < k {
		cc, ok := it.NextCore()
		if !ok {
			return out
		}
		out = append(out, cc)
	}
	return out
}

func sortedCosts(ccs []CoreCost) []float64 {
	out := make([]float64, len(ccs))
	for i, cc := range ccs {
		out[i] = cc.Cost
	}
	sort.Float64s(out)
	return out
}

const costEps = 1e-9

func costsEqual(a, b float64) bool {
	d := a - b
	return d < costEps && d > -costEps
}
