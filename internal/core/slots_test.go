package core

import (
	"math"
	"math/rand"
	"testing"

	"commdb/internal/graph"
	"commdb/internal/sssp"
)

// TestSlotAggregateInvariant drives the engine's slot machinery through
// random interleavings of full-set installs, singleton pins, and
// arbitrary subset runs, and after every operation recomputes the
// per-node (sum, cnt) aggregates from scratch to verify the incremental
// maintenance (including the cached full-set fast path and buffer
// recycling) never drifts.
func TestSlotAggregateInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 10; trial++ {
		g, kws := randomKeywordGraph(t, rng, 25, 80, 3)
		e, err := NewEngine(g, nil, kws, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !e.HasAllKeywords() {
			continue
		}
		ws := sssp.NewWorkspace(g)
		check := NewOracleChecker(g, e, ws)
		for i := 0; i < e.l; i++ {
			e.setSlotFull(i)
			check.record(i, e.keywordNodes[i])
		}
		check.verify(t, trial, -1)
		for step := 0; step < 120; step++ {
			i := rng.Intn(e.l)
			switch rng.Intn(3) {
			case 0:
				e.setSlotFull(i)
				check.record(i, e.keywordNodes[i])
			case 1:
				vi := e.keywordNodes[i]
				v := vi[rng.Intn(len(vi))]
				e.setSlotSingle(i, v)
				check.record(i, []graph.NodeID{v})
			default:
				// Random subset of V_i (possibly empty).
				var seeds []graph.NodeID
				for _, v := range e.keywordNodes[i] {
					if rng.Intn(2) == 0 {
						seeds = append(seeds, v)
					}
				}
				e.setSlot(i, seeds)
				check.record(i, seeds)
			}
			check.verify(t, trial, step)
		}
		// clearSlots returns everything to zero.
		e.clearSlots()
		for v := range e.cnt {
			if e.cnt[v] != 0 || e.sum[v] != 0 {
				t.Fatalf("trial %d: aggregates non-zero after clearSlots", trial)
			}
		}
	}
}

// OracleChecker recomputes slot aggregates from scratch.
type OracleChecker struct {
	g     *graph.Graph
	e     *Engine
	ws    *sssp.Workspace
	seeds [][]graph.NodeID
}

func NewOracleChecker(g *graph.Graph, e *Engine, ws *sssp.Workspace) *OracleChecker {
	return &OracleChecker{g: g, e: e, ws: ws, seeds: make([][]graph.NodeID, e.l)}
}

func (c *OracleChecker) record(i int, seeds []graph.NodeID) {
	c.seeds[i] = append([]graph.NodeID(nil), seeds...)
}

func (c *OracleChecker) verify(t *testing.T, trial, step int) {
	t.Helper()
	n := c.g.NumNodes()
	wantSum := make([]float64, n)
	wantCnt := make([]int16, n)
	res := sssp.NewResult(n)
	for i := 0; i < c.e.l; i++ {
		c.ws.RunFromNodes(sssp.Reverse, c.seeds[i], c.e.rmax, res)
		for _, v := range res.Visited() {
			d, _ := res.Dist(v)
			wantSum[v] += d
			wantCnt[v]++
		}
	}
	for v := 0; v < n; v++ {
		if c.e.cnt[v] != wantCnt[v] {
			t.Fatalf("trial %d step %d: cnt[%d] = %d, oracle %d", trial, step, v, c.e.cnt[v], wantCnt[v])
		}
		if math.Abs(c.e.sum[v]-wantSum[v]) > 1e-9 {
			t.Fatalf("trial %d step %d: sum[%d] = %v, oracle %v", trial, step, v, c.e.sum[v], wantSum[v])
		}
	}
}
