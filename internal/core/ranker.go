package core

import "fmt"

// Ranker is a pluggable community cost aggregate: it folds a candidate
// center's per-keyword shortest-path distances into one score, lower
// being better. The paper (Section II) notes its algorithms do not
// depend on a specific cost function as long as the aggregate is
// monotone in every component — growing any single distance must not
// shrink the cost — which is what keeps Algorithm 1's polynomial-delay
// argument and Algorithm 5's non-decreasing emission order intact.
// Implementations must be pure functions of the distance slice (no
// state, safe for concurrent calls) and must not retain the slice.
type Ranker interface {
	// Name identifies the ranker in traces and documentation.
	Name() string
	// Cost aggregates one candidate's per-keyword distances.
	Cost(dists []float64) float64
}

// sumRanker is the paper's default cost restated as a Ranker: the
// summed center→knode distances.
type sumRanker struct{}

func (sumRanker) Name() string { return "sum" }
func (sumRanker) Cost(dists []float64) float64 {
	total := 0.0
	for _, d := range dists {
		total += d
	}
	return total
}

// maxRanker ranks by the largest center→knode distance (the
// eccentricity-style radius measure also available as
// CostMaxDistance).
type maxRanker struct{}

func (maxRanker) Name() string { return "max" }
func (maxRanker) Cost(dists []float64) float64 {
	best := 0.0
	for _, d := range dists {
		if d > best {
			best = d
		}
	}
	return best
}

// SumRanker returns the paper's default summed-distance aggregate.
func SumRanker() Ranker { return sumRanker{} }

// MaxRanker returns the max-distance (radius) aggregate.
func MaxRanker() Ranker { return maxRanker{} }

// balancedRanker blends total weight with the worst single distance.
type balancedRanker struct{ alpha float64 }

func (r balancedRanker) Name() string { return fmt.Sprintf("balanced(%g)", r.alpha) }
func (r balancedRanker) Cost(dists []float64) float64 {
	sum, max := 0.0, 0.0
	for _, d := range dists {
		sum += d
		if d > max {
			max = d
		}
	}
	return r.alpha*sum + (1-r.alpha)*max
}

// BalancedRanker blends the paper's summed-distance cost with the
// worst single center→knode distance: alpha·sum + (1−alpha)·max, for
// alpha in [0, 1]. The blend follows the combined ranking idea of
// Kargar, Golab and Szlichta ("Effective Keyword Search in Graphs"):
// total weight alone lets one keyword sit far from the center when the
// others are close, while the max term penalizes exactly that
// lopsidedness. Both components are monotone in every distance and a
// non-negative combination of monotone aggregates is monotone, so the
// enumeration guarantees are preserved at any alpha.
func BalancedRanker(alpha float64) (Ranker, error) {
	if !(alpha >= 0 && alpha <= 1) { // negated form also rejects NaN
		return nil, fmt.Errorf("core: BalancedRanker alpha %v outside [0, 1]", alpha)
	}
	return balancedRanker{alpha: alpha}, nil
}
