package core

import (
	"testing"

	"commdb/internal/graph"
)

// buildWeightedLine builds c -> k1 (edge 1) and c -> m -> k2 (edges 1,1)
// where m carries node weight mw.
func buildWeightedLine(t *testing.T, mw float64) (*graph.Graph, []graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder()
	c := b.AddNode("c")
	k1 := b.AddNode("k1", "x")
	m := b.AddNode("m")
	k2 := b.AddNode("k2", "y")
	b.AddEdge(c, k1, 1)
	b.AddEdge(c, m, 1)
	b.AddEdge(m, k2, 1)
	b.SetNodeWeight(m, mw)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g, []graph.NodeID{c, k1, m, k2}
}

// TestNodeWeightsInCost: the footnote-1 extension — node weights on
// intermediate path nodes count toward community cost and against the
// radius.
func TestNodeWeightsInCost(t *testing.T) {
	g, _ := buildWeightedLine(t, 3)
	e, err := NewEngine(g, nil, []string{"x", "y"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, NewAll(e), 10)
	if len(got) != 1 {
		t.Fatalf("found %d communities, want 1", len(got))
	}
	// cost = dist(c,k1) + dist(c,k2) = 1 + (1 + 3 + 1) = 6.
	if !costsEqual(got[0].Cost, 6) {
		t.Fatalf("cost = %v, want 6 (node weight of m counted once)", got[0].Cost)
	}

	// With the radius below the weighted path, the community vanishes.
	e2, err := NewEngine(g, nil, []string{"x", "y"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, NewAll(e2), 10); len(got) != 0 {
		t.Fatalf("rmax below weighted path still found %d communities", len(got))
	}

	// Zero node weights behave exactly like an unweighted graph.
	g0, _ := buildWeightedLine(t, 0)
	e3, err := NewEngine(g0, nil, []string{"x", "y"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got0 := drainAll(t, NewAll(e3), 10)
	if len(got0) != 1 || !costsEqual(got0[0].Cost, 3) {
		t.Fatalf("zero-weight graph: %v", got0)
	}
}

// TestNodeWeightsCommunityMembership: GetCommunity's ds+dt test counts
// an intermediate node's weight exactly once.
func TestNodeWeightsCommunityMembership(t *testing.T) {
	// Rmax = 5: path c -> m -> k2 costs 1 + mw + 1. With mw = 3 the
	// total is 5, so m is a pnode exactly at the boundary.
	g, ids := buildWeightedLine(t, 3)
	e, err := NewEngine(g, nil, []string{"x", "y"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	r := e.GetCommunity(Core{ids[1], ids[3]})
	if len(r.Cnodes) != 1 || r.Cnodes[0] != ids[0] {
		t.Fatalf("centers = %v, want {c}", r.Cnodes)
	}
	if len(r.Pnodes) != 1 || r.Pnodes[0] != ids[2] {
		t.Fatalf("pnodes = %v, want {m}", r.Pnodes)
	}
	// Tighten the radius below 5: m's path no longer fits, the core has
	// no center at all.
	e2, err := NewEngine(g, nil, []string{"x", "y"}, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	r2 := e2.GetCommunity(Core{ids[1], ids[3]})
	if len(r2.Cnodes) != 0 {
		t.Fatalf("centers = %v, want none below the weighted radius", r2.Cnodes)
	}
}

// TestNodeWeightsRejectedInvalid: builders reject bad node weights.
func TestNodeWeightsRejectedInvalid(t *testing.T) {
	b := graph.NewBuilder()
	v := b.AddNode("v")
	b.SetNodeWeight(v, -1)
	if _, err := b.Freeze(); err == nil {
		t.Fatal("negative node weight should be rejected")
	}
	b2 := graph.NewBuilder()
	b2.AddNode("v")
	b2.SetNodeWeight(99, 1)
	if _, err := b2.Freeze(); err == nil {
		t.Fatal("node weight on unknown node should be rejected")
	}
}
