package core

import (
	"math"
	"math/rand"
	"testing"

	"commdb/internal/graph"
	"commdb/internal/sssp"
)

// checkCommunityInvariants verifies Definition 2.1 for a materialized
// community against brute-force shortest paths:
//   - every cnode reaches every core node within Rmax,
//   - no node outside Cnodes does,
//   - every community node u satisfies min-center-dist(u) +
//     min-knode-dist(u) <= Rmax, and every graph node satisfying it is
//     in the community,
//   - edges are exactly the induced edges,
//   - Cost equals the minimum center total distance.
func checkCommunityInvariants(t *testing.T, g *graph.Graph, r *Community, rmax float64) {
	t.Helper()
	n := g.NumNodes()
	ws := sssp.NewWorkspace(g)

	// All-pairs via n forward runs (test graphs are small).
	dist := make([][]float64, n)
	res := sssp.NewResult(n)
	for u := 0; u < n; u++ {
		ws.RunFromNodes(sssp.Forward, []graph.NodeID{graph.NodeID(u)}, math.Inf(1), res)
		dist[u] = make([]float64, n)
		for v := 0; v < n; v++ {
			d, ok := res.Dist(graph.NodeID(v))
			if !ok {
				d = math.Inf(1)
			}
			dist[u][v] = d
		}
	}

	inC := map[graph.NodeID]bool{}
	for _, c := range r.Cnodes {
		inC[c] = true
	}
	// Center characterization.
	bestTotal := math.Inf(1)
	for u := 0; u < n; u++ {
		reachesAll := true
		for _, kn := range r.Knodes {
			if dist[u][kn] > rmax {
				reachesAll = false
				break
			}
		}
		if reachesAll != inC[graph.NodeID(u)] {
			t.Fatalf("node %d center membership = %v, want %v", u, inC[graph.NodeID(u)], reachesAll)
		}
		if reachesAll {
			total := 0.0
			for _, ci := range r.Core {
				total += dist[u][ci]
			}
			if total < bestTotal {
				bestTotal = total
			}
		}
	}
	if len(r.Cnodes) > 0 && !costsEqual(r.Cost, bestTotal) {
		t.Fatalf("cost = %v, brute force %v", r.Cost, bestTotal)
	}

	// Node membership characterization.
	if len(r.Cnodes) > 0 {
		inR := map[graph.NodeID]bool{}
		for _, v := range r.Nodes {
			inR[v] = true
		}
		for u := 0; u < n; u++ {
			ds := math.Inf(1)
			for _, c := range r.Cnodes {
				if dist[c][u] < ds {
					ds = dist[c][u]
				}
			}
			dt := math.Inf(1)
			for _, kn := range r.Knodes {
				if dist[u][kn] < dt {
					dt = dist[u][kn]
				}
			}
			want := ds+dt <= rmax
			if want != inR[graph.NodeID(u)] {
				t.Fatalf("node %d membership = %v, want %v (ds=%v dt=%v rmax=%v)",
					u, inR[graph.NodeID(u)], want, ds, dt, rmax)
			}
		}

		// Induced edges: exactly the graph edges with both ends inside.
		type ep = graph.EdgePair
		gotE := map[ep]int{}
		for _, e := range r.Edges {
			gotE[e]++
		}
		wantE := map[ep]int{}
		for _, u := range r.Nodes {
			for _, e := range g.OutEdges(u) {
				if inR[e.To] {
					wantE[ep{From: u, To: e.To}]++
				}
			}
		}
		if len(gotE) != len(wantE) {
			t.Fatalf("induced edges: got %d distinct, want %d", len(gotE), len(wantE))
		}
		for k, c := range wantE {
			if gotE[k] != c {
				t.Fatalf("edge %v count %d, want %d", k, gotE[k], c)
			}
		}

		// Partition: Nodes = Knodes ∪ Cnodes ∪ Pnodes, Pnodes disjoint.
		seen := map[graph.NodeID]bool{}
		for _, v := range r.Knodes {
			seen[v] = true
		}
		for _, v := range r.Cnodes {
			seen[v] = true
		}
		for _, v := range r.Pnodes {
			if seen[v] {
				t.Fatalf("pnode %d is also a knode or cnode", v)
			}
			seen[v] = true
		}
		if len(seen) != len(r.Nodes) {
			t.Fatalf("classification covers %d nodes, community has %d", len(seen), len(r.Nodes))
		}
	}
}

// TestGetCommunityInvariantsRandom checks every community of many
// random queries against the brute-force characterization.
func TestGetCommunityInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(18) + 4
		g, kws := randomKeywordGraph(t, rng, n, n*3, 2)
		rmax := float64(rng.Intn(8) + 2)
		e, err := NewEngine(g, nil, kws, rmax)
		if err != nil {
			t.Fatal(err)
		}
		it := NewAll(e)
		count := 0
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			checkCommunityInvariants(t, g, r, rmax)
			count++
			if count > 2000 {
				t.Fatal("too many communities")
			}
		}
	}
}

// TestGetCommunityUncenteredCore: a core with no common center yields a
// community with no centers and no pnodes (degenerate, API-level only).
func TestGetCommunityUncenteredCore(t *testing.T) {
	g, ids := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	// v13 (a) and v2 (b) have no common center within 8.
	r := e.GetCommunity(Core{ids[13], ids[2], ids[3]})
	if len(r.Cnodes) != 0 {
		t.Fatalf("centers = %v, want none", r.Cnodes)
	}
	if len(r.Pnodes) != 0 {
		t.Fatal("uncentered community should have no pnodes")
	}
}

// TestGetCommunityHasNode exercises the binary-search membership.
func TestGetCommunityHasNode(t *testing.T) {
	g, ids := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	r := e.GetCommunity(Core{ids[13], ids[8], ids[11]})
	for _, v := range r.Nodes {
		if !r.HasNode(v) {
			t.Fatalf("HasNode(%d) = false for a member", v)
		}
	}
	if r.HasNode(ids[1]) {
		t.Fatal("v1 is not in R5")
	}
	if r.Bytes() <= 0 {
		t.Fatal("community Bytes should be positive")
	}
}

// TestGetCommunityDuplicateCoreNodes: a node serving two keyword
// positions is counted once as a knode but twice in the cost.
func TestGetCommunityDuplicateCoreNodes(t *testing.T) {
	b := graph.NewBuilder()
	both := b.AddNode("both", "x", "y")
	c := b.AddNode("c")
	b.AddEdge(c, both, 2)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(g, nil, []string{"x", "y"}, 5)
	r := e.GetCommunity(Core{both, both})
	if len(r.Knodes) != 1 {
		t.Fatalf("knodes = %v, want 1 distinct", r.Knodes)
	}
	// Best center is the node itself: cost 0 + 0.
	if !costsEqual(r.Cost, 0) {
		t.Fatalf("cost = %v, want 0", r.Cost)
	}
	// Both 'both' and 'c' reach the core node within 5, so both are
	// centers.
	if len(r.Cnodes) != 2 {
		t.Fatalf("cnodes = %v, want both nodes", r.Cnodes)
	}
}
