package core

import (
	"math/rand"
	"testing"
)

// TestMaxCostMatchesNaiveRandom: under the max-distance cost function,
// PDall still matches the naive oracle's core set and costs, and PDk
// still emits in non-decreasing (max-)cost order — the paper's claim
// that the algorithms do not depend on a specific cost function.
func TestMaxCostMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(20) + 4
		g, kws := randomKeywordGraph(t, rng, n, n*3, 2)
		rmax := float64(rng.Intn(8) + 2)

		e1, err := NewEngine(g, nil, kws, rmax)
		if err != nil {
			t.Fatal(err)
		}
		e1.SetCostFunction(CostMaxDistance)
		naive := EnumerateNaive(e1)
		want := coreSet(t, naive)

		e2, _ := NewEngine(g, nil, kws, rmax)
		e2.SetCostFunction(CostMaxDistance)
		got := coreSet(t, drainAll(t, NewAll(e2), len(want)+10))
		if len(got) != len(want) {
			t.Fatalf("trial %d: PDall(max) %d cores, naive %d", trial, len(got), len(want))
		}
		for k, wc := range want {
			gc, ok := got[k]
			if !ok {
				t.Fatalf("trial %d: core %s missing", trial, k)
			}
			if !costsEqual(gc, wc) {
				t.Fatalf("trial %d: core %s max-cost %v, naive %v", trial, k, gc, wc)
			}
		}

		e3, _ := NewEngine(g, nil, kws, rmax)
		e3.SetCostFunction(CostMaxDistance)
		top := drainTopK(t, NewTopK(e3), len(want)+10)
		if len(top) != len(want) {
			t.Fatalf("trial %d: PDk(max) emitted %d, want %d", trial, len(top), len(want))
		}
		wantCosts := sortedCosts(naive)
		for i := range top {
			if !costsEqual(top[i].Cost, wantCosts[i]) {
				t.Fatalf("trial %d: rank %d max-cost %v, want %v", trial, i+1, top[i].Cost, wantCosts[i])
			}
		}
	}
}

// TestMaxCostPaperExample: on the Fig. 4 example the max-distance cost
// of core [v4,v8,v6] is 4 (center v4: max(0,4,3)) and it stays rank 1.
func TestMaxCostPaperExample(t *testing.T) {
	g, ids := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	e.SetCostFunction(CostMaxDistance)
	it := NewTopK(e)
	first, ok := it.NextCore()
	if !ok {
		t.Fatal("no result")
	}
	if !first.Core.Equal(Core{ids[4], ids[8], ids[6]}) {
		t.Fatalf("rank 1 core = %v, want [v4 v8 v6]", first.Core)
	}
	if !costsEqual(first.Cost, 4) {
		t.Fatalf("rank 1 max-cost = %v, want 4", first.Cost)
	}
	// GetCommunity agrees with the enumerator's cost.
	r := e.GetCommunity(first.Core)
	if !costsEqual(r.Cost, 4) {
		t.Fatalf("materialized max-cost = %v, want 4", r.Cost)
	}
}

// TestCostOfAggregates sanity-checks the aggregate helper.
func TestCostOfAggregates(t *testing.T) {
	g, _ := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a"}, 8)
	if got := e.CostOf([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("sum = %v", got)
	}
	e.SetCostFunction(CostMaxDistance)
	if got := e.CostOf([]float64{1, 5, 3}); got != 5 {
		t.Fatalf("max = %v", got)
	}
	if got := e.CostOf(nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}
