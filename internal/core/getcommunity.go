package core

import (
	"sort"

	"commdb/internal/graph"
	"commdb/internal/sssp"
)

// GetCommunity is Algorithm 4: materialize the community uniquely
// determined by core c.
//
// It runs one bounded reverse Dijkstra per distinct core node to find
// the centers (every node within Rmax of all core nodes), then the
// virtual-source forward pass from the centers and the virtual-sink
// reverse pass from the core nodes; a node belongs to the community iff
// dist(s,u) + dist(u,t) <= Rmax. Total cost O(l·(n·log n + m)).
func (e *Engine) GetCommunity(c Core) *Community {
	e.tr.Add("getcommunity_calls", 1)
	e.ensureGCBuffers()

	// Distinct knodes (a node may serve several keyword positions).
	knodes := distinctNodes(c)

	// Per-knode reverse passes: after these, gcKnode[j].Dist(v) is
	// dist(v, knodes[j]) when within Rmax.
	for j, kn := range knodes {
		e.budget.ChargeNeighborRun()
		e.ws.RunFromNodes(sssp.Reverse, []graph.NodeID{kn}, e.rmax, e.gcKnode[j])
		e.neighborRuns++
		e.tr.Add("neighbor_runs", 1)
	}

	// Centers: settled in every per-knode pass. Scan the smallest pass
	// and probe the others.
	smallest := 0
	for j := 1; j < len(knodes); j++ {
		if e.gcKnode[j].Len() < e.gcKnode[smallest].Len() {
			smallest = j
		}
	}
	knodeIdx := make(map[graph.NodeID]int, len(knodes))
	for j, kn := range knodes {
		knodeIdx[kn] = j
	}
	var centers []graph.NodeID
	cost := 0.0
	haveCost := false
	for _, v := range e.gcKnode[smallest].Visited() {
		all := true
		for j := range knodes {
			if j == smallest {
				continue
			}
			if !e.gcKnode[j].Contains(v) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		centers = append(centers, v)
		// The cost aggregates every keyword position, so duplicate core
		// nodes contribute once per position.
		dists := make([]float64, len(c))
		for i, ci := range c {
			dists[i], _ = e.gcKnode[knodeIdx[ci]].Dist(v)
		}
		total := e.CostOf(dists)
		if !haveCost || total < cost {
			cost = total
			haveCost = true
		}
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })

	r := &Community{Core: c.Clone(), Knodes: knodes, Cnodes: centers, Cost: cost}
	if len(centers) == 0 {
		// No center reaches every knode within Rmax: the core admits no
		// community. Callers in the enumerators never hit this (BestCore
		// only returns centered cores), but direct API users may.
		r.Nodes = append([]graph.NodeID(nil), knodes...)
		return r
	}

	// Forward pass from all centers (virtual source s) and reverse pass
	// from all knodes (virtual sink t).
	e.budget.ChargeNeighborRun()
	e.ws.RunFromNodes(sssp.Forward, centers, e.rmax, e.gcFwd)
	e.budget.ChargeNeighborRun()
	e.ws.RunFromNodes(sssp.Reverse, knodes, e.rmax, e.gcRev)
	e.neighborRuns += 2
	e.tr.Add("neighbor_runs", 2)

	e.gcMarkID++
	mark := e.gcMarkID
	for _, u := range e.gcFwd.Visited() {
		ds, _ := e.gcFwd.Dist(u)
		dt, ok := e.gcRev.Dist(u)
		if ok && ds+dt <= e.rmax {
			e.gcMark[u] = mark
			r.Nodes = append(r.Nodes, u)
		}
	}
	sort.Slice(r.Nodes, func(i, j int) bool { return r.Nodes[i] < r.Nodes[j] })

	// Classify pnodes: community nodes that are neither knodes nor
	// centers.
	isK := make(map[graph.NodeID]bool, len(knodes))
	for _, kn := range knodes {
		isK[kn] = true
	}
	isC := make(map[graph.NodeID]bool, len(centers))
	for _, cn := range centers {
		isC[cn] = true
	}
	for _, u := range r.Nodes {
		if !isK[u] && !isC[u] {
			r.Pnodes = append(r.Pnodes, u)
		}
	}

	// Induced edges over the community's nodes.
	for _, u := range r.Nodes {
		for _, edge := range e.g.OutEdges(u) {
			if e.gcMark[edge.To] == mark {
				r.Edges = append(r.Edges, graph.EdgePair{From: u, To: edge.To})
			}
		}
	}
	return r
}

func (e *Engine) ensureGCBuffers() {
	if e.gcFwd != nil {
		return
	}
	n := e.g.NumNodes()
	e.gcFwd = sssp.NewResult(n)
	e.gcRev = sssp.NewResult(n)
	e.gcKnode = make([]*sssp.Result, e.l)
	for i := range e.gcKnode {
		e.gcKnode[i] = sssp.NewResult(n)
	}
	e.gcMark = make([]int32, n)
}

func distinctNodes(c Core) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(c))
	for _, v := range c {
		dup := false
		for _, have := range out {
			if have == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
