package core

import (
	"sort"

	"commdb/internal/graph"
	"commdb/internal/sssp"
)

// gcScratch holds the buffers of one Algorithm 4 materialization: a
// shortest-path workspace plus the pass results and the membership
// mark array. The engine lazily owns one for the sequential path; each
// materialization-pipeline worker owns a private one, so concurrent
// GetCommunity calls never share mutable state — everything they read
// off the Engine (graph, radius, cost function, budget, trace) is
// immutable after setup or internally synchronized.
type gcScratch struct {
	ws *sssp.Workspace
	// ownWS marks a workspace checked out of the engine's pool for this
	// scratch alone; release returns it. The engine's own scratch
	// borrows e.ws instead (Engine.Close returns that one).
	ownWS  bool
	fwd    *sssp.Result
	rev    *sssp.Result
	knode  []*sssp.Result
	mark   []int32
	markID int32
}

// newGCScratch sizes a scratch for the engine's graph and keyword
// count around the given workspace.
func (e *Engine) newGCScratch(ws *sssp.Workspace, owned bool) *gcScratch {
	n := e.g.NumNodes()
	sc := &gcScratch{
		ws:    ws,
		ownWS: owned,
		fwd:   sssp.NewResult(n),
		rev:   sssp.NewResult(n),
		knode: make([]*sssp.Result, e.l),
		mark:  make([]int32, n),
	}
	for i := range sc.knode {
		sc.knode[i] = sssp.NewResult(n)
	}
	return sc
}

// release returns an owned workspace to the pool. Idempotent.
func (sc *gcScratch) release(p *sssp.Pool) {
	if sc.ownWS && sc.ws != nil {
		p.Put(sc.ws)
		sc.ws = nil
	}
}

// bytes reports the scratch's logical footprint, for Engine.Bytes.
func (sc *gcScratch) bytes() int64 {
	b := sc.fwd.Bytes() + sc.rev.Bytes() + int64(len(sc.mark))*4
	for _, r := range sc.knode {
		b += r.Bytes()
	}
	return b
}

// GetCommunity is Algorithm 4: materialize the community uniquely
// determined by core c.
//
// It runs one bounded reverse Dijkstra per distinct core node to find
// the centers (every node within Rmax of all core nodes), then the
// virtual-source forward pass from the centers and the virtual-sink
// reverse pass from the core nodes; a node belongs to the community iff
// dist(s,u) + dist(u,t) <= Rmax. Total cost O(l·(n·log n + m)).
func (e *Engine) GetCommunity(c Core) *Community {
	if e.gc == nil {
		e.gc = e.newGCScratch(e.ws, false)
	}
	return e.getCommunity(c, e.gc)
}

// getCommunity is GetCommunity against an explicit scratch, the form
// the materialization pipeline's workers call concurrently.
func (e *Engine) getCommunity(c Core, sc *gcScratch) *Community {
	e.tr.Add("getcommunity_calls", 1)

	// Distinct knodes (a node may serve several keyword positions).
	knodes := distinctNodes(c)

	// Per-knode reverse passes: after these, sc.knode[j].Dist(v) is
	// dist(v, knodes[j]) when within Rmax.
	for j, kn := range knodes {
		e.budget.ChargeNeighborRun()
		sc.ws.RunFromNodes(sssp.Reverse, []graph.NodeID{kn}, e.rmax, sc.knode[j])
		e.neighborRuns.Add(1)
		e.tr.Add("neighbor_runs", 1)
	}

	// Centers: settled in every per-knode pass. Scan the smallest pass
	// and probe the others.
	smallest := 0
	for j := 1; j < len(knodes); j++ {
		if sc.knode[j].Len() < sc.knode[smallest].Len() {
			smallest = j
		}
	}
	knodeIdx := make(map[graph.NodeID]int, len(knodes))
	for j, kn := range knodes {
		knodeIdx[kn] = j
	}
	var centers []graph.NodeID
	cost := 0.0
	haveCost := false
	// Per-center core eccentricities bound where this exact community
	// remains valid: every center survives radii down to the max
	// eccentricity, and the core keeps some center down to the min.
	maxEcc, minEcc := 0.0, 0.0
	for _, v := range sc.knode[smallest].Visited() {
		all := true
		for j := range knodes {
			if j == smallest {
				continue
			}
			if !sc.knode[j].Contains(v) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		centers = append(centers, v)
		// The cost aggregates every keyword position, so duplicate core
		// nodes contribute once per position.
		dists := make([]float64, len(c))
		ecc := 0.0
		for i, ci := range c {
			dists[i], _ = sc.knode[knodeIdx[ci]].Dist(v)
			if dists[i] > ecc {
				ecc = dists[i]
			}
		}
		if len(centers) == 1 || ecc > maxEcc {
			maxEcc = ecc
		}
		if len(centers) == 1 || ecc < minEcc {
			minEcc = ecc
		}
		total := e.CostOf(dists)
		if !haveCost || total < cost {
			cost = total
			haveCost = true
		}
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })

	r := &Community{Core: c.Clone(), Knodes: knodes, Cnodes: centers, Cost: cost,
		ReuseRadius: maxEcc, CoreRadius: minEcc}
	if len(centers) == 0 {
		// No center reaches every knode within Rmax: the core admits no
		// community. Callers in the enumerators never hit this (BestCore
		// only returns centered cores), but direct API users may.
		r.Nodes = append([]graph.NodeID(nil), knodes...)
		return r
	}

	// Forward pass from all centers (virtual source s) and reverse pass
	// from all knodes (virtual sink t).
	e.budget.ChargeNeighborRun()
	sc.ws.RunFromNodes(sssp.Forward, centers, e.rmax, sc.fwd)
	e.budget.ChargeNeighborRun()
	sc.ws.RunFromNodes(sssp.Reverse, knodes, e.rmax, sc.rev)
	e.neighborRuns.Add(2)
	e.tr.Add("neighbor_runs", 2)

	sc.markID++
	mark := sc.markID
	for _, u := range sc.fwd.Visited() {
		ds, _ := sc.fwd.Dist(u)
		dt, ok := sc.rev.Dist(u)
		if ok && ds+dt <= e.rmax {
			sc.mark[u] = mark
			r.Nodes = append(r.Nodes, u)
			// Membership is the direct test ds+dt ≤ Rmax, so the exact
			// member set survives down-radius reuse only while every
			// member's path length still fits — center eccentricities
			// alone would let boundary members leak out.
			if ds+dt > r.ReuseRadius {
				r.ReuseRadius = ds + dt
			}
		}
	}
	sort.Slice(r.Nodes, func(i, j int) bool { return r.Nodes[i] < r.Nodes[j] })

	// Classify pnodes: community nodes that are neither knodes nor
	// centers.
	isK := make(map[graph.NodeID]bool, len(knodes))
	for _, kn := range knodes {
		isK[kn] = true
	}
	isC := make(map[graph.NodeID]bool, len(centers))
	for _, cn := range centers {
		isC[cn] = true
	}
	for _, u := range r.Nodes {
		if !isK[u] && !isC[u] {
			r.Pnodes = append(r.Pnodes, u)
		}
	}

	// Induced edges over the community's nodes.
	for _, u := range r.Nodes {
		for _, edge := range e.g.OutEdges(u) {
			if sc.mark[edge.To] == mark {
				r.Edges = append(r.Edges, graph.EdgePair{From: u, To: edge.To})
			}
		}
	}
	return r
}

func distinctNodes(c Core) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(c))
	for _, v := range c {
		dup := false
		for _, have := range out {
			if have == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
