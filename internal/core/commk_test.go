package core

import (
	"math/rand"
	"testing"

	"commdb/internal/graph"
)

func newTwoComponentBuilder() *graph.Builder {
	b := graph.NewBuilder()
	a1 := b.AddNode("a1", "left")
	a2 := b.AddNode("a2")
	b.AddBiEdge(a1, a2, 1)
	c1 := b.AddNode("c1", "right")
	c2 := b.AddNode("c2")
	b.AddBiEdge(c1, c2, 1)
	return b
}

// TestTopKMatchesNaiveOrderRandom: PDk must emit exactly the naive core
// set, in non-decreasing cost order, across many random graphs.
func TestTopKMatchesNaiveOrderRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(25) + 4
		m := rng.Intn(3*n) + n
		l := rng.Intn(3) + 2
		rmax := float64(rng.Intn(10) + 2)
		g, kws := randomKeywordGraph(t, rng, n, m, l)

		e1, err := NewEngine(g, nil, kws, rmax)
		if err != nil {
			t.Fatal(err)
		}
		naive := EnumerateNaive(e1)
		want := coreSet(t, naive)

		e2, _ := NewEngine(g, nil, kws, rmax)
		it := NewTopK(e2)
		got := drainTopK(t, it, len(want)+10)

		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d m=%d l=%d rmax=%v): PDk emitted %d cores, naive %d",
				trial, n, m, l, rmax, len(got), len(want))
		}
		gotSet := coreSet(t, got) // also asserts duplication-free
		for k, wc := range want {
			gc, ok := gotSet[k]
			if !ok {
				t.Fatalf("trial %d: core %s missing from PDk", trial, k)
			}
			if !costsEqual(gc, wc) {
				t.Fatalf("trial %d: core %s cost %v, naive %v", trial, k, gc, wc)
			}
		}
		// Ranking order: costs must be non-decreasing.
		for i := 1; i < len(got); i++ {
			if got[i].Cost < got[i-1].Cost-costEps {
				t.Fatalf("trial %d: cost order violated at %d: %v after %v",
					trial, i, got[i].Cost, got[i-1].Cost)
			}
		}
		// And the emitted cost sequence equals the sorted naive costs.
		wantCosts := sortedCosts(naive)
		for i := range got {
			if !costsEqual(got[i].Cost, wantCosts[i]) {
				t.Fatalf("trial %d: rank %d cost %v, want %v", trial, i+1, got[i].Cost, wantCosts[i])
			}
		}
	}
}

// TestTopKPrefixOfAll: for any k, the top-k costs are the k smallest
// COMM-all costs.
func TestTopKPrefixOfAll(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 40; trial++ {
		g, kws := randomKeywordGraph(t, rng, rng.Intn(20)+5, rng.Intn(60)+10, 2)
		rmax := float64(rng.Intn(8) + 2)
		e1, _ := NewEngine(g, nil, kws, rmax)
		all := drainAll(t, NewAll(e1), 100000)
		if len(all) == 0 {
			continue
		}
		costs := sortedCosts(all)
		k := rng.Intn(len(all)) + 1
		e2, _ := NewEngine(g, nil, kws, rmax)
		top := drainTopK(t, NewTopK(e2), k)
		if len(top) != k {
			t.Fatalf("trial %d: asked %d got %d", trial, k, len(top))
		}
		for i := 0; i < k; i++ {
			if !costsEqual(top[i].Cost, costs[i]) {
				t.Fatalf("trial %d: rank %d cost %v, want %v", trial, i+1, top[i].Cost, costs[i])
			}
		}
	}
}

// TestTopKInteractiveContinuation models Exp-3: draw k results, then
// keep drawing 50 more — the continuation must equal a fresh top-(k+50)
// run, with no recomputation of the first k.
func TestTopKInteractiveContinuation(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	g, kws := randomKeywordGraph(t, rng, 40, 160, 2)
	rmax := 8.0

	e1, _ := NewEngine(g, nil, kws, rmax)
	it := NewTopK(e1)
	first := drainTopK(t, it, 20)
	more := drainTopK(t, it, 50) // continuation, no restart

	e2, _ := NewEngine(g, nil, kws, rmax)
	fresh := drainTopK(t, NewTopK(e2), 70)

	combined := append(append([]CoreCost{}, first...), more...)
	if len(combined) != len(fresh) {
		t.Fatalf("continuation produced %d results, fresh run %d", len(combined), len(fresh))
	}
	for i := range combined {
		if !costsEqual(combined[i].Cost, fresh[i].Cost) {
			t.Fatalf("rank %d: continued cost %v, fresh %v", i+1, combined[i].Cost, fresh[i].Cost)
		}
	}
	// The sets of cores must agree too (order may differ among ties).
	cs, fs := coreSet(t, combined), coreSet(t, fresh)
	for k := range fs {
		if _, ok := cs[k]; !ok {
			t.Fatalf("core %s in fresh run missing from continuation", k)
		}
	}
}

// TestTopKExhaustion: after all communities are emitted, Next returns
// false forever; pending candidates drain to zero.
func TestTopKExhaustion(t *testing.T) {
	g, _ := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	it := NewTopK(e)
	got := drainTopK(t, it, 100)
	if len(got) != 5 {
		t.Fatalf("emitted %d, want 5", len(got))
	}
	for i := 0; i < 3; i++ {
		if _, ok := it.NextCore(); ok {
			t.Fatal("exhausted top-k enumerator returned a result")
		}
	}
	if it.Emitted() != 5 {
		t.Fatalf("Emitted = %d, want 5", it.Emitted())
	}
}

// TestTopKCandidateBound: the heap never holds more than l candidates
// per emitted result plus one (the paper's O(l·k) can-list bound).
func TestTopKCandidateBound(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	g, kws := randomKeywordGraph(t, rng, 30, 120, 3)
	e, _ := NewEngine(g, nil, kws, 8)
	it := NewTopK(e)
	for {
		_, ok := it.NextCore()
		if !ok {
			break
		}
		bound := e.l*it.Emitted() + 1
		if it.PendingCandidates() > bound {
			t.Fatalf("after %d results, %d pending candidates > bound %d",
				it.Emitted(), it.PendingCandidates(), bound)
		}
	}
	if it.Bytes() <= 0 {
		t.Fatal("Bytes should be positive after enumeration")
	}
}

// TestTopKMissingKeyword mirrors the COMM-all behaviour.
func TestTopKMissingKeyword(t *testing.T) {
	g, _ := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "zzz"}, 8)
	if _, ok := NewTopK(e).NextCore(); ok {
		t.Fatal("query with absent keyword should emit nothing")
	}
}

// TestTopKDisconnected mirrors the COMM-all behaviour.
func TestTopKDisconnected(t *testing.T) {
	g, err := newTwoComponentBuilder().Freeze()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(g, nil, []string{"left", "right"}, 100)
	if _, ok := NewTopK(e).NextCore(); ok {
		t.Fatal("disconnected keywords should emit nothing")
	}
}

// TestTopKCommunityMaterialization: Next returns materialized
// communities whose cost matches the core cost.
func TestTopKCommunityMaterialization(t *testing.T) {
	g, _ := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	it := NewTopK(e)
	prev := -1.0
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		if r.Cost < prev-costEps {
			t.Fatalf("materialized order violated: %v after %v", r.Cost, prev)
		}
		prev = r.Cost
		if len(r.Cnodes) == 0 {
			t.Fatalf("community %v has no centers", r.Core)
		}
	}
}

// TestTopKDeepChains stresses repeated splits at the same position
// (the regression this implementation fixes against the paper's
// printed chain walk): single shared center, many keyword nodes per
// keyword, so subspace splits stack at one position repeatedly.
func TestTopKDeepChains(t *testing.T) {
	b := graph.NewBuilder()
	hub := b.AddNode("hub")
	var k1 []graph.NodeID
	for i := 0; i < 8; i++ {
		v := b.AddNode("x", "x")
		k1 = append(k1, v)
		b.AddEdge(hub, v, float64(i+1))
	}
	for i := 0; i < 8; i++ {
		v := b.AddNode("y", "y")
		b.AddEdge(hub, v, float64(i+1))
	}
	_ = k1
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := NewEngine(g, nil, []string{"x", "y"}, 100)
	naive := EnumerateNaive(e1)
	if len(naive) != 64 {
		t.Fatalf("naive found %d cores, want 64", len(naive))
	}
	e2, _ := NewEngine(g, nil, []string{"x", "y"}, 100)
	got := drainTopK(t, NewTopK(e2), 100)
	if len(got) != 64 {
		t.Fatalf("PDk emitted %d cores, want 64", len(got))
	}
	coreSet(t, got) // duplication-free
	wantCosts := sortedCosts(naive)
	for i := range got {
		if !costsEqual(got[i].Cost, wantCosts[i]) {
			t.Fatalf("rank %d: cost %v, want %v", i+1, got[i].Cost, wantCosts[i])
		}
	}
}
