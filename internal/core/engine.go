package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"commdb/internal/fulltext"
	"commdb/internal/govern"
	"commdb/internal/graph"
	"commdb/internal/obs"
	"commdb/internal/sssp"
)

// ErrNoKeywords is returned when a query contains no keywords.
var ErrNoKeywords = errors.New("core: query needs at least one keyword")

// CostFunction selects how a community's cost aggregates the
// center→knode distances. The paper notes its algorithms do not rely on
// a specific cost function; any per-component monotone aggregate works,
// and two are provided.
type CostFunction int

const (
	// CostSumDistances is the paper's default: the minimum over centers
	// of the summed shortest-path weights to every core node.
	CostSumDistances CostFunction = iota
	// CostMaxDistance ranks by the minimum over centers of the largest
	// center→knode distance (an eccentricity-style radius measure).
	CostMaxDistance
)

// Engine holds the per-query state shared by the enumeration
// algorithms: the keyword node sets V_i, one neighborSet slot N_i per
// keyword, and the paper's per-node (nearest knode, total weight,
// counter) table that makes BestCore a single O(n) scan (Section IV-A).
//
// An Engine is bound to one graph, one keyword list and one Rmax. It is
// not safe for concurrent use; create one Engine per running query.
type Engine struct {
	g    *graph.Graph
	ws   *sssp.Workspace
	rmax float64
	l    int

	// pool, when non-nil, is where ws (and any worker workspaces) came
	// from and where Close returns them. par is the engine's
	// parallelism degree; <= 1 means strictly sequential.
	pool *sssp.Pool
	par  int

	// keywordNodes[i] is V_i: all nodes containing keyword i.
	keywordNodes [][]graph.NodeID
	// keywordTerms[i] is keyword i's normalized (tokenized) term — the
	// key under which the full-set run Neighbor(V_i) is charged in the
	// trace's per-keyword init costs.
	keywordTerms []string

	// nbr[i] is the current neighborSet N_i: a bounded reverse-Dijkstra
	// result whose Src/Dist give the paper's src(N_i,u) and min(N_i,u).
	nbr []*sssp.Result
	// slotState describes what each slot currently holds so identical
	// re-installs are skipped.
	slotState []slotDesc
	// full caches Neighbor(V_i): the full keyword-set run never changes
	// within a query, and the enumerators restore it constantly
	// (Algorithm 1 line 20, Algorithm 5 line 31).
	full []*sssp.Result
	// free recycles result buffers.
	free []*sssp.Result

	// sum[u] and cnt[u] aggregate over slots: total distance and number
	// of slots in which u is settled. cnt[u] == l marks a candidate
	// center (the paper's third element).
	sum []float64
	cnt []int16

	// gc is the engine's own GetCommunity scratch (Algorithm 4),
	// lazily allocated; pipeline workers use private gcScratch values
	// instead so materializations run concurrently.
	gc *gcScratch

	// neighborRuns counts Dijkstra invocations, exposed for the
	// benchmark harness and complexity tests. Atomic because the
	// parallel-init fanout and pipeline workers increment it
	// concurrently.
	neighborRuns atomic.Int64

	// noSlotCache disables full-set memoization and the unchanged-pin
	// skip, for the ablation benchmark only.
	noSlotCache bool

	// budget, when non-nil, governs the query: Dijkstra runs and the
	// BestCore scans charge it, and the enumerators stop early with the
	// budget's stop reason once it trips. nil means unlimited.
	budget *govern.Budget

	// tr, when non-nil, receives the query's engine counters (neighbor
	// runs, BestCore scans, GetCommunity calls) and, through the
	// workspace, the per-run Dijkstra counters. nil means untraced.
	tr *obs.Trace

	// costFn aggregates per-keyword distances into a cost.
	costFn CostFunction
	// ranker, when non-nil, replaces costFn as the cost aggregate.
	ranker Ranker
	// rankBuf is bestCore's per-candidate distance scratch under a
	// custom ranker (bestCore is engine-sequential, so one buffer).
	rankBuf []float64

	// nsrc, when non-nil, supplies precomputed full keyword-set runs
	// (the kwcache artifact store); full-set sites consult it before
	// running a live Dijkstra. Charged identically to a live run, so
	// budgets and counters are unaffected by where the set came from.
	nsrc NeighborSource
}

// SetCostFunction switches the cost aggregate. It must be called before
// the first enumeration step.
func (e *Engine) SetCostFunction(f CostFunction) { e.costFn = f }

// SetRanker installs a custom cost aggregate that overrides the
// CostFunction enum. The ranker must be monotone in every component
// (the enumeration orders of Algorithms 1 and 5 rely on it) and its
// Cost method must be safe for concurrent calls: materialization
// pipeline workers rank communities in parallel. It must be called
// before the first enumeration step; nil (the default) restores the
// enum-selected aggregate.
func (e *Engine) SetRanker(r Ranker) { e.ranker = r }

// SetBudget installs a governance budget on the engine and its
// shortest-path workspace. It must be called before the first
// enumeration step; nil (the default) means unlimited.
func (e *Engine) SetBudget(b *govern.Budget) {
	e.budget = b
	e.ws.SetBudget(b)
}

// Budget returns the engine's governance budget, nil when unlimited.
func (e *Engine) Budget() *govern.Budget { return e.budget }

// SetTrace installs a query trace on the engine and its shortest-path
// workspace. It must be called before the first enumeration step; nil
// (the default) means untraced.
func (e *Engine) SetTrace(t *obs.Trace) {
	e.tr = t
	e.ws.SetTrace(t)
}

// Trace returns the engine's trace, nil when untraced.
func (e *Engine) Trace() *obs.Trace { return e.tr }

// CostOf aggregates one center's per-keyword distances under the
// engine's cost function (or custom ranker).
func (e *Engine) CostOf(dists []float64) float64 {
	if e.ranker != nil {
		return e.ranker.Cost(dists)
	}
	switch e.costFn {
	case CostMaxDistance:
		best := 0.0
		for _, d := range dists {
			if d > best {
				best = d
			}
		}
		return best
	default:
		total := 0.0
		for _, d := range dists {
			total += d
		}
		return total
	}
}

// DisableSlotCache turns off the engine's Neighbor memoization so every
// slot install recomputes its bounded Dijkstra, exactly as the paper's
// pseudocode is written. Exists for the ablation benchmark.
func (e *Engine) DisableSlotCache() { e.noSlotCache = true }

// NeighborSource supplies precomputed full keyword-set neighbor runs:
// the query-independent Neighbor(V_term) results a kwcache artifact
// store persists. FullSet loads term's neighbor set truncated to rmax
// into res and reports whether it could; on false the caller runs the
// live Dijkstra. Implementations must be safe for concurrent use (the
// parallel init fan-out probes from several workers) and must serve
// sets byte-identical to a live run at rmax — settle order, distances,
// sources and via hops — or enumeration determinism breaks.
type NeighborSource interface {
	FullSet(term string, rmax float64, res *sssp.Result) bool
}

// EngineConfig tunes an engine's execution strategy. The zero value is
// the strictly sequential engine with private workspaces.
type EngineConfig struct {
	// Pool supplies (and reclaims, via Engine.Close) the engine's
	// shortest-path workspaces. nil allocates private workspaces.
	Pool *sssp.Pool
	// Parallelism is the number of worker goroutines PrecomputeNeighborSets
	// and the materialization pipeline may use. Values <= 1 keep every
	// code path strictly sequential.
	Parallelism int
	// Neighbors, when non-nil, serves precomputed full keyword-set runs
	// in place of live engine-init Dijkstras.
	Neighbors NeighborSource
}

// NewEngine prepares a query against g. Keywords are matched after
// tokenization (each must be a single term). ix may be nil, in which
// case keyword nodes are found by scanning the graph. The engine is
// strictly sequential; use NewEngineCfg for parallel execution.
func NewEngine(g *graph.Graph, ix *fulltext.Index, keywords []string, rmax float64) (*Engine, error) {
	return NewEngineCfg(g, ix, keywords, rmax, EngineConfig{})
}

// NewEngineCfg is NewEngine with an execution configuration.
func NewEngineCfg(g *graph.Graph, ix *fulltext.Index, keywords []string, rmax float64, cfg EngineConfig) (*Engine, error) {
	if len(keywords) == 0 {
		return nil, ErrNoKeywords
	}
	// Note the IsNaN check cannot be folded into the < 0 comparison:
	// NaN compares false against everything and would otherwise slip
	// through and poison every distance comparison downstream.
	if math.IsNaN(rmax) || math.IsInf(rmax, 0) {
		return nil, fmt.Errorf("core: non-finite Rmax %v", rmax)
	}
	if rmax < 0 {
		return nil, fmt.Errorf("core: negative Rmax %v", rmax)
	}
	l := len(keywords)
	n := g.NumNodes()
	if cfg.Parallelism > 1 && cfg.Pool == nil {
		cfg.Pool = sssp.NewPool()
	}
	e := &Engine{
		g:            g,
		ws:           cfg.Pool.Get(g), // nil-pool Get allocates fresh
		pool:         cfg.Pool,
		par:          cfg.Parallelism,
		rmax:         rmax,
		l:            l,
		keywordNodes: make([][]graph.NodeID, l),
		keywordTerms: make([]string, l),
		nbr:          make([]*sssp.Result, l),
		slotState:    make([]slotDesc, l),
		full:         make([]*sssp.Result, l),
		sum:          make([]float64, n),
		cnt:          make([]int16, n),
		nsrc:         cfg.Neighbors,
	}
	for i, kw := range keywords {
		nodes, err := KeywordNodes(g, ix, kw)
		if err != nil {
			return nil, err
		}
		e.keywordNodes[i] = nodes
		e.keywordTerms[i] = fulltext.Tokenize(kw)[0] // single term, validated by KeywordNodes
		e.nbr[i] = sssp.NewResult(n)
	}
	return e, nil
}

// KeywordNodes resolves one query keyword to its node set V_i, via the
// inverted index when available or a graph scan otherwise. The keyword
// must tokenize to exactly one term.
func KeywordNodes(g *graph.Graph, ix *fulltext.Index, keyword string) ([]graph.NodeID, error) {
	terms := fulltext.Tokenize(keyword)
	if len(terms) != 1 {
		return nil, fmt.Errorf("core: keyword %q does not tokenize to a single term", keyword)
	}
	term := terms[0]
	if ix != nil {
		return ix.Nodes(term), nil
	}
	id, ok := g.Dict().ID(term)
	if !ok {
		return nil, nil
	}
	var out []graph.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if g.HasTerm(graph.NodeID(v), id) {
			out = append(out, graph.NodeID(v))
		}
	}
	return out, nil
}

// Graph returns the graph the engine queries.
func (e *Engine) Graph() *graph.Graph { return e.g }

// L reports the number of query keywords.
func (e *Engine) L() int { return e.l }

// Rmax reports the query radius.
func (e *Engine) Rmax() float64 { return e.rmax }

// KeywordNodes returns V_i for keyword position i. The slice must not
// be modified.
func (e *Engine) KeywordNodes(i int) []graph.NodeID { return e.keywordNodes[i] }

// HasAllKeywords reports whether every keyword occurs somewhere in the
// graph; if not, no community exists.
func (e *Engine) HasAllKeywords() bool {
	for _, vs := range e.keywordNodes {
		if len(vs) == 0 {
			return false
		}
	}
	return true
}

// NeighborRuns reports how many bounded Dijkstra runs the engine has
// executed, a machine-independent cost measure used in delay tests.
func (e *Engine) NeighborRuns() int { return int(e.neighborRuns.Load()) }

// Parallelism reports the engine's configured worker count; <= 1 means
// strictly sequential.
func (e *Engine) Parallelism() int { return e.par }

// Close returns the engine's pooled workspaces. The engine must not be
// used afterwards. Close is idempotent and safe on an engine with no
// pool.
func (e *Engine) Close() {
	if e.ws != nil {
		e.pool.Put(e.ws) // nil-pool Put just detaches
		e.ws = nil
	}
	if e.gc != nil {
		e.gc.release(e.pool)
		e.gc = nil
	}
}

// PrecomputeNeighborSets eagerly computes every cached full-set run
// Neighbor(V_i), fanning the per-keyword bounded reverse Dijkstras
// across min(par, l) worker goroutines. The enumerators' later
// setSlotFull calls then find the cached results, so enumeration
// semantics — order, budgets, trace totals — are byte-identical to the
// sequential engine; only the wall-clock of engine init changes.
//
// It is a no-op when parallelism is off, the slot cache is disabled
// (the ablation path must recompute), or some keyword is absent (the
// query is already known empty).
func (e *Engine) PrecomputeNeighborSets() {
	if e.par <= 1 || e.noSlotCache || !e.HasAllKeywords() {
		return
	}
	var idx []int
	for i := 0; i < e.l; i++ {
		if e.full[i] == nil {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return
	}
	workers := min(e.par, len(idx))
	if workers == 1 {
		// A single worker gains nothing over the lazy path; let
		// setSlotFull compute on demand with the engine's own workspace.
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			ws := e.pool.Get(e.g)
			defer e.pool.Put(ws)
			ws.SetBudget(e.budget)
			ws.SetTrace(e.tr)
			for {
				t := int(next.Add(1)) - 1
				if t >= len(idx) {
					return
				}
				i := idx[t]
				// Distinct i per task: no two workers share a slot.
				e.full[i] = e.fullSetResult(i, ws)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		// Preserve the public contract that query panics surface (and are
		// recovered) on the calling goroutine.
		panic(panicked)
	}
}

// slotDesc describes a slot's current contents so identical
// re-installs are skipped (the pins and full-set restores of the
// enumeration loops repeat constantly).
type slotDesc struct {
	kind slotKind
	node graph.NodeID
}

type slotKind uint8

const (
	slotEmpty  slotKind = iota
	slotFull            // Neighbor(V_i)
	slotSingle          // Neighbor({node})
	slotSet             // Neighbor(arbitrary subset)
)

// buffer returns a reusable result, recycling freed ones.
func (e *Engine) buffer() *sssp.Result {
	if n := len(e.free); n > 0 {
		r := e.free[n-1]
		e.free = e.free[:n-1]
		return r
	}
	return sssp.NewResult(e.g.NumNodes())
}

// install replaces slot i's contents with res, maintaining the per-node
// sum/cnt aggregates incrementally, as the paper prescribes so that
// BestCore stays a single scan. The previous buffer is recycled unless
// it is the slot's cached full-set result.
func (e *Engine) install(i int, res *sssp.Result, desc slotDesc) {
	old := e.nbr[i]
	if old == res {
		e.slotState[i] = desc
		return
	}
	if old != nil {
		for _, v := range old.Visited() {
			d, _ := old.Dist(v)
			e.cnt[v]--
			if e.cnt[v] == 0 {
				e.sum[v] = 0 // exact reset prevents float drift
			} else {
				e.sum[v] -= d
			}
		}
		if old != e.full[i] {
			e.free = append(e.free, old)
		}
	}
	for _, v := range res.Visited() {
		d, _ := res.Dist(v)
		e.cnt[v]++
		e.sum[v] += d
	}
	e.nbr[i] = res
	e.slotState[i] = desc
}

// setSlot recomputes neighborSet slot i from an arbitrary seed set
// (Algorithm 2: bounded reverse Dijkstra).
func (e *Engine) setSlot(i int, seeds []graph.NodeID) {
	res := e.buffer()
	e.budget.ChargeNeighborRun() // a tripped budget empties the run below
	e.ws.RunFromNodes(sssp.Reverse, seeds, e.rmax, res)
	e.neighborRuns.Add(1)
	e.tr.Add("neighbor_runs", 1)
	e.install(i, res, slotDesc{kind: slotSet})
}

// setSlotSingle pins slot i to one keyword node; a no-op when the slot
// is already pinned there.
func (e *Engine) setSlotSingle(i int, v graph.NodeID) {
	if s := e.slotState[i]; !e.noSlotCache && s.kind == slotSingle && s.node == v {
		return
	}
	res := e.buffer()
	e.budget.ChargeNeighborRun()
	e.ws.RunFromNodes(sssp.Reverse, []graph.NodeID{v}, e.rmax, res)
	e.neighborRuns.Add(1)
	e.tr.Add("neighbor_runs", 1)
	e.install(i, res, slotDesc{kind: slotSingle, node: v})
}

// fullSetResult computes (or loads from the neighbor source) one full
// keyword-set run Neighbor(V_i) using the given workspace. The
// artifact path is charged exactly like a live run — one neighbor-run
// budget charge, one neighbor_runs trace count — so governance and
// machine-independent cost measures are unaffected by where the set
// came from; it skips the per-keyword init attribution (no Dijkstra
// ran) and counts a kwcache_hits trace marker instead. A tripped
// budget yields an empty result on both paths.
func (e *Engine) fullSetResult(i int, ws *sssp.Workspace) *sssp.Result {
	res := sssp.NewResult(e.g.NumNodes())
	if e.nsrc != nil && e.nsrc.FullSet(e.keywordTerms[i], e.rmax, res) {
		if e.budget.ChargeNeighborRun() != nil {
			res.Reset() // tripped budget: a live run would settle nothing
		}
		e.neighborRuns.Add(1)
		e.tr.Add("neighbor_runs", 1)
		e.tr.Add("kwcache_hits", 1)
		return res
	}
	var t0 time.Time
	if e.tr.Enabled() {
		t0 = time.Now()
	}
	e.budget.ChargeNeighborRun() // a tripped budget empties the run
	ws.RunFromNodes(sssp.Reverse, e.keywordNodes[i], e.rmax, res)
	e.neighborRuns.Add(1)
	e.tr.Add("neighbor_runs", 1)
	if e.tr.Enabled() {
		// The full-set run is query-independent: charge its spend to the
		// keyword so workload attribution can rank terms.
		e.tr.AddKeywordInit(e.keywordTerms[i], ws.LastRun(), time.Since(t0))
	}
	return res
}

// setSlotFull installs Neighbor(V_i). The run is computed once per
// query and cached: the enumerators restore full sets constantly
// (Algorithm 1 line 20, Algorithm 5 line 31) and V_i never changes.
func (e *Engine) setSlotFull(i int) {
	if e.noSlotCache {
		e.setSlot(i, e.keywordNodes[i])
		return
	}
	if e.slotState[i].kind == slotFull {
		return
	}
	if e.full[i] == nil {
		e.full[i] = e.fullSetResult(i, e.ws)
	}
	e.install(i, e.full[i], slotDesc{kind: slotFull})
}

// clearSlots empties every slot and the aggregates, returning the
// engine to its initial state. Enumerators call it on (re)start.
func (e *Engine) clearSlots() {
	for i := range e.nbr {
		old := e.nbr[i]
		if old == nil {
			continue
		}
		for _, v := range old.Visited() {
			d, _ := old.Dist(v)
			e.cnt[v]--
			if e.cnt[v] == 0 {
				e.sum[v] = 0
			} else {
				e.sum[v] -= d
			}
		}
		if old != e.full[i] {
			e.free = append(e.free, old)
		}
		e.nbr[i] = nil
		e.slotState[i] = slotDesc{}
	}
}

// bestCore is Algorithm 3: scan the aggregate table once and return the
// minimum-cost core assembled from the per-slot nearest keyword nodes,
// or ok == false when the current slots admit no center. Under the
// default sum cost the incrementally maintained table answers each
// candidate in O(1); alternative cost functions probe the l slots.
func (e *Engine) bestCore() (Core, float64, bool) {
	e.tr.Add("bestcore_scans", 1)
	n := e.g.NumNodes()
	bestU := graph.NodeID(-1)
	bestCost := 0.0
	want := int16(e.l)
	// The scan polls the budget once per block so the hot inner loop
	// stays branch-free of governance; a tripped budget aborts the scan
	// (callers distinguish that from "no center" via Budget().Err()).
	const scanStride = 4 * govern.Stride
	for base := 0; base < n; base += scanStride {
		if e.budget != nil && e.budget.Poll() != nil {
			return nil, 0, false
		}
		end := min(base+scanStride, n)
		for u := base; u < end; u++ {
			if e.cnt[u] != want {
				continue
			}
			var cost float64
			if e.costFn == CostSumDistances && e.ranker == nil {
				cost = e.sum[u]
			} else {
				cost = e.candidateCost(graph.NodeID(u))
			}
			if bestU < 0 || cost < bestCost {
				bestU = graph.NodeID(u)
				bestCost = cost
			}
		}
	}
	if bestU < 0 {
		return nil, 0, false
	}
	c := make(Core, e.l)
	dists := make([]float64, e.l)
	for i := 0; i < e.l; i++ {
		c[i] = e.nbr[i].Src(bestU)
		dists[i], _ = e.nbr[i].Dist(bestU)
	}
	return c, e.CostOf(dists), true
}

// candidateCost aggregates a candidate center's slot distances under a
// non-sum cost function or a custom ranker.
func (e *Engine) candidateCost(u graph.NodeID) float64 {
	if e.ranker != nil {
		// bestCore is engine-sequential, so one scratch buffer suffices.
		if e.rankBuf == nil {
			e.rankBuf = make([]float64, e.l)
		}
		for i := 0; i < e.l; i++ {
			e.rankBuf[i], _ = e.nbr[i].Dist(u)
		}
		return e.ranker.Cost(e.rankBuf)
	}
	switch e.costFn {
	case CostMaxDistance:
		best := 0.0
		for i := 0; i < e.l; i++ {
			if d, _ := e.nbr[i].Dist(u); d > best {
				best = d
			}
		}
		return best
	default:
		return e.sum[u]
	}
}

// Bytes estimates the engine's logical memory footprint: the slot
// results, aggregates and workspace — the paper's O(l·n + m) working
// state (the graph itself is shared and accounted separately).
func (e *Engine) Bytes() int64 {
	b := e.ws.Bytes() + int64(len(e.sum))*8 + int64(len(e.cnt))*2
	for i, r := range e.nbr {
		if r != nil && r != e.full[i] {
			b += r.Bytes()
		}
	}
	for _, r := range e.full {
		if r != nil {
			b += r.Bytes()
		}
	}
	for _, r := range e.free {
		b += r.Bytes()
	}
	for _, ks := range e.keywordNodes {
		b += int64(len(ks)) * 4
	}
	if e.gc != nil {
		b += e.gc.bytes()
	}
	return b
}
