package core

import (
	"sort"
	"testing"

	"commdb/internal/graph"
	"commdb/internal/sssp"
)

// reachSet computes the paper's neighborSet: every node that reaches
// some seed within rmax, as a set of 1-based paper indices.
func reachSet(g *graph.Graph, ids []graph.NodeID, seeds []int, rmax float64) map[int]bool {
	ws := sssp.NewWorkspace(g)
	res := sssp.NewResult(g.NumNodes())
	var sn []graph.NodeID
	for _, s := range seeds {
		sn = append(sn, ids[s])
	}
	ws.RunFromNodes(sssp.Reverse, sn, rmax, res)
	out := map[int]bool{}
	for _, v := range res.Visited() {
		for i := 1; i <= 13; i++ {
			if ids[i] == v {
				out[i] = true
			}
		}
	}
	return out
}

func setEq(got map[int]bool, want ...int) bool {
	if len(got) != len(want) {
		return false
	}
	for _, w := range want {
		if !got[w] {
			return false
		}
	}
	return true
}

// TestPaperNeighborSets asserts every neighborSet the paper prints for
// the Fig. 4 example with Rmax = 8: the three initial sets, all pinned
// singleton sets of the Next() trace, and the restricted S_2/S_3 sets.
func TestPaperNeighborSets(t *testing.T) {
	g, ids := PaperGraph()
	const R = 8

	if got := reachSet(g, ids, []int{4, 13}, R); !setEq(got, 1, 4, 5, 7, 8, 9, 11, 12, 13) {
		t.Errorf("N_1(V_1) = %v, want {1,4,5,7,8,9,11,12,13}", got)
	}
	if got := reachSet(g, ids, []int{8, 2}, R); !setEq(got, 1, 2, 4, 5, 7, 8, 9, 10, 11, 12) {
		t.Errorf("N_2(V_2) = %v, want {1,2,4,5,7,8,9,10,11,12}", got)
	}
	if got := reachSet(g, ids, []int{6, 3, 9, 11}, R); !setEq(got, 1, 2, 3, 4, 5, 6, 7, 9, 11, 12) {
		t.Errorf("N_3(V_3) = %v, want {1,2,3,4,5,6,7,9,11,12}", got)
	}
	// Pinned singletons from the worked Next() trace.
	if got := reachSet(g, ids, []int{4}, R); !setEq(got, 1, 4, 5, 7) {
		t.Errorf("N_1({v4}) = %v, want {1,4,5,7}", got)
	}
	if got := reachSet(g, ids, []int{8}, R); !setEq(got, 4, 7, 8, 9, 10, 11, 12) {
		t.Errorf("N_2({v8}) = %v, want {4,7,8,9,10,11,12}", got)
	}
	if got := reachSet(g, ids, []int{6}, R); !setEq(got, 4, 6, 7) {
		t.Errorf("N_3({v6}) = %v, want {4,6,7}", got)
	}
	// Restricted sets after removing the current core's nodes.
	if got := reachSet(g, ids, []int{3, 9, 11}, R); !setEq(got, 1, 2, 3, 5, 9, 11, 12) {
		t.Errorf("N_3(S_3-{v6}) = %v, want {1,2,3,5,9,11,12}", got)
	}
	if got := reachSet(g, ids, []int{2}, R); !setEq(got, 1, 2, 5) {
		t.Errorf("N_2({v2}) = %v, want {1,2,5}", got)
	}
}

// tableIWant lists Table I of the paper: the five communities for the
// 3-keyword query {a,b,c} with Rmax = 8, in ranking order.
type tableIRow struct {
	a, b, c int // 1-based paper node indices of the core
	cost    float64
	centers []int
}

var tableIWant = []tableIRow{
	{4, 8, 6, 7, []int{4, 7}},
	{13, 8, 9, 10, []int{9}},
	{13, 8, 11, 11, []int{11, 12}},
	{4, 2, 3, 14, []int{1}},
	{4, 2, 9, 15, []int{5}},
}

func paperEngine(t *testing.T) (*Engine, []graph.NodeID) {
	t.Helper()
	g, ids := PaperGraph()
	e, err := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return e, ids
}

// TestTableI reproduces Table I exactly with the top-k enumerator:
// ranking order, cores, costs, and center sets.
func TestTableI(t *testing.T) {
	e, ids := paperEngine(t)
	it := NewTopK(e)
	for rank, want := range tableIWant {
		r, ok := it.Next()
		if !ok {
			t.Fatalf("rank %d: enumerator exhausted early", rank+1)
		}
		wantCore := Core{ids[want.a], ids[want.b], ids[want.c]}
		if !r.Core.Equal(wantCore) {
			t.Errorf("rank %d: core = %v, want [v%d v%d v%d]", rank+1, r.Core, want.a, want.b, want.c)
		}
		if !costsEqual(r.Cost, want.cost) {
			t.Errorf("rank %d: cost = %v, want %v", rank+1, r.Cost, want.cost)
		}
		var wantCenters []graph.NodeID
		for _, c := range want.centers {
			wantCenters = append(wantCenters, ids[c])
		}
		sort.Slice(wantCenters, func(i, j int) bool { return wantCenters[i] < wantCenters[j] })
		if len(r.Cnodes) != len(wantCenters) {
			t.Fatalf("rank %d: centers = %v, want %v", rank+1, r.Cnodes, wantCenters)
		}
		for i := range wantCenters {
			if r.Cnodes[i] != wantCenters[i] {
				t.Errorf("rank %d: centers = %v, want %v", rank+1, r.Cnodes, wantCenters)
				break
			}
		}
	}
	if _, ok := it.Next(); ok {
		t.Error("more than 5 communities emitted for the paper example")
	}
}

// TestPaperAllCommunities checks COMM-all: the same five communities
// (in any order), complete and duplication-free, with the first emitted
// core being the best one ([v4,v8,v6], cost 7).
func TestPaperAllCommunities(t *testing.T) {
	e, ids := paperEngine(t)
	it := NewAll(e)
	got := drainAll(t, it, 100)
	if len(got) != 5 {
		t.Fatalf("COMM-all found %d communities, want 5", len(got))
	}
	if first := got[0]; !first.Core.Equal(Core{ids[4], ids[8], ids[6]}) || !costsEqual(first.Cost, 7) {
		t.Errorf("first core = %v cost %v, want [v4 v8 v6] cost 7", first.Core, first.Cost)
	}
	set := coreSet(t, got)
	for _, want := range tableIWant {
		key := Core{ids[want.a], ids[want.b], ids[want.c]}.Key()
		cost, ok := set[key]
		if !ok {
			t.Errorf("core [v%d v%d v%d] missing from COMM-all", want.a, want.b, want.c)
			continue
		}
		if !costsEqual(cost, want.cost) {
			t.Errorf("core [v%d v%d v%d] cost = %v, want %v", want.a, want.b, want.c, cost, want.cost)
		}
	}
}

// TestPaperGetCommunityR5 reproduces the paper's Fig. 7 / Example 2.1
// walk-through: the community of core [v13, v8, v11] has centers
// {v11, v12}, path node {v10}, and cost 11.
func TestPaperGetCommunityR5(t *testing.T) {
	e, ids := paperEngine(t)
	r := e.GetCommunity(Core{ids[13], ids[8], ids[11]})
	if !costsEqual(r.Cost, 11) {
		t.Errorf("cost = %v, want 11", r.Cost)
	}
	wantC := []graph.NodeID{ids[11], ids[12]}
	sort.Slice(wantC, func(i, j int) bool { return wantC[i] < wantC[j] })
	if len(r.Cnodes) != 2 || r.Cnodes[0] != wantC[0] || r.Cnodes[1] != wantC[1] {
		t.Errorf("cnodes = %v, want {v11,v12}", r.Cnodes)
	}
	if len(r.Pnodes) != 1 || r.Pnodes[0] != ids[10] {
		t.Errorf("pnodes = %v, want {v10}", r.Pnodes)
	}
	// Knodes are the distinct core nodes.
	if len(r.Knodes) != 3 {
		t.Errorf("knodes = %v, want 3 nodes", r.Knodes)
	}
	// Community nodes: {v8, v10, v11, v12, v13}.
	if len(r.Nodes) != 5 {
		t.Errorf("nodes = %v, want 5 nodes", r.Nodes)
	}
	// The induced edges must include v11->v10->v8, v12->v13, v12<->v11,
	// v11->v12, v8->v13: six directed edges in total.
	if len(r.Edges) != 6 {
		t.Errorf("edges = %v, want 6 induced edges", r.Edges)
	}
}

// TestPaperExampleCost5Decomposition re-checks Example 2.1's arithmetic
// for R5: total weight 11 from v11 and 14 from v12.
func TestPaperExampleCost5Decomposition(t *testing.T) {
	g, ids := PaperGraph()
	ws := sssp.NewWorkspace(g)
	res := sssp.NewResult(g.NumNodes())

	dist := func(from, to int) float64 {
		ws.RunFromNodes(sssp.Forward, []graph.NodeID{ids[from]}, 100, res)
		d, ok := res.Dist(ids[to])
		if !ok {
			t.Fatalf("v%d does not reach v%d", from, to)
		}
		return d
	}
	if d := dist(11, 8); d != 5 {
		t.Errorf("dist(v11,v8) = %v, want 5 (= 2+3 via v10)", d)
	}
	if d := dist(11, 13); d != 6 {
		t.Errorf("dist(v11,v13) = %v, want 6 (= 3+3 via v12)", d)
	}
	if d := dist(12, 8); d != 8 {
		t.Errorf("dist(v12,v8) = %v, want 8 (= 3+2+3)", d)
	}
	if d := dist(12, 11); d != 3 {
		t.Errorf("dist(v12,v11) = %v, want 3", d)
	}
	if d := dist(12, 13); d != 3 {
		t.Errorf("dist(v12,v13) = %v, want 3", d)
	}
}

// TestIntroTwoCommunities checks the introduction example: the
// 2-keyword query {kate, smith} with radius 6 yields exactly the two
// communities of Fig. 3 — cores [Kate,John] (centers paper1 and paper2)
// and [Kate,Jim] (center paper2 only).
func TestIntroTwoCommunities(t *testing.T) {
	g, ids := IntroGraph()
	e, err := NewEngine(g, nil, []string{"kate", "smith"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, NewAll(e), 10)
	if len(got) != 2 {
		t.Fatalf("found %d communities, want 2", len(got))
	}
	set := coreSet(t, got)
	kj := Core{ids["kate"], ids["john"]}.Key()
	kjim := Core{ids["kate"], ids["jim"]}.Key()
	if _, ok := set[kj]; !ok {
		t.Error("core [kate john] missing")
	}
	if _, ok := set[kjim]; !ok {
		t.Error("core [kate jim] missing")
	}
	// [Kate,John]: best center is paper2 (1+2=3) vs paper1 (2+1=3) — both
	// give 3. [Kate,Jim]: only paper2, cost 1+3=4.
	if !costsEqual(set[kj], 3) {
		t.Errorf("cost[kate,john] = %v, want 3", set[kj])
	}
	if !costsEqual(set[kjim], 4) {
		t.Errorf("cost[kate,jim] = %v, want 4", set[kjim])
	}

	// Community of [kate,john] has both papers as centers.
	r := e.GetCommunity(Core{ids["kate"], ids["john"]})
	if len(r.Cnodes) != 2 {
		t.Errorf("centers of [kate,john] = %v, want both papers", r.Cnodes)
	}
	// Community of [kate,jim] is centered at paper2 only: paper1's path
	// to Jim costs 4+3=7 > 6.
	r2 := e.GetCommunity(Core{ids["kate"], ids["jim"]})
	if len(r2.Cnodes) != 1 || r2.Cnodes[0] != ids["paper2"] {
		t.Errorf("centers of [kate,jim] = %v, want {paper2}", r2.Cnodes)
	}
}
