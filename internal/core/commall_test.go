package core

import (
	"math/rand"
	"testing"

	"commdb/internal/graph"
)

// TestAllMatchesNaiveRandom is the central completeness +
// duplication-freeness property test: on many random graphs, PDall must
// produce exactly the core set of the naive nested-loop enumeration,
// with identical costs.
func TestAllMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(25) + 4
		m := rng.Intn(3*n) + n
		l := rng.Intn(3) + 2
		rmax := float64(rng.Intn(10) + 2)
		g, kws := randomKeywordGraph(t, rng, n, m, l)

		e1, err := NewEngine(g, nil, kws, rmax)
		if err != nil {
			t.Fatal(err)
		}
		want := coreSet(t, EnumerateNaive(e1))

		e2, err := NewEngine(g, nil, kws, rmax)
		if err != nil {
			t.Fatal(err)
		}
		got := coreSet(t, drainAll(t, NewAll(e2), len(want)+10))

		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d m=%d l=%d rmax=%v): PDall found %d cores, naive %d",
				trial, n, m, l, rmax, len(got), len(want))
		}
		for k, wc := range want {
			gc, ok := got[k]
			if !ok {
				t.Fatalf("trial %d: core %s missing from PDall", trial, k)
			}
			if !costsEqual(gc, wc) {
				t.Fatalf("trial %d: core %s cost %v, naive %v", trial, k, gc, wc)
			}
		}
	}
}

// TestAllFirstIsBest checks that PDall's first result is always a
// minimum-cost community (Algorithm 1 line 5 finds the best core
// first).
func TestAllFirstIsBest(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 60; trial++ {
		g, kws := randomKeywordGraph(t, rng, rng.Intn(20)+4, rng.Intn(60)+10, 2)
		rmax := float64(rng.Intn(8) + 2)
		e, err := NewEngine(g, nil, kws, rmax)
		if err != nil {
			t.Fatal(err)
		}
		all := drainAll(t, NewAll(e), 100000)
		if len(all) == 0 {
			continue
		}
		best := all[0].Cost
		for _, cc := range all {
			if cc.Cost < best-costEps {
				t.Fatalf("trial %d: first cost %v but later core %s costs %v", trial, best, cc.Core, cc.Cost)
			}
		}
	}
}

// TestAllKeywordPlacement verifies that each core position actually
// contains its keyword.
func TestAllKeywordPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	g, kws := randomKeywordGraph(t, rng, 30, 90, 3)
	e, err := NewEngine(g, nil, kws, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range drainAll(t, NewAll(e), 100000) {
		for i, v := range cc.Core {
			id, ok := g.Dict().ID(kws[i])
			if !ok || !g.HasTerm(v, id) {
				t.Fatalf("core %s: position %d node %d lacks keyword %s", cc.Core, i, v, kws[i])
			}
		}
	}
}

// TestAllMissingKeyword: a keyword absent from the graph yields no
// results at all.
func TestAllMissingKeyword(t *testing.T) {
	g, _ := PaperGraph()
	e, err := NewEngine(g, nil, []string{"a", "zzz"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, NewAll(e), 10); len(got) != 0 {
		t.Fatalf("got %d results for a query with an absent keyword", len(got))
	}
	// Enumerator stays exhausted.
	if _, ok := NewAll(e).NextCore(); ok {
		t.Fatal("restarted enumerator should also find nothing")
	}
}

// TestAllSingleKeyword: l = 1 degenerates to one community per keyword
// node (each node is its own best center at distance 0).
func TestAllSingleKeyword(t *testing.T) {
	g, ids := PaperGraph()
	e, err := NewEngine(g, nil, []string{"c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, NewAll(e), 100)
	if len(got) != 4 {
		t.Fatalf("single-keyword query found %d communities, want 4 (v3,v6,v9,v11)", len(got))
	}
	want := map[string]bool{
		Core{ids[3]}.Key(): true, Core{ids[6]}.Key(): true,
		Core{ids[9]}.Key(): true, Core{ids[11]}.Key(): true,
	}
	for _, cc := range got {
		if !want[cc.Core.Key()] {
			t.Fatalf("unexpected core %s", cc.Core)
		}
		if !costsEqual(cc.Cost, 0) {
			t.Fatalf("core %s cost %v, want 0", cc.Core, cc.Cost)
		}
	}
}

// TestAllDuplicateKeywords: the same keyword twice enumerates ordered
// pairs of keyword nodes that share a center.
func TestAllDuplicateKeywords(t *testing.T) {
	g, kws := randomKeywordGraph(t, rand.New(rand.NewSource(109)), 15, 45, 1)
	e, err := NewEngine(g, nil, []string{kws[0], kws[0]}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := coreSet(t, EnumerateNaive(e))
	e2, _ := NewEngine(g, nil, []string{kws[0], kws[0]}, 5)
	got := coreSet(t, drainAll(t, NewAll(e2), len(want)+10))
	if len(got) != len(want) {
		t.Fatalf("duplicate-keyword query: PDall %d cores, naive %d", len(got), len(want))
	}
}

// TestAllZeroRmax: with radius 0 a community needs one node containing
// every keyword.
func TestAllZeroRmax(t *testing.T) {
	g, _ := IntroGraph()
	e, err := NewEngine(g, nil, []string{"kate", "smith"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, NewAll(e), 10); len(got) != 0 {
		t.Fatalf("rmax=0 found %d communities, want 0", len(got))
	}
	// A node containing both keywords is found even at rmax 0.
	e2, err := NewEngine(g, nil, []string{"john", "smith"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, NewAll(e2), 10)
	if len(got) != 1 {
		t.Fatalf("rmax=0 self-community: got %d, want 1", len(got))
	}
	if got[0].Core[0] != got[0].Core[1] {
		t.Fatal("self-community core should repeat the same node")
	}
}

// TestAllLargerQuery exercises l = 4 and 5 against the naive baseline.
func TestAllLargerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for _, l := range []int{4, 5} {
		g, kws := randomKeywordGraph(t, rng, 14, 50, l)
		rmax := 6.0
		e1, err := NewEngine(g, nil, kws, rmax)
		if err != nil {
			t.Fatal(err)
		}
		want := coreSet(t, EnumerateNaive(e1))
		e2, _ := NewEngine(g, nil, kws, rmax)
		got := coreSet(t, drainAll(t, NewAll(e2), len(want)+10))
		if len(got) != len(want) {
			t.Fatalf("l=%d: PDall %d cores, naive %d", l, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("l=%d: missing core %s", l, k)
			}
		}
	}
}

// TestAllEmittedCounter checks the Emitted bookkeeping.
func TestAllEmittedCounter(t *testing.T) {
	g, _ := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	it := NewAll(e)
	if it.Emitted() != 0 {
		t.Fatal("Emitted should start at 0")
	}
	drainAll(t, it, 100)
	if it.Emitted() != 5 {
		t.Fatalf("Emitted = %d, want 5", it.Emitted())
	}
	if it.Bytes() < 0 {
		t.Fatal("Bytes must be non-negative")
	}
}

// TestAllAfterExhaustion: NextCore keeps returning false.
func TestAllAfterExhaustion(t *testing.T) {
	g, _ := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	it := NewAll(e)
	drainAll(t, it, 100)
	for i := 0; i < 3; i++ {
		if _, ok := it.NextCore(); ok {
			t.Fatal("exhausted enumerator must keep returning false")
		}
	}
}

// TestAllDisconnectedKeywords: keywords in separate components produce
// nothing.
func TestAllDisconnectedKeywords(t *testing.T) {
	b := newTwoComponentBuilder()
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, nil, []string{"left", "right"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAll(t, NewAll(e), 10); len(got) != 0 {
		t.Fatalf("disconnected keywords produced %d communities", len(got))
	}
}

// TestAllBidirectedGraphs: the paper notes the approach applies to
// undirected/bi-directed graphs as-is; cross-check PDall against the
// naive oracle on random bi-directed graphs (every edge added in both
// directions, the materialization used for relational databases).
func TestAllBidirectedGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(18) + 4
		b := graph.NewBuilder()
		kws := []string{"x", "y"}
		for i := 0; i < n; i++ {
			var terms []string
			for _, kw := range kws {
				if rng.Intn(4) == 0 {
					terms = append(terms, kw)
				}
			}
			b.AddNode("", terms...)
		}
		for i := 0; i < n*2; i++ {
			b.AddBiEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), float64(rng.Intn(5)+1))
		}
		g, err := b.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		rmax := float64(rng.Intn(8) + 2)
		e1, err := NewEngine(g, nil, kws, rmax)
		if err != nil {
			t.Fatal(err)
		}
		want := coreSet(t, EnumerateNaive(e1))
		e2, _ := NewEngine(g, nil, kws, rmax)
		got := coreSet(t, drainAll(t, NewAll(e2), len(want)+10))
		if len(got) != len(want) {
			t.Fatalf("trial %d: bidirected PDall %d cores, naive %d", trial, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: missing core %s", trial, k)
			}
		}
	}
}
