package core

import (
	"testing"

	"commdb/internal/fulltext"
)

func TestNewEngineErrors(t *testing.T) {
	g, _ := PaperGraph()
	if _, err := NewEngine(g, nil, nil, 8); err != ErrNoKeywords {
		t.Fatalf("no keywords: err = %v, want ErrNoKeywords", err)
	}
	if _, err := NewEngine(g, nil, []string{"a"}, -1); err == nil {
		t.Fatal("negative Rmax should error")
	}
	if _, err := NewEngine(g, nil, []string{"two words"}, 8); err == nil {
		t.Fatal("multi-term keyword should error")
	}
	if _, err := NewEngine(g, nil, []string{""}, 8); err == nil {
		t.Fatal("empty keyword should error")
	}
}

func TestNewEngineNormalizesCase(t *testing.T) {
	g, _ := IntroGraph()
	e, err := NewEngine(g, nil, []string{"KATE", "Smith"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasAllKeywords() {
		t.Fatal("case-insensitive keyword match failed")
	}
	if len(e.KeywordNodes(0)) != 1 || len(e.KeywordNodes(1)) != 2 {
		t.Fatalf("V_kate = %v, V_smith = %v", e.KeywordNodes(0), e.KeywordNodes(1))
	}
}

func TestEngineWithFulltextIndex(t *testing.T) {
	g, _ := PaperGraph()
	ix := fulltext.Build(g)
	e1, err := NewEngine(g, ix, []string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Keyword node sets must be identical with and without the index.
	for i := 0; i < 3; i++ {
		a, b := e1.KeywordNodes(i), e2.KeywordNodes(i)
		if len(a) != len(b) {
			t.Fatalf("keyword %d: index %v, scan %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("keyword %d: index %v, scan %v", i, a, b)
			}
		}
	}
	// And the enumeration results too.
	r1 := coreSet(t, drainAll(t, NewAll(e1), 100))
	r2 := coreSet(t, drainAll(t, NewAll(e2), 100))
	if len(r1) != len(r2) {
		t.Fatalf("indexed run found %d cores, scan run %d", len(r1), len(r2))
	}
}

func TestEngineAccessors(t *testing.T) {
	g, _ := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b"}, 8)
	if e.Graph() != g {
		t.Fatal("Graph accessor")
	}
	if e.L() != 2 {
		t.Fatalf("L = %d, want 2", e.L())
	}
	if e.Rmax() != 8 {
		t.Fatalf("Rmax = %v, want 8", e.Rmax())
	}
	if e.NeighborRuns() != 0 {
		t.Fatal("fresh engine should have zero Dijkstra runs")
	}
	if e.Bytes() <= 0 {
		t.Fatal("engine Bytes should be positive")
	}
	drainAll(t, NewAll(e), 100)
	if e.NeighborRuns() == 0 {
		t.Fatal("enumeration should count Dijkstra runs")
	}
}

// TestEngineDelayBound checks the polynomial-delay property in
// machine-independent terms: per emitted community, the number of
// bounded Dijkstra runs is O(l) — at most 3l+2 for NextCore plus
// l+2 for GetCommunity.
func TestEngineDelayBound(t *testing.T) {
	g, _ := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	it := NewAll(e)
	l := 3
	prev := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		runs := e.NeighborRuns() - prev
		prev = e.NeighborRuns()
		// NextCore: l initial or l pins + per level 2 runs => <= 3l.
		// GetCommunity: l knode passes + forward + reverse = l + 2.
		if runs > 4*l+2 {
			t.Fatalf("delay of %d Dijkstra runs exceeds O(l) bound %d", runs, 4*l+2)
		}
	}
	// The final failed probe also stays within the bound.
	if e.NeighborRuns()-prev > 4*l+2 {
		t.Fatalf("termination probe used %d runs", e.NeighborRuns()-prev)
	}
}

func TestClearSlotsResetsAggregates(t *testing.T) {
	g, _ := PaperGraph()
	e, _ := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	for i := 0; i < 3; i++ {
		e.setSlot(i, e.keywordNodes[i])
	}
	e.clearSlots()
	for v := range e.cnt {
		if e.cnt[v] != 0 {
			t.Fatalf("cnt[%d] = %d after clear", v, e.cnt[v])
		}
		if e.sum[v] != 0 {
			t.Fatalf("sum[%d] = %v after clear", v, e.sum[v])
		}
	}
	if _, _, ok := e.bestCore(); ok {
		t.Fatal("bestCore on cleared slots should find nothing")
	}
}
