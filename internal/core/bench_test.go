package core

import (
	"math/rand"
	"testing"
)

// BenchmarkPDallDelay measures per-result delay of the COMM-all
// enumerator on a random 2-keyword graph (cores only).
func BenchmarkPDallDelay(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, kws := randomKeywordGraph(b, rng, 2000, 8000, 2)
	b.ResetTimer()
	results := 0
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(g, nil, kws, 8)
		if err != nil {
			b.Fatal(err)
		}
		it := NewAll(e)
		for {
			if _, ok := it.NextCore(); !ok {
				break
			}
			results++
		}
	}
	b.ReportMetric(float64(results)/float64(b.N), "results/op")
}

// BenchmarkPDkTop50 measures the top-50 ranked enumeration.
func BenchmarkPDkTop50(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g, kws := randomKeywordGraph(b, rng, 2000, 8000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(g, nil, kws, 8)
		if err != nil {
			b.Fatal(err)
		}
		it := NewTopK(e)
		for j := 0; j < 50; j++ {
			if _, ok := it.NextCore(); !ok {
				break
			}
		}
	}
}

// BenchmarkGetCommunity measures one community materialization
// (Algorithm 4) on the paper's example.
func BenchmarkGetCommunity(b *testing.B) {
	g, ids := PaperGraph()
	e, err := NewEngine(g, nil, []string{"a", "b", "c"}, 8)
	if err != nil {
		b.Fatal(err)
	}
	core := Core{ids[13], ids[8], ids[11]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.GetCommunity(core)
	}
}
