package core

import (
	"commdb/internal/graph"
	"commdb/internal/heap"
)

// canTuple is the paper's 4-element can-list entry (C, cost, pos, prev):
// a candidate core, its cost, the keyword position at which its
// subspace split off, and the parent candidate whose expansion created
// it. Walking prev reconstructs the exclusion sets of the subspace.
type canTuple struct {
	core Core
	cost float64
	pos  int
	prev *canTuple
}

// TopKEnumerator is Algorithm 5 (PDk): it emits communities in
// non-decreasing cost order with polynomial delay O(l·(n·log n + m))
// per result and O(l²·k + l·n + m) space after k results.
//
// The enumerator has no fixed k: every Next call produces one more
// community, so a user can interactively enlarge k at run time without
// recomputation (Exp-3 of the paper). Stop calling Next when satisfied.
type TopKEnumerator struct {
	e       *Engine
	h       *heap.Fib[*canTuple]
	started bool
	done    bool
	emitted int
	tuples  int   // can-list length, for memory accounting
	err     error // stop reason when the engine's budget tripped
}

// NewTopK returns a COMM-k enumerator for the engine's query. The
// engine must not be shared with another running enumerator.
func NewTopK(e *Engine) *TopKEnumerator {
	return &TopKEnumerator{e: e, h: heap.NewFib[*canTuple]()}
}

// Err reports why the enumeration stopped: nil after a clean
// exhaustion, or the governance stop reason — context.Canceled,
// context.DeadlineExceeded, or a govern.ErrBudgetExhausted — when the
// budget tripped and the ranking produced so far is a partial prefix.
// It is meaningful once NextCore/Next has returned ok == false.
func (it *TopKEnumerator) Err() error { return it.err }

// stop freezes the enumeration with a governance stop reason.
func (it *TopKEnumerator) stop(err error) (CoreCost, bool) {
	it.err = err
	it.done = true
	return CoreCost{}, false
}

// NextCore returns the core of the next best community in ranking
// order, or ok == false when the query is exhausted or its budget
// tripped (Err distinguishes the two).
func (it *TopKEnumerator) NextCore() (CoreCost, bool) {
	if it.done {
		return CoreCost{}, false
	}
	bud := it.e.budget
	if err := bud.Err(); err != nil {
		return it.stop(err)
	}
	// Pre-charge the result grant: with MaxResults = k exactly k calls
	// succeed and the k+1st reports the exhausted budget.
	if err := bud.ChargeResult(); err != nil {
		return it.stop(err)
	}
	if !it.started {
		it.started = true
		if it.e.HasAllKeywords() {
			it.e.clearSlots()
			for i := 0; i < it.e.l; i++ {
				it.e.setSlotFull(i)
			}
			c, cost, ok := it.e.bestCore()
			if err := bud.Err(); err != nil {
				return it.stop(err)
			}
			if ok {
				it.h.Insert(cost, &canTuple{core: c, cost: cost, pos: 0})
				it.tuples++
				it.e.tr.Add("can_tuples", 1)
				it.e.tr.SetMax("can_list_max", int64(it.h.Len()))
				bud.ChargeTuple(it.tupleBytes())
			}
		}
	}
	node := it.h.ExtractMin()
	if node == nil {
		return CoreCost{}, false
	}
	g := node.Value
	it.expand(g)
	// The extracted minimum was fully determined before expand ran, so
	// it is returned even when expansion tripped the budget; the next
	// call observes the sticky reason and stops.
	if err := bud.Err(); err != nil {
		it.err = err
		it.done = true
	}
	it.emitted++
	it.e.tr.Emission()
	return CoreCost{Core: g.core, Cost: g.cost}, true
}

// tupleBytes is the logical size of one can-list tuple, charged against
// the budget's heap-bytes resource (the paper's O(l²·k) space term).
func (it *TopKEnumerator) tupleBytes() int64 {
	return int64(it.e.l)*4 + 48
}

// Next returns the next best community in ranking order, or ok == false
// when exhausted or the budget tripped (see Err). Calling Next again
// after k results simply continues to k+1 — the interactive
// enlargement the paper highlights.
func (it *TopKEnumerator) Next() (*Community, bool) {
	cc, ok := it.NextCore()
	if !ok {
		return nil, false
	}
	// A budget that tripped during expansion, or trips during
	// materialization, would leave this community missing nodes; drop
	// it rather than hand back a silently-wrong result.
	if err := it.e.budget.Err(); err != nil {
		it.stop(err)
		return nil, false
	}
	r := it.e.GetCommunity(cc.Core)
	if err := it.e.budget.Err(); err != nil {
		it.stop(err)
		return nil, false
	}
	return r, true
}

// expand is the paper's procedure Next(g) (Algorithm 5, lines 15-31):
// split g's subspace at every position from l down to g.pos, find the
// best core of each sub-subspace and enheap it.
func (it *TopKEnumerator) expand(g *canTuple) {
	l := it.e.l
	// Preparation: pin every slot to g's core node (lines 16-17) and
	// rebuild the exclusion set of g's own subspace at position g.pos
	// from the prev chain (the paper's lines 18-23; see the note below).
	removed := make([]map[graph.NodeID]struct{}, l)
	for i := 0; i < l; i++ {
		it.e.setSlotSingle(i, g.core[i])
	}
	// The subspace g was found in excludes, at position g.pos, the core
	// nodes of the maximal ancestor chain that kept splitting at that
	// same position: when parent h split at position p creating child
	// with pos == p, the child's subspace excluded h.core[p] there, and
	// inherited h's own exclusions at p iff h.pos == p too. (This is
	// where we deviate from the paper's printed pseudocode, which
	// removes h.C[h.pos] for every ancestor h and would re-enumerate a
	// parent's core when split positions repeat down a chain.)
	removed[g.pos] = make(map[graph.NodeID]struct{})
	for h := g; h.pos == g.pos && h.prev != nil; {
		h = h.prev
		removed[g.pos][h.core[g.pos]] = struct{}{}
	}

	seeds := func(i int) []graph.NodeID {
		vi := it.e.keywordNodes[i]
		if len(removed[i]) == 0 {
			return vi
		}
		out := make([]graph.NodeID, 0, len(vi))
		for _, v := range vi {
			if _, gone := removed[i][v]; !gone {
				out = append(out, v)
			}
		}
		return out
	}

	// Split loop (lines 24-31), from position l-1 down to g.pos.
	for i := l - 1; i >= g.pos; i-- {
		if removed[i] == nil {
			removed[i] = make(map[graph.NodeID]struct{})
		}
		removed[i][g.core[i]] = struct{}{}
		it.e.setSlot(i, seeds(i))
		c, cost, ok := it.e.bestCore()
		// A trip during the pins, the slot recompute or the scan makes
		// this and every further sub-subspace probe unreliable; abandon
		// the expansion (NextCore freezes the enumeration right after).
		if it.e.budget.Err() != nil {
			return
		}
		if ok {
			it.h.Insert(cost, &canTuple{core: c, cost: cost, pos: i, prev: g})
			it.tuples++
			it.e.tr.Add("can_tuples", 1)
			it.e.tr.SetMax("can_list_max", int64(it.h.Len()))
			if it.e.budget.ChargeTuple(it.tupleBytes()) != nil {
				return
			}
		}
		// Restore position i for the next (lower) split position: for
		// i > g.pos the chain holds no exclusions there, so this is the
		// full V_i again (lines 30-31), restored from the cache for
		// free. The last iteration needs no restore.
		if i > g.pos {
			delete(removed[i], g.core[i])
			it.e.setSlotFull(i)
		}
	}
}

// Emitted reports how many communities have been produced so far.
func (it *TopKEnumerator) Emitted() int { return it.emitted }

// PendingCandidates reports how many candidate cores are currently
// enheaped, at most l per emitted result.
func (it *TopKEnumerator) PendingCandidates() int { return it.h.Len() }

// Bytes estimates the enumerator's logical working memory beyond the
// engine: the can-list (every tuple ever created stays reachable as a
// prev parent, the paper's O(l²·k) term) plus heap overhead.
func (it *TopKEnumerator) Bytes() int64 {
	perTuple := int64(it.e.l)*4 + 48
	return int64(it.tuples)*perTuple + int64(it.h.Len())*56
}
