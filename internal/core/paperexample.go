package core

import "commdb/internal/graph"

// mustBuild freezes a builder whose construction is statically known to
// succeed (the hard-coded example graphs). The panic is the only one in
// the enumeration stack and is converted to an error at the public API
// boundary, so a bug here fails one query, not the process.
func mustBuild(b *graph.Builder, what string) *graph.Graph {
	g, err := b.Freeze()
	if err != nil {
		panic("core: " + what + " must build: " + err.Error())
	}
	return g
}

// PaperGraph reconstructs the running example of the paper (Fig. 4): a
// 13-node weighted directed graph where v4 and v13 contain keyword "a",
// v2 and v8 contain "b", and v3, v6, v9, v11 contain "c".
//
// The figure itself only appears as an image in the paper, but the text
// pins the graph down almost completely: Table I (the five communities
// with exact costs and center sets), the printed neighborSets N_1, N_2,
// N_3 for Rmax = 8, the per-node sets in the worked Next() trace, and
// the distance decompositions of Example 2.1 (e.g. dist(v11,v8) = 2+3
// via v10, dist(v12,v13) = 3). This reconstruction reproduces every one
// of those numbers; the tests in paperexample_test.go assert them all.
//
// The returned ids slice maps 1-based paper indices to node IDs:
// ids[1] is v1 … ids[13] is v13 (ids[0] is unused).
func PaperGraph() (*graph.Graph, []graph.NodeID) {
	b := graph.NewBuilder()
	ids := make([]graph.NodeID, 14)
	kw := map[int][]string{
		4: {"a"}, 13: {"a"},
		2: {"b"}, 8: {"b"},
		3: {"c"}, 6: {"c"}, 9: {"c"}, 11: {"c"},
	}
	names := []string{"", "v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9", "v10", "v11", "v12", "v13"}
	for i := 1; i <= 13; i++ {
		ids[i] = b.AddNode(names[i], kw[i]...)
	}
	type e struct {
		u, v int
		w    float64
	}
	edges := []e{
		{1, 2, 5}, {1, 3, 3}, {1, 4, 6},
		{2, 3, 4},
		{4, 6, 3}, {4, 8, 4},
		{5, 2, 5}, {5, 4, 6}, {5, 9, 4},
		{7, 4, 1}, {7, 6, 2}, {7, 8, 6},
		{8, 13, 7},
		{9, 10, 2}, {9, 13, 5},
		{10, 8, 3},
		{11, 10, 2}, {11, 12, 3},
		{12, 11, 3}, {12, 13, 3},
	}
	for _, ed := range edges {
		b.AddEdge(ids[ed.u], ids[ed.v], ed.w)
	}
	return mustBuild(b, "paper example graph"), ids
}

// IntroGraph reconstructs the introduction's co-authorship example
// (Fig. 1(a)): papers paper1 and paper2 and authors John Smith, Kate
// Green and Jim Smith, with author-order edge weights and the citation
// edge paper1→paper2 of weight 4. With the 2-keyword query
// {kate, smith} and radius 6 it yields exactly the two communities of
// Fig. 3.
//
// The returned map gives the node IDs by name: "paper1", "paper2",
// "john", "kate", "jim".
func IntroGraph() (*graph.Graph, map[string]graph.NodeID) {
	b := graph.NewBuilder()
	ids := map[string]graph.NodeID{
		"john":   b.AddNode("John Smith", "john", "smith"),
		"kate":   b.AddNode("Kate Green", "kate", "green"),
		"jim":    b.AddNode("Jim Smith", "jim", "smith"),
		"paper1": b.AddNode("paper1", "paper1"),
		"paper2": b.AddNode("paper2", "paper2"),
	}
	b.AddEdge(ids["paper1"], ids["john"], 1)
	b.AddEdge(ids["paper1"], ids["kate"], 2)
	b.AddEdge(ids["paper2"], ids["kate"], 1)
	b.AddEdge(ids["paper2"], ids["john"], 2)
	b.AddEdge(ids["paper2"], ids["jim"], 3)
	b.AddEdge(ids["paper1"], ids["paper2"], 4)
	return mustBuild(b, "intro example graph"), ids
}
