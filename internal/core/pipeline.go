package core

import "sync"

// This file implements the in-query materialization pipeline: the
// enumerators' NextCore loop stays strictly sequential (every slot
// mutation and BestCore scan happens on one producer goroutine, so the
// paper's enumeration order is untouched), while the per-core
// GetCommunity materializations — one-plus bounded Dijkstras each, and
// independent of the enumeration state — fan out across worker
// goroutines. A reorder buffer on the consumer side re-serializes
// completed communities by sequence number, so the caller observes the
// exact sequential emission order, stop reason and Err() contract of
// the unpiped enumerator; only the wall-clock between results changes.

// CoreSource is the face of an enumerator the pipeline drives: the
// sequential core producer plus its terminal stop reason.
type CoreSource interface {
	NextCore() (CoreCost, bool)
	Err() error
}

// matTask is one core awaiting materialization.
type matTask struct {
	seq int
	cc  CoreCost
}

// matResult is one pipeline slot arriving at the consumer. Exactly one
// result is produced per sequence number; the terminal sentinel (last)
// carries the producer's stop reason and the highest sequence number,
// so the reorder buffer naturally delivers it after every community.
type matResult struct {
	seq  int
	cc   CoreCost
	comm *Community
	err  error // budget stop reason observed around this materialization
	pan  any   // a worker/producer panic, re-raised on the consumer
	last bool  // terminal: err is the producer's Err()
}

// Pipeline runs a CoreSource through parallel materialization. Not
// safe for concurrent use by multiple consumers — like the enumerators
// it wraps, it serves one query's iterator.
type Pipeline struct {
	e       *Engine
	tasks   chan matTask
	results chan matResult
	quit    chan struct{}
	stop    sync.Once
	wg      sync.WaitGroup
	// workersWG covers only the worker goroutines, so the producer can
	// retire them (drain) before letting a results-budget trip land.
	workersWG sync.WaitGroup

	// Consumer state: the reorder buffer keyed by sequence number, the
	// next sequence to deliver, and the frozen outcome.
	pending map[int]matResult
	want    int
	err     error
	done    bool
}

// NewPipeline starts the producer and workers goroutines over src.
// workers must be >= 1; callers gain nothing below 2.
func NewPipeline(e *Engine, src CoreSource, workers int) *Pipeline {
	p := &Pipeline{
		e: e,
		// tasks buffers one core per worker: bounded lookahead, so the
		// producer cannot race arbitrarily far ahead of the consumer
		// (result pre-charges stay within one pipeline depth of the
		// delivered count).
		tasks:   make(chan matTask, workers),
		results: make(chan matResult, 2*workers),
		quit:    make(chan struct{}),
		pending: make(map[int]matResult),
	}
	// All workersWG.Add calls must precede the producer's start: it may
	// reach workersWG.Wait (the results-budget drain) immediately.
	p.wg.Add(1 + workers)
	p.workersWG.Add(workers)
	go p.produce(src)
	for w := 0; w < workers; w++ {
		go p.work()
	}
	return p
}

// produce drives the sequential enumeration, feeding cores to the
// workers and terminating with the sentinel.
//
// The drain dance preserves MaxResults semantics: sequentially, the
// results budget can only trip between materializations (the
// pre-charge at the top of NextCore), so every granted community is
// emitted intact. With lookahead, the producer's tripping charge would
// land while granted communities are still materializing — and a
// sticky trip aborts their Dijkstras, voiding them retroactively. So
// once the results budget is fully granted, the producer retires the
// workers and finishes inline: the final, tripping NextCore then runs
// with nothing in flight, exactly like the sequential enumerator.
func (p *Pipeline) produce(src CoreSource) {
	defer p.wg.Done()
	seq := 0
	term := matResult{last: true}
	drained := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				term.pan = r
			}
		}()
		for {
			if !drained && p.e.budget.AtResultsLimit() {
				close(p.tasks)
				p.workersWG.Wait()
				drained = true
			}
			cc, ok := src.NextCore()
			if !ok {
				term.err = src.Err()
				return
			}
			if drained {
				// Inline materialization on the engine's own scratch —
				// safe, the producer is the sole goroutine left — with
				// the sequential drop-on-trip checks around it.
				if err := p.e.budget.Err(); err != nil {
					term.err = err
					return
				}
				comm := p.e.GetCommunity(cc.Core)
				if err := p.e.budget.Err(); err != nil {
					term.err = err
					return
				}
				select {
				case p.results <- matResult{seq: seq, cc: cc, comm: comm}:
					seq++
				case <-p.quit:
					return
				}
				continue
			}
			select {
			case p.tasks <- matTask{seq: seq, cc: cc}:
				seq++
			case <-p.quit:
				return
			}
		}
	}()
	if !drained {
		close(p.tasks)
	}
	term.seq = seq
	select {
	case p.results <- term:
	case <-p.quit:
	}
}

// work materializes cores on a private scratch until the task stream
// ends or the pipeline is torn down.
func (p *Pipeline) work() {
	defer p.wg.Done()
	defer p.workersWG.Done()
	ws := p.e.pool.Get(p.e.g)
	ws.SetBudget(p.e.budget)
	ws.SetTrace(p.e.tr)
	sc := p.e.newGCScratch(ws, true)
	defer sc.release(p.e.pool)
	for t := range p.tasks {
		res := p.materialize(t, sc)
		select {
		case p.results <- res:
		case <-p.quit:
			return
		}
	}
}

// materialize runs one GetCommunity with the sequential path's
// drop-on-trip semantics: a budget that is already tripped, or trips
// during the materialization, voids the community — the consumer
// stops with that reason instead of handing back a silently-wrong
// result. Panics are shipped to the consumer and re-raised there, so
// the public recover boundary still sees them.
func (p *Pipeline) materialize(t matTask, sc *gcScratch) (res matResult) {
	res = matResult{seq: t.seq, cc: t.cc}
	defer func() {
		if r := recover(); r != nil {
			res.pan = r
			res.comm = nil
		}
	}()
	if err := p.e.budget.Err(); err != nil {
		res.err = err
		return res
	}
	comm := p.e.getCommunity(t.cc.Core, sc)
	if err := p.e.budget.Err(); err != nil {
		res.err = err
		return res
	}
	res.comm = comm
	return res
}

// Next delivers the pipeline's next in-order result. ok == false means
// the enumeration finished or stopped; Err then reports why, exactly
// as the wrapped enumerator would have.
func (p *Pipeline) Next() (CoreCost, *Community, bool) {
	for {
		if p.done {
			return CoreCost{}, nil, false
		}
		res, ok := p.pending[p.want]
		if !ok {
			res = <-p.results
			if res.seq != p.want {
				p.pending[res.seq] = res
				continue
			}
		} else {
			delete(p.pending, p.want)
		}
		p.want++
		if res.pan != nil {
			p.finish(nil)
			panic(res.pan)
		}
		if res.last {
			p.finish(res.err)
			return CoreCost{}, nil, false
		}
		if res.err != nil {
			p.finish(res.err)
			return CoreCost{}, nil, false
		}
		return res.cc, res.comm, true
	}
}

// finish freezes the outcome and tears down the background goroutines.
func (p *Pipeline) finish(err error) {
	p.err = err
	p.done = true
	p.stop.Do(func() { close(p.quit) })
}

// Err reports the frozen stop reason; meaningful once Next has
// returned ok == false.
func (p *Pipeline) Err() error { return p.err }

// Close tears the pipeline down and waits for every goroutine to exit,
// returning worker workspaces to the engine's pool. Idempotent; safe
// mid-enumeration.
func (p *Pipeline) Close() {
	p.done = true
	p.stop.Do(func() { close(p.quit) })
	// Unblock workers parked on a full results channel: quit covers
	// their sends, so draining is not required for exit, but the
	// channel may still hold buffered results — drop them.
	p.wg.Wait()
	for {
		select {
		case <-p.results:
		default:
			return
		}
	}
}
