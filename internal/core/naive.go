package core

import (
	"math"

	"commdb/internal/graph"
	"commdb/internal/sssp"
)

// EnumerateNaive is the paper's Section III nested-loop baseline: it
// checks every combination in V_1 × … × V_l and keeps those that admit
// at least one center within Rmax, with exact community costs. Its
// complexity is O(n^l) — it exists as the ground truth for correctness
// tests and is exercised only on small graphs.
//
// Results are complete and duplication-free by construction; their
// order is the lexicographic combination order, not the ranking order.
func EnumerateNaive(e *Engine) []CoreCost {
	if !e.HasAllKeywords() {
		return nil
	}
	n := e.g.NumNodes()

	// One bounded reverse Dijkstra per distinct keyword node:
	// rev[kn].Dist(v) = dist(v, kn) when within Rmax.
	rev := make(map[graph.NodeID]*sssp.Result)
	for i := 0; i < e.l; i++ {
		for _, kn := range e.keywordNodes[i] {
			if rev[kn] == nil {
				res := sssp.NewResult(n)
				e.ws.RunFromNodes(sssp.Reverse, []graph.NodeID{kn}, e.rmax, res)
				rev[kn] = res
			}
		}
	}

	var out []CoreCost
	combo := make(Core, e.l)
	var walk func(i int)
	walk = func(i int) {
		if i == e.l {
			if cost, ok := naiveCost(e, rev, combo); ok {
				out = append(out, CoreCost{Core: combo.Clone(), Cost: cost})
			}
			return
		}
		for _, v := range e.keywordNodes[i] {
			combo[i] = v
			walk(i + 1)
		}
	}
	walk(0)
	return out
}

// naiveCost returns the community cost of core c — the minimum over all
// centers of the summed distances to every core position — or ok ==
// false when no node reaches all core nodes within Rmax.
func naiveCost(e *Engine, rev map[graph.NodeID]*sssp.Result, c Core) (float64, bool) {
	// Scan candidate centers from the smallest settled set.
	smallest := rev[c[0]]
	for _, ci := range c[1:] {
		if rev[ci].Len() < smallest.Len() {
			smallest = rev[ci]
		}
	}
	best := math.Inf(1)
	dists := make([]float64, len(c))
	for _, v := range smallest.Visited() {
		feasible := true
		for i, ci := range c {
			d, ok := rev[ci].Dist(v)
			if !ok {
				feasible = false
				break
			}
			dists[i] = d
		}
		if total := e.CostOf(dists); feasible && total < best {
			best = total
		}
	}
	return best, !math.IsInf(best, 1)
}
