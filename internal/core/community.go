// Package core implements the paper's primary contribution: finding
// multi-center communities for l-keyword queries over a database graph.
//
// A community (Definition 2.1) is the induced subgraph determined by a
// core — one keyword node per query keyword — together with every
// center node that reaches all core nodes within Rmax and every path
// node lying on a short enough center→keyword path. The package
// provides the paper's three subproblems (Neighbor, BestCore,
// GetCommunity), the polynomial-delay COMM-all enumerator (Algorithm 1)
// and the COMM-k top-k enumerator (Algorithm 5) with interactive k
// enlargement.
package core

import (
	"fmt"
	"sort"
	"strings"

	"commdb/internal/graph"
)

// Core is the identity of a community: Core[i] is the keyword node
// ("knode") chosen for the i-th query keyword. Two communities are
// duplicates exactly when their cores are position-wise equal.
type Core []graph.NodeID

// Equal reports position-wise equality.
func (c Core) Equal(o Core) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the core.
func (c Core) Clone() Core { return append(Core(nil), c...) }

// Key renders the core as a compact unique string, used as a map key by
// the expanding baselines' duplication pool and by tests.
func (c Core) Key() string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// String renders the core for human consumption.
func (c Core) String() string { return "[" + c.Key() + "]" }

// Community is a fully materialized result (Definition 2.1): the
// multi-center induced subgraph determined by Core.
type Community struct {
	// Core identifies the community; Core[i] contains keyword i.
	Core Core
	// Cost is the minimum over all centers of the total shortest-path
	// weight from the center to every core node (Section II).
	Cost float64
	// Knodes are the distinct keyword nodes (the set view of Core).
	Knodes []graph.NodeID
	// Cnodes are the centers: nodes within Rmax of every core node.
	Cnodes []graph.NodeID
	// Pnodes are the path nodes: on some center→knode path of length
	// at most Rmax, and neither knodes nor cnodes themselves.
	Pnodes []graph.NodeID
	// Nodes is the sorted union Knodes ∪ Cnodes ∪ Pnodes.
	Nodes []graph.NodeID
	// Edges are the edges of the subgraph induced by Nodes.
	Edges []graph.EdgePair

	// ReuseRadius is the smallest query radius that reproduces this
	// community exactly as materialized: at any Rmax' with ReuseRadius
	// ≤ Rmax' ≤ the materializing Rmax, the same core yields the same
	// centers (every center's core eccentricity fits), the same member
	// nodes (every member's ds+dt path length fits), and hence the same
	// cost and induced edges. The Rmax-monotone result cache keeps a
	// cached record when downfiltering iff ReuseRadius ≤ Rmax'.
	ReuseRadius float64
	// CoreRadius is the smallest query radius at which this community's
	// core admits any center (the minimum over centers of their core
	// eccentricity): below it the core yields no community at all, so
	// the semantic cache may drop the record outright. Radii between
	// CoreRadius and ReuseRadius shrink the community instead — a cache
	// must fall back to live execution there. Zero when the community
	// has no centers.
	CoreRadius float64
}

// HasNode reports whether v belongs to the community, by binary search
// over the sorted node list.
func (r *Community) HasNode(v graph.NodeID) bool {
	i := sort.Search(len(r.Nodes), func(i int) bool { return r.Nodes[i] >= v })
	return i < len(r.Nodes) && r.Nodes[i] == v
}

// Bytes estimates the logical memory footprint of the materialized
// community, used by the benchmark harness's memory accounting.
func (r *Community) Bytes() int64 {
	return int64(len(r.Core)+len(r.Knodes)+len(r.Cnodes)+len(r.Pnodes)+len(r.Nodes))*4 +
		int64(len(r.Edges))*8 + 64
}

// CoreCost holds a core with its cost, the unit of enumeration when
// communities are not materialized.
type CoreCost struct {
	Core Core
	Cost float64
}
