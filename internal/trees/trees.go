// Package trees implements the minimal-connected-tree keyword search
// that the paper's introduction argues against: BANKS-style rooted
// result trees (Bhalotia et al., reference [2] of the paper; the
// distinct-root ranked enumeration of Kimelfeld & Sagiv, reference
// [4]).
//
// A result tree for an l-keyword query is a root node together with one
// shortest path from the root to a keyword node per keyword; its cost
// is the total weight of those paths. Trees are enumerated in ranking
// order, identified by (root, leaf per keyword) — the semantics under
// which the paper's Fig. 2 shows several fragmented trees where Fig. 3
// shows two communities.
//
// The package exists as the motivational baseline: the quickstart
// example and the "motivation" benchmark contrast how many fragmented
// trees carry the information of a handful of communities.
package trees

import (
	"fmt"
	"sort"

	"commdb/internal/core"
	"commdb/internal/fulltext"
	"commdb/internal/graph"
	"commdb/internal/heap"
	"commdb/internal/sssp"
)

// Tree is one ranked answer: a root reaching one keyword node per
// keyword through its shortest paths.
type Tree struct {
	// Root is the connection node of the tree.
	Root graph.NodeID
	// Leaves hold the chosen keyword node per keyword position.
	Leaves []graph.NodeID
	// Cost is the total weight of the root→leaf shortest paths.
	Cost float64
	// Nodes are the distinct nodes of the tree (root, leaves, and all
	// path nodes), sorted.
	Nodes []graph.NodeID
	// Edges are the tree's directed edges (each path's hops), deduped.
	Edges []graph.EdgePair
}

// Enumerator streams trees in non-decreasing cost order. Create one per
// query with NewEnumerator and call Next until done — like the
// community enumerators, it supports interactive enlargement.
type Enumerator struct {
	g    *graph.Graph
	dmax float64
	l    int

	// kwRuns[i][j] is the bounded reverse Dijkstra from the j-th node
	// containing keyword i; kwNodes[i][j] is that node.
	kwNodes [][]graph.NodeID
	kwRuns  [][]*sssp.Result

	// lists[r][i] is the root's sorted candidate list for keyword i:
	// indices into kwNodes[i]/kwRuns[i] ordered by distance from r.
	// Built lazily per root.
	lists map[graph.NodeID][][]leafCand

	h       *heap.Fib[*treeCand]
	started bool
}

type leafCand struct {
	idx  int // into kwNodes[i]
	dist float64
}

// treeCand is a candidate in the k-best product enumeration: a root and
// one sorted-list index per keyword. pos implements the standard
// duplicate-free successor rule (only positions >= pos may advance).
type treeCand struct {
	root graph.NodeID
	idxs []int
	cost float64
	pos  int
}

// NewEnumerator prepares the ranked tree enumeration: every root→leaf
// distance within dmax is admissible. ix may be nil.
func NewEnumerator(g *graph.Graph, ix *fulltext.Index, keywords []string, dmax float64) (*Enumerator, error) {
	if len(keywords) == 0 {
		return nil, fmt.Errorf("trees: query needs at least one keyword")
	}
	if dmax < 0 {
		return nil, fmt.Errorf("trees: negative distance bound %v", dmax)
	}
	e := &Enumerator{
		g:       g,
		dmax:    dmax,
		l:       len(keywords),
		kwNodes: make([][]graph.NodeID, len(keywords)),
		kwRuns:  make([][]*sssp.Result, len(keywords)),
		lists:   make(map[graph.NodeID][][]leafCand),
		h:       heap.NewFib[*treeCand](),
	}
	ws := sssp.NewWorkspace(g)
	for i, kw := range keywords {
		nodes, err := core.KeywordNodes(g, ix, kw)
		if err != nil {
			return nil, err
		}
		e.kwNodes[i] = nodes
		e.kwRuns[i] = make([]*sssp.Result, len(nodes))
		for j, v := range nodes {
			res := sssp.NewResult(g.NumNodes())
			ws.RunFromNodes(sssp.Reverse, []graph.NodeID{v}, dmax, res)
			e.kwRuns[i][j] = res
		}
	}
	return e, nil
}

// rootLists builds (or returns) the per-keyword sorted leaf lists of a
// root, or nil when the root cannot reach every keyword.
func (e *Enumerator) rootLists(r graph.NodeID) [][]leafCand {
	if ls, ok := e.lists[r]; ok {
		return ls
	}
	ls := make([][]leafCand, e.l)
	for i := 0; i < e.l; i++ {
		for j, run := range e.kwRuns[i] {
			if d, ok := run.Dist(r); ok {
				ls[i] = append(ls[i], leafCand{idx: j, dist: d})
			}
		}
		if len(ls[i]) == 0 {
			e.lists[r] = nil
			return nil
		}
		sort.Slice(ls[i], func(a, b int) bool {
			if ls[i][a].dist != ls[i][b].dist {
				return ls[i][a].dist < ls[i][b].dist
			}
			return ls[i][a].idx < ls[i][b].idx
		})
	}
	e.lists[r] = ls
	return ls
}

func (e *Enumerator) start() {
	e.started = true
	if e.l == 0 {
		return
	}
	// Roots: nodes reaching at least one node of every keyword. Seed
	// the heap with each root's best tree.
	if len(e.kwRuns[0]) == 0 {
		return
	}
	counts := make(map[graph.NodeID]int)
	seen := make(map[graph.NodeID]bool)
	for i := 0; i < e.l; i++ {
		for v := range seen {
			delete(seen, v)
		}
		for _, run := range e.kwRuns[i] {
			for _, v := range run.Visited() {
				if !seen[v] {
					seen[v] = true
					counts[v]++
				}
			}
		}
	}
	// Seed in a deterministic order: the heap breaks cost ties by
	// insertion order, and counts is a map, so iterating it directly
	// would make the ranking of tied trees nondeterministic across
	// runs. Equal-cost seeds are ordered by their per-keyword leaf
	// distance vectors (lexicographically, in normalized keyword
	// order), then by root — so on the intro example the paper2-rooted
	// tree (dists 1,2) outranks the paper1-rooted one (dists 2,1) as in
	// the paper's Fig. 1, every run.
	type seedCand struct {
		cand  *treeCand
		dists []float64
	}
	var seeds []seedCand
	for r, c := range counts {
		if c != e.l {
			continue
		}
		ls := e.rootLists(r)
		if ls == nil {
			continue
		}
		cand := &treeCand{root: r, idxs: make([]int, e.l)}
		dists := make([]float64, e.l)
		for i := range ls {
			dists[i] = ls[i][0].dist
			cand.cost += dists[i]
		}
		seeds = append(seeds, seedCand{cand, dists})
	}
	sort.Slice(seeds, func(a, b int) bool {
		sa, sb := seeds[a], seeds[b]
		if sa.cand.cost != sb.cand.cost {
			return sa.cand.cost < sb.cand.cost
		}
		for i := range sa.dists {
			if sa.dists[i] != sb.dists[i] {
				return sa.dists[i] < sb.dists[i]
			}
		}
		return sa.cand.root < sb.cand.root
	})
	for _, s := range seeds {
		e.h.Insert(s.cand.cost, s.cand)
	}
}

// Next returns the next best tree, or ok == false when exhausted.
func (e *Enumerator) Next() (*Tree, bool) {
	if !e.started {
		e.start()
	}
	node := e.h.ExtractMin()
	if node == nil {
		return nil, false
	}
	c := node.Value
	e.expand(c)
	return e.materialize(c), true
}

// expand pushes c's successors: advancing one list index at positions
// >= c.pos keeps the product enumeration complete and duplicate-free.
func (e *Enumerator) expand(c *treeCand) {
	ls := e.lists[c.root]
	for i := c.pos; i < e.l; i++ {
		if c.idxs[i]+1 >= len(ls[i]) {
			continue
		}
		n := &treeCand{root: c.root, idxs: append([]int(nil), c.idxs...), pos: i}
		n.idxs[i]++
		n.cost = c.cost - ls[i][c.idxs[i]].dist + ls[i][n.idxs[i]].dist
		e.h.Insert(n.cost, n)
	}
}

// materialize assembles the tree's nodes and edges from the stored
// shortest-path next hops.
func (e *Enumerator) materialize(c *treeCand) *Tree {
	ls := e.lists[c.root]
	t := &Tree{Root: c.root, Cost: c.cost, Leaves: make([]graph.NodeID, e.l)}
	nodeSet := map[graph.NodeID]bool{c.root: true}
	edgeSet := map[graph.EdgePair]bool{}
	for i := 0; i < e.l; i++ {
		lc := ls[i][c.idxs[i]]
		run := e.kwRuns[i][lc.idx]
		t.Leaves[i] = e.kwNodes[i][lc.idx]
		// Reverse-run path from the root to the leaf, in original edge
		// orientation.
		path := run.PathTo(c.root)
		for h := 0; h < len(path); h++ {
			nodeSet[path[h]] = true
			if h+1 < len(path) {
				edgeSet[graph.EdgePair{From: path[h], To: path[h+1]}] = true
			}
		}
	}
	for v := range nodeSet {
		t.Nodes = append(t.Nodes, v)
	}
	sort.Slice(t.Nodes, func(i, j int) bool { return t.Nodes[i] < t.Nodes[j] })
	for ep := range edgeSet {
		t.Edges = append(t.Edges, ep)
	}
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i].From != t.Edges[j].From {
			return t.Edges[i].From < t.Edges[j].From
		}
		return t.Edges[i].To < t.Edges[j].To
	})
	return t
}

// Collect drains up to k trees.
func (e *Enumerator) Collect(k int) []*Tree {
	out := make([]*Tree, 0, k)
	for len(out) < k {
		t, ok := e.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out
}
