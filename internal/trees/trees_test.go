package trees

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"commdb/internal/core"
	"commdb/internal/graph"
	"commdb/internal/sssp"
)

func randomKeywordGraph(t *testing.T, rng *rand.Rand, n, m, nkw int) (*graph.Graph, []string) {
	t.Helper()
	kws := make([]string, nkw)
	for i := range kws {
		kws[i] = fmt.Sprintf("k%d", i)
	}
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		var terms []string
		for _, kw := range kws {
			if rng.Intn(4) == 0 {
				terms = append(terms, kw)
			}
		}
		b.AddNode(fmt.Sprintf("n%d", i), terms...)
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), float64(rng.Intn(5)+1))
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g, kws
}

// bruteTrees enumerates every (root, leaf per keyword) answer by
// brute-force shortest paths, returning sorted costs.
func bruteTrees(t *testing.T, g *graph.Graph, kws []string, dmax float64) []float64 {
	t.Helper()
	n := g.NumNodes()
	ws := sssp.NewWorkspace(g)
	res := sssp.NewResult(n)
	dist := make([][]float64, n)
	for u := 0; u < n; u++ {
		ws.RunFromNodes(sssp.Forward, []graph.NodeID{graph.NodeID(u)}, math.Inf(1), res)
		dist[u] = make([]float64, n)
		for v := 0; v < n; v++ {
			d, ok := res.Dist(graph.NodeID(v))
			if !ok {
				d = math.Inf(1)
			}
			dist[u][v] = d
		}
	}
	sets := make([][]graph.NodeID, len(kws))
	for i, kw := range kws {
		nodes, err := core.KeywordNodes(g, nil, kw)
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = nodes
	}
	var costs []float64
	combo := make([]graph.NodeID, len(kws))
	var walk func(i int, r int, cost float64)
	walk = func(i int, r int, cost float64) {
		if i == len(kws) {
			costs = append(costs, cost)
			return
		}
		for _, leaf := range sets[i] {
			d := dist[r][leaf]
			if d <= dmax {
				combo[i] = leaf
				walk(i+1, r, cost+d)
			}
		}
	}
	for r := 0; r < n; r++ {
		walk(0, r, 0)
	}
	sort.Float64s(costs)
	return costs
}

// TestTreesMatchBruteForce: the ranked enumeration produces exactly the
// brute-force (root, leaves) answers in non-decreasing cost order.
func TestTreesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(15) + 4
		g, kws := randomKeywordGraph(t, rng, n, n*3, 2)
		dmax := float64(rng.Intn(8) + 2)
		want := bruteTrees(t, g, kws, dmax)

		e, err := NewEnumerator(g, nil, kws, dmax)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		var got []float64
		for {
			tr, ok := e.Next()
			if !ok {
				break
			}
			key := fmt.Sprintf("%d|%v", tr.Root, tr.Leaves)
			if seen[key] {
				t.Fatalf("trial %d: duplicate tree %s", trial, key)
			}
			seen[key] = true
			got = append(got, tr.Cost)
			if len(got) > len(want)+5 {
				t.Fatalf("trial %d: runaway enumeration", trial)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: enumerated %d trees, brute force %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: rank %d cost %v, want %v", trial, i+1, got[i], want[i])
			}
		}
	}
}

// TestTreeStructure: every emitted tree is well formed — paths exist in
// the graph, the root reaches each leaf through the tree's edges, and
// the cost equals the sum of the shortest root→leaf distances.
func TestTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(709))
	g, kws := randomKeywordGraph(t, rng, 20, 70, 2)
	e, err := NewEnumerator(g, nil, kws, 8)
	if err != nil {
		t.Fatal(err)
	}
	for {
		tr, ok := e.Next()
		if !ok {
			break
		}
		// Every edge exists in the graph.
		adj := map[graph.NodeID][]graph.NodeID{}
		for _, ep := range tr.Edges {
			if _, exists := g.EdgeWeight(ep.From, ep.To); !exists {
				t.Fatalf("tree edge %v not in graph", ep)
			}
			adj[ep.From] = append(adj[ep.From], ep.To)
		}
		// Root reaches every leaf within the tree's own edges.
		reach := map[graph.NodeID]bool{tr.Root: true}
		queue := []graph.NodeID{tr.Root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if !reach[w] {
					reach[w] = true
					queue = append(queue, w)
				}
			}
		}
		for _, leaf := range tr.Leaves {
			if !reach[leaf] {
				t.Fatalf("leaf %d unreachable from root %d within the tree", leaf, tr.Root)
			}
		}
		// All tree nodes appear in Nodes.
		for v := range reach {
			found := false
			for _, u := range tr.Nodes {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("tree node %d missing from Nodes", v)
			}
		}
	}
}

// TestIntroTreesVsCommunities quantifies the paper's motivation on the
// introduction example: the 2-keyword query {kate, smith} yields three
// distinct-root trees but only two communities, and the top community
// subsumes the information of both paper-rooted trees.
func TestIntroTreesVsCommunities(t *testing.T) {
	g, ids := core.IntroGraph()
	e, err := NewEnumerator(g, nil, []string{"kate", "smith"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	trees := e.Collect(100)
	// Distinct-root answers: paper1:(kate,john), paper2:(kate,john),
	// paper2:(kate,jim). paper1 cannot reach jim within 6 (4+3=7).
	if len(trees) != 3 {
		t.Fatalf("intro example: %d trees, want 3", len(trees))
	}
	// The best tree is rooted at paper2 (1+2=3).
	if trees[0].Root != ids["paper2"] || math.Abs(trees[0].Cost-3) > 1e-9 {
		t.Fatalf("best tree root %d cost %v, want paper2 cost 3", trees[0].Root, trees[0].Cost)
	}

	eng, err := core.NewEngine(g, nil, []string{"kate", "smith"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	it := core.NewAll(eng)
	communities := 0
	for {
		if _, ok := it.NextCore(); !ok {
			break
		}
		communities++
	}
	if communities != 2 {
		t.Fatalf("intro example: %d communities, want 2", communities)
	}
	if communities >= len(trees) {
		t.Fatal("motivation broken: communities should be fewer than trees")
	}
}

// TestTreesEmptyAndErrors covers degenerate queries.
func TestTreesEmptyAndErrors(t *testing.T) {
	g, _ := core.PaperGraph()
	if _, err := NewEnumerator(g, nil, nil, 8); err == nil {
		t.Fatal("no keywords should error")
	}
	if _, err := NewEnumerator(g, nil, []string{"a"}, -1); err == nil {
		t.Fatal("negative bound should error")
	}
	e, err := NewEnumerator(g, nil, []string{"a", "zzz"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Next(); ok {
		t.Fatal("absent keyword should yield no trees")
	}
}

// TestPaperGraphTreesOutnumberCommunities: on the Fig. 4 example the
// tree answers outnumber the five communities — the fragmentation the
// paper's Section I describes.
func TestPaperGraphTreesOutnumberCommunities(t *testing.T) {
	g, _ := core.PaperGraph()
	e, err := NewEnumerator(g, nil, []string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	trees := e.Collect(10000)
	if len(trees) <= 5 {
		t.Fatalf("only %d trees for the paper example; expected more than the 5 communities", len(trees))
	}
	// Ranked order.
	for i := 1; i < len(trees); i++ {
		if trees[i].Cost < trees[i-1].Cost-1e-9 {
			t.Fatalf("tree order violated at %d", i)
		}
	}
}
