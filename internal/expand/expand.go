// Package expand implements the paper's Section III expanding-based
// baseline algorithms: bottom-up (BUall/BUk) and top-down (TDall/TDk).
//
// Both are incremental polynomial time, not polynomial delay: to stay
// duplication-free they keep a pool of all cores output so far and test
// every new candidate against it, and the top-k variants prune away
// everything below rank k, so they cannot resume when the user enlarges
// k (the behaviour Exp-3 measures). They exist as honest comparison
// baselines for the benchmark harness and as independent oracles in
// tests.
package expand

import (
	"sort"

	"commdb/internal/core"
	"commdb/internal/fulltext"
	"commdb/internal/graph"
	"commdb/internal/sssp"
)

// Options configures a baseline run.
type Options struct {
	// Graph is the database graph (usually already projected).
	Graph *graph.Graph
	// Index optionally resolves keywords; nil scans the graph.
	Index *fulltext.Index
	// Keywords is the l-keyword query.
	Keywords []string
	// Rmax is the query radius.
	Rmax float64
	// MaxResults caps enumeration for COMM-all runs (0 = unlimited).
	// The benchmark harness applies the same cap to every algorithm.
	MaxResults int
}

// RunStats is the outcome of one baseline run.
type RunStats struct {
	// Cores are the enumerated cores. For the *all variants the cost is
	// the best candidate cost seen when the core was first output (the
	// expanding algorithms do not compute exact community costs); for
	// the top-k variants costs are exact and sorted ascending.
	Cores []core.CoreCost
	// PeakBytes is the peak logical memory held by the algorithm's own
	// data structures (keyword-node sets, duplication pool, candidate
	// heap), excluding the shared graph.
	PeakBytes int64
	// DijkstraRuns counts bounded shortest-path expansions.
	DijkstraRuns int
}

// memAcct tracks running and peak logical bytes.
type memAcct struct {
	cur, peak int64
}

func (m *memAcct) add(b int64) {
	m.cur += b
	if m.cur > m.peak {
		m.peak = m.cur
	}
}

func (m *memAcct) sub(b int64) { m.cur -= b }

// kwEntry is one member of a node's keyword set u.V_i: a keyword node
// that reaches u within Rmax, with its distance.
type kwEntry struct {
	node graph.NodeID
	dist float64
}

func resolveKeywords(opt Options) ([][]graph.NodeID, error) {
	sets := make([][]graph.NodeID, len(opt.Keywords))
	for i, kw := range opt.Keywords {
		nodes, err := core.KeywordNodes(opt.Graph, opt.Index, kw)
		if err != nil {
			return nil, err
		}
		if len(nodes) == 0 {
			return nil, nil // a missing keyword means no results
		}
		sets[i] = nodes
	}
	return sets, nil
}

// poolEntry sizes for memory accounting.
func poolEntryBytes(l int) int64 { return int64(l)*4 + 32 }

const kwEntryBytes = 12

// sortTopK finalizes a candidate map into the k cheapest cores.
func sortTopK(best map[string]candidate, k int) []core.CoreCost {
	out := make([]core.CoreCost, 0, len(best))
	for _, c := range best {
		out = append(out, core.CoreCost{Core: c.core, Cost: c.cost})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Core.Key() < out[j].Core.Key()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

type candidate struct {
	core core.Core
	cost float64
}

// topKPool keeps the k cheapest distinct cores seen so far, pruning
// everything provably outside the top k (the paper's pruning rule that
// makes BUk/TDk fast but unable to resume with a larger k). It compacts
// whenever it doubles past k, so memory stays O(k).
type topKPool struct {
	k    int
	best map[string]candidate
	mem  *memAcct
	l    int
}

func newTopKPool(k, l int, mem *memAcct) *topKPool {
	return &topKPool{k: k, best: make(map[string]candidate), mem: mem, l: l}
}

// bound returns the current pruning threshold: the k-th smallest cost
// tracked, or +inf while fewer than k cores are known.
func (p *topKPool) bound() (float64, bool) {
	if len(p.best) < p.k {
		return 0, false
	}
	// Exact threshold would need a heap; compaction keeps the map small
	// (< 2k), so scanning is cheap and exact.
	costs := make([]float64, 0, len(p.best))
	for _, c := range p.best {
		costs = append(costs, c.cost)
	}
	sort.Float64s(costs)
	return costs[p.k-1], true
}

func (p *topKPool) offer(c core.Core, cost float64) {
	key := c.Key()
	if have, ok := p.best[key]; ok {
		if cost < have.cost {
			have.cost = cost
			p.best[key] = have
		}
		return
	}
	if bound, ok := p.bound(); ok && cost >= bound {
		return // prunable: k cheaper distinct cores already tracked
	}
	p.best[key] = candidate{core: c.Clone(), cost: cost}
	p.mem.add(poolEntryBytes(p.l))
	if len(p.best) >= 2*p.k {
		p.compact()
	}
}

func (p *topKPool) compact() {
	out := sortTopK(p.best, p.k)
	dropped := len(p.best) - len(out)
	p.best = make(map[string]candidate, p.k)
	for _, cc := range out {
		p.best[cc.Core.Key()] = candidate{core: cc.Core, cost: cc.Cost}
	}
	p.mem.sub(poolEntryBytes(p.l) * int64(dropped))
}

// newNodeSets allocates the per-node keyword sets u.V_i maintained by
// the bottom-up variants.
func newNodeSets(n, l int, mem *memAcct) [][][]kwEntry {
	nodeSets := make([][][]kwEntry, n)
	for u := range nodeSets {
		nodeSets[u] = make([][]kwEntry, l)
	}
	mem.add(int64(n) * int64(l) * 24)
	return nodeSets
}

// expandAllSources runs one bounded reverse Dijkstra per keyword node,
// recording each settle event into nodeSets and invoking onSettle for
// each (center, keyword position, source, distance) event after
// recording it. Shared by the bottom-up variants.
func expandAllSources(opt Options, sets [][]graph.NodeID, nodeSets [][][]kwEntry, mem *memAcct,
	stats *RunStats, onSettle func(u graph.NodeID, i int, entry kwEntry) bool) {

	g := opt.Graph
	n := g.NumNodes()
	l := len(sets)
	ws := sssp.NewWorkspace(g)
	res := sssp.NewResult(n)
	mem.add(ws.Bytes() + res.Bytes())

	for i := 0; i < l; i++ {
		for _, src := range sets[i] {
			ws.RunFromNodes(sssp.Reverse, []graph.NodeID{src}, opt.Rmax, res)
			stats.DijkstraRuns++
			for _, u := range res.Visited() {
				d, _ := res.Dist(u)
				entry := kwEntry{node: src, dist: d}
				nodeSets[u][i] = append(nodeSets[u][i], entry)
				mem.add(kwEntryBytes)
				if !onSettle(u, i, entry) {
					return
				}
			}
		}
	}
}

// BUAll is the bottom-up expanding COMM-all baseline: expand from every
// keyword node within Rmax, maintain u.V_i sets at every reached node,
// and output each new duplication-free core as soon as its last
// component arrives.
func BUAll(opt Options) (*RunStats, error) {
	stats := &RunStats{}
	var mem memAcct
	sets, err := resolveKeywords(opt)
	if err != nil || sets == nil {
		stats.PeakBytes = mem.peak
		return stats, err
	}
	l := len(sets)
	pool := make(map[string]struct{})

	nodeSets := newNodeSets(opt.Graph.NumNodes(), l, &mem)
	expandAllSources(opt, sets, nodeSets, &mem, stats, func(u graph.NodeID, i int, entry kwEntry) bool {
		// Only centers with every set non-empty can host cores.
		for j := 0; j < l; j++ {
			if j != i && len(nodeSets[u][j]) == 0 {
				return true
			}
		}
		// Re-enumerate every candidate core at u and test it against
		// the duplication pool, exactly as the paper's Section III
		// outline does on each expansion step ("output new cores
		// found", with O(|u.V_max|^l) candidates per check). This
		// re-generation is what makes the expanding baselines
		// incremental polynomial rather than polynomial delay.
		return enumerateAll(nodeSets[u], func(c core.Core, cost float64) bool {
			key := c.Key()
			if _, dup := pool[key]; dup {
				return true
			}
			pool[key] = struct{}{}
			mem.add(poolEntryBytes(l))
			stats.Cores = append(stats.Cores, core.CoreCost{Core: c.Clone(), Cost: cost})
			mem.add(poolEntryBytes(l))
			return opt.MaxResults == 0 || len(stats.Cores) < opt.MaxResults
		})
	})
	stats.PeakBytes = mem.peak
	return stats, nil
}

// TDAll is the top-down expanding COMM-all baseline: expand forward
// from every node of the graph up to Rmax, collect the keyword nodes it
// reaches, enumerate the cores it centers, and output the new ones.
// Unlike BUAll it frees each node's sets after processing, which is why
// the paper finds it uses less memory.
func TDAll(opt Options) (*RunStats, error) {
	stats := &RunStats{}
	var mem memAcct
	sets, err := resolveKeywords(opt)
	if err != nil || sets == nil {
		stats.PeakBytes = mem.peak
		return stats, err
	}
	g := opt.Graph
	n := g.NumNodes()
	l := len(sets)

	// Interned term IDs per keyword position for settle-time tests.
	inSet := keywordMembership(sets)

	ws := sssp.NewWorkspace(g)
	res := sssp.NewResult(n)
	mem.add(ws.Bytes() + res.Bytes())
	pool := make(map[string]struct{})

	local := make([][]kwEntry, l)
	for u := 0; u < n; u++ {
		ws.RunFromNodes(sssp.Forward, []graph.NodeID{graph.NodeID(u)}, opt.Rmax, res)
		stats.DijkstraRuns++
		for i := range local {
			local[i] = local[i][:0]
		}
		localBytes := int64(0)
		for _, v := range res.Visited() {
			d, _ := res.Dist(v)
			for i := 0; i < l; i++ {
				if inSet(i, v) {
					local[i] = append(local[i], kwEntry{node: v, dist: d})
					localBytes += kwEntryBytes
				}
			}
		}
		mem.add(localBytes)
		complete := true
		for i := 0; i < l; i++ {
			if len(local[i]) == 0 {
				complete = false
				break
			}
		}
		if complete {
			if !enumerateAll(local, func(c core.Core, cost float64) bool {
				key := c.Key()
				if _, dup := pool[key]; dup {
					return true
				}
				pool[key] = struct{}{}
				mem.add(poolEntryBytes(l))
				stats.Cores = append(stats.Cores, core.CoreCost{Core: c.Clone(), Cost: cost})
				mem.add(poolEntryBytes(l))
				return opt.MaxResults == 0 || len(stats.Cores) < opt.MaxResults
			}) {
				mem.sub(localBytes)
				break
			}
		}
		mem.sub(localBytes) // top-down frees per-center state
	}
	stats.PeakBytes = mem.peak
	return stats, nil
}

// enumerateAll walks every combination of the sets.
func enumerateAll(sets [][]kwEntry, emit func(core.Core, float64) bool) bool {
	l := len(sets)
	combo := make(core.Core, l)
	var walk func(pos int, cost float64) bool
	walk = func(pos int, cost float64) bool {
		if pos == l {
			return emit(combo, cost)
		}
		for _, e := range sets[pos] {
			combo[pos] = e.node
			if !walk(pos+1, cost+e.dist) {
				return false
			}
		}
		return true
	}
	return walk(0, 0)
}

// keywordMembership returns a membership test for "node v is in V_i".
func keywordMembership(sets [][]graph.NodeID) func(int, graph.NodeID) bool {
	member := make([]map[graph.NodeID]bool, len(sets))
	for i, s := range sets {
		member[i] = make(map[graph.NodeID]bool, len(s))
		for _, v := range s {
			member[i][v] = true
		}
	}
	return func(i int, v graph.NodeID) bool { return member[i][v] }
}

// BUTopK is the bottom-up expanding COMM-k baseline: full bottom-up
// expansion with the pruning pool, then the k cheapest distinct cores
// with exact costs. Enlarging k requires a complete re-run.
func BUTopK(opt Options, k int) (*RunStats, error) {
	stats := &RunStats{}
	var mem memAcct
	sets, err := resolveKeywords(opt)
	if err != nil || sets == nil {
		stats.PeakBytes = mem.peak
		return stats, err
	}
	l := len(sets)
	pool := newTopKPool(k, l, &mem)

	nodeSets := newNodeSets(opt.Graph.NumNodes(), l, &mem)
	expandAllSources(opt, sets, nodeSets, &mem, stats, func(u graph.NodeID, i int, entry kwEntry) bool {
		for j := 0; j < l; j++ {
			if j != i && len(nodeSets[u][j]) == 0 {
				return true
			}
		}
		// Same literal per-step re-enumeration as BUAll.
		enumerateAll(nodeSets[u], func(c core.Core, cost float64) bool {
			pool.offer(c, cost)
			return true
		})
		return true
	})
	stats.Cores = sortTopK(pool.best, k)
	stats.PeakBytes = mem.peak
	return stats, nil
}

// TDTopK is the top-down expanding COMM-k baseline.
func TDTopK(opt Options, k int) (*RunStats, error) {
	stats := &RunStats{}
	var mem memAcct
	sets, err := resolveKeywords(opt)
	if err != nil || sets == nil {
		stats.PeakBytes = mem.peak
		return stats, err
	}
	g := opt.Graph
	n := g.NumNodes()
	l := len(sets)
	inSet := keywordMembership(sets)

	ws := sssp.NewWorkspace(g)
	res := sssp.NewResult(n)
	mem.add(ws.Bytes() + res.Bytes())
	pool := newTopKPool(k, l, &mem)

	local := make([][]kwEntry, l)
	for u := 0; u < n; u++ {
		ws.RunFromNodes(sssp.Forward, []graph.NodeID{graph.NodeID(u)}, opt.Rmax, res)
		stats.DijkstraRuns++
		for i := range local {
			local[i] = local[i][:0]
		}
		localBytes := int64(0)
		for _, v := range res.Visited() {
			d, _ := res.Dist(v)
			for i := 0; i < l; i++ {
				if inSet(i, v) {
					local[i] = append(local[i], kwEntry{node: v, dist: d})
					localBytes += kwEntryBytes
				}
			}
		}
		mem.add(localBytes)
		complete := true
		for i := 0; i < l; i++ {
			if len(local[i]) == 0 {
				complete = false
				break
			}
		}
		if complete {
			enumerateAll(local, func(c core.Core, cost float64) bool {
				pool.offer(c, cost)
				return true
			})
		}
		mem.sub(localBytes)
	}
	stats.Cores = sortTopK(pool.best, k)
	stats.PeakBytes = mem.peak
	return stats, nil
}
