package expand

import (
	"fmt"
	"math/rand"
	"testing"

	"commdb/internal/core"
	"commdb/internal/graph"
)

func randomKeywordGraph(t *testing.T, rng *rand.Rand, n, m, nkw int) (*graph.Graph, []string) {
	t.Helper()
	kws := make([]string, nkw)
	for i := range kws {
		kws[i] = fmt.Sprintf("k%d", i)
	}
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		var terms []string
		for _, kw := range kws {
			if rng.Intn(4) == 0 {
				terms = append(terms, kw)
			}
		}
		b.AddNode(fmt.Sprintf("n%d", i), terms...)
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), float64(rng.Intn(5)+1))
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g, kws
}

func naiveCores(t *testing.T, g *graph.Graph, kws []string, rmax float64) []core.CoreCost {
	t.Helper()
	e, err := core.NewEngine(g, nil, kws, rmax)
	if err != nil {
		t.Fatal(err)
	}
	return core.EnumerateNaive(e)
}

func keysOf(t *testing.T, ccs []core.CoreCost) map[string]float64 {
	t.Helper()
	m := make(map[string]float64, len(ccs))
	for _, cc := range ccs {
		k := cc.Core.Key()
		if _, dup := m[k]; dup {
			t.Fatalf("duplicate core %s", k)
		}
		m[k] = cc.Cost
	}
	return m
}

// TestBUAllMatchesNaive: bottom-up COMM-all finds exactly the naive
// core set, duplication-free.
func TestBUAllMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(20) + 4
		g, kws := randomKeywordGraph(t, rng, n, n*3, rng.Intn(2)+2)
		rmax := float64(rng.Intn(8) + 2)
		want := keysOf(t, naiveCores(t, g, kws, rmax))
		got, err := BUAll(Options{Graph: g, Keywords: kws, Rmax: rmax})
		if err != nil {
			t.Fatal(err)
		}
		gotSet := keysOf(t, got.Cores)
		if len(gotSet) != len(want) {
			t.Fatalf("trial %d: BUall %d cores, naive %d", trial, len(gotSet), len(want))
		}
		for k := range want {
			if _, ok := gotSet[k]; !ok {
				t.Fatalf("trial %d: missing core %s", trial, k)
			}
		}
	}
}

// TestTDAllMatchesNaive: top-down COMM-all, same property.
func TestTDAllMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(20) + 4
		g, kws := randomKeywordGraph(t, rng, n, n*3, rng.Intn(2)+2)
		rmax := float64(rng.Intn(8) + 2)
		want := keysOf(t, naiveCores(t, g, kws, rmax))
		got, err := TDAll(Options{Graph: g, Keywords: kws, Rmax: rmax})
		if err != nil {
			t.Fatal(err)
		}
		gotSet := keysOf(t, got.Cores)
		if len(gotSet) != len(want) {
			t.Fatalf("trial %d: TDall %d cores, naive %d", trial, len(gotSet), len(want))
		}
		for k := range want {
			if _, ok := gotSet[k]; !ok {
				t.Fatalf("trial %d: missing core %s", trial, k)
			}
		}
	}
}

// TestTopKMatchNaive: both top-k baselines return the k cheapest cores
// with exact costs, matching the sorted naive costs.
func TestTopKMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(20) + 4
		g, kws := randomKeywordGraph(t, rng, n, n*3, 2)
		rmax := float64(rng.Intn(8) + 2)
		naive := naiveCores(t, g, kws, rmax)
		if len(naive) == 0 {
			continue
		}
		costs := make([]float64, len(naive))
		for i, cc := range naive {
			costs[i] = cc.Cost
		}
		sortFloats(costs)
		k := rng.Intn(len(naive)) + 1

		for name, fn := range map[string]func(Options, int) (*RunStats, error){
			"BUk": BUTopK, "TDk": TDTopK,
		} {
			got, err := fn(Options{Graph: g, Keywords: kws, Rmax: rmax}, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Cores) != k {
				t.Fatalf("trial %d %s: returned %d cores, want %d", trial, name, len(got.Cores), k)
			}
			keysOf(t, got.Cores) // duplication-free
			for i := 0; i < k; i++ {
				if d := got.Cores[i].Cost - costs[i]; d > 1e-9 || d < -1e-9 {
					t.Fatalf("trial %d %s: rank %d cost %v, want %v", trial, name, i+1, got.Cores[i].Cost, costs[i])
				}
			}
		}
	}
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestPaperExampleBaselines: all four baselines agree with Table I on
// the paper graph.
func TestPaperExampleBaselines(t *testing.T) {
	g, _ := core.PaperGraph()
	opt := Options{Graph: g, Keywords: []string{"a", "b", "c"}, Rmax: 8}

	bu, err := BUAll(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(bu.Cores) != 5 {
		t.Fatalf("BUall found %d cores, want 5", len(bu.Cores))
	}
	td, err := TDAll(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Cores) != 5 {
		t.Fatalf("TDall found %d cores, want 5", len(td.Cores))
	}
	buk, err := BUTopK(opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantCosts := []float64{7, 10, 11}
	for i, w := range wantCosts {
		if buk.Cores[i].Cost != w {
			t.Fatalf("BUk rank %d cost %v, want %v", i+1, buk.Cores[i].Cost, w)
		}
	}
	tdk, err := TDTopK(opt, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantAll := []float64{7, 10, 11, 14, 15}
	for i, w := range wantAll {
		if tdk.Cores[i].Cost != w {
			t.Fatalf("TDk rank %d cost %v, want %v", i+1, tdk.Cores[i].Cost, w)
		}
	}
}

// TestMissingKeywordBaselines: a keyword with no nodes yields empty
// results from every baseline.
func TestMissingKeywordBaselines(t *testing.T) {
	g, _ := core.PaperGraph()
	opt := Options{Graph: g, Keywords: []string{"a", "zzz"}, Rmax: 8}
	for name, run := range map[string]func() (*RunStats, error){
		"BUall": func() (*RunStats, error) { return BUAll(opt) },
		"TDall": func() (*RunStats, error) { return TDAll(opt) },
		"BUk":   func() (*RunStats, error) { return BUTopK(opt, 5) },
		"TDk":   func() (*RunStats, error) { return TDTopK(opt, 5) },
	} {
		got, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Cores) != 0 {
			t.Fatalf("%s returned %d cores for an absent keyword", name, len(got.Cores))
		}
	}
}

// TestBadKeywordErrors: malformed keywords surface as errors.
func TestBadKeywordErrors(t *testing.T) {
	g, _ := core.PaperGraph()
	opt := Options{Graph: g, Keywords: []string{"two words"}, Rmax: 8}
	if _, err := BUAll(opt); err == nil {
		t.Fatal("BUall should reject multi-term keyword")
	}
	if _, err := TDTopK(opt, 5); err == nil {
		t.Fatal("TDk should reject multi-term keyword")
	}
}

// TestMaxResultsCap: the COMM-all cap truncates output.
func TestMaxResultsCap(t *testing.T) {
	g, _ := core.PaperGraph()
	opt := Options{Graph: g, Keywords: []string{"a", "b", "c"}, Rmax: 8, MaxResults: 2}
	bu, err := BUAll(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(bu.Cores) != 2 {
		t.Fatalf("BUall cap: %d cores, want 2", len(bu.Cores))
	}
	td, err := TDAll(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Cores) != 2 {
		t.Fatalf("TDall cap: %d cores, want 2", len(td.Cores))
	}
}

// TestMemoryAccountingShape: bottom-up retains every node's keyword
// sets while top-down frees them per center, so BUall's peak memory
// must exceed TDall's on a graph with broad expansions — the ordering
// Fig. 9(b) reports.
func TestMemoryAccountingShape(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	g, kws := randomKeywordGraph(t, rng, 60, 300, 2)
	opt := Options{Graph: g, Keywords: kws, Rmax: 10}
	bu, err := BUAll(opt)
	if err != nil {
		t.Fatal(err)
	}
	td, err := TDAll(opt)
	if err != nil {
		t.Fatal(err)
	}
	if bu.PeakBytes <= 0 || td.PeakBytes <= 0 {
		t.Fatal("peak bytes must be positive")
	}
	if bu.PeakBytes <= td.PeakBytes {
		t.Fatalf("BUall peak %d should exceed TDall peak %d", bu.PeakBytes, td.PeakBytes)
	}
	if bu.DijkstraRuns == 0 || td.DijkstraRuns == 0 {
		t.Fatal("Dijkstra runs should be counted")
	}
	// Top-down expands from every node; bottom-up only from keyword
	// nodes.
	if td.DijkstraRuns <= bu.DijkstraRuns {
		t.Fatalf("TDall runs %d should exceed BUall runs %d", td.DijkstraRuns, bu.DijkstraRuns)
	}
}

// TestTopKPoolPruning: the pool never holds more than 2k entries.
func TestTopKPoolPruning(t *testing.T) {
	var mem memAcct
	p := newTopKPool(5, 2, &mem)
	rng := rand.New(rand.NewSource(433))
	for i := 0; i < 1000; i++ {
		c := core.Core{graph.NodeID(i), graph.NodeID(i)}
		p.offer(c, rng.Float64()*100)
		if len(p.best) > 10 {
			t.Fatalf("pool grew to %d entries, cap is 2k=10", len(p.best))
		}
	}
	out := sortTopK(p.best, 5)
	if len(out) != 5 {
		t.Fatalf("final top-k has %d entries", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Cost < out[i-1].Cost {
			t.Fatal("final top-k not sorted")
		}
	}
}

// TestTopKPoolImprovesTrackedCore: offering a cheaper cost for a
// tracked core updates it.
func TestTopKPoolImprovesTrackedCore(t *testing.T) {
	var mem memAcct
	p := newTopKPool(3, 1, &mem)
	c := core.Core{7}
	p.offer(c, 50)
	p.offer(c, 10)
	out := sortTopK(p.best, 3)
	if len(out) != 1 || out[0].Cost != 10 {
		t.Fatalf("tracked core cost = %v, want 10", out)
	}
}
