// Package fault provides deterministic, seedable fault injection for
// robustness tests: short reads, bit-flips, slow I/O, injected errors
// and load-time panics, armed per named injection point.
//
// Production code threads an *Injector (usually nil) into its I/O
// paths; a nil injector is a no-op on every call, so the production
// path pays one nil check and nothing else. Tests arm points with
// plans and drive the code under test through real failures:
//
//	inj := fault.New(42)
//	inj.Arm(fault.PointIndexRead, fault.Plan{Mode: fault.BitFlip})
//	r := inj.Reader(fault.PointIndexRead, file) // corrupts one bit
//
// All decisions are deterministic for a given seed and call sequence,
// so a failing chaos run reproduces from its seed.
package fault

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// Point names an injection site. Sites are just labels: packages
// declare the points they honor and tests arm them.
type Point string

// Injection points honored by the snapshot/index loading stack.
const (
	// PointLoad fires inside the snapshot loader before any file is
	// opened — the site for load-time panics and transient errors.
	PointLoad Point = "load"
	// PointGraphRead wraps the graph file reader.
	PointGraphRead Point = "graph-read"
	// PointIndexRead wraps the index file reader.
	PointIndexRead Point = "index-read"
)

// Mode selects what an armed point does when it fires.
type Mode int

const (
	// None never fires.
	None Mode = iota
	// ShortRead makes a wrapped reader report EOF before the stream's
	// real end (sticky: once fired, the reader stays at EOF).
	ShortRead
	// BitFlip flips one bit of the data returned by a wrapped reader.
	BitFlip
	// SlowIO sleeps Plan.Delay before the operation proceeds normally.
	SlowIO
	// Panic panics with a recognizable message.
	Panic
	// Error returns ErrInjected (a transient-looking failure).
	Error
)

func (m Mode) String() string {
	switch m {
	case ShortRead:
		return "short-read"
	case BitFlip:
		return "bit-flip"
	case SlowIO:
		return "slow-io"
	case Panic:
		return "panic"
	case Error:
		return "error"
	default:
		return "none"
	}
}

// ErrInjected is the error returned by Error-mode injections. It wraps
// nothing, so callers classifying it see an opaque I/O-like failure.
var ErrInjected = errors.New("fault: injected error")

// Plan describes when and how an armed point fires.
type Plan struct {
	// Mode is the fault to inject.
	Mode Mode
	// SkipOps lets that many eligible operations pass before the first
	// fire, so a fault can land mid-stream rather than at byte zero.
	SkipOps int
	// Fires bounds how many operations fire; 0 means one. A point whose
	// fires are spent passes operations through untouched — the shape of
	// a transient failure that heals.
	Fires int
	// Prob, when in (0, 1], gates each eligible operation on a draw from
	// the injector's seeded RNG instead of firing unconditionally.
	Prob float64
	// Delay is the SlowIO sleep.
	Delay time.Duration
}

type planState struct {
	Plan
	ops   int // eligible operations seen
	fired int // times actually fired
}

// Injector holds the armed points. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	plans map[Point]*planState
}

// New returns an injector whose probabilistic decisions derive from
// seed. A nil *Injector is valid and injects nothing.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), plans: map[Point]*planState{}}
}

// Arm installs (or replaces) the plan at a point, resetting its
// operation and fire counts.
func (in *Injector) Arm(p Point, plan Plan) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[p] = &planState{Plan: plan}
}

// Disarm removes the plan at a point.
func (in *Injector) Disarm(p Point) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.plans, p)
}

// Fired reports how many times the point has fired since it was armed.
func (in *Injector) Fired(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.plans[p]; st != nil {
		return st.fired
	}
	return 0
}

// decide consumes one eligible operation at p and reports whether it
// fires, with the plan's mode and parameters.
func (in *Injector) decide(p Point) (Plan, bool) {
	if in == nil {
		return Plan{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.plans[p]
	if st == nil || st.Mode == None {
		return Plan{}, false
	}
	st.ops++
	if st.ops <= st.SkipOps {
		return Plan{}, false
	}
	maxFires := st.Fires
	if maxFires <= 0 {
		maxFires = 1
	}
	if st.fired >= maxFires {
		return Plan{}, false
	}
	if st.Prob > 0 && in.rng.Float64() >= st.Prob {
		return Plan{}, false
	}
	st.fired++
	return st.Plan, true
}

// intn draws from the seeded RNG.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// Op is the hook for non-reader injection sites (e.g. a load-time
// panic inside a snapshot swap). It may sleep, panic, or return
// ErrInjected; ShortRead and BitFlip are meaningless here and act like
// Error. A nil injector returns nil.
func (in *Injector) Op(p Point) error {
	plan, fire := in.decide(p)
	if !fire {
		return nil
	}
	switch plan.Mode {
	case SlowIO:
		time.Sleep(plan.Delay)
		return nil
	case Panic:
		panic(fmt.Sprintf("fault: injected panic at %s", p))
	default:
		return fmt.Errorf("%w at %s", ErrInjected, p)
	}
}

// Reader wraps r with injection at point p. Each Read is one eligible
// operation. A nil injector returns r unchanged.
func (in *Injector) Reader(p Point, r io.Reader) io.Reader {
	if in == nil {
		return r
	}
	return &faultReader{in: in, p: p, r: r}
}

type faultReader struct {
	in  *Injector
	p   Point
	r   io.Reader
	eof bool // sticky after a ShortRead fire
}

func (fr *faultReader) Read(b []byte) (int, error) {
	if fr.eof {
		return 0, io.EOF
	}
	plan, fire := fr.in.decide(fr.p)
	if !fire {
		return fr.r.Read(b)
	}
	switch plan.Mode {
	case ShortRead:
		fr.eof = true
		return 0, io.EOF
	case BitFlip:
		n, err := fr.r.Read(b)
		if n > 0 {
			i := fr.in.intn(n)
			b[i] ^= 1 << uint(fr.in.intn(8))
		}
		return n, err
	case SlowIO:
		time.Sleep(plan.Delay)
		return fr.r.Read(b)
	case Panic:
		panic(fmt.Sprintf("fault: injected panic at %s", fr.p))
	default:
		return 0, fmt.Errorf("%w at %s", ErrInjected, fr.p)
	}
}
