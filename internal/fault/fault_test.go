package fault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Op(PointLoad); err != nil {
		t.Fatal(err)
	}
	src := strings.NewReader("hello")
	if r := in.Reader(PointIndexRead, src); r != src {
		t.Fatal("nil injector should return the reader unchanged")
	}
	in.Arm(PointLoad, Plan{Mode: Panic}) // must not panic or crash
	in.Disarm(PointLoad)
	if in.Fired(PointLoad) != 0 {
		t.Fatal("nil injector fired")
	}
}

func TestShortRead(t *testing.T) {
	in := New(1)
	in.Arm(PointIndexRead, Plan{Mode: ShortRead, SkipOps: 1})
	r := in.Reader(PointIndexRead, strings.NewReader(strings.Repeat("x", 1<<16)))
	buf := make([]byte, 8)
	if _, err := r.Read(buf); err != nil {
		t.Fatalf("skipped op should pass: %v", err)
	}
	if _, err := r.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	// Sticky: further reads stay at EOF even though fires are spent.
	if _, err := r.Read(buf); err != io.EOF {
		t.Fatalf("short read should be sticky, got %v", err)
	}
	if in.Fired(PointIndexRead) != 1 {
		t.Fatalf("fired = %d, want 1", in.Fired(PointIndexRead))
	}
}

func TestBitFlipChangesExactlyOneBit(t *testing.T) {
	orig := bytes.Repeat([]byte{0xAA}, 64)
	in := New(7)
	in.Arm(PointIndexRead, Plan{Mode: BitFlip})
	r := in.Reader(PointIndexRead, bytes.NewReader(orig))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range got {
		x := got[i] ^ orig[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("flipped %d bits, want 1", diffBits)
	}
}

func TestErrorAndFireBudget(t *testing.T) {
	in := New(3)
	in.Arm(PointLoad, Plan{Mode: Error, Fires: 2})
	for i := 0; i < 2; i++ {
		if err := in.Op(PointLoad); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: want ErrInjected, got %v", i, err)
		}
	}
	// Transient failure heals: fires are spent, operations pass.
	if err := in.Op(PointLoad); err != nil {
		t.Fatalf("after fires spent: %v", err)
	}
	if in.Fired(PointLoad) != 2 {
		t.Fatalf("fired = %d, want 2", in.Fired(PointLoad))
	}
}

func TestPanicMode(t *testing.T) {
	in := New(5)
	in.Arm(PointLoad, Plan{Mode: Panic})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(p.(string), "injected panic") {
			t.Fatalf("unexpected panic payload %v", p)
		}
	}()
	_ = in.Op(PointLoad)
}

func TestSlowIO(t *testing.T) {
	in := New(9)
	in.Arm(PointLoad, Plan{Mode: SlowIO, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Op(PointLoad); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("slow op took only %v", d)
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	run := func(seed int64) []byte {
		in := New(seed)
		in.Arm(PointIndexRead, Plan{Mode: BitFlip, Prob: 0.5, Fires: 4})
		r := in.Reader(PointIndexRead, bytes.NewReader(bytes.Repeat([]byte{0x55}, 256)))
		out := make([]byte, 0, 256)
		buf := make([]byte, 16)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				return out
			}
		}
	}
	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed should corrupt identically")
	}
	c := run(43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestRearmResetsCounts(t *testing.T) {
	in := New(11)
	in.Arm(PointLoad, Plan{Mode: Error})
	if err := in.Op(PointLoad); !errors.Is(err, ErrInjected) {
		t.Fatal("should fire")
	}
	in.Arm(PointLoad, Plan{Mode: Error})
	if err := in.Op(PointLoad); !errors.Is(err, ErrInjected) {
		t.Fatal("re-armed plan should fire again")
	}
	in.Disarm(PointLoad)
	if err := in.Op(PointLoad); err != nil {
		t.Fatal("disarmed point should pass")
	}
}
