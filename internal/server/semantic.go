package server

// The semantic cache serves a query from a cached answer of the same
// keyword group at a different radius or k, without an engine
// execution — but only when the served records are provably
// byte-identical to what a live run would produce. Two containment
// properties make that possible:
//
// Same Rmax, larger cached k: the enumeration is deterministic and
// emits in non-decreasing cost order, so the live k'-answer is exactly
// the first k' records of the cached one. Serving a prefix is always
// sound; serving fewer than k' records requires the cached answer to
// be exhausted (it holds every community of the query).
//
// Smaller requested Rmax' < cached Rmax: each cached record carries
// its reuse radii (RecordMeta). A record with ReuseRadius ≤ Rmax' is
// byte-identical at Rmax' — same centers, members, edges and cost. A
// record with CoreRadius > Rmax' does not exist at Rmax' at all. A
// record between the two shrinks — its content and cost change — so
// the downfilter aborts and the query runs live. Communities beyond
// the cached list (when the answer is not exhausted) can only have
// grown costs at the smaller radius: shrinking the radius removes
// centers, and a community's cost is the minimum over its centers, so
// cost is non-increasing in radius — never below the cached tail.
//
// Cost ties need care: the enumerator's emission order among equal-cost
// communities depends on its internal heap layout, which is not stable
// across radii. The downfilter therefore refuses to serve any answer
// where a cost tie could reorder the boundary: served records must
// have strictly increasing costs, the first unserved kept record (if
// any) must cost strictly more than the last served one, and — unless
// the cached answer is exhausted — the last served record must cost
// strictly less than the cached tail. Within one radius none of this
// applies: a prefix of a deterministic enumeration is stable, ties
// included.

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// semanticCache is the Rmax-monotone result cache: an LRU of exact
// entries plus a per-(group, epoch) index for downfilter probes.
type semanticCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recent
	items      map[string]*list.Element
	// groups indexes the same entries by radius-independent identity;
	// a downfilter probe walks one group's entries.
	groups map[string]map[*list.Element]struct{}

	hits, semHits, misses atomic.Int64
}

type semEntry struct {
	key  string // exact identity, CacheKey.String()
	gkey string // group identity, CacheKey.groupKey()
	k    CacheKey
	val  *CachedAnswer
}

func newSemanticCache(maxEntries int, maxBytes int64) *semanticCache {
	return &semanticCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		groups:     make(map[string]map[*list.Element]struct{}),
	}
}

func (c *semanticCache) Get(key CacheKey) (*CachedAnswer, bool, bool) {
	c.mu.Lock()
	// Exact probe first: a same-identity entry serves as-is.
	if el, ok := c.items[key.String()]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*semEntry).val
		c.mu.Unlock()
		c.hits.Add(1)
		return val, false, true
	}
	// Group probe: walk same-family entries, preferring the smallest
	// covering radius (fewest records to classify, least tie exposure).
	var best *list.Element
	for el := range c.groups[key.groupKey()] {
		e := el.Value.(*semEntry)
		if e.k.Rmax < key.Rmax {
			continue
		}
		if best == nil || e.k.Rmax < best.Value.(*semEntry).k.Rmax {
			best = el
		}
	}
	var served *CachedAnswer
	if best != nil {
		if v, ok := best.Value.(*semEntry).val.filterTo(key.Rmax, key.K); ok {
			served = v
			c.ll.MoveToFront(best)
		}
	}
	c.mu.Unlock()
	if served == nil {
		c.misses.Add(1)
		return nil, false, false
	}
	c.hits.Add(1)
	c.semHits.Add(1)
	return served, true, true
}

func (c *semanticCache) Put(key CacheKey, val *CachedAnswer) {
	if c.maxEntries < 0 || val == nil || !val.Complete {
		return
	}
	if c.maxBytes > 0 && val.Bytes > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	skey := key.String()
	if el, ok := c.items[skey]; ok {
		e := el.Value.(*semEntry)
		c.bytes += val.Bytes - e.val.Bytes
		e.val = val
		c.ll.MoveToFront(el)
	} else {
		e := &semEntry{key: skey, gkey: key.groupKey(), k: key, val: val}
		el := c.ll.PushFront(e)
		c.items[skey] = el
		g := c.groups[e.gkey]
		if g == nil {
			g = make(map[*list.Element]struct{})
			c.groups[e.gkey] = g
		}
		g[el] = struct{}{}
		c.bytes += val.Bytes
	}
	for c.ll.Len() > 0 &&
		((c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		c.remove(c.ll.Back())
	}
}

// remove unlinks one entry from the list, the exact map and its group.
// Callers hold the mutex.
func (c *semanticCache) remove(el *list.Element) {
	e := el.Value.(*semEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	if g := c.groups[e.gkey]; g != nil {
		delete(g, el)
		if len(g) == 0 {
			delete(c.groups, e.gkey)
		}
	}
	c.bytes -= e.val.Bytes
}

func (c *semanticCache) InvalidateEpochs(current int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*semEntry).k.Epoch != current {
			c.remove(el)
		}
	}
}

func (c *semanticCache) Stats() CacheStats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:         c.hits.Load(),
		SemanticHits: c.semHits.Load(),
		Misses:       c.misses.Load(),
		Entries:      entries,
		Bytes:        bytes,
	}
}

// filterTo derives the answer for (rmax, k) from a cached answer at
// v.Rmax ≥ rmax, or reports it cannot be done soundly. The returned
// answer is byte-identical to a live execution's; a false return means
// the caller must run the query.
func (v *CachedAnswer) filterTo(rmax float64, k int) (*CachedAnswer, bool) {
	if !v.Complete || rmax > v.Rmax || k <= 0 {
		return nil, false
	}
	if rmax == v.Rmax {
		// Same radius: the live k-answer is a prefix of the cached one.
		// Serving fewer than k records requires exhaustion.
		if len(v.Records) < k && !v.Exhausted {
			return nil, false
		}
		m := min(k, len(v.Records))
		return v.slice(v.Records[:m], v.metaPrefix(m), rmax, k, v.Exhausted && m == len(v.Records)), true
	}
	if v.Meta == nil || len(v.Meta) != len(v.Records) {
		return nil, false
	}
	// Smaller radius: classify every cached record. kept collects the
	// indices of records that are byte-identical at rmax; any record
	// that would merely shrink aborts the downfilter.
	kept := make([]int, 0, len(v.Records))
	for i := range v.Records {
		switch m := v.Meta[i]; {
		case m.ReuseRadius <= rmax:
			kept = append(kept, i)
		case m.CoreRadius > rmax:
			// The core admits no community at rmax: record vanishes.
		default:
			return nil, false
		}
	}
	if len(kept) < k && !v.Exhausted {
		return nil, false
	}
	m := min(k, len(kept))
	// Tie guards (see the file comment): served costs strictly
	// increase, the first unserved kept record is strictly costlier,
	// and the served tail is strictly under the cached tail unless the
	// answer is exhausted.
	for j := 1; j < m; j++ {
		if !(v.Records[kept[j]].Cost > v.Records[kept[j-1]].Cost) {
			return nil, false
		}
	}
	if m < len(kept) && !(v.Records[kept[m]].Cost > v.Records[kept[m-1]].Cost) {
		return nil, false
	}
	if !v.Exhausted && m > 0 {
		if last := v.Records[len(v.Records)-1].Cost; !(v.Records[kept[m-1]].Cost < last) {
			return nil, false
		}
	}
	if !v.Exhausted && m == 0 {
		// Nothing kept but the query space below the cached tail is
		// unknown; a live run could still find communities.
		return nil, false
	}
	records := make([]CommunityRecord, m)
	meta := make([]RecordMeta, m)
	for j := 0; j < m; j++ {
		records[j] = v.Records[kept[j]]
		records[j].Rank = j + 1
		meta[j] = v.Meta[kept[j]]
	}
	return v.slice(records, meta, rmax, k, v.Exhausted && m == len(kept)), true
}

// slice packages a derived answer. Records must already be renumbered.
func (v *CachedAnswer) slice(records []CommunityRecord, meta []RecordMeta, rmax float64, k int, exhausted bool) *CachedAnswer {
	return &CachedAnswer{
		Records:   records,
		Complete:  true,
		Exhausted: exhausted,
		Rmax:      rmax,
		K:         k,
		Meta:      meta,
		Bytes:     sizeOf(records),
		Trace:     v.Trace,
	}
}

// metaPrefix returns the first m meta entries, or nil when the answer
// carries none.
func (v *CachedAnswer) metaPrefix(m int) []RecordMeta {
	if v.Meta == nil {
		return nil
	}
	return v.Meta[:m]
}
