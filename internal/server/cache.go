package server

// The result cache is pluggable: every implementation answers the same
// Cache interface (Get/Put/Stats plus epoch invalidation), so the
// server's serving path, stats block, metrics families and memory
// ledger are implementation-agnostic. Three implementations ship:
//
//   - "exact": the classic fingerprint-keyed LRU — a hit requires the
//     exact (keywords, cost, compact, Rmax, k, epoch) identity.
//   - "semantic": the Rmax-monotone cache — on an exact miss it probes
//     answers of the same keyword group at a larger radius (or larger
//     k) and downfilters them, serving byte-identical records without
//     an engine execution. See semantic.go for the soundness rules.
//   - "layered": a small exact LRU in front of the semantic tier, so
//     repeated identical queries skip even the downfilter walk.
//
// commserve selects one with -cache=, embedders via Config.CacheMode
// or by injecting Config.Cache.

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"commdb"
	"commdb/internal/obs"
)

// CacheKey identifies one cacheable top-k answer. Group collects the
// radius-independent identity — normalized keywords, cost aggregate,
// record shape (compact) — while Rmax, K and Epoch vary per request.
// The split is what enables semantic serving: answers sharing a Group
// and Epoch describe the same community family at different radii, and
// the Rmax-monotone containment property relates them.
type CacheKey struct {
	// Group is the radius-independent query identity (injective over
	// normalized keyword lists, like Query.Fingerprint).
	Group string
	// Epoch is the snapshot epoch the answer was produced under. Epoch
	// is part of every key, so a stale epoch's answers can never serve
	// a request leased to a newer one.
	Epoch int64
	// Rmax is the query radius the answer was produced at.
	Rmax float64
	// K is the number of communities the producing request asked for.
	K int
}

// newCacheKey derives the cache key for one top-k request.
func newCacheKey(q commdb.Query, k int, compact bool, epoch int64) CacheKey {
	n := q.Normalized()
	var b strings.Builder
	b.WriteString("g1|cost=")
	b.WriteString(strconv.Itoa(int(n.Cost)))
	for _, kw := range n.Keywords {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(len(kw)))
		b.WriteByte(':')
		b.WriteString(kw)
	}
	if compact {
		b.WriteString("|compact")
	}
	return CacheKey{Group: b.String(), Epoch: epoch, Rmax: n.Rmax, K: k}
}

// groupKey is the map key for same-family answers: Group plus Epoch.
func (k CacheKey) groupKey() string {
	return k.Group + "|e" + strconv.FormatInt(k.Epoch, 10)
}

// String renders the exact-entry identity; it doubles as the
// singleflight key so concurrent identical misses coalesce.
func (k CacheKey) String() string {
	return k.groupKey() + "|rmax=" + strconv.FormatFloat(k.Rmax, 'g', -1, 64) +
		"|k=" + strconv.Itoa(k.K)
}

// RecordMeta carries the reuse radii of one cached record, copied from
// the materialized community. They drive the semantic tier's keep/drop
// classification when downfiltering to a smaller Rmax.
type RecordMeta struct {
	// ReuseRadius: the record is byte-identical at any radius in
	// [ReuseRadius, producing Rmax].
	ReuseRadius float64
	// CoreRadius: below it the record's core admits no community at
	// all. Radii in (CoreRadius, ReuseRadius) shrink the community —
	// not servable from cache.
	CoreRadius float64
}

// CachedAnswer is one cached top-k answer: wire-ready records from a
// cleanly completed enumeration. Partial results (a tripped budget, a
// canceled context) are never cached — their shape depends on the
// request's limits, which are deliberately outside the cache key.
type CachedAnswer struct {
	Records  []CommunityRecord
	Complete bool   // the enumeration was not cut short by a limit
	Reason   string // stop reason when !Complete (never set on cached values)
	// Exhausted marks that the enumeration ended before producing K
	// records: Records holds every community of the query, so the
	// answer can serve any k and downfilters need no boundary guard.
	Exhausted bool
	// Rmax and K echo the producing key, for semantic serving.
	Rmax float64
	K    int
	// Meta aligns with Records; nil answers cannot be downfiltered.
	Meta  []RecordMeta
	Bytes int64
	// Trace is the producing execution's summary. It is returned only
	// to the flight's direct waiters when they asked for a trace; cache
	// hits never surface it (they reflect no execution).
	Trace *obs.Summary
}

// CacheStats is the uniform observability contract every Cache
// implementation answers: the /statsz cache block, the
// commdb_cache_* metric families and the /debug/memz result_cache
// component all read it.
type CacheStats struct {
	// Hits counts every served answer, semantic ones included.
	Hits int64 `json:"hits"`
	// SemanticHits counts the subset of Hits served by downfiltering a
	// same-group answer rather than by exact identity.
	SemanticHits int64 `json:"semantic_hits"`
	Misses       int64 `json:"misses"`
	Entries      int   `json:"entries"`
	Bytes        int64 `json:"bytes"`
}

// Cache is the pluggable result cache. Implementations must be safe
// for concurrent use and must only ever return answers byte-identical
// to what an uncached execution of the keyed query would produce.
type Cache interface {
	// Get returns an answer able to serve key. semantic reports the
	// answer was derived from a same-group entry at a different radius
	// or k (the records are still byte-identical to a live run).
	Get(key CacheKey) (val *CachedAnswer, semantic bool, ok bool)
	// Put offers a cleanly completed answer for key. Implementations
	// ignore incomplete answers.
	Put(key CacheKey, val *CachedAnswer)
	// InvalidateEpochs drops every entry from an epoch other than
	// current. The epoch inside each key already prevents stale
	// serving; invalidation just frees the memory promptly after a
	// reload instead of waiting for LRU churn.
	InvalidateEpochs(current int64)
	Stats() CacheStats
}

// NewCache builds a cache by mode name: "exact", "semantic",
// "layered", or "off". maxEntries < 0 also disables caching entirely.
func NewCache(mode string, maxEntries int, maxBytes int64) (Cache, error) {
	if maxEntries < 0 {
		mode = "off"
	}
	switch mode {
	case "", "exact":
		return &exactCache{lru: newLRUCache(maxEntries, maxBytes)}, nil
	case "semantic":
		return newSemanticCache(maxEntries, maxBytes), nil
	case "layered":
		// The exact front absorbs repeated identical queries with a
		// fraction of the semantic tier's capacity.
		l1 := maxEntries / 4
		if l1 < 16 {
			l1 = 16
		}
		return &layeredCache{
			l1: &exactCache{lru: newLRUCache(l1, maxBytes/4)},
			l2: newSemanticCache(maxEntries, maxBytes),
		}, nil
	case "off":
		return nullCache{}, nil
	default:
		return nil, fmt.Errorf("commserve: unknown cache mode %q (want exact, semantic, layered or off)", mode)
	}
}

// sizeOf estimates the logical footprint of a cached answer, for the
// cache's byte bound.
func sizeOf(records []CommunityRecord) int64 {
	var b int64 = 64
	for i := range records {
		r := &records[i]
		b += 96 // record header
		b += int64(len(r.Core)+len(r.Centers)+len(r.Nodes))*4 + int64(len(r.Edges))*8
		for _, l := range r.CoreLabels {
			b += int64(len(l)) + 16
		}
	}
	return b
}

// nullCache is mode "off": every Get misses, Put is a no-op. Misses
// are still counted so dashboards see the traffic shape.
type nullCache struct{}

var nullMisses atomic.Int64

func (nullCache) Get(CacheKey) (*CachedAnswer, bool, bool) {
	nullMisses.Add(1)
	return nil, false, false
}
func (nullCache) Put(CacheKey, *CachedAnswer) {}
func (nullCache) InvalidateEpochs(int64)      {}
func (nullCache) Stats() CacheStats           { return CacheStats{Misses: nullMisses.Load()} }

// exactCache is the classic behavior: an LRU keyed on the full exact
// identity, no cross-key derivation.
type exactCache struct {
	lru          *lruCache
	hits, misses atomic.Int64
}

func (c *exactCache) Get(key CacheKey) (*CachedAnswer, bool, bool) {
	val, ok := c.lru.Get(key.String())
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return val, false, ok
}

func (c *exactCache) Put(key CacheKey, val *CachedAnswer) {
	if val == nil || !val.Complete {
		return
	}
	c.lru.Put(key.String(), val)
}

func (c *exactCache) InvalidateEpochs(current int64) {
	c.lru.DropOtherEpochs(current)
}

func (c *exactCache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: c.lru.Len(),
		Bytes:   c.lru.Bytes(),
	}
}

// layeredCache stacks a small exact LRU (L1) over the semantic tier
// (L2). Gets probe L1's exact identity first; L2 hits — semantic or
// not — are promoted into L1 under the requested key, so the next
// identical query costs one map lookup.
type layeredCache struct {
	l1 *exactCache
	l2 *semanticCache
}

func (c *layeredCache) Get(key CacheKey) (*CachedAnswer, bool, bool) {
	if val, _, ok := c.l1.Get(key); ok {
		return val, false, true
	}
	val, semantic, ok := c.l2.Get(key)
	if ok {
		c.l1.Put(key, val)
	}
	return val, semantic, ok
}

func (c *layeredCache) Put(key CacheKey, val *CachedAnswer) {
	c.l1.Put(key, val)
	c.l2.Put(key, val)
}

func (c *layeredCache) InvalidateEpochs(current int64) {
	c.l1.InvalidateEpochs(current)
	c.l2.InvalidateEpochs(current)
}

// Stats merges the layers: Hits counts answers served from either
// layer, Misses counts true misses (both layers missed), and the
// resident totals sum (a promoted answer is resident twice).
func (c *layeredCache) Stats() CacheStats {
	s1, s2 := c.l1.Stats(), c.l2.Stats()
	return CacheStats{
		Hits:         s1.Hits + s2.Hits,
		SemanticHits: s2.SemanticHits,
		Misses:       s2.Misses,
		Entries:      s1.Entries + s2.Entries,
		Bytes:        s1.Bytes + s2.Bytes,
	}
}

// lruCache is the size-bounded LRU primitive under the exact cache. It
// bounds both the entry count and the approximate resident bytes;
// inserting past either bound evicts least-recently-used entries. Safe
// for concurrent use.
type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recent
	items      map[string]*list.Element
}

type lruEntry struct {
	key string
	val *CachedAnswer
}

// newLRUCache returns a cache bounded to maxEntries entries and
// maxBytes approximate bytes; either bound may be 0 for "no bound on
// this axis". A cache with maxEntries < 0 is disabled: Get always
// misses and Put is a no-op.
func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

func (c *lruCache) disabled() bool { return c.maxEntries < 0 }

// Get returns the cached answer for key and marks it most recently
// used.
func (c *lruCache) Get(key string) (*CachedAnswer, bool) {
	if c.disabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) an answer and evicts LRU entries until
// both bounds hold again. An answer larger than the whole byte bound is
// not cached.
func (c *lruCache) Put(key string, val *CachedAnswer) {
	if c.disabled() || (c.maxBytes > 0 && val.Bytes > c.maxBytes) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.bytes += val.Bytes - el.Value.(*lruEntry).val.Bytes
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
		c.bytes += val.Bytes
	}
	for c.ll.Len() > 0 &&
		((c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		el := c.ll.Back()
		ent := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.bytes -= ent.val.Bytes
	}
}

// DropOtherEpochs removes every entry whose key carries an epoch tag
// other than current's. Exact keys embed "|e<epoch>|" (groupKey's
// suffix followed by the rmax segment), so a substring check suffices.
func (c *lruCache) DropOtherEpochs(current int64) {
	if c.disabled() {
		return
	}
	keep := "|e" + strconv.FormatInt(current, 10) + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		ent := el.Value.(*lruEntry)
		if !strings.Contains(ent.key, keep) {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			c.bytes -= ent.val.Bytes
		}
	}
}

// Len reports the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the current approximate resident bytes.
func (c *lruCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
