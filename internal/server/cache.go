package server

import (
	"container/list"
	"sync"

	"commdb/internal/obs"
)

// cacheValue is one cached top-k answer: wire-ready records from a
// cleanly completed enumeration. Partial results (a tripped budget, a
// canceled context) are never cached — their shape depends on the
// request's limits, which are deliberately outside the cache key.
type cacheValue struct {
	records  []CommunityRecord
	complete bool   // the enumeration was not cut short by a limit
	reason   string // stop reason when !complete (never set on cached values)
	bytes    int64
	// trace is the producing execution's summary. It is returned only
	// to the flight's direct waiters when they asked for a trace; cache
	// hits never surface it (they reflect no execution).
	trace *obs.Summary
}

// sizeOf estimates the logical footprint of a cached answer, for the
// cache's byte bound.
func sizeOf(records []CommunityRecord) int64 {
	var b int64 = 64
	for i := range records {
		r := &records[i]
		b += 96 // record header
		b += int64(len(r.Core)+len(r.Centers)+len(r.Nodes))*4 + int64(len(r.Edges))*8
		for _, l := range r.CoreLabels {
			b += int64(len(l)) + 16
		}
	}
	return b
}

// lruCache is a size-bounded LRU result cache for top-k queries, keyed
// on the canonical query fingerprint plus k. It bounds both the entry
// count and the approximate resident bytes; inserting past either
// bound evicts least-recently-used entries. Safe for concurrent use.
type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recent
	items      map[string]*list.Element
}

type lruEntry struct {
	key string
	val *cacheValue
}

// newLRUCache returns a cache bounded to maxEntries entries and
// maxBytes approximate bytes; either bound may be 0 for "no bound on
// this axis". A cache with maxEntries < 0 is disabled: Get always
// misses and Put is a no-op.
func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

func (c *lruCache) disabled() bool { return c.maxEntries < 0 }

// Get returns the cached answer for key and marks it most recently
// used.
func (c *lruCache) Get(key string) (*cacheValue, bool) {
	if c.disabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) an answer and evicts LRU entries until
// both bounds hold again. An answer larger than the whole byte bound is
// not cached.
func (c *lruCache) Put(key string, val *cacheValue) {
	if c.disabled() || (c.maxBytes > 0 && val.bytes > c.maxBytes) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.bytes += val.bytes - el.Value.(*lruEntry).val.bytes
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
		c.bytes += val.bytes
	}
	for c.ll.Len() > 0 &&
		((c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		el := c.ll.Back()
		ent := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, ent.key)
		c.bytes -= ent.val.bytes
	}
}

// Len reports the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the current approximate resident bytes.
func (c *lruCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
