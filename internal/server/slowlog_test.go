package server

// End-to-end tests of the continuous observability layer: the
// emission-delay SLO watchdog, the tail-sampled slow-query capture ring
// behind GET /debug/queries, the per-class rolling aggregates, and
// their exposure through /statsz and /metricsz.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"commdb"
	"commdb/internal/obs"
)

// stallStream emits one community per configured delay, recording each
// emission on the query's trace like the real enumerators do — so the
// watchdog sees genuine inter-emission gaps.
type stallStream struct {
	ctx    context.Context
	delays []time.Duration
	i      int
}

func (s *stallStream) Next() (*commdb.Community, bool) {
	if s.i >= len(s.delays) {
		return nil, false
	}
	time.Sleep(s.delays[s.i])
	if tr := obs.FromContext(s.ctx); tr != nil {
		tr.Emission()
	}
	s.i++
	return fakeCommunity(s.i), true
}

func (s *stallStream) Err() error   { return nil }
func (s *stallStream) Close() error { return nil }

// stallEngine serves every query with a fresh stallStream.
type stallEngine struct{ delays []time.Duration }

func (e *stallEngine) stream(ctx context.Context) (Stream, error) {
	return &stallStream{ctx: ctx, delays: e.delays}, nil
}
func (e *stallEngine) All(ctx context.Context, _ commdb.Query) (Stream, error) {
	return e.stream(ctx)
}
func (e *stallEngine) TopK(ctx context.Context, _ commdb.Query) (Stream, error) {
	return e.stream(ctx)
}
func (e *stallEngine) Graph() *commdb.Graph { return nil }

// syncWriter serializes slog output so the test can read it racelessly.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return b
}

func debugQueries(t *testing.T, baseURL string) DebugQueriesResponse {
	t.Helper()
	var out DebugQueriesResponse
	if err := json.Unmarshal(getBody(t, baseURL+"/debug/queries"), &out); err != nil {
		t.Fatalf("decoding /debug/queries: %v", err)
	}
	return out
}

// TestSLOBreachEndToEnd is the acceptance test for the watchdog: a
// query whose enumeration stalls mid-stream (fast emissions, then one
// long gap) must increment commdb_emission_slo_breaches_total, be
// force-captured into /debug/queries with its trace, and produce a
// structured warning log line.
func TestSLOBreachEndToEnd(t *testing.T) {
	// Seven quick emissions then an 80ms stall: median gap is tiny, the
	// max is > 8x the median and above the 1ms absolute floor.
	delays := []time.Duration{
		time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond,
		time.Millisecond, time.Millisecond, time.Millisecond, 80 * time.Millisecond,
	}
	logw := &syncWriter{}
	srv := NewWithEngine(&stallEngine{delays: delays}, Config{
		Logger: slog.New(slog.NewTextHandler(logw, nil)),
		Obs: obs.CollectorConfig{
			Watchdog: obs.WatchdogConfig{Multiple: 8, MinDelayMS: 1, MinEmissions: 4},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/search/topk",
		searchBody(t, []string{"stall", "query"}, map[string]any{"k": len(delays)}))
	out := decodeTopK(t, resp)
	if len(out.Results) != len(delays) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(delays))
	}

	metrics := string(getBody(t, ts.URL+"/metricsz"))
	if !strings.Contains(metrics, "commdb_emission_slo_breaches_total 1") {
		t.Fatalf("metricsz missing breach counter:\n%s", grepLines(metrics, "slo"))
	}

	dbg := debugQueries(t, ts.URL)
	if dbg.SLOBreaches != 1 {
		t.Fatalf("slo_breaches = %d, want 1", dbg.SLOBreaches)
	}
	var breach *obs.QueryRecord
	for i := range dbg.Queries {
		if dbg.Queries[i].SLOBreach {
			breach = &dbg.Queries[i]
			break
		}
	}
	if breach == nil {
		t.Fatalf("no SLO-breaching record in /debug/queries (%d records)", len(dbg.Queries))
	}
	if !containsStr(breach.Captured, obs.CapturedBreach) {
		t.Fatalf("breach record capture reasons = %v, want %q", breach.Captured, obs.CapturedBreach)
	}
	if breach.Trace == nil || breach.Trace.Emissions == nil {
		t.Fatal("breach record was captured without its trace")
	}
	if n := breach.Trace.Emissions.Count; n != int64(len(delays)) {
		t.Fatalf("captured trace has %d emissions, want %d", n, len(delays))
	}
	if breach.MaxEmissionDelayMS < 50 {
		t.Fatalf("max emission delay = %.2fms, want the ~80ms stall", breach.MaxEmissionDelayMS)
	}
	if breach.MedianEmissionDelayMS >= breach.MaxEmissionDelayMS {
		t.Fatalf("median %.2fms not below max %.2fms", breach.MedianEmissionDelayMS, breach.MaxEmissionDelayMS)
	}

	log := logw.String()
	if !strings.Contains(log, "emission SLO breach") {
		t.Fatalf("no SLO warning logged:\n%s", log)
	}
}

// TestSLONoFalsePositiveUniformSlow: a uniformly slow stream has a
// large max gap but an equally large median, so it must not breach.
func TestSLONoFalsePositiveUniformSlow(t *testing.T) {
	delays := []time.Duration{
		4 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond,
		4 * time.Millisecond, 4 * time.Millisecond,
	}
	srv := NewWithEngine(&stallEngine{delays: delays}, Config{
		Obs: obs.CollectorConfig{
			Watchdog: obs.WatchdogConfig{Multiple: 8, MinDelayMS: 1, MinEmissions: 4},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/search/topk",
		searchBody(t, []string{"steady"}, map[string]any{"k": len(delays)}))
	decodeTopK(t, resp)

	if dbg := debugQueries(t, ts.URL); dbg.SLOBreaches != 0 {
		t.Fatalf("uniformly slow query breached the SLO: %d breaches", dbg.SLOBreaches)
	}
}

// TestDebugQueriesMixedWorkload drives the paper's running example
// through a mixed workload — healthy queries across distinct classes
// plus a budget-tripped one — and checks the slow log, the per-class
// aggregates in /statsz, and the labeled exposition in /metricsz.
func TestDebugQueriesMixedWorkload(t *testing.T) {
	_, ts := newPaperServer(t, Config{CacheEntries: -1})

	// Healthy queries in two classes: kw3 and kw2.
	for i := 0; i < 3; i++ {
		resp := postJSON(t, ts.URL+"/v1/search/topk",
			searchBody(t, []string{"a", "b", "c"}, map[string]any{"k": 3 + i}))
		decodeTopK(t, resp)
	}
	resp := postJSON(t, ts.URL+"/v1/search/topk",
		searchBody(t, []string{"a", "b"}, map[string]any{"k": 2}))
	decodeTopK(t, resp)

	// A budget-tripped query: one relaxation is never enough, so the
	// enumeration stops with a budget stop reason and must always be
	// captured regardless of its latency.
	resp = postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a"}, map[string]any{
		"k": 5, "limits": map[string]any{"max_relaxations": 1},
	}))
	tripped := decodeTopK(t, resp)
	if tripped.Complete {
		t.Fatal("budget-limited query reported complete")
	}

	dbg := debugQueries(t, ts.URL)
	if dbg.Observed != 5 {
		t.Fatalf("observed = %d, want 5", dbg.Observed)
	}
	if dbg.Retained == 0 || len(dbg.Queries) == 0 {
		t.Fatal("mixed workload captured nothing")
	}
	// Records come back slowest-first with full traces.
	for i := 1; i < len(dbg.Queries); i++ {
		if dbg.Queries[i].TotalMS > dbg.Queries[i-1].TotalMS {
			t.Fatalf("slow log not sorted: %v then %v ms", dbg.Queries[i-1].TotalMS, dbg.Queries[i].TotalMS)
		}
	}
	var sawSlow, sawErrored bool
	for _, rec := range dbg.Queries {
		if containsStr(rec.Captured, obs.CapturedSlow) {
			sawSlow = true
		}
		if containsStr(rec.Captured, obs.CapturedErrored) {
			sawErrored = true
			if !strings.Contains(rec.StopReason, "budget") {
				t.Fatalf("errored record stop reason = %q, want a budget trip", rec.StopReason)
			}
		}
		if rec.Trace == nil {
			t.Fatalf("record %s captured without trace", rec.QueryID)
		}
		if rec.Fingerprint == "" {
			t.Fatalf("record %s has no fingerprint", rec.QueryID)
		}
	}
	if !sawSlow || !sawErrored {
		t.Fatalf("capture reasons missing: slow=%v errored=%v", sawSlow, sawErrored)
	}

	// Per-class aggregates: three distinct keyword buckets were queried.
	classes := map[string]obs.ClassSnapshot{}
	for _, c := range dbg.Classes {
		classes[c.Class] = c
	}
	for _, want := range []string{"kw1", "kw2", "kw3"} {
		found := false
		for class := range classes {
			if strings.HasPrefix(class, want+"/") {
				found = true
			}
		}
		if !found {
			t.Fatalf("no class row for keyword bucket %s: %v", want, keysOf(classes))
		}
	}
	for class, c := range classes {
		if c.WindowCount == 0 || c.P50MS <= 0 {
			t.Fatalf("class %s has empty window stats: %+v", class, c)
		}
	}

	// /statsz carries the same rows plus the capture counters.
	var snap StatsSnapshot
	if err := json.Unmarshal(getBody(t, ts.URL+"/statsz"), &snap); err != nil {
		t.Fatalf("decoding /statsz: %v", err)
	}
	if snap.CaptureObserved != 5 || snap.CaptureRetained == 0 {
		t.Fatalf("statsz capture counters = %d/%d", snap.CaptureObserved, snap.CaptureRetained)
	}
	if len(snap.QueryClasses) != len(dbg.Classes) {
		t.Fatalf("statsz has %d classes, /debug/queries has %d", len(snap.QueryClasses), len(dbg.Classes))
	}

	// /metricsz exposes the labeled per-class families and still lints.
	metrics := string(getBody(t, ts.URL+"/metricsz"))
	if err := obs.LintPrometheus(strings.NewReader(metrics)); err != nil {
		t.Fatalf("metricsz lint: %v", err)
	}
	for _, name := range []string{
		"commdb_class_queries_total{",
		"commdb_class_latency_p50_ms{",
		"commdb_class_query_rate{",
	} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("metricsz missing labeled family %s:\n%s", name, grepLines(metrics, "commdb_class"))
		}
	}
	// Labels render in fixed order with the keyword bucket quoted.
	if !strings.Contains(metrics, `commdb_class_queries_total{indexed="`) {
		t.Fatalf("class labels not in canonical order:\n%s", grepLines(metrics, "commdb_class_queries_total"))
	}
}

// TestCaptureConcurrencyStress hammers the capture ring and the rolling
// aggregates from concurrent queries while scraping /debug/queries,
// /statsz and /metricsz — the satellite -race test for the whole layer.
func TestCaptureConcurrencyStress(t *testing.T) {
	eng := &fakeEngine{n: 2}
	srv := NewWithEngine(eng, Config{
		CacheEntries: -1,
		Obs: obs.CollectorConfig{
			Capture:  obs.CaptureConfig{SlowN: 8, RingSize: 32, SampleEvery: 4},
			Watchdog: obs.WatchdogConfig{Multiple: 8, MinDelayMS: 1, MinEmissions: 4},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				kws := []string{fmt.Sprintf("w%d", w), fmt.Sprintf("i%d", i)}
				if i%3 == 0 {
					kws = kws[:1]
				}
				resp := postJSON(t, ts.URL+"/v1/search/topk",
					searchBody(t, kws, map[string]any{"k": 1 + i%3}))
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				debugQueries(t, ts.URL)
				if err := obs.LintPrometheus(bytes.NewReader(getBody(t, ts.URL+"/metricsz"))); err != nil {
					t.Errorf("metricsz lint under load: %v", err)
					return
				}
				getBody(t, ts.URL+"/statsz")
			}
		}()
	}
	wg.Wait()
	close(done)
	scrapeWG.Wait()

	dbg := debugQueries(t, ts.URL)
	if want := int64(writers * perWriter); dbg.Observed != want {
		t.Fatalf("observed = %d, want %d", dbg.Observed, want)
	}
	if len(dbg.Queries) == 0 || len(dbg.Classes) == 0 {
		t.Fatal("stress run captured no records or classes")
	}
	var total int64
	for _, c := range dbg.Classes {
		total += c.Total
	}
	if total != int64(writers*perWriter) {
		t.Fatalf("class totals sum to %d, want %d", total, writers*perWriter)
	}
}

func containsStr(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func keysOf(m map[string]obs.ClassSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// grepLines returns the lines of s containing sub, for failure output.
func grepLines(s, sub string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
