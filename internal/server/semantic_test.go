package server

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"commdb"
)

// answerAt builds a cached answer with the given per-record costs and
// reuse radii. meta[i] = {reuse, core}.
func answerAt(rmax float64, k int, exhausted bool, costs []float64, meta [][2]float64) *CachedAnswer {
	records := make([]CommunityRecord, len(costs))
	ms := make([]RecordMeta, len(costs))
	for i, c := range costs {
		records[i] = CommunityRecord{Type: RecordCommunity, Rank: i + 1, Cost: c}
		ms[i] = RecordMeta{ReuseRadius: meta[i][0], CoreRadius: meta[i][1]}
	}
	return &CachedAnswer{
		Records: records, Complete: true, Exhausted: exhausted,
		Rmax: rmax, K: k, Meta: ms, Bytes: sizeOf(records),
	}
}

// TestFilterToGuards walks the downfilter's soundness guards one by
// one: every case that could serve records differing from a live run
// must refuse, and the sound cases must renumber exactly.
func TestFilterToGuards(t *testing.T) {
	full := answerAt(8, 3, false,
		[]float64{10, 11, 12},
		[][2]float64{{2, 1}, {6, 3}, {8, 4}})

	// Same radius: prefix serving.
	if v, ok := full.filterTo(8, 2); !ok || len(v.Records) != 2 || v.Records[1].Rank != 2 {
		t.Fatalf("equal-radius prefix: got %+v ok=%v", v, ok)
	}
	// Same radius, k beyond the cached records, not exhausted → live.
	if _, ok := full.filterTo(8, 4); ok {
		t.Fatal("served more records than the cache can prove exist")
	}
	// Same radius, k beyond, exhausted → the whole answer serves.
	exh := answerAt(8, 5, true, []float64{10, 11}, [][2]float64{{4, 2}, {6, 3}})
	if v, ok := exh.filterTo(8, 4); !ok || len(v.Records) != 2 || !v.Exhausted {
		t.Fatalf("exhausted equal-radius: got %+v ok=%v", v, ok)
	}

	// Larger requested radius: never servable.
	if _, ok := full.filterTo(9, 1); ok {
		t.Fatal("served beyond the cached radius")
	}
	// Incomplete answers are never servable.
	if _, ok := (&CachedAnswer{Rmax: 8}).filterTo(4, 1); ok {
		t.Fatal("served an incomplete answer")
	}
	// No meta: downfilter impossible.
	noMeta := &CachedAnswer{Records: full.Records, Complete: true, Rmax: 8}
	if _, ok := noMeta.filterTo(4, 1); ok {
		t.Fatal("downfiltered without record meta")
	}

	// Keep/drop classification: at rmax 5, record 0 keeps (reuse 2),
	// record 1 is in its shrink zone (core 3 < 5 < reuse 6) → refuse.
	if _, ok := full.filterTo(5, 1); ok {
		t.Fatal("served through a shrink-zone record")
	}
	// At rmax 2.5, record 0 keeps, records 1 and 2 vanish (core radius
	// above 2.5) — but the answer is not exhausted and only 1 record is
	// kept, so k=2 must refuse while k=1 can serve.
	if _, ok := full.filterTo(2.5, 2); ok {
		t.Fatal("served k=2 with one provable record and an open tail")
	}
	v, ok := full.filterTo(2.5, 1)
	if !ok || len(v.Records) != 1 || v.Records[0].Cost != 10 || v.Records[0].Rank != 1 {
		t.Fatalf("downfilter to 2.5/k=1: got %+v ok=%v", v, ok)
	}
	// The served record keeps the producing cost but the boundary guard
	// applies: its cost (10) is strictly under the cached tail (12).
	// Push the tail down to a tie and the guard must refuse.
	tie := answerAt(8, 3, false,
		[]float64{10, 11, 10},
		[][2]float64{{2, 1}, {6, 3}, {8, 4}})
	if _, ok := tie.filterTo(2.5, 1); ok {
		t.Fatal("served across a cost tie with the cached tail")
	}

	// Equal costs among served records: emission order across radii is
	// not stable for ties → refuse.
	tied := answerAt(8, 3, true,
		[]float64{10, 10, 12},
		[][2]float64{{4, 2}, {4, 2}, {8, 4}})
	if _, ok := tied.filterTo(5, 2); ok {
		t.Fatal("served two equal-cost records across radii")
	}

	// First unserved kept record tying the last served one → refuse.
	boundary := answerAt(8, 3, true,
		[]float64{10, 11, 11},
		[][2]float64{{4, 2}, {4, 2}, {4, 2}})
	if _, ok := boundary.filterTo(5, 2); ok {
		t.Fatal("served with a cost tie at the k boundary")
	}
	// With strictly increasing costs the same shape serves.
	clean := answerAt(8, 3, true,
		[]float64{10, 11, 12},
		[][2]float64{{4, 2}, {4, 2}, {4, 2}})
	v, ok = clean.filterTo(5, 2)
	if !ok || len(v.Records) != 2 || v.Exhausted {
		t.Fatalf("clean downfilter: got %+v ok=%v", v, ok)
	}
	// Serving every kept record of an exhausted answer stays exhausted.
	if v, ok := clean.filterTo(5, 3); !ok || !v.Exhausted {
		t.Fatalf("exhausted propagation: got %+v ok=%v", v, ok)
	}

	// Nothing kept and not exhausted: the space below the cached tail
	// is unknown → refuse. Exhausted: the empty answer is proof.
	gone := answerAt(8, 2, false, []float64{10}, [][2]float64{{6, 5}})
	if _, ok := gone.filterTo(2, 1); ok {
		t.Fatal("served an empty answer without exhaustion")
	}
	goneExh := answerAt(8, 2, true, []float64{10}, [][2]float64{{6, 5}})
	if v, ok := goneExh.filterTo(2, 1); !ok || len(v.Records) != 0 || !v.Exhausted {
		t.Fatalf("exhausted empty downfilter: got %+v ok=%v", v, ok)
	}
}

func key(group string, epoch int64, rmax float64, k int) CacheKey {
	return CacheKey{Group: group, Epoch: epoch, Rmax: rmax, K: k}
}

// TestSemanticCacheProbe: exact identity wins, otherwise the smallest
// covering radius in the group is downfiltered; foreign groups and
// epochs never serve.
func TestSemanticCacheProbe(t *testing.T) {
	c := newSemanticCache(0, 0)
	big := answerAt(8, 2, true, []float64{10, 11}, [][2]float64{{3, 1}, {3, 1}})
	mid := answerAt(6, 2, true, []float64{10, 11}, [][2]float64{{3, 1}, {3, 1}})
	c.Put(key("q", 1, 8, 2), big)
	c.Put(key("q", 1, 6, 2), mid)

	// Exact.
	if v, semantic, ok := c.Get(key("q", 1, 6, 2)); !ok || semantic || len(v.Records) != 2 {
		t.Fatalf("exact probe: ok=%v semantic=%v", ok, semantic)
	}
	// Covered radius: served semantically from the rmax=6 entry (the
	// smallest covering one).
	v, semantic, ok := c.Get(key("q", 1, 4, 2))
	if !ok || !semantic || len(v.Records) != 2 || v.Rmax != 4 {
		t.Fatalf("semantic probe: ok=%v semantic=%v val=%+v", ok, semantic, v)
	}
	// Beyond every cached radius: miss.
	if _, _, ok := c.Get(key("q", 1, 9, 2)); ok {
		t.Fatal("served beyond every cached radius")
	}
	// Same shape, different group or epoch: miss.
	if _, _, ok := c.Get(key("other", 1, 4, 2)); ok {
		t.Fatal("served across groups")
	}
	if _, _, ok := c.Get(key("q", 2, 4, 2)); ok {
		t.Fatal("served across epochs")
	}
	st := c.Stats()
	if st.Hits != 2 || st.SemanticHits != 1 || st.Misses != 3 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want hits=2 semantic=1 misses=3 entries=2", st)
	}
}

// TestSemanticCacheEviction: the entry bound evicts LRU entries and
// cleans the group index, so evicted answers can no longer serve.
func TestSemanticCacheEviction(t *testing.T) {
	c := newSemanticCache(2, 0)
	mk := func(g string) *CachedAnswer {
		return answerAt(8, 1, true, []float64{10}, [][2]float64{{3, 1}})
	}
	c.Put(key("a", 1, 8, 1), mk("a"))
	c.Put(key("b", 1, 8, 1), mk("b"))
	c.Put(key("c", 1, 8, 1), mk("c")) // evicts "a"
	if _, _, ok := c.Get(key("a", 1, 4, 1)); ok {
		t.Fatal("evicted entry still serves semantically")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	if len(c.groups) != 2 {
		t.Fatalf("group index has %d groups, want 2", len(c.groups))
	}
}

// TestSemanticCacheEpochInvalidation: a sweep drops every other-epoch
// entry.
func TestSemanticCacheEpochInvalidation(t *testing.T) {
	c := newSemanticCache(0, 0)
	c.Put(key("a", 1, 8, 1), answerAt(8, 1, true, []float64{10}, [][2]float64{{3, 1}}))
	c.Put(key("b", 2, 8, 1), answerAt(8, 1, true, []float64{10}, [][2]float64{{3, 1}}))
	c.InvalidateEpochs(2)
	if _, _, ok := c.Get(key("a", 1, 8, 1)); ok {
		t.Fatal("stale epoch survived invalidation")
	}
	if _, _, ok := c.Get(key("b", 2, 8, 1)); !ok {
		t.Fatal("current epoch was dropped")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestLayeredPromotion: an L2 hit (semantic or exact) is promoted into
// the exact front, so the next identical request is an L1 hit.
func TestLayeredPromotion(t *testing.T) {
	c, err := NewCache("layered", 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key("q", 1, 8, 2), answerAt(8, 2, true, []float64{10, 11}, [][2]float64{{3, 1}, {3, 1}}))

	// First probe at a smaller radius: semantic, via L2.
	if _, semantic, ok := c.Get(key("q", 1, 4, 2)); !ok || !semantic {
		t.Fatalf("first layered probe: ok=%v semantic=%v", ok, semantic)
	}
	// Second identical probe: absorbed by the promoted L1 entry.
	if _, semantic, ok := c.Get(key("q", 1, 4, 2)); !ok || semantic {
		t.Fatalf("promoted probe: ok=%v semantic=%v, want exact hit", ok, semantic)
	}
	st := c.Stats()
	if st.Hits != 2 || st.SemanticHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want hits=2 semantic=1 misses=0", st)
	}
}

// TestNewCacheModes: mode validation and the disabled spelling.
func TestNewCacheModes(t *testing.T) {
	if _, err := NewCache("bogus", 0, 0); err == nil {
		t.Fatal("unknown cache mode accepted")
	}
	c, err := NewCache("semantic", -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key("q", 1, 8, 1), answerAt(8, 1, true, []float64{10}, [][2]float64{{3, 1}}))
	if _, _, ok := c.Get(key("q", 1, 8, 1)); ok {
		t.Fatal("negative entry bound did not disable the cache")
	}
}

// TestE2ESemanticMonotonicity is the Rmax-monotonicity property test
// against the real engine: prime a semantic-cache server once at the
// largest radius, then sweep smaller radii and ks and require every
// response — semantically served or not — to be byte-identical to an
// uncached server's answer for the same request. This is the
// containment property end to end: results at r' ≤ r are exactly the
// r-results filtered to r', or the cache refuses and the query runs
// live; either way the wire bytes match.
func TestE2ESemanticMonotonicity(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	cached := New(commdb.NewSearcher(g), Config{CacheMode: "semantic"})
	uncached := New(commdb.NewSearcher(g), Config{CacheMode: "off"})
	tsC := httptest.NewServer(cached.Handler())
	defer tsC.Close()
	tsU := httptest.NewServer(uncached.Handler())
	defer tsU.Close()

	ask := func(url string, keywords []string, rmax float64, k int) TopKResponse {
		resp := postJSON(t, url+"/v1/search/topk",
			searchBody(t, keywords, map[string]any{"rmax": rmax, "k": k}))
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		return decodeTopK(t, resp)
	}

	for _, keywords := range [][]string{{"a", "b", "c"}, {"b", "c"}} {
		// Prime: the full answer at the largest radius, k beyond the
		// community count so the cached answer is exhausted.
		prime := ask(tsC.URL, keywords, 8, 50)
		if !prime.Complete || prime.Cached {
			t.Fatalf("prime query: complete=%v cached=%v", prime.Complete, prime.Cached)
		}
		for _, rmax := range []float64{8, 7.5, 7, 6.5, 6, 5.5, 5, 4.5, 4, 3, 2, 1} {
			for _, k := range []int{1, 2, 3, 50} {
				got := ask(tsC.URL, keywords, rmax, k)
				want := ask(tsU.URL, keywords, rmax, k)
				gb, _ := json.Marshal(got.Results)
				wb, _ := json.Marshal(want.Results)
				if string(gb) != string(wb) || got.Complete != want.Complete {
					t.Fatalf("keywords=%v rmax=%g k=%d: cached answer differs from live\n got %s (complete=%v)\nwant %s (complete=%v)",
						keywords, rmax, k, gb, got.Complete, wb, want.Complete)
				}
				if got.Semantic && !got.Cached {
					t.Fatalf("rmax=%g k=%d: semantic response not marked cached", rmax, k)
				}
			}
		}
	}
	// The sweep must have exercised the semantic path, not just fallen
	// back to live execution everywhere.
	if st := cached.Stats(); st.CacheSemanticHits == 0 {
		t.Fatalf("no semantic hits across the sweep: %+v", st)
	}
}

// TestE2ESemanticEpochZero ensures downfiltered answers carry the wire
// contract fields: Semantic implies Cached, records re-rank from 1,
// and complete/exhausted answers report Complete.
func TestE2ESemanticRanks(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	srv := New(commdb.NewSearcher(g), Config{CacheMode: "semantic"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	prime := postJSON(t, ts.URL+"/v1/search/topk",
		searchBody(t, []string{"a", "b", "c"}, map[string]any{"rmax": 8, "k": 50}))
	decodeTopK(t, prime)

	var sem *TopKResponse
	for _, rmax := range []float64{7.5, 7, 6.5, 6, 5.5, 5, 4.5, 4, 3, 2} {
		resp := postJSON(t, ts.URL+"/v1/search/topk",
			searchBody(t, []string{"a", "b", "c"}, map[string]any{"rmax": rmax, "k": 50}))
		r := decodeTopK(t, resp)
		if r.Semantic {
			sem = &r
			break
		}
	}
	if sem == nil {
		t.Fatal("no radius in the sweep produced a semantic hit")
	}
	if !sem.Cached {
		t.Fatal("semantic hit not marked cached")
	}
	for i, rec := range sem.Results {
		if rec.Rank != i+1 {
			t.Fatalf("record %d has rank %d after downfilter", i, rec.Rank)
		}
	}
	if !reflect.DeepEqual(srv.Stats().CacheSemanticHits, int64(1)) {
		t.Fatalf("semantic hit count = %d, want 1", srv.Stats().CacheSemanticHits)
	}
}
