package server

// GET /debug/queries is the server's slow-query log: the JSON view of
// the tail-sampled capture ring — the N slowest queries, every errored
// or SLO-breaching one, and a deterministic background sample — each
// with its full trace, plus the per-class rolling aggregates. It is the
// answer to "what were the slowest queries in the last hour and why"
// that per-query traces alone cannot give.

import (
	"net/http"
	"time"

	"commdb"
	"commdb/internal/obs"
)

// DebugQueriesResponse is the body of GET /debug/queries.
type DebugQueriesResponse struct {
	// Observed counts completed queries offered to the capture layer;
	// Retained counts the records it kept.
	Observed int64 `json:"observed"`
	Retained int64 `json:"retained"`
	// SLOBreaches counts emission-delay SLO breaches process-wide.
	SLOBreaches int64 `json:"slo_breaches"`
	// Queries are the captured records, slowest first, each carrying
	// its full trace summary and the reasons it was retained.
	Queries []obs.QueryRecord `json:"queries"`
	// Classes are the per-class rolling aggregates.
	Classes []obs.ClassSnapshot `json:"classes,omitempty"`
}

// handleDebugQueries answers GET /debug/queries.
func (s *Server) handleDebugQueries(w http.ResponseWriter, _ *http.Request) {
	observed, retained := s.collector.CaptureStats()
	writeJSON(w, http.StatusOK, DebugQueriesResponse{
		Observed:    observed,
		Retained:    retained,
		SLOBreaches: s.collector.Breaches(),
		Queries:     s.collector.SlowLog(),
		Classes:     s.collector.Classes(),
	})
}

// observeQuery feeds one finished engine execution into the continuous
// observability layer: SLO verdict, per-class aggregation, capture
// decision. The indexed/plain half of the class key comes from the
// trace's projected label, so fake engines without traces classify as
// plain.
func (s *Server) observeQuery(qid, endpoint string, q commdb.Query, k, results int, stopReason string, start time.Time, sum *obs.Summary) {
	indexed := sum != nil && sum.Labels["projected"] == "true"
	rec := obs.NewQueryRecord(qid, endpoint, q.Keywords, q.Rmax, k, indexed, results, stopReason, start, time.Since(start), sum)
	if rec.Fingerprint == "" {
		// Fake engines without traces still get the canonical identity.
		rec.Fingerprint = q.Fingerprint()
	}
	s.collector.Observe(rec)
	s.observeWorkload(rec, q, endpoint)
}
