package server

// The continuous profiler's HTTP surface: GET /debug/profilez lists
// the bounded capture ring's retained profiles, GET
// /debug/profilez/{id} downloads one as a pprof-ready gzipped proto.
// Both routes — like /debug/pprof — sit behind the admin token: heap
// and CPU captures expose symbol names and allocation sites, which
// must not leak to unauthenticated scrapers.

import (
	"net/http"
	"strconv"

	"commdb/internal/prof"
)

// ProfilezResponse is the body of GET /debug/profilez.
type ProfilezResponse struct {
	// Profiles are the ring's retained captures, oldest first, payloads
	// omitted — fetch one via /debug/profilez/{id}.
	Profiles []prof.Profile `json:"profiles"`
}

// handleProfilez answers GET /debug/profilez.
func (s *Server) handleProfilez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ProfilezResponse{Profiles: s.cfg.Profiler.Profiles()})
}

// handleProfileGet answers GET /debug/profilez/{id} with the raw
// capture — `go tool pprof` reads it directly.
func (s *Server) handleProfileGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad profile id %q", r.PathValue("id"))
		return
	}
	p, err := s.cfg.Profiler.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		"attachment; filename="+p.Kind+"-"+strconv.Itoa(p.ID)+".pb.gz")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(p.Data())
}
