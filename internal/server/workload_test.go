package server

// End-to-end tests of the workload flight recorder: the stop-reason
// split (result-limit vs budget exhaustion), the /debug/workloadz
// attribution tables, and the durable journal capture including
// cache-hit entries.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"commdb/internal/workload"
)

// drainStream reads an NDJSON response to its trailer.
func drainStream(t *testing.T, resp *http.Response) Trailer {
	t.Helper()
	defer resp.Body.Close()
	var trailer Trailer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if probe.Type == RecordTrailer {
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatal(err)
			}
		}
	}
	return trailer
}

// TestStopReasonSplit proves the fix for the budget_trips conflation:
// a query stopped by its max_results limit is an ordinary bounded
// completion (result_limit_stops), while a work-budget trip is real
// resource pressure (budget_exhausted) — and the two never mix.
func TestStopReasonSplit(t *testing.T) {
	srv, ts := newPaperServer(t, Config{CacheEntries: -1})

	// A bounded stream: max_results=2 stops enumeration at 2 — a
	// result-limit stop, not exhaustion.
	resp := postJSON(t, ts.URL+"/v1/search/all", searchBody(t, []string{"a", "b", "c"},
		map[string]any{"limits": map[string]any{"max_results": 2}}))
	trailer := drainStream(t, resp)
	if trailer.Complete || !strings.Contains(trailer.Reason, "results") {
		t.Fatalf("trailer = %+v, want a results-limit stop", trailer)
	}
	if st := srv.Stats(); st.ResultLimitStops != 1 || st.BudgetExhausted != 0 {
		t.Fatalf("after results stop: result_limit_stops=%d budget_exhausted=%d, want 1/0",
			st.ResultLimitStops, st.BudgetExhausted)
	}

	// A starved work budget: one relaxation is never enough, so the
	// query stops from genuine resource pressure.
	resp = postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a"}, map[string]any{
		"k": 5, "limits": map[string]any{"max_relaxations": 1},
	}))
	if out := decodeTopK(t, resp); out.Complete {
		t.Fatal("budget-starved query reported complete")
	}
	st := srv.Stats()
	if st.ResultLimitStops != 1 || st.BudgetExhausted != 1 {
		t.Fatalf("after budget trip: result_limit_stops=%d budget_exhausted=%d, want 1/1",
			st.ResultLimitStops, st.BudgetExhausted)
	}

	// The split is on the wire too: /statsz carries both fields (and no
	// legacy conflated one), /metricsz both families.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(getBody(t, ts.URL+"/statsz"), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["result_limit_stops"]; !ok {
		t.Fatal("/statsz lacks result_limit_stops")
	}
	if _, ok := raw["budget_exhausted"]; !ok {
		t.Fatal("/statsz lacks budget_exhausted")
	}
	if _, ok := raw["budget_trips"]; ok {
		t.Fatal("/statsz still reports the conflated budget_trips")
	}
	text := string(getBody(t, ts.URL+"/metricsz"))
	for _, want := range []string{
		"commdb_result_limit_stops_total 1",
		"commdb_budget_exhausted_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in /metricsz:\n%s", want, text)
		}
	}
	if strings.Contains(text, "commdb_budget_trips_total") {
		t.Fatal("/metricsz still exports commdb_budget_trips_total")
	}
}

// TestWorkloadzAttribution drives a repeated query through the server
// and checks the flight recorder's read side: per-keyword init
// attribution in /debug/workloadz, the workload block in /statsz, and
// the labeled keyword families in /metricsz.
func TestWorkloadzAttribution(t *testing.T) {
	_, ts := newPaperServer(t, Config{})

	// Same query twice: the first executes (paying keyword init), the
	// second is absorbed by the result cache.
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/search/topk",
			searchBody(t, []string{"a", "b", "c"}, map[string]any{"k": 3}))
		out := decodeTopK(t, resp)
		if wantCached := i == 1; out.Cached != wantCached {
			t.Fatalf("request %d cached=%v, want %v", i, out.Cached, wantCached)
		}
	}

	var snap workload.Snapshot
	if err := json.Unmarshal(getBody(t, ts.URL+"/debug/workloadz?format=json"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Observed != 2 || snap.CacheAbsorbed != 1 {
		t.Fatalf("observed=%d absorbed=%d, want 2/1", snap.Observed, snap.CacheAbsorbed)
	}
	if len(snap.HotKeywords) != 3 {
		t.Fatalf("hot keywords: %+v, want 3 terms", snap.HotKeywords)
	}
	terms := map[string]workload.KeywordStats{}
	for _, kw := range snap.HotKeywords {
		terms[kw.Term] = kw
	}
	for _, term := range []string{"a", "b", "c"} {
		kw, ok := terms[term]
		if !ok {
			t.Fatalf("term %q missing from hot keywords: %+v", term, snap.HotKeywords)
		}
		if kw.Queries != 2 || kw.CacheHits != 1 {
			t.Fatalf("term %q: queries=%d hits=%d, want 2/1", term, kw.Queries, kw.CacheHits)
		}
		// Only the executed query paid engine init; the full-set reverse
		// Dijkstra for each keyword is charged to that keyword.
		if kw.InitRuns == 0 || kw.InitVisits == 0 {
			t.Fatalf("term %q has no init attribution: %+v", term, kw)
		}
	}
	if len(snap.Classes) != 1 || snap.Classes[0].Queries != 2 || snap.Classes[0].CacheHits != 1 {
		t.Fatalf("classes: %+v, want one class with 2 queries / 1 hit", snap.Classes)
	}

	// The same tables surface as a workload block in /statsz and as
	// labeled keyword families in /metricsz.
	var stats struct {
		Workload *workload.Snapshot `json:"workload"`
	}
	if err := json.Unmarshal(getBody(t, ts.URL+"/statsz"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Workload == nil || stats.Workload.Observed != 2 {
		t.Fatalf("/statsz workload block: %+v", stats.Workload)
	}
	text := string(getBody(t, ts.URL+"/metricsz"))
	for _, want := range []string{
		`commdb_keyword_queries_total{term="a"} 2`,
		`commdb_keyword_cache_hits_total{term="b"} 1`,
		"commdb_workload_observed_total 2",
		"commdb_workload_cache_absorbed_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in /metricsz:\n%s", want, text)
		}
	}
}

// TestWorkloadJournalCapture runs a mixed workload against a server
// with durable recording on and replays the journal file: executions
// and cache hits both land as entries, in arrival order, with matching
// canonical fingerprints and the request's effective limits.
func TestWorkloadJournalCapture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.ndjson")
	j, err := workload.OpenJournal(workload.JournalConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	_, ts := newPaperServer(t, Config{WorkloadJournal: j})

	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/search/topk",
			searchBody(t, []string{"a", "b", "c"}, map[string]any{"k": 3}))
		decodeTopK(t, resp)
	}
	resp := postJSON(t, ts.URL+"/v1/search/all", searchBody(t, []string{"a", "b"},
		map[string]any{"limits": map[string]any{"max_results": 2}}))
	drainStream(t, resp)

	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := workload.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("journal has %d entries, want 3", len(got))
	}
	exec, hit, stream := got[0], got[1], got[2]
	if exec.CacheHit || exec.Algo != workload.AlgoTopK || !exec.Complete || exec.Results != 3 {
		t.Fatalf("executed entry: %+v", exec)
	}
	if exec.Fingerprint == "" || len(exec.KeywordInit) != 3 {
		t.Fatalf("executed entry lacks identity or init attribution: %+v", exec)
	}
	if !hit.CacheHit || hit.Fingerprint != exec.Fingerprint || len(hit.KeywordInit) != 0 {
		t.Fatalf("cache-hit entry: %+v", hit)
	}
	if stream.Algo != workload.AlgoAll || stream.Limits == nil || stream.Limits.MaxResults != 2 {
		t.Fatalf("stream entry: %+v", stream)
	}
	if stream.Complete || !strings.Contains(stream.StopReason, "results") {
		t.Fatalf("stream entry outcome: complete=%v stop=%q", stream.Complete, stream.StopReason)
	}
}
