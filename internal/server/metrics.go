package server

// This file is the server's bridge between per-query traces and
// process-wide metrics: every engine execution runs under an internal
// obs.Trace (whether or not the client asked to see it), and the
// trace's final summary is absorbed into a process Registry that
// GET /metricsz exports in Prometheus text format. Engine counters
// therefore increase monotonically across queries even though each
// query's trace is independent.

import (
	"net/http"
	"runtime"
	"strconv"

	"commdb/internal/delta"
	"commdb/internal/obs"
	"commdb/internal/snapshot"
)

// traceCounterMetrics maps a trace counter name to the registered
// Prometheus counter that accumulates it process-wide. Counters absent
// here (e.g. the high-water mark can_list_max) are handled separately.
var traceCounterMetrics = []struct {
	trace, metric, help string
}{
	{"dijkstra_runs", "commdb_dijkstra_runs_total", "bounded Dijkstra runs executed"},
	{"dijkstra_visits", "commdb_dijkstra_visits_total", "nodes settled across all Dijkstra runs"},
	{"dijkstra_relaxations", "commdb_dijkstra_relaxations_total", "edges examined across all Dijkstra runs"},
	{"heap_pushes", "commdb_heap_pushes_total", "priority-queue pushes across all Dijkstra runs"},
	{"heap_pops", "commdb_heap_pops_total", "priority-queue pops across all Dijkstra runs"},
	{"radius_cutoffs", "commdb_radius_cutoffs_total", "relaxations discarded by the Rmax radius bound"},
	{"neighbor_runs", "commdb_neighbor_runs_total", "Neighbor (Algorithm 2) invocations"},
	{"bestcore_scans", "commdb_bestcore_scans_total", "BestCore (Algorithm 3) table scans"},
	{"getcommunity_calls", "commdb_getcommunity_calls_total", "GetCommunity (Algorithm 4) materializations"},
	{"emitted", "commdb_communities_emitted_total", "communities emitted by the enumerators"},
	{"can_tuples", "commdb_can_tuples_total", "candidate tuples enheaped by COMM-k"},
	{"project_union_nodes", "commdb_project_union_nodes_total", "nodes gathered from inverted postings before pruning"},
	{"project_union_edges", "commdb_project_union_edges_total", "edges gathered from inverted postings before pruning"},
	{"project_nodes_kept", "commdb_project_nodes_kept_total", "nodes kept by index projection"},
	{"project_nodes_dropped", "commdb_project_nodes_dropped_total", "union nodes pruned by index projection"},
	{"project_edges_kept", "commdb_project_edges_kept_total", "edges kept by index projection"},
	{"budget_relaxations", "commdb_budget_relaxations_total", "relaxation work units charged to query budgets"},
	{"budget_neighbor_runs", "commdb_budget_neighbor_runs_total", "neighbor runs charged to query budgets"},
	{"budget_can_tuples", "commdb_budget_can_tuples_total", "can-list tuples charged to query budgets"},
	{"budget_heap_bytes", "commdb_budget_heap_bytes_total", "can-list bytes charged to query budgets"},
	{"budget_results", "commdb_budget_results_total", "results granted by query budgets"},
}

// metrics owns the process Registry and the per-trace-counter handles.
type metrics struct {
	reg        *obs.Registry
	counters   map[string]*obs.Counter // trace counter name -> process counter
	canListMax *obs.Gauge
	latency    *obs.Histogram
}

// newMetrics builds the registry: engine counters fed by trace
// absorption, serving gauges/counters read live from the server's
// stats, and the query-latency histogram.
func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg, counters: make(map[string]*obs.Counter, len(traceCounterMetrics))}
	for _, tc := range traceCounterMetrics {
		m.counters[tc.trace] = reg.Counter(tc.metric, tc.help)
	}
	m.canListMax = reg.Gauge("commdb_can_list_max", "largest COMM-k can-list seen in any query")
	m.latency = reg.Histogram("commdb_query_latency_ms", "engine execution latency in milliseconds", latencyBucketsMS[:])

	reg.CounterFunc("commdb_queries_started_total", "engine executions begun",
		s.stats.queriesStarted.Load)
	reg.CounterFunc("commdb_queries_completed_total", "engine executions finished",
		s.stats.queriesCompleted.Load)
	reg.GaugeFunc("commdb_queries_in_flight", "engine executions currently running",
		func() float64 { return float64(s.stats.queriesStarted.Load() - s.stats.queriesCompleted.Load()) })
	reg.CounterFunc("commdb_streams_started_total", "streaming (all) requests admitted",
		s.stats.streamsStarted.Load)
	reg.CounterFunc("commdb_cache_hits_total", "top-k result cache hits (semantic hits included)",
		func() int64 { return s.cache.Stats().Hits })
	reg.CounterFunc("commdb_cache_semantic_hits_total", "top-k result cache hits served by downfiltering a larger-radius answer",
		func() int64 { return s.cache.Stats().SemanticHits })
	reg.CounterFunc("commdb_cache_misses_total", "top-k result cache misses",
		func() int64 { return s.cache.Stats().Misses })
	reg.GaugeFunc("commdb_cache_entries", "top-k result cache resident entries",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("commdb_cache_bytes", "top-k result cache resident bytes",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.CounterFunc("commdb_singleflight_shared_total", "requests coalesced onto an in-flight identical query",
		s.flights.joins.Load)
	reg.CounterFunc("commdb_admission_rejections_total", "requests rejected with 429",
		s.stats.admissionRejections.Load)
	reg.GaugeFunc("commdb_admission_waiting", "requests queued for an execution slot",
		func() float64 { return float64(s.adm.waiting.Load()) })
	reg.CounterFunc("commdb_result_limit_stops_total", "queries stopped by their max_results limit (ordinary bounded-stream completion)",
		s.stats.resultLimitStops.Load)
	reg.CounterFunc("commdb_budget_exhausted_total", "queries stopped by a work budget or deadline",
		s.stats.budgetExhausted.Load)
	reg.CounterFunc("commdb_canceled_total", "queries stopped by cancellation or shutdown",
		s.stats.canceled.Load)
	// The continuous layer: the SLO breach counter, capture occupancy,
	// and the labeled per-class families.
	s.collector.Register(reg)
	// The workload flight recorder: per-keyword init attribution and
	// journal counters.
	s.wl.Register(reg)
	// The memory ledger, gauge-shaped: per-component bytes from the
	// exact accounting (/debug/memz is the same numbers as a tree).
	// Component footprints are Once-cached on the immutable artifacts,
	// so each scrape costs lease acquire/release plus atomic loads.
	reg.GaugeFunc("commdb_mem_total_bytes", "accounted retained bytes across all components (epochs, result cache, delta maintainer)",
		func() float64 { return float64(s.memorySnapshot().TotalBytes) })
	reg.GaugeFunc("commdb_mem_graph_bytes", "serving engine's graph artifact bytes (CSR arrays, labels, term dictionary)",
		func() float64 {
			if g, ok := s.servingFootprint().Find("graph"); ok {
				return float64(g.Bytes)
			}
			return 0
		})
	reg.GaugeFunc("commdb_mem_index_bytes", "serving engine's community index bytes (postings, distance sidecar)",
		func() float64 {
			if ix, ok := s.servingFootprint().Find("index"); ok {
				return float64(ix.Bytes)
			}
			return 0
		})
	reg.GaugeFunc("commdb_mem_fulltext_bytes", "serving engine's fulltext posting bytes (invertedN, standalone or inside the index)",
		func() float64 {
			if ft, ok := s.servingFootprint().Find("invertedN"); ok {
				return float64(ft.Bytes)
			}
			return 0
		})
	reg.GaugeFunc("commdb_mem_result_cache_bytes", "top-k result cache resident bytes (the accounting view of commdb_cache_bytes)",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	reg.GaugeFunc("commdb_mem_heap_alloc_bytes", "runtime heap bytes in live objects",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("commdb_mem_heap_sys_bytes", "runtime heap bytes obtained from the OS",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapSys)
		})
	if snaps := s.snaps; snaps != nil {
		reg.GaugeFunc("commdb_mem_epochs_live", "snapshot epochs held in memory (2 during a probation window)",
			func() float64 {
				ls := snaps.LiveEpochs()
				for _, l := range ls {
					l.Release()
				}
				return float64(len(ls))
			})
		reg.LabeledGaugeFunc("commdb_mem_epoch_bytes", "retained artifact bytes per live snapshot epoch",
			func() []obs.LabeledSample {
				ls := snaps.LiveEpochs()
				out := make([]obs.LabeledSample, 0, len(ls))
				for _, l := range ls {
					out = append(out, obs.LabeledSample{
						Labels: []obs.Label{{Name: "epoch", Value: strconv.FormatInt(l.Epoch(), 10)}},
						Value:  float64(l.Searcher().Footprint().Bytes),
					})
					l.Release()
				}
				return out
			})
	}
	if dm := s.cfg.DeltaMem; dm != nil {
		reg.GaugeFunc("commdb_mem_delta_bytes", "incremental maintainer's artifact bytes (staging graph + index)",
			func() float64 { return float64(dm().Bytes) })
	}
	if snaps := s.snaps; snaps != nil {
		reg.GaugeFunc("commdb_epoch", "serving snapshot epoch",
			func() float64 { return float64(snaps.Current()) })
		// Fixed outcome order (including zero-valued series) so scrapes
		// are deterministic and dashboards see every outcome from boot.
		reg.LabeledCounterFunc("commdb_reload_total", "snapshot reload attempts by outcome",
			func() []obs.LabeledSample {
				counts := snaps.Counts()
				out := make([]obs.LabeledSample, 0, len(snapshot.Outcomes))
				for _, o := range snapshot.Outcomes {
					out = append(out, obs.LabeledSample{
						Labels: []obs.Label{{Name: "outcome", Value: o}},
						Value:  float64(counts[o]),
					})
				}
				return out
			})
	}
	if deltas := s.cfg.Deltas; deltas != nil {
		// Fixed kind order (including zero-valued series), mirroring
		// commdb_reload_total's outcome handling.
		reg.LabeledCounterFunc("commdb_delta_applied_total", "mutation ops applied by the incremental maintainer, by kind",
			func() []obs.LabeledSample {
				st := deltas()
				out := make([]obs.LabeledSample, 0, len(delta.Kinds))
				for _, k := range delta.Kinds {
					out = append(out, obs.LabeledSample{
						Labels: []obs.Label{{Name: "kind", Value: k}},
						Value:  float64(st.Applied[k]),
					})
				}
				return out
			})
		reg.CounterFunc("commdb_delta_batches_total", "mutation batches applied by the incremental maintainer",
			func() int64 { return deltas().Batches })
		reg.CounterFunc("commdb_delta_rejected_total", "mutation ops rejected by the incremental maintainer",
			func() int64 { return deltas().Rejected })
		reg.CounterFunc("commdb_delta_full_rebuilds_total", "batches that took the full-rebuild path (structural ops)",
			func() int64 { return deltas().FullRebuilds })
		reg.CounterFunc("commdb_delta_partial_fallbacks_total", "batches rescued by a full build after a partial-rebuild invariant failure",
			func() int64 { return deltas().PartialFallbacks })
		reg.CounterFunc("commdb_delta_republishes_total", "artifact republishes triggered by applied batches",
			func() int64 { return deltas().Republishes })
		reg.GaugeFunc("commdb_delta_dirty_terms", "index terms recomputed by the last delta batch (dirty set size)",
			func() float64 {
				if lb := deltas().LastBatch; lb != nil {
					return float64(lb.DirtyTerms)
				}
				return 0
			})
		reg.GaugeFunc("commdb_delta_total_terms", "index terms at the last delta batch (dirty-set denominator)",
			func() float64 {
				if lb := deltas().LastBatch; lb != nil {
					return float64(lb.TotalTerms)
				}
				return 0
			})
		reg.GaugeFunc("commdb_delta_apply_ms", "wall time of the last delta batch apply",
			func() float64 {
				if lb := deltas().LastBatch; lb != nil {
					return lb.ApplyMS
				}
				return 0
			})
		reg.GaugeFunc("commdb_delta_full_build_ms", "wall time of the initial from-scratch build, the delta apply's reference point",
			func() float64 { return deltas().FullBuildMS })
	}
	return m
}

// absorb folds one finished query trace into the process counters.
func (m *metrics) absorb(sum *obs.Summary) {
	if sum == nil {
		return
	}
	for name, v := range sum.Counters {
		if name == "can_list_max" {
			m.canListMax.SetMax(v)
			continue
		}
		if c, ok := m.counters[name]; ok {
			c.Add(v)
		}
	}
	m.latency.Observe(sum.TotalMS)
}

// handleMetricsz answers GET /metricsz with the Prometheus text
// exposition of the process registry.
func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}
