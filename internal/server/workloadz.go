package server

// GET /debug/workloadz is the flight recorder's read side: the full
// hot-keyword and query-class attribution tables plus the journal's
// counters when durable recording is on. Where /debug/queries answers
// "what were the slowest queries", workloadz answers "which keywords
// is this workload paying engine-init for" — the ranking a keyword
// warm-up or semantic cache would feed on.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"commdb"
	"commdb/internal/obs"
	"commdb/internal/workload"
)

// workloadzTopN bounds the table rows one /debug/workloadz response
// carries.
const workloadzTopN = 50

// handleWorkloadz answers GET /debug/workloadz: a human-readable table
// by default, the machine-readable snapshot with ?format=json. The
// JSON form is the contract automation consumes (the kwcache warmer,
// the CI workload smoke test); anything else in the format parameter
// is rejected rather than silently served as text.
func (s *Server) handleWorkloadz(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "json":
		writeJSON(w, http.StatusOK, s.wl.Snapshot(workloadzTopN))
	case "", "text":
		snap := s.wl.Snapshot(workloadzTopN)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "workload: %d observed, %d cache-absorbed, %d keywords tracked (%d evicted)\n\n",
			snap.Observed, snap.CacheAbsorbed, snap.TrackedKeywords, snap.EvictedKeywords)
		fmt.Fprintf(w, "%-24s %10s %10s %10s %12s %12s\n",
			"TERM", "QUERIES", "CACHEHITS", "INITRUNS", "INITVISITS", "INITWALLMS")
		for _, ks := range snap.HotKeywords {
			fmt.Fprintf(w, "%-24s %10d %10d %10d %12d %12.2f\n",
				ks.Term, ks.Queries, ks.CacheHits, ks.InitRuns, ks.InitVisits, ks.InitWallMS)
		}
		fmt.Fprintf(w, "\n%-24s %10s %10s %10s %12s %12s %12s\n",
			"CLASS", "QUERIES", "CACHEHITS", "RESULTS", "TOTALMS", "INITMS", "SHAREDMS")
		for _, cs := range snap.Classes {
			fmt.Fprintf(w, "%-24s %10d %10d %10d %12.2f %12.2f %12.2f\n",
				cs.Class, cs.Queries, cs.CacheHits, cs.Results, cs.TotalMS, cs.InitMS, cs.SharedInitMS)
		}
		if j := snap.Journal; j != nil {
			fmt.Fprintf(w, "\njournal: %s — %d records, %d sampled out, %d rotations, %d bytes\n",
				j.Path, j.Records, j.SampledOut, j.Rotations, j.Bytes)
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or text)", r.URL.Query().Get("format"))
	}
}

// costWord renders a cost function in its wire spelling.
func costWord(c commdb.CostFunction) string {
	if c == commdb.CostMaxDistance {
		return "max"
	}
	return "sum"
}

// entryLimits converts effective (clamped) engine limits to the
// journal's wire form; nil when no limit is set.
func entryLimits(l commdb.Limits) *workload.Limits {
	wl := workload.Limits{
		TimeoutMS:       l.Timeout.Milliseconds(),
		MaxRelaxations:  l.MaxRelaxations,
		MaxNeighborRuns: l.MaxNeighborRuns,
		MaxCanTuples:    l.MaxCanTuples,
		MaxHeapBytes:    l.MaxHeapBytes,
		MaxResults:      l.MaxResults,
	}
	if wl.IsZero() {
		return nil
	}
	return &wl
}

// observeWorkload feeds one executed query into the workload tracker:
// attribution tables always, the journal when recording is on. The
// epoch rides the trace's label (set only under hot reload).
func (s *Server) observeWorkload(rec *obs.QueryRecord, q commdb.Query, algo string) {
	e := workload.EntryFromRecord(rec)
	e.Algo = algo
	e.Cost = costWord(q.Cost)
	e.Limits = entryLimits(q.Limits)
	if tr := rec.Trace; tr != nil {
		if ep := tr.Labels["epoch"]; ep != "" {
			e.Epoch, _ = strconv.ParseInt(ep, 10, 64)
		}
	}
	s.wl.Observe(e)
}

// observeCacheHit records a query the result cache absorbed: no engine
// execution and no init spend, but the hit still belongs to the
// workload — a replay that skipped it would re-run the engine work the
// cache saved. Indexedness comes from the cached execution's trace.
func (s *Server) observeCacheHit(qid string, q commdb.Query, k int, epoch int64, val *CachedAnswer, elapsed time.Duration) {
	e := workload.Entry{
		UnixMS:      time.Now().UnixMilli(),
		QueryID:     qid,
		Fingerprint: q.Fingerprint(),
		Keywords:    q.Keywords,
		Rmax:        q.Rmax,
		Cost:        costWord(q.Cost),
		Algo:        workload.AlgoTopK,
		K:           k,
		Limits:      entryLimits(q.Limits),
		Epoch:       epoch,
		CacheHit:    true,
		Results:     len(val.Records),
		Complete:    val.Complete,
		StopReason:  val.Reason,
		LatencyMS:   float64(elapsed) / float64(time.Millisecond),
	}
	if val.Trace != nil {
		e.Indexed = val.Trace.Labels["projected"] == "true"
	}
	s.wl.Observe(e)
}
