package server

// GET /debug/workloadz is the flight recorder's read side: the full
// hot-keyword and query-class attribution tables plus the journal's
// counters when durable recording is on. Where /debug/queries answers
// "what were the slowest queries", workloadz answers "which keywords
// is this workload paying engine-init for" — the ranking a keyword
// warm-up or semantic cache would feed on.

import (
	"net/http"
	"strconv"
	"time"

	"commdb"
	"commdb/internal/obs"
	"commdb/internal/workload"
)

// workloadzTopN bounds the table rows one /debug/workloadz response
// carries.
const workloadzTopN = 50

// handleWorkloadz answers GET /debug/workloadz.
func (s *Server) handleWorkloadz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.wl.Snapshot(workloadzTopN))
}

// costWord renders a cost function in its wire spelling.
func costWord(c commdb.CostFunction) string {
	if c == commdb.CostMaxDistance {
		return "max"
	}
	return "sum"
}

// entryLimits converts effective (clamped) engine limits to the
// journal's wire form; nil when no limit is set.
func entryLimits(l commdb.Limits) *workload.Limits {
	wl := workload.Limits{
		TimeoutMS:       l.Timeout.Milliseconds(),
		MaxRelaxations:  l.MaxRelaxations,
		MaxNeighborRuns: l.MaxNeighborRuns,
		MaxCanTuples:    l.MaxCanTuples,
		MaxHeapBytes:    l.MaxHeapBytes,
		MaxResults:      l.MaxResults,
	}
	if wl.IsZero() {
		return nil
	}
	return &wl
}

// observeWorkload feeds one executed query into the workload tracker:
// attribution tables always, the journal when recording is on. The
// epoch rides the trace's label (set only under hot reload).
func (s *Server) observeWorkload(rec *obs.QueryRecord, q commdb.Query, algo string) {
	e := workload.EntryFromRecord(rec)
	e.Algo = algo
	e.Cost = costWord(q.Cost)
	e.Limits = entryLimits(q.Limits)
	if tr := rec.Trace; tr != nil {
		if ep := tr.Labels["epoch"]; ep != "" {
			e.Epoch, _ = strconv.ParseInt(ep, 10, 64)
		}
	}
	s.wl.Observe(e)
}

// observeCacheHit records a query the result cache absorbed: no engine
// execution and no init spend, but the hit still belongs to the
// workload — a replay that skipped it would re-run the engine work the
// cache saved. Indexedness comes from the cached execution's trace.
func (s *Server) observeCacheHit(qid string, q commdb.Query, k int, epoch int64, val *cacheValue, elapsed time.Duration) {
	e := workload.Entry{
		UnixMS:      time.Now().UnixMilli(),
		QueryID:     qid,
		Fingerprint: q.Fingerprint(),
		Keywords:    q.Keywords,
		Rmax:        q.Rmax,
		Cost:        costWord(q.Cost),
		Algo:        workload.AlgoTopK,
		K:           k,
		Limits:      entryLimits(q.Limits),
		Epoch:       epoch,
		CacheHit:    true,
		Results:     len(val.records),
		Complete:    val.complete,
		StopReason:  val.reason,
		LatencyMS:   float64(elapsed) / float64(time.Millisecond),
	}
	if val.trace != nil {
		e.Indexed = val.trace.Labels["projected"] == "true"
	}
	s.wl.Observe(e)
}
