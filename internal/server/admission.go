package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrSaturated is returned by admission when the worker pool and its
// wait queue are both full, or a queued request waited past the
// configured bound. Handlers translate it to 429 with Retry-After.
var ErrSaturated = errors.New("commserve: saturated: worker pool and wait queue full")

// admission is a bounded worker pool with a bounded wait queue — the
// server's backpressure valve. At most `workers` queries execute
// concurrently; at most `queue` more wait for a slot; everything beyond
// that is rejected immediately so overload surfaces as fast 429s
// instead of unbounded queueing and collapse.
type admission struct {
	workers chan struct{} // one token per concurrent execution slot
	waiters chan struct{} // one token per request allowed to wait
	maxWait time.Duration // longest a request may wait for a slot
	waiting atomic.Int64  // requests currently queued (observability)
}

func newAdmission(workers, queue int, maxWait time.Duration) *admission {
	return &admission{
		workers: make(chan struct{}, workers),
		waiters: make(chan struct{}, queue),
		maxWait: maxWait,
	}
}

// acquire claims an execution slot, waiting in the bounded queue when
// the pool is busy. It returns ErrSaturated when the queue is full or
// the wait bound elapses, and the context error when ctx ends first
// (client gone or server shutting down).
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a free execution slot needs no queue token.
	select {
	case a.workers <- struct{}{}:
		return nil
	default:
	}
	select {
	case a.waiters <- struct{}{}:
	default:
		return ErrSaturated
	}
	a.waiting.Add(1)
	defer func() {
		a.waiting.Add(-1)
		<-a.waiters
	}()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.workers <- struct{}{}:
		return nil
	case <-timer.C:
		return ErrSaturated
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// release returns an execution slot claimed by acquire.
func (a *admission) release() { <-a.workers }
