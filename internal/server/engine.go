package server

import (
	"context"

	"commdb"
	"commdb/internal/prof"
)

// Stream is the iterator surface the server consumes: commdb's
// Results iterator satisfies it. Next yields communities until the
// query is exhausted or stopped early; Err then reports why it stopped
// (nil after a clean exhaustion). Close releases the query's resources
// — with a parallel searcher a stream abandoned before exhaustion
// (top-k reached k, client gone) still has materialization workers
// running, so every handler must Close its stream.
type Stream interface {
	Next() (*commdb.Community, bool)
	Err() error
	Close() error
}

// Engine is the query surface the server serves. The production engine
// wraps a *commdb.Searcher; tests substitute controllable fakes to
// exercise serving behavior (slow streams, saturation, draining)
// without large graphs.
type Engine interface {
	// All starts a COMM-all enumeration bound to ctx.
	All(ctx context.Context, q commdb.Query) (Stream, error)
	// TopK starts a COMM-k enumeration bound to ctx.
	TopK(ctx context.Context, q commdb.Query) (Stream, error)
	// Graph returns the searched graph, or nil when the engine has no
	// materialized graph (labels are then omitted from responses).
	Graph() *commdb.Graph
}

// searcherEngine adapts a *commdb.Searcher to the Engine interface.
type searcherEngine struct {
	s *commdb.Searcher
}

func (e searcherEngine) All(ctx context.Context, q commdb.Query) (Stream, error) {
	return e.s.AllCtx(ctx, q)
}

func (e searcherEngine) TopK(ctx context.Context, q commdb.Query) (Stream, error) {
	return e.s.TopKCtx(ctx, q)
}

func (e searcherEngine) Graph() *commdb.Graph { return e.s.Graph() }

// Footprint satisfies the server's optional footprinter interface, so
// /debug/memz and the memory gauges can account the production
// engine's retained artifacts. Fake test engines simply lack it.
func (e searcherEngine) Footprint() prof.Footprint { return e.s.Footprint() }
