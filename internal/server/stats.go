package server

import (
	"encoding/json"
	"math"
	"sync/atomic"
	"time"

	"commdb/internal/delta"
	"commdb/internal/obs"
	"commdb/internal/snapshot"
	"commdb/internal/workload"
)

// latencyBucketsMS are the histogram's upper bounds in milliseconds;
// the final implicit bucket is +Inf.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// stats holds the server's counters. All fields are atomics so the hot
// path never takes a lock.
type stats struct {
	queriesStarted      atomic.Int64 // engine executions begun
	queriesCompleted    atomic.Int64 // engine executions finished (any outcome)
	streamsStarted      atomic.Int64 // streaming (all) requests admitted
	admissionRejections atomic.Int64 // 429s issued
	// resultLimitStops counts queries stopped by their result-count
	// limit — ordinary completion of a bounded stream, not resource
	// pressure. Kept apart from budgetExhausted: conflating the two
	// once made a healthy serve bench read as 98% budget-tripped.
	resultLimitStops atomic.Int64
	budgetExhausted  atomic.Int64 // queries stopped by a work budget or deadline
	canceled         atomic.Int64 // queries stopped by cancellation/shutdown

	latCount atomic.Int64
	latSumUS atomic.Int64 // microseconds, for the mean
	latHist  [len(latencyBucketsMS) + 1]atomic.Int64
}

// observeLatency records one completed query execution.
func (s *stats) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	s.latHist[i].Add(1)
	s.latCount.Add(1)
	s.latSumUS.Add(d.Microseconds())
}

// BucketBound is a histogram bucket's inclusive upper bound in
// milliseconds. JSON has no infinity literal, so the unbounded last
// bucket marshals as the string "+Inf" (the Prometheus spelling) —
// previously it was encoded as 0, which is indistinguishable from a
// real zero bound.
type BucketBound float64

// MarshalJSON encodes finite bounds as numbers and +Inf as "+Inf".
func (b BucketBound) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(b), 1) {
		return []byte(`"+Inf"`), nil
	}
	return json.Marshal(float64(b))
}

// UnmarshalJSON accepts a number, the "+Inf" sentinel, and — for
// compatibility with snapshots from before the sentinel — treats the
// ambiguous 0 as +Inf (no finite bucket bound is 0).
func (b *BucketBound) UnmarshalJSON(data []byte) error {
	if string(data) == `"+Inf"` {
		*b = BucketBound(math.Inf(1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	if f == 0 {
		f = math.Inf(1)
	}
	*b = BucketBound(f)
	return nil
}

// LatencyBucket is one histogram bucket in a snapshot.
type LatencyBucket struct {
	// LE is the bucket's inclusive upper bound in milliseconds; the
	// last bucket is unbounded and encodes as "+Inf".
	LE    BucketBound `json:"le_ms"`
	Count int64       `json:"count"`
}

// StatsSnapshot is the JSON body of GET /statsz.
type StatsSnapshot struct {
	QueriesStarted   int64 `json:"queries_started"`
	QueriesCompleted int64 `json:"queries_completed"`
	QueriesInFlight  int64 `json:"queries_in_flight"`
	StreamsStarted   int64 `json:"streams_started"`
	CacheHits        int64 `json:"cache_hits"`
	// CacheSemanticHits counts the subset of CacheHits served by the
	// semantic tier: a same-keyword answer cached at a larger radius
	// (or larger k) downfiltered to this request, byte-identical to a
	// live run. Always 0 under the exact cache.
	CacheSemanticHits   int64 `json:"cache_semantic_hits"`
	CacheMisses         int64 `json:"cache_misses"`
	CacheEntries        int   `json:"cache_entries"`
	CacheBytes          int64 `json:"cache_bytes"`
	SingleflightShared  int64 `json:"singleflight_shared"`
	AdmissionRejections int64 `json:"admission_rejections"`
	AdmissionWaiting    int64 `json:"admission_waiting"`
	// ResultLimitStops counts queries stopped by their max_results
	// limit (ordinary bounded-stream completion); BudgetExhausted
	// counts stops by a work budget (relaxations, neighbor runs, can
	// tuples, heap bytes) or a deadline. Former releases reported both
	// as a single budget_trips counter.
	ResultLimitStops int64 `json:"result_limit_stops"`
	BudgetExhausted  int64 `json:"budget_exhausted"`
	Canceled         int64 `json:"canceled"`

	// Continuous-layer counters: capture ring occupancy and the
	// emission-delay SLO watchdog.
	CaptureObserved int64 `json:"capture_observed"`
	CaptureRetained int64 `json:"capture_retained"`
	SLOBreaches     int64 `json:"slo_breaches"`

	// QueryClasses are the per-class rolling aggregates (keyword-count
	// bucket × indexed/plain): window rate, latency quantiles and
	// emission-delay stats per class.
	QueryClasses []obs.ClassSnapshot `json:"query_classes,omitempty"`

	// Epochs is the snapshot subsystem's state — serving epoch, active
	// leases, probation, per-outcome reload counters — present only
	// when the server runs with hot reload enabled.
	Epochs *snapshot.Status `json:"epochs,omitempty"`

	// Deltas is the incremental maintainer's cumulative view — batches,
	// per-kind applied ops, dirty-set sizes, apply-vs-full-build times,
	// cumulative per-stage milliseconds — present only when the server
	// runs in delta mode.
	Deltas *delta.Stats `json:"deltas,omitempty"`

	// Memory is the retained-artifact ledger, the same snapshot
	// GET /debug/memz serves: per-epoch footprints under hot reload,
	// the result cache, the delta maintainer, and the runtime heap
	// view.
	Memory *MemorySnapshot `json:"memory,omitempty"`

	// Workload is the flight recorder's view: hot-keyword and
	// query-class attribution tables (top rows only; /debug/workloadz
	// has the full tables) plus journal counters when recording is on.
	Workload *workload.Snapshot `json:"workload,omitempty"`

	Latency struct {
		Count   int64           `json:"count"`
		MeanMS  float64         `json:"mean_ms"`
		P50MS   float64         `json:"p50_ms"`
		P95MS   float64         `json:"p95_ms"`
		P99MS   float64         `json:"p99_ms"`
		Buckets []LatencyBucket `json:"buckets"`
	} `json:"query_latency"`
}

// snapshot captures every counter. The in-flight gauge is derived, so
// a concurrent completion can transiently read as still in flight —
// fine for monitoring.
func (s *stats) snapshot() StatsSnapshot {
	var out StatsSnapshot
	out.QueriesStarted = s.queriesStarted.Load()
	out.QueriesCompleted = s.queriesCompleted.Load()
	out.QueriesInFlight = out.QueriesStarted - out.QueriesCompleted
	out.StreamsStarted = s.streamsStarted.Load()
	out.AdmissionRejections = s.admissionRejections.Load()
	out.ResultLimitStops = s.resultLimitStops.Load()
	out.BudgetExhausted = s.budgetExhausted.Load()
	out.Canceled = s.canceled.Load()

	counts := make([]int64, len(s.latHist))
	var total int64
	for i := range s.latHist {
		counts[i] = s.latHist[i].Load()
		total += counts[i]
	}
	out.Latency.Count = s.latCount.Load()
	if out.Latency.Count > 0 {
		out.Latency.MeanMS = float64(s.latSumUS.Load()) / 1000 / float64(out.Latency.Count)
	}
	out.Latency.P50MS = histQuantile(counts, total, 0.50)
	out.Latency.P95MS = histQuantile(counts, total, 0.95)
	out.Latency.P99MS = histQuantile(counts, total, 0.99)
	out.Latency.Buckets = make([]LatencyBucket, len(counts))
	for i, c := range counts {
		le := math.Inf(1)
		if i < len(latencyBucketsMS) {
			le = latencyBucketsMS[i]
		}
		out.Latency.Buckets[i] = LatencyBucket{LE: BucketBound(le), Count: c}
	}
	return out
}

// histQuantile estimates a quantile from bucket counts by linear
// interpolation within the containing bucket (the final +Inf bucket
// reports its lower bound).
func histQuantile(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = latencyBucketsMS[i-1]
			}
			if i >= len(latencyBucketsMS) {
				return lo
			}
			hi := latencyBucketsMS[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return latencyBucketsMS[len(latencyBucketsMS)-1]
}
