package server

import (
	"fmt"
	"testing"
	"time"

	"commdb"
)

func recordsOfSize(n int) []CommunityRecord {
	out := make([]CommunityRecord, n)
	for i := range out {
		out[i] = CommunityRecord{Type: RecordCommunity, Rank: i + 1, Core: []commdb.NodeID{1, 2}}
	}
	return out
}

// TestLRUEntryBound: inserting past the entry bound evicts the least
// recently used key, and Get refreshes recency.
func TestLRUEntryBound(t *testing.T) {
	c := newLRUCache(2, 0)
	put := func(key string) {
		recs := recordsOfSize(1)
		c.Put(key, &CachedAnswer{Records: recs, Complete: true, Bytes: sizeOf(recs)})
	}
	put("a")
	put("b")
	if _, ok := c.Get("a"); !ok { // refresh "a": "b" is now LRU
		t.Fatal("a missing before any eviction")
	}
	put("c")
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

// TestLRUByteBound: the byte bound evicts independently of the entry
// bound, and an answer larger than the whole bound is not cached.
func TestLRUByteBound(t *testing.T) {
	unit := sizeOf(recordsOfSize(1))
	c := newLRUCache(100, 3*unit)
	for i := 0; i < 4; i++ {
		recs := recordsOfSize(1)
		c.Put(fmt.Sprint(i), &CachedAnswer{Records: recs, Bytes: sizeOf(recs)})
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3 under the byte bound", c.Len())
	}
	if _, ok := c.Get("0"); ok {
		t.Fatal("oldest entry survived byte-bound eviction")
	}
	if c.Bytes() > 3*unit {
		t.Fatalf("bytes = %d exceeds bound %d", c.Bytes(), 3*unit)
	}

	huge := recordsOfSize(1000)
	c.Put("huge", &CachedAnswer{Records: huge, Bytes: sizeOf(huge)})
	if _, ok := c.Get("huge"); ok {
		t.Fatal("an answer larger than the byte bound was cached")
	}
}

// TestLRUDisabled: a negative entry bound disables the cache entirely.
func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(-1, 0)
	recs := recordsOfSize(1)
	c.Put("a", &CachedAnswer{Records: recs, Bytes: sizeOf(recs)})
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

// TestClampLimits: request limits are capped field-by-field, unlimited
// requests are pulled down to the maxima, and unset maxima pass the
// request through.
func TestClampLimits(t *testing.T) {
	max := commdb.Limits{Timeout: time.Second, MaxRelaxations: 1000, MaxResults: 10}
	cases := []struct {
		name string
		req  commdb.Limits
		want commdb.Limits
	}{
		{"unlimited request clamps to maxima",
			commdb.Limits{},
			commdb.Limits{Timeout: time.Second, MaxRelaxations: 1000, MaxResults: 10}},
		{"over-ask clamps down",
			commdb.Limits{Timeout: time.Hour, MaxRelaxations: 1 << 40, MaxResults: 99, MaxCanTuples: 7},
			commdb.Limits{Timeout: time.Second, MaxRelaxations: 1000, MaxResults: 10, MaxCanTuples: 7}},
		{"tighter request passes through",
			commdb.Limits{Timeout: time.Millisecond, MaxRelaxations: 5, MaxResults: 1},
			commdb.Limits{Timeout: time.Millisecond, MaxRelaxations: 5, MaxResults: 1}},
	}
	for _, tc := range cases {
		if got := ClampLimits(tc.req, max); got != tc.want {
			t.Errorf("%s: ClampLimits = %+v, want %+v", tc.name, got, tc.want)
		}
	}
	// No maxima: everything passes through, including unlimited.
	req := commdb.Limits{MaxResults: 3}
	if got := ClampLimits(req, commdb.Limits{}); got != req {
		t.Errorf("unclamped: got %+v, want %+v", got, req)
	}
}

// TestHistQuantile sanity-checks the histogram quantile interpolation.
func TestHistQuantile(t *testing.T) {
	var s stats
	for i := 0; i < 100; i++ {
		s.observeLatency(3 * time.Millisecond) // bucket (2, 5]
	}
	snap := s.snapshot()
	if snap.Latency.P50MS <= 2 || snap.Latency.P50MS > 5 {
		t.Fatalf("p50 = %v, want within (2, 5]", snap.Latency.P50MS)
	}
	if snap.Latency.Count != 100 {
		t.Fatalf("count = %d", snap.Latency.Count)
	}
}
