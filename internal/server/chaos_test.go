package server

// The chaos suite: a live server hot-reloading its graph+index under
// concurrent streaming traffic while a fault injector corrupts the
// load path. The invariants it proves, under -race:
//
//   - zero dropped queries: every request issued during the storm of
//     reload attempts returns a complete response with a trailer;
//   - zero cross-epoch mixing: every record of one response comes from
//     one data generation, and each epoch ID maps to exactly one
//     generation across all clients;
//   - fail-closed loading: every corrupt/truncated/panicking artifact
//     is rejected with the prior epoch still serving, visible in
//     /statsz and commdb_reload_total.
//
// The seed matrix comes from COMMDB_CHAOS_SEEDS (comma-separated
// int64s), so CI can pin seeds and a failure reproduces exactly.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"commdb"
	"commdb/internal/fault"
	"commdb/internal/obs"
	"commdb/internal/snapshot"
)

const chaosToken = "chaos-test-token"

// chaosGraph builds generation gen of the test data: a bidirectional
// ring whose node labels encode the generation ("g<gen>-n<i>"), so any
// record betrays which generation answered it.
func chaosGraph(t *testing.T, gen, n int) *commdb.Graph {
	t.Helper()
	b := commdb.NewGraphBuilder()
	ids := make([]commdb.NodeID, n)
	for i := 0; i < n; i++ {
		terms := []string{"alpha"}
		if i%2 == 0 {
			terms = append(terms, "beta")
		}
		ids[i] = b.AddNode(fmt.Sprintf("g%d-n%d", gen, i), terms...)
	}
	for i := 0; i < n; i++ {
		b.AddEdge(ids[i], ids[(i+1)%n], 1)
		b.AddEdge(ids[(i+1)%n], ids[i], 1)
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// chaosArtifacts is the on-disk pair the server reloads from.
type chaosArtifacts struct {
	graphPath, indexPath string
}

// writeGeneration atomically publishes generation gen's graph+index
// pair (temp file + rename, the same discipline cmd/indexbuild uses).
func (a chaosArtifacts) writeGeneration(t *testing.T, gen int) {
	t.Helper()
	g := chaosGraph(t, gen, 10)
	s, err := commdb.Open(g, commdb.WithIndex(4), commdb.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var gbuf, xbuf bytes.Buffer
	if err := commdb.WriteGraph(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteIndex(&xbuf); err != nil {
		t.Fatal(err)
	}
	a.publish(t, a.graphPath, gbuf.Bytes())
	a.publish(t, a.indexPath, xbuf.Bytes())
}

func (a chaosArtifacts) publish(t *testing.T, path string, data []byte) {
	t.Helper()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// corruptIndex replaces the index artifact with mutate(original).
func (a chaosArtifacts) corruptIndex(t *testing.T, mutate func([]byte) []byte) []byte {
	t.Helper()
	orig, err := os.ReadFile(a.indexPath)
	if err != nil {
		t.Fatal(err)
	}
	a.publish(t, a.indexPath, mutate(append([]byte(nil), orig...)))
	return orig
}

// generationOf extracts the data generation from a record's core
// labels ("g3-n7" → 3), or -1 when the record carries none.
func generationOf(labels []string) int {
	if len(labels) == 0 {
		return -1
	}
	head, _, ok := strings.Cut(labels[0], "-")
	if !ok || !strings.HasPrefix(head, "g") {
		return -1
	}
	gen, err := strconv.Atoi(head[1:])
	if err != nil {
		return -1
	}
	return gen
}

// epochGens records which data generation each epoch served, across
// all clients; two generations under one epoch is cross-epoch mixing.
type epochGens struct {
	mu sync.Mutex
	m  map[int64]int
}

func (eg *epochGens) note(epoch int64, gen int) error {
	eg.mu.Lock()
	defer eg.mu.Unlock()
	if prev, ok := eg.m[epoch]; ok && prev != gen {
		return fmt.Errorf("epoch %d served generations %d and %d", epoch, prev, gen)
	}
	eg.m[epoch] = gen
	return nil
}

// streamOnce runs one NDJSON query and checks intra-response epoch
// consistency; it returns the trailer's epoch and the single
// generation seen (or an error describing the violation).
func streamOnce(client *http.Client, url string) (epoch int64, gen int, err error) {
	body := bytes.NewReader([]byte(`{"keywords":["alpha","beta"],"rmax":3}`))
	resp, err := client.Post(url+"/v1/search/all", "application/json", body)
	if err != nil {
		return 0, 0, fmt.Errorf("request failed: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	gen = -2 // no record seen yet
	sawTrailer := false
	for sc.Scan() {
		var rec struct {
			Type       string   `json:"type"`
			CoreLabels []string `json:"core_labels"`
			Complete   bool     `json:"complete"`
			Epoch      int64    `json:"epoch"`
			Reason     string   `json:"reason"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return 0, 0, fmt.Errorf("bad NDJSON line: %w", err)
		}
		switch rec.Type {
		case RecordCommunity:
			g := generationOf(rec.CoreLabels)
			if g < 0 {
				return 0, 0, fmt.Errorf("record without generation labels: %v", rec.CoreLabels)
			}
			if gen == -2 {
				gen = g
			} else if g != gen {
				return 0, 0, fmt.Errorf("one stream mixed generations %d and %d", gen, g)
			}
		case RecordTrailer:
			sawTrailer = true
			epoch = rec.Epoch
			if !rec.Complete {
				return 0, 0, fmt.Errorf("incomplete stream: %s", rec.Reason)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, fmt.Errorf("stream read: %w", err)
	}
	if !sawTrailer {
		return 0, 0, fmt.Errorf("stream ended without a trailer (dropped query)")
	}
	if gen == -2 {
		return 0, 0, fmt.Errorf("stream delivered no communities")
	}
	return epoch, gen, nil
}

func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	spec := os.Getenv("COMMDB_CHAOS_SEEDS")
	if spec == "" {
		spec = "1"
	}
	var seeds []int64
	for _, f := range strings.Split(spec, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("bad COMMDB_CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

func TestChaosReloadUnderTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is slow")
	}
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runChaos(t, seed) })
	}
}

func runChaos(t *testing.T, seed int64) {
	dir := t.TempDir()
	art := chaosArtifacts{
		graphPath: filepath.Join(dir, "chaos.cdbg"),
		indexPath: filepath.Join(dir, "chaos.cdbx"),
	}
	art.writeGeneration(t, 1)

	inj := fault.New(seed)
	loader := snapshot.GraphIndexFileLoader(art.graphPath, art.indexPath, commdb.WithParallelism(1))
	initial, err := loader(nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr := snapshot.New(initial, snapshot.Config{
		Load:    loader,
		Fault:   inj,
		Retries: 2,
		Backoff: time.Millisecond,
		// Short probation so epochs commit under test-scale traffic; the
		// engine is healthy, so no rollback should ever trigger here.
		Probation: 3,
		Logf:      t.Logf,
	})
	srv := New(initial, Config{
		MaxConcurrent: 8,
		MaxQueue:      64,
		Snapshots:     mgr,
		AdminToken:    chaosToken,
		// The watchdog is exercised by its own tests; under -race on a
		// loaded runner its jitter heuristics would add nondeterminism.
		Obs: obs.CollectorConfig{Watchdog: obs.WatchdogConfig{Disabled: true}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Concurrent streaming clients: run until told to stop, verifying
	// every response end-to-end.
	gens := &epochGens{m: map[int64]int{}}
	stop := make(chan struct{})
	var clients sync.WaitGroup
	var mu sync.Mutex
	var clientErrs []error
	completed := 0
	for c := 0; c < 3; c++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				epoch, gen, err := streamOnce(client, ts.URL)
				if err == nil {
					err = gens.note(epoch, gen)
				}
				mu.Lock()
				if err != nil {
					clientErrs = append(clientErrs, err)
				} else {
					completed++
				}
				mu.Unlock()
			}
		}()
	}

	adminReload := func() (int, ReloadResponse) {
		req, err := http.NewRequest("POST", ts.URL+"/admin/reload", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+chaosToken)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rr ReloadResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rr
	}

	// The scenario matrix. Each cycle publishes a fresh generation then
	// attacks the reload path every way the fault layer knows; every
	// fault must leave the serving epoch untouched.
	nextGen := 2
	faultAttempts, wantSuccess := 0, 0
	cycles := 3
	for cycle := 0; cycle < cycles; cycle++ {
		// 1. Clean reload of the next generation.
		art.writeGeneration(t, nextGen)
		status, rr := adminReload()
		if status != http.StatusOK || rr.Outcome != snapshot.OutcomeSuccess {
			t.Fatalf("cycle %d clean reload: status %d outcome %s err %s", cycle, status, rr.Outcome, rr.Error)
		}
		wantSuccess++
		nextGen++

		// 2. Index read truncated mid-stream: fail-closed, no retry. No
		// SkipOps: the artifact is small enough to arrive in one buffered
		// read, so the fault must hit op 0 to bite.
		inj.Arm(fault.PointIndexRead, fault.Plan{Mode: fault.ShortRead, Fires: 99})
		expectRejected(t, adminReload, mgr, "short index read")
		inj.Disarm(fault.PointIndexRead)
		faultAttempts++

		// 3. A flipped bit anywhere in the index artifact.
		inj.Arm(fault.PointIndexRead, fault.Plan{Mode: fault.BitFlip, Fires: 99})
		expectRejected(t, adminReload, mgr, "bit-flipped index read")
		inj.Disarm(fault.PointIndexRead)
		faultAttempts++

		// 4. The loader panics outright.
		inj.Arm(fault.PointLoad, fault.Plan{Mode: fault.Panic})
		expectRejected(t, adminReload, mgr, "load panic")
		inj.Disarm(fault.PointLoad)
		faultAttempts++

		// 5. Graph read truncated.
		inj.Arm(fault.PointGraphRead, fault.Plan{Mode: fault.ShortRead, Fires: 99})
		expectRejected(t, adminReload, mgr, "short graph read")
		inj.Disarm(fault.PointGraphRead)
		faultAttempts++

		// 6. Truncated artifact on disk (torn write that skipped the
		// atomic-rename discipline).
		orig := art.corruptIndex(t, func(b []byte) []byte { return b[:len(b)*2/3] })
		expectRejected(t, adminReload, mgr, "truncated artifact")
		art.publish(t, art.indexPath, orig)
		faultAttempts++

		// 7. Garbage artifact on disk.
		orig = art.corruptIndex(t, func([]byte) []byte { return []byte("not an index at all") })
		expectRejected(t, adminReload, mgr, "garbage artifact")
		art.publish(t, art.indexPath, orig)
		faultAttempts++

		// 8. A transient error that heals within the retry budget: the
		// reload must succeed without operator involvement.
		art.writeGeneration(t, nextGen)
		inj.Arm(fault.PointLoad, fault.Plan{Mode: fault.Error, Fires: 1})
		status, rr = adminReload()
		if status != http.StatusOK || rr.Outcome != snapshot.OutcomeSuccess {
			t.Fatalf("cycle %d transient reload: status %d outcome %s err %s", cycle, status, rr.Outcome, rr.Error)
		}
		inj.Disarm(fault.PointLoad)
		wantSuccess++
		nextGen++
		faultAttempts++

		// 9. Slow I/O: reload succeeds, just late; queries keep flowing
		// on the old epoch while the load crawls.
		art.writeGeneration(t, nextGen)
		inj.Arm(fault.PointIndexRead, fault.Plan{Mode: fault.SlowIO, Delay: 2 * time.Millisecond, Fires: 3})
		status, rr = adminReload()
		if status != http.StatusOK || rr.Outcome != snapshot.OutcomeSuccess {
			t.Fatalf("cycle %d slow reload: status %d outcome %s err %s", cycle, status, rr.Outcome, rr.Error)
		}
		inj.Disarm(fault.PointIndexRead)
		wantSuccess++
		nextGen++
		faultAttempts++
	}
	if faultAttempts < 20 {
		t.Fatalf("only %d injected-fault reload attempts; the acceptance bar is 20", faultAttempts)
	}

	close(stop)
	clients.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, err := range clientErrs {
		t.Errorf("client: %v", err)
	}
	if completed == 0 {
		t.Fatal("no client query completed during the chaos run")
	}
	t.Logf("chaos: %d queries completed across %d epochs, %d fault attempts, %d successful reloads",
		completed, len(gens.m), faultAttempts, wantSuccess)

	// Observability: /statsz carries the epoch block with the exact
	// outcome ledger, and commdb_reload_total exports it.
	snap := srv.Stats()
	if snap.Epochs == nil {
		t.Fatal("statsz missing epoch block")
	}
	if got := snap.Epochs.Reloads[snapshot.OutcomeSuccess]; got != int64(wantSuccess) {
		t.Errorf("success reloads = %d, want %d", got, wantSuccess)
	}
	var rejected int64
	for _, o := range []string{snapshot.OutcomeRejectedCorrupt, snapshot.OutcomeRejectedIO,
		snapshot.OutcomeRejectedPanic, snapshot.OutcomeRejectedValidation} {
		rejected += snap.Epochs.Reloads[o]
	}
	// Scenarios 2-7 are persistent faults (6 per cycle); 8 and 9 heal.
	if want := int64(6 * cycles); rejected != want {
		t.Errorf("rejected reloads = %d, want %d (%v)", rejected, want, snap.Epochs.Reloads)
	}
	if snap.Epochs.Reloads[snapshot.OutcomeRolledBack] != 0 {
		t.Errorf("unexpected rollbacks: %v", snap.Epochs.Reloads)
	}
	if snap.Epochs.Epoch != mgr.Current() || mgr.Current() != int64(1+wantSuccess) {
		t.Errorf("epoch = %d (statsz %d), want %d", mgr.Current(), snap.Epochs.Epoch, 1+wantSuccess)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var text bytes.Buffer
	if _, err := text.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf(`commdb_reload_total{outcome="success"} %d`, wantSuccess),
		fmt.Sprintf("commdb_epoch %d", mgr.Current()),
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
}

// expectRejected runs one reload that must fail closed: non-200, a
// rejection outcome, and the serving epoch unchanged.
func expectRejected(t *testing.T, reload func() (int, ReloadResponse), mgr *snapshot.Manager, what string) {
	t.Helper()
	before := mgr.Current()
	status, rr := reload()
	if status == http.StatusOK || rr.Outcome == snapshot.OutcomeSuccess {
		t.Fatalf("%s: reload accepted a faulty load (status %d outcome %s)", what, status, rr.Outcome)
	}
	if rr.Error == "" {
		t.Fatalf("%s: rejection carried no error detail", what)
	}
	if got := mgr.Current(); got != before {
		t.Fatalf("%s: serving epoch moved %d → %d on a failed reload", what, before, got)
	}
	if rr.Epoch != before {
		t.Fatalf("%s: response epoch %d, serving %d", what, rr.Epoch, before)
	}
}

// TestAdminReloadAuth locks down the admin endpoint: no token
// configured → 403 for everyone; wrong token → 401; good token → a
// reload runs.
func TestAdminReloadAuth(t *testing.T) {
	g := chaosGraph(t, 1, 8)
	s, err := commdb.Open(g, commdb.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	mgr := snapshot.New(s, snapshot.Config{
		Load: func(*fault.Injector) (*commdb.Searcher, error) {
			return commdb.Open(g, commdb.WithParallelism(1))
		},
	})

	post := func(url, token string) int {
		req, err := http.NewRequest("POST", url+"/admin/reload", nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// No token configured: endpoint is disabled outright.
	tsOff := httptest.NewServer(New(s, Config{Snapshots: mgr}).Handler())
	defer tsOff.Close()
	if got := post(tsOff.URL, "whatever"); got != http.StatusForbidden {
		t.Fatalf("tokenless server: status %d, want 403", got)
	}

	// No snapshot manager: not implemented.
	tsNoSnap := httptest.NewServer(New(s, Config{AdminToken: "tok"}).Handler())
	defer tsNoSnap.Close()
	if got := post(tsNoSnap.URL, "tok"); got != http.StatusNotImplemented {
		t.Fatalf("snapshotless server: status %d, want 501", got)
	}

	ts := httptest.NewServer(New(s, Config{Snapshots: mgr, AdminToken: "tok"}).Handler())
	defer ts.Close()
	if got := post(ts.URL, ""); got != http.StatusUnauthorized {
		t.Fatalf("missing token: status %d, want 401", got)
	}
	if got := post(ts.URL, "wrong"); got != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", got)
	}
	if got := post(ts.URL, "tok"); got != http.StatusOK {
		t.Fatalf("good token: status %d, want 200", got)
	}
	if mgr.Current() != 2 {
		t.Fatalf("epoch = %d after authorized reload, want 2", mgr.Current())
	}
}

// TestEpochConsistencyAcrossReload pins the core stream guarantee
// deterministically: a stream started on epoch 1 that is still being
// consumed when a reload lands finishes entirely on epoch 1.
func TestEpochConsistencyAcrossReload(t *testing.T) {
	art := chaosArtifacts{
		graphPath: filepath.Join(t.TempDir(), "g.cdbg"),
		indexPath: filepath.Join(t.TempDir(), "x.cdbx"),
	}
	art.writeGeneration(t, 1)
	loader := snapshot.GraphIndexFileLoader(art.graphPath, art.indexPath, commdb.WithParallelism(1))
	initial, err := loader(nil)
	if err != nil {
		t.Fatal(err)
	}
	mgr := snapshot.New(initial, snapshot.Config{Load: loader, Probation: 1})
	srv := New(initial, Config{Snapshots: mgr, AdminToken: chaosToken})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Open the stream but do not read it yet: the response is being
	// generated server-side against epoch 1.
	resp, err := http.Post(ts.URL+"/v1/search/all", "application/json",
		bytes.NewReader([]byte(`{"keywords":["alpha","beta"],"rmax":3}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Swap epochs underneath it.
	art.writeGeneration(t, 2)
	if out, err := mgr.Reload(context.Background()); err != nil || out != snapshot.OutcomeSuccess {
		t.Fatalf("reload: %s %v", out, err)
	}

	// Drain the original stream: every record must still be gen 1, and
	// its trailer epoch 1.
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec struct {
			Type       string   `json:"type"`
			CoreLabels []string `json:"core_labels"`
			Epoch      int64    `json:"epoch"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type == RecordCommunity && generationOf(rec.CoreLabels) != 1 {
			t.Fatalf("in-flight stream leaked generation %d", generationOf(rec.CoreLabels))
		}
		if rec.Type == RecordTrailer && rec.Epoch != 1 {
			t.Fatalf("in-flight stream trailer epoch %d, want 1", rec.Epoch)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// A fresh query lands on the new epoch and the new generation.
	epoch, gen, err := streamOnce(http.DefaultClient, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || gen != 2 {
		t.Fatalf("fresh query: epoch %d gen %d, want 2/2", epoch, gen)
	}
}
