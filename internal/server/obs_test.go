package server

// End-to-end tests of the observability surface: EXPLAIN mode on both
// endpoints, the /metricsz Prometheus exposition, and the /statsz
// +Inf-bucket wire format.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"commdb"
	"commdb/internal/obs"
)

// newPaperServer serves the paper's 13-node running example through a
// real searcher, so traces carry genuine engine counters.
func newPaperServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	g, _ := commdb.PaperExampleGraph()
	srv := New(commdb.NewSearcher(g), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestExplainTopK: "trace": true on the topk endpoint returns the
// structured trace alongside the results — spans, engine counters and
// per-community inter-emission delays — and bypasses the cache so the
// trace reflects a real execution.
func TestExplainTopK(t *testing.T) {
	_, ts := newPaperServer(t, Config{})

	// Prime the cache with an untraced run of the same query.
	resp := postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a", "b", "c"}, map[string]any{"k": 5}))
	if out := decodeTopK(t, resp); out.Trace != nil {
		t.Fatalf("untraced request returned a trace: %+v", out.Trace)
	}

	resp = postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a", "b", "c"}, map[string]any{"k": 5, "trace": true}))
	if qid := resp.Header.Get("X-Query-Id"); qid == "" {
		t.Fatal("missing X-Query-Id header")
	}
	out := decodeTopK(t, resp)
	if out.Cached {
		t.Fatal("trace request was served from the cache")
	}
	if len(out.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(out.Results))
	}
	tr := out.Trace
	if tr == nil {
		t.Fatal("trace request returned no trace")
	}
	if tr.QueryID == "" {
		t.Fatal("trace has no query id")
	}
	if _, ok := tr.Span("engine_init"); !ok {
		t.Fatalf("trace lacks engine_init span: %+v", tr.Spans)
	}
	if _, ok := tr.Span("enumerate"); !ok {
		t.Fatalf("trace lacks enumerate span: %+v", tr.Spans)
	}
	for _, c := range []string{"dijkstra_runs", "dijkstra_visits", "heap_pushes", "neighbor_runs", "bestcore_scans", "getcommunity_calls", "emitted", "can_tuples"} {
		if tr.Counter(c) <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, tr.Counter(c))
		}
	}
	if tr.Labels["algorithm"] != "comm_k" {
		t.Errorf("algorithm label = %q, want comm_k", tr.Labels["algorithm"])
	}
	if tr.Emissions == nil || tr.Emissions.Count != 5 || len(tr.Emissions.DelaysMS) != 5 {
		t.Fatalf("emissions = %+v, want 5 delays", tr.Emissions)
	}
}

// TestExplainAllStream: "trace": true on the streaming endpoint puts
// the trace summary in the NDJSON trailer.
func TestExplainAllStream(t *testing.T) {
	_, ts := newPaperServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/search/all", searchBody(t, []string{"a", "b", "c"}, map[string]any{"trace": true}))
	defer resp.Body.Close()
	if qid := resp.Header.Get("X-Query-Id"); qid == "" {
		t.Fatal("missing X-Query-Id header")
	}
	var trailer Trailer
	sc := bufio.NewScanner(resp.Body)
	count := 0
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if probe.Type == RecordTrailer {
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatal(err)
			}
		} else {
			count++
		}
	}
	if trailer.Type != RecordTrailer || !trailer.Complete {
		t.Fatalf("trailer = %+v", trailer)
	}
	tr := trailer.Trace
	if tr == nil {
		t.Fatal("trailer carries no trace")
	}
	if tr.Labels["algorithm"] != "comm_all" {
		t.Errorf("algorithm label = %q, want comm_all", tr.Labels["algorithm"])
	}
	if tr.Emissions == nil || tr.Emissions.Count != int64(count) {
		t.Fatalf("emissions = %+v, want count %d", tr.Emissions, count)
	}
	if tr.Counter("emitted") != int64(count) {
		t.Fatalf("emitted = %d, want %d", tr.Counter("emitted"), count)
	}
}

// TestMetricszPromLint: the exposition parses under the package's own
// Prometheus text-format lint — the same check CI runs.
func TestMetricszPromLint(t *testing.T) {
	_, ts := newPaperServer(t, Config{})
	// Generate some traffic first so histograms and counters are live.
	postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a", "b"}, nil)).Body.Close()

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.LintPrometheus(bytes.NewReader(body)); err != nil {
		t.Fatalf("lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"# TYPE commdb_dijkstra_visits_total counter",
		"# TYPE commdb_queries_started_total counter",
		"# TYPE commdb_query_latency_ms histogram",
		`commdb_query_latency_ms_bucket{le="+Inf"}`,
		"# TYPE commdb_mem_total_bytes gauge",
		"# TYPE commdb_mem_graph_bytes gauge",
		"# TYPE commdb_mem_index_bytes gauge",
		"# TYPE commdb_mem_fulltext_bytes gauge",
		"# TYPE commdb_mem_result_cache_bytes gauge",
		"# TYPE commdb_mem_heap_alloc_bytes gauge",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricszCountersIncrease: engine counters on /metricsz increase
// monotonically across queries, whether or not clients ask for traces.
func TestMetricszCountersIncrease(t *testing.T) {
	_, ts := newPaperServer(t, Config{CacheEntries: -1}) // no cache: every request executes

	scrape := func() map[string]float64 {
		resp, err := http.Get(ts.URL + "/metricsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out := map[string]float64{}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "#") || line == "" {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				continue
			}
			out[fields[0]] = v
		}
		return out
	}

	before := scrape()
	postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a", "b", "c"}, map[string]any{"k": 3})).Body.Close()
	mid := scrape()
	postJSON(t, ts.URL+"/v1/search/all", searchBody(t, []string{"a", "b"}, nil)).Body.Close()
	after := scrape()

	for _, m := range []string{
		"commdb_dijkstra_runs_total",
		"commdb_dijkstra_visits_total",
		"commdb_heap_pushes_total",
		"commdb_heap_pops_total",
		"commdb_neighbor_runs_total",
		"commdb_communities_emitted_total",
		"commdb_queries_started_total",
	} {
		if !(before[m] < mid[m] && mid[m] < after[m]) {
			t.Errorf("%s did not increase across queries: %v -> %v -> %v", m, before[m], mid[m], after[m])
		}
	}
	if mid["commdb_can_tuples_total"] <= before["commdb_can_tuples_total"] {
		t.Errorf("can_tuples did not increase over a top-k query")
	}
}

// TestStatszInfBucketWireFormat locks the /statsz histogram encoding:
// finite bucket bounds are JSON numbers and the final unbounded bucket
// is the string "+Inf" — not the old ambiguous 0.
func TestStatszInfBucketWireFormat(t *testing.T) {
	_, ts := newPaperServer(t, Config{})
	postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a", "b"}, nil)).Body.Close()

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`\{"le_ms":"\+Inf","count":\d+\}`).Match(raw) {
		t.Fatalf("statsz lacks the +Inf sentinel bucket:\n%s", raw)
	}
	if bytes.Contains(raw, []byte(`"le_ms":0`)) {
		t.Fatalf("statsz still encodes a 0 bucket bound:\n%s", raw)
	}

	// And it round-trips: the sentinel decodes back to +Inf.
	var snap StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	last := snap.Latency.Buckets[len(snap.Latency.Buckets)-1]
	if !math.IsInf(float64(last.LE), 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", last.LE)
	}
	var total int64
	for _, b := range snap.Latency.Buckets {
		total += b.Count
	}
	if total != snap.Latency.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, snap.Latency.Count)
	}
}

// TestRequestLogging: a configured slog logger receives one line per
// query carrying the same query ID the response header exposes.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newPaperServer(t, Config{Logger: logger})

	resp := postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a", "b"}, nil))
	qid := resp.Header.Get("X-Query-Id")
	resp.Body.Close()
	if qid == "" {
		t.Fatal("missing X-Query-Id")
	}
	var line struct {
		Msg      string   `json:"msg"`
		QID      string   `json:"qid"`
		Endpoint string   `json:"endpoint"`
		Keywords []string `json:"keywords"`
		Complete bool     `json:"complete"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line %q: %v", buf.String(), err)
	}
	if line.Msg != "query" || line.QID != qid || line.Endpoint != "topk" || !line.Complete {
		t.Fatalf("log line = %+v, want query %s on topk", line, qid)
	}
	if len(line.Keywords) != 2 {
		t.Fatalf("logged keywords = %v", line.Keywords)
	}
}

// TestPprofMounted: the pprof index answers only when enabled, and
// profiles are admin surface — enabling pprof without configuring an
// admin token fails closed, and a valid bearer token unlocks it.
func TestPprofMounted(t *testing.T) {
	_, off := newPaperServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served while disabled")
	}

	_, tokenless := newPaperServer(t, Config{Pprof: true})
	resp, err = http.Get(tokenless.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("pprof status = %d with no admin token, want 403 (fail closed)", resp.StatusCode)
	}

	_, on := newPaperServer(t, Config{Pprof: true, AdminToken: "tok"})
	req, _ := http.NewRequest(http.MethodGet, on.URL+"/debug/pprof/", nil)
	req.Header.Set("Authorization", "Bearer tok")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d with Pprof on + valid token, want 200", resp.StatusCode)
	}
}
