package server

// This file defines the wire types: the JSON request and record schema
// shared by the server's endpoints and cmd/commsearch -json, so CLI
// and server output are script-compatible and cross-checkable.

import (
	"errors"
	"fmt"
	"time"

	"commdb"
	"commdb/internal/obs"
)

// SearchRequest is the body of POST /v1/search/topk and
// POST /v1/search/all.
type SearchRequest struct {
	// Keywords are the l query keywords. Order and case do not matter:
	// the server normalizes the query before running it, and core
	// positions in the response follow the normalized (sorted
	// lowercase) keyword order.
	Keywords []string `json:"keywords"`
	// Rmax is the community radius.
	Rmax float64 `json:"rmax"`
	// Cost selects the ranking aggregate: "sum" (default) or "max".
	Cost string `json:"cost,omitempty"`
	// K bounds a top-k search (topk endpoint only; default 10).
	K int `json:"k,omitempty"`
	// Compact omits node and edge lists from each record, returning
	// only cores, centers and costs.
	Compact bool `json:"compact,omitempty"`
	// Limits bounds the query's resources. Every field is clamped to
	// the server's configured maxima.
	Limits LimitsSpec `json:"limits,omitempty"`
	// Trace asks for EXPLAIN mode: the response carries the query's
	// structured trace (per-stage spans, engine counters, inter-emission
	// delays). Trace requests bypass cache reads so the trace reflects a
	// real execution.
	Trace bool `json:"trace,omitempty"`
}

// LimitsSpec is the wire form of commdb.Limits: a relative timeout plus
// the resource budgets. Zero means "no request-side limit" (the
// server's clamps still apply).
type LimitsSpec struct {
	TimeoutMS       int64 `json:"timeout_ms,omitempty"`
	MaxRelaxations  int64 `json:"max_relaxations,omitempty"`
	MaxNeighborRuns int64 `json:"max_neighbor_runs,omitempty"`
	MaxCanTuples    int64 `json:"max_can_tuples,omitempty"`
	MaxHeapBytes    int64 `json:"max_heap_bytes,omitempty"`
	MaxResults      int64 `json:"max_results,omitempty"`
}

// Limits converts the wire spec to engine limits.
func (l LimitsSpec) Limits() commdb.Limits {
	return commdb.Limits{
		Timeout:         time.Duration(l.TimeoutMS) * time.Millisecond,
		MaxRelaxations:  l.MaxRelaxations,
		MaxNeighborRuns: l.MaxNeighborRuns,
		MaxCanTuples:    l.MaxCanTuples,
		MaxHeapBytes:    l.MaxHeapBytes,
		MaxResults:      l.MaxResults,
	}
}

// ClampLimits caps req to the server maxima: where a maximum is set
// (non-zero), the effective value is the tighter of the two, and an
// unlimited request (zero field) is pulled down to the maximum. Where
// no maximum is set the request passes through.
func ClampLimits(req, max commdb.Limits) commdb.Limits {
	clampI := func(r, m int64) int64 {
		if m > 0 && (r == 0 || r > m) {
			return m
		}
		return r
	}
	clampD := func(r, m time.Duration) time.Duration {
		if m > 0 && (r == 0 || r > m) {
			return m
		}
		return r
	}
	return commdb.Limits{
		Deadline:        req.Deadline, // absolute deadlines are not settable over the wire
		Timeout:         clampD(req.Timeout, max.Timeout),
		MaxRelaxations:  clampI(req.MaxRelaxations, max.MaxRelaxations),
		MaxNeighborRuns: clampI(req.MaxNeighborRuns, max.MaxNeighborRuns),
		MaxCanTuples:    clampI(req.MaxCanTuples, max.MaxCanTuples),
		MaxHeapBytes:    clampI(req.MaxHeapBytes, max.MaxHeapBytes),
		MaxResults:      clampI(req.MaxResults, max.MaxResults),
	}
}

// Query converts the request to a normalized engine query (without
// limits, which the server clamps separately).
func (r *SearchRequest) Query() (commdb.Query, error) {
	var cost commdb.CostFunction
	switch r.Cost {
	case "", "sum":
		cost = commdb.CostSumDistances
	case "max":
		cost = commdb.CostMaxDistance
	default:
		return commdb.Query{}, fmt.Errorf("unknown cost function %q (want sum or max)", r.Cost)
	}
	if len(r.Keywords) == 0 {
		return commdb.Query{}, errors.New("keywords are required")
	}
	q := commdb.Query{Keywords: r.Keywords, Rmax: r.Rmax, Cost: cost}
	return q.Normalized(), nil
}

// CommunityRecord is one community on the wire: one NDJSON line of the
// streaming endpoint, one element of the top-k response, and one line
// of cmd/commsearch -json.
type CommunityRecord struct {
	Type string `json:"type"` // "community"
	// Rank is the 1-based position in the response stream. On the topk
	// endpoint ranks follow cost order; on the streaming endpoint they
	// follow enumeration order (the first is still minimum-cost).
	Rank int     `json:"rank"`
	Cost float64 `json:"cost"`
	// Core holds the keyword node chosen for each normalized keyword
	// position.
	Core []commdb.NodeID `json:"core"`
	// CoreLabels are the graph labels of the core nodes, when the
	// serving graph carries labels.
	CoreLabels []string `json:"core_labels,omitempty"`
	// Centers are the community's center nodes.
	Centers []commdb.NodeID `json:"centers"`
	// Nodes and Edges materialize the induced subgraph; omitted when
	// the request asked for compact records. Each edge is a [from, to]
	// pair.
	Nodes []commdb.NodeID    `json:"nodes,omitempty"`
	Edges [][2]commdb.NodeID `json:"edges,omitempty"`
}

// RecordType values for the NDJSON stream.
const (
	RecordCommunity = "community"
	RecordTrailer   = "trailer"
)

// NewRecord renders one community as its wire record. g supplies core
// labels and may be nil; compact omits the node and edge lists.
func NewRecord(rank int, c *commdb.Community, g *commdb.Graph, compact bool) CommunityRecord {
	rec := CommunityRecord{
		Type:    RecordCommunity,
		Rank:    rank,
		Cost:    c.Cost,
		Core:    append([]commdb.NodeID(nil), c.Core...),
		Centers: append([]commdb.NodeID(nil), c.Cnodes...),
	}
	if g != nil {
		rec.CoreLabels = make([]string, len(c.Core))
		for i, v := range c.Core {
			rec.CoreLabels[i] = g.Label(v)
		}
	}
	if !compact {
		rec.Nodes = append([]commdb.NodeID(nil), c.Nodes...)
		rec.Edges = make([][2]commdb.NodeID, len(c.Edges))
		for i, e := range c.Edges {
			rec.Edges[i] = [2]commdb.NodeID{e.From, e.To}
		}
	}
	return rec
}

// Trailer is the final NDJSON record of a stream: how many communities
// were delivered and whether the enumeration ran to completion. When
// Complete is false, Reason holds the human-readable stop reason (a
// tripped budget, a deadline, a cancellation or a server shutdown) and
// the records already delivered are a valid partial answer.
type Trailer struct {
	Type      string `json:"type"` // "trailer"
	Count     int    `json:"count"`
	Complete  bool   `json:"complete"`
	Reason    string `json:"reason,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms"`
	// Epoch is the snapshot epoch the whole stream was answered from
	// (0 when the server runs without snapshot reload). Every record of
	// one stream comes from this single epoch, even when a reload
	// swapped epochs mid-stream.
	Epoch int64 `json:"epoch,omitempty"`
	// Trace is the query's trace summary, present when the request set
	// "trace": true.
	Trace *obs.Summary `json:"trace,omitempty"`
}

// NewTrailer builds the trailer for a stream that delivered count
// communities and stopped with stopErr (nil = clean exhaustion).
func NewTrailer(count int, stopErr error, elapsed time.Duration) Trailer {
	t := Trailer{Type: RecordTrailer, Count: count, Complete: stopErr == nil, ElapsedMS: elapsed.Milliseconds()}
	if stopErr != nil {
		t.Reason = StopReason(stopErr)
	}
	return t
}

// StopReason renders an iterator stop reason for the wire.
func StopReason(err error) string {
	var be commdb.ErrBudgetExhausted
	switch {
	case err == nil:
		return ""
	case errors.As(err, &be):
		return fmt.Sprintf("budget exhausted: %s (spent %d, limit %d)", be.Resource, be.Spent, be.Limit)
	case errors.Is(err, commdb.ErrDeadlineExceeded):
		return "deadline exceeded"
	case errors.Is(err, ErrServerClosed):
		return "server shutting down"
	case errors.Is(err, commdb.ErrCanceled):
		return "canceled"
	default:
		return err.Error()
	}
}

// TopKResponse is the body of POST /v1/search/topk.
type TopKResponse struct {
	Results []CommunityRecord `json:"results"`
	// Complete reports that the enumeration was not cut short: either k
	// communities were found or the query is exhausted below k.
	Complete bool `json:"complete"`
	// Reason is the stop reason when Complete is false.
	Reason string `json:"reason,omitempty"`
	// Cached reports the response was served from the result cache.
	Cached bool `json:"cached"`
	// Semantic reports a cached response was derived by the semantic
	// tier — downfiltered from a same-keyword answer cached at a larger
	// radius or k — rather than matched by exact identity. The records
	// are still byte-identical to an uncached execution's.
	Semantic  bool  `json:"semantic,omitempty"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// Epoch is the snapshot epoch that answered (0 without snapshot
	// reload). Cached answers carry the epoch too: the cache is keyed
	// by epoch, so a hit is always epoch-consistent.
	Epoch int64 `json:"epoch,omitempty"`
	// Trace is the query's trace summary, present when the request set
	// "trace": true.
	Trace *obs.Summary `json:"trace,omitempty"`
}

// ReloadResponse is the body of POST /admin/reload.
type ReloadResponse struct {
	// Outcome is one of the snapshot outcome strings ("success",
	// "rejected_corrupt", ...; empty when the reload could not start).
	Outcome string `json:"outcome,omitempty"`
	// Epoch is the serving epoch after the attempt — unchanged when the
	// artifact was rejected.
	Epoch int64 `json:"epoch"`
	// Error is the load failure, when the reload was rejected.
	Error string `json:"error,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
