package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// errFlightAbandoned cancels a coalesced execution once every caller
// waiting on it has gone away.
var errFlightAbandoned = errors.New("commserve: all callers abandoned the query")

// flightGroup coalesces concurrent identical work: all callers that
// present the same key while a call is in flight share one execution
// and one answer, so N clients issuing the same expensive query run the
// engine once.
//
// Unlike a classic singleflight, membership is refcounted for correct
// cancellation: each waiter that gives up (its own context ends)
// detaches, and when the last waiter detaches the shared execution's
// context is canceled — an execution nobody is waiting for stops
// burning budget. The execution context descends from the group's base
// context, so server shutdown cancels every in-flight call.
type flightGroup struct {
	base  context.Context // ancestor of every execution context
	joins atomic.Int64    // callers that attached to an existing flight
	mu    sync.Mutex
	m     map[string]*flight
}

type flight struct {
	refs   int // waiters attached; guarded by the group mutex
	cancel context.CancelCauseFunc
	done   chan struct{} // closed after val/err are set
	val    *CachedAnswer
	err    error
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, m: make(map[string]*flight)}
}

// Do returns the result of fn for key, sharing one execution among all
// concurrent callers with the same key. shared reports whether this
// caller joined an execution started by another. If ctx ends before
// the shared execution finishes, Do detaches and returns ctx's cause;
// the execution keeps running for the remaining waiters (and is
// canceled when none remain).
func (g *flightGroup) Do(ctx context.Context, key string, fn func(ctx context.Context) (*CachedAnswer, error)) (val *CachedAnswer, shared bool, err error) {
	g.mu.Lock()
	f, joined := g.m[key]
	if !joined {
		fctx, cancel := context.WithCancelCause(g.base)
		f = &flight{cancel: cancel, done: make(chan struct{})}
		g.m[key] = f
		go g.run(key, f, fctx, fn)
	} else {
		g.joins.Add(1)
	}
	f.refs++
	g.mu.Unlock()

	select {
	case <-f.done:
		g.detach(f)
		return f.val, joined, f.err
	case <-ctx.Done():
		g.detach(f)
		return nil, joined, context.Cause(ctx)
	}
}

// run executes fn and publishes the outcome. The flight leaves the map
// before done is signaled, so late arrivals start a fresh execution
// (result reuse across time is the cache's job, not the group's).
func (g *flightGroup) run(key string, f *flight, fctx context.Context, fn func(ctx context.Context) (*CachedAnswer, error)) {
	defer func() {
		if p := recover(); p != nil {
			f.err = fmt.Errorf("commserve: query execution panicked: %v", p)
		}
		f.cancel(nil)
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn(fctx)
}

// detach drops one waiter; the last one out cancels an execution that
// has not finished yet.
func (g *flightGroup) detach(f *flight) {
	g.mu.Lock()
	f.refs--
	if f.refs == 0 {
		select {
		case <-f.done:
		default:
			f.cancel(errFlightAbandoned)
		}
	}
	g.mu.Unlock()
}
