// Package server exposes a Searcher over HTTP: a concurrent
// community-query service with admission control, result caching and
// streaming responses.
//
// Endpoints:
//
//   - POST /v1/search/topk — JSON body, JSON response with up to k
//     cost-ranked communities. Responses for cleanly completed queries
//     are cached in a size-bounded LRU keyed on the canonical query
//     fingerprint, and concurrent identical queries are coalesced so
//     the engine runs once.
//   - POST /v1/search/all — JSON body, NDJSON streaming response: one
//     community per line emitted at the enumerator's polynomial delay
//     (the first result arrives while enumeration continues), closed
//     by a trailer record carrying the completion status and stop
//     reason.
//   - GET /healthz — liveness.
//   - GET /statsz — serving counters and a query-latency histogram.
//
// The server is the backpressure boundary: a bounded worker pool with
// a bounded wait queue admits queries, everything beyond is rejected
// with 429 and Retry-After, and per-request resource limits are
// clamped to server maxima so no client can monopolize the governor
// budget. Shutdown stops admission, cancels in-flight queries through
// the query governor, and drains streams with a correct trailer.
package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"commdb"
	"commdb/internal/delta"
	"commdb/internal/obs"
	"commdb/internal/prof"
	"commdb/internal/snapshot"
	"commdb/internal/workload"
)

// ErrServerClosed is the cancellation cause propagated to every
// in-flight query when the server shuts down; it surfaces in stream
// trailers as "server shutting down".
var ErrServerClosed = errors.New("commserve: server shutting down")

// Config tunes the server. The zero value gets sensible defaults.
type Config struct {
	// MaxConcurrent bounds concurrently executing queries (default
	// GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot (default
	// 2×MaxConcurrent).
	MaxQueue int
	// QueueWait bounds how long an admitted request may wait for a
	// slot before being rejected (default 5s).
	QueueWait time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// CacheEntries bounds the top-k result cache's entry count
	// (default 256; -1 disables the cache).
	CacheEntries int
	// CacheBytes bounds the cache's approximate resident bytes
	// (default 64 MiB; 0 with CacheEntries ≥ 0 means unbounded bytes).
	CacheBytes int64
	// CacheMode selects the result-cache implementation: "exact" (the
	// default fingerprint-keyed LRU), "semantic" (the Rmax-monotone
	// cache that downfilters same-keyword answers cached at a larger
	// radius), "layered" (an exact front over the semantic tier), or
	// "off". Ignored when Cache is set.
	CacheMode string
	// Cache, when non-nil, injects a custom Cache implementation and
	// overrides CacheMode/CacheEntries/CacheBytes.
	Cache Cache
	// MaxK caps the per-request k (default 1000).
	MaxK int
	// MaxLimits clamps every request's Limits field-by-field: where a
	// maximum is set, requests asking for more — or for unlimited —
	// get the maximum. The zero value leaves requests unclamped.
	MaxLimits commdb.Limits
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Logger, when non-nil, receives one structured line per query with
	// the query ID that also rides the X-Query-Id response header and
	// the trace, tying logs, traces and metrics together — plus a
	// warning line for every emission-delay SLO breach. nil disables
	// request logging.
	Logger *slog.Logger
	// Obs tunes the always-on continuous observability layer: the
	// tail-sampled slow-query capture ring (GET /debug/queries), the
	// per-class rolling aggregates (/statsz, /metricsz), and the
	// emission-delay SLO watchdog. Zero values get defaults; set
	// Obs.Capture.Disabled to turn retention off.
	Obs obs.CollectorConfig
	// Pprof mounts net/http/pprof under GET /debug/pprof/ on the
	// server's handler, behind the admin token (403 with no token
	// configured, 401 on a bad one): heap and CPU captures expose
	// symbol names and allocation sites, so they are never served to
	// unauthenticated scrapers.
	Pprof bool
	// Profiler, when non-nil, exposes the continuous profiler's capture
	// ring: GET /debug/profilez lists retained profiles and
	// GET /debug/profilez/{id} downloads one, both admin-authenticated
	// like Pprof. The caller owns the profiler's Run loop.
	Profiler *prof.Profiler
	// DeltaMem, when non-nil, reports the incremental maintainer's
	// artifact footprint (staging graph + index) in /debug/memz, the
	// /statsz memory block and the commdb_mem_delta_bytes gauge.
	DeltaMem func() prof.Footprint
	// Snapshots, when non-nil, turns on epoch-versioned hot reload:
	// every request leases the manager's current epoch for its full
	// duration (streams included), responses carry the epoch they were
	// answered from, reload outcomes surface in /statsz and /metricsz,
	// and POST /admin/reload triggers a reload. An SLO breach or
	// internal errors during a fresh epoch's probation roll it back.
	Snapshots *snapshot.Manager
	// AdminToken authorizes POST /admin/reload (Bearer token). Empty
	// disables the endpoint (requests get 403), so reload-over-HTTP is
	// strictly opt-in.
	AdminToken string
	// Deltas, when non-nil, reports the incremental maintainer's
	// cumulative statistics (commserve's in-process delta mode). They
	// surface as the "deltas" block in /statsz and the commdb_delta_*
	// families in /metricsz.
	Deltas func() delta.Stats
	// WorkloadJournal, when non-nil, is the durable half of the
	// workload flight recorder: every completed query — engine
	// executions and cache hits alike — is offered to it (its sampling
	// policy may drop some). The caller owns the journal's lifecycle
	// (Close on shutdown). The in-memory attribution tables behind
	// GET /debug/workloadz run regardless.
	WorkloadJournal *workload.Journal
	// WorkloadKeywords bounds the attribution table (default 512).
	WorkloadKeywords int
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes == 0 && c.CacheEntries > 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxK <= 0 {
		c.MaxK = 1000
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server serves community queries from one Engine. Create it with New
// or NewWithEngine, mount Handler on an http.Server, and call Shutdown
// to drain.
type Server struct {
	eng   Engine
	snaps *snapshot.Manager
	cfg   Config
	adm   *admission
	cache Cache
	// cacheEpoch tracks the last epoch a top-k request served from, so
	// an epoch change triggers one cache invalidation sweep.
	cacheEpoch atomic.Int64
	flights    *flightGroup
	stats      stats
	metrics    *metrics
	collector  *obs.Collector
	wl         *workload.Tracker
	qids       atomic.Int64
	mux        *http.ServeMux

	baseCtx    context.Context
	cancelBase context.CancelCauseFunc
	closing    atomic.Bool
	reqs       sync.WaitGroup
	shutdown   sync.Once
}

// New builds a server over a Searcher.
func New(s *commdb.Searcher, cfg Config) *Server {
	return NewWithEngine(searcherEngine{s: s}, cfg)
}

// NewWithEngine builds a server over any Engine; tests use it to
// inject controllable engines. An unknown Config.CacheMode panics —
// it is a static configuration error, caught at construction like a
// malformed mux pattern would be.
func NewWithEngine(eng Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := cfg.Cache
	if cache == nil {
		var err error
		cache, err = NewCache(cfg.CacheMode, cfg.CacheEntries, cfg.CacheBytes)
		if err != nil {
			panic(err)
		}
	}
	baseCtx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		eng:        eng,
		snaps:      cfg.Snapshots,
		cfg:        cfg,
		adm:        newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueWait),
		cache:      cache,
		flights:    newFlightGroup(baseCtx),
		baseCtx:    baseCtx,
		cancelBase: cancel,
	}
	s.collector = obs.NewCollector(cfg.Obs)
	s.wl = workload.NewTracker(workload.AttributionConfig{MaxKeywords: cfg.WorkloadKeywords}, cfg.WorkloadJournal)
	// One combined breach hook (OnBreach replaces, not chains): log the
	// breach and, during a fresh epoch's probation, roll the epoch back.
	if cfg.Logger != nil || s.snaps != nil {
		logger, snaps := cfg.Logger, s.snaps
		s.collector.OnBreach(func(rec *obs.QueryRecord) {
			if logger != nil {
				logger.Warn("emission SLO breach",
					"qid", rec.QueryID,
					"endpoint", rec.Endpoint,
					"keywords", rec.Keywords,
					"class", rec.Class,
					"max_delay_ms", rec.MaxEmissionDelayMS,
					"median_delay_ms", rec.MedianEmissionDelayMS,
					"total_ms", rec.TotalMS)
			}
			if snaps != nil {
				snaps.NoteBreach()
			}
		})
	}
	s.metrics = newMetrics(s)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/search/all", s.handleAll)
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	mux.HandleFunc("GET /debug/memz", s.handleMemz)
	mux.HandleFunc("GET /debug/workloadz", s.handleWorkloadz)
	if cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", s.admin(pprof.Index))
		mux.HandleFunc("GET /debug/pprof/cmdline", s.admin(pprof.Cmdline))
		mux.HandleFunc("GET /debug/pprof/profile", s.admin(pprof.Profile))
		mux.HandleFunc("GET /debug/pprof/symbol", s.admin(pprof.Symbol))
		mux.HandleFunc("GET /debug/pprof/trace", s.admin(pprof.Trace))
	}
	if cfg.Profiler != nil {
		mux.HandleFunc("GET /debug/profilez", s.admin(s.handleProfilez))
		mux.HandleFunc("GET /debug/profilez/{id}", s.admin(s.handleProfileGet))
	}
	s.mux = mux
	return s
}

// nextQueryID issues the per-process query identifier that ties a
// request's log line, trace and X-Query-Id header together.
func (s *Server) nextQueryID() string {
	return "q-" + strconv.FormatInt(s.qids.Add(1), 10)
}

// logQuery emits the per-query structured log line, when logging is on.
func (s *Server) logQuery(qid, endpoint string, q commdb.Query, elapsed time.Duration, results int, reason string, cached bool) {
	if s.cfg.Logger == nil {
		return
	}
	s.cfg.Logger.Info("query",
		"qid", qid,
		"endpoint", endpoint,
		"keywords", q.Keywords,
		"rmax", q.Rmax,
		"elapsed_ms", elapsed.Milliseconds(),
		"results", results,
		"complete", reason == "",
		"reason", reason,
		"cached", cached)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// lease pins the epoch one request serves from. Without a snapshot
// manager it returns the fixed engine, epoch 0, and a no-op release.
// With one, the caller must invoke release only after the response —
// including a full NDJSON stream — is written, so a concurrent reload
// can never retire the epoch mid-response.
func (s *Server) lease() (eng Engine, epoch int64, release func()) {
	if s.snaps == nil {
		return s.eng, 0, func() {}
	}
	l := s.snaps.Acquire()
	return searcherEngine{s: l.Searcher()}, l.Epoch(), l.Release
}

// observeEpoch feeds one finished execution into the snapshot
// manager's probation window.
func (s *Server) observeEpoch(epoch int64, err error) {
	if s.snaps != nil {
		s.snaps.ObserveQuery(epoch, err)
	}
}

// Stats snapshots the serving counters.
func (s *Server) Stats() StatsSnapshot {
	snap := s.stats.snapshot()
	cs := s.cache.Stats()
	snap.CacheHits = cs.Hits
	snap.CacheSemanticHits = cs.SemanticHits
	snap.CacheMisses = cs.Misses
	snap.CacheEntries = cs.Entries
	snap.CacheBytes = cs.Bytes
	snap.SingleflightShared = s.flights.joins.Load()
	snap.AdmissionWaiting = s.adm.waiting.Load()
	snap.CaptureObserved, snap.CaptureRetained = s.collector.CaptureStats()
	snap.SLOBreaches = s.collector.Breaches()
	snap.QueryClasses = s.collector.Classes()
	if s.snaps != nil {
		st := s.snaps.Status()
		snap.Epochs = &st
	}
	if s.cfg.Deltas != nil {
		st := s.cfg.Deltas()
		snap.Deltas = &st
	}
	mem := s.memorySnapshot()
	snap.Memory = &mem
	wl := s.wl.Snapshot(10)
	snap.Workload = &wl
	return snap
}

// authAdmin enforces the admin bearer token: with no token configured
// every admin request gets 403 (admin-over-HTTP is strictly opt-in);
// with one, a missing or wrong token gets 401. A false return means
// the response has been written. The compare is constant-time so the
// token can't be guessed byte-by-byte through response timing.
func (s *Server) authAdmin(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.AdminToken == "" {
		writeError(w, http.StatusForbidden, "admin endpoint disabled: no admin token configured")
		return false
	}
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || auth[:len(prefix)] != prefix ||
		subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(s.cfg.AdminToken)) != 1 {
		writeError(w, http.StatusUnauthorized, "bad admin token")
		return false
	}
	return true
}

// admin wraps a handler behind authAdmin. pprof and the profile ring
// mount through it; reload keeps its own snapshot-manager precondition
// ahead of the same check.
func (s *Server) admin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqs.Add(1)
		defer s.reqs.Done()
		if !s.authAdmin(w, r) {
			return
		}
		h(w, r)
	}
}

// handleReload answers POST /admin/reload: authenticated epoch reload.
// The endpoint requires both a snapshot manager and a configured admin
// token; with no token it answers 403 so reload-over-HTTP is opt-in.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.reqs.Add(1)
	defer s.reqs.Done()
	if s.snaps == nil {
		writeError(w, http.StatusNotImplemented, "snapshot reload not enabled")
		return
	}
	if !s.authAdmin(w, r) {
		return
	}
	outcome, err := s.snaps.Reload(r.Context())
	resp := ReloadResponse{Outcome: outcome, Epoch: s.snaps.Current()}
	status := http.StatusOK
	if err != nil {
		resp.Error = err.Error()
		if errors.Is(err, snapshot.ErrReloadInFlight) {
			status = http.StatusConflict
		} else {
			// The artifact was rejected; the prior epoch keeps serving.
			status = http.StatusUnprocessableEntity
		}
	}
	writeJSON(w, status, resp)
}

// Shutdown makes the server stop admitting (new requests get 503),
// cancels every in-flight query through the governor — streams drain
// promptly, each closing with a trailer naming the shutdown — and
// waits for all requests to finish or ctx to end.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdown.Do(func() {
		s.closing.Store(true)
		s.cancelBase(ErrServerClosed)
	})
	done := make(chan struct{})
	go func() {
		s.reqs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// requestCtx derives a context canceled by whichever comes first: the
// client going away or the server shutting down. The governor sees the
// precise cause either way.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(r.Context())
	stop := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	return ctx, func() {
		stop()
		cancel(nil)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// parseSearch decodes and validates a search request, returning the
// normalized query with clamped limits already attached. A false ok
// means the response has been written.
func (s *Server) parseSearch(w http.ResponseWriter, r *http.Request) (req SearchRequest, q commdb.Query, ok bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return req, q, false
	}
	q, err := req.Query()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return req, q, false
	}
	q.Limits = ClampLimits(req.Limits.Limits(), s.cfg.MaxLimits)
	return req, q, true
}

// admit runs the admission valve. A false ok means the response has
// been written (503 shutting down, 429 saturated, or nothing when the
// client is already gone); on true the caller must release.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) (ok bool) {
	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return false
	}
	switch err := s.adm.acquire(ctx); {
	case err == nil:
		return true
	case errors.Is(err, ErrSaturated):
		s.writeSaturated(w)
		return false
	case errors.Is(err, ErrServerClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return false
	default: // client disconnected while queued
		return false
	}
}

// writeSaturated answers a request the admission valve rejected.
func (s *Server) writeSaturated(w http.ResponseWriter) {
	s.stats.admissionRejections.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeError(w, http.StatusTooManyRequests, "saturated: %d queries executing and %d queued; retry later",
		s.cfg.MaxConcurrent, s.cfg.MaxQueue)
}

// classifyStop feeds the stop-reason counters. A results-budget trip
// is ordinary completion of a bounded stream (the client asked for at
// most max_results), so it counts as a result-limit stop; only the
// work budgets and the deadline count as budget exhaustion.
func (s *Server) classifyStop(stopErr error) {
	var be commdb.ErrBudgetExhausted
	switch {
	case stopErr == nil:
	case errors.As(stopErr, &be) && be.Resource == commdb.ResourceResults:
		s.stats.resultLimitStops.Add(1)
	case errors.As(stopErr, &be), errors.Is(stopErr, commdb.ErrDeadlineExceeded):
		s.stats.budgetExhausted.Add(1)
	default:
		s.stats.canceled.Add(1)
	}
}

// handleTopK answers POST /v1/search/topk: cache lookup, then a
// coalesced engine execution, then a JSON response.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.reqs.Add(1)
	defer s.reqs.Done()
	req, q, ok := s.parseSearch(w, r)
	if !ok {
		return
	}
	k := req.K
	if k <= 0 {
		k = 10
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	qid := s.nextQueryID()
	w.Header().Set("X-Query-Id", qid)
	// The lease covers the whole request, cache lookup included: the
	// epoch is part of the cache key, so a stale epoch's answers can
	// never serve a request leased to a newer epoch.
	eng, epoch, release := s.lease()
	defer release()
	key := newCacheKey(q, k, req.Compact, epoch)
	// One invalidation sweep per observed epoch change frees the prior
	// epoch's answers promptly (the epoch inside every key already
	// prevents stale serving either way).
	if old := s.cacheEpoch.Swap(epoch); old != epoch {
		s.cache.InvalidateEpochs(epoch)
	}

	// Cache hits bypass admission: they consume no engine resources,
	// so they stay fast even when the pool is saturated. A trace
	// request bypasses the cache read instead — its trace must reflect
	// a real execution.
	cstart := time.Now()
	if !req.Trace {
		if val, semantic, hit := s.cache.Get(key); hit {
			s.logQuery(qid, "topk", q, 0, len(val.Records), "", true)
			// Cache hits bypass observeQuery (no execution, no trace), but
			// they are still workload: the flight recorder journals them so a
			// replay reproduces the traffic the cache absorbed.
			s.observeCacheHit(qid, q, k, epoch, val, time.Since(cstart))
			writeJSON(w, http.StatusOK, TopKResponse{Results: val.Records, Complete: val.Complete,
				Cached: true, Semantic: semantic, Epoch: epoch})
			return
		}
	}

	if s.closing.Load() {
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	// Coalesce before admitting: followers of an identical in-flight
	// query consume no engine resources, so only the flight leader
	// claims an execution slot. Admission errors (saturation,
	// shutdown) propagate to every waiter of the flight. Trace
	// requests coalesce only among themselves, so a trace follower is
	// guaranteed a leader that produced one.
	fkey := key.String()
	if req.Trace {
		fkey += "|trace"
	}
	start := time.Now()
	val, _, err := s.flights.Do(ctx, fkey, func(fctx context.Context) (*CachedAnswer, error) {
		if err := s.adm.acquire(fctx); err != nil {
			return nil, err
		}
		defer s.adm.release()
		return s.runTopK(fctx, eng, epoch, q, k, req.Compact, key, qid)
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrSaturated):
			s.writeSaturated(w)
		case errors.Is(err, ErrServerClosed):
			writeError(w, http.StatusServiceUnavailable, "server shutting down")
		case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
			// Client gone; nothing useful to write.
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	resp := TopKResponse{
		Results:   val.Records,
		Complete:  val.Complete,
		Reason:    val.Reason,
		Cached:    false,
		ElapsedMS: time.Since(start).Milliseconds(),
		Epoch:     epoch,
	}
	if req.Trace {
		resp.Trace = val.Trace
	}
	s.logQuery(qid, "topk", q, time.Since(start), len(val.Records), val.Reason, false)
	writeJSON(w, http.StatusOK, resp)
}

// runTopK is one engine execution of a top-k query: collect up to k
// records and cache the answer when the enumeration completed cleanly.
// Every execution runs under an internal trace whose summary feeds the
// process metrics; the summary also rides the response when the
// request asked for it.
func (s *Server) runTopK(ctx context.Context, eng Engine, epoch int64, q commdb.Query, k int, compact bool, key CacheKey, qid string) (*CachedAnswer, error) {
	s.stats.queriesStarted.Add(1)
	tr := obs.NewTrace(qid)
	if s.snaps != nil {
		tr.SetLabel("epoch", strconv.FormatInt(epoch, 10))
	}
	ctx = obs.ContextWithTrace(ctx, tr)
	start := time.Now()
	var results int
	var stopReason string
	defer func() {
		s.stats.queriesCompleted.Add(1)
		s.stats.observeLatency(time.Since(start))
		sum := tr.Summary()
		s.metrics.absorb(sum)
		s.observeQuery(qid, "topk", q, k, results, stopReason, start, sum)
	}()
	st, err := eng.TopK(ctx, q)
	if err != nil {
		stopReason = err.Error()
		s.observeEpoch(epoch, err)
		return nil, err
	}
	// A top-k stream is abandoned once k results arrive; Close stops
	// the searcher's in-flight materialization workers.
	defer st.Close()
	g := eng.Graph()
	records := make([]CommunityRecord, 0, k)
	meta := make([]RecordMeta, 0, k)
	for len(records) < k {
		c, ok := st.Next()
		if !ok {
			break
		}
		records = append(records, NewRecord(len(records)+1, c, g, compact))
		meta = append(meta, RecordMeta{ReuseRadius: c.ReuseRadius, CoreRadius: c.CoreRadius})
	}
	var stopErr error
	if len(records) < k {
		stopErr = st.Err()
	}
	s.classifyStop(stopErr)
	s.observeEpoch(epoch, stopErr)
	results, stopReason = len(records), StopReason(stopErr)
	val := &CachedAnswer{
		Records:  records,
		Complete: stopErr == nil,
		Reason:   StopReason(stopErr),
		// Fewer than k records with a clean stop means the enumeration
		// ran dry: the answer holds every community of the query.
		Exhausted: stopErr == nil && len(records) < k,
		Rmax:      key.Rmax,
		K:         k,
		Meta:      meta,
		Bytes:     sizeOf(records),
		Trace:     tr.Summary(),
	}
	if stopErr == nil {
		s.cache.Put(key, val)
	}
	return val, nil
}

// handleAll answers POST /v1/search/all with an NDJSON stream: one
// community per line, flushed as produced, then a trailer.
func (s *Server) handleAll(w http.ResponseWriter, r *http.Request) {
	s.reqs.Add(1)
	defer s.reqs.Done()
	req, q, ok := s.parseSearch(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()

	qid := s.nextQueryID()
	w.Header().Set("X-Query-Id", qid)
	// The lease spans the entire stream: every record and the trailer
	// come from one epoch, even if a reload lands mid-stream.
	eng, epoch, release := s.lease()
	defer release()
	tr := obs.NewTrace(qid)
	if s.snaps != nil {
		tr.SetLabel("epoch", strconv.FormatInt(epoch, 10))
	}
	ctx = obs.ContextWithTrace(ctx, tr)

	s.stats.queriesStarted.Add(1)
	s.stats.streamsStarted.Add(1)
	start := time.Now()
	defer func() {
		s.stats.queriesCompleted.Add(1)
		s.stats.observeLatency(time.Since(start))
	}()

	st, err := eng.All(ctx, q)
	if err != nil {
		s.observeQuery(qid, "all", q, 0, 0, err.Error(), start, tr.Summary())
		s.observeEpoch(epoch, err)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The stream is abandoned when the client disconnects mid-body;
	// Close stops the searcher's in-flight materialization workers.
	defer st.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	g := eng.Graph()
	count := 0
	for {
		c, ok := st.Next()
		if !ok {
			break
		}
		if err := enc.Encode(NewRecord(count+1, c, g, req.Compact)); err != nil {
			// Client gone mid-stream: stop enumerating.
			cancel()
			break
		}
		count++
		flush()
	}
	stopErr := st.Err()
	s.classifyStop(stopErr)
	s.observeEpoch(epoch, stopErr)
	trailer := NewTrailer(count, stopErr, time.Since(start))
	trailer.Epoch = epoch
	sum := tr.Summary()
	s.metrics.absorb(sum)
	s.observeQuery(qid, "all", q, 0, count, trailer.Reason, start, sum)
	if req.Trace {
		trailer.Trace = sum
	}
	s.logQuery(qid, "all", q, time.Since(start), count, trailer.Reason, false)
	_ = enc.Encode(trailer)
	flush()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.closing.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
