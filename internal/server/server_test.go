package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"commdb"
)

// fakeCommunity builds a distinguishable community for fake engines.
func fakeCommunity(i int) *commdb.Community {
	base := commdb.NodeID(10 * i)
	return &commdb.Community{
		Core:   commdb.Core{base, base + 1},
		Cost:   float64(i),
		Knodes: []commdb.NodeID{base, base + 1},
		Cnodes: []commdb.NodeID{base + 2},
		Nodes:  []commdb.NodeID{base, base + 1, base + 2},
		Edges:  []commdb.EdgePair{{From: base + 2, To: base}},
	}
}

// fakeStream yields n fake communities; gates[i], when non-nil, blocks
// the i-th Next until the gate closes or the stream's context ends (the
// context cause then becomes the stop reason, like a governed
// enumerator).
type fakeStream struct {
	ctx   context.Context
	n     int
	gates map[int]chan struct{}
	i     int
	err   error
}

func (s *fakeStream) Next() (*commdb.Community, bool) {
	if s.err != nil || s.i >= s.n {
		return nil, false
	}
	if gate := s.gates[s.i]; gate != nil {
		select {
		case <-gate:
		case <-s.ctx.Done():
			s.err = context.Cause(s.ctx)
			return nil, false
		}
	}
	s.i++
	return fakeCommunity(s.i), true
}

func (s *fakeStream) Err() error   { return s.err }
func (s *fakeStream) Close() error { return s.err }

// fakeEngine serves every query with a fresh fakeStream and counts
// executions.
type fakeEngine struct {
	n          int
	gates      map[int]chan struct{}
	executions atomic.Int64
}

func (e *fakeEngine) stream(ctx context.Context) (Stream, error) {
	e.executions.Add(1)
	return &fakeStream{ctx: ctx, n: e.n, gates: e.gates}, nil
}

func (e *fakeEngine) All(ctx context.Context, _ commdb.Query) (Stream, error)  { return e.stream(ctx) }
func (e *fakeEngine) TopK(ctx context.Context, _ commdb.Query) (Stream, error) { return e.stream(ctx) }
func (e *fakeEngine) Graph() *commdb.Graph                                     { return nil }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func searchBody(t *testing.T, keywords []string, extra map[string]any) *bytes.Reader {
	t.Helper()
	m := map[string]any{"keywords": keywords, "rmax": 8}
	for k, v := range extra {
		m[k] = v
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func postJSON(t *testing.T, url string, body *bytes.Reader) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", body)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeTopK(t *testing.T, resp *http.Response) TopKResponse {
	t.Helper()
	defer resp.Body.Close()
	var out TopKResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding topk response: %v", err)
	}
	return out
}

// TestE2EStreamingDelivery proves the streaming contract: the first
// community arrives over the wire while the enumeration is still in
// progress, and the stream closes with a complete trailer.
func TestE2EStreamingDelivery(t *testing.T) {
	gate := make(chan struct{})
	eng := &fakeEngine{n: 3, gates: map[int]chan struct{}{1: gate}} // 2nd result blocks
	srv := NewWithEngine(eng, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/search/all", searchBody(t, []string{"a", "b"}, nil))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var first CommunityRecord
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Text(), err)
	}
	if first.Type != RecordCommunity || first.Rank != 1 {
		t.Fatalf("first record = %+v, want community rank 1", first)
	}
	// The first community is in hand while the enumeration is provably
	// unfinished: the engine is gated before its second result.
	if snap := srv.Stats(); snap.QueriesInFlight != 1 {
		t.Fatalf("queries in flight = %d while stream gated, want 1", snap.QueriesInFlight)
	}
	close(gate)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if len(lines) != 3 { // records 2, 3 and the trailer
		t.Fatalf("got %d remaining lines, want 3: %v", len(lines), lines)
	}
	var trailer Trailer
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("trailer %q: %v", lines[len(lines)-1], err)
	}
	if trailer.Type != RecordTrailer || !trailer.Complete || trailer.Count != 3 || trailer.Reason != "" {
		t.Fatalf("trailer = %+v, want complete count=3", trailer)
	}
}

// TestE2EAdmission proves backpressure: with the pool and queue full,
// new queries get 429 with Retry-After while the in-flight ones keep
// running and complete.
func TestE2EAdmission(t *testing.T) {
	gate := make(chan struct{})
	eng := &fakeEngine{n: 1, gates: map[int]chan struct{}{0: gate}}
	srv := NewWithEngine(eng, Config{MaxConcurrent: 1, MaxQueue: 1, QueueWait: time.Minute, CacheEntries: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type result struct {
		status int
		body   TopKResponse
	}
	results := make(chan result, 2)
	// A distinct query per request so the singleflight cannot coalesce
	// them — this test is about admission alone.
	fire := func(kw string) {
		resp := postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{kw, "z"}, nil))
		results <- result{resp.StatusCode, decodeTopK(t, resp)}
	}
	go fire("a")
	waitFor(t, "first query executing", func() bool { return eng.executions.Load() == 1 })
	go fire("b")
	waitFor(t, "second query queued", func() bool { return srv.Stats().AdmissionWaiting == 1 })

	// Pool busy, queue full: the third request must bounce immediately.
	resp := postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"c", "z"}, nil))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	resp.Body.Close()
	if snap := srv.Stats(); snap.AdmissionRejections != 1 {
		t.Fatalf("admission rejections = %d, want 1", snap.AdmissionRejections)
	}

	// The rejected request did not disturb the admitted ones.
	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("admitted query finished with status %d, want 200", r.status)
		}
		if len(r.body.Results) != 1 || !r.body.Complete {
			t.Fatalf("admitted query response = %+v, want 1 complete result", r.body)
		}
	}
}

// TestE2ESingleflight proves coalescing: two concurrent identical
// queries execute the engine once and both receive the full answer.
func TestE2ESingleflight(t *testing.T) {
	gate := make(chan struct{})
	eng := &fakeEngine{n: 2, gates: map[int]chan struct{}{0: gate}}
	srv := NewWithEngine(eng, Config{CacheEntries: -1}) // no cache: coalescing must do the work
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	results := make(chan TopKResponse, 2)
	fire := func() {
		resp := postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a", "b"}, nil))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("status = %d, want 200", resp.StatusCode)
		}
		results <- decodeTopK(t, resp)
	}
	go fire()
	waitFor(t, "leader executing", func() bool { return eng.executions.Load() == 1 })
	go fire()
	waitFor(t, "follower joined the flight", func() bool { return srv.Stats().SingleflightShared == 1 })

	close(gate)
	a, b := <-results, <-results
	if eng.executions.Load() != 1 {
		t.Fatalf("engine executions = %d, want 1 (singleflight)", eng.executions.Load())
	}
	if len(a.Results) != 2 || len(b.Results) != 2 {
		t.Fatalf("coalesced responses have %d and %d results, want 2 and 2", len(a.Results), len(b.Results))
	}
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Fatalf("coalesced responses differ:\n%+v\n%+v", a.Results, b.Results)
	}
}

// TestE2EShutdownDrain proves graceful shutdown: an in-flight stream is
// canceled through the governor and drains with a trailer naming the
// shutdown, new requests get 503, and Shutdown returns.
func TestE2EShutdownDrain(t *testing.T) {
	gate := make(chan struct{}) // never closed: only shutdown can unblock the stream
	defer close(gate)
	eng := &fakeEngine{n: 2, gates: map[int]chan struct{}{1: gate}}
	srv := NewWithEngine(eng, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/search/all", searchBody(t, []string{"a", "b"}, nil))
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	var trailer Trailer
	sawTrailer := false
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &trailer); err == nil && trailer.Type == RecordTrailer {
			sawTrailer = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading drained stream: %v", err)
	}
	if !sawTrailer {
		t.Fatal("drained stream ended without a trailer")
	}
	if trailer.Complete {
		t.Fatalf("trailer claims completion on a canceled stream: %+v", trailer)
	}
	if !strings.Contains(trailer.Reason, "shutting down") {
		t.Fatalf("trailer reason = %q, want it to name the shutdown", trailer.Reason)
	}
	if trailer.Count != 1 {
		t.Fatalf("trailer count = %d, want the 1 community delivered before shutdown", trailer.Count)
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, path := range []string{"/v1/search/topk", "/v1/search/all"} {
		resp := postJSON(t, ts.URL+path, searchBody(t, []string{"a"}, nil))
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s after shutdown: status %d, want 503", path, resp.StatusCode)
		}
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown: status %d, want 503", hresp.StatusCode)
	}
}

// TestE2ECacheIdenticalResults runs against the real engine on the
// paper's graph: a repeated query — reordered and re-cased — is served
// from the cache with results identical to the uncached run.
func TestE2ECacheIdenticalResults(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	srv := New(commdb.NewSearcher(g), Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ask := func(keywords []string) TopKResponse {
		resp := postJSON(t, ts.URL+"/v1/search/topk",
			searchBody(t, keywords, map[string]any{"k": 10}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		return decodeTopK(t, resp)
	}
	first := ask([]string{"a", "b", "c"})
	if first.Cached {
		t.Fatal("first query claims a cache hit")
	}
	if len(first.Results) != 5 || !first.Complete {
		t.Fatalf("paper query returned %d results (complete=%v), want all 5", len(first.Results), first.Complete)
	}
	second := ask([]string{"C", "b", "A"}) // same query, different order and case
	if !second.Cached {
		t.Fatal("reordered/re-cased repeat missed the cache")
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatalf("cached results differ from uncached:\n%+v\n%+v", first.Results, second.Results)
	}
	snap := srv.Stats()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 || snap.QueriesStarted != 1 {
		t.Fatalf("hits=%d misses=%d executions=%d, want 1/1/1",
			snap.CacheHits, snap.CacheMisses, snap.QueriesStarted)
	}
}

// TestE2ELimitsClamped runs against the real engine: a request asking
// for more results than the server's maximum is clamped, the stream
// stops at the cap, and the trailer reports the tripped budget.
func TestE2ELimitsClamped(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	srv := New(commdb.NewSearcher(g), Config{MaxLimits: commdb.Limits{MaxResults: 2}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/search/all",
		searchBody(t, []string{"a", "b", "c"}, map[string]any{"limits": map[string]any{"max_results": 100}}))
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var records int
	var trailer Trailer
	for sc.Scan() {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if probe.Type == RecordCommunity {
			records++
		} else if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
			t.Fatal(err)
		}
	}
	if records != 2 {
		t.Fatalf("streamed %d communities, want the clamped 2", records)
	}
	if trailer.Complete || !strings.Contains(trailer.Reason, "results") {
		t.Fatalf("trailer = %+v, want a results-budget stop", trailer)
	}
}

// TestE2EStress hammers one server with mixed topk/all traffic from
// many goroutines — saturation, coalescing, caching and streaming all
// at once — and checks every response is well-formed. Run with -race.
func TestE2EStress(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	srv := New(commdb.NewSearcher(g), Config{MaxConcurrent: 4, MaxQueue: 4, CacheEntries: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := [][]string{{"a", "b", "c"}, {"a", "b"}, {"b", "c"}, {"a"}, {"c", "a", "b"}}
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				kws := queries[(w+i)%len(queries)]
				if i%2 == 0 {
					resp := postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, kws, map[string]any{"k": 3}))
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
						errs <- fmt.Errorf("topk status %d", resp.StatusCode)
					}
					resp.Body.Close()
				} else {
					resp := postJSON(t, ts.URL+"/v1/search/all", searchBody(t, kws, map[string]any{"compact": true}))
					if resp.StatusCode == http.StatusOK {
						sc := bufio.NewScanner(resp.Body)
						last := ""
						for sc.Scan() {
							last = sc.Text()
						}
						var trailer Trailer
						if err := json.Unmarshal([]byte(last), &trailer); err != nil || trailer.Type != RecordTrailer {
							errs <- fmt.Errorf("stream did not end in a trailer: %q", last)
						}
					} else if resp.StatusCode != http.StatusTooManyRequests {
						errs <- fmt.Errorf("all status %d", resp.StatusCode)
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := srv.Stats()
	if snap.QueriesInFlight != 0 {
		t.Errorf("queries in flight after drain = %d", snap.QueriesInFlight)
	}
}

// TestStatszHealthz covers the observability endpoints.
func TestStatszHealthz(t *testing.T) {
	eng := &fakeEngine{n: 1}
	srv := NewWithEngine(eng, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"x"}, nil)).Body.Close()

	sresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding statsz: %v", err)
	}
	if snap.QueriesStarted != 1 || snap.QueriesCompleted != 1 {
		t.Fatalf("statsz executions = %d/%d, want 1/1", snap.QueriesStarted, snap.QueriesCompleted)
	}
	if snap.Latency.Count != 1 {
		t.Fatalf("latency count = %d, want 1", snap.Latency.Count)
	}
}

// TestBadRequests covers request validation.
func TestBadRequests(t *testing.T) {
	g, _ := commdb.PaperExampleGraph()
	srv := New(commdb.NewSearcher(g), Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"empty keywords", `{"keywords":[],"rmax":8}`},
		{"bad cost", `{"keywords":["a"],"rmax":8,"cost":"median"}`},
		{"negative rmax", `{"keywords":["a"],"rmax":-1}`},
		{"not json", `{{{`},
		{"unknown field", `{"keywords":["a"],"rmax":8,"bogus":1}`},
		{"multi-term keyword", `{"keywords":["two words"],"rmax":8}`},
	}
	for _, tc := range cases {
		for _, path := range []string{"/v1/search/topk", "/v1/search/all"} {
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var e ErrorResponse
			_ = json.NewDecoder(resp.Body).Decode(&e)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s on %s: status %d (%s), want 400", tc.name, path, resp.StatusCode, e.Error)
			}
		}
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/search/topk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET topk: status %d, want 405", resp.StatusCode)
	}
}
