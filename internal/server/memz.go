package server

// GET /debug/memz is the process's memory ledger: the exact accounting
// of every long-lived artifact the server retains — per-epoch graph
// and index footprints under hot reload (two live epochs during a
// probation window), the result cache, the delta maintainer's staging
// artifacts — alongside the runtime heap view. The same snapshot rides
// /statsz as the "memory" block and feeds the commdb_mem_* gauges, so
// a dashboard, a curl and a Prometheus scrape all see one accounting.

import (
	"net/http"
	"runtime"
	"strconv"

	"commdb/internal/prof"
)

// footprinter is the optional interface an Engine implements to report
// its retained-artifact footprint. The production searcherEngine does;
// fake test engines need not.
type footprinter interface {
	Footprint() prof.Footprint
}

// EpochMemory is one live epoch's byte total in a MemorySnapshot — the
// quick per-epoch summary; the full footprint tree is the matching
// "epoch_<id>" component.
type EpochMemory struct {
	Epoch int64 `json:"epoch"`
	Bytes int64 `json:"bytes"`
}

// RuntimeMemory is the runtime's own heap view. It is a second lens on
// the same memory the components account (plus everything the
// accounting deliberately excludes: goroutine stacks, transient query
// state), so it is reported beside TotalBytes, never added to it.
type RuntimeMemory struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	HeapObjects    uint64 `json:"heap_objects"`
	NumGC          uint32 `json:"num_gc"`
}

// MemorySnapshot is the body of GET /debug/memz and the "memory" block
// of /statsz. TotalBytes sums the component views; components can
// share backing arrays (after a delta publish the maintainer's staging
// artifacts ARE the serving epoch's), so the total is an upper bound
// on distinct retained bytes, exact when nothing is shared.
type MemorySnapshot struct {
	TotalBytes int64 `json:"total_bytes"`
	// Components are the accounted artifacts: one "epoch_<id>"
	// footprint per live epoch under hot reload (the fixed engine's
	// footprint otherwise), the result cache, and the delta
	// maintainer's artifacts when running in delta mode.
	Components []prof.Footprint `json:"components"`
	// Epochs summarizes the live epochs, current first — two entries
	// while a fresh epoch's probation keeps its predecessor alive.
	Epochs  []EpochMemory `json:"epochs,omitempty"`
	Runtime RuntimeMemory `json:"runtime"`
}

// memorySnapshot assembles the ledger. Per-epoch footprints are read
// under leases from LiveEpochs, so a concurrent reload can never
// retire an epoch mid-walk; the footprint trees themselves are
// Once-cached on the immutable artifacts, so repeated scrapes cost a
// few atomic loads, not a re-count.
func (s *Server) memorySnapshot() MemorySnapshot {
	var out MemorySnapshot
	if s.snaps != nil {
		for _, l := range s.snaps.LiveEpochs() {
			f := l.Searcher().Footprint()
			f.Name = "epoch_" + strconv.FormatInt(l.Epoch(), 10)
			out.Components = append(out.Components, f)
			out.Epochs = append(out.Epochs, EpochMemory{Epoch: l.Epoch(), Bytes: f.Bytes})
			l.Release()
		}
	} else if fp, ok := s.eng.(footprinter); ok {
		out.Components = append(out.Components, fp.Footprint())
	}
	cs := s.cache.Stats()
	out.Components = append(out.Components, prof.Footprint{
		Name:  "result_cache",
		Bytes: cs.Bytes,
		Items: int64(cs.Entries),
	})
	if s.cfg.DeltaMem != nil {
		out.Components = append(out.Components, s.cfg.DeltaMem())
	}
	for _, c := range out.Components {
		out.TotalBytes += c.Bytes
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out.Runtime = RuntimeMemory{
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		NumGC:          ms.NumGC,
	}
	return out
}

// servingFootprint is the current serving engine's footprint — the
// epoch a request admitted now would lease, or the fixed engine. The
// zero Footprint when the engine doesn't report one (fake engines).
func (s *Server) servingFootprint() prof.Footprint {
	eng, _, release := s.lease()
	defer release()
	if fp, ok := eng.(footprinter); ok {
		return fp.Footprint()
	}
	return prof.Footprint{}
}

// handleMemz answers GET /debug/memz.
func (s *Server) handleMemz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.memorySnapshot())
}
