package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"commdb"
	"commdb/internal/fault"
	"commdb/internal/prof"
	"commdb/internal/snapshot"
)

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func contains(body []byte, want string) bool {
	return bytes.Contains(body, []byte(want))
}

func getMemz(t *testing.T, url string) MemorySnapshot {
	t.Helper()
	resp, err := http.Get(url + "/debug/memz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/memz status %d", resp.StatusCode)
	}
	var ms MemorySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	return ms
}

// TestMemz: the memory ledger reports the engine's exact footprint,
// the result cache, and the runtime heap view, and its total sums the
// components. The same snapshot rides /statsz as the memory block.
func TestMemz(t *testing.T) {
	srv, ts := newPaperServer(t, Config{})
	ms := getMemz(t, ts.URL)

	if len(ms.Components) == 0 || ms.TotalBytes <= 0 {
		t.Fatalf("empty ledger: %+v", ms)
	}
	var sum int64
	for _, c := range ms.Components {
		sum += c.Bytes
	}
	if sum != ms.TotalBytes {
		t.Fatalf("total %d != component sum %d", ms.TotalBytes, sum)
	}
	eng := ms.Components[0]
	if eng.Name != "searcher" {
		t.Fatalf("first component = %q, want searcher", eng.Name)
	}
	if _, ok := eng.Find("graph"); !ok {
		t.Fatal("engine footprint missing graph part")
	}
	var cache *prof.Footprint
	for i := range ms.Components {
		if ms.Components[i].Name == "result_cache" {
			cache = &ms.Components[i]
		}
	}
	if cache == nil {
		t.Fatal("result_cache component missing")
	}
	if ms.Runtime.HeapAllocBytes == 0 || ms.Runtime.HeapSysBytes == 0 {
		t.Fatalf("runtime view empty: %+v", ms.Runtime)
	}

	// A cached answer shows up in the cache component.
	postJSON(t, ts.URL+"/v1/search/topk", searchBody(t, []string{"a", "b"}, nil)).Body.Close()
	after := getMemz(t, ts.URL)
	var cacheAfter prof.Footprint
	for _, c := range after.Components {
		if c.Name == "result_cache" {
			cacheAfter = c
		}
	}
	if cacheAfter.Items != 1 || cacheAfter.Bytes <= 0 {
		t.Fatalf("cache component after a query = %+v", cacheAfter)
	}

	// /statsz carries the same ledger.
	st := srv.Stats()
	if st.Memory == nil || st.Memory.TotalBytes <= 0 {
		t.Fatalf("statsz memory block = %+v", st.Memory)
	}
}

// snapServer builds a server over a snapshot manager whose loader
// reopens the same graph, so every reload creates a fresh epoch with
// its own artifacts.
func snapServer(t *testing.T, cfg Config) (*snapshot.Manager, *httptest.Server) {
	t.Helper()
	g, _ := commdb.PaperExampleGraph()
	s, err := commdb.Open(g, commdb.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	mgr := snapshot.New(s, snapshot.Config{
		Load: func(*fault.Injector) (*commdb.Searcher, error) {
			return commdb.Open(g, commdb.WithParallelism(1))
		},
	})
	cfg.Snapshots = mgr
	ts := httptest.NewServer(New(s, cfg).Handler())
	t.Cleanup(ts.Close)
	return mgr, ts
}

// TestMemzTwoEpochsDuringProbation (the hot-reload fix): while a fresh
// epoch is on probation the previous epoch stays alive, and the ledger
// reports BOTH — one footprint per live epoch, current first.
func TestMemzTwoEpochsDuringProbation(t *testing.T) {
	mgr, ts := snapServer(t, Config{})

	before := getMemz(t, ts.URL)
	if len(before.Epochs) != 1 || before.Epochs[0].Epoch != 1 {
		t.Fatalf("pre-reload epochs = %+v", before.Epochs)
	}

	if _, err := mgr.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	ms := getMemz(t, ts.URL)
	if len(ms.Epochs) != 2 {
		t.Fatalf("during probation: %d live epochs, want 2 (%+v)", len(ms.Epochs), ms.Epochs)
	}
	if ms.Epochs[0].Epoch != 2 || ms.Epochs[1].Epoch != 1 {
		t.Fatalf("epoch order = %+v, want current (2) first", ms.Epochs)
	}
	for i, e := range ms.Epochs {
		if e.Bytes <= 0 {
			t.Fatalf("epoch %d reports %d bytes", e.Epoch, e.Bytes)
		}
		comp := ms.Components[i]
		if comp.Name != fmt.Sprintf("epoch_%d", e.Epoch) || comp.Bytes != e.Bytes {
			t.Fatalf("component %d = %q/%d, epoch summary = %+v", i, comp.Name, comp.Bytes, e)
		}
		if _, ok := comp.Find("graph"); !ok {
			t.Fatalf("epoch %d footprint missing graph part", e.Epoch)
		}
	}
	if sum := ms.Epochs[0].Bytes + ms.Epochs[1].Bytes; ms.TotalBytes < sum {
		t.Fatalf("total %d < per-epoch sum %d", ms.TotalBytes, sum)
	}
}

// TestMemzReloadRace: memz and metricsz scrapes racing concurrent
// reloads never observe a retired epoch (the leases pin both live
// epochs under the manager's lock). Run under -race.
func TestMemzReloadRace(t *testing.T) {
	mgr, ts := snapServer(t, Config{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ms := getMemz(t, ts.URL)
				if n := len(ms.Epochs); n < 1 || n > 2 {
					t.Errorf("scrape saw %d live epochs", n)
					return
				}
				for _, e := range ms.Epochs {
					if e.Bytes <= 0 {
						t.Errorf("epoch %d scraped with %d bytes", e.Epoch, e.Bytes)
						return
					}
				}
				resp, err := http.Get(ts.URL + "/metricsz")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		if _, err := mgr.Reload(context.Background()); err != nil &&
			!errors.Is(err, snapshot.ErrReloadInFlight) {
			t.Errorf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestMemGauges: the commdb_mem_* families are present on /metricsz
// with live values that agree with the ledger.
func TestMemGauges(t *testing.T) {
	_, ts := snapServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		"# TYPE commdb_mem_total_bytes gauge",
		"# TYPE commdb_mem_graph_bytes gauge",
		"# TYPE commdb_mem_index_bytes gauge",
		"# TYPE commdb_mem_fulltext_bytes gauge",
		"# TYPE commdb_mem_result_cache_bytes gauge",
		"# TYPE commdb_mem_heap_alloc_bytes gauge",
		"# TYPE commdb_mem_heap_sys_bytes gauge",
		"# TYPE commdb_mem_epochs_live gauge",
		"# TYPE commdb_mem_epoch_bytes gauge",
		`commdb_mem_epoch_bytes{epoch="1"}`,
		"commdb_mem_epochs_live 1",
	} {
		if !contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPprofAdminAuth (satellite: pprof folded into the admin mux):
// /debug/pprof is mounted only with Pprof on, and even then answers
// 403 with no admin token configured and 401 on a bad one.
func TestPprofAdminAuth(t *testing.T) {
	get := func(ts *httptest.Server, token string) int {
		req, err := http.NewRequest("GET", ts.URL+"/debug/pprof/cmdline", nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	_, tsOff := newPaperServer(t, Config{})
	if got := get(tsOff, "tok"); got != http.StatusNotFound {
		t.Fatalf("pprof off: status %d, want 404", got)
	}
	_, tsNoTok := newPaperServer(t, Config{Pprof: true})
	if got := get(tsNoTok, "whatever"); got != http.StatusForbidden {
		t.Fatalf("no token configured: status %d, want 403", got)
	}
	_, ts := newPaperServer(t, Config{Pprof: true, AdminToken: "tok"})
	if got := get(ts, ""); got != http.StatusUnauthorized {
		t.Fatalf("missing token: status %d, want 401", got)
	}
	if got := get(ts, "wrong"); got != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", got)
	}
	if got := get(ts, "tok"); got != http.StatusOK {
		t.Fatalf("good token: status %d, want 200", got)
	}
}

// TestProfilez: the capture ring's endpoints list retained profiles
// and serve raw payloads, behind the same admin auth as pprof.
func TestProfilez(t *testing.T) {
	p := prof.NewProfiler(prof.ProfilerConfig{})
	if id := p.CaptureHeap(); id < 0 {
		t.Fatal("heap capture failed")
	}
	_, ts := newPaperServer(t, Config{Profiler: p, AdminToken: "tok"})

	do := func(path, token string) *http.Response {
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := do("/debug/profilez", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated list: status %d, want 401", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	resp := do("/debug/profilez", "tok")
	var list ProfilezResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Profiles) != 1 || list.Profiles[0].Kind != "heap" {
		t.Fatalf("profile list = %+v", list.Profiles)
	}
	id := list.Profiles[0].ID

	resp = do(fmt.Sprintf("/debug/profilez/%d", id), "tok")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile fetch: status %d", resp.StatusCode)
	}
	payload := readAll(t, resp)
	if len(payload) != list.Profiles[0].Size || len(payload) == 0 {
		t.Fatalf("payload %d bytes, listed size %d", len(payload), list.Profiles[0].Size)
	}
	if resp := do("/debug/profilez/999", "tok"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing profile: status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}
