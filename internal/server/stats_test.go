package server

// Direct unit tests of the log-spaced latency histogram's quantile
// interpolation — previously only exercised indirectly through the
// /statsz wire format.

import (
	"math"
	"testing"
	"time"
)

// quantileFromObservations feeds durations through observeLatency and
// reads a quantile back, exercising the same bucketing /statsz uses.
func quantileFromObservations(t *testing.T, ms []float64, q float64) float64 {
	t.Helper()
	var s stats
	for _, m := range ms {
		s.observeLatency(time.Duration(m * float64(time.Millisecond)))
	}
	snap := s.snapshot()
	switch q {
	case 0.50:
		return snap.Latency.P50MS
	case 0.95:
		return snap.Latency.P95MS
	case 0.99:
		return snap.Latency.P99MS
	}
	t.Fatalf("unsupported quantile %v", q)
	return 0
}

// TestHistQuantileEmpty: no observations yield zero quantiles, not NaN
// or a bucket bound.
func TestHistQuantileEmpty(t *testing.T) {
	var s stats
	snap := s.snapshot()
	if snap.Latency.P50MS != 0 || snap.Latency.P95MS != 0 || snap.Latency.P99MS != 0 {
		t.Fatalf("empty histogram quantiles = %v/%v/%v, want 0",
			snap.Latency.P50MS, snap.Latency.P95MS, snap.Latency.P99MS)
	}
	if snap.Latency.MeanMS != 0 || snap.Latency.Count != 0 {
		t.Fatalf("empty histogram mean=%v count=%d", snap.Latency.MeanMS, snap.Latency.Count)
	}
}

// TestHistQuantileSingleSample: with one observation every quantile
// lands inside that observation's bucket.
func TestHistQuantileSingleSample(t *testing.T) {
	for _, q := range []float64{0.50, 0.95, 0.99} {
		got := quantileFromObservations(t, []float64{7}, q)
		// 7ms lands in the (5, 10] bucket; interpolation stays inside it.
		if got <= 5 || got > 10 {
			t.Errorf("p%v of a single 7ms sample = %v, want within (5, 10]", q*100, got)
		}
	}
}

// TestHistQuantileExactBucketBoundary: an observation exactly on a
// bucket's upper bound counts in that bucket (bounds are inclusive),
// and the quantile of N identical boundary samples is the bound.
func TestHistQuantileExactBucketBoundary(t *testing.T) {
	var s stats
	for i := 0; i < 100; i++ {
		s.observeLatency(10 * time.Millisecond) // exactly the 10ms bound
	}
	snap := s.snapshot()
	// All mass is in the (5, 10] bucket: its count is 100 and the next
	// bucket is empty.
	var bucket10, bucket25 int64
	for _, b := range snap.Latency.Buckets {
		switch float64(b.LE) {
		case 10:
			bucket10 = b.Count
		case 25:
			bucket25 = b.Count
		}
	}
	if bucket10 != 100 || bucket25 != 0 {
		t.Fatalf("boundary sample mis-bucketed: le=10 count=%d, le=25 count=%d", bucket10, bucket25)
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		got := quantileFromObservations(t, repeat(10, 100), q)
		if got <= 5 || got > 10 {
			t.Errorf("p%v of 100 exact-boundary samples = %v, want within (5, 10]", q*100, got)
		}
	}
}

// TestHistQuantileInterpolation: a known mixture interpolates linearly
// within the containing bucket.
func TestHistQuantileInterpolation(t *testing.T) {
	// 50 samples in (1, 2], 50 samples in (25, 50]: p50 must sit at the
	// top of the first group's bucket, p95 inside the second group's.
	ms := append(repeat(1.5, 50), repeat(30, 50)...)
	p50 := quantileFromObservations(t, ms, 0.50)
	if p50 <= 1 || p50 > 2 {
		t.Errorf("p50 = %v, want within (1, 2]", p50)
	}
	p95 := quantileFromObservations(t, ms, 0.95)
	if p95 <= 25 || p95 > 50 {
		t.Errorf("p95 = %v, want within (25, 50]", p95)
	}
	// Exact interpolation arithmetic: rank 50 of 100 falls exactly at
	// the first group's cumulative count, so p50 is that bucket's upper
	// bound.
	counts := make([]int64, len(latencyBucketsMS)+1)
	counts[1] = 50 // (1, 2]
	counts[5] = 50 // (25, 50]
	if got := histQuantile(counts, 100, 0.50); got != 2 {
		t.Errorf("histQuantile p50 = %v, want exactly 2 (rank on cumulative boundary)", got)
	}
	// Rank 95 → 45th sample of the second bucket: 25 + (45/50)*(50-25).
	want := 25 + (45.0/50.0)*25
	if got := histQuantile(counts, 100, 0.95); math.Abs(got-want) > 1e-9 {
		t.Errorf("histQuantile p95 = %v, want %v", got, want)
	}
}

// TestHistQuantileInfOverflow: observations beyond the last finite
// bound land in the +Inf bucket and quantiles report the last finite
// bound rather than infinity.
func TestHistQuantileInfOverflow(t *testing.T) {
	var s stats
	for i := 0; i < 10; i++ {
		s.observeLatency(time.Hour) // far beyond the 10000ms last bound
	}
	snap := s.snapshot()
	last := snap.Latency.Buckets[len(snap.Latency.Buckets)-1]
	if !math.IsInf(float64(last.LE), 1) || last.Count != 10 {
		t.Fatalf("+Inf bucket = %+v, want all 10 samples", last)
	}
	lastFinite := latencyBucketsMS[len(latencyBucketsMS)-1]
	for _, q := range []float64{0.50, 0.95, 0.99} {
		got := quantileFromObservations(t, repeat(3.6e6, 10), q)
		if got != lastFinite {
			t.Errorf("p%v of overflow-only samples = %v, want last finite bound %v", q*100, got, lastFinite)
		}
		if math.IsInf(got, 1) || math.IsNaN(got) {
			t.Errorf("p%v produced %v", q*100, got)
		}
	}
}

// TestHistQuantileMonotone: quantiles never decrease as q rises.
func TestHistQuantileMonotone(t *testing.T) {
	ms := append(append(repeat(0.5, 30), repeat(8, 40)...), repeat(300, 30)...)
	var s stats
	for _, m := range ms {
		s.observeLatency(time.Duration(m * float64(time.Millisecond)))
	}
	snap := s.snapshot()
	if !(snap.Latency.P50MS <= snap.Latency.P95MS && snap.Latency.P95MS <= snap.Latency.P99MS) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v",
			snap.Latency.P50MS, snap.Latency.P95MS, snap.Latency.P99MS)
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
