package sssp

import (
	"sync"

	"commdb/internal/graph"
)

// Pool recycles Workspaces across queries and across the worker
// goroutines of one query, so concurrent Dijkstra runs never allocate
// fresh distance arrays on the hot path. A Workspace's scratch is the
// dominant per-query allocation (four O(n) arrays plus the heap), and
// a serving process runs many short queries concurrently — the pool
// turns that into a steady state of ~max-concurrency workspaces.
//
// The pool is graph-agnostic: Get rebinds whatever workspace it finds
// to the requested graph, so one pool serves full-graph queries and
// the per-query projected subgraphs alike. Safety across reuses rests
// on epoch stamping (see Workspace.bind); each checkout additionally
// bumps the workspace's generation stamp so leakage bugs are
// attributable in tests.
//
// A nil *Pool is valid: Get allocates a fresh workspace and Put drops
// it, so un-pooled paths need no branches at the call sites.
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty workspace pool.
func NewPool() *Pool {
	return &Pool{p: sync.Pool{New: func() any { return &Workspace{} }}}
}

// Get returns a workspace bound to g, recycling a pooled one when
// available. The caller owns it until Put.
func (p *Pool) Get(g *graph.Graph) *Workspace {
	if p == nil {
		return NewWorkspace(g)
	}
	w := p.p.Get().(*Workspace)
	w.bind(g)
	w.gen++
	return w
}

// Put returns a workspace to the pool. The workspace's budget and
// trace are detached so a pooled workspace never pins a finished
// query's governance state or trace.
func (p *Pool) Put(w *Workspace) {
	if w == nil {
		return
	}
	w.budget = nil
	w.tr = nil
	w.tick = 0
	if p == nil {
		return
	}
	p.p.Put(w)
}
