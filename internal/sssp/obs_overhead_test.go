package sssp

// Trace-overhead guarantees at the Dijkstra layer: with tracing
// disabled (the default) the instrumented hot path allocates nothing,
// and with tracing enabled the only extra cost is one flush per run.

import (
	"testing"

	"commdb/internal/graph"
	"commdb/internal/obs"
)

// TestRunDisabledTraceZeroAlloc: a warmed Workspace runs the fully
// instrumented Dijkstra with tracing disabled at zero allocations per
// run — the disabled path must stay free, since every query pays it.
func TestRunDisabledTraceZeroAlloc(t *testing.T) {
	g := overheadGraph(t, 2000, 8000)
	ws := NewWorkspace(g)
	res := NewResult(g.NumNodes())
	seeds := []Seed{{Node: 0}, {Node: 311}, {Node: 622}}

	// Warm the scratch arrays and the heap so steady-state runs reuse
	// capacity.
	ws.Run(Forward, seeds, 8, res)

	if avg := testing.AllocsPerRun(100, func() {
		ws.Run(Forward, seeds, 8, res)
	}); avg != 0 {
		t.Fatalf("untraced Run allocates %.1f times per run, want 0", avg)
	}
}

// TestRunEnabledTraceAllocBound: enabling tracing must not introduce
// per-edge or per-node allocations — after the first flush has
// populated the counter map, further runs stay allocation-free too.
func TestRunEnabledTraceAllocBound(t *testing.T) {
	g := overheadGraph(t, 2000, 8000)
	ws := NewWorkspace(g)
	res := NewResult(g.NumNodes())
	seeds := []Seed{{Node: 0}, {Node: 311}, {Node: 622}}

	tr := obs.NewTrace("overhead")
	ws.SetTrace(tr)
	ws.Run(Forward, seeds, 8, res) // warm arrays + counter map

	if avg := testing.AllocsPerRun(100, func() {
		ws.Run(Forward, seeds, 8, res)
	}); avg != 0 {
		t.Fatalf("traced Run allocates %.1f times per run after warm-up, want 0", avg)
	}
	if tr.Summary().Counter("dijkstra_runs") < 100 {
		t.Fatal("trace did not record the runs")
	}
}

func overheadGraph(tb testing.TB, n, m int) *graph.Graph {
	tb.Helper()
	bld := graph.NewBuilder()
	for i := 0; i < n; i++ {
		bld.AddNode("")
	}
	for i := 0; i < m; i++ {
		// Deterministic pseudo-random edges without math/rand, so the
		// test is hermetic.
		from := graph.NodeID((i * 2654435761) % n)
		to := graph.NodeID((i*40503 + 17) % n)
		bld.AddEdge(from, to, float64(i%7+1))
	}
	g, err := bld.Freeze()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// BenchmarkRunTraceOff/On measure the tracing tax on the Dijkstra hot
// path; compare with benchstat. The design target is "off is free, on
// is one flush per run".
func BenchmarkRunTraceOff(b *testing.B) {
	benchmarkRunTrace(b, nil)
}

func BenchmarkRunTraceOn(b *testing.B) {
	benchmarkRunTrace(b, obs.NewTrace("bench"))
}

func benchmarkRunTrace(b *testing.B, tr *obs.Trace) {
	g := benchGraph(b, 10000, 40000)
	ws := NewWorkspace(g)
	ws.SetTrace(tr)
	res := NewResult(g.NumNodes())
	seeds := []graph.NodeID{0, 311, 622, 933}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.RunFromNodes(Forward, seeds, 8, res)
	}
}
