package sssp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"commdb/internal/graph"
)

// resultEqual compares two runs node by node.
func resultEqual(t *testing.T, g *graph.Graph, a, b *Result) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("settled %d vs %d nodes", a.Len(), b.Len())
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		da, oka := a.Dist(id)
		db, okb := b.Dist(id)
		if oka != okb || (oka && da != db) {
			t.Fatalf("node %d: (%v,%v) vs (%v,%v)", v, da, oka, db, okb)
		}
		if oka && a.Src(id) != b.Src(id) {
			t.Fatalf("node %d: src %d vs %d", v, a.Src(id), b.Src(id))
		}
	}
}

// TestPoolReuseNoLeakage runs one query's Dijkstra on a pooled
// workspace, recycles it, and asserts the next query's run is
// byte-identical to a fresh workspace's: no tentative distance, source
// or via entry of the first run may leak into the second.
func TestPoolReuseNoLeakage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(t, rng, 200, 900)
	pool := NewPool()

	// Query A: saturate the workspace's scratch from many seeds.
	wsA := pool.Get(g)
	genA := wsA.Generation()
	resA := NewResult(g.NumNodes())
	seedsA := []graph.NodeID{0, 3, 5, 9, 11}
	wsA.RunFromNodes(Reverse, seedsA, 30, resA)
	if resA.Len() == 0 {
		t.Fatal("query A settled nothing; test graph too sparse")
	}
	pool.Put(wsA)

	// Query B on the recycled workspace, different seeds and radius.
	wsB := pool.Get(g)
	if wsB.Generation() <= genA && wsB == wsA {
		t.Fatalf("generation did not advance on reuse: %d -> %d", genA, wsB.Generation())
	}
	resB := NewResult(g.NumNodes())
	seedsB := []graph.NodeID{42}
	wsB.RunFromNodes(Forward, seedsB, 12, resB)

	fresh := NewResult(g.NumNodes())
	NewWorkspace(g).RunFromNodes(Forward, seedsB, 12, fresh)
	resultEqual(t, g, resB, fresh)
}

// TestPoolRebindAcrossGraphs recycles one workspace across graphs of
// different sizes — the projected-subgraph pattern, where every query
// binds the pool's workspaces to a fresh small graph — and checks each
// run against a fresh workspace's.
func TestPoolRebindAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	big := randomGraph(t, rng, 300, 1200)
	small := randomGraph(t, rng, 40, 200)
	pool := NewPool()

	ws := pool.Get(big)
	res := NewResult(big.NumNodes())
	ws.RunFromNodes(Reverse, []graph.NodeID{1, 2, 3}, 25, res)
	pool.Put(ws)

	// Shrink: bind to the small graph. The retained stamps are stale but
	// epoch-superseded.
	ws = pool.Get(small)
	resSmall := NewResult(small.NumNodes())
	ws.RunFromNodes(Forward, []graph.NodeID{0}, 18, resSmall)
	freshSmall := NewResult(small.NumNodes())
	NewWorkspace(small).RunFromNodes(Forward, []graph.NodeID{0}, 18, freshSmall)
	resultEqual(t, small, resSmall, freshSmall)
	pool.Put(ws)

	// Grow again: back to the big graph within (or beyond) capacity.
	ws = pool.Get(big)
	resBig := NewResult(big.NumNodes())
	ws.RunFromNodes(Reverse, []graph.NodeID{7}, 20, resBig)
	freshBig := NewResult(big.NumNodes())
	NewWorkspace(big).RunFromNodes(Reverse, []graph.NodeID{7}, 20, freshBig)
	resultEqual(t, big, resBig, freshBig)
	pool.Put(ws)
}

// TestPoolConcurrentGet hammers one pool from many goroutines, each
// verifying its run against an oracle distance, so a workspace handed
// to two goroutines at once (the leakage failure mode) is caught by
// the race detector and by wrong distances.
func TestPoolConcurrentGet(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(t, rng, 120, 500)
	oracle := floyd(g, false) // oracle[v][seed] = dist(v, seed), the Reverse semantics
	pool := NewPool()

	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		seed := graph.NodeID(w % g.NumNodes())
		go func() {
			res := NewResult(g.NumNodes())
			for iter := 0; iter < 50; iter++ {
				ws := pool.Get(g)
				ws.RunFromNodes(Reverse, []graph.NodeID{seed}, 40, res)
				for _, v := range res.Visited() {
					d, _ := res.Dist(v)
					if want := oracle[v][seed]; math.Abs(d-want) > 1e-9 {
						done <- fmt.Errorf("node %d: dist %v, oracle %v", v, d, want)
						return
					}
				}
				pool.Put(ws)
			}
			done <- nil
		}()
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestNilPool asserts a nil pool degrades to plain allocation.
func TestNilPool(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(t, rng, 20, 60)
	var pool *Pool
	ws := pool.Get(g)
	if ws == nil || ws.Graph() != g {
		t.Fatal("nil pool did not allocate a bound workspace")
	}
	pool.Put(ws) // must not panic
}
