package sssp

import (
	"math/rand"
	"testing"

	"commdb/internal/graph"
)

func benchGraph(b *testing.B, n, m int) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	bld := graph.NewBuilder()
	for i := 0; i < n; i++ {
		bld.AddNode("")
	}
	for i := 0; i < m; i++ {
		bld.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), rng.Float64()*4+1)
	}
	g, err := bld.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkBoundedDijkstra measures one radius-bounded single-source
// run on a 10K-node sparse graph — the unit cost of the paper's
// Neighbor() subroutine.
func BenchmarkBoundedDijkstra(b *testing.B) {
	g := benchGraph(b, 10000, 40000)
	ws := NewWorkspace(g)
	res := NewResult(g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.RunFromNodes(Forward, []graph.NodeID{graph.NodeID(i % g.NumNodes())}, 8, res)
	}
}

// BenchmarkMultiSourceReverse measures the multi-source reverse run
// that computes a whole neighborSet at once.
func BenchmarkMultiSourceReverse(b *testing.B) {
	g := benchGraph(b, 10000, 40000)
	ws := NewWorkspace(g)
	res := NewResult(g.NumNodes())
	seeds := make([]graph.NodeID, 32)
	for i := range seeds {
		seeds[i] = graph.NodeID(i * 311 % g.NumNodes())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.RunFromNodes(Reverse, seeds, 8, res)
	}
}
