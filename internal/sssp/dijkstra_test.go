package sssp

import (
	"math"
	"math/rand"
	"testing"

	"commdb/internal/graph"
)

// randomGraph builds a random weighted directed graph for oracle tests.
func randomGraph(t *testing.T, rng *rand.Rand, n, m int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode("")
	}
	for i := 0; i < m; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), float64(rng.Intn(10)+1))
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// floyd computes all-pairs shortest distances by Floyd–Warshall,
// optionally on the reversed graph.
func floyd(g *graph.Graph, reverse bool) [][]float64 {
	n := g.NumNodes()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, e := range g.OutEdges(graph.NodeID(u)) {
			from, to := u, int(e.To)
			if reverse {
				from, to = to, from
			}
			if e.Weight < d[from][to] {
				d[from][to] = e.Weight
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d[i][k] == math.Inf(1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func TestSingleSourceAgainstFloyd(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(30) + 2
		g := randomGraph(t, rng, n, n*3)
		apsp := floyd(g, false)
		w := NewWorkspace(g)
		res := NewResult(n)
		src := graph.NodeID(rng.Intn(n))
		rmax := float64(rng.Intn(30) + 1)
		w.RunFromNodes(Forward, []graph.NodeID{src}, rmax, res)
		for v := 0; v < n; v++ {
			want := apsp[src][v]
			got, ok := res.Dist(graph.NodeID(v))
			if want <= rmax {
				if !ok || got != want {
					t.Fatalf("trial %d: dist(%d,%d) = %v,%v, want %v within rmax %v", trial, src, v, got, ok, want, rmax)
				}
			} else if ok {
				t.Fatalf("trial %d: node %d settled at %v beyond rmax %v (true %v)", trial, v, got, rmax, want)
			}
		}
	}
}

func TestReverseAgainstFloyd(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(30) + 2
		g := randomGraph(t, rng, n, n*3)
		apsp := floyd(g, false)
		w := NewWorkspace(g)
		res := NewResult(n)
		sink := graph.NodeID(rng.Intn(n))
		rmax := float64(rng.Intn(30) + 1)
		// Reverse run from sink computes dist(v, sink) in the original
		// orientation — the paper's Neighbor() semantics.
		w.RunFromNodes(Reverse, []graph.NodeID{sink}, rmax, res)
		for v := 0; v < n; v++ {
			want := apsp[v][sink]
			got, ok := res.Dist(graph.NodeID(v))
			if want <= rmax {
				if !ok || got != want {
					t.Fatalf("trial %d: dist(%d,%d) = %v,%v, want %v", trial, v, sink, got, ok, want)
				}
			} else if ok {
				t.Fatalf("trial %d: node %d settled beyond rmax", trial, v)
			}
		}
	}
}

func TestMultiSourceMinAndSrc(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(25) + 3
		g := randomGraph(t, rng, n, n*3)
		apsp := floyd(g, false)
		w := NewWorkspace(g)
		res := NewResult(n)
		var seeds []graph.NodeID
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				seeds = append(seeds, graph.NodeID(i))
			}
		}
		if len(seeds) == 0 {
			seeds = append(seeds, 0)
		}
		rmax := float64(rng.Intn(25) + 1)
		w.RunFromNodes(Reverse, seeds, rmax, res)
		for v := 0; v < n; v++ {
			want := math.Inf(1)
			for _, s := range seeds {
				if apsp[v][s] < want {
					want = apsp[v][s]
				}
			}
			got, ok := res.Dist(graph.NodeID(v))
			if want <= rmax {
				if !ok || got != want {
					t.Fatalf("trial %d: multi dist(%d) = %v,%v, want %v", trial, v, got, ok, want)
				}
				// The reported source must realize the minimum.
				s := res.Src(graph.NodeID(v))
				if apsp[v][s] != want {
					t.Fatalf("trial %d: Src(%d)=%d realizes %v, want %v", trial, v, s, apsp[v][s], want)
				}
			} else if ok {
				t.Fatalf("trial %d: node %d settled beyond rmax", trial, v)
			}
		}
	}
}

func TestSeedOffsets(t *testing.T) {
	// Line graph a -> b -> c with weight 2 each; seed a at offset 1.
	b := graph.NewBuilder()
	a := b.AddNode("a")
	bb := b.AddNode("b")
	c := b.AddNode("c")
	b.AddEdge(a, bb, 2)
	b.AddEdge(bb, c, 2)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkspace(g)
	res := NewResult(3)
	w.Run(Forward, []Seed{{Node: a, Dist: 1}}, 5, res)
	if d, _ := res.Dist(a); d != 1 {
		t.Fatalf("dist(a) = %v, want seed offset 1", d)
	}
	if d, _ := res.Dist(c); d != 5 {
		t.Fatalf("dist(c) = %v, want 5", d)
	}
	// Offset beyond rmax excludes the seed entirely.
	w.Run(Forward, []Seed{{Node: a, Dist: 9}}, 5, res)
	if res.Len() != 0 {
		t.Fatalf("seed beyond rmax settled %d nodes", res.Len())
	}
}

func TestVisitedSortedByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(t, rng, 60, 240)
	w := NewWorkspace(g)
	res := NewResult(60)
	w.RunFromNodes(Forward, []graph.NodeID{0, 5, 10}, 40, res)
	last := -1.0
	for _, v := range res.Visited() {
		d, _ := res.Dist(v)
		if d < last {
			t.Fatalf("visited order not sorted: %v after %v", d, last)
		}
		last = d
	}
}

func TestResultReuseAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := randomGraph(t, rng, 40, 160)
	apsp := floyd(g, false)
	w := NewWorkspace(g)
	res := NewResult(40)
	for run := 0; run < 200; run++ {
		src := graph.NodeID(rng.Intn(40))
		rmax := float64(rng.Intn(20))
		w.RunFromNodes(Forward, []graph.NodeID{src}, rmax, res)
		for v := 0; v < 40; v++ {
			want := apsp[src][v]
			got, ok := res.Dist(graph.NodeID(v))
			if want <= rmax != ok {
				t.Fatalf("run %d: settled mismatch at %d", run, v)
			}
			if ok && got != want {
				t.Fatalf("run %d: dist %v want %v", run, got, want)
			}
		}
	}
}

func TestZeroRadius(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(31)), 10, 30)
	w := NewWorkspace(g)
	res := NewResult(10)
	w.RunFromNodes(Forward, []graph.NodeID{3}, 0, res)
	// Only the seed itself (and any node reachable at zero total
	// weight, impossible with positive weights) is settled.
	if res.Len() != 1 || !res.Contains(3) {
		t.Fatalf("zero radius settled %d nodes", res.Len())
	}
	if res.Src(3) != 3 {
		t.Fatal("seed's src should be itself")
	}
}

func TestEmptySeeds(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(37)), 5, 10)
	w := NewWorkspace(g)
	res := NewResult(5)
	w.RunFromNodes(Forward, nil, 10, res)
	if res.Len() != 0 {
		t.Fatal("no seeds should settle nothing")
	}
}

func TestDuplicateSeedsKeepBest(t *testing.T) {
	b := graph.NewBuilder()
	a := b.AddNode("a")
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkspace(g)
	res := NewResult(1)
	w.Run(Forward, []Seed{{a, 3}, {a, 1}, {a, 2}}, 10, res)
	if d, _ := res.Dist(a); d != 1 {
		t.Fatalf("dist = %v, want best duplicate seed 1", d)
	}
}

func TestEpochWraparound(t *testing.T) {
	// Force the epoch counter to wrap and verify correctness persists.
	g := randomGraph(t, rand.New(rand.NewSource(41)), 8, 20)
	w := NewWorkspace(g)
	w.epoch = math.MaxUint32 - 3
	res := NewResult(8)
	apsp := floyd(g, false)
	for run := 0; run < 10; run++ {
		w.RunFromNodes(Forward, []graph.NodeID{0}, 100, res)
		for v := 0; v < 8; v++ {
			want := apsp[0][v]
			got, ok := res.Dist(graph.NodeID(v))
			if (want <= 100) != ok || (ok && got != want) {
				t.Fatalf("run %d after wrap: dist(%d) = %v,%v want %v", run, v, got, ok, want)
			}
		}
	}
}
