// Package sssp implements radius-bounded multi-source Dijkstra over a
// database graph, in both edge directions.
//
// The paper's Neighbor() (Algorithm 2) adds a virtual sink t with
// zero-weight edges from every keyword node and runs Dijkstra over the
// reversed graph; GetCommunity() (Algorithm 4) does the same with a
// virtual source s over the forward graph. Both constructions are
// exactly multi-source Dijkstra seeded at distance zero, which is how
// this package implements them — no virtual nodes are materialized.
//
// A Workspace carries the scratch arrays (tentative distances with
// epoch stamping and the binary heap) so that the O(l) Dijkstra runs
// per enumeration step allocate nothing.
package sssp

import (
	"math"

	"commdb/internal/govern"
	"commdb/internal/graph"
	"commdb/internal/heap"
	"commdb/internal/obs"
)

// Direction selects which adjacency a run follows.
type Direction int

const (
	// Forward computes dist(seed, v): shortest paths leaving the seeds.
	Forward Direction = iota
	// Reverse computes dist(v, seed): shortest paths into the seeds,
	// i.e. Dijkstra over the reversed graph.
	Reverse
)

// Seed is a starting point of a run with an initial distance offset
// (zero for the paper's virtual source/sink constructions).
type Seed struct {
	Node graph.NodeID
	Dist float64
}

// Result holds the settled nodes of one bounded Dijkstra run: for every
// node within the radius, its shortest distance and the seed that
// realizes it (the paper's src(N_i, u) / min(N_i, u) bookkeeping).
//
// A Result is sized to a graph and can be reused across runs; lookup is
// O(1) via a dense position index, while iteration touches only the
// settled nodes.
type Result struct {
	pos     []int32 // node -> index into visited, or -1
	visited []graph.NodeID
	dist    []float64
	src     []graph.NodeID
	via     []graph.NodeID // next hop toward the seed (or previous hop from it)
}

// NewResult returns an empty Result for graphs of n nodes.
func NewResult(n int) *Result {
	r := &Result{pos: make([]int32, n)}
	for i := range r.pos {
		r.pos[i] = -1
	}
	return r
}

// Reset clears the result in O(settled nodes).
func (r *Result) Reset() {
	for _, v := range r.visited {
		r.pos[v] = -1
	}
	r.visited = r.visited[:0]
	r.dist = r.dist[:0]
	r.src = r.src[:0]
	r.via = r.via[:0]
}

// Contains reports whether v was settled within the radius.
func (r *Result) Contains(v graph.NodeID) bool { return r.pos[v] >= 0 }

// Dist returns the shortest distance of v and whether v was settled.
func (r *Result) Dist(v graph.NodeID) (float64, bool) {
	p := r.pos[v]
	if p < 0 {
		return math.Inf(1), false
	}
	return r.dist[p], true
}

// Src returns the seed node realizing v's shortest distance. It must
// only be called when Contains(v) is true.
func (r *Result) Src(v graph.NodeID) graph.NodeID { return r.src[r.pos[v]] }

// Via returns v's neighbour on its shortest path: the next hop toward
// the seed on a Reverse run, or the previous hop from the seed on a
// Forward run. Seeds return themselves. It must only be called when
// Contains(v) is true.
func (r *Result) Via(v graph.NodeID) graph.NodeID { return r.via[r.pos[v]] }

// PathTo reconstructs v's shortest path by following Via hops until the
// seed: on a Reverse run the returned nodes run v → … → seed in original
// edge orientation; on a Forward run they run v → … → seed backwards
// along the path (i.e. reversed). It must only be called when
// Contains(v) is true.
func (r *Result) PathTo(v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for {
		out = append(out, v)
		next := r.Via(v)
		if next == v {
			return out
		}
		v = next
	}
}

// Visited returns the settled nodes in non-decreasing distance order.
// The slice aliases the result's storage.
func (r *Result) Visited() []graph.NodeID { return r.visited }

// Len reports the number of settled nodes.
func (r *Result) Len() int { return len(r.visited) }

// Bytes estimates the logical memory footprint of the result.
func (r *Result) Bytes() int64 {
	return int64(len(r.pos))*4 + int64(cap(r.visited))*4 + int64(cap(r.dist))*8 +
		int64(cap(r.src))*4 + int64(cap(r.via))*4
}

// Load replaces the result's contents with an externally produced
// settle sequence — the replay path for persisted neighbor-set
// artifacts (internal/kwcache). The slices are copied, must be equal
// length, and must list nodes in the non-decreasing distance order a
// live run would settle them in; every node id must be within the
// result's graph size. Violating those invariants corrupts lookups, so
// artifact loaders validate before calling.
func (r *Result) Load(visited []graph.NodeID, dist []float64, src, via []graph.NodeID) {
	r.Reset()
	for i, v := range visited {
		r.add(v, dist[i], src[i], via[i])
	}
}

func (r *Result) add(v graph.NodeID, d float64, src, via graph.NodeID) {
	r.pos[v] = int32(len(r.visited))
	r.visited = append(r.visited, v)
	r.dist = append(r.dist, d)
	r.src = append(r.src, src)
	r.via = append(r.via, via)
}

// Workspace holds the per-graph scratch state shared by successive
// Dijkstra runs. It is not safe for concurrent use, but a Pool of
// workspaces lets any number of concurrent runs each own one.
type Workspace struct {
	g     *graph.Graph
	tent  []float64
	tsrc  []graph.NodeID
	tvia  []graph.NodeID
	stamp []uint32
	epoch uint32
	pq    heap.Binary

	// gen is the workspace's version stamp: bumped every time a Pool
	// hands the workspace out, so tests (and debugging) can tell
	// distinct checkouts of one recycled workspace apart. Correctness
	// across reuses rests on epoch stamping: every Run bumps epoch, so
	// tentative state from any earlier run — same query or not — can
	// never satisfy a current-epoch stamp check.
	gen uint64

	// budget, when non-nil, governs every run: work is charged in
	// batches of ~govern.Stride relaxations and a run stops early
	// (leaving a truncated Result) once the budget trips. tick carries
	// uncharged work between batches and across runs.
	budget *govern.Budget
	tick   int64

	// tr, when non-nil, receives one obs.DijkstraRun per Run: counters
	// are accumulated in locals inside the hot loop and flushed once at
	// the end, so tracing adds no allocations and no per-edge trace
	// touches.
	tr *obs.Trace

	// lastRun holds the counter bundle of the most recent Run (complete
	// or budget-truncated), so callers that charge a run to a specific
	// owner — e.g. the engine attributing a full keyword-set run to its
	// keyword — can read it back without a second trace channel. Plain
	// struct assignment: the disabled-trace path stays zero-alloc.
	lastRun obs.DijkstraRun
}

// NewWorkspace returns a Workspace for g.
func NewWorkspace(g *graph.Graph) *Workspace {
	w := &Workspace{}
	w.bind(g)
	return w
}

// bind points the workspace at g, sizing the scratch arrays to the
// graph. Rebinding a used workspace to another graph is safe without
// wiping: retained stamps are all ≤ the current epoch, and Run bumps
// the epoch before stamping, so stale entries can never pass a
// current-epoch check. When the arrays must grow they are reallocated
// (zero stamps, equally unreachable).
func (w *Workspace) bind(g *graph.Graph) {
	w.g = g
	n := g.NumNodes()
	if cap(w.tent) < n {
		w.tent = make([]float64, n)
		w.tsrc = make([]graph.NodeID, n)
		w.tvia = make([]graph.NodeID, n)
		w.stamp = make([]uint32, n)
		return
	}
	w.tent = w.tent[:n]
	w.tsrc = w.tsrc[:n]
	w.tvia = w.tvia[:n]
	w.stamp = w.stamp[:n]
}

// Graph returns the graph the workspace was created for.
func (w *Workspace) Graph() *graph.Graph { return w.g }

// Generation reports how many times a Pool has handed this workspace
// out; 0 for a workspace that never lived in a pool.
func (w *Workspace) Generation() uint64 { return w.gen }

// SetBudget installs a governance budget consulted by every subsequent
// run; nil removes governance. When the budget trips, the current run
// stops and leaves a truncated Result — callers must treat any Result
// produced after Budget.Err() reports non-nil as partial.
func (w *Workspace) SetBudget(b *govern.Budget) { w.budget = b }

// SetTrace installs a query trace that every subsequent run reports
// its work counters to; nil (the default) disables tracing.
func (w *Workspace) SetTrace(t *obs.Trace) { w.tr = t }

// chargeTick batches n work units into the workspace's local counter
// and charges the budget once per govern.Stride, reporting whether the
// run must stop.
func (w *Workspace) chargeTick(n int64) bool {
	w.tick += n
	if w.tick < govern.Stride {
		return false
	}
	batch := w.tick
	w.tick = 0
	return w.budget.ChargeRelaxations(batch) != nil
}

// Bytes estimates the logical memory footprint of the workspace.
func (w *Workspace) Bytes() int64 {
	return int64(len(w.tent))*8 + int64(len(w.tsrc))*8 + int64(len(w.stamp))*4
}

// Run executes one bounded Dijkstra: shortest paths from the seed set,
// following out-edges (Forward) or in-edges (Reverse), settling every
// node whose distance is at most rmax. The result is written into res,
// which is reset first.
//
// When the graph carries node weights (the paper's footnote-1
// extension), a path's cost additionally counts the node weight of
// every node on it except the path's source: a Forward run adds the
// entered node's weight on each relaxation, a Reverse run adds the
// weight of the node being left in the original orientation. The two
// conventions compose so that dist(s,u) + dist(u,t) counts u exactly
// once, which is what GetCommunity's membership test needs.
//
// When a budget is installed (SetBudget) the run charges its work in
// amortized batches and stops early once the budget trips; res then
// holds only the nodes settled so far, and the stop reason is readable
// from the budget. A run started after the budget tripped settles
// nothing.
func (w *Workspace) Run(dir Direction, seeds []Seed, rmax float64, res *Result) {
	w.run(dir, seeds, rmax, res, nil)
}

// RunWithin is Run restricted to an induced subgraph: only nodes v with
// within[v] true are seeded, relaxed into, or settled. Edges leaving
// the region are ignored — callers that need paths through the outside
// (e.g. the partial index rebuild's boundary-conditioned repair) fold
// them into seed distances instead.
func (w *Workspace) RunWithin(dir Direction, seeds []Seed, rmax float64, res *Result, within []bool) {
	w.run(dir, seeds, rmax, res, within)
}

func (w *Workspace) run(dir Direction, seeds []Seed, rmax float64, res *Result, within []bool) {
	res.Reset()
	if w.budget != nil && w.budget.Err() != nil {
		w.lastRun = obs.DijkstraRun{} // LastRun reflects this (empty) run
		return                        // tripped budget: every further run is an empty no-op
	}
	w.epoch++
	if w.epoch == 0 { // wrapped: wipe stamps once
		// The wipe covers the full capacity, not just the current graph's
		// prefix: a later bind to a larger graph within capacity would
		// otherwise re-expose stale stamps from before the wrap.
		full := w.stamp[:cap(w.stamp)]
		for i := range full {
			full[i] = 0
		}
		w.epoch = 1
	}
	w.pq.Reset()

	// Trace counters live in locals so the hot loop costs a register
	// increment, and are flushed once per run (obsFlush no-ops on a nil
	// trace; the disabled path is allocation-free by test).
	var tc obs.DijkstraRun

	for _, s := range seeds {
		if s.Dist > rmax {
			continue
		}
		if within != nil && !within[s.Node] {
			continue
		}
		if w.stamp[s.Node] == w.epoch && w.tent[s.Node] <= s.Dist {
			continue
		}
		w.stamp[s.Node] = w.epoch
		w.tent[s.Node] = s.Dist
		w.tsrc[s.Node] = s.Node
		w.tvia[s.Node] = s.Node
		w.pq.Push(s.Dist, s.Node)
		tc.HeapPushes++
	}

	for w.pq.Len() > 0 {
		it := w.pq.Pop()
		tc.HeapPops++
		v := it.Node
		if res.Contains(v) {
			continue // stale entry
		}
		if w.stamp[v] != w.epoch || it.Dist > w.tent[v] {
			continue // superseded tentative distance
		}
		if it.Dist > rmax {
			tc.RadiusCutoffs++
			break
		}
		res.add(v, it.Dist, w.tsrc[v], w.tvia[v])

		var adj []graph.Edge
		if dir == Forward {
			adj = w.g.OutEdges(v)
		} else {
			adj = w.g.InEdges(v)
		}
		tc.Relaxations += int64(len(adj))
		if w.budget != nil && w.chargeTick(int64(len(adj))+1) {
			w.obsFlush(res, tc)
			return // budget tripped: res holds the partial run
		}
		nw := w.g.NodeWeights()
		for _, e := range adj {
			nd := it.Dist + e.Weight
			if nw != nil {
				if dir == Forward {
					nd += nw[e.To] // entering e.To
				} else {
					nd += nw[v] // leaving v in the original orientation
				}
			}
			if nd > rmax {
				tc.RadiusCutoffs++
				continue
			}
			if within != nil && !within[e.To] {
				continue
			}
			if res.Contains(e.To) {
				continue
			}
			if w.stamp[e.To] == w.epoch && w.tent[e.To] <= nd {
				continue
			}
			w.stamp[e.To] = w.epoch
			w.tent[e.To] = nd
			w.tsrc[e.To] = w.tsrc[v]
			w.tvia[e.To] = v
			w.pq.Push(nd, e.To)
			tc.HeapPushes++
		}
	}
	// Flush the remainder so many small runs (one per index term)
	// account as accurately as one large run.
	if w.budget != nil && w.tick > 0 {
		batch := w.tick
		w.tick = 0
		w.budget.ChargeRelaxations(batch)
	}
	w.obsFlush(res, tc)
}

// obsFlush reports one finished (or truncated) run to the trace and
// remembers it as the workspace's last run.
func (w *Workspace) obsFlush(res *Result, tc obs.DijkstraRun) {
	tc.Visits = int64(res.Len())
	w.lastRun = tc
	if w.tr == nil {
		return
	}
	w.tr.AddDijkstra(tc)
}

// LastRun returns the counter bundle of the workspace's most recent
// Run. Valid until the next Run on this workspace.
func (w *Workspace) LastRun() obs.DijkstraRun { return w.lastRun }

// RunFromNodes is Run with all seeds at distance zero.
func (w *Workspace) RunFromNodes(dir Direction, nodes []graph.NodeID, rmax float64, res *Result) {
	seeds := make([]Seed, len(nodes))
	for i, v := range nodes {
		seeds[i] = Seed{Node: v}
	}
	w.Run(dir, seeds, rmax, res)
}
