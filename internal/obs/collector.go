package obs

// Collector is the always-on continuous layer: every completed query —
// served over HTTP, run from the CLI, or replayed in a benchmark — is
// turned into a QueryRecord, judged by the SLO watchdog, folded into
// the per-class rolling aggregates, and offered to the tail-sampling
// capture ring. It owns no exposition of its own; Register wires its
// state into an existing Registry, and SlowLog/Classes snapshots feed
// JSON surfaces (GET /debug/queries, /statsz, the commsearch slowlog
// command).

import (
	"sync/atomic"
	"time"
)

// CollectorConfig bundles the continuous layer's knobs. Zero values get
// defaults throughout.
type CollectorConfig struct {
	Capture  CaptureConfig
	Watchdog WatchdogConfig
	Classes  ClassesConfig
}

// Collector glues capture, classes and the watchdog together. A nil
// *Collector ignores every call.
type Collector struct {
	capture  *Capture
	classes  *Classes
	watchdog WatchdogConfig
	breaches atomic.Int64

	// onBreach, when set, runs synchronously for every SLO breach —
	// the server hangs its slog warning here.
	onBreach func(*QueryRecord)
}

// NewCollector builds the continuous observability layer.
func NewCollector(cfg CollectorConfig) *Collector {
	return &Collector{
		capture:  NewCapture(cfg.Capture),
		classes:  NewClasses(cfg.Classes),
		watchdog: cfg.Watchdog.withDefaults(),
	}
}

// OnBreach registers the breach hook (replacing any previous one). Set
// it before traffic starts; it is not synchronized against Observe.
func (c *Collector) OnBreach(f func(*QueryRecord)) {
	if c != nil {
		c.onBreach = f
	}
}

// NewQueryRecord assembles the capture record for one finished query.
// sum may be nil (a query that failed before tracing); stopReason empty
// means clean completion.
func NewQueryRecord(qid, endpoint string, keywords []string, rmax float64, k int, indexed bool, results int, stopReason string, start time.Time, elapsed time.Duration, sum *Summary) *QueryRecord {
	rec := &QueryRecord{
		QueryID:  qid,
		Endpoint: endpoint,
		Keywords: keywords,
		Rmax:     rmax,
		K:        k,
		Indexed:  indexed,
		Class:    ClassKey(len(keywords), indexed),
		Start:    start,
		TotalMS:  float64(elapsed) / float64(time.Millisecond),
		Results:  results,
		Trace:    sum,
	}
	if sum != nil {
		if fp := sum.Labels["fingerprint"]; fp != "" {
			rec.Fingerprint = fp
		}
	}
	if stopReason != "" {
		rec.StopReason = stopReason
		rec.Errored = true
	}
	return rec
}

// Observe runs one completed query through the continuous layer:
// watchdog verdict, per-class aggregation, capture decision. It
// returns the record's breach verdict.
func (c *Collector) Observe(rec *QueryRecord) (breached bool) {
	if c == nil || rec == nil {
		return false
	}
	if rec.Trace != nil {
		breach, maxMS, medMS := c.watchdog.Check(rec.Trace.Emissions)
		rec.MaxEmissionDelayMS = maxMS
		rec.MedianEmissionDelayMS = medMS
		if breach {
			rec.SLOBreach = true
			c.breaches.Add(1)
		}
	}
	c.classes.Observe(rec)
	c.capture.Observe(rec, false)
	if rec.SLOBreach && c.onBreach != nil {
		c.onBreach(rec)
	}
	return rec.SLOBreach
}

// Breaches returns the number of SLO breaches seen.
func (c *Collector) Breaches() int64 {
	if c == nil {
		return 0
	}
	return c.breaches.Load()
}

// SlowLog snapshots the capture ring, slowest first.
func (c *Collector) SlowLog() []QueryRecord {
	if c == nil {
		return nil
	}
	return c.capture.Snapshot()
}

// Classes snapshots the per-class rolling aggregates.
func (c *Collector) Classes() []ClassSnapshot {
	if c == nil {
		return nil
	}
	return c.classes.Snapshot()
}

// CaptureStats reports (queries observed, records retained).
func (c *Collector) CaptureStats() (observed, retained int64) {
	if c == nil {
		return 0, 0
	}
	return c.capture.Stats()
}

// Register wires the collector into a metrics registry: the global
// breach counter, capture occupancy, and the per-class families —
// cumulative counters labeled by class plus windowed gauges for rate,
// latency quantiles and emission delays. Labels render in a fixed
// order (indexed, keywords) across every family.
func (c *Collector) Register(reg *Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.CounterFunc("commdb_emission_slo_breaches_total",
		"queries whose max inter-emission gap exceeded the SLO multiple of their median",
		c.breaches.Load)
	reg.CounterFunc("commdb_capture_observed_total", "completed queries offered to the capture ring",
		func() int64 { observed, _ := c.capture.Stats(); return observed })
	reg.CounterFunc("commdb_capture_retained_total", "query records retained by the capture ring",
		func() int64 { _, retained := c.capture.Stats(); return retained })

	classLabels := func(s *ClassSnapshot) []Label {
		return []Label{{Name: "indexed", Value: boolWord(s.Indexed)}, {Name: "keywords", Value: s.Keywords}}
	}
	family := func(value func(*ClassSnapshot) float64) func() []LabeledSample {
		return func() []LabeledSample {
			classes := c.classes.Snapshot()
			out := make([]LabeledSample, len(classes))
			for i := range classes {
				out[i] = LabeledSample{Labels: classLabels(&classes[i]), Value: value(&classes[i])}
			}
			return out
		}
	}
	reg.LabeledCounterFunc("commdb_class_queries_total", "completed queries per query class",
		family(func(s *ClassSnapshot) float64 { return float64(s.Total) }))
	reg.LabeledCounterFunc("commdb_class_errors_total", "errored or early-stopped queries per query class",
		family(func(s *ClassSnapshot) float64 { return float64(s.Errors) }))
	reg.LabeledCounterFunc("commdb_class_slo_breaches_total", "emission-delay SLO breaches per query class",
		family(func(s *ClassSnapshot) float64 { return float64(s.SLOBreaches) }))
	reg.LabeledGaugeFunc("commdb_class_query_rate", "sliding-window query rate per second per class",
		family(func(s *ClassSnapshot) float64 { return s.RatePerSec }))
	reg.LabeledGaugeFunc("commdb_class_latency_p50_ms", "sliding-window median latency per class",
		family(func(s *ClassSnapshot) float64 { return s.P50MS }))
	reg.LabeledGaugeFunc("commdb_class_latency_p95_ms", "sliding-window p95 latency per class",
		family(func(s *ClassSnapshot) float64 { return s.P95MS }))
	reg.LabeledGaugeFunc("commdb_class_latency_p99_ms", "sliding-window p99 latency per class",
		family(func(s *ClassSnapshot) float64 { return s.P99MS }))
	reg.LabeledGaugeFunc("commdb_class_emission_delay_max_ms", "sliding-window max inter-emission delay per class",
		family(func(s *ClassSnapshot) float64 { return s.EmissionMaxMS }))
	reg.LabeledGaugeFunc("commdb_class_emission_delay_mean_max_ms", "sliding-window mean of per-query max inter-emission delays per class",
		family(func(s *ClassSnapshot) float64 { return s.EmissionMeanMaxMS }))
}

func boolWord(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
