package obs

// Per-query-class rolling aggregates. Query cost varies wildly with
// keyword count and with whether the searcher projects through the
// inverted indexes, so process-wide means hide the interesting signal;
// the class layer keys every completed query by (keyword-count bucket ×
// indexed/plain) and keeps, per class, cumulative counters plus a
// sliding-window view: request rate, latency quantiles from a
// log-spaced histogram, and emission-delay statistics.
//
// The window is a rotating set of time slices: observations land in the
// slice covering now, and a snapshot merges only the slices still
// inside the window, so old traffic ages out in slice-sized steps
// without any background goroutine.

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// classLatencyBucketsMS are the log-spaced upper bounds of the
// per-class latency histogram (milliseconds); +Inf is implicit.
var classLatencyBucketsMS = [...]float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// ClassKey buckets a query: keyword count (1, 2, 3, 4+) crossed with
// indexed/plain execution. The string form ("kw2/indexed") is the
// capture record's Class field; the two halves become Prometheus
// labels.
func ClassKey(keywords int, indexed bool) string {
	return "kw" + KeywordBucket(keywords) + "/" + indexedWord(indexed)
}

// KeywordBucket maps a keyword count to its class bucket label.
func KeywordBucket(n int) string {
	if n >= 4 {
		return "4+"
	}
	if n < 1 {
		n = 1
	}
	return strconv.Itoa(n)
}

func indexedWord(indexed bool) string {
	if indexed {
		return "indexed"
	}
	return "plain"
}

// ClassesConfig tunes the sliding window. The zero value gets a 60s
// window in 6 slices.
type ClassesConfig struct {
	// Window is the sliding-window span for rates and quantiles.
	Window time.Duration
	// Slices is how many rotating sub-intervals the window is cut into;
	// more slices age traffic out more smoothly.
	Slices int

	// now overrides the clock in tests.
	now func() time.Time
}

func (c ClassesConfig) withDefaults() ClassesConfig {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Slices <= 0 {
		c.Slices = 6
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// classSlice is one time slice of one class's window.
type classSlice struct {
	epoch   int64 // which slice interval this data covers
	count   int64
	errors  int64
	latHist [len(classLatencyBucketsMS) + 1]int64
	latSum  float64
	emitN   int64
	emitSum float64
	emitMax float64
}

// classAgg is one class's full state: cumulative counters plus the
// rotating window slices.
type classAgg struct {
	keywords string // bucket label
	indexed  bool

	total       int64
	errors      int64
	sloBreaches int64
	slices      []classSlice
}

// Classes holds the per-class aggregates. Create with NewClasses; a nil
// *Classes ignores observations.
type Classes struct {
	cfg      ClassesConfig
	sliceDur time.Duration

	mu      sync.Mutex
	classes map[string]*classAgg
}

// NewClasses builds the per-class aggregate store.
func NewClasses(cfg ClassesConfig) *Classes {
	cfg = cfg.withDefaults()
	return &Classes{
		cfg:      cfg,
		sliceDur: cfg.Window / time.Duration(cfg.Slices),
		classes:  make(map[string]*classAgg),
	}
}

// Observe folds one completed query into its class.
func (c *Classes) Observe(rec *QueryRecord) {
	if c == nil || rec == nil {
		return
	}
	now := c.cfg.now()
	epoch := now.UnixNano() / int64(c.sliceDur)
	c.mu.Lock()
	defer c.mu.Unlock()
	agg, ok := c.classes[rec.Class]
	if !ok {
		agg = &classAgg{
			keywords: KeywordBucket(len(rec.Keywords)),
			indexed:  rec.Indexed,
			slices:   make([]classSlice, c.cfg.Slices),
		}
		c.classes[rec.Class] = agg
	}
	agg.total++
	if rec.Errored {
		agg.errors++
	}
	if rec.SLOBreach {
		agg.sloBreaches++
	}
	sl := &agg.slices[int(epoch)%c.cfg.Slices]
	if sl.epoch != epoch {
		*sl = classSlice{epoch: epoch} // the slice's previous interval aged out
	}
	sl.count++
	if rec.Errored {
		sl.errors++
	}
	i := sort.SearchFloat64s(classLatencyBucketsMS[:], rec.TotalMS)
	sl.latHist[i]++
	sl.latSum += rec.TotalMS
	if rec.MaxEmissionDelayMS > 0 {
		sl.emitN++
		sl.emitSum += rec.MaxEmissionDelayMS
		if rec.MaxEmissionDelayMS > sl.emitMax {
			sl.emitMax = rec.MaxEmissionDelayMS
		}
	}
}

// ClassSnapshot is one class's exported view: cumulative totals plus
// the sliding-window rate, latency quantiles and emission-delay stats.
type ClassSnapshot struct {
	Class    string `json:"class"`
	Keywords string `json:"keywords"` // bucket label: 1, 2, 3, 4+
	Indexed  bool   `json:"indexed"`

	Total       int64 `json:"total"`
	Errors      int64 `json:"errors"`
	SLOBreaches int64 `json:"slo_breaches"`

	// Window statistics.
	WindowCount   int64   `json:"window_count"`
	WindowErrors  int64   `json:"window_errors"`
	RatePerSec    float64 `json:"rate_per_sec"`
	MeanMS        float64 `json:"mean_ms"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	EmissionMaxMS float64 `json:"emission_max_ms"`
	// EmissionMeanMaxMS averages each query's max inter-emission delay
	// over the window — the per-class view of the polynomial-delay
	// promise.
	EmissionMeanMaxMS float64 `json:"emission_mean_max_ms"`
}

// Snapshot exports every class, sorted by class key for deterministic
// output.
func (c *Classes) Snapshot() []ClassSnapshot {
	if c == nil {
		return nil
	}
	now := c.cfg.now()
	epoch := now.UnixNano() / int64(c.sliceDur)
	minEpoch := epoch - int64(c.cfg.Slices) + 1

	c.mu.Lock()
	out := make([]ClassSnapshot, 0, len(c.classes))
	for key, agg := range c.classes {
		snap := ClassSnapshot{
			Class:       key,
			Keywords:    agg.keywords,
			Indexed:     agg.indexed,
			Total:       agg.total,
			Errors:      agg.errors,
			SLOBreaches: agg.sloBreaches,
		}
		var hist [len(classLatencyBucketsMS) + 1]int64
		var latSum, emitSum float64
		var emitN int64
		for i := range agg.slices {
			sl := &agg.slices[i]
			if sl.epoch < minEpoch || sl.epoch > epoch {
				continue // aged out (or never used)
			}
			snap.WindowCount += sl.count
			snap.WindowErrors += sl.errors
			latSum += sl.latSum
			emitN += sl.emitN
			emitSum += sl.emitSum
			if sl.emitMax > snap.EmissionMaxMS {
				snap.EmissionMaxMS = sl.emitMax
			}
			for b := range hist {
				hist[b] += sl.latHist[b]
			}
		}
		if snap.WindowCount > 0 {
			snap.RatePerSec = float64(snap.WindowCount) / c.cfg.Window.Seconds()
			snap.MeanMS = latSum / float64(snap.WindowCount)
			snap.P50MS = logHistQuantile(hist[:], snap.WindowCount, 0.50)
			snap.P95MS = logHistQuantile(hist[:], snap.WindowCount, 0.95)
			snap.P99MS = logHistQuantile(hist[:], snap.WindowCount, 0.99)
		}
		if emitN > 0 {
			snap.EmissionMeanMaxMS = emitSum / float64(emitN)
		}
		out = append(out, snap)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// logHistQuantile estimates a quantile from the class histogram by
// linear interpolation within the containing bucket; the +Inf bucket
// reports its lower bound.
func logHistQuantile(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = classLatencyBucketsMS[i-1]
			}
			if i >= len(classLatencyBucketsMS) {
				return lo
			}
			if c == 0 {
				return classLatencyBucketsMS[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + frac*(classLatencyBucketsMS[i]-lo)
		}
		cum += c
	}
	return classLatencyBucketsMS[len(classLatencyBucketsMS)-1]
}
