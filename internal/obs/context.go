package obs

import "context"

type traceKey struct{}

// ContextWithTrace attaches tr to ctx so every layer of a query can
// record into it. A nil tr returns ctx unchanged.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the trace attached to ctx, or nil — the disabled
// trace every recording method accepts — when none is.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
