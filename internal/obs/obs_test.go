package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	end := tr.StartSpan("x")
	end()
	tr.Add("c", 1)
	tr.SetMax("m", 5)
	tr.SetLabel("k", "v")
	tr.Emission()
	tr.AddDijkstra(DijkstraRun{Visits: 1})
	tr.OnFinish(func(*Trace) { t.Fatal("finisher ran on nil trace") })
	tr.RecordSpan("y", time.Now())
	if tr.Summary() != nil {
		t.Fatal("nil trace produced a summary")
	}
	if tr.QueryID() != "" {
		t.Fatal("nil trace has a query id")
	}
}

// TestDisabledTraceZeroAlloc locks the tentpole's overhead contract:
// every instrumentation hook on a disabled (nil) trace allocates
// nothing, so the untraced enumerator hot loop pays only nil checks.
func TestDisabledTraceZeroAlloc(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		end := tr.StartSpan("span")
		tr.Add("counter", 1)
		tr.SetMax("max", 7)
		tr.Emission()
		tr.AddDijkstra(DijkstraRun{Visits: 3, Relaxations: 9, HeapPushes: 4, HeapPops: 4})
		end()
	})
	if allocs != 0 {
		t.Fatalf("disabled-trace hooks allocate %v times per run, want 0", allocs)
	}
}

func TestTraceRecording(t *testing.T) {
	tr := NewTrace("q-test")
	end := tr.StartSpan("project")
	time.Sleep(time.Millisecond)
	end()
	tr.Add("neighbor_runs", 3)
	tr.Add("neighbor_runs", 2)
	tr.SetMax("can_list_max", 4)
	tr.SetMax("can_list_max", 2) // lower: ignored
	tr.SetLabel("algorithm", "comm_k")
	tr.AddDijkstra(DijkstraRun{Visits: 10, Relaxations: 25, HeapPushes: 12, HeapPops: 11, RadiusCutoffs: 3})
	tr.Emission()
	tr.Emission()
	finished := 0
	tr.OnFinish(func(t *Trace) { finished++; t.Add("budget_results", 2) })

	s := tr.Summary()
	if s.QueryID != "q-test" {
		t.Fatalf("query id %q", s.QueryID)
	}
	if got := s.Counter("neighbor_runs"); got != 5 {
		t.Fatalf("neighbor_runs = %d, want 5", got)
	}
	if got := s.Counter("can_list_max"); got != 4 {
		t.Fatalf("can_list_max = %d, want 4", got)
	}
	if got := s.Counter("dijkstra_visits"); got != 10 {
		t.Fatalf("dijkstra_visits = %d, want 10", got)
	}
	if got := s.Counter("dijkstra_runs"); got != 1 {
		t.Fatalf("dijkstra_runs = %d, want 1", got)
	}
	if got := s.Counter("emitted"); got != 2 {
		t.Fatalf("emitted = %d, want 2", got)
	}
	if got := s.Counter("budget_results"); got != 2 {
		t.Fatalf("budget_results = %d, want 2 (finisher did not run)", got)
	}
	if s.Labels["algorithm"] != "comm_k" {
		t.Fatalf("labels = %v", s.Labels)
	}
	sp, ok := s.Span("project")
	if !ok || sp.DurMS <= 0 {
		t.Fatalf("project span = %+v ok=%v", sp, ok)
	}
	if s.Emissions == nil || s.Emissions.Count != 2 || len(s.Emissions.DelaysMS) != 2 {
		t.Fatalf("emissions = %+v", s.Emissions)
	}
	if s.Emissions.MaxDelayMS < s.Emissions.MeanDelayMS {
		t.Fatalf("max delay %v < mean %v", s.Emissions.MaxDelayMS, s.Emissions.MeanDelayMS)
	}

	// Finishers run exactly once across repeated Summary calls.
	s2 := tr.Summary()
	if finished != 1 {
		t.Fatalf("finisher ran %d times, want 1", finished)
	}
	if got := s2.Counter("budget_results"); got != 2 {
		t.Fatalf("second summary budget_results = %d", got)
	}

	// The summary marshals cleanly.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestTraceDelayCapAndConcurrency(t *testing.T) {
	tr := NewTrace("")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < MaxStoredDelays; i++ {
				tr.Emission()
				tr.Add("c", 1)
				tr.AddDijkstra(DijkstraRun{Visits: 1})
				tr.SetMax("m", int64(i))
			}
		}()
	}
	wg.Wait()
	s := tr.Summary()
	if s.Emissions.Count != 8*MaxStoredDelays {
		t.Fatalf("count = %d", s.Emissions.Count)
	}
	if len(s.Emissions.DelaysMS) != MaxStoredDelays {
		t.Fatalf("stored delays = %d, want cap %d", len(s.Emissions.DelaysMS), MaxStoredDelays)
	}
}

func TestContextCarriage(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a trace")
	}
	tr := NewTrace("q1")
	ctx := ContextWithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through the context")
	}
	if ContextWithTrace(ctx, nil) != ctx {
		t.Fatal("attaching a nil trace should return ctx unchanged")
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("commdb_dijkstra_visits_total", "settled nodes across all queries")
	c.Add(42)
	r.Counter("commdb_dijkstra_visits_total", "").Inc() // idempotent registration
	g := r.Gauge("commdb_can_list_max", "largest can-list")
	g.SetMax(7)
	g.SetMax(3)
	r.GaugeFunc("commdb_cache_entries", "cache entries", func() float64 { return 5 })
	r.CounterFunc("commdb_queries_started_total", "queries started", func() int64 { return 9 })
	h := r.Histogram("commdb_query_latency_ms", "query latency", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(50)
	h.Observe(5000)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE commdb_dijkstra_visits_total counter",
		"commdb_dijkstra_visits_total 43",
		"# TYPE commdb_can_list_max gauge",
		"commdb_can_list_max 7",
		"commdb_cache_entries 5",
		"commdb_queries_started_total 9",
		"# TYPE commdb_query_latency_ms histogram",
		`commdb_query_latency_ms_bucket{le="1"} 1`,
		`commdb_query_latency_ms_bucket{le="10"} 1`,
		`commdb_query_latency_ms_bucket{le="100"} 2`,
		`commdb_query_latency_ms_bucket{le="+Inf"} 3`,
		"commdb_query_latency_ms_sum 5050.5",
		"commdb_query_latency_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// The registry's own output passes the lint it ships.
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint failed: %v\n%s", err, out)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9starts_with_digit", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	// Kind mismatch panics too.
	r.Counter("ok_name", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind mismatch accepted")
			}
		}()
		r.Gauge("ok_name", "")
	}()
}

func TestLintPrometheus(t *testing.T) {
	good := "# HELP x help\n# TYPE x counter\nx 1\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 3.5\nh_count 2\n"
	if err := LintPrometheus(strings.NewReader(good)); err != nil {
		t.Fatalf("good exposition rejected: %v", err)
	}
	cases := map[string]string{
		"missing TYPE":     "x 1\n",
		"duplicate TYPE":   "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"duplicate sample": "# TYPE x counter\nx 1\nx 2\n",
		"bad name":         "# TYPE x counter\nx 1\n# TYPE 9y counter\n",
		"bad value":        "# TYPE x counter\nx one\n",
		"blank":            "",
	}
	for name, payload := range cases {
		if err := LintPrometheus(strings.NewReader(payload)); err == nil {
			t.Fatalf("%s: lint accepted %q", name, payload)
		}
	}
}

// TestLintPrometheusLabels: the lint parses labeled samples in full —
// validating names, quoting and escaping — and detects duplicate label
// sets even when the label order differs.
func TestLintPrometheusLabels(t *testing.T) {
	good := strings.Join([]string{
		"# TYPE c counter",
		`c{indexed="true",keywords="2"} 1`,
		`c{indexed="false",keywords="2"} 3`,
		`c{indexed="true",keywords="4+"} 2`,
		`c{msg="a \"quoted\" value with \\ and \n"} 4`,
		`c 9`, // the bare sample is distinct from every labeled one
		"",
	}, "\n")
	if err := LintPrometheus(strings.NewReader(good)); err != nil {
		t.Fatalf("good labeled exposition rejected: %v", err)
	}

	cases := map[string]string{
		"reordered duplicate label set": "# TYPE c counter\n" +
			`c{a="1",b="2"} 1` + "\n" + `c{b="2",a="1"} 2` + "\n",
		"repeated label in one sample": "# TYPE c counter\n" + `c{a="1",a="2"} 1` + "\n",
		"invalid label name":           "# TYPE c counter\n" + `c{9bad="1"} 1` + "\n",
		"unquoted label value":         "# TYPE c counter\n" + `c{a=1} 1` + "\n",
		"invalid escape":               "# TYPE c counter\n" + `c{a="\t"} 1` + "\n",
		"unterminated value":           "# TYPE c counter\n" + `c{a="1} 1` + "\n",
		"missing equals":               "# TYPE c counter\n" + `c{a} 1` + "\n",
	}
	for name, payload := range cases {
		if err := LintPrometheus(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: lint accepted %q", name, payload)
		}
	}

	// A '}' inside a quoted value must not truncate the label set.
	brace := "# TYPE c counter\n" + `c{a="x}y"} 1` + "\n"
	if err := LintPrometheus(strings.NewReader(brace)); err != nil {
		t.Fatalf("brace-in-value sample rejected: %v", err)
	}
}

// TestRegistryLabeledFamilies: labeled scrape-time families render with
// escaped values and mix cleanly with plain metrics.
func TestRegistryLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounterFunc("commdb_class_queries_total", "queries per class", func() []LabeledSample {
		return []LabeledSample{
			{Labels: []Label{{Name: "indexed", Value: "true"}, {Name: "keywords", Value: "2"}}, Value: 7},
			{Labels: []Label{{Name: "indexed", Value: "false"}, {Name: "keywords", Value: `odd"value`}}, Value: 1},
		}
	})
	r.LabeledGaugeFunc("commdb_class_latency_p50_ms", "p50 per class", func() []LabeledSample {
		return []LabeledSample{{Labels: []Label{{Name: "indexed", Value: "true"}, {Name: "keywords", Value: "2"}}, Value: 1.5}}
	})
	r.Counter("commdb_plain_total", "plain").Add(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE commdb_class_queries_total counter",
		`commdb_class_queries_total{indexed="true",keywords="2"} 7`,
		`commdb_class_queries_total{indexed="false",keywords="odd\"value"} 1`,
		`commdb_class_latency_p50_ms{indexed="true",keywords="2"} 1.5`,
		"commdb_plain_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("self-lint failed: %v\n%s", err, out)
	}

	// Registering a labeled family over an existing plain metric panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("labeled re-registration over a plain counter accepted")
			}
		}()
		r.LabeledCounterFunc("commdb_plain_total", "", func() []LabeledSample { return nil })
	}()
}

func BenchmarkTraceEmission(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *Trace
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Emission()
			tr.AddDijkstra(DijkstraRun{Visits: 5, Relaxations: 20})
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tr := NewTrace("bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Emission()
			tr.AddDijkstra(DijkstraRun{Visits: 5, Relaxations: 20})
		}
	})
}
