package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func mkRec(id string, totalMS float64) *QueryRecord {
	return &QueryRecord{QueryID: id, Keywords: []string{"a", "b"}, Class: ClassKey(2, false), TotalMS: totalMS}
}

// TestCaptureSlowestN: the slow pool retains exactly the N slowest
// queries, evicting the fastest member when a slower one arrives.
func TestCaptureSlowestN(t *testing.T) {
	c := NewCapture(CaptureConfig{SlowN: 3, RingSize: 4, SampleEvery: 1 << 30})
	for i := 1; i <= 10; i++ {
		c.Observe(mkRec(fmt.Sprintf("q%d", i), float64(i)), false)
	}
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d records, want 3: %+v", len(snap), snap)
	}
	for i, want := range []float64{10, 9, 8} {
		if snap[i].TotalMS != want {
			t.Errorf("snapshot[%d].TotalMS = %v, want %v (slowest first)", i, snap[i].TotalMS, want)
		}
		if !hasReason(snap[i].Captured, CapturedSlow) {
			t.Errorf("record %s lacks %q reason: %v", snap[i].QueryID, CapturedSlow, snap[i].Captured)
		}
	}
}

// TestCaptureErroredAlwaysKept: errored queries are retained even when
// they are fast, and survive in the ring when the slow pool evicts them.
func TestCaptureErroredAlwaysKept(t *testing.T) {
	c := NewCapture(CaptureConfig{SlowN: 2, RingSize: 8, SampleEvery: 1 << 30})
	bad := mkRec("bad", 0.001)
	bad.Errored = true
	bad.StopReason = "budget exhausted: relaxations"
	c.Observe(bad, false)
	for i := 0; i < 5; i++ {
		c.Observe(mkRec(fmt.Sprintf("slow%d", i), 100+float64(i)), false)
	}
	snap := c.Snapshot()
	found := false
	for _, r := range snap {
		if r.QueryID == "bad" {
			found = true
			if !hasReason(r.Captured, CapturedErrored) {
				t.Errorf("errored record reasons = %v", r.Captured)
			}
		}
	}
	if !found {
		t.Fatalf("errored record evicted: %+v", snap)
	}
}

// TestCaptureDeterministicSample: exactly one in every M healthy
// queries is retained with the sampled reason.
func TestCaptureDeterministicSample(t *testing.T) {
	c := NewCapture(CaptureConfig{SlowN: 1, RingSize: 100, SampleEvery: 10})
	for i := 0; i < 100; i++ {
		c.Observe(mkRec(fmt.Sprintf("q%d", i), 1), false)
	}
	sampled := 0
	for _, r := range c.Snapshot() {
		if hasReason(r.Captured, CapturedSampled) {
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 100 with M=10, want 10", sampled)
	}
}

// TestCaptureRingEviction: the ring holds at most RingSize records and
// evicts the oldest.
func TestCaptureRingEviction(t *testing.T) {
	c := NewCapture(CaptureConfig{SlowN: 1, RingSize: 4, SampleEvery: 1})
	for i := 0; i < 20; i++ {
		c.Observe(mkRec(fmt.Sprintf("q%d", i), float64(i)), false)
	}
	snap := c.Snapshot()
	// Ring keeps the most recent 4 sampled records; the slow pool holds
	// the single slowest (q19, also the newest ring entry).
	if len(snap) > 5 {
		t.Fatalf("retained %d records with ring=4 slow=1: %+v", len(snap), snap)
	}
	for _, r := range snap {
		var n int
		fmt.Sscanf(r.QueryID, "q%d", &n)
		if n < 15 {
			t.Errorf("ring retained stale record %s", r.QueryID)
		}
	}
}

// TestCaptureDisabled: a disabled store retains nothing.
func TestCaptureDisabled(t *testing.T) {
	c := NewCapture(CaptureConfig{Disabled: true})
	c.Observe(mkRec("q", 100), true)
	if got := c.Snapshot(); got != nil {
		t.Fatalf("disabled capture returned %+v", got)
	}
	var nilC *Capture
	nilC.Observe(mkRec("q", 1), false)
	if nilC.Snapshot() != nil {
		t.Fatal("nil capture returned records")
	}
}

func hasReason(reasons []string, want string) bool {
	for _, r := range reasons {
		if r == want {
			return true
		}
	}
	return false
}

// TestWatchdogBreach: a stall far above the query's own median trips
// the SLO; steady cadences (fast or slow) do not.
func TestWatchdogBreach(t *testing.T) {
	w := WatchdogConfig{Multiple: 8, MinDelayMS: 1, MinEmissions: 4}
	stalled := &EmissionSummary{Count: 5, MaxDelayMS: 80, DelaysMS: []float64{0.5, 0.5, 0.5, 0.5, 80}}
	if breach, max, med := w.Check(stalled); !breach || max != 80 || med != 0.5 {
		t.Fatalf("stalled query: breach=%v max=%v median=%v, want breach at 80 vs 0.5", breach, max, med)
	}
	steady := &EmissionSummary{Count: 5, MaxDelayMS: 60, DelaysMS: []float64{40, 45, 50, 55, 60}}
	if breach, _, _ := w.Check(steady); breach {
		t.Fatal("uniformly slow query flagged as a stall")
	}
	// Too few emissions: median is noise, no verdict.
	tiny := &EmissionSummary{Count: 2, MaxDelayMS: 80, DelaysMS: []float64{0.5, 80}}
	if breach, _, _ := w.Check(tiny); breach {
		t.Fatal("breach on fewer than MinEmissions delays")
	}
	// Below the absolute floor: microsecond jitter is not a stall.
	jitter := &EmissionSummary{Count: 5, MaxDelayMS: 0.9, DelaysMS: []float64{0.01, 0.01, 0.01, 0.01, 0.9}}
	if breach, _, _ := w.Check(jitter); breach {
		t.Fatal("breach below MinDelayMS floor")
	}
	if breach, _, _ := (WatchdogConfig{Disabled: true}).Check(stalled); breach {
		t.Fatal("disabled watchdog breached")
	}
	if breach, max, med := w.Check(nil); breach || max != 0 || med != 0 {
		t.Fatal("nil emissions produced a verdict")
	}
}

// TestClassesWindow: observations land in the right class, the window
// ages out, and quantiles come from the merged slices.
func TestClassesWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := ClassesConfig{Window: 60 * time.Second, Slices: 6, now: func() time.Time { return now }}
	cl := NewClasses(cfg)

	for i := 0; i < 100; i++ {
		rec := mkRec(fmt.Sprintf("q%d", i), 10)
		cl.Observe(rec)
	}
	idx := &QueryRecord{Keywords: []string{"a", "b", "c", "d", "e"}, Indexed: true, Class: ClassKey(5, true), TotalMS: 2, Errored: true}
	cl.Observe(idx)

	snaps := cl.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d classes, want 2: %+v", len(snaps), snaps)
	}
	// Sorted by class key: kw2/plain < kw4+/indexed.
	var plain, indexed *ClassSnapshot
	for i := range snaps {
		if snaps[i].Indexed {
			indexed = &snaps[i]
		} else {
			plain = &snaps[i]
		}
	}
	if plain == nil || indexed == nil {
		t.Fatalf("classes = %+v", snaps)
	}
	if plain.Class != "kw2/plain" || plain.Total != 100 || plain.WindowCount != 100 {
		t.Fatalf("plain class = %+v", plain)
	}
	if plain.RatePerSec != 100.0/60 {
		t.Errorf("rate = %v, want %v", plain.RatePerSec, 100.0/60)
	}
	if plain.P50MS <= 0 || plain.P50MS > 25 {
		t.Errorf("p50 = %v for uniform 10ms latencies", plain.P50MS)
	}
	if indexed.Class != "kw4+/indexed" || indexed.Keywords != "4+" || indexed.Errors != 1 {
		t.Fatalf("indexed class = %+v", indexed)
	}

	// Advance past the window: rates and quantiles drain, totals stay.
	now = now.Add(2 * time.Minute)
	snaps = cl.Snapshot()
	for _, s := range snaps {
		if s.WindowCount != 0 || s.RatePerSec != 0 {
			t.Errorf("window did not age out: %+v", s)
		}
	}
	if snaps[0].Total+snaps[1].Total != 101 {
		t.Errorf("cumulative totals lost on age-out: %+v", snaps)
	}
}

// TestClassKeyBuckets locks the bucket labels.
func TestClassKeyBuckets(t *testing.T) {
	cases := map[string]string{
		ClassKey(1, false): "kw1/plain",
		ClassKey(2, true):  "kw2/indexed",
		ClassKey(3, false): "kw3/plain",
		ClassKey(4, true):  "kw4+/indexed",
		ClassKey(9, true):  "kw4+/indexed",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("class key = %q, want %q", got, want)
		}
	}
}

// TestCollectorEndToEnd: a stalled query breaches, increments the
// counter, is force-captured, and lands in its class — while a healthy
// query does none of that.
func TestCollectorEndToEnd(t *testing.T) {
	col := NewCollector(CollectorConfig{
		Capture:  CaptureConfig{SlowN: 1, RingSize: 8, SampleEvery: 1 << 30},
		Watchdog: WatchdogConfig{Multiple: 8, MinDelayMS: 1, MinEmissions: 3},
	})
	var hookRec *QueryRecord
	col.OnBreach(func(r *QueryRecord) { hookRec = r })

	// A healthy trace: steady sub-threshold delays.
	okSum := &Summary{Emissions: &EmissionSummary{Count: 4, MaxDelayMS: 0.2, DelaysMS: []float64{0.1, 0.1, 0.2, 0.1}}}
	okRec := NewQueryRecord("q-ok", "topk", []string{"a", "b"}, 6, 10, false, 10, "", time.Now(), 3*time.Millisecond, okSum)
	if col.Observe(okRec) {
		t.Fatal("healthy query breached")
	}
	if col.Breaches() != 0 {
		t.Fatal("breach counter moved on a healthy query")
	}

	// A stalled trace.
	stallSum := &Summary{
		Labels:    map[string]string{"fingerprint": "q1|rmax=6|cost=0|1:a|1:b"},
		Emissions: &EmissionSummary{Count: 5, MaxDelayMS: 90, DelaysMS: []float64{0.5, 0.5, 0.5, 0.5, 90}},
	}
	stallRec := NewQueryRecord("q-stall", "all", []string{"a", "b"}, 6, 0, true, 5, "", time.Now(), 95*time.Millisecond, stallSum)
	if !col.Observe(stallRec) {
		t.Fatal("stalled query did not breach")
	}
	if col.Breaches() != 1 {
		t.Fatalf("breaches = %d, want 1", col.Breaches())
	}
	if hookRec != stallRec {
		t.Fatal("OnBreach hook did not receive the breaching record")
	}
	if stallRec.Fingerprint == "" {
		t.Fatal("fingerprint label not propagated into the record")
	}
	if stallRec.MaxEmissionDelayMS != 90 || stallRec.MedianEmissionDelayMS != 0.5 {
		t.Fatalf("delay stats = max %v median %v", stallRec.MaxEmissionDelayMS, stallRec.MedianEmissionDelayMS)
	}

	// The breach is in the slow-log even though SlowN=1 favors q-stall
	// anyway; check the reason list names the breach.
	log := col.SlowLog()
	if len(log) == 0 || log[0].QueryID != "q-stall" || !hasReason(log[0].Captured, CapturedBreach) {
		t.Fatalf("slow-log = %+v", log)
	}

	// Both classes visible.
	classes := col.Classes()
	if len(classes) != 2 {
		t.Fatalf("classes = %+v", classes)
	}
	for _, cs := range classes {
		if cs.Indexed && cs.SLOBreaches != 1 {
			t.Errorf("indexed class breaches = %d, want 1", cs.SLOBreaches)
		}
	}
}

// TestCollectorRegisterExposition: the collector's registry wiring
// produces a lint-clean exposition with labeled per-class families in
// a fixed label order.
func TestCollectorRegisterExposition(t *testing.T) {
	col := NewCollector(CollectorConfig{
		Watchdog: WatchdogConfig{Multiple: 8, MinDelayMS: 1, MinEmissions: 3},
	})
	reg := NewRegistry()
	col.Register(reg)

	stallSum := &Summary{Emissions: &EmissionSummary{Count: 5, MaxDelayMS: 90, DelaysMS: []float64{0.5, 0.5, 0.5, 0.5, 90}}}
	col.Observe(NewQueryRecord("q1", "all", []string{"a", "b"}, 6, 0, true, 5, "", time.Now(), 95*time.Millisecond, stallSum))
	col.Observe(NewQueryRecord("q2", "topk", []string{"a", "b", "c"}, 6, 10, false, 10, "", time.Now(), 2*time.Millisecond, &Summary{}))

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"commdb_emission_slo_breaches_total 1",
		`commdb_class_queries_total{indexed="true",keywords="2"} 1`,
		`commdb_class_queries_total{indexed="false",keywords="3"} 1`,
		`commdb_class_slo_breaches_total{indexed="true",keywords="2"} 1`,
		"# TYPE commdb_class_latency_p95_ms gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("labeled exposition failed lint: %v\n%s", err, out)
	}
}

// TestCaptureConcurrency hammers the capture ring and class aggregates
// from many goroutines while snapshotting — run under -race in CI.
func TestCaptureConcurrency(t *testing.T) {
	col := NewCollector(CollectorConfig{
		Capture: CaptureConfig{SlowN: 8, RingSize: 32, SampleEvery: 4},
		Classes: ClassesConfig{Window: time.Second, Slices: 4},
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec := mkRec(fmt.Sprintf("w%d-%d", w, i), float64(i%50))
				rec.Errored = i%17 == 0
				col.Observe(rec)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				col.SlowLog()
				col.Classes()
				col.CaptureStats()
			}
		}()
	}
	wg.Wait()
	observed, retained := col.CaptureStats()
	if observed != 1600 {
		t.Fatalf("observed = %d, want 1600", observed)
	}
	if retained == 0 || retained > observed {
		t.Fatalf("retained = %d out of %d", retained, observed)
	}
}
