package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; negative n is ignored (counters only go
// up — use a Gauge for values that fall).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger (high-water mark).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Buckets are cumulative on
// export, Prometheus-style. Safe for concurrent use.
type Histogram struct {
	bounds []float64 // finite inclusive upper bounds, ascending
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metric struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	counterFn  func() int64
	gaugeFn    func() float64
	samplesFn  func() []LabeledSample
	hist       *Histogram
}

// Label is one name="value" pair on a labeled sample.
type Label struct {
	Name, Value string
}

// LabeledSample is one sample of a labeled metric family, produced at
// scrape time. Labels render in the order given; families should emit a
// fixed label order across samples so scrapes are deterministic.
type LabeledSample struct {
	Labels []Label
	Value  float64
}

// Registry holds named metrics and renders them as Prometheus text
// exposition format. Registration is idempotent by name: asking for an
// existing name of the same kind returns the existing metric; a kind
// mismatch or an invalid name panics (programmer error, caught by any
// test that touches the path).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, kind metricKind) *metric {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.counterFn != nil {
		panic(fmt.Sprintf("obs: metric %q already registered as CounterFunc", name))
	}
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// CounterFunc registers a counter whose value is read at scrape time —
// for mirroring counters that already live elsewhere (e.g. the serving
// stats atomics).
func (r *Registry) CounterFunc(name, help string, f func() int64) {
	m := r.register(name, help, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	m.counterFn = f
	m.counter = nil
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.gaugeFn != nil {
		panic(fmt.Sprintf("obs: metric %q already registered as GaugeFunc", name))
	}
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// GaugeFunc registers a gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	m := r.register(name, help, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	m.gaugeFn = f
	m.gauge = nil
}

// LabeledCounterFunc registers a counter family whose labeled samples
// are produced at scrape time — the exposition for per-class rolling
// aggregates, where the label sets (query classes) are discovered at
// runtime. Every sample must carry the same label names in the same
// order; values must be non-decreasing per label set (counter
// semantics are the caller's contract).
func (r *Registry) LabeledCounterFunc(name, help string, f func() []LabeledSample) {
	m := r.register(name, help, kindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.counter != nil || m.counterFn != nil {
		panic(fmt.Sprintf("obs: metric %q already registered without labels", name))
	}
	m.samplesFn = f
}

// LabeledGaugeFunc registers a gauge family whose labeled samples are
// produced at scrape time.
func (r *Registry) LabeledGaugeFunc(name, help string, f func() []LabeledSample) {
	m := r.register(name, help, kindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.gauge != nil || m.gaugeFn != nil {
		panic(fmt.Sprintf("obs: metric %q already registered without labels", name))
	}
	m.samplesFn = f
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// escapeLabelValue applies the text-exposition escaping for quoted
// label values: backslash, double-quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeLabeledSamples renders one family's labeled samples.
func writeLabeledSamples(b *strings.Builder, name string, samples []LabeledSample) {
	for _, s := range samples {
		b.WriteString(name)
		if len(s.Labels) > 0 {
			b.WriteByte('{')
			for i, l := range s.Labels {
				if !validLabelName(l.Name) {
					panic(fmt.Sprintf("obs: metric %q sample has invalid label name %q", name, l.Name))
				}
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(l.Name)
				b.WriteString(`="`)
				b.WriteString(escapeLabelValue(l.Value))
				b.WriteByte('"')
			}
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(formatFloat(s.Value))
		b.WriteByte('\n')
	}
}

// Histogram returns the named histogram with the given finite upper
// bounds (ascending), creating it on first use; the +Inf bucket is
// implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.hist == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		m.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}
	return m.hist
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), sorted by name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, m := range ms {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case kindCounter:
			if m.samplesFn != nil {
				writeLabeledSamples(&b, m.name, m.samplesFn())
				continue
			}
			v := int64(0)
			if m.counterFn != nil {
				v = m.counterFn()
			} else if m.counter != nil {
				v = m.counter.Value()
			}
			fmt.Fprintf(&b, "%s %d\n", m.name, v)
		case kindGauge:
			if m.samplesFn != nil {
				writeLabeledSamples(&b, m.name, m.samplesFn())
			} else if m.gaugeFn != nil {
				fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gaugeFn()))
			} else {
				v := int64(0)
				if m.gauge != nil {
					v = m.gauge.Value()
				}
				fmt.Fprintf(&b, "%s %d\n", m.name, v)
			}
		case kindHistogram:
			h := m.hist
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
