package obs

// The emission-delay SLO watchdog guards the paper's central promise:
// polynomial delay between community emissions (Qin et al., ICDE 2009).
// A healthy enumeration emits at a roughly steady cadence; a stall —
// one inter-emission gap far above the query's own median — is exactly
// the regression the polynomial-delay bound forbids, so the watchdog
// flags it, the breach counter increments, and the trace is
// force-captured for the slow-log.

import "sort"

// WatchdogConfig tunes the emission-delay SLO. The zero value gets
// defaults; Disabled turns the check off.
type WatchdogConfig struct {
	// Multiple is the breach threshold: a query breaches when its max
	// inter-emission gap exceeds Multiple × its median gap (default 32).
	Multiple float64
	// MinDelayMS is an absolute floor: gaps below it never breach, so
	// scheduler jitter on microsecond-scale queries is not flagged
	// (default 5ms).
	MinDelayMS float64
	// MinEmissions is how many emissions a query needs before its median
	// is meaningful (default 4).
	MinEmissions int
	// Disabled turns the watchdog off.
	Disabled bool
}

func (w WatchdogConfig) withDefaults() WatchdogConfig {
	if w.Multiple <= 0 {
		w.Multiple = 32
	}
	if w.MinDelayMS <= 0 {
		w.MinDelayMS = 5
	}
	if w.MinEmissions <= 0 {
		w.MinEmissions = 4
	}
	return w
}

// Check applies the SLO to one query's emission summary, returning
// whether it breached plus the max and median delays (both 0 when the
// query emitted nothing). The median comes from the stored delays —
// MaxStoredDelays individual gaps — while the max covers every
// emission, so a stall in a huge result set's tail is still caught.
func (w WatchdogConfig) Check(e *EmissionSummary) (breach bool, maxMS, medianMS float64) {
	if e == nil || len(e.DelaysMS) == 0 {
		return false, 0, 0
	}
	w = w.withDefaults()
	sorted := append([]float64(nil), e.DelaysMS...)
	sort.Float64s(sorted)
	medianMS = sorted[len(sorted)/2]
	maxMS = e.MaxDelayMS
	if w.Disabled {
		return false, maxMS, medianMS
	}
	if int64(len(e.DelaysMS)) < int64(w.MinEmissions) || e.Count < int64(w.MinEmissions) {
		return false, maxMS, medianMS
	}
	if maxMS < w.MinDelayMS {
		return false, maxMS, medianMS
	}
	return maxMS > w.Multiple*medianMS, maxMS, medianMS
}
