package obs

// This file is the retention half of the observability layer: PR 3's
// traces die with their query, so the capture ring keeps the ones worth
// asking about later. Retention is tail-based — the decision to keep a
// record is made after the query finishes, when its latency, stop
// reason and SLO verdict are known — with three capture classes:
//
//   - the N slowest queries seen so far (a min-replace pool, so a new
//     slow query evicts the fastest of the retained slow set);
//   - every errored, budget-tripped or SLO-breaching query (a ring of
//     the most recent R, so misbehavior cannot be crowded out by
//     healthy traffic);
//   - a deterministic 1-in-M sample of everything else (same ring),
//     giving the slow-log unbiased background coverage.

import (
	"sort"
	"sync"
	"time"
)

// Capture reasons, reported in QueryRecord.Captured.
const (
	CapturedSlow    = "slow"       // admitted to the slowest-N pool
	CapturedErrored = "errored"    // stopped early or failed
	CapturedBreach  = "slo_breach" // emission-delay SLO watchdog fired
	CapturedSampled = "sampled"    // deterministic 1-in-M background sample
	CapturedForced  = "forced"     // caller demanded capture (e.g. REPL)
)

// QueryRecord is one completed query as the capture layer sees it:
// identity (fingerprint, normalized keywords, operating point), class,
// outcome, headline latencies and the full trace summary.
type QueryRecord struct {
	QueryID     string   `json:"query_id,omitempty"`
	Fingerprint string   `json:"fingerprint,omitempty"`
	Keywords    []string `json:"keywords,omitempty"`
	Rmax        float64  `json:"rmax,omitempty"`
	K           int      `json:"k,omitempty"` // 0 for COMM-all
	Endpoint    string   `json:"endpoint,omitempty"`
	// Indexed reports whether the query ran through the inverted-index
	// projection; with the keyword count it determines Class.
	Indexed bool `json:"indexed"`
	// Class is the rolling-aggregate key: keyword-count bucket ×
	// indexed/plain (see ClassKey).
	Class   string    `json:"class"`
	Start   time.Time `json:"start"`
	TotalMS float64   `json:"total_ms"`
	Results int       `json:"results"`
	// StopReason is empty for a cleanly completed query.
	StopReason string `json:"stop_reason,omitempty"`
	// Errored marks queries that failed or stopped early (budget,
	// deadline, cancellation) — always captured.
	Errored bool `json:"errored,omitempty"`
	// Emission-delay statistics from the watchdog check.
	MaxEmissionDelayMS    float64 `json:"max_emission_delay_ms,omitempty"`
	MedianEmissionDelayMS float64 `json:"median_emission_delay_ms,omitempty"`
	// SLOBreach marks queries whose max inter-emission gap exceeded the
	// watchdog threshold — always captured.
	SLOBreach bool `json:"slo_breach,omitempty"`
	// Captured lists why the record was retained.
	Captured []string `json:"captured,omitempty"`
	// Trace is the query's full trace summary.
	Trace *Summary `json:"trace,omitempty"`
}

// CaptureConfig tunes the retention policy. The zero value gets
// defaults; Disabled turns capture off entirely.
type CaptureConfig struct {
	// SlowN is how many of the slowest queries to retain (default 32).
	SlowN int
	// RingSize bounds the ring of errored/breaching/sampled records
	// (default 256).
	RingSize int
	// SampleEvery keeps one in every M otherwise-uninteresting queries
	// (default 32; 1 captures everything).
	SampleEvery int
	// Disabled turns capture off: Observe decides nothing and retains
	// nothing.
	Disabled bool
}

func (c CaptureConfig) withDefaults() CaptureConfig {
	if c.SlowN <= 0 {
		c.SlowN = 32
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 32
	}
	return c
}

// Capture is the concurrency-safe tail-sampling store. Create it with
// NewCapture; a nil *Capture is a valid disabled store.
type Capture struct {
	cfg CaptureConfig

	mu       sync.Mutex
	seq      int64          // completed queries seen
	kept     int64          // records retained (any reason)
	ring     []*QueryRecord // errored/breach/sampled, circular
	ringPos  int
	slow     []*QueryRecord // slowest-N pool, min at index minIdx
	slowCap  int
	sampleM  int64
	disabled bool
}

// NewCapture builds a capture store with the given policy.
func NewCapture(cfg CaptureConfig) *Capture {
	cfg = cfg.withDefaults()
	if cfg.Disabled {
		return &Capture{disabled: true}
	}
	return &Capture{
		cfg:     cfg,
		ring:    make([]*QueryRecord, 0, cfg.RingSize),
		slow:    make([]*QueryRecord, 0, cfg.SlowN),
		slowCap: cfg.SlowN,
		sampleM: int64(cfg.SampleEvery),
	}
}

// Observe decides whether to retain rec, stamping rec.Captured with the
// reasons. force demands retention regardless of policy (used when a
// caller wants a specific trace kept, e.g. on SLO breach the collector
// passes records with SLOBreach already set). Returns whether the
// record was retained.
func (c *Capture) Observe(rec *QueryRecord, force bool) bool {
	if c == nil || c.disabled || rec == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++

	var reasons []string
	if rec.Errored {
		reasons = append(reasons, CapturedErrored)
	}
	if rec.SLOBreach {
		reasons = append(reasons, CapturedBreach)
	}
	if force {
		reasons = append(reasons, CapturedForced)
	}
	sampled := len(reasons) == 0 && c.seq%c.sampleM == 0
	if sampled {
		reasons = append(reasons, CapturedSampled)
	}

	// Slowest-N pool: admit when the pool has room or rec is slower
	// than the pool's current fastest member.
	inSlow := false
	if len(c.slow) < c.slowCap {
		c.slow = append(c.slow, rec)
		inSlow = true
	} else if i := c.fastestIdx(); c.slow[i].TotalMS < rec.TotalMS {
		c.slow[i] = rec
		inSlow = true
	}
	if inSlow {
		reasons = append(reasons, CapturedSlow)
	}

	if len(reasons) == 0 {
		return false
	}
	rec.Captured = reasons
	c.kept++
	// The slow pool holds its members itself; everything else goes to
	// the ring. (A record can live in both; Snapshot dedups.)
	if rec.Errored || rec.SLOBreach || sampled || force {
		if len(c.ring) < c.cfg.RingSize {
			c.ring = append(c.ring, rec)
		} else {
			c.ring[c.ringPos] = rec
			c.ringPos = (c.ringPos + 1) % c.cfg.RingSize
		}
	}
	return true
}

// fastestIdx locates the pool member with the smallest latency — the
// eviction candidate. The pool is small (SlowN), so a linear scan is
// cheaper than maintaining heap order under concurrent eviction.
func (c *Capture) fastestIdx() int {
	min := 0
	for i := 1; i < len(c.slow); i++ {
		if c.slow[i].TotalMS < c.slow[min].TotalMS {
			min = i
		}
	}
	return min
}

// Snapshot returns every retained record, slowest first, deduplicated
// across the slow pool and the ring. The records are shared (not
// copied); treat them as immutable after Observe.
func (c *Capture) Snapshot() []QueryRecord {
	if c == nil || c.disabled {
		return nil
	}
	c.mu.Lock()
	seen := make(map[*QueryRecord]struct{}, len(c.slow)+len(c.ring))
	out := make([]QueryRecord, 0, len(c.slow)+len(c.ring))
	for _, set := range [2][]*QueryRecord{c.slow, c.ring} {
		for _, r := range set {
			if _, dup := seen[r]; dup {
				continue
			}
			seen[r] = struct{}{}
			out = append(out, *r)
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalMS > out[j].TotalMS })
	return out
}

// Stats reports how many completions the store has seen and how many
// records it retained.
func (c *Capture) Stats() (observed, retained int64) {
	if c == nil || c.disabled {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq, c.kept
}
