package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text-exposition payload against
// the format's basic invariants: parseable sample lines with non-blank
// valid metric names, a TYPE declaration preceding every sample family,
// no duplicate TYPE declarations, and no duplicate samples (same name
// and label set). CI runs it over /metricsz so a malformed exposition
// fails the build rather than the scrape.
func LintPrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	typed := map[string]string{}  // family -> type
	seen := map[string]struct{}{} // sample identity (name + labels)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.Fields(trimmed)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: TYPE declares invalid metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE declaration for %q", lineNo, name)
				}
				typed[name] = kind
			}
			continue
		}

		name, labels, value, err := parseSample(trimmed)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, err := strconv.ParseFloat(normalizeInf(value), 64); err != nil {
			return fmt.Errorf("line %d: sample %s has non-numeric value %q", lineNo, name, value)
		}
		family := sampleFamily(name, typed)
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE line", lineNo, name)
		}
		id := name + "{" + labels + "}"
		if _, dup := seen[id]; dup {
			return fmt.Errorf("line %d: duplicate sample %s", lineNo, id)
		}
		seen[id] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lineNo == 0 {
		return fmt.Errorf("empty exposition")
	}
	return nil
}

// parseSample splits "name{labels} value" (labels optional) into parts.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unclosed label set in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", "", fmt.Errorf("malformed sample line %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if name == "" {
		return "", "", "", fmt.Errorf("blank metric name in %q", line)
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "", fmt.Errorf("sample %q has no value", name)
	}
	// A timestamp may follow the value; the value is the first field.
	return name, labels, fields[0], nil
}

// sampleFamily maps a sample name to the family its TYPE line declares:
// histogram/summary series append _bucket/_sum/_count to the family
// name.
func sampleFamily(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if _, declared := typed[base]; declared {
				return base
			}
		}
	}
	return name
}

func normalizeInf(v string) string {
	switch v {
	case "+Inf":
		return "Inf"
	case "-Inf":
		return "-Inf"
	}
	return v
}
