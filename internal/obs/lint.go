package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text-exposition payload against
// the format's basic invariants: parseable sample lines with non-blank
// valid metric names, a TYPE declaration preceding every sample family,
// no duplicate TYPE declarations, and no duplicate samples (same name
// and label set). Labeled samples are parsed in full: label names must
// be valid, quoted values must use only the format's escapes (\\, \",
// \n), a label name may not repeat within one sample, and duplicate
// detection canonicalizes label order so two samples that differ only
// in label ordering are still flagged as duplicates. CI runs it over
// /metricsz so a malformed exposition fails the build rather than the
// scrape.
func LintPrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	typed := map[string]string{}  // family -> type
	seen := map[string]struct{}{} // sample identity (name + labels)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			fields := strings.Fields(trimmed)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: TYPE declares invalid metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE declaration for %q", lineNo, name)
				}
				typed[name] = kind
			}
			continue
		}

		name, labels, value, err := parseSample(trimmed)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, err := strconv.ParseFloat(normalizeInf(value), 64); err != nil {
			return fmt.Errorf("line %d: sample %s has non-numeric value %q", lineNo, name, value)
		}
		family := sampleFamily(name, typed)
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE line", lineNo, name)
		}
		pairs, err := parseLabels(labels)
		if err != nil {
			return fmt.Errorf("line %d: sample %s: %v", lineNo, name, err)
		}
		id := name + "{" + canonicalLabels(pairs) + "}"
		if _, dup := seen[id]; dup {
			return fmt.Errorf("line %d: duplicate sample %s", lineNo, id)
		}
		seen[id] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lineNo == 0 {
		return fmt.Errorf("empty exposition")
	}
	return nil
}

// parseSample splits "name{labels} value" (labels optional) into parts.
// The closing brace is located with a quote-aware scan, so a '}' inside
// a quoted label value does not truncate the label set.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := closingBrace(rest, i)
		if j < 0 {
			return "", "", "", fmt.Errorf("unclosed label set in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", "", fmt.Errorf("malformed sample line %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if name == "" {
		return "", "", "", fmt.Errorf("blank metric name in %q", line)
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "", fmt.Errorf("sample %q has no value", name)
	}
	// A timestamp may follow the value; the value is the first field.
	return name, labels, fields[0], nil
}

// closingBrace returns the index of the '}' that closes the label set
// opened at open, skipping quoted label values (where '}' is literal
// and '\"' is an escaped quote), or -1 when unclosed.
func closingBrace(s string, open int) int {
	inQuote := false
	for i := open + 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// parseLabels splits the interior of a label set into name/value pairs,
// validating label names, quoting and escaping, and rejecting a label
// name that repeats within the sample. An empty interior is a valid
// empty label set.
func parseLabels(labels string) ([]Label, error) {
	s := strings.TrimSpace(labels)
	if s == "" {
		return nil, nil
	}
	var out []Label
	names := map[string]struct{}{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no '='", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		if _, dup := names[name]; dup {
			return nil, fmt.Errorf("label %q repeated within one sample", name)
		}
		names[name] = struct{}{}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", name)
		}
		val, rest, err := scanQuoted(s)
		if err != nil {
			return nil, fmt.Errorf("label %q: %v", name, err)
		}
		out = append(out, Label{Name: name, Value: val})
		s = strings.TrimSpace(rest)
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = strings.TrimSpace(s[1:])
			// A single trailing comma before '}' is permitted by the format.
		}
	}
	return out, nil
}

// scanQuoted consumes a leading quoted string, unescaping \\, \" and
// \n — the only escapes the text format allows in label values.
func scanQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c in %q", s[i], s)
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value in %q", s)
}

// canonicalLabels renders pairs sorted by name so duplicate-sample
// detection is order-independent.
func canonicalLabels(pairs []Label) string {
	sorted := append([]Label(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// sampleFamily maps a sample name to the family its TYPE line declares:
// histogram/summary series append _bucket/_sum/_count to the family
// name.
func sampleFamily(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if _, declared := typed[base]; declared {
				return base
			}
		}
	}
	return name
}

func normalizeInf(v string) string {
	switch v {
	case "+Inf":
		return "Inf"
	case "-Inf":
		return "-Inf"
	}
	return v
}
