// Package obs is the observability layer of the search stack: per-query
// traces and process-wide metrics, with zero dependencies beyond the
// standard library.
//
// # Traces
//
// A *Trace rides a query's context.Context (ContextWithTrace /
// FromContext) through every layer — index projection, the bounded
// Dijkstra runs of internal/sssp, the engine primitives of
// internal/core, the enumerators, and the governor — each of which
// records spans and counters into it. The paper's headline claims are
// about where time goes (polynomial delay between emitted communities,
// inverted-index projection shrinking the Dijkstra frontier, can-list
// growth in COMM-k); a Trace makes each of those directly observable
// per query.
//
// Every method is safe on a nil *Trace and does no work, so an
// untraced query pays one nil check per instrumentation point and
// allocates nothing — a property locked by tests. Instrumented hot
// loops accumulate locally and flush once per Dijkstra run (see
// DijkstraRun), keeping tracing off the per-edge critical path even
// when enabled.
//
// # Span and counter taxonomy
//
// Spans (per-stage wall-clock):
//
//   - project     — inverted-index projection (Algorithm 6)
//   - engine_init — keyword resolution and engine construction
//   - enumerate   — first Next until exhaustion
//
// Counters:
//
//   - dijkstra_runs, dijkstra_visits, dijkstra_relaxations,
//     heap_pushes, heap_pops, radius_cutoffs — shortest-path engine
//   - neighbor_runs, bestcore_scans, getcommunity_calls — core engine
//   - emitted — communities produced
//   - can_tuples, can_list_max — COMM-k can-list growth
//   - project_union_nodes, project_union_edges, project_nodes_kept,
//     project_nodes_dropped, project_edges_kept — index projection
//   - budget_* — governor resources consumed (snapshotted at Summary)
//
// A Trace is safe for concurrent use; a query that fans out work can
// share one Trace across goroutines.
package obs

import (
	"sort"
	"sync"
	"time"
)

// MaxStoredDelays bounds how many individual inter-emission delays a
// trace retains verbatim; aggregates (count, mean, max) cover the rest,
// so COMM-all queries with huge result sets keep bounded traces.
const MaxStoredDelays = 512

// Trace collects one query's spans, engine counters and inter-emission
// delays. The zero value is not useful; create traces with NewTrace.
// All methods are no-ops on a nil receiver.
type Trace struct {
	start   time.Time
	queryID string

	mu        sync.Mutex
	labels    map[string]string
	spans     []SpanSummary
	counters  map[string]int64
	kwInit    map[string]*KeywordCost
	emitCount int64
	emitSum   time.Duration
	emitMax   time.Duration
	lastEmit  time.Time
	delays    []time.Duration
	finishers []func(*Trace)
	finished  bool
}

// NewTrace starts a trace. queryID ties the trace to log lines and
// response headers; it may be empty.
func NewTrace(queryID string) *Trace {
	return &Trace{start: time.Now(), queryID: queryID}
}

// Enabled reports whether the trace records anything (i.e. is non-nil),
// for call sites that want to skip building inputs to a record call.
func (t *Trace) Enabled() bool { return t != nil }

// QueryID returns the identifier the trace was created with.
func (t *Trace) QueryID() string {
	if t == nil {
		return ""
	}
	return t.queryID
}

// Start returns the trace's creation time (the zero time on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

var noopEnd = func() {}

// StartSpan opens a named span and returns its closer. On a nil trace
// the returned closer is a shared no-op, so the disabled path does not
// allocate.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return noopEnd
	}
	t0 := time.Now()
	return func() { t.RecordSpan(name, t0) }
}

// RecordSpan records a span that started at start and ends now.
func (t *Trace) RecordSpan(name string, start time.Time) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.spans = append(t.spans, SpanSummary{
		Name:    name,
		StartMS: durMS(start.Sub(t.start)),
		DurMS:   durMS(now.Sub(start)),
	})
	t.mu.Unlock()
}

// Add increments a named counter by n.
func (t *Trace) Add(name string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64, 16)
	}
	t.counters[name] += n
	t.mu.Unlock()
}

// SetMax raises a named counter to v if v is larger — a high-water-mark
// counter (e.g. can_list_max).
func (t *Trace) SetMax(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64, 16)
	}
	if v > t.counters[name] {
		t.counters[name] = v
	}
	t.mu.Unlock()
}

// SetLabel attaches a string label (e.g. algorithm=comm_k).
func (t *Trace) SetLabel(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.labels == nil {
		t.labels = make(map[string]string, 4)
	}
	t.labels[k] = v
	t.mu.Unlock()
}

// DijkstraRun is the per-run counter bundle a shortest-path workspace
// accumulates locally and flushes with AddDijkstra once per run, so the
// per-edge hot loop never touches the trace.
type DijkstraRun struct {
	// Visits counts settled nodes.
	Visits int64
	// Relaxations counts edges examined.
	Relaxations int64
	// HeapPushes and HeapPops count priority-queue operations.
	HeapPushes int64
	HeapPops   int64
	// RadiusCutoffs counts relaxations discarded because the tentative
	// distance exceeded Rmax — the work the radius bound saves.
	RadiusCutoffs int64
}

// AddDijkstra folds one bounded Dijkstra run into the trace.
func (t *Trace) AddDijkstra(r DijkstraRun) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64, 16)
	}
	t.counters["dijkstra_runs"]++
	t.counters["dijkstra_visits"] += r.Visits
	t.counters["dijkstra_relaxations"] += r.Relaxations
	t.counters["heap_pushes"] += r.HeapPushes
	t.counters["heap_pops"] += r.HeapPops
	t.counters["radius_cutoffs"] += r.RadiusCutoffs
	t.mu.Unlock()
}

// KeywordCost is the engine-init spend separably attributable to one
// query keyword: the bounded reverse Dijkstra over the keyword's full
// node set V_i, which is query-independent and therefore the part of a
// query's cost a keyword-keyed cache or precomputed artifact could
// amortize. Costs that are shared across keywords (projection, the
// aggregate table) are deliberately not in here; the workload layer
// charges those to the query class instead.
type KeywordCost struct {
	Term        string  `json:"term"`
	Runs        int64   `json:"runs"`
	Visits      int64   `json:"visits"`
	Relaxations int64   `json:"relaxations"`
	HeapOps     int64   `json:"heap_ops"`
	WallMS      float64 `json:"wall_ms"`
}

// AddKeywordInit charges one full keyword-set Dijkstra run to term.
// Safe for concurrent use (the parallel engine-init fan-out charges
// from several workers) and a no-op on a nil trace.
func (t *Trace) AddKeywordInit(term string, r DijkstraRun, wall time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.kwInit == nil {
		t.kwInit = make(map[string]*KeywordCost, 4)
	}
	kc := t.kwInit[term]
	if kc == nil {
		kc = &KeywordCost{Term: term}
		t.kwInit[term] = kc
	}
	kc.Runs++
	kc.Visits += r.Visits
	kc.Relaxations += r.Relaxations
	kc.HeapOps += r.HeapPushes + r.HeapPops
	kc.WallMS += durMS(wall)
	t.mu.Unlock()
}

// Emission records one community emission: the inter-emission delay —
// time since the previous emission, or since the trace started for the
// first — is the paper's polynomial-delay claim made observable.
func (t *Trace) Emission() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	prev := t.lastEmit
	if prev.IsZero() {
		prev = t.start
	}
	d := now.Sub(prev)
	t.lastEmit = now
	t.emitCount++
	t.emitSum += d
	if d > t.emitMax {
		t.emitMax = d
	}
	if len(t.delays) < MaxStoredDelays {
		t.delays = append(t.delays, d)
	}
	if t.counters == nil {
		t.counters = make(map[string]int64, 16)
	}
	t.counters["emitted"]++
	t.mu.Unlock()
}

// OnFinish registers a hook run once by the first Summary call —
// layers use it to snapshot state that is only final at the end of the
// query (e.g. governor budget consumption) without obs importing them.
func (t *Trace) OnFinish(f func(*Trace)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.finishers = append(t.finishers, f)
	t.mu.Unlock()
}

// Summary finalizes the trace (running OnFinish hooks exactly once)
// and returns its wire form. It may be called repeatedly; later calls
// reflect any recording that happened in between. Returns nil on a nil
// trace.
func (t *Trace) Summary() *Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	fins := t.finishers
	ran := t.finished
	t.finished = true
	t.mu.Unlock()
	if !ran {
		for _, f := range fins {
			f(t)
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Summary{
		QueryID: t.queryID,
		TotalMS: durMS(time.Since(t.start)),
	}
	if len(t.labels) > 0 {
		s.Labels = make(map[string]string, len(t.labels))
		for k, v := range t.labels {
			s.Labels[k] = v
		}
	}
	if len(t.spans) > 0 {
		s.Spans = append([]SpanSummary(nil), t.spans...)
	}
	if len(t.counters) > 0 {
		s.Counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			s.Counters[k] = v
		}
	}
	if len(t.kwInit) > 0 {
		s.KeywordInit = make([]KeywordCost, 0, len(t.kwInit))
		for _, kc := range t.kwInit {
			s.KeywordInit = append(s.KeywordInit, *kc)
		}
		sort.Slice(s.KeywordInit, func(i, j int) bool { return s.KeywordInit[i].Term < s.KeywordInit[j].Term })
	}
	if t.emitCount > 0 {
		e := &EmissionSummary{
			Count:       t.emitCount,
			FirstMS:     durMS(t.delays[0]),
			MeanDelayMS: durMS(t.emitSum) / float64(t.emitCount),
			MaxDelayMS:  durMS(t.emitMax),
			DelaysMS:    make([]float64, len(t.delays)),
		}
		for i, d := range t.delays {
			e.DelaysMS[i] = durMS(d)
		}
		s.Emissions = e
	}
	return s
}

// Summary is the structured, JSON-ready form of a finished trace — the
// body of EXPLAIN mode on the CLI and the server endpoints.
type Summary struct {
	QueryID string            `json:"query_id,omitempty"`
	TotalMS float64           `json:"total_ms"`
	Labels  map[string]string `json:"labels,omitempty"`
	Spans   []SpanSummary     `json:"spans,omitempty"`
	// Counters holds the engine counters; see the package comment for
	// the taxonomy.
	Counters map[string]int64 `json:"counters,omitempty"`
	// KeywordInit is the per-keyword engine-init spend (full keyword-set
	// Dijkstra runs charged to their keyword), sorted by term.
	KeywordInit []KeywordCost    `json:"keyword_init,omitempty"`
	Emissions   *EmissionSummary `json:"emissions,omitempty"`
}

// Counter returns a named counter's value (0 when absent or s is nil).
func (s *Summary) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Span returns the first span with the given name.
func (s *Summary) Span(name string) (SpanSummary, bool) {
	if s != nil {
		for _, sp := range s.Spans {
			if sp.Name == name {
				return sp, true
			}
		}
	}
	return SpanSummary{}, false
}

// SpanSummary is one per-stage timing: offset from trace start plus
// duration, both in milliseconds.
type SpanSummary struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// EmissionSummary aggregates the per-community inter-emission delays.
// DelaysMS holds the first MaxStoredDelays individual delays; Count,
// MeanDelayMS and MaxDelayMS cover every emission.
type EmissionSummary struct {
	Count       int64     `json:"count"`
	FirstMS     float64   `json:"first_ms"`
	MeanDelayMS float64   `json:"mean_delay_ms"`
	MaxDelayMS  float64   `json:"max_delay_ms"`
	DelaysMS    []float64 `json:"delays_ms,omitempty"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
