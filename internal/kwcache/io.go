package kwcache

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"commdb/internal/fulltext"
	"commdb/internal/graph"
)

// Binary serialization of the artifact store, so hot-keyword neighbor
// sets survive restarts and can be prebuilt offline (cmd/indexbuild
// -kwcache-out). The format mirrors the v2 index format's fail-closed
// discipline: a loader either reconstructs exactly the store that was
// written — validated structurally against the live graph — or returns
// an error wrapping ErrCorruptStore / ErrStoreMismatch, never a
// short-but-plausible store. Layout:
//
//	magic "CDBK"
//	header section:  version | radius bits | epoch | node count
//	                 | edge count | term count | CRC32-C of the section
//	terms section:   per term (sorted by term string): term | seed ids
//	                 (delta-coded, strictly increasing) | settle
//	                 sequence as (node, dist, src, via) tuples in settle
//	                 order | CRC32-C of the section
//	footer magic "KBDC", then EOF (trailing bytes are corruption)
//
// On load every entry passes a sanity gate against the live graph and
// fulltext: seed sets must equal the live keyword postings, every
// settled node's via hop must be a real edge whose weight reproduces
// the stored distance exactly, sources must propagate along via hops,
// and distances must be non-decreasing within the radius. An artifact
// built over a different data generation therefore fails closed even
// when its checksums are intact; the recorded epoch is operator-facing
// versioning, not the correctness gate.
const (
	storeMagic   = "CDBK"
	storeFooter  = "KBDC"
	storeVersion = 1
)

// ErrCorruptStore marks a serialized artifact store that failed
// validation: truncated or flipped bytes, checksum mismatches,
// out-of-bounds nodes, broken settle-order invariants, trailing
// garbage. Match with errors.Is. Corruption is permanent — retrying
// the load cannot help; rebuild the artifacts.
var ErrCorruptStore = errors.New("kwcache: corrupt artifact store")

// ErrStoreMismatch marks a structurally valid store built over a
// different graph generation than the one it is being attached to.
var ErrStoreMismatch = errors.New("kwcache: artifacts do not match graph")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptStore, fmt.Sprintf(format, args...))
}

// readErr classifies an I/O failure mid-load: any flavour of EOF means
// truncation (→ corrupt); other errors pass through as transient.
func readErr(err error, what string) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return corruptf("truncated while reading %s: %v", what, err)
	}
	return fmt.Errorf("kwcache: reading %s: %w", what, err)
}

// cwriter accumulates a per-section CRC32-C over everything written.
type cwriter struct {
	bw  *bufio.Writer
	crc uint32
}

func (w *cwriter) write(p []byte) {
	w.bw.Write(p)
	w.crc = crc32.Update(w.crc, castagnoli, p)
}

func (w *cwriter) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.write(buf[:n])
}

func (w *cwriter) varint(v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.write(buf[:n])
}

func (w *cwriter) float(f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	w.write(buf[:])
}

func (w *cwriter) endSection() {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], w.crc)
	w.bw.Write(buf[:])
	w.crc = 0
}

// creader mirrors cwriter, comparing the accumulated CRC against the
// stored value at each section boundary.
type creader struct {
	br  *bufio.Reader
	crc uint32
}

func (c *creader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		one := [1]byte{b}
		c.crc = crc32.Update(c.crc, castagnoli, one[:])
	}
	return b, err
}

func (c *creader) full(p []byte) error {
	if _, err := io.ReadFull(c.br, p); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, castagnoli, p)
	return nil
}

func (c *creader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(c)
	if err != nil {
		return 0, readErr(err, what)
	}
	return v, nil
}

func (c *creader) varint(what string) (int64, error) {
	v, err := binary.ReadVarint(c)
	if err != nil {
		return 0, readErr(err, what)
	}
	return v, nil
}

func (c *creader) float(what string) (float64, error) {
	var buf [8]byte
	if err := c.full(buf[:]); err != nil {
		return 0, readErr(err, what)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func (c *creader) endSection(name string) error {
	var buf [4]byte
	if _, err := io.ReadFull(c.br, buf[:]); err != nil {
		return readErr(err, name+" checksum")
	}
	stored := binary.LittleEndian.Uint32(buf[:])
	if stored != c.crc {
		return corruptf("%s section checksum mismatch (stored %08x, computed %08x)", name, stored, c.crc)
	}
	c.crc = 0
	return nil
}

// Write serializes the store to w. Terms are written in sorted order,
// which the loader enforces, so two stores with the same contents are
// byte-identical on disk.
func (s *Store) Write(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(storeMagic); err != nil {
		return err
	}
	cw := &cwriter{bw: bw}
	cw.uvarint(storeVersion)
	cw.float(s.radius)
	cw.varint(s.epoch)
	cw.uvarint(uint64(s.g.NumNodes()))
	cw.uvarint(uint64(s.g.NumEdges()))
	cw.uvarint(uint64(len(s.terms)))
	cw.endSection()

	terms := make([]string, 0, len(s.terms))
	for t := range s.terms {
		terms = append(terms, t)
	}
	sortStrings(terms)
	for _, t := range terms {
		e := s.terms[t]
		cw.uvarint(uint64(len(t)))
		cw.write([]byte(t))
		cw.uvarint(uint64(len(e.seeds)))
		prev := int64(-1)
		for _, v := range e.seeds {
			cw.uvarint(uint64(int64(v) - prev)) // strictly increasing: delta ≥ 1
			prev = int64(v)
		}
		cw.uvarint(uint64(len(e.visited)))
		for i, v := range e.visited {
			cw.uvarint(uint64(v))
			cw.float(e.dist[i])
			cw.uvarint(uint64(e.src[i]))
			cw.uvarint(uint64(e.via[i]))
		}
	}
	cw.endSection()
	if _, err := bw.WriteString(storeFooter); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadInto deserializes a store written by Write, attaching it to the
// live fulltext index (and through it, the graph). Loading is
// fail-closed: any truncation, checksum mismatch, bounds violation,
// settle-order violation, seed set differing from the live keyword
// postings, via hop that is not a live edge reproducing the stored
// distance, or trailing garbage returns an error wrapping
// ErrCorruptStore (or ErrStoreMismatch for wrong-generation artifacts)
// and no store. It never panics on hostile input.
func ReadInto(r io.Reader, ft *fulltext.Index) (*Store, error) {
	g := ft.Graph()
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, readErr(err, "magic")
	}
	if string(magic) != storeMagic {
		return nil, corruptf("bad magic %q", magic)
	}
	cr := &creader{br: br}
	ver, err := cr.uvarint("version")
	if err != nil {
		return nil, err
	}
	if ver != storeVersion {
		return nil, corruptf("unsupported version %d (want %d; rebuild the artifacts)", ver, storeVersion)
	}
	radius, err := cr.float("radius")
	if err != nil {
		return nil, err
	}
	if math.IsNaN(radius) || math.IsInf(radius, 0) || radius < 0 {
		return nil, corruptf("non-finite or negative radius %v", radius)
	}
	epoch, err := cr.varint("epoch")
	if err != nil {
		return nil, err
	}
	nodes, err := cr.uvarint("node count")
	if err != nil {
		return nil, err
	}
	if int(nodes) != g.NumNodes() {
		return nil, fmt.Errorf("%w: built over %d nodes, graph has %d",
			ErrStoreMismatch, nodes, g.NumNodes())
	}
	edges, err := cr.uvarint("edge count")
	if err != nil {
		return nil, err
	}
	if int(edges) != g.NumEdges() {
		return nil, fmt.Errorf("%w: built over %d edges, graph has %d",
			ErrStoreMismatch, edges, g.NumEdges())
	}
	termCount, err := cr.uvarint("term count")
	if err != nil {
		return nil, err
	}
	if err := cr.endSection("header"); err != nil {
		return nil, err
	}

	s, err := New(ft, radius, epoch)
	if err != nil {
		return nil, err
	}
	n := int64(g.NumNodes())
	nw := g.NodeWeights()
	// Per-term settle bookkeeping, stamp-reused across terms: settled[v]
	// == stamp marks v settled in the current term, with its running
	// dist/src for the via-chain checks.
	settled := make([]int32, n)
	distOf := make([]float64, n)
	srcOf := make([]graph.NodeID, n)
	prevTerm := ""
	for t := uint64(0); t < termCount; t++ {
		stamp := int32(t) + 1
		tl, err := cr.uvarint("term length")
		if err != nil {
			return nil, err
		}
		if tl > 1<<16 {
			return nil, corruptf("term %d length %d is implausible", t, tl)
		}
		tb := make([]byte, tl)
		if err := cr.full(tb); err != nil {
			return nil, readErr(err, "term")
		}
		term := string(tb)
		if toks := fulltext.Tokenize(term); len(toks) != 1 || toks[0] != term {
			return nil, corruptf("term %d %q is not a normalized single term", t, term)
		}
		if t > 0 && term <= prevTerm {
			return nil, corruptf("term %q breaks sorted order after %q", term, prevTerm)
		}
		prevTerm = term

		seedCount, err := cr.uvarint("seed count")
		if err != nil {
			return nil, err
		}
		if int64(seedCount) > n {
			return nil, corruptf("term %q claims %d seeds in a graph of %d nodes", term, seedCount, n)
		}
		seeds := make([]graph.NodeID, 0, seedCount)
		prev := int64(-1)
		for i := uint64(0); i < seedCount; i++ {
			d, err := cr.uvarint("seed delta")
			if err != nil {
				return nil, err
			}
			v := prev + int64(d)
			if d == 0 || v >= n {
				return nil, corruptf("term %q seed %d (%d) out of bounds or order", term, i, v)
			}
			prev = v
			seeds = append(seeds, graph.NodeID(v))
		}
		// The live-postings gate: the artifact's seed set must be exactly
		// the keyword's current node set, or the artifact belongs to
		// another generation of the data.
		live := append([]graph.NodeID(nil), ft.Nodes(term)...)
		sortNodes(live)
		if !equalNodes(seeds, live) {
			return nil, fmt.Errorf("%w: term %q has %d stored seeds vs %d live keyword nodes (or differing ids)",
				ErrStoreMismatch, term, len(seeds), len(live))
		}

		visCount, err := cr.uvarint("settle count")
		if err != nil {
			return nil, err
		}
		if int64(visCount) > n {
			return nil, corruptf("term %q settles %d nodes in a graph of %d", term, visCount, n)
		}
		e := &entry{
			seeds:   seeds,
			visited: make([]graph.NodeID, 0, visCount),
			dist:    make([]float64, 0, visCount),
			src:     make([]graph.NodeID, 0, visCount),
			via:     make([]graph.NodeID, 0, visCount),
		}
		prevDist := 0.0
		for i := uint64(0); i < visCount; i++ {
			v64, err := cr.uvarint("settled node")
			if err != nil {
				return nil, err
			}
			d, err := cr.float("settled distance")
			if err != nil {
				return nil, err
			}
			src64, err := cr.uvarint("settled source")
			if err != nil {
				return nil, err
			}
			via64, err := cr.uvarint("settled via")
			if err != nil {
				return nil, err
			}
			v, src, via := int64(v64), int64(src64), int64(via64)
			if v >= n || src >= n || via >= n {
				return nil, corruptf("term %q settle %d (%d,%d,%d) outside graph of %d nodes", term, i, v, src, via, n)
			}
			if settled[v] == stamp {
				return nil, corruptf("term %q settles node %d twice", term, v)
			}
			if math.IsNaN(d) || d < prevDist || d > radius {
				return nil, corruptf("term %q settle %d distance %v breaks order (prev %v, radius %v)",
					term, i, d, prevDist, radius)
			}
			prevDist = d
			if via == v {
				// A self-via is a seed settled at its seed distance (zero).
				if d != 0 || src != v || !containsNode(seeds, graph.NodeID(v)) {
					return nil, corruptf("term %q settle %d: node %d self-via but not a zero-distance seed", term, i, v)
				}
			} else {
				// The via chain gate: via must already be settled, the
				// original edge v→via must exist, and its weight (plus the
				// via node's weight, per the reverse-run convention) must
				// reproduce the stored distance exactly — a wrong-generation
				// graph fails here even with intact checksums.
				if settled[via] != stamp {
					return nil, corruptf("term %q settle %d: via %d not settled before %d", term, i, via, v)
				}
				w, ok := g.EdgeWeight(graph.NodeID(v), graph.NodeID(via))
				if !ok {
					return nil, fmt.Errorf("%w: term %q settle (%d→%d) is not an edge of the live graph",
						ErrStoreMismatch, term, v, via)
				}
				want := distOf[via] + w
				if nw != nil {
					want += nw[via]
				}
				if d != want {
					return nil, fmt.Errorf("%w: term %q node %d distance %v does not reproduce via %d (+%v = %v)",
						ErrStoreMismatch, term, v, d, via, w, want)
				}
				if graph.NodeID(src) != srcOf[via] {
					return nil, corruptf("term %q node %d source %d disagrees with via %d's source %d",
						term, v, src, via, srcOf[via])
				}
			}
			settled[v] = stamp
			distOf[v] = d
			srcOf[v] = graph.NodeID(src)
			e.visited = append(e.visited, graph.NodeID(v))
			e.dist = append(e.dist, d)
			e.src = append(e.src, graph.NodeID(src))
			e.via = append(e.via, graph.NodeID(via))
		}
		// Completeness: a live run settles every seed (distance zero is
		// always within a non-negative radius).
		for _, sd := range seeds {
			if settled[sd] != stamp {
				return nil, corruptf("term %q seed %d missing from its settle sequence", term, sd)
			}
		}
		s.terms[term] = e
	}
	if err := cr.endSection("terms"); err != nil {
		return nil, err
	}
	footer := make([]byte, 4)
	if _, err := io.ReadFull(br, footer); err != nil {
		return nil, readErr(err, "footer")
	}
	if string(footer) != storeFooter {
		return nil, corruptf("bad footer %q", footer)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, readErr(err, "end of file")
		}
		return nil, corruptf("trailing garbage after footer")
	}
	return s, nil
}

func sortStrings(s []string) { sort.Strings(s) }

func sortNodes(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func equalNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsNode(sorted []graph.NodeID, v graph.NodeID) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == v
}
