// Package kwcache is the keyword neighbor-set artifact store: tier 1 of
// the semantic cache. A query keyword's full-set run Neighbor(V_i) — the
// bounded reverse Dijkstra from every node containing the keyword — is
// query-independent: it depends only on the graph, the keyword and the
// radius. The store computes those runs once at a fixed radius R
// (typically the index radius, the largest Rmax the server admits),
// keeps the settle sequences, and serves any query with Rmax ≤ R by
// truncation, turning engine init for hot keywords into a memory read.
//
// Soundness of the truncation rests on two properties:
//
//  1. A settle sequence is produced in non-decreasing distance order, so
//     "all nodes within rmax" is a prefix of "all nodes within R".
//  2. The Dijkstra heap orders items canonically by (distance, node id)
//     — see internal/heap — so the prefix is not merely the same node
//     set but the exact settle order, distances, sources and via hops a
//     live run at rmax would produce. The engine's downstream state is
//     therefore byte-identical to cold execution.
//
// Artifacts persist to disk in a CRC-checked, fail-closed format
// (io.go) versioned by the data epoch, mirroring the v2 index format.
// A store is safe for concurrent use: lookups take a read lock, the
// warmer inserts under a write lock, and entries are immutable once
// published.
package kwcache

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"commdb/internal/fulltext"
	"commdb/internal/graph"
	"commdb/internal/sssp"
)

// Store holds per-keyword neighbor-set artifacts computed at one radius
// over one graph snapshot.
type Store struct {
	ft     *fulltext.Index
	g      *graph.Graph
	radius float64
	epoch  int64

	mu    sync.RWMutex
	terms map[string]*entry

	hits, misses atomic.Int64
}

// entry is one keyword's artifact: the seeds V_term and the full settle
// sequence of the reverse run at the store radius, in settle order.
// Immutable after publication.
type entry struct {
	seeds   []graph.NodeID // sorted ascending
	visited []graph.NodeID
	dist    []float64
	src     []graph.NodeID
	via     []graph.NodeID
}

func (e *entry) bytes() int64 {
	return int64(len(e.seeds))*4 + int64(len(e.visited))*(4+8+4+4) + 64
}

// New returns an empty store over ft's graph at the given radius. epoch
// is the data generation the artifacts describe; it is persisted with
// the store and surfaced on load so operators can tell artifact
// generations apart (correctness against the live graph is enforced
// structurally by ReadInto, not by the epoch number).
func New(ft *fulltext.Index, radius float64, epoch int64) (*Store, error) {
	if math.IsNaN(radius) || math.IsInf(radius, 0) || radius < 0 {
		return nil, fmt.Errorf("kwcache: non-finite or negative radius %v", radius)
	}
	return &Store{
		ft:     ft,
		g:      ft.Graph(),
		radius: radius,
		epoch:  epoch,
		terms:  make(map[string]*entry),
	}, nil
}

// Radius reports the radius every artifact was computed at. Queries
// with Rmax ≤ Radius can be served; larger radii must fall back to
// live execution.
func (s *Store) Radius() float64 { return s.radius }

// Epoch reports the data generation recorded at build time.
func (s *Store) Epoch() int64 { return s.epoch }

// Graph returns the graph the artifacts were computed over.
func (s *Store) Graph() *graph.Graph { return s.g }

// Len reports the number of cached keywords.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.terms)
}

// Terms returns the cached keywords, sorted.
func (s *Store) Terms() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.terms))
	for t := range s.terms {
		out = append(out, t)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Has reports whether term's artifact is present.
func (s *Store) Has(term string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.terms[term]
	return ok
}

// Hits and Misses report how many FullSet probes were served vs fell
// through to live execution.
func (s *Store) Hits() int64   { return s.hits.Load() }
func (s *Store) Misses() int64 { return s.misses.Load() }

// Bytes estimates the store's logical memory footprint.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b int64 = 128
	for t, e := range s.terms {
		b += int64(len(t)) + e.bytes()
	}
	return b
}

// Warm computes and publishes artifacts for every keyword in terms that
// is not already cached, reporting how many were added. Keywords that
// do not tokenize to a single term are skipped (the engine rejects them
// anyway); keywords matching no node get an empty artifact, which
// serves the empty neighbor set exactly as a live run would. Warm may
// run concurrently with FullSet; concurrent Warm calls are serialized
// per insertion and both may compute the same term (last write wins
// with identical content — the run is deterministic).
func (s *Store) Warm(keywords []string) int {
	var todo []string
	for _, kw := range keywords {
		toks := fulltext.Tokenize(kw)
		if len(toks) != 1 {
			continue
		}
		if term := toks[0]; !s.Has(term) {
			todo = append(todo, term)
		}
	}
	if len(todo) == 0 {
		return 0
	}
	ws := sssp.NewWorkspace(s.g)
	res := sssp.NewResult(s.g.NumNodes())
	added := 0
	for _, term := range todo {
		if s.Has(term) { // raced with another warmer
			continue
		}
		s.put(term, buildEntry(ws, s.ft, term, s.radius, res))
		added++
	}
	return added
}

// buildEntry runs the full-set reverse Dijkstra for one term at radius
// and copies the settle sequence out of res.
func buildEntry(ws *sssp.Workspace, ft *fulltext.Index, term string, radius float64, res *sssp.Result) *entry {
	seeds := ft.Nodes(term)
	ws.RunFromNodes(sssp.Reverse, seeds, radius, res)
	e := &entry{
		seeds:   append([]graph.NodeID(nil), seeds...),
		visited: make([]graph.NodeID, 0, res.Len()),
		dist:    make([]float64, 0, res.Len()),
		src:     make([]graph.NodeID, 0, res.Len()),
		via:     make([]graph.NodeID, 0, res.Len()),
	}
	sort.Slice(e.seeds, func(i, j int) bool { return e.seeds[i] < e.seeds[j] })
	for _, v := range res.Visited() {
		d, _ := res.Dist(v)
		e.visited = append(e.visited, v)
		e.dist = append(e.dist, d)
		e.src = append(e.src, res.Src(v))
		e.via = append(e.via, res.Via(v))
	}
	return e
}

func (s *Store) put(term string, e *entry) {
	s.mu.Lock()
	s.terms[term] = e
	s.mu.Unlock()
}

// FullSet loads term's neighbor set truncated to rmax into res,
// reporting whether it could serve it. A miss (unknown term, or rmax
// beyond the store radius) leaves res untouched; the caller falls back
// to a live run. This is the core.NeighborSource contract.
func (s *Store) FullSet(term string, rmax float64, res *sssp.Result) bool {
	if rmax > s.radius {
		s.misses.Add(1)
		return false
	}
	s.mu.RLock()
	e, ok := s.terms[term]
	s.mu.RUnlock()
	if !ok {
		s.misses.Add(1)
		return false
	}
	// The settle sequence is non-decreasing in distance: the nodes
	// within rmax are the prefix up to the first distance beyond it.
	cut := sort.Search(len(e.dist), func(i int) bool { return e.dist[i] > rmax })
	res.Load(e.visited[:cut], e.dist[:cut], e.src[:cut], e.via[:cut])
	s.hits.Add(1)
	return true
}
