package kwcache

import (
	"bytes"
	"errors"
	"testing"

	"commdb/internal/core"
	"commdb/internal/fulltext"
	"commdb/internal/graph"
	"commdb/internal/sssp"
)

// paperStore builds a warmed store over the paper's running example:
// every keyword of Fig. 4 at the given radius.
func paperStore(t *testing.T, radius float64) (*Store, *fulltext.Index) {
	t.Helper()
	g, _ := core.PaperGraph()
	ft := fulltext.Build(g)
	s, err := New(ft, radius, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Warm([]string{"a", "b", "c"}); got != 3 {
		t.Fatalf("Warm added %d terms, want 3", got)
	}
	return s, ft
}

// liveRun is the ground truth FullSet must reproduce: a live bounded
// reverse Dijkstra from the term's keyword nodes.
func liveRun(g *graph.Graph, ft *fulltext.Index, term string, rmax float64) *sssp.Result {
	ws := sssp.NewWorkspace(g)
	res := sssp.NewResult(g.NumNodes())
	ws.RunFromNodes(sssp.Reverse, ft.Nodes(term), rmax, res)
	return res
}

func sameResult(t *testing.T, term string, rmax float64, got, want *sssp.Result) {
	t.Helper()
	gv, wv := got.Visited(), want.Visited()
	if len(gv) != len(wv) {
		t.Fatalf("%s@%g: settled %d nodes, live run settles %d", term, rmax, len(gv), len(wv))
	}
	for i := range wv {
		if gv[i] != wv[i] {
			t.Fatalf("%s@%g: settle %d is node %d, live run settles %d", term, rmax, i, gv[i], wv[i])
		}
		v := wv[i]
		gd, _ := got.Dist(v)
		wd, _ := want.Dist(v)
		if gd != wd || got.Src(v) != want.Src(v) || got.Via(v) != want.Via(v) {
			t.Fatalf("%s@%g: node %d (dist,src,via)=(%v,%d,%d), live run has (%v,%d,%d)",
				term, rmax, v, gd, got.Src(v), got.Via(v), wd, want.Src(v), want.Via(v))
		}
	}
}

// TestFullSetMatchesLiveRun: a FullSet served by truncation must be
// byte-identical to a live run at the query radius — same settle
// order, distances, sources and via hops — at the store radius and
// below it.
func TestFullSetMatchesLiveRun(t *testing.T) {
	s, ft := paperStore(t, 8)
	g := ft.Graph()
	for _, term := range []string{"a", "b", "c"} {
		for _, rmax := range []float64{8, 6, 4, 2, 0} {
			res := sssp.NewResult(g.NumNodes())
			if !s.FullSet(term, rmax, res) {
				t.Fatalf("FullSet(%s, %g) missed within the store radius", term, rmax)
			}
			sameResult(t, term, rmax, res, liveRun(g, ft, term, rmax))
		}
	}
	if s.Hits() != 15 || s.Misses() != 0 {
		t.Fatalf("hits/misses = %d/%d, want 15/0", s.Hits(), s.Misses())
	}
}

// TestFullSetMisses: an unknown term or a radius beyond the store's
// must fall through to live execution.
func TestFullSetMisses(t *testing.T) {
	s, ft := paperStore(t, 8)
	res := sssp.NewResult(ft.Graph().NumNodes())
	if s.FullSet("zzz", 4, res) {
		t.Fatal("FullSet served a term that was never warmed")
	}
	if s.FullSet("a", 8.5, res) {
		t.Fatal("FullSet served beyond the store radius")
	}
	if s.Hits() != 0 || s.Misses() != 2 {
		t.Fatalf("hits/misses = %d/%d, want 0/2", s.Hits(), s.Misses())
	}
}

// TestWarmSkipsNonTerms: multi-word and empty keywords are skipped,
// warmed terms are not recomputed, and a keyword matching no node gets
// an empty artifact that serves the empty set just as a live run would.
func TestWarmSkipsNonTerms(t *testing.T) {
	g, _ := core.PaperGraph()
	ft := fulltext.Build(g)
	s, err := New(ft, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Warm([]string{"a", "two words", "", "a", "ghost"}); got != 2 {
		t.Fatalf("Warm added %d, want 2 (a + ghost)", got)
	}
	if got := s.Warm([]string{"a"}); got != 0 {
		t.Fatalf("re-warming an existing term added %d, want 0", got)
	}
	res := sssp.NewResult(g.NumNodes())
	if !s.FullSet("ghost", 4, res) {
		t.Fatal("an empty artifact should still serve")
	}
	if len(res.Visited()) != 0 {
		t.Fatalf("ghost term settled %d nodes, want 0", len(res.Visited()))
	}
}

// TestWriteReadRoundtrip: Write then ReadInto reconstructs the store
// exactly — same metadata, same terms, same served sequences — and
// serialization is deterministic (two writes are byte-identical).
func TestWriteReadRoundtrip(t *testing.T) {
	s, ft := paperStore(t, 8)
	var buf, buf2 bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two writes of the same store differ")
	}

	got, err := ReadInto(bytes.NewReader(buf.Bytes()), ft)
	if err != nil {
		t.Fatal(err)
	}
	if got.Radius() != 8 || got.Epoch() != 7 || got.Len() != 3 {
		t.Fatalf("loaded store is radius=%g epoch=%d len=%d, want 8/7/3",
			got.Radius(), got.Epoch(), got.Len())
	}
	g := ft.Graph()
	for _, term := range []string{"a", "b", "c"} {
		res := sssp.NewResult(g.NumNodes())
		if !got.FullSet(term, 5, res) {
			t.Fatalf("loaded store missed %s", term)
		}
		sameResult(t, term, 5, res, liveRun(g, ft, term, 5))
	}
}

// TestReadRejectsCorruption sweeps the whole corruption surface: the
// loader must reject (never panic on, never silently accept) every
// truncation point, every single-bit flip, and trailing garbage.
func TestReadRejectsCorruption(t *testing.T) {
	s, ft := paperStore(t, 8)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	mustReject := func(b []byte, what string) {
		t.Helper()
		_, err := ReadInto(bytes.NewReader(b), ft)
		if err == nil {
			t.Fatalf("%s: loader accepted a damaged store", what)
		}
		if !errors.Is(err, ErrCorruptStore) && !errors.Is(err, ErrStoreMismatch) {
			t.Fatalf("%s: error %v wraps neither ErrCorruptStore nor ErrStoreMismatch", what, err)
		}
	}

	for n := 0; n < len(blob); n++ {
		mustReject(blob[:n], "truncated")
	}
	for i := 0; i < len(blob); i++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), blob...)
			flipped[i] ^= 1 << bit
			mustReject(flipped, "bit-flipped")
		}
	}
	mustReject(append(append([]byte(nil), blob...), 0), "trailing garbage")
}

// TestReadRejectsWrongGraph: a structurally intact store fails closed
// against a graph it was not built over.
func TestReadRejectsWrongGraph(t *testing.T) {
	s, _ := paperStore(t, 8)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	other, _ := core.IntroGraph()
	_, err := ReadInto(bytes.NewReader(buf.Bytes()), fulltext.Build(other))
	if err == nil {
		t.Fatal("loader attached artifacts to the wrong graph")
	}
	if !errors.Is(err, ErrStoreMismatch) {
		t.Fatalf("error %v does not wrap ErrStoreMismatch", err)
	}

	// Same shape, different content: rebuild the paper graph with one
	// edge weight changed. Checksums are intact, so only the structural
	// via-chain gate can catch it.
	g2 := reweightedPaperGraph(t)
	_, err = ReadInto(bytes.NewReader(buf.Bytes()), fulltext.Build(g2))
	if err == nil {
		t.Fatal("loader attached artifacts to a reweighted graph")
	}
	if !errors.Is(err, ErrStoreMismatch) && !errors.Is(err, ErrCorruptStore) {
		t.Fatalf("reweighted: error %v wraps neither sentinel", err)
	}
}

// reweightedPaperGraph rebuilds the paper example with the weight of
// v1→v2 changed from 5 to 4: identical node and edge counts, same
// keyword postings, different shortest paths.
func reweightedPaperGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	kw := map[int][]string{
		4: {"a"}, 13: {"a"},
		2: {"b"}, 8: {"b"},
		3: {"c"}, 6: {"c"}, 9: {"c"}, 11: {"c"},
	}
	ids := make([]graph.NodeID, 14)
	for i := 1; i <= 13; i++ {
		ids[i] = b.AddNode("", kw[i]...)
	}
	type e struct {
		u, v int
		w    float64
	}
	edges := []e{
		{1, 2, 4}, {1, 3, 3}, {1, 4, 6},
		{2, 3, 4},
		{4, 6, 3}, {4, 8, 4},
		{5, 2, 5}, {5, 4, 6}, {5, 9, 4},
		{7, 4, 1}, {7, 6, 2}, {7, 8, 6},
		{8, 13, 7},
		{9, 10, 2}, {9, 13, 5},
		{10, 8, 3},
		{11, 10, 2}, {11, 12, 3},
		{12, 11, 3}, {12, 13, 3},
	}
	for _, ed := range edges {
		b.AddEdge(ids[ed.u], ids[ed.v], ed.w)
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
