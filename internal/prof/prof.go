// Package prof is the resource-accounting and profiling layer: exact
// byte/cardinality footprints for the long-lived data structures
// (graph CSR, invertedN/invertedE postings, fulltext, result cache,
// snapshot epochs, delta maintainer), named stage timers for the
// build and delta-apply pipelines, and an opt-in continuous profiler
// that keeps a bounded ring of recent CPU/heap profiles.
//
// The accounting model is deliberate about what it counts:
//
//   - Footprints are *exact over the retained backing arrays*: a
//     []int32 of cap n is counted as 4n bytes plus the 24-byte slice
//     header. They are not process RSS — Go runtime overhead (spans,
//     GC metadata, stacks, allocator slack) is reported separately
//     from runtime.MemStats and never mixed into structure bytes.
//   - A composite Footprint's Bytes is always the sum of its Parts'
//     Bytes (enforced by Group and locked by tests), so drilling into
//     the tree never loses or double-counts a byte.
//   - Items is the structure's own cardinality (nodes, edges,
//     postings, cache entries) and is NOT summed across parts: a
//     graph's "items" is its node count, not nodes+edges.
package prof

import "fmt"

// Footprint is one node in a memory-accounting tree: a named
// structure (or part of one) with its exact retained byte size and
// element count. Composite footprints built with Group satisfy
// Bytes == sum of Parts' Bytes.
type Footprint struct {
	Name  string      `json:"name"`
	Bytes int64       `json:"bytes"`
	Items int64       `json:"items,omitempty"`
	Parts []Footprint `json:"parts,omitempty"`
}

// Group assembles a composite footprint whose Bytes is exactly the
// sum of its parts' Bytes. Items is left zero for the caller to set
// (cardinality does not sum meaningfully across heterogeneous parts).
func Group(name string, parts ...Footprint) Footprint {
	f := Footprint{Name: name, Parts: parts}
	for _, p := range parts {
		f.Bytes += p.Bytes
	}
	return f
}

// Find returns the first footprint named name in a depth-first walk
// of the tree rooted at f (including f itself).
func (f Footprint) Find(name string) (Footprint, bool) {
	if f.Name == name {
		return f, true
	}
	for _, p := range f.Parts {
		if m, ok := p.Find(name); ok {
			return m, true
		}
	}
	return Footprint{}, false
}

// SliceBytes is the exact retained size of a slice with the given
// capacity and element size: the backing array plus the 24-byte
// slice header (ptr, len, cap on 64-bit).
func SliceBytes(capacity, elemSize int) int64 {
	return int64(capacity)*int64(elemSize) + sliceHeaderBytes
}

const sliceHeaderBytes = 24

// StringBytes is the exact retained size of a string value: its byte
// content plus the 16-byte string header (ptr, len on 64-bit).
func StringBytes(s string) int64 { return int64(len(s)) + 16 }

// FormatBytes renders a byte count in human units (B, KiB, MiB, GiB)
// with one decimal, for CLI reports.
func FormatBytes(n int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
	)
	switch {
	case n >= gib:
		return fmt.Sprintf("%.1f GiB", float64(n)/gib)
	case n >= mib:
		return fmt.Sprintf("%.1f MiB", float64(n)/mib)
	case n >= kib:
		return fmt.Sprintf("%.1f KiB", float64(n)/kib)
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// WriteText renders the footprint tree as an indented CLI report:
//
//	searcher      12.3 MiB
//	  graph        4.1 MiB  (27431 items)
//	    out_edges  2.0 MiB  (131072 items)
//
// Used by graphinfo -mem and the commsearch REPL mem command.
func (f Footprint) WriteText(w interface{ WriteString(string) (int, error) }) {
	f.writeText(w, 0)
}

func (f Footprint) writeText(w interface{ WriteString(string) (int, error) }, depth int) {
	for i := 0; i < depth; i++ {
		w.WriteString("  ")
	}
	line := fmt.Sprintf("%-24s %10s", f.Name, FormatBytes(f.Bytes))
	if f.Items > 0 {
		line += fmt.Sprintf("  (%d items)", f.Items)
	}
	w.WriteString(line + "\n")
	for _, p := range f.Parts {
		p.writeText(w, depth+1)
	}
}
