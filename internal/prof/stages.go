package prof

import (
	"sort"
	"sync"
	"time"
)

// Stages accumulates named wall-clock timings for pipeline phases
// (to_graph, dirty_terms, region_repair, posting merge, fulltext
// rebuild, epoch publish, ...). It follows the same nil-safety
// contract as obs.Trace: every method on a nil *Stages is a cheap
// no-op that allocates nothing, so instrumented code paths pay zero
// overhead when accounting is disabled. Safe for concurrent use —
// worker pools add their per-worker time into the same stage, so a
// parallel stage's total can exceed wall time (it is CPU time across
// workers, documented in DESIGN).
type Stages struct {
	mu sync.Mutex
	ns map[string]int64
}

// NewStages returns an enabled stage accumulator.
func NewStages() *Stages {
	return &Stages{ns: make(map[string]int64, 8)}
}

// noopEnd is the shared no-op returned by Timer on a nil receiver, so
// the disabled path performs no closure allocation.
var noopEnd = func() {}

// Timer starts a named stage and returns its stop function:
//
//	defer st.Timer("to_graph")()
//
// On a nil receiver it returns a shared no-op without allocating.
func (s *Stages) Timer(name string) func() {
	if s == nil {
		return noopEnd
	}
	start := time.Now()
	return func() { s.Add(name, time.Since(start)) }
}

// Add folds d into the named stage's cumulative time. No-op on nil.
func (s *Stages) Add(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ns[name] += int64(d)
	s.mu.Unlock()
}

// SnapshotMS returns the per-stage cumulative milliseconds. Returns
// nil on a nil receiver or when nothing was recorded.
func (s *Stages) SnapshotMS() map[string]float64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ns) == 0 {
		return nil
	}
	out := make(map[string]float64, len(s.ns))
	for k, v := range s.ns {
		out[k] = float64(v) / 1e6
	}
	return out
}

// SortedStageNames returns the keys of a stage map in lexical order,
// for deterministic rendering and exposition.
func SortedStageNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
